-- Dot product of two 32-element vectors.
program dotprod;
var dot: float;
var a, b: array[32] of float;
begin
  for i := 0 to 31 do
    a[i] := i * 0.5;
    b[i] := 32 - i;
  end
  dot := 0.0;
  for i := 0 to 31 do
    dot := dot + a[i] * b[i];
  end
end
