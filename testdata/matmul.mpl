-- 6x6 integer matrix multiply, row-major in flat arrays.
program matmul;
var a, b, c: array[36] of int;
var acc: int;
begin
  for i := 0 to 5 do
    for j := 0 to 5 do
      a[i*6+j] := i + 2*j + 1;
      b[i*6+j] := 3*i - j + 2;
    end
  end
  for i := 0 to 5 do
    for j := 0 to 5 do
      acc := 0;
      for k := 0 to 5 do
        acc := acc + a[i*6+k] * b[k*6+j];
      end
      c[i*6+j] := acc;
    end
  end
end
