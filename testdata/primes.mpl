-- Sieve of Eratosthenes: count primes below 100.
program primes;
var sieve: array[100] of int;
var count, p: int;
begin
  for i := 0 to 99 do
    sieve[i] := 1;
  end
  sieve[0] := 0;
  sieve[1] := 0;
  p := 2;
  while p * p < 100 do
    if sieve[p] = 1 then
      for m := 2 to (99 / p) do
        sieve[m * p] := 0;
      end
    end
    p := p + 1;
  end
  count := 0;
  for i := 0 to 99 do
    count := count + sieve[i];
  end
end
