-- Newton iteration for square roots of 1..8, stored in a table.
program newton;
var roots: array[8] of float;
var x, target: float;
begin
  for n := 0 to 7 do
    target := n + 1;
    x := target;
    for it := 0 to 9 do
      x := (x + target / x) / 2.0;
    end
    roots[n] := x;
  end
end
