package parmem

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"parmem/internal/benchprog"
)

func TestOpenCacheStoreRejectsBadConfig(t *testing.T) {
	cases := []CacheConfig{
		{MemoryEntries: -1},
		{DiskPath: t.TempDir(), MaxDiskBytes: -1},
		{ReadOnly: true}, // read-only without a disk path
	}
	for _, cfg := range cases {
		if _, err := OpenCacheStore(cfg); !errors.Is(err, ErrConfig) {
			t.Fatalf("OpenCacheStore(%+v) = %v, want ErrConfig", cfg, err)
		}
	}
}

func TestMemoryOnlyCacheStore(t *testing.T) {
	st, err := OpenCacheStore(CacheConfig{MemoryEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, ok := st.DiskStats(); ok {
		t.Fatal("memory-only store reports a disk tier")
	}
	src := benchprog.All()[0].Source
	if _, err := Compile(src, Options{Store: st}); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(src, Options{Store: st}); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Hits == 0 {
		t.Fatalf("no memory hits on recompile: %+v", s)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestDiskCacheStoreSurvivesRestart is the headline behavior: a program
// compiled under one store is served as a second-level hit by a fresh
// store (a restarted process) over the same cache directory, with an
// allocation identical to a cold compile.
func TestDiskCacheStoreSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	spec := benchprog.All()[0]
	opt := Options{Workers: 1}

	cold, err := Compile(spec.Source, opt)
	if err != nil {
		t.Fatal(err)
	}

	st1, err := OpenCacheStore(CacheConfig{DiskPath: dir})
	if err != nil {
		t.Fatal(err)
	}
	warm := opt
	warm.Store = st1
	if _, err := Compile(spec.Source, warm); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// "Restart": a brand-new store over the same directory, empty memory.
	st2, err := OpenCacheStore(CacheConfig{DiskPath: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm.Store = st2
	p, err := Compile(spec.Source, warm)
	if err != nil {
		t.Fatal(err)
	}
	stats := st2.Stats()
	if stats.BackingHits == 0 {
		t.Fatalf("restarted store served no disk hits: %+v", stats)
	}
	ds, ok := st2.DiskStats()
	if !ok || ds.Hits == 0 {
		t.Fatalf("disk tier reports no hits: %+v (ok=%v)", ds, ok)
	}
	aw, ac := p.Alloc, cold.Alloc
	aw.Phases, ac.Phases = nil, nil // wall-clock timings differ
	if !reflect.DeepEqual(aw, ac) {
		t.Fatalf("disk-warm allocation differs from cold compile\nwarm: %+v\ncold: %+v", aw, ac)
	}
	// The simulated program must still compute the right answer.
	res, err := p.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Check(res); err != nil {
		t.Fatalf("semantic check after disk-warm compile: %v", err)
	}
}

func TestStoreWinsOverDeprecatedCache(t *testing.T) {
	st, err := OpenCacheStore(CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	legacy := NewAllocCache(0)
	src := benchprog.All()[0].Source
	if _, err := Compile(src, Options{Store: st, Cache: legacy}); err != nil {
		t.Fatal(err)
	}
	if legacy.Stats().Misses != 0 || legacy.Stats().Entries != 0 {
		t.Fatalf("deprecated Cache was used despite Store being set: %+v", legacy.Stats())
	}
	if st.Stats().Misses == 0 {
		t.Fatalf("Store was not used: %+v", st.Stats())
	}
}

func TestReadOnlyStoreServesButNeverWrites(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	spec := benchprog.All()[0]

	w, err := OpenCacheStore(CacheConfig{DiskPath: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(spec.Source, Options{Store: w, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenCacheStore(CacheConfig{DiskPath: dir, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := Compile(spec.Source, Options{Store: r, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.BackingHits == 0 {
		t.Fatalf("read-only store served no disk hits: %+v", st)
	}
	ds, _ := r.DiskStats()
	if !ds.ReadOnly {
		t.Fatalf("disk tier not read-only: %+v", ds)
	}
	if ds.Puts != 0 {
		t.Fatalf("read-only tier wrote records: %+v", ds)
	}
}
