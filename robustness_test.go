package parmem

// Robustness tests: budget exhaustion with graceful degradation,
// cancellation at and between phase boundaries, option validation, and the
// fault-injection proof that no public API call can escape a panic.

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"parmem/internal/faultinject"
)

// cliqueInstrs builds a circulant instruction stream: instruction i uses
// values {i..i+width-1} mod n (1-based). For width <= n/2 every value
// conflicts with 2(width-1) others, so with k < 2(width-1)+1 modules the
// coloring removes many values and the backtracking search has a large
// placement space — a reliable budget-exhaustion stressor.
func cliqueInstrs(n, width int) []Instruction {
	instrs := make([]Instruction, 0, n)
	for i := 0; i < n; i++ {
		var in Instruction
		for j := 0; j < width; j++ {
			in = append(in, 1+(i+j)%n)
		}
		instrs = append(instrs, in)
	}
	return instrs
}

// TestBudgetExhaustionDegradesToHittingSet is the issue's clique stress
// test: a one-node backtracking budget must terminate promptly, fall back
// to the hitting-set approach, mark the allocation degraded, and still be
// conflict-free.
func TestBudgetExhaustionDegradesToHittingSet(t *testing.T) {
	instrs := cliqueInstrs(14, 6)
	b := Budget{MaxBacktrackNodes: 1}
	al, err := AssignValuesCtx(context.Background(), instrs, 6, STOR1, Backtrack, b)
	if err != nil {
		t.Fatal(err)
	}
	if !al.Degraded {
		t.Fatal("Degraded = false, want true (budget of one node cannot finish a backtracking search)")
	}
	if len(al.Phases) == 0 {
		t.Fatal("PhaseReport missing")
	}
	fellBack := false
	for _, ph := range al.Phases {
		if ph.Fallback != "" {
			fellBack = true
			if ph.Fallback != "hittingset" && ph.Fallback != "fullreplication" {
				t.Fatalf("unexpected fallback %q", ph.Fallback)
			}
		}
	}
	if !fellBack {
		t.Fatalf("no phase recorded a fallback: %+v", al.Phases)
	}
	// AssignValuesCtx runs assign.Verify internally; double-check here that
	// the degraded allocation really is conflict-free.
	for i, in := range instrs {
		if !ConflictFree(in.Normalize(), al.Copies) {
			t.Fatalf("instruction %d (%v) conflicts after degradation", i, in)
		}
	}
}

// TestBudgetUnlimitedNotDegraded: the same instance with an unlimited
// budget must not report degradation.
func TestBudgetUnlimitedNotDegraded(t *testing.T) {
	instrs := cliqueInstrs(8, 4)
	b := Budget{MaxBacktrackNodes: -1}
	al, err := AssignValuesCtx(context.Background(), instrs, 4, STOR1, Backtrack, b)
	if err != nil {
		t.Fatal(err)
	}
	if al.Degraded {
		t.Fatalf("Degraded = true under unlimited budget; phases: %+v", al.Phases)
	}
	if len(al.Phases) == 0 {
		t.Fatal("PhaseReport missing")
	}
}

// TestDuplicationTimeBudget: an already-expired wall-clock budget degrades
// exactly like an exhausted node budget.
func TestDuplicationTimeBudget(t *testing.T) {
	instrs := cliqueInstrs(14, 6)
	b := Budget{MaxDuplicationTime: time.Nanosecond}
	al, err := AssignValuesCtx(context.Background(), instrs, 6, STOR1, Backtrack, b)
	if err != nil {
		t.Fatal(err)
	}
	if !al.Degraded {
		t.Fatal("Degraded = false, want true under a one-nanosecond time budget")
	}
}

// countdownCtx cancels itself after its Err method has been polled a fixed
// number of times — a deterministic stand-in for a deadline firing in the
// middle of a phase.
type countdownCtx struct {
	context.Context
	remaining int64
}

func (c *countdownCtx) Err() error {
	if atomic.AddInt64(&c.remaining, -1) <= 0 {
		return context.Canceled
	}
	return nil
}

func TestAssignCanceledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AssignValuesCtx(ctx, cliqueInstrs(8, 4), 4, STOR1, HittingSet, Budget{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestAssignCanceledMidPhase(t *testing.T) {
	// The first few polls succeed (the up-front check and the first phase
	// boundary), then the context reports cancellation while the
	// backtracking search is spending nodes.
	ctx := &countdownCtx{Context: context.Background(), remaining: 3}
	_, err := AssignValuesCtx(ctx, cliqueInstrs(14, 6), 6, STOR1, Backtrack, Budget{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestCompileCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Compile(quick, Options{Ctx: ctx})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestRunCanceled(t *testing.T) {
	p, err := Compile(quick, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(RunOptions{Ctx: ctx}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestRunCycleBudget(t *testing.T) {
	src := `
program spin;
var s, w: int;
begin
  w := 200;
  while w > 0 do
    s := s + w;
    w := w - 1;
  end
end`
	p, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(RunOptions{MaxCycles: 10}); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// The same cap riding in through the compile Options must bound Run too.
	p2, err := Compile(src, Options{Budget: Budget{MaxCycles: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Run(RunOptions{}); !errors.Is(err, ErrBudget) {
		t.Fatalf("inherited cap: err = %v, want ErrBudget", err)
	}
	// And a generous cap must not fire.
	if _, err := p.Run(RunOptions{MaxCycles: 1 << 40}); err != nil {
		t.Fatalf("generous cap: %v", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
	}{
		{"zero modules via explicit negative", Options{Modules: -1}},
		{"too many modules", Options{Modules: 65}},
		{"negative units", Options{Modules: 8, Units: -2}},
		{"bad strategy", Options{Modules: 8, Strategy: Strategy(99)}},
		{"bad method", Options{Modules: 8, Method: Method(99)}},
		{"negative groups", Options{Modules: 8, Groups: -1}},
		{"negative unroll", Options{Modules: 8, Unroll: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Compile(quick, tc.opt); err == nil {
				t.Fatalf("Compile accepted %+v", tc.opt)
			}
		})
	}
	// Bad module counts through the direct assignment API must error, not
	// panic (coloring panics on K < 1 when reached directly).
	if _, err := AssignValuesCtx(context.Background(), cliqueInstrs(4, 2), 0, STOR1, HittingSet, Budget{}); err == nil {
		t.Fatal("AssignValuesCtx accepted k=0")
	}
	if _, err := AssignValuesCtx(context.Background(), cliqueInstrs(4, 2), 65, STOR1, HittingSet, Budget{}); err == nil {
		t.Fatal("AssignValuesCtx accepted k=65 (ModSet holds 64 modules)")
	}
}

// TestFaultInjection arms every injection point reachable from the public
// API and proves the panic comes back as a typed *InternalError naming the
// phase — never as an escaped panic.
func TestFaultInjection(t *testing.T) {
	defer faultinject.Reset()

	instrs := cliqueInstrs(10, 4)
	viaAssign := func(method Method) func() error {
		return func() error {
			_, err := AssignValuesCtx(context.Background(), instrs, 4, STOR1, method, Budget{})
			return err
		}
	}
	cases := []struct {
		point     string
		call      func() error
		wantPhase string // exact match, or prefix when ending in "/"
	}{
		{"dfa.rename", func() error { _, err := Compile(quick, Options{}); return err }, "compile"},
		{"coloring.guptasoffa", viaAssign(HittingSet), "assign/"},
		{"assign.phase", viaAssign(HittingSet), "assign/"},
		{"duplication.hittingset", viaAssign(HittingSet), "assign/"},
		{"duplication.backtrack", viaAssign(Backtrack), "assign/"},
		{"machine.run", func() error {
			p, err := Compile(quick, Options{})
			if err != nil {
				return err
			}
			_, err = p.Run(RunOptions{})
			return err
		}, "machine"},
		{"stats.analyze", func() error {
			_, err := Table2(context.Background(), []int{4})
			return err
		}, "table2"},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			faultinject.Arm(tc.point)
			defer faultinject.Disarm(tc.point)
			err := tc.call()
			if err == nil {
				t.Fatalf("point %s: call succeeded, want *InternalError", tc.point)
			}
			var ie *InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("point %s: err = %v (%T), want *InternalError", tc.point, err, err)
			}
			if strings.HasSuffix(tc.wantPhase, "/") {
				if !strings.HasPrefix(ie.Phase, tc.wantPhase) {
					t.Fatalf("point %s: phase = %q, want prefix %q", tc.point, ie.Phase, tc.wantPhase)
				}
			} else if ie.Phase != tc.wantPhase {
				t.Fatalf("point %s: phase = %q, want %q", tc.point, ie.Phase, tc.wantPhase)
			}
			if !strings.Contains(ie.Error(), tc.point) {
				t.Fatalf("point %s: error %q does not name the injected point", tc.point, ie.Error())
			}
			if len(ie.Stack) == 0 {
				t.Fatalf("point %s: no stack captured", tc.point)
			}
		})
	}
}

// TestFaultInjectionTables: the table drivers are API boundaries too.
func TestFaultInjectionTables(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm("assign.phase")
	defer faultinject.Disarm("assign.phase")

	var ie *InternalError
	if _, err := Table1(context.Background(), 4); !errors.As(err, &ie) {
		t.Fatalf("Table1: err = %v, want *InternalError", err)
	}
	ie = nil
	if _, err := Table2(context.Background(), []int{4}); !errors.As(err, &ie) {
		t.Fatalf("Table2: err = %v, want *InternalError", err)
	}
}

// TestDegradedAllocationRuns proves the end-to-end claim: a program whose
// allocation degraded under a tiny budget still compiles, verifies and
// executes to the same result as an unbudgeted compile.
func TestDegradedAllocationRuns(t *testing.T) {
	src := `
program deg;
var s0, s1, s2, s3: int;
var arr: array[8] of int;
begin
  s0 := 3; s1 := 5; s2 := 7; s3 := 11;
  for i := 0 to 7 do
    arr[i] := (s0 * i + s1) - (s2 * s3);
    s0 := s0 + arr[i];
    s1 := s1 * 2 - s0;
    s2 := s2 + s1 - i;
  end
end`
	base, err := Compile(src, Options{Modules: 4, Method: Backtrack})
	if err != nil {
		t.Fatal(err)
	}
	bres, err := base.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := Compile(src, Options{Modules: 4, Method: Backtrack,
		Budget: Budget{MaxBacktrackNodes: 1}})
	if err != nil {
		t.Fatal(err)
	}
	tres, err := tiny.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, got := snapshot(bres), snapshot(tres)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s = %v under tiny budget, want %v", k, got[k], v)
		}
	}
}
