// Command parmemsoak is the chaos client for parmemd: it hammers a running
// daemon with mixed well-formed traffic while (optionally) injecting the
// faults a long-lived service actually meets — mid-request disconnects,
// garbage bytes, slow-loris writers, oversized frames, deadline storms and
// overload bursts — then holds the daemon to the availability bar.
//
// Usage:
//
//	parmemsoak -addr 127.0.0.1:7433 -duration 10s -faults
//
// Every request is accounted for. The run fails (exit 1) unless:
//
//   - >= 99% of well-formed in-budget requests succeeded,
//   - zero requests lost their response mid-flight (transport errors),
//   - zero INTERNAL or spurious INVALID_ARGUMENT responses,
//   - overload bursts were shed with typed RESOURCE_EXHAUSTED, and
//   - every deadline-storm request got a typed answer.
//
// -summary FILE writes the full report as JSON (latency percentiles
// included) for CI artifacts. Exit codes: 0 pass, 1 acceptance failure,
// 2 flag errors, 3 setup failure (daemon unreachable).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"parmem/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7433", "parmemd address to soak")
		duration   = flag.Duration("duration", 10*time.Second, "how long the load runs")
		clients    = flag.Int("clients", 4, "well-formed load-generator connections")
		faults     = flag.Bool("faults", false, "inject faults (garbage frames, slow loris, disconnects, deadline storms, overload bursts)")
		seed       = flag.Int64("seed", 1, "workload mix seed")
		deadlineMS = flag.Int64("deadline-ms", 5000, "deadline on well-formed requests")
		steadyOps  = flag.Int("steady-ops", 0, "after the load drains, measure client allocs/op over this many identical requests (0: skip)")
		maxAllocs  = flag.Float64("max-allocs-per-op", 0, "fail if the steady-state allocs/op exceed this (0: no bar)")
		summary    = flag.String("summary", "", "write the JSON report to this file")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "parmemsoak: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration+60*time.Second)
	defer cancel()
	report, err := server.Soak(ctx, server.SoakOptions{
		Addr:           *addr,
		Duration:       *duration,
		Workers:        *clients,
		Faults:         *faults,
		Seed:           *seed,
		DeadlineMS:     *deadlineMS,
		SteadyStateOps: *steadyOps,
		MaxAllocsPerOp: *maxAllocs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "parmemsoak: %v\n", err)
		os.Exit(3)
	}

	fmt.Printf("parmemsoak: %s for %v: sent=%d ok=%d (degraded=%d) shed=%d unavailable=%d deadline=%d canceled=%d\n",
		*addr, *duration, report.Sent, report.OK, report.Degraded, report.Shed,
		report.Unavailable, report.DeadlineExceeded, report.Canceled)
	fmt.Printf("parmemsoak: availability=%.4f transport_errors=%d internal=%d invalid=%d\n",
		report.Availability(), report.TransportErrors, report.Internal, report.InvalidArgument)
	if *faults {
		fmt.Printf("parmemsoak: storm %d/%d responded, overload %d/%d responded (%d shed, %d ok), fault_conns=%d\n",
			report.StormResponded, report.StormSent,
			report.OverloadResponded, report.OverloadSent,
			report.OverloadShed, report.OverloadOK, report.FaultConns)
	}
	fmt.Printf("parmemsoak: latency_us p50=%d p95=%d p99=%d max=%d\n",
		report.LatencyP50US, report.LatencyP95US, report.LatencyP99US, report.LatencyMaxUS)
	if report.SteadyStateOps > 0 {
		fmt.Printf("parmemsoak: steady-state allocs/op=%.1f over %d ops (bar %.1f)\n",
			report.AllocsPerOp, report.SteadyStateOps, report.MaxAllocsPerOp)
	}

	if *summary != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*summary, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "parmemsoak: writing %s: %v\n", *summary, err)
			os.Exit(3)
		}
	}

	if err := report.Assert(*faults); err != nil {
		fmt.Fprintf(os.Stderr, "parmemsoak: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("parmemsoak: PASS")
}
