// Command parmemsoak is the chaos client for parmemd: it hammers a running
// daemon with mixed well-formed traffic while (optionally) injecting the
// faults a long-lived service actually meets — mid-request disconnects,
// garbage bytes, slow-loris writers, oversized frames, deadline storms and
// overload bursts — then holds the daemon to the availability bar.
//
// Usage:
//
//	parmemsoak -addr 127.0.0.1:7433 -duration 10s -faults
//
// Every request is accounted for. The run fails (exit 1) unless:
//
//   - >= 99% of well-formed in-budget requests succeeded,
//   - zero requests lost their response mid-flight (transport errors),
//   - zero INTERNAL or spurious INVALID_ARGUMENT responses,
//   - overload bursts were shed with typed RESOURCE_EXHAUSTED, and
//   - every deadline-storm request got a typed answer.
//
// Every well-formed request carries a distributed trace, and its response
// must echo the trace id — one more acceptance criterion. -trace FILE
// exports the client-side spans as JSON lines for parmemtrace, and
// -flight-url URL1,URL2 enables the flight-recorder check: after the load
// drains, one deliberately heavy traced assign is sent and at least one
// /debug/flight endpoint must show a capture.
//
// Every flag is also settable through the environment as PARMEMSOAK_<FLAG>
// (dashes to underscores, upper-cased: PARMEMSOAK_FLIGHT_URL configures
// -flight-url). An explicit command-line flag always wins over its
// variable.
//
// -summary FILE writes the full report as JSON (latency percentiles,
// trace accounting and the three slowest trace ids included) for CI
// artifacts. Exit codes: 0 pass, 1 acceptance failure, 2 flag errors,
// 3 setup failure (daemon unreachable).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"parmem/internal/envflag"
	"parmem/internal/server"
	"parmem/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7433", "parmemd address to soak")
		duration   = flag.Duration("duration", 10*time.Second, "how long the load runs")
		clients    = flag.Int("clients", 4, "well-formed load-generator connections")
		faults     = flag.Bool("faults", false, "inject faults (garbage frames, slow loris, disconnects, deadline storms, overload bursts)")
		seed       = flag.Int64("seed", 1, "workload mix seed")
		deadlineMS = flag.Int64("deadline-ms", 5000, "deadline on well-formed requests")
		steadyOps  = flag.Int("steady-ops", 0, "after the load drains, measure client allocs/op over this many identical requests (0: skip)")
		maxAllocs  = flag.Float64("max-allocs-per-op", 0, "fail if the steady-state allocs/op exceed this (0: no bar)")
		summary    = flag.String("summary", "", "write the JSON report to this file")
		traceFile  = flag.String("trace", "", "export client-side spans as JSON lines to this file (merge fleet-wide with parmemtrace)")
		flightURLs = flag.String("flight-url", "", "comma-separated telemetry base URLs; after the load, force a slow request and require a /debug/flight capture")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "parmemsoak: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	// Every flag is also settable as PARMEMSOAK_<FLAG> (dashes to
	// underscores, upper-cased); an explicit flag wins over its variable.
	if err := envflag.Apply("PARMEMSOAK", flag.CommandLine); err != nil {
		fmt.Fprintf(os.Stderr, "parmemsoak: %v\n", err)
		os.Exit(2)
	}

	var rec *telemetry.Recorder
	var traceSink *telemetry.JSONLSink
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parmemsoak: -trace: %v\n", err)
			os.Exit(3)
		}
		rec = telemetry.New()
		traceSink = telemetry.NewJSONLSink(f)
		traceSink.WriteProcess("parmemsoak", rec.Tracer())
		rec.AddSink(traceSink)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration+60*time.Second)
	defer cancel()
	report, err := server.Soak(ctx, server.SoakOptions{
		Addr:           *addr,
		Duration:       *duration,
		Workers:        *clients,
		Faults:         *faults,
		Seed:           *seed,
		DeadlineMS:     *deadlineMS,
		SteadyStateOps: *steadyOps,
		MaxAllocsPerOp: *maxAllocs,
		Telemetry:      rec,
		FlightURLs:     splitList(*flightURLs),
	})
	if traceSink != nil {
		if ferr := traceSink.Flush(); ferr != nil {
			fmt.Fprintf(os.Stderr, "parmemsoak: -trace: %v\n", ferr)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "parmemsoak: %v\n", err)
		os.Exit(3)
	}

	fmt.Printf("parmemsoak: %s for %v: sent=%d ok=%d (degraded=%d) shed=%d unavailable=%d deadline=%d canceled=%d\n",
		*addr, *duration, report.Sent, report.OK, report.Degraded, report.Shed,
		report.Unavailable, report.DeadlineExceeded, report.Canceled)
	fmt.Printf("parmemsoak: availability=%.4f transport_errors=%d internal=%d invalid=%d\n",
		report.Availability(), report.TransportErrors, report.Internal, report.InvalidArgument)
	if *faults {
		fmt.Printf("parmemsoak: storm %d/%d responded, overload %d/%d responded (%d shed, %d ok), fault_conns=%d\n",
			report.StormResponded, report.StormSent,
			report.OverloadResponded, report.OverloadSent,
			report.OverloadShed, report.OverloadOK, report.FaultConns)
	}
	fmt.Printf("parmemsoak: latency_us p50=%d p95=%d p99=%d max=%d trace_echo_mismatches=%d\n",
		report.LatencyP50US, report.LatencyP95US, report.LatencyP99US, report.LatencyMaxUS,
		report.TraceEchoMismatches)
	for _, s := range report.Slowest {
		fmt.Printf("parmemsoak: slowest %s %s %dus\n", s.TraceID, s.Op, s.LatencyUS)
	}
	if report.FlightChecked {
		fmt.Printf("parmemsoak: flight captures across %d endpoint(s): %d\n",
			len(splitList(*flightURLs)), report.FlightCaptures)
	}
	if report.SteadyStateOps > 0 {
		fmt.Printf("parmemsoak: steady-state allocs/op=%.1f over %d ops (bar %.1f)\n",
			report.AllocsPerOp, report.SteadyStateOps, report.MaxAllocsPerOp)
	}

	if *summary != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*summary, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "parmemsoak: writing %s: %v\n", *summary, err)
			os.Exit(3)
		}
	}

	if err := report.Assert(*faults); err != nil {
		fmt.Fprintf(os.Stderr, "parmemsoak: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("parmemsoak: PASS")
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
