package main

import (
	"math"
	"testing"
)

func TestSplitWorkers(t *testing.T) {
	cases := []struct {
		name   string
		prefix string
		n      int
		ok     bool
	}{
		{"BenchmarkAssignScaling/clusters/workers=4", "BenchmarkAssignScaling/clusters", 4, true},
		{"BenchmarkAssignScaling/suite/workers=1", "BenchmarkAssignScaling/suite", 1, true},
		{"BenchmarkAssignSteadyState/steady", "", 0, false},
		{"BenchmarkX/workers=0", "", 0, false},
		{"BenchmarkX/workers=abc", "", 0, false},
	}
	for _, c := range cases {
		prefix, n, ok := splitWorkers(c.name)
		if prefix != c.prefix || n != c.n || ok != c.ok {
			t.Errorf("splitWorkers(%q) = (%q, %d, %v), want (%q, %d, %v)",
				c.name, prefix, n, ok, c.prefix, c.n, c.ok)
		}
	}
}

func TestAnnotateScaling(t *testing.T) {
	rec := func(name string, ns float64) Record {
		return Record{Name: name, Runs: 1, Metrics: map[string]float64{"ns/op": ns}}
	}
	doc := Output{Benchmarks: []Record{
		rec("BenchmarkAssignScaling/clusters/workers=1-8", 100),
		rec("BenchmarkAssignScaling/clusters/workers=2-8", 50),
		rec("BenchmarkAssignScaling/clusters/workers=4-8", 40),
		rec("BenchmarkAssignScaling/lonely/workers=2-8", 70), // no workers=1 sibling
		rec("BenchmarkAssignSteadyState/steady-8", 10),       // not a scaling row
	}}
	annotateScaling(&doc)

	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	checks := []struct {
		i                   int
		speedup, efficiency float64
	}{
		{0, 1.0, 1.0},
		{1, 2.0, 1.0},
		{2, 2.5, 0.625},
	}
	for _, c := range checks {
		m := doc.Benchmarks[c.i].Metrics
		if !approx(m["speedup"], c.speedup) || !approx(m["efficiency"], c.efficiency) {
			t.Errorf("%s: speedup=%v efficiency=%v, want %v / %v",
				doc.Benchmarks[c.i].Name, m["speedup"], m["efficiency"], c.speedup, c.efficiency)
		}
	}
	for _, i := range []int{3, 4} {
		m := doc.Benchmarks[i].Metrics
		if _, ok := m["speedup"]; ok {
			t.Errorf("%s: unexpectedly annotated with a speedup", doc.Benchmarks[i].Name)
		}
	}
}

func TestAnnotateIncremental(t *testing.T) {
	rec := func(name string, ns float64) Record {
		return Record{Name: name, Runs: 1, Metrics: map[string]float64{"ns/op": ns}}
	}
	doc := Output{Benchmarks: []Record{
		rec("BenchmarkAssignIncremental/chains/full-8", 1000),
		rec("BenchmarkAssignIncremental/chains/delta=1-8", 100),
		rec("BenchmarkAssignIncremental/chains/delta=25-8", 500),
		rec("BenchmarkAssignIncremental/orphan/delta=1-8", 50), // no /full sibling
		rec("BenchmarkAssignSteadyState/steady-8", 10),
	}}
	annotateIncremental(&doc)

	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if s := doc.Benchmarks[1].Metrics["incr_speedup"]; !approx(s, 10.0) {
		t.Errorf("delta=1 incr_speedup = %v, want 10", s)
	}
	if s := doc.Benchmarks[2].Metrics["incr_speedup"]; !approx(s, 2.0) {
		t.Errorf("delta=25 incr_speedup = %v, want 2", s)
	}
	for _, i := range []int{0, 3, 4} {
		if _, ok := doc.Benchmarks[i].Metrics["incr_speedup"]; ok {
			t.Errorf("%s: unexpectedly annotated", doc.Benchmarks[i].Name)
		}
	}
}
