// Command bench2json converts `go test -bench` text output into JSON so the
// benchmark numbers can be archived and diffed across commits without any
// third-party tooling.
//
// It reads the benchmark output on stdin and writes a JSON document to
// stdout (or -o file): one record per benchmark with the iteration count
// and every reported metric (ns/op, B/op, allocs/op and any custom
// testing.B ReportMetric units) keyed by unit.
//
//	go test -bench . -benchmem ./... | bench2json -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result line.
type Record struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the whole document.
type Output struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        []string `json:"packages,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	flag.Parse()

	var doc Output
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = append(doc.Pkg, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		rec, ok := parseLine(line)
		if !ok {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   10 allocs/op
//
// Metric values and units come in pairs after the iteration count.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	return rec, true
}
