// Command bench2json converts `go test -bench` text output into JSON so the
// benchmark numbers can be archived and diffed across commits without any
// third-party tooling.
//
// It reads the benchmark output on stdin and writes a JSON document to
// stdout (or -o file): one record per benchmark with the iteration count
// and every reported metric (ns/op, B/op, allocs/op and any custom
// testing.B ReportMetric units) keyed by unit.
//
//	go test -bench . -benchmem ./... | bench2json -o BENCH.json
//
// With -baseline FILE it additionally diffs the run against a previously
// archived document and exits nonzero when the allocation profile
// regressed: a benchmark's allocs/op more than 10% (plus a grace of 2
// allocations for tiny counts) above its baseline value, or a baseline
// benchmark missing from the run entirely, is a failure. Benchmarks new in
// this run only warn — they become binding once the baseline is
// regenerated. Only allocs/op is gated: it is deterministic for this
// repo's single-goroutine benchmark bodies, while ns/op varies with the
// machine. The -o document is written before the diff verdict, so a
// failing gate still leaves the fresh numbers on disk for inspection.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result line.
type Record struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the whole document.
type Output struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        []string `json:"packages,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file instead of stdout")
	baseline := flag.String("baseline", "", "diff allocs/op against this archived JSON; exit nonzero on regression")
	flag.Parse()

	var doc Output
	skipped := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = append(doc.Pkg, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		rec, ok := parseLine(line)
		if !ok {
			// A Benchmark-prefixed line that does not parse is usually a
			// truncated or interleaved result; dropping it silently would
			// shrink the gated set without anyone noticing.
			skipped++
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "bench2json: warning: skipped %d unparseable benchmark line(s)\n", skipped)
	}
	annotateScaling(&doc)
	annotateIncremental(&doc)

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}

	if *baseline != "" {
		if !diffBaseline(*baseline, doc) {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench2json:", err)
	os.Exit(1)
}

// benchKey normalizes a benchmark name for cross-machine comparison by
// stripping the trailing -P GOMAXPROCS suffix the testing package appends.
func benchKey(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// splitWorkers recognizes scaling-benchmark names of the form
// <prefix>/workers=<N> and returns the prefix and pool width.
func splitWorkers(name string) (prefix string, workers int, ok bool) {
	const tag = "/workers="
	i := strings.LastIndex(name, tag)
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(name[i+len(tag):])
	if err != nil || n < 1 {
		return "", 0, false
	}
	return name[:i], n, true
}

// annotateScaling derives the speedup/efficiency curve for scaling
// benchmarks: every record named <prefix>/workers=N with a workers=1
// sibling in the same document gains speedup = ns/op(workers=1) / ns/op
// and efficiency = speedup / N. The derived metrics are archival only —
// the diff gate reads allocs/op exclusively — so curves measured on
// different machines never fail a build, they just document what was
// measured (the benchmarks report the core count alongside).
func annotateScaling(doc *Output) {
	base := make(map[string]float64)
	for _, rec := range doc.Benchmarks {
		if prefix, n, ok := splitWorkers(benchKey(rec.Name)); ok && n == 1 {
			if ns, ok := rec.Metrics["ns/op"]; ok && ns > 0 {
				base[prefix] = ns
			}
		}
	}
	for i := range doc.Benchmarks {
		rec := &doc.Benchmarks[i]
		prefix, n, ok := splitWorkers(benchKey(rec.Name))
		if !ok {
			continue
		}
		ns := rec.Metrics["ns/op"]
		ns1, haveBase := base[prefix]
		if !haveBase {
			// Emit the row as measured, but say why its curve is missing:
			// a silently absent derivation reads as "never measured" when
			// the real cause is a workers=1 sibling lost from the run.
			if n != 1 {
				fmt.Fprintf(os.Stderr, "bench2json: warning: %s has no workers=1 sibling; speedup/efficiency not derived\n", benchKey(rec.Name))
			}
			continue
		}
		if ns <= 0 {
			continue
		}
		speedup := ns1 / ns
		rec.Metrics["speedup"] = speedup
		rec.Metrics["efficiency"] = speedup / float64(n)
	}
}

// splitDelta recognizes incremental-benchmark names of the form
// <prefix>/delta=<N> and returns the prefix and delta size.
func splitDelta(name string) (prefix string, delta int, ok bool) {
	const tag = "/delta="
	i := strings.LastIndex(name, tag)
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(name[i+len(tag):])
	if err != nil || n < 1 {
		return "", 0, false
	}
	return name[:i], n, true
}

// annotateIncremental derives the incremental-recompilation speedup: every
// record named <prefix>/delta=N with a <prefix>/full sibling (the cold
// full-recompile of the same workload) gains incr_speedup =
// ns/op(full) / ns/op. Like the scaling curve, the derived metric is
// archival only — the diff gate never reads it.
func annotateIncremental(doc *Output) {
	full := make(map[string]float64)
	for _, rec := range doc.Benchmarks {
		if key := benchKey(rec.Name); strings.HasSuffix(key, "/full") {
			if ns, ok := rec.Metrics["ns/op"]; ok && ns > 0 {
				full[strings.TrimSuffix(key, "/full")] = ns
			}
		}
	}
	for i := range doc.Benchmarks {
		rec := &doc.Benchmarks[i]
		prefix, _, ok := splitDelta(benchKey(rec.Name))
		if !ok {
			continue
		}
		nsFull, haveFull := full[prefix]
		if !haveFull {
			fmt.Fprintf(os.Stderr, "bench2json: warning: %s has no /full sibling; incr_speedup not derived\n", benchKey(rec.Name))
			continue
		}
		if ns := rec.Metrics["ns/op"]; ns > 0 {
			rec.Metrics["incr_speedup"] = nsFull / ns
		}
	}
}

// diffBaseline compares the run's allocs/op against the archived baseline
// and reports whether the gate passes. The tolerance is relative 10% plus
// an absolute grace of 2 allocs/op, so single-digit counts do not fail on
// one stray allocation.
func diffBaseline(path string, doc Output) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var base Output
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing baseline %s: %w", path, err))
	}

	got := make(map[string]Record, len(doc.Benchmarks))
	for _, rec := range doc.Benchmarks {
		got[benchKey(rec.Name)] = rec
	}
	seen := make(map[string]bool, len(base.Benchmarks))

	pass := true
	for _, old := range base.Benchmarks {
		key := benchKey(old.Name)
		seen[key] = true
		oldAllocs, tracked := old.Metrics["allocs/op"]
		rec, ok := got[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench2json: FAIL %s: in baseline but missing from this run\n", key)
			pass = false
			continue
		}
		if !tracked {
			continue
		}
		newAllocs, ok := rec.Metrics["allocs/op"]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench2json: FAIL %s: baseline tracks allocs/op but the run reports none (run with -benchmem)\n", key)
			pass = false
			continue
		}
		if limit := oldAllocs*1.10 + 2.0; newAllocs > limit {
			fmt.Fprintf(os.Stderr, "bench2json: FAIL %s: allocs/op %.1f exceeds baseline %.1f (limit %.1f)\n",
				key, newAllocs, oldAllocs, limit)
			pass = false
		}
	}
	for _, rec := range doc.Benchmarks {
		if key := benchKey(rec.Name); !seen[key] {
			fmt.Fprintf(os.Stderr, "bench2json: note: %s not in baseline %s; regenerate it to start gating\n", key, path)
		}
	}
	if pass {
		fmt.Fprintf(os.Stderr, "bench2json: allocs/op within tolerance of %s (%d benchmarks)\n", path, len(base.Benchmarks))
	}
	return pass
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   10 allocs/op
//
// Metric values and units come in pairs after the iteration count.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	return rec, true
}
