// Command parmemd is the compile/assign daemon: it serves the parmem
// engine (compile, assign, batch) over a length-prefixed framed TCP
// protocol, multiplexing concurrent requests over one shared worker pool
// and allocation cache.
//
// Usage:
//
//	parmemd -addr 127.0.0.1:7433 [flags]
//
// Robustness envelope (all bounded, all flag-tunable): -max-inflight and
// -max-queue size the two-stage admission gate — requests beyond both are
// shed immediately with a typed RESOURCE_EXHAUSTED, never queued
// unboundedly; -per-conn caps concurrent requests per connection;
// -max-frame-bytes rejects oversized frames with a typed error;
// -frame-timeout kills slow-loris connections; -default-deadline /
// -max-deadline / -max-budget-nodes clamp what clients may ask of the
// engine. Handler panics come back as typed INTERNAL responses while the
// process keeps serving.
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops accepting,
// refuses new requests on live connections with UNAVAILABLE, waits up to
// -drain-grace for in-flight requests to finish (their responses are always
// written), then exits 0. A second signal exits immediately.
//
// -telemetry-addr serves /metrics, /debug/vars and /debug/pprof plus the
// daemon's /healthz, /readyz and /debug/flight (readiness flips to 503 the
// moment a drain starts, so load balancers stop routing before connections
// close).
//
// -trace FILE exports every span as one JSON line, stamped with the
// distributed trace context requests carry over the wire; parmemtrace
// merges such files from a whole fleet into one Chrome trace. The flight
// recorder is always on: an in-memory ring of recent request records whose
// anomalies (slow per -flight-latency, shed, degraded, internal) snapshot
// the ring plus the request's span tree — -flight-dir spools captures to
// disk, bounded by -flight-max-captures with oldest-first eviction.
//
// -cache-dir backs the shared allocation cache with a persistent disk
// tier (an append-log cache directory, see DESIGN §13), so a restarted
// daemon serves previously compiled programs as cache hits; -cache-max-bytes
// bounds it and -cache-readonly opens it as a snapshot.
//
// Every flag is also settable through the environment as PARMEMD_<FLAG>
// (dashes to underscores, upper-cased: PARMEMD_CACHE_DIR configures
// -cache-dir). An explicit command-line flag always wins over its
// variable.
//
// The listen address is announced on stderr as "parmemd: listening on
// ADDR" once the socket is bound — with -addr :0 this is how scripts learn
// the picked port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parmem"
	"parmem/internal/envflag"
	"parmem/internal/server"
	"parmem/internal/telemetry"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7433", "listen address (host:port; port 0 picks a free one)")
		maxInFlight   = flag.Int("max-inflight", 8, "requests executing concurrently")
		maxQueue      = flag.Int("max-queue", 0, "admission queue length (0: 2*max-inflight, negative: no queue)")
		perConn       = flag.Int("per-conn", 4, "concurrent requests per connection")
		maxFrame      = flag.Int("max-frame-bytes", server.DefaultMaxFrame, "largest accepted frame payload")
		maxBatch      = flag.Int("max-batch-items", 64, "sources per batch request")
		defDeadline   = flag.Duration("default-deadline", 10*time.Second, "deadline for requests that carry none")
		maxDeadline   = flag.Duration("max-deadline", 60*time.Second, "clamp on client-requested deadlines")
		budgetNodes   = flag.Int64("max-budget-nodes", parmem.DefaultMaxBacktrackNodes, "clamp on client-requested search budgets")
		frameTimeout  = flag.Duration("frame-timeout", 10*time.Second, "slow-loris guard: max wall time per frame")
		workers       = flag.Int("workers", 1, "engine pool size per request")
		cacheCap      = flag.Int("cache-cap", 0, "shared allocation cache capacity (0: engine default, negative: disabled)")
		cacheDir      = flag.String("cache-dir", "", "persistent cache directory: back the allocation cache with a disk tier surviving restarts")
		cacheBytes    = flag.Int64("cache-max-bytes", 0, "disk cache size bound in bytes (0: tier default)")
		cacheReadOnly = flag.Bool("cache-readonly", false, "open the disk cache as a snapshot; serve hits but persist nothing")
		telemetryAddr = flag.String("telemetry-addr", "", "serve /metrics, /debug/*, /healthz and /readyz on this address")
		drainGrace    = flag.Duration("drain-grace", 30*time.Second, "how long a graceful drain waits for in-flight requests")
		traceFile     = flag.String("trace", "", "export spans as JSON lines to this file (merge fleet-wide with parmemtrace)")
		flightDir     = flag.String("flight-dir", "", "spool triggered flight captures to this directory")
		flightLatency = flag.Duration("flight-latency", time.Second, "latency threshold that triggers a flight capture (negative: disabled)")
		flightMax     = flag.Int("flight-max-captures", 32, "flight captures retained in memory and on disk")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "parmemd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	// Every flag is also settable as PARMEMD_<FLAG> (dashes to
	// underscores, upper-cased); an explicit flag wins over its variable.
	if err := envflag.Apply("PARMEMD", flag.CommandLine); err != nil {
		fmt.Fprintf(os.Stderr, "parmemd: %v\n", err)
		os.Exit(2)
	}

	rec := telemetry.New()
	var traceSink *telemetry.JSONLSink
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parmemd: -trace: %v\n", err)
			os.Exit(1)
		}
		traceSink = telemetry.NewJSONLSink(f)
		traceSink.WriteProcess("parmemd", rec.Tracer())
		rec.AddSink(traceSink)
	}
	s, err := server.New(server.Config{
		Addr:              *addr,
		MaxInFlight:       *maxInFlight,
		MaxQueue:          *maxQueue,
		PerConnInFlight:   *perConn,
		MaxFrameBytes:     *maxFrame,
		MaxBatchItems:     *maxBatch,
		DefaultDeadline:   *defDeadline,
		MaxDeadline:       *maxDeadline,
		MaxBudgetNodes:    *budgetNodes,
		FrameTimeout:      *frameTimeout,
		Workers:           *workers,
		CacheCapacity:     *cacheCap,
		CacheDir:          *cacheDir,
		MaxCacheBytes:     *cacheBytes,
		CacheReadOnly:     *cacheReadOnly,
		Telemetry:         rec,
		FlightDir:         *flightDir,
		FlightLatency:     *flightLatency,
		FlightMaxCaptures: *flightMax,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "parmemd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "parmemd: listening on %s\n", s.Addr())

	if *telemetryAddr != "" {
		ts, err := rec.Serve(*telemetryAddr)
		switch {
		case errors.Is(err, telemetry.ErrAddrInUse):
			// The engine port bound fine; losing the observability endpoint
			// is worth a warning, not the daemon.
			fmt.Fprintf(os.Stderr, "parmemd: -telemetry-addr %s: %v; live endpoint disabled\n", *telemetryAddr, err)
		case err != nil:
			fmt.Fprintf(os.Stderr, "parmemd: %v\n", err)
			os.Exit(1)
		default:
			defer ts.Close()
			s.MountHealth(ts)
			fmt.Fprintf(os.Stderr, "parmemd: telemetry on http://%s/metrics (health: /healthz, /readyz)\n", ts.Addr())
		}
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "parmemd: %v: draining (grace %v)\n", sig, *drainGrace)

	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "parmemd: %v during drain: exiting now\n", sig)
		os.Exit(1)
	}()
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "parmemd: drain: %v\n", err)
		os.Exit(1)
	}
	if traceSink != nil {
		if err := traceSink.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "parmemd: -trace: %v\n", err)
		}
	}
	fmt.Fprintln(os.Stderr, "parmemd: drained cleanly")
}
