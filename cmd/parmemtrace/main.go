// Command parmemtrace merges per-process JSONL span exports (the -trace
// output of parmemd, parmemgw and parmemsoak) into one Chrome trace_event
// file viewable in chrome://tracing or Perfetto, with one pid lane per
// process and flow arrows for every cross-process rpc link.
//
// Usage:
//
//	parmemtrace [-o merged.json] [-min-processes N] daemon1.jsonl daemon2.jsonl gw.jsonl
//
// Per-process clocks are monotonic and private; the merger aligns them
// coarsely by the wall-clock epoch in each file's process header, then
// refines by causality — a span with a remote parent cannot start before
// that parent — which absorbs wall-clock skew between hosts.
//
// A per-trace summary (span count, process fan) is printed to stderr for
// the -top largest traces, plus one totals line. -min-processes N exits
// nonzero unless at least one trace id spans N or more processes — the
// smoke-test gate proving fleet-wide propagation.
package main

import (
	"flag"
	"fmt"
	"os"

	"parmem/internal/tracemerge"
)

func main() {
	var (
		out     = flag.String("o", "", "write the merged Chrome trace here (default stdout)")
		minProc = flag.Int("min-processes", 0, "fail unless one trace id spans at least this many processes")
		top     = flag.Int("top", 10, "per-trace summary lines to print (largest first; 0 silences them)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "parmemtrace: no input files (expected JSONL span exports)")
		os.Exit(2)
	}

	var procs []tracemerge.ProcessTrace
	for _, path := range flag.Args() {
		pt, err := tracemerge.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parmemtrace: %s: %v\n", path, err)
			os.Exit(1)
		}
		procs = append(procs, pt)
	}

	m := tracemerge.Merge(procs)
	multi, spans := 0, 0
	for _, t := range m.Traces {
		spans += t.Spans
		if t.Processes > 1 {
			multi++
		}
	}
	for i, t := range m.Traces {
		if i >= *top {
			break
		}
		fmt.Fprintf(os.Stderr, "parmemtrace: trace %s: %d spans across %d process(es)\n",
			t.Trace, t.Spans, t.Processes)
	}
	fmt.Fprintf(os.Stderr, "parmemtrace: %d spans in %d traces from %d processes (%d traces cross-process)\n",
		spans, len(m.Traces), len(procs), multi)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parmemtrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := m.WriteChrome(w); err != nil {
		fmt.Fprintf(os.Stderr, "parmemtrace: %v\n", err)
		os.Exit(1)
	}

	if *minProc > 0 && m.MaxTraceProcesses() < *minProc {
		fmt.Fprintf(os.Stderr, "parmemtrace: no trace spans %d processes (max %d)\n",
			*minProc, m.MaxTraceProcesses())
		os.Exit(1)
	}
}
