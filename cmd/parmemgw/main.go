// Command parmemgw fronts a fleet of parmemd backends: it speaks the same
// framed TCP protocol and routes every compile/assign/batch request to
// one backend by consistent hashing over the request's cache identity
// (the canonical conflict-graph hash for assigns, the source text and
// options for compiles). Identical work always lands on the same backend,
// so the fleet's allocation caches — including persistent -cache-dir
// tiers — partition the keyspace into disjoint warm shards.
//
// Usage:
//
//	parmemgw -addr 127.0.0.1:7432 -backends 127.0.0.1:7433,127.0.0.1:7434
//
// Backend health is probed continuously (protocol ping, which also sees a
// backend's drain state; -ready-urls adds per-backend /readyz probes).
// Requests whose preferred backend is down or draining fail over along
// the hash ring; only when no backend is routable does the client see a
// typed UNAVAILABLE. Pings are answered by the gateway itself.
//
// Every flag is also settable through the environment as PARMEMGW_<FLAG>
// (dashes to underscores, upper-cased). An explicit flag wins over its
// variable. On SIGTERM or SIGINT the gateway drains gracefully, waiting
// up to -drain-grace for in-flight forwards.
//
// The listen address is announced on stderr as "parmemgw: listening on
// ADDR" once the socket is bound.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parmem/internal/envflag"
	"parmem/internal/gateway"
	"parmem/internal/server"
	"parmem/internal/telemetry"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7432", "listen address (host:port; port 0 picks a free one)")
		backends      = flag.String("backends", "", "comma-separated parmemd addresses to route across (required)")
		readyURLs     = flag.String("ready-urls", "", "comma-separated /readyz URLs, matched to -backends by position (optional)")
		replicas      = flag.Int("replicas", 0, "virtual nodes per backend on the hash ring (0: default)")
		maxFrame      = flag.Int("max-frame-bytes", server.DefaultMaxFrame, "largest accepted frame payload")
		frameTimeout  = flag.Duration("frame-timeout", 10*time.Second, "bound on response writes")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "backend health probe period")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "bound on one health probe")
		fwdTimeout    = flag.Duration("forward-timeout", 60*time.Second, "bound on one forwarded request")
		telemetryAddr = flag.String("telemetry-addr", "", "serve /metrics, /debug/*, /healthz and /readyz on this address")
		drainGrace    = flag.Duration("drain-grace", 30*time.Second, "how long a graceful drain waits for in-flight forwards")
		traceFile     = flag.String("trace", "", "export spans as JSON lines to this file (merge fleet-wide with parmemtrace)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "parmemgw: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if err := envflag.Apply("PARMEMGW", flag.CommandLine); err != nil {
		fmt.Fprintf(os.Stderr, "parmemgw: %v\n", err)
		os.Exit(2)
	}
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "parmemgw: -backends is required")
		os.Exit(2)
	}

	rec := telemetry.New()
	var traceSink *telemetry.JSONLSink
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parmemgw: -trace: %v\n", err)
			os.Exit(1)
		}
		traceSink = telemetry.NewJSONLSink(f)
		traceSink.WriteProcess("parmemgw", rec.Tracer())
		rec.AddSink(traceSink)
	}
	g, err := gateway.New(gateway.Config{
		Addr:           *addr,
		Backends:       splitList(*backends),
		ReadyURLs:      splitList(*readyURLs),
		Replicas:       *replicas,
		MaxFrameBytes:  *maxFrame,
		FrameTimeout:   *frameTimeout,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		ForwardTimeout: *fwdTimeout,
		Telemetry:      rec,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "parmemgw: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "parmemgw: listening on %s\n", g.Addr())

	if *telemetryAddr != "" {
		ts, err := rec.Serve(*telemetryAddr)
		switch {
		case errors.Is(err, telemetry.ErrAddrInUse):
			fmt.Fprintf(os.Stderr, "parmemgw: -telemetry-addr %s: %v; live endpoint disabled\n", *telemetryAddr, err)
		case err != nil:
			fmt.Fprintf(os.Stderr, "parmemgw: %v\n", err)
			os.Exit(1)
		default:
			defer ts.Close()
			g.MountHealth(ts)
			fmt.Fprintf(os.Stderr, "parmemgw: telemetry on http://%s/metrics (health: /healthz, /readyz)\n", ts.Addr())
		}
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigs
	fmt.Fprintf(os.Stderr, "parmemgw: %v: draining (grace %v)\n", sig, *drainGrace)

	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "parmemgw: %v during drain: exiting now\n", sig)
		os.Exit(1)
	}()
	if err := g.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "parmemgw: drain: %v\n", err)
		os.Exit(1)
	}
	if traceSink != nil {
		if err := traceSink.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "parmemgw: -trace: %v\n", err)
		}
	}
	fmt.Fprintln(os.Stderr, "parmemgw: drained cleanly")
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
