// Command parmem-tables regenerates the paper's evaluation: Table 1
// (duplication of data under STOR1/STOR2/STOR3), Table 2 (memory conflicts
// due to array accesses at k=8 and k=4), the overall speed-up report, and
// the worked examples of Figs. 1, 3 and 8.
//
// Usage:
//
//	parmem-tables                  print everything
//	parmem-tables -table 1         only Table 1
//	parmem-tables -table 2         only Table 2
//	parmem-tables -speedup         only the speed-up report
//	parmem-tables -figures         only the worked figures
//	parmem-tables -batch 'x/*.mpl' Table-1-style rows for external files
//
// -batch compiles every MPL file matching the glob through the batch
// compiler (shared worker pool, budget and cache) and prints one
// allocation row per file instead of the built-in suite. -cache-dir
// persists the suite's allocation cache on disk, so regenerating the
// tables a second time serves every assignment from the cache.
//
// -timeout bounds the whole regeneration with a context deadline.
// -cpuprofile and -memprofile write runtime/pprof profiles of the sweep;
// -trace FILE writes a Chrome trace_event file of every compilation,
// -metrics dumps the engine metrics to stderr on exit, and -telemetry-addr
// serves /metrics, /debug/vars and /debug/pprof while the sweep runs
// (-telemetry-linger keeps the endpoint up afterwards).
// Exit codes: 0 success, 1 failure (any file, in batch mode), 4 canceled
// (timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"parmem"
	"parmem/internal/assign"
	"parmem/internal/conflict"
	"parmem/internal/profiling"
	"parmem/internal/telemetrycli"
)

// Exit codes. 2 is reserved (flag parse errors use it), 3 means a
// budget-degraded run elsewhere in the suite (parmemc).
const (
	exitFailure  = 1
	exitCanceled = 4
)

func main() {
	var (
		table      = flag.Int("table", 0, "print only this table (1 or 2)")
		speedup    = flag.Bool("speedup", false, "print only the speed-up report")
		figures    = flag.Bool("figures", false, "print only the worked figures")
		sweep      = flag.String("sweep", "", "width-sweep this benchmark across k = 2..16")
		batchGlob  = flag.String("batch", "", "compile MPL files matching this glob as one batch")
		k          = flag.Int("k", 8, "memory modules for Table 1 and speed-ups")
		timeout    = flag.Duration("timeout", 0, "wall-clock limit for the whole run (0 disables)")
		workers    = flag.Int("workers", 0, "assignment worker pool size (0 = one per CPU, 1 = sequential)")
		useCache   = flag.Bool("cache", true, "share an allocation cache across the suite's recompilations")
		cacheDir   = flag.String("cache-dir", "", "persist the allocation cache here; later invocations reuse earlier results")
		cacheStats = flag.Bool("cache-stats", false, "print allocation-cache hit/miss counters at the end")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	tcfg := telemetrycli.Flags(flag.CommandLine)
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stop()

	rec, stopTel, err := tcfg.Start()
	if err != nil {
		fatal(err)
	}
	stopTelemetry = stopTel
	defer stopTel()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// One cache serves every driver call below: the drivers recompile the
	// same six benchmark programs over and over (Table 1 alone compiles
	// each under three strategies), which is exactly the workload the
	// allocation cache exists for.
	opts := []parmem.ExperimentOption{parmem.WithWorkers(*workers), parmem.WithTelemetry(rec)}
	var alcache *parmem.AllocCache
	var store parmem.CacheStore
	switch {
	case *cacheDir != "":
		store, err = parmem.OpenCacheStore(parmem.CacheConfig{DiskPath: *cacheDir})
		if err != nil {
			fatal(err)
		}
		closeStore = func() { store.Close() }
		defer closeStore()
		alcache = store.Cache()
		opts = append(opts, parmem.WithCacheStore(store))
	case *useCache:
		alcache = parmem.NewAllocCache(0)
		opts = append(opts, parmem.WithAllocCache(alcache))
	}

	if *batchGlob != "" {
		printBatch(ctx, *batchGlob, *k, *workers, store, alcache, rec)
		if *cacheStats && alcache != nil {
			printCacheStats(alcache)
		}
		return
	}
	if *sweep != "" {
		rows, err := parmem.WidthSweep(ctx, *sweep, []int{2, 4, 8, 16}, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Width sweep (reconfigurable LIW: modules = units)\n\n")
		fmt.Print(parmem.FormatWidthSweep(rows))
		return
	}
	all := *table == 0 && !*speedup && !*figures
	if all || *table == 1 {
		printTable1(ctx, *k, opts)
	}
	if all || *table == 2 {
		printTable2(ctx, opts)
	}
	if all || *speedup {
		printSpeedups(ctx, *k, opts)
	}
	if all || *figures {
		printFigures()
	}
	if *cacheStats && alcache != nil {
		printCacheStats(alcache)
	}
}

// printCacheStats prints the aggregate counters plus the per-memo-level
// breakdown (whole assignments, duplication phases, atom colorings).
func printCacheStats(c *parmem.AllocCache) {
	st := c.Stats()
	fmt.Printf("allocation cache: %d hits, %d misses, %d entries\n", st.Hits, st.Misses, st.Entries)
	for _, lv := range []string{"assign", "dup", "atomcolor"} {
		if ls, ok := st.Levels[lv]; ok {
			fmt.Printf("  %-10s %d hits, %d misses\n", lv, ls.Hits, ls.Misses)
		}
	}
}

// printBatch compiles every file matching the glob through the batch
// compiler and prints a Table-1-style allocation row per file.
func printBatch(ctx context.Context, pattern string, k, workers int, store parmem.CacheStore, cache *parmem.AllocCache, rec *parmem.Recorder) {
	files, err := filepath.Glob(pattern)
	if err != nil {
		fatal(err)
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("no files match %q", pattern))
	}
	sort.Strings(files)
	srcs := make([]string, len(files))
	for i, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		srcs[i] = string(b)
	}
	results := parmem.CompileBatch(ctx, srcs, parmem.Options{Modules: k, Workers: workers, Store: store, Cache: cache, Telemetry: rec})
	fmt.Printf("Batch allocation (k=%d, %d files)\n\n", k, len(files))
	fmt.Printf("%-24s %8s %8s %8s %6s\n", "file", "single", "multi", "copies", "words")
	failed := false
	for i, r := range results {
		if r.Err != nil {
			if errors.Is(r.Err, parmem.ErrCanceled) {
				fatal(r.Err)
			}
			failed = true
			fmt.Printf("%-24s error: %v\n", filepath.Base(files[i]), r.Err)
			continue
		}
		al := r.Program.Alloc
		fmt.Printf("%-24s %8d %8d %8d %6d\n", filepath.Base(files[i]),
			al.SingleCopy, al.MultiCopy, al.TotalCopies, len(r.Program.Sched.Words))
	}
	if failed {
		closeStore()
		stopProfiles()
		stopTelemetry()
		os.Exit(exitFailure)
	}
}

func printTable1(ctx context.Context, k int, opts []parmem.ExperimentOption) {
	rows, err := parmem.Table1(ctx, k, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Table 1. Duplication of Data (k=%d)\n", k)
	fmt.Printf("(paper, k=8: STOR1 almost no duplication; STOR2 worst; STOR3 between)\n\n")
	fmt.Print(parmem.FormatTable1(rows))
	fmt.Println()
}

func printTable2(ctx context.Context, opts []parmem.ExperimentOption) {
	ks := []int{8, 4}
	rows, err := parmem.Table2(ctx, ks, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Println("Table 2. Memory Conflicts due to Array Accesses")
	fmt.Println("(paper: t_ave/t_min 1.02-1.20, t_max/t_min 1.09-1.38; meas = simulated interleaved layout)")
	fmt.Println()
	fmt.Print(parmem.FormatTable2(rows, ks))
	fmt.Println()
}

func printSpeedups(ctx context.Context, k int, opts []parmem.ExperimentOption) {
	rows, err := parmem.Speedups(ctx, k, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Overall speed-up over sequential execution (k=%d)\n", k)
	fmt.Println("(paper: 64%-300% overall speed-up on the RLIW system)")
	fmt.Println()
	fmt.Print(parmem.FormatSpeedups(rows))
	fmt.Println()
}

// printFigures reruns the paper's worked examples through the real
// pipeline.
func printFigures() {
	fmt.Println("Worked examples (paper Figs. 1, 3, 8)")
	fmt.Println()

	show := func(name string, instrs []conflict.Instruction, k int) {
		p := assign.Program{Instrs: instrs}
		al, err := assign.Assign(p, assign.Options{K: k})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s (k=%d):\n", name, k)
		for v := 1; v <= maxValue(instrs); v++ {
			set, ok := al.Copies[v]
			if !ok {
				continue
			}
			marks := ""
			for m := 0; m < k; m++ {
				if set.Has(m) {
					marks += "x"
				} else {
					marks += "-"
				}
			}
			fmt.Printf("  V%d %s\n", v, marks)
		}
		fmt.Printf("  values: %d single-copy, %d replicated; %d total copies\n\n",
			al.SingleCopy, al.MultiCopy, al.TotalCopies)
	}

	show("Fig. 1 — conflict-free assignment exists",
		[]conflict.Instruction{{1, 2, 4}, {2, 3, 5}, {2, 3, 4}}, 3)

	show("Fig. 1 + {V2 V4 V5} — one value must be replicated",
		[]conflict.Instruction{{1, 2, 4}, {2, 3, 5}, {2, 3, 4}, {2, 4, 5}}, 3)

	show("Fig. 3 — K5 conflict graph, two values replicated",
		[]conflict.Instruction{{1, 2, 3}, {2, 3, 4}, {1, 3, 4}, {1, 3, 5}, {2, 3, 5}, {1, 4, 5}}, 3)

	show("Fig. 8 — placement decides the copy count of V4",
		[]conflict.Instruction{{1, 2, 3, 5}, {4, 2, 3, 5}, {1, 2, 3, 4}, {4, 2, 1, 5}}, 4)
}

func maxValue(instrs []conflict.Instruction) int {
	max := 0
	for _, in := range instrs {
		for _, v := range in {
			if v > max {
				max = v
			}
		}
	}
	return max
}

// stopProfiles flushes any active profiles; fatal must call it because
// deferred functions do not run past os.Exit. Replaced in main once
// profiling starts.
var stopProfiles = func() {}

// stopTelemetry flushes the trace file, dumps metrics and closes the live
// endpoint; same every-exit-path discipline as stopProfiles.
var stopTelemetry = func() {}

// closeStore flushes and closes the persistent cache store opened by
// -cache-dir; same every-exit-path discipline as stopProfiles.
var closeStore = func() {}

func fatal(err error) {
	closeStore()
	stopProfiles()
	stopTelemetry()
	fmt.Fprintln(os.Stderr, "parmem-tables:", err)
	if errors.Is(err, parmem.ErrCanceled) {
		os.Exit(exitCanceled)
	}
	os.Exit(exitFailure)
}
