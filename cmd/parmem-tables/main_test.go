package main

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "parmem-tables")
	cmd := exec.Command("go", "build", "-o", bin, "parmem/cmd/parmem-tables")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestTablesTable1(t *testing.T) {
	bin := buildCLI(t)
	out, err := exec.Command(bin, "-table", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"Table 1", "TAYLOR1", "COLOR", "STOR1", "STOR3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestTablesFigures(t *testing.T) {
	bin := buildCLI(t)
	out, err := exec.Command(bin, "-figures").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"Fig. 1", "Fig. 3", "Fig. 8", "replicated"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
}

func TestTablesSpeedup(t *testing.T) {
	bin := buildCLI(t)
	out, err := exec.Command(bin, "-speedup").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "speedup") {
		t.Fatalf("missing speedup column:\n%s", out)
	}
}

// TestTablesTimeoutExitCode: an immediate timeout exits with the
// dedicated canceled code 4.
func TestTablesTimeoutExitCode(t *testing.T) {
	bin := buildCLI(t)
	out, err := exec.Command(bin, "-timeout", "1ns", "-table", "1").CombinedOutput()
	if err == nil {
		t.Fatalf("expected failure, got:\n%s", out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("not an exit error: %v", err)
	}
	if ee.ExitCode() != exitCanceled {
		t.Fatalf("exit = %d, want %d\n%s", ee.ExitCode(), exitCanceled, out)
	}
	if !strings.Contains(string(out), "canceled") {
		t.Fatalf("output missing cancellation notice:\n%s", out)
	}
}
