package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles this command into a temp dir once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "parmemc")
	cmd := exec.Command("go", "build", "-o", bin, "parmem/cmd/parmemc")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestCLIStatsAndRun(t *testing.T) {
	bin := buildCLI(t)
	out, err := run(t, bin, "-bench", "FFT", "-stats", "-run")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"FFT:", "single-copy", "speedup", "transfer times"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLICompileFile(t *testing.T) {
	bin := buildCLI(t)
	src := `program t; var x: int; begin x := 1 + 2; end`
	file := filepath.Join(t.TempDir(), "t.mpl")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, bin, "-dump-ir", "-dump-alloc", file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "func t:") {
		t.Fatalf("missing IR dump:\n%s", out)
	}
	if !strings.Contains(out, "x") || !strings.Contains(out, "x-------") {
		t.Fatalf("missing allocation matrix:\n%s", out)
	}
}

func TestCLIDumpSchedAndConflicts(t *testing.T) {
	bin := buildCLI(t)
	out, err := run(t, bin, "-bench", "SORT", "-dump-sched", "-dump-conflicts")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "w0:") {
		t.Fatalf("missing schedule dump:\n%s", out)
	}
}

func TestCLIOptionsMatrix(t *testing.T) {
	bin := buildCLI(t)
	for _, args := range [][]string{
		{"-bench", "SORT", "-strategy", "STOR2"},
		{"-bench", "SORT", "-strategy", "STOR3", "-method", "backtrack"},
		{"-bench", "SORT", "-k", "4", "-unroll", "4"},
		{"-bench", "SORT", "-no-atoms", "-no-rename"},
	} {
		if out, err := run(t, bin, args...); err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	bin := buildCLI(t)
	cases := [][]string{
		{},                                    // no input
		{"-bench", "NOPE"},                    // unknown benchmark
		{"-strategy", "BAD", "-bench", "FFT"}, // bad strategy
		{"-method", "BAD", "-bench", "FFT"},   // bad method
		{"/nonexistent/file.mpl"},             // missing file
	}
	for _, args := range cases {
		if out, err := run(t, bin, args...); err == nil {
			t.Fatalf("args %v: expected failure, got:\n%s", args, out)
		}
	}
}

func TestCLITrace(t *testing.T) {
	bin := buildCLI(t)
	src := `program t; var x: int; begin x := 1 + 2; end`
	file := filepath.Join(t.TempDir(), "t.mpl")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, bin, "-run", "-trace", file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "w0 b0") {
		t.Fatalf("missing trace output:\n%s", out)
	}
}
