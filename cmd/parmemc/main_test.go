package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCLI compiles this command into a temp dir once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "parmemc")
	cmd := exec.Command("go", "build", "-o", bin, "parmem/cmd/parmemc")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestCLIStatsAndRun(t *testing.T) {
	bin := buildCLI(t)
	out, err := run(t, bin, "-bench", "FFT", "-stats", "-run")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"FFT:", "single-copy", "speedup", "transfer times"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLICompileFile(t *testing.T) {
	bin := buildCLI(t)
	src := `program t; var x: int; begin x := 1 + 2; end`
	file := filepath.Join(t.TempDir(), "t.mpl")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, bin, "-dump-ir", "-dump-alloc", file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "func t:") {
		t.Fatalf("missing IR dump:\n%s", out)
	}
	if !strings.Contains(out, "x") || !strings.Contains(out, "x-------") {
		t.Fatalf("missing allocation matrix:\n%s", out)
	}
}

func TestCLIDumpSchedAndConflicts(t *testing.T) {
	bin := buildCLI(t)
	out, err := run(t, bin, "-bench", "SORT", "-dump-sched", "-dump-conflicts")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "w0:") {
		t.Fatalf("missing schedule dump:\n%s", out)
	}
}

func TestCLIOptionsMatrix(t *testing.T) {
	bin := buildCLI(t)
	for _, args := range [][]string{
		{"-bench", "SORT", "-strategy", "STOR2"},
		{"-bench", "SORT", "-strategy", "STOR3", "-method", "backtrack"},
		{"-bench", "SORT", "-k", "4", "-unroll", "4"},
		{"-bench", "SORT", "-no-atoms", "-no-rename"},
	} {
		if out, err := run(t, bin, args...); err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	bin := buildCLI(t)
	cases := [][]string{
		{},                                    // no input
		{"-bench", "NOPE"},                    // unknown benchmark
		{"-strategy", "BAD", "-bench", "FFT"}, // bad strategy
		{"-method", "BAD", "-bench", "FFT"},   // bad method
		{"/nonexistent/file.mpl"},             // missing file
	}
	for _, args := range cases {
		if out, err := run(t, bin, args...); err == nil {
			t.Fatalf("args %v: expected failure, got:\n%s", args, out)
		}
	}
}

func TestCLITrace(t *testing.T) {
	bin := buildCLI(t)
	src := `program t; var x: int; begin x := 1 + 2; end`
	file := filepath.Join(t.TempDir(), "t.mpl")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, bin, "-run", "-trace-words", file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "w0 b0") {
		t.Fatalf("missing trace output:\n%s", out)
	}
}

// exitCode extracts the process exit code from run's error.
func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("not an exit error: %v", err)
	}
	return ee.ExitCode()
}

// TestCLIDegradedExitCode: a one-node backtracking budget on a program
// that needs replication must still succeed, report the fallback in
// -stats, warn, and exit with the dedicated degraded code 3.
func TestCLIDegradedExitCode(t *testing.T) {
	bin := buildCLI(t)
	src := `program tri;
var a, b, c, s: int;
begin
  a := 1; b := 2; c := 3;
  s := a + b;
  s := s + (b + c);
  s := s + (a + c);
end`
	file := filepath.Join(t.TempDir(), "tri.mpl")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, bin, "-k", "2", "-method", "backtrack", "-budget-nodes", "1", "-stats", file)
	if code := exitCode(t, err); code != exitDegraded {
		t.Fatalf("exit = %d, want %d\n%s", code, exitDegraded, out)
	}
	for _, want := range []string{"fallback=", "degraded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCLITimeoutExitCode: an immediate timeout aborts with the canceled
// exit code 4.
func TestCLITimeoutExitCode(t *testing.T) {
	bin := buildCLI(t)
	out, err := run(t, bin, "-timeout", "1ns", "-bench", "FFT")
	if code := exitCode(t, err); code != exitCanceled {
		t.Fatalf("exit = %d, want %d\n%s", code, exitCanceled, out)
	}
	if !strings.Contains(out, "canceled") {
		t.Fatalf("output missing cancellation notice:\n%s", out)
	}
}

// TestCLITraceSmoke: -trace must produce a Chrome trace_event document
// that parses as JSON and carries one span per pipeline phase plus the
// per-atom coloring spans — the file a developer drops into
// chrome://tracing or Perfetto.
func TestCLITraceSmoke(t *testing.T) {
	bin := buildCLI(t)
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	out, err := run(t, bin, "-bench", "FFT", "-workers", "4", "-trace", traceFile, "-metrics")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Pid  int64  `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	seen := map[string]int{}
	lastTs := int64(-1)
	for _, ev := range doc.TraceEvents {
		seen[ev.Name]++
		if ev.Ph == "X" {
			if ev.Ts < lastTs {
				t.Fatalf("timestamps not monotonic: %d after %d", ev.Ts, lastTs)
			}
			lastTs = ev.Ts
		}
	}
	for _, phase := range []string{"process_name", "compile", "parse", "schedule", "assign", "phase", "atom"} {
		if seen[phase] == 0 {
			t.Errorf("trace missing %q events (saw %v)", phase, seen)
		}
	}
	// -metrics dumps the registry to stderr on exit.
	if !strings.Contains(out, "parmem_instructions_total") {
		t.Fatalf("-metrics dump missing from output:\n%s", out)
	}
}

// TestCLITelemetryEndpoint scrapes /metrics from a live run: the server
// line on stderr names the bound port, and -telemetry-linger keeps the
// endpoint up after the compile finishes so a one-shot invocation can
// still be scraped.
func TestCLITelemetryEndpoint(t *testing.T) {
	bin := buildCLI(t)
	cmd := exec.Command(bin, "-bench", "FFT", "-telemetry-addr", "127.0.0.1:0", "-telemetry-linger", "30s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	sc := bufio.NewScanner(stderr)
	addr := ""
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "telemetry: serving on ") {
			addr = strings.TrimPrefix(line, "telemetry: serving on ")
			break
		}
	}
	if addr == "" {
		t.Fatalf("no serving line on stderr (scan err: %v)", sc.Err())
	}

	// The compile may still be running; poll until the instruction counter
	// shows up or the deadline passes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && strings.Contains(string(body), "parmem_instructions_total") {
				if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
					t.Fatalf("content-type = %q", ct)
				}
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("never scraped parmem_instructions_total from /metrics")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCLICycleBudget: exceeding -max-cycles is a failed run (exit 1), not
// a degraded one.
func TestCLICycleBudget(t *testing.T) {
	bin := buildCLI(t)
	out, err := run(t, bin, "-bench", "SORT", "-run", "-max-cycles", "3")
	if code := exitCode(t, err); code != exitFailure {
		t.Fatalf("exit = %d, want %d\n%s", code, exitFailure, out)
	}
	if !strings.Contains(out, "budget exhausted") {
		t.Fatalf("output missing budget error:\n%s", out)
	}
}
