package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles this command into a temp dir once per test run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "parmemc")
	cmd := exec.Command("go", "build", "-o", bin, "parmem/cmd/parmemc")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestCLIStatsAndRun(t *testing.T) {
	bin := buildCLI(t)
	out, err := run(t, bin, "-bench", "FFT", "-stats", "-run")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"FFT:", "single-copy", "speedup", "transfer times"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLICompileFile(t *testing.T) {
	bin := buildCLI(t)
	src := `program t; var x: int; begin x := 1 + 2; end`
	file := filepath.Join(t.TempDir(), "t.mpl")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, bin, "-dump-ir", "-dump-alloc", file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "func t:") {
		t.Fatalf("missing IR dump:\n%s", out)
	}
	if !strings.Contains(out, "x") || !strings.Contains(out, "x-------") {
		t.Fatalf("missing allocation matrix:\n%s", out)
	}
}

func TestCLIDumpSchedAndConflicts(t *testing.T) {
	bin := buildCLI(t)
	out, err := run(t, bin, "-bench", "SORT", "-dump-sched", "-dump-conflicts")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "w0:") {
		t.Fatalf("missing schedule dump:\n%s", out)
	}
}

func TestCLIOptionsMatrix(t *testing.T) {
	bin := buildCLI(t)
	for _, args := range [][]string{
		{"-bench", "SORT", "-strategy", "STOR2"},
		{"-bench", "SORT", "-strategy", "STOR3", "-method", "backtrack"},
		{"-bench", "SORT", "-k", "4", "-unroll", "4"},
		{"-bench", "SORT", "-no-atoms", "-no-rename"},
	} {
		if out, err := run(t, bin, args...); err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	bin := buildCLI(t)
	cases := [][]string{
		{},                                    // no input
		{"-bench", "NOPE"},                    // unknown benchmark
		{"-strategy", "BAD", "-bench", "FFT"}, // bad strategy
		{"-method", "BAD", "-bench", "FFT"},   // bad method
		{"/nonexistent/file.mpl"},             // missing file
	}
	for _, args := range cases {
		if out, err := run(t, bin, args...); err == nil {
			t.Fatalf("args %v: expected failure, got:\n%s", args, out)
		}
	}
}

func TestCLITrace(t *testing.T) {
	bin := buildCLI(t)
	src := `program t; var x: int; begin x := 1 + 2; end`
	file := filepath.Join(t.TempDir(), "t.mpl")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, bin, "-run", "-trace", file)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "w0 b0") {
		t.Fatalf("missing trace output:\n%s", out)
	}
}

// exitCode extracts the process exit code from run's error.
func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("not an exit error: %v", err)
	}
	return ee.ExitCode()
}

// TestCLIDegradedExitCode: a one-node backtracking budget on a program
// that needs replication must still succeed, report the fallback in
// -stats, warn, and exit with the dedicated degraded code 3.
func TestCLIDegradedExitCode(t *testing.T) {
	bin := buildCLI(t)
	src := `program tri;
var a, b, c, s: int;
begin
  a := 1; b := 2; c := 3;
  s := a + b;
  s := s + (b + c);
  s := s + (a + c);
end`
	file := filepath.Join(t.TempDir(), "tri.mpl")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, bin, "-k", "2", "-method", "backtrack", "-budget-nodes", "1", "-stats", file)
	if code := exitCode(t, err); code != exitDegraded {
		t.Fatalf("exit = %d, want %d\n%s", code, exitDegraded, out)
	}
	for _, want := range []string{"fallback=", "degraded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCLITimeoutExitCode: an immediate timeout aborts with the canceled
// exit code 4.
func TestCLITimeoutExitCode(t *testing.T) {
	bin := buildCLI(t)
	out, err := run(t, bin, "-timeout", "1ns", "-bench", "FFT")
	if code := exitCode(t, err); code != exitCanceled {
		t.Fatalf("exit = %d, want %d\n%s", code, exitCanceled, out)
	}
	if !strings.Contains(out, "canceled") {
		t.Fatalf("output missing cancellation notice:\n%s", out)
	}
}

// TestCLICycleBudget: exceeding -max-cycles is a failed run (exit 1), not
// a degraded one.
func TestCLICycleBudget(t *testing.T) {
	bin := buildCLI(t)
	out, err := run(t, bin, "-bench", "SORT", "-run", "-max-cycles", "3")
	if code := exitCode(t, err); code != exitFailure {
		t.Fatalf("exit = %d, want %d\n%s", code, exitFailure, out)
	}
	if !strings.Contains(out, "budget exhausted") {
		t.Fatalf("output missing budget error:\n%s", out)
	}
}
