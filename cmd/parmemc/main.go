// Command parmemc is the MPL compiler driver: it compiles a program through
// the full pipeline (parse → lower → rename → schedule → memory-module
// assignment), optionally runs it on the simulated LIW machine, and prints
// whatever stage the flags request.
//
// Usage:
//
//	parmemc [flags] file.mpl             compile a source file
//	parmemc [flags] -bench TAYLOR1       compile a built-in benchmark
//	parmemc [flags] -batch 'src/*.mpl'…  compile many files as one batch
//
// Flags select output: -dump-ir, -dump-sched, -dump-alloc, -dump-conflicts,
// -run, -stats. Robustness flags: -timeout bounds the whole run with a
// context deadline, -budget-nodes caps the backtracking search, and
// -max-cycles caps simulation length. Observability flags: -cpuprofile and
// -memprofile write runtime/pprof profiles; -trace FILE writes a Chrome
// trace_event file of the pipeline (open in chrome://tracing or Perfetto);
// -metrics dumps the engine metrics to stderr on exit; -telemetry-addr
// serves /metrics, /debug/vars and /debug/pprof live (-telemetry-linger
// keeps it up after the run); -reference runs the map-graph reference
// assignment phases instead of the dense core (ablation); -cache-dir
// persists the allocation cache across runs, so recompiling the same
// program skips its coloring and duplication searches entirely.
//
// -batch treats every positional argument as a file or glob pattern and
// streams the expanded file list through the batch compiler (one bounded
// worker pool, one shared budget, shared subproblem cache), printing one
// summary line per file. The dump and -run flags apply to single-file mode
// only.
//
// Exit codes: 0 success, 1 failure (in batch mode: any file failed),
// 3 success but the allocator degraded to a fallback method (budget
// exhausted; any file in batch mode), 4 canceled (timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"parmem"
	"parmem/internal/profiling"
	"parmem/internal/telemetrycli"
)

// Exit codes. 2 is reserved (flag parse errors use it).
const (
	exitFailure  = 1
	exitDegraded = 3
	exitCanceled = 4
)

func main() {
	var (
		modules    = flag.Int("k", 8, "number of parallel memory modules")
		units      = flag.Int("units", 0, "functional units per word (default: k)")
		strategy   = flag.String("strategy", "STOR1", "conflict-graph strategy: STOR1, STOR2, STOR3 or PerRegion")
		method     = flag.String("method", "hittingset", "duplication method: hittingset or backtrack")
		unroll     = flag.Int("unroll", 0, "loop unrolling factor (0 disables)")
		optimize   = flag.Bool("optimize", false, "run the scalar optimizer (folding, copy propagation, DCE)")
		ifconvert  = flag.Bool("ifconvert", false, "predicate short fault-free conditionals")
		noAtoms    = flag.Bool("no-atoms", false, "disable clique-separator decomposition")
		noRename   = flag.Bool("no-rename", false, "disable definition renaming")
		benchName  = flag.String("bench", "", "compile a built-in benchmark instead of a file")
		batch      = flag.Bool("batch", false, "treat arguments as files/globs and compile them as one batch")
		dumpIR     = flag.Bool("dump-ir", false, "print the three-address IR")
		dumpSched  = flag.Bool("dump-sched", false, "print the long-instruction-word schedule")
		dumpAlloc  = flag.Bool("dump-alloc", false, "print the memory-module allocation")
		dumpConfl  = flag.Bool("dump-conflicts", false, "print per-word operand sets")
		run        = flag.Bool("run", false, "execute on the simulated machine")
		traceWords = flag.Bool("trace-words", false, "with -run: print each executed word")
		showStats  = flag.Bool("stats", false, "print allocation and execution statistics")
		timeout    = flag.Duration("timeout", 0, "wall-clock limit for the whole run (0 disables)")
		nodes      = flag.Int64("budget-nodes", 0, "backtracking node budget (0 = default, -1 = unlimited)")
		maxCycles  = flag.Int64("max-cycles", 0, "with -run: abort after this many machine cycles (0 disables)")
		workers    = flag.Int("workers", 0, "assignment worker pool size (0 = one per CPU, 1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		reference  = flag.Bool("reference", false, "use the map-graph reference assignment phases (ablation)")
		cacheDir   = flag.String("cache-dir", "", "persist the allocation cache here; later runs reuse earlier results")
	)
	tcfg := telemetrycli.Flags(flag.CommandLine)
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stop()

	rec, stopTel, err := tcfg.Start()
	if err != nil {
		fatal(err)
	}
	stopTelemetry = stopTel
	defer stopTel()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opt := parmem.Options{
		Budget:          parmem.Budget{MaxBacktrackNodes: *nodes, MaxCycles: *maxCycles},
		Modules:         *modules,
		Units:           *units,
		Unroll:          *unroll,
		Optimize:        *optimize,
		IfConvert:       *ifconvert,
		DisableAtoms:    *noAtoms,
		DisableRenaming: *noRename,
		Workers:         *workers,
		Reference:       *reference,
		Telemetry:       rec,
	}
	switch *strategy {
	case "STOR1":
		opt.Strategy = parmem.STOR1
	case "STOR2":
		opt.Strategy = parmem.STOR2
	case "STOR3":
		opt.Strategy = parmem.STOR3
	case "PerRegion":
		opt.Strategy = parmem.PerRegion
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	switch *method {
	case "hittingset":
		opt.Method = parmem.HittingSet
	case "backtrack":
		opt.Method = parmem.Backtrack
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	if *cacheDir != "" {
		store, err := parmem.OpenCacheStore(parmem.CacheConfig{DiskPath: *cacheDir})
		if err != nil {
			fatal(err)
		}
		closeStore = func() { store.Close() }
		defer closeStore()
		opt.Store = store
	}

	if *batch {
		runBatch(ctx, flag.Args(), opt)
		return
	}

	src, name, err := readSource(*benchName, flag.Args())
	if err != nil {
		fatal(err)
	}

	p, err := parmem.CompileCtx(ctx, src, opt)
	if err != nil {
		fatal(err)
	}

	if *dumpIR {
		fmt.Print(p.Func.String())
	}
	if *dumpSched {
		fmt.Print(p.Sched.String())
	}
	if *dumpConfl {
		for i, in := range p.Instructions() {
			fmt.Printf("w%d: %v\n", i, []int(in))
		}
	}
	if *dumpAlloc {
		printAlloc(p)
	}
	if *showStats || (!*dumpIR && !*dumpSched && !*dumpAlloc && !*dumpConfl && !*run) {
		fmt.Printf("%s: %d values (%d single-copy, %d multi-copy), %d total copies, %d words, %d atoms\n",
			name, p.Alloc.SingleCopy+p.Alloc.MultiCopy, p.Alloc.SingleCopy,
			p.Alloc.MultiCopy, p.Alloc.TotalCopies, len(p.Sched.Words), p.Alloc.Atoms)
	}
	if *showStats {
		for _, ph := range p.Alloc.Phases {
			line := fmt.Sprintf("phase %-16s method=%s nodes=%d elapsed=%s",
				ph.Phase, ph.Method, ph.Nodes, ph.Elapsed.Round(time.Microsecond))
			if ph.Fallback != "" {
				line += " fallback=" + ph.Fallback
			}
			if ph.Cached {
				line += " cached"
			}
			fmt.Println(line)
		}
	}
	if p.Alloc.Degraded {
		fmt.Fprintln(os.Stderr, "parmemc: warning: duplication budget exhausted; allocation degraded to a fallback method")
	}
	if *run {
		ropt := parmem.RunOptions{}
		if *traceWords {
			ropt.Trace = os.Stdout
		}
		res, err := p.RunCtx(ctx, ropt)
		if err != nil {
			fatal(err)
		}
		times := p.AnalyzeTimes(res)
		fmt.Printf("executed %d words (%d ops) in %d cycles; stalls %d; speedup %.2fx\n",
			res.DynamicWords, res.DynamicOps, res.Cycles, res.Stalls, res.Speedup())
		fmt.Printf("transfer times: t_min=%.0f t_ave=%.1f t_max=%.0f (ave/min %.2f, max/min %.2f)\n",
			times.TMin, times.TAve, times.TMax, times.RatioAve(), times.RatioMax())
	}
	if p.Alloc.Degraded {
		closeStore()
		stopProfiles()
		stopTelemetry()
		os.Exit(exitDegraded)
	}
}

// closeStore flushes and closes the persistent cache store, if any;
// every os.Exit path must call it or write-behind entries are lost.
// Replaced in main when -cache-dir opens a store.
var closeStore = func() {}

// stopProfiles flushes any active profiles; every os.Exit path must call it
// because deferred functions do not run past Exit. Replaced in main once
// profiling starts.
var stopProfiles = func() {}

// stopTelemetry flushes the trace file, dumps metrics and closes the live
// endpoint; same every-exit-path discipline as stopProfiles. Replaced in
// main once telemetry starts.
var stopTelemetry = func() {}

// expandBatchArgs resolves each argument as a glob pattern, falling back to
// a literal path when the pattern matches nothing (so plain file names work
// whether or not the shell expanded them).
func expandBatchArgs(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		matches, err := filepath.Glob(arg)
		if err != nil {
			return nil, fmt.Errorf("bad pattern %q: %w", arg, err)
		}
		if len(matches) == 0 {
			matches = []string{arg}
		}
		sort.Strings(matches)
		files = append(files, matches...)
	}
	if len(files) == 0 {
		return nil, errors.New("usage: parmemc -batch [flags] file.mpl... (or glob patterns)")
	}
	return files, nil
}

// runBatch compiles every matched file through the batch pipeline, prints
// one summary line per file, and exits: 1 if any file failed, 3 if all
// succeeded but any allocation degraded, 4 if canceled, 0 otherwise.
func runBatch(ctx context.Context, args []string, opt parmem.Options) {
	files, err := expandBatchArgs(args)
	if err != nil {
		fatal(err)
	}
	srcs := make([]string, len(files))
	for i, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		srcs[i] = string(b)
	}
	if opt.Cache == nil && opt.Store == nil {
		opt.Cache = parmem.NewAllocCache(0) // batch items share subproblems
	}
	results := parmem.CompileBatch(ctx, srcs, opt)
	failed, degraded, canceled := 0, 0, false
	for i, r := range results {
		if r.Err != nil {
			failed++
			if errors.Is(r.Err, parmem.ErrCanceled) {
				canceled = true
			}
			fmt.Fprintf(os.Stderr, "parmemc: %s: %v\n", files[i], r.Err)
			continue
		}
		al := r.Program.Alloc
		status := ""
		if al.Degraded {
			degraded++
			status = " (degraded)"
		}
		fmt.Printf("%s: %d values (%d single-copy, %d multi-copy), %d total copies, %d words, %d atoms%s\n",
			files[i], al.SingleCopy+al.MultiCopy, al.SingleCopy,
			al.MultiCopy, al.TotalCopies, len(r.Program.Sched.Words), al.Atoms, status)
	}
	fmt.Printf("batch: %d/%d compiled, %d degraded\n", len(files)-failed, len(files), degraded)
	closeStore()
	stopProfiles()
	stopTelemetry()
	switch {
	case canceled:
		os.Exit(exitCanceled)
	case failed > 0:
		os.Exit(exitFailure)
	case degraded > 0:
		os.Exit(exitDegraded)
	}
}

func readSource(bench string, args []string) (src, name string, err error) {
	if bench != "" {
		s, err := parmem.BenchmarkSource(bench)
		return s, bench, err
	}
	if len(args) != 1 {
		return "", "", fmt.Errorf("usage: parmemc [flags] file.mpl (or -bench NAME; available: %v)", parmem.Benchmarks())
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return string(b), args[0], nil
}

func printAlloc(p *parmem.Program) {
	type row struct {
		id   int
		name string
		mods []int
	}
	var rows []row
	for id, set := range p.Alloc.Copies {
		name := fmt.Sprintf("v%d", id)
		if id < len(p.Func.Values) {
			name = p.Func.Values[id].Name
		}
		rows = append(rows, row{id: id, name: name, mods: set.Modules()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	for _, r := range rows {
		marks := ""
		for m := 0; m < p.Opt.Modules; m++ {
			c := "-"
			for _, x := range r.mods {
				if x == m {
					c = "x"
				}
			}
			marks += c
		}
		fmt.Printf("%-12s %s\n", r.name, marks)
	}
}

func fatal(err error) {
	closeStore()
	stopProfiles()
	stopTelemetry()
	fmt.Fprintln(os.Stderr, "parmemc:", err)
	if errors.Is(err, parmem.ErrCanceled) {
		os.Exit(exitCanceled)
	}
	os.Exit(exitFailure)
}
