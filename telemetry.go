package parmem

import (
	"io"
	"sort"

	"parmem/internal/arena"
	"parmem/internal/telemetry"
)

// This file is the public observability surface: re-exports of the
// internal/telemetry core plus the glue that wires process-global engine
// state (scratch arenas, allocation caches) into a Recorder's metrics
// registry. See DESIGN §10 for the span hierarchy and metric catalogue.

// Re-exported telemetry types.
type (
	// Recorder bundles a span tracer and a metrics registry; pass one via
	// Options.Telemetry or AssignConfig.Telemetry to instrument compilation.
	// A nil Recorder disables all telemetry at zero cost.
	Recorder = telemetry.Recorder
	// TraceSink receives spans as they end (implementations must be safe
	// for concurrent calls).
	TraceSink = telemetry.Sink
	// TraceSpan is one timed operation in the span tree.
	TraceSpan = telemetry.Span
	// RingSink retains the most recent spans in memory.
	RingSink = telemetry.RingSink
	// JSONLSink streams one JSON object per span to a writer.
	JSONLSink = telemetry.JSONLSink
	// ChromeSink collects spans for a Chrome trace_event file loadable in
	// chrome://tracing and Perfetto.
	ChromeSink = telemetry.ChromeSink
	// TelemetryServer is a live HTTP endpoint serving /metrics,
	// /debug/vars and /debug/pprof for one Recorder.
	TelemetryServer = telemetry.Server
)

// ErrTelemetryAddrInUse is wrapped by Recorder.Serve's error when the
// telemetry listen address is already bound by another process. Sidecar
// callers (the CLIs, parmemd) test for it with errors.Is and downgrade to
// a loud stderr note instead of failing the run.
var ErrTelemetryAddrInUse = telemetry.ErrAddrInUse

// NewRecorder returns a Recorder emitting spans to the given sinks, with
// the engine's process-global collectors (scratch-arena counters) already
// registered. Share one Recorder across every Compile/AssignValues call
// you want aggregated in one place; it is safe for concurrent use.
func NewRecorder(sinks ...TraceSink) *Recorder {
	rec := telemetry.New(sinks...)
	registerArenaCollector(rec)
	return rec
}

// NewRingSink returns a sink retaining the last n spans (n <= 0 picks a
// default of 1024).
func NewRingSink(n int) *RingSink { return telemetry.NewRingSink(n) }

// NewJSONLSink returns a sink streaming one JSON line per span to w. The
// caller owns flushing: call Flush before reading the output.
func NewJSONLSink(w io.Writer) *JSONLSink { return telemetry.NewJSONLSink(w) }

// NewChromeSink returns a collector whose Write/WriteFile emit a Chrome
// trace_event document.
func NewChromeSink() *ChromeSink { return telemetry.NewChromeSink() }

// registerArenaCollector mirrors the process-global scratch-arena counters
// into rec's registry on every export. Registration is idempotent
// (collectors replace by name).
func registerArenaCollector(rec *Recorder) {
	rec.AddCollector("arena", func(*telemetry.Registry) {
		st := arena.ReadStats()
		rec.Counter(telemetry.MArenaGets).Sync(st.Gets)
		rec.Counter(telemetry.MArenaPuts).Sync(st.Puts)
		rec.Counter(telemetry.MArenaZeroedBytes).Sync(st.ZeroedBytes)
		ss := arena.ReadShardStats()
		rec.Counter(telemetry.MArenaPoolGets).Sync(ss.PoolGets)
		rec.Counter(telemetry.MArenaShardGets).Sync(ss.ShardGets)
		rec.Counter(telemetry.MArenaShardResets).Sync(ss.ShardResets)
	})
}

// registerCacheCollector mirrors an AllocCache's hit/miss/occupancy
// counters into rec's registry on every export. Levels are synced in
// sorted order so series registration order — and thus every export — is
// deterministic.
func registerCacheCollector(rec *Recorder, c *AllocCache) {
	if rec == nil || c == nil {
		return
	}
	rec.AddCollector("alloccache", func(*telemetry.Registry) {
		st := c.Stats()
		rec.Gauge(telemetry.MCacheEntries).Set(int64(st.Entries))
		levels := make([]string, 0, len(st.Levels))
		for lvl := range st.Levels {
			levels = append(levels, lvl)
		}
		sort.Strings(levels)
		for _, lvl := range levels {
			ls := st.Levels[lvl]
			rec.Counter(telemetry.MCacheHits, "level", lvl).Sync(ls.Hits)
			rec.Counter(telemetry.MCacheMisses, "level", lvl).Sync(ls.Misses)
		}
		// The second-level traffic, reported as its own pseudo-level so
		// hit-rate dashboards see memory and disk side by side.
		if st.BackingHits > 0 || st.BackingMisses > 0 {
			rec.Counter(telemetry.MCacheHits, "level", "disk").Sync(st.BackingHits)
			rec.Counter(telemetry.MCacheMisses, "level", "disk").Sync(st.BackingMisses)
		}
	})
}

// registerStoreCollector mirrors a CacheStore's disk-tier counters into
// rec's registry on every export; memory-only stores register nothing.
func registerStoreCollector(rec *Recorder, store CacheStore) {
	if rec == nil || store == nil {
		return
	}
	if _, ok := store.DiskStats(); !ok {
		return
	}
	rec.AddCollector("diskcache", func(*telemetry.Registry) {
		st, ok := store.DiskStats()
		if !ok {
			return
		}
		rec.Counter(telemetry.MDiskHits).Sync(st.Hits)
		rec.Counter(telemetry.MDiskMisses).Sync(st.Misses)
		rec.Counter(telemetry.MDiskPuts).Sync(st.Puts)
		rec.Counter(telemetry.MDiskDroppedPuts).Sync(st.DroppedPuts)
		rec.Counter(telemetry.MDiskCorruptGets).Sync(st.CorruptGets)
		rec.Counter(telemetry.MDiskCompactions).Sync(st.Compactions)
		rec.Gauge(telemetry.MDiskRecords).Set(int64(st.Records))
		rec.Gauge(telemetry.MDiskBytes).Set(st.Bytes)
	})
}

// wireStoreTelemetry attaches the disk-tier collector of a CacheStore;
// safe with a nil recorder or store.
func wireStoreTelemetry(rec *Recorder, store CacheStore) {
	registerStoreCollector(rec, store)
}

// wireTelemetry attaches the engine collectors relevant to one call. Safe
// and cheap to call per compile: AddCollector replaces by name.
func wireTelemetry(rec *Recorder, cache *AllocCache) {
	if rec == nil {
		return
	}
	registerArenaCollector(rec)
	registerCacheCollector(rec, cache)
}
