package sched

import (
	"strings"
	"testing"

	"parmem/internal/ir"
	"parmem/internal/lang"
)

func compile(t *testing.T, src string) *ir.Func {
	t.Helper()
	f, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// checkSchedule verifies the fundamental schedule invariants: every source
// op appears exactly once, resource limits hold, dependences are respected
// within each block, and branches terminate their block's word sequence.
func checkSchedule(t *testing.T, f *ir.Func, p *Program) {
	t.Helper()
	cfg := p.Config

	total := 0
	for _, w := range p.Words {
		total += len(w.Ops)
		if len(w.Ops) > cfg.Units {
			t.Fatalf("word exceeds %d units: %d ops", cfg.Units, len(w.Ops))
		}
		if got := len(w.MemUses()); got > cfg.Modules {
			t.Fatalf("word fetches %d values, limit %d", got, cfg.Modules)
		}
	}
	if total != f.NumInstrs() {
		t.Fatalf("scheduled %d ops, function has %d", total, f.NumInstrs())
	}

	// Within each block: defs precede uses across words; a def never shares
	// a word with a use of the same value or a later redefinition.
	byBlock := map[int][]Word{}
	for _, w := range p.Words {
		byBlock[w.Block] = append(byBlock[w.Block], w)
	}
	for blk, words := range byBlock {
		defWord := map[int]int{}
		for wi, w := range words {
			for _, op := range w.Ops {
				for _, u := range op.Uses() {
					if dw, ok := defWord[u.ID]; ok && dw >= wi {
						t.Fatalf("b%d: value %s used in word %d but defined in word %d", blk, u.Name, wi, dw)
					}
				}
			}
			for _, op := range w.Ops {
				if d := op.Def(); d != nil && d.IsMem() {
					defWord[d.ID] = wi
				}
			}
		}
		// Branch must be in the final word of the block.
		for wi, w := range words {
			for _, op := range w.Ops {
				if op.Op.IsBranch() && wi != len(words)-1 {
					t.Fatalf("b%d: branch in word %d of %d", blk, wi, len(words))
				}
			}
		}
	}
}

func TestScheduleStraightLine(t *testing.T) {
	f := compile(t, `program p; var a, b, c, d: int;
begin a := 1; b := 2; c := a + b; d := a * b; end`)
	p, err := Schedule(f, Config{Modules: 8, Units: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, f, p)
	// a:=1 and b:=2 are independent: they must share the first word.
	if len(p.Words[0].Ops) < 2 {
		t.Fatalf("independent ops not packed: word0 = %v", p.Words[0].Ops)
	}
}

func TestScheduleRespectsFlowDeps(t *testing.T) {
	f := compile(t, `program p; var a, b: int; begin a := 1; b := a + 1; end`)
	p, err := Schedule(f, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, f, p)
	if len(p.Words) < 2 {
		t.Fatalf("dependent chain packed into %d words", len(p.Words))
	}
}

func TestScheduleUnitsLimit(t *testing.T) {
	f := compile(t, `program p; var a, b, c, d, e: int;
begin a := 1; b := 2; c := 3; d := 4; e := 5; end`)
	p, err := Schedule(f, Config{Modules: 8, Units: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, f, p)
	if len(p.Words) < 3 {
		t.Fatalf("5 independent ops, 2 units: want >=3 words, got %d", len(p.Words))
	}
}

func TestScheduleModulesLimit(t *testing.T) {
	// Sums of disjoint pairs: each op fetches 2 distinct values; with only
	// 2 modules a word carries at most one such op.
	f := compile(t, `program p; var a, b, c, d, s, u: int;
begin s := a + b; u := c + d; end`)
	p, err := Schedule(f, Config{Modules: 2, Units: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, f, p)
	// Lowering yields: t=a+b; s=t; t'=c+d; u=t'; ret. The two adds each
	// need 2 fetches so they cannot share a word; the movs can.
	if len(p.Words) != 3 {
		t.Fatalf("want 3 words under 2-module limit, got %d:\n%s", len(p.Words), p)
	}
}

func TestScheduleSharedOperandBroadcast(t *testing.T) {
	// Both ops read a and b: the fetches are shared, so one word suffices
	// even with 2 modules.
	f := compile(t, `program p; var a, b, s, u: int;
begin s := a + b; u := a - b; end`)
	p, err := Schedule(f, Config{Modules: 2, Units: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, f, p)
	// Both adds fit the first word because a and b are fetched once and
	// broadcast; the movs and ret follow.
	if len(p.Words) != 2 || len(p.Words[0].Ops) != 2 {
		t.Fatalf("shared operands must broadcast:\n%s", p)
	}
}

func TestScheduleArrayOrdering(t *testing.T) {
	// A store followed by a load of the same element must stay ordered.
	f := compile(t, `program p; var a, b: array[8] of int; var x, y: int;
begin a[1] := 1; x := a[1]; y := b[2]; end`)
	p, err := Schedule(f, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, f, p)
	// Find word indices of the store to a and load from a.
	storeW, loadW := -1, -1
	for wi, w := range p.Words {
		for _, op := range w.Ops {
			if op.Op == ir.Store && op.Arr.Name == "a" {
				storeW = wi
			}
			if op.Op == ir.Load && op.Arr.Name == "a" {
				loadW = wi
			}
		}
	}
	if storeW == -1 || loadW == -1 || storeW >= loadW {
		t.Fatalf("store word %d must precede load word %d:\n%s", storeW, loadW, p)
	}
}

func TestScheduleDisambiguatesConstantIndices(t *testing.T) {
	// a[0] and a[1] are provably different elements: the store and load
	// may share a word.
	f := compile(t, `program p; var a: array[8] of int; var x: int;
begin a[0] := 1; x := a[1]; end`)
	p, err := Schedule(f, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, f, p)
	storeW, loadW := -1, -1
	for wi, w := range p.Words {
		for _, op := range w.Ops {
			if op.Op == ir.Store {
				storeW = wi
			}
			if op.Op == ir.Load {
				loadW = wi
			}
		}
	}
	if storeW != loadW {
		t.Fatalf("disjoint elements should pack together: store w%d, load w%d:\n%s", storeW, loadW, p)
	}
}

func TestScheduleDisambiguatesAffineIndices(t *testing.T) {
	// a[i] and a[i+1] are provably different; a[i] and a[j] are not.
	f := compile(t, `program p; var a: array[8] of int; var i, j, x, y: int;
begin a[i] := 1; x := a[i+1]; y := a[j]; end`)
	p, err := Schedule(f, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, f, p)
	var storeW, loadPlus1W, loadJW int
	for wi, w := range p.Words {
		for _, op := range w.Ops {
			switch {
			case op.Op == ir.Store:
				storeW = wi
			case op.Op == ir.Load && op.Dst.Name[0] == 't' && loadPlus1W == 0 && wi >= storeW:
				// first load in program order is a[i+1]
				loadPlus1W = wi
			}
		}
	}
	// The a[j] load must come strictly after the store (may-alias).
	for wi, w := range p.Words {
		for _, op := range w.Ops {
			if op.Op == ir.Load && op.Index != nil && op.Index.Name == "j" {
				loadJW = wi
			}
		}
	}
	if loadJW <= storeW {
		t.Fatalf("a[j] may alias a[i]; it must follow the store:\n%s", p)
	}
	_ = loadPlus1W
}

func TestScheduleControlFlow(t *testing.T) {
	f := compile(t, `program p; var x, s: int;
begin
  x := 5;
  while x > 0 do
    s := s + x;
    x := x - 1;
  end
end`)
	p, err := Schedule(f, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, f, p)
	// BlockStart is monotone and covers all words.
	for b := 0; b < len(f.Blocks); b++ {
		if p.BlockStart[b] > p.BlockStart[b+1] {
			t.Fatalf("BlockStart not monotone at %d: %v", b, p.BlockStart)
		}
	}
	if p.BlockStart[len(f.Blocks)] != len(p.Words) {
		t.Fatal("BlockStart sentinel mismatch")
	}
	if len(p.RegionOf) != len(p.Words) {
		t.Fatal("RegionOf length mismatch")
	}
	// Loop body words carry a nonzero region.
	hasLoopRegion := false
	for _, r := range p.RegionOf {
		hasLoopRegion = hasLoopRegion || r > 0
	}
	if !hasLoopRegion {
		t.Fatal("no word assigned to the loop region")
	}
}

func TestScheduleErrors(t *testing.T) {
	f := compile(t, "program p; var x: int; begin x := 1; end")
	if _, err := Schedule(f, Config{Modules: 1, Units: 1}); err == nil {
		t.Fatal("1 module must be rejected")
	}
	if _, err := Schedule(f, Config{Modules: 4, Units: 0}); err == nil {
		t.Fatal("0 units must be rejected")
	}
}

func TestInstructionsConversion(t *testing.T) {
	f := compile(t, `program p; var a, b, s: int; begin s := a + b; end`)
	p, err := Schedule(f, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	instrs := p.Instructions()
	if len(instrs) != len(p.Words) {
		t.Fatal("one conflict.Instruction per word")
	}
	if len(instrs[0]) != 2 {
		t.Fatalf("first word fetches a and b: %v", instrs[0])
	}
}

func TestNumOpsAndString(t *testing.T) {
	f := compile(t, `program p; var a, b: int; begin a := 1; b := a + 2; end`)
	p, err := Schedule(f, DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumOps() != f.NumInstrs() {
		t.Fatalf("NumOps = %d, want %d", p.NumOps(), f.NumInstrs())
	}
	s := p.String()
	if !strings.Contains(s, "w0:") || !strings.Contains(s, "b0:") {
		t.Fatalf("String output missing markers:\n%s", s)
	}
}

func TestSchedulePacksWideWhenIndependent(t *testing.T) {
	// Eight independent stores of constants: with 8 units and no operand
	// fetches (constants are immediates) everything fits in very few words.
	f := compile(t, `program p; var a, b, c, d, e, g, h, i: int;
begin a := 1; b := 2; c := 3; d := 4; e := 5; g := 6; h := 7; i := 8; end`)
	p, err := Schedule(f, Config{Modules: 8, Units: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, f, p)
	// One full word of 8 moves plus the final ret word.
	if len(p.Words) != 2 || len(p.Words[0].Ops) != 8 {
		t.Fatalf("8 independent constant moves should fill one word (plus ret), got:\n%s", p)
	}
}

func TestScheduleRejectsTooManyModules(t *testing.T) {
	f := compile(t, "program p; var x: int; begin x := 1; end")
	if _, err := Schedule(f, Config{Modules: 65, Units: 1}); err == nil {
		t.Fatal("65 modules must be rejected (allocation bitsets are 64-wide)")
	}
}
