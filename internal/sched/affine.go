package sched

import "parmem/internal/ir"

// Affine index disambiguation.
//
// Within one basic block, two accesses to the same array are independent
// when their indices provably differ. After loop unrolling the indices of
// sibling iterations are affine expressions of the same loop counter
// (2u, 2u+1, ...), so a simple symbolic evaluator over the block suffices:
// every value gets a linear form  Σ coeff·base + const  where bases are
// values live into the block (they cannot change during the block). Two
// forms with identical coefficients and different constants can never alias.

// linform is a linear combination of base values plus a constant.
type linform struct {
	coeffs map[int]int64 // base value id -> coefficient
	c      int64
}

func constForm(c int64) linform { return linform{c: c} }

func varForm(id int) linform {
	return linform{coeffs: map[int]int64{id: 1}}
}

// add returns a+b.
func (a linform) add(b linform) linform {
	out := linform{c: a.c + b.c, coeffs: map[int]int64{}}
	for id, co := range a.coeffs {
		out.coeffs[id] += co
	}
	for id, co := range b.coeffs {
		out.coeffs[id] += co
	}
	return out.norm()
}

// sub returns a-b.
func (a linform) sub(b linform) linform {
	out := linform{c: a.c - b.c, coeffs: map[int]int64{}}
	for id, co := range a.coeffs {
		out.coeffs[id] += co
	}
	for id, co := range b.coeffs {
		out.coeffs[id] -= co
	}
	return out.norm()
}

// scale returns a*k.
func (a linform) scale(k int64) linform {
	out := linform{c: a.c * k, coeffs: map[int]int64{}}
	for id, co := range a.coeffs {
		out.coeffs[id] = co * k
	}
	return out.norm()
}

// norm drops zero coefficients so equality checks are canonical.
func (a linform) norm() linform {
	for id, co := range a.coeffs {
		if co == 0 {
			delete(a.coeffs, id)
		}
	}
	if len(a.coeffs) == 0 {
		a.coeffs = nil
	}
	return a
}

// isConst reports whether the form has no symbolic part.
func (a linform) isConst() bool { return len(a.coeffs) == 0 }

// sameShape reports whether a and b have identical symbolic parts, so that
// a-b is a compile-time constant.
func sameShape(a, b linform) (diff int64, ok bool) {
	d := a.sub(b)
	if d.isConst() {
		return d.c, true
	}
	return 0, false
}

// accessForms symbolically evaluates the block in program order and
// records, for every Load/Store instruction index, the linear form of its
// array index *at that program point*. A value's form is updated when the
// value is redefined (i := i+1 becomes entry_i + 1), so forms recorded for
// earlier accesses stay correct. Untrackable indices are simply absent.
func accessForms(b *ir.Block) map[int]linform {
	forms := map[int]linform{} // value id -> current form
	invalid := map[int]bool{}  // value id -> gave up tracking
	out := map[int]linform{}   // instruction index -> index form
	seenDef := map[int]bool{}  // value id defined earlier in the block

	valueForm := func(v *ir.Value) (linform, bool) {
		if v == nil {
			return linform{}, false
		}
		if v.Kind == ir.Const {
			if v.Type != ir.Int {
				return linform{}, false
			}
			return constForm(v.ConstInt), true
		}
		if v.Type != ir.Int || invalid[v.ID] {
			return linform{}, false
		}
		if f, ok := forms[v.ID]; ok {
			return f, true
		}
		if seenDef[v.ID] {
			return linform{}, false // defined in block but untrackable
		}
		// Live into the block: a fixed symbol, named by the entry value.
		f := varForm(v.ID)
		forms[v.ID] = f
		return f, true
	}

	for i := range b.Instrs {
		in := &b.Instrs[i]
		if in.Op == ir.Load || in.Op == ir.Store {
			if f, ok := valueForm(in.Index); ok {
				out[i] = f
			}
		}
		d := in.Def()
		if d == nil || !d.IsMem() {
			continue
		}
		var f linform
		ok := false
		if d.Type == ir.Int {
			switch in.Op {
			case ir.Mov:
				f, ok = valueForm(in.A)
			case ir.Add:
				if fa, oka := valueForm(in.A); oka {
					if fb, okb := valueForm(in.B); okb {
						f, ok = fa.add(fb), true
					}
				}
			case ir.Sub:
				if fa, oka := valueForm(in.A); oka {
					if fb, okb := valueForm(in.B); okb {
						f, ok = fa.sub(fb), true
					}
				}
			case ir.Mul:
				fa, oka := valueForm(in.A)
				fb, okb := valueForm(in.B)
				switch {
				case oka && okb && fa.isConst():
					f, ok = fb.scale(fa.c), true
				case oka && okb && fb.isConst():
					f, ok = fa.scale(fb.c), true
				}
			}
		}
		seenDef[d.ID] = true
		if ok {
			forms[d.ID] = f
			invalid[d.ID] = false
		} else {
			delete(forms, d.ID)
			invalid[d.ID] = true
		}
	}
	return out
}

// independentAccesses reports whether the array accesses at instruction
// indices i and j provably touch different elements.
func independentAccesses(forms map[int]linform, i, j int) bool {
	fi, oki := forms[i]
	if !oki {
		return false
	}
	fj, okj := forms[j]
	if !okj {
		return false
	}
	diff, ok := sameShape(fi, fj)
	return ok && diff != 0
}
