// Package sched packs three-address IR into long instruction words.
//
// The target is the paper's RLIW model: a machine with a number of
// functional units operating in lock-step, fetching all operands of a long
// instruction from k parallel memory modules in one cycle. The scheduler
// builds a dependence DAG per basic block and list-schedules it by critical
// path, subject to two word-level resource limits: at most Units operations
// and at most Modules distinct memory-resident operand values per word
// (one fetch per module per cycle; a value used twice in a word is fetched
// once and broadcast).
//
// The output word stream is what memory-module assignment consumes: each
// word's set of scalar operand values is one conflict.Instruction.
package sched

import (
	"fmt"
	"sort"

	"parmem/internal/conflict"
	"parmem/internal/dfa"
	"parmem/internal/ir"
)

// Config is the LIW machine shape.
type Config struct {
	Modules int // parallel memory modules (k)
	Units   int // functional units per word
}

// DefaultConfig mirrors the paper's experimental machine: eight memory
// modules, eight functional units.
var DefaultConfig = Config{Modules: 8, Units: 8}

// Word is one long instruction.
type Word struct {
	Ops   []ir.Instr // operations issued together, at most Config.Units
	Block int        // source basic block
}

// MemUses returns the distinct memory-resident scalar values the word
// fetches, ascending by id.
func (w *Word) MemUses() []int {
	set := map[int]bool{}
	for i := range w.Ops {
		for _, v := range w.Ops[i].Uses() {
			set[v.ID] = true
		}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// ArrayOps counts the dynamic array accesses (loads + stores) in the word.
func (w *Word) ArrayOps() int {
	n := 0
	for i := range w.Ops {
		if w.Ops[i].Op == ir.Load || w.Ops[i].Op == ir.Store {
			n++
		}
	}
	return n
}

// Program is a scheduled function.
type Program struct {
	F          *ir.Func
	Config     Config
	Words      []Word
	BlockStart []int // first word index of each block (next block's start when empty)
	RegionOf   []int // region id per word (from natural-loop regions)
}

// Schedule packs f into long instruction words under cfg.
func Schedule(f *ir.Func, cfg Config) (*Program, error) {
	if cfg.Modules < 2 || cfg.Units < 1 {
		return nil, fmt.Errorf("sched: need at least 2 modules and 1 unit, got %+v", cfg)
	}
	if cfg.Modules > 64 {
		return nil, fmt.Errorf("sched: %d modules exceeds the 64-module limit of the allocation bitsets", cfg.Modules)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("sched: invalid input: %v", err)
	}
	regs := dfa.BuildCFG(f).FindRegions()

	// Stamp program order so same-word commits stay deterministic.
	seq := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			b.Instrs[i].Seq = seq
			seq++
		}
	}

	p := &Program{F: f, Config: cfg, BlockStart: make([]int, len(f.Blocks)+1)}
	for _, b := range f.Blocks {
		p.BlockStart[b.ID] = len(p.Words)
		words, err := scheduleBlock(b, cfg)
		if err != nil {
			return nil, err
		}
		for _, w := range words {
			p.Words = append(p.Words, w)
			p.RegionOf = append(p.RegionOf, regs.Of[b.ID])
		}
	}
	p.BlockStart[len(f.Blocks)] = len(p.Words)
	// Empty blocks start where the next block starts.
	for b := len(f.Blocks) - 1; b >= 0; b-- {
		if p.BlockStart[b] > p.BlockStart[b+1] {
			p.BlockStart[b] = p.BlockStart[b+1]
		}
	}
	return p, nil
}

// scheduleBlock list-schedules one basic block.
func scheduleBlock(b *ir.Block, cfg Config) ([]Word, error) {
	n := len(b.Instrs)
	if n == 0 {
		return nil, nil
	}
	// Per-op distinct memory uses must fit in a word at all.
	memUse := make([][]int, n)
	for i := range b.Instrs {
		set := map[int]bool{}
		for _, v := range b.Instrs[i].Uses() {
			set[v.ID] = true
		}
		for id := range set {
			memUse[i] = append(memUse[i], id)
		}
		sort.Ints(memUse[i])
		if len(memUse[i]) > cfg.Modules {
			return nil, fmt.Errorf("sched: op %q needs %d operand fetches but the machine has %d modules",
				b.Instrs[i].String(), len(memUse[i]), cfg.Modules)
		}
	}

	succs := dependenceDAG(b)

	// Critical-path heights.
	height := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		h := 0
		for _, s := range succs[i] {
			if height[s]+1 > h {
				h = height[s] + 1
			}
		}
		height[i] = h
	}

	// Indegrees.
	indeg := make([]int, n)
	for _, ss := range succs {
		for _, s := range ss {
			indeg[s]++
		}
	}

	isBranch := func(i int) bool { return b.Instrs[i].Op.IsBranch() }

	scheduled := make([]bool, n)
	nScheduled := 0
	var words []Word
	for nScheduled < n {
		// Ready ops: all predecessors issued in EARLIER words.
		var ready []int
		for i := 0; i < n; i++ {
			if !scheduled[i] && indeg[i] == 0 {
				ready = append(ready, i)
			}
		}
		if len(ready) == 0 {
			return nil, fmt.Errorf("sched: dependence cycle in block b%d", b.ID)
		}
		// Highest critical path first; the block terminator only issues
		// when everything else has (control must leave the block last).
		sort.SliceStable(ready, func(x, y int) bool {
			bx, by := isBranch(ready[x]), isBranch(ready[y])
			if bx != by {
				return by // non-branches first
			}
			if height[ready[x]] != height[ready[y]] {
				return height[ready[x]] > height[ready[y]]
			}
			return ready[x] < ready[y]
		})

		w := Word{Block: b.ID}
		wordUses := map[int]bool{}
		var issued []int
		for _, i := range ready {
			if len(w.Ops) >= cfg.Units {
				break
			}
			if isBranch(i) && nScheduled+len(issued) != n-1 {
				continue // branch waits for the rest of the block
			}
			// Count additional distinct fetches this op needs.
			extra := 0
			for _, id := range memUse[i] {
				if !wordUses[id] {
					extra++
				}
			}
			if len(wordUses)+extra > cfg.Modules {
				continue
			}
			for _, id := range memUse[i] {
				wordUses[id] = true
			}
			w.Ops = append(w.Ops, b.Instrs[i])
			issued = append(issued, i)
		}
		if len(issued) == 0 {
			return nil, fmt.Errorf("sched: cannot issue any ready op in block b%d", b.ID)
		}
		for _, i := range issued {
			scheduled[i] = true
			nScheduled++
			for _, s := range succs[i] {
				indeg[s]--
			}
		}
		words = append(words, w)
	}
	return words, nil
}

// dependenceDAG builds the intra-block dependence successors: flow, anti
// and output dependences on scalar values, plus ordering of accesses to the
// same array. Array accesses whose indices are provably different affine
// expressions (see accessForms) are disambiguated; the rest are ordered
// conservatively.
func dependenceDAG(b *ir.Block) [][]int {
	n := len(b.Instrs)
	succs := make([][]int, n)
	edge := func(from, to int) {
		if from == to {
			return
		}
		for _, s := range succs[from] {
			if s == to {
				return
			}
		}
		succs[from] = append(succs[from], to)
	}

	forms := accessForms(b)

	lastDef := map[int]int{}    // value id -> instr index
	lastUses := map[int][]int{} // value id -> instr indices since last def
	stores := map[int][]int{}   // array id -> store instr indices
	loads := map[int][]int{}    // array id -> load instr indices

	for i := range b.Instrs {
		in := &b.Instrs[i]
		for _, u := range in.Uses() {
			if d, ok := lastDef[u.ID]; ok {
				edge(d, i) // flow
			}
			lastUses[u.ID] = append(lastUses[u.ID], i)
		}
		if d := in.Def(); d != nil && d.IsMem() {
			if prev, ok := lastDef[d.ID]; ok {
				edge(prev, i) // output
			}
			for _, u := range lastUses[d.ID] {
				edge(u, i) // anti
			}
			lastDef[d.ID] = i
			lastUses[d.ID] = nil
		}
		switch in.Op {
		case ir.Load:
			for _, s := range stores[in.Arr.ID] {
				if !independentAccesses(forms, s, i) {
					edge(s, i) // store -> load (flow through memory)
				}
			}
			loads[in.Arr.ID] = append(loads[in.Arr.ID], i)
		case ir.Store:
			for _, s := range stores[in.Arr.ID] {
				if !independentAccesses(forms, s, i) {
					edge(s, i) // store -> store (output)
				}
			}
			for _, l := range loads[in.Arr.ID] {
				if !independentAccesses(forms, l, i) {
					edge(l, i) // load -> store (anti)
				}
			}
			stores[in.Arr.ID] = append(stores[in.Arr.ID], i)
		}
	}
	return succs
}

// Instructions converts the word stream to the operand-set form consumed by
// memory-module assignment.
func (p *Program) Instructions() []conflict.Instruction {
	out := make([]conflict.Instruction, len(p.Words))
	for i := range p.Words {
		out[i] = conflict.Instruction(p.Words[i].MemUses())
	}
	return out
}

// NumOps counts the operations across all words (the sequential baseline
// executes them one per cycle).
func (p *Program) NumOps() int {
	n := 0
	for i := range p.Words {
		n += len(p.Words[i].Ops)
	}
	return n
}

// String renders the schedule for debugging.
func (p *Program) String() string {
	s := fmt.Sprintf("schedule of %s (%d words, %d ops):\n", p.F.Name, len(p.Words), p.NumOps())
	cur := -1
	for i := range p.Words {
		if p.Words[i].Block != cur {
			cur = p.Words[i].Block
			s += fmt.Sprintf("b%d:\n", cur)
		}
		s += fmt.Sprintf("  w%d:", i)
		for j := range p.Words[i].Ops {
			s += "  [" + p.Words[i].Ops[j].String() + "]"
		}
		s += "\n"
	}
	return s
}
