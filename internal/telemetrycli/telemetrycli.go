// Package telemetrycli wires the observability flags shared by the
// command-line tools (parmemc, parmem-tables): -trace writes a Chrome
// trace_event file, -metrics dumps the metrics registry on exit, and
// -telemetry-addr serves /metrics, /debug/vars and /debug/pprof live
// (-telemetry-linger keeps the endpoint up after the run so one-shot
// invocations can still be scraped).
package telemetrycli

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"parmem"
)

// Config holds the parsed observability flags of one CLI invocation.
type Config struct {
	TracePath string
	Metrics   bool
	Addr      string
	Linger    time.Duration
}

// Flags registers the shared observability flags on fs and returns the
// Config they fill in after fs.Parse.
func Flags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.TracePath, "trace", "", "write a Chrome trace_event file (open in chrome://tracing or Perfetto)")
	fs.BoolVar(&c.Metrics, "metrics", false, "print the engine metrics to stderr on exit")
	fs.StringVar(&c.Addr, "telemetry-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port")
	fs.DurationVar(&c.Linger, "telemetry-linger", 0, "with -telemetry-addr: keep serving this long after the run finishes")
	return c
}

// enabled reports whether any flag asked for telemetry.
func (c *Config) enabled() bool {
	return c.TracePath != "" || c.Metrics || c.Addr != ""
}

// Start builds a Recorder matching the flags. It returns a nil Recorder
// (and a no-op stop) when no observability flag was given, so the compile
// paths stay on the zero-overhead disabled path. The stop function flushes
// the trace file, dumps metrics and lingers/closes the HTTP endpoint; it
// is idempotent and must be called on every exit path (os.Exit skips
// defers, the same discipline as pprof profile flushing).
func (c *Config) Start() (*parmem.Recorder, func(), error) {
	if !c.enabled() {
		return nil, func() {}, nil
	}
	var sinks []parmem.TraceSink
	var chrome *parmem.ChromeSink
	if c.TracePath != "" {
		chrome = parmem.NewChromeSink()
		sinks = append(sinks, chrome)
	}
	rec := parmem.NewRecorder(sinks...)
	var srv *parmem.TelemetryServer
	if c.Addr != "" {
		s, err := rec.Serve(c.Addr)
		switch {
		case errors.Is(err, parmem.ErrTelemetryAddrInUse):
			// The endpoint is best-effort observability: when someone else
			// already owns the port (a second CLI run, a daemon), say so
			// loudly and keep going rather than failing the whole run or —
			// worse — silently losing the endpoint.
			fmt.Fprintf(os.Stderr, "telemetry: -telemetry-addr %s: %v; live endpoint disabled for this run\n", c.Addr, err)
		case err != nil:
			return nil, func() {}, err
		default:
			srv = s
			// The parseable "serving on" line lets scripts (and the smoke
			// tests) discover the bound port when -telemetry-addr used :0.
			fmt.Fprintf(os.Stderr, "telemetry: serving on %s\n", s.Addr())
		}
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if chrome != nil {
				if err := chrome.WriteFile(c.TracePath); err != nil {
					fmt.Fprintf(os.Stderr, "telemetry: writing trace: %v\n", err)
				}
			}
			if c.Metrics {
				if err := rec.WriteMetricsText(os.Stderr); err != nil {
					fmt.Fprintf(os.Stderr, "telemetry: writing metrics: %v\n", err)
				}
			}
			if srv != nil {
				if c.Linger > 0 {
					time.Sleep(c.Linger)
				}
				srv.Close()
			}
		})
	}
	return rec, stop, nil
}
