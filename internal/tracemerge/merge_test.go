package tracemerge

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parmem/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the merged-trace golden file")

func readTestdata(t *testing.T) []ProcessTrace {
	t.Helper()
	var procs []ProcessTrace
	for _, f := range []string{"daemon1.jsonl", "daemon2.jsonl", "gateway.jsonl"} {
		pt, err := ReadFile(filepath.Join("testdata", f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		procs = append(procs, pt)
	}
	return procs
}

// TestMergeGolden drives two daemon exports plus a gateway export through
// the merger and pins the merged Chrome trace byte-for-byte.
func TestMergeGolden(t *testing.T) {
	m := Merge(readTestdata(t))

	var buf bytes.Buffer
	if err := m.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "merged_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("merged trace drifted from golden file (run with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Determinism across writes.
	var again bytes.Buffer
	if err := m.WriteChrome(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("merged trace output is not deterministic across writes")
	}
}

// TestMergeSummaries checks the per-trace fan: the first trace spans the
// gateway and daemon-1, the second the gateway and daemon-2.
func TestMergeSummaries(t *testing.T) {
	m := Merge(readTestdata(t))
	if len(m.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(m.Traces))
	}
	for _, tr := range m.Traces {
		if tr.Processes != 2 {
			t.Fatalf("trace %s spans %d processes, want 2", tr.Trace, tr.Processes)
		}
	}
	if m.MaxTraceProcesses() != 2 {
		t.Fatalf("MaxTraceProcesses = %d, want 2", m.MaxTraceProcesses())
	}
}

// TestClockSkewAlignment pins the causal refinement: daemon-2's wall clock
// is 100ms behind the gateway's, so coarse epoch alignment alone would put
// its rpc span long before the gateway forward that caused it. The merger
// must shift daemon-2 so every remote child starts at or after its parent.
func TestClockSkewAlignment(t *testing.T) {
	procs := readTestdata(t)
	m := Merge(procs)

	// daemon2 is procs[1]; its only span's remote parent is gateway span 4.
	child := procs[1].Spans[0]
	var parent telemetry.SpanRecord
	for _, sp := range procs[2].Spans {
		if sp.ID == 4 {
			parent = sp
		}
	}
	childAt := child.StartUs + m.Offsets[1]
	parentAt := parent.StartUs + m.Offsets[2]
	if childAt < parentAt {
		t.Fatalf("child starts at %d, before its remote parent at %d (offsets %v)",
			childAt, parentAt, m.Offsets)
	}
	// The epoch said daemon-2 was earliest; causality must have pushed it
	// past the coarse alignment, not left it at the epoch offset.
	if m.Offsets[1] == 0 {
		t.Fatal("skewed process kept its coarse offset; causal refinement did not run")
	}

	// daemon-1's child already respected causality: its coarse offset must
	// be exactly its epoch delta (1000200 - 900000).
	if m.Offsets[0] != 100200 {
		t.Fatalf("daemon-1 offset = %d, want 100200", m.Offsets[0])
	}
}

// TestReadTolerantTail accepts a truncated final line (a crashed process
// tears mid-write) but rejects garbage in the middle of a file.
func TestReadTolerantTail(t *testing.T) {
	good := `{"process":"p","proc":"00000000000000aa","epoch_us":5}
{"name":"a","id":1,"lane":0,"start_us":1,"dur_us":2}
{"name":"b","id":2,"lane":0,"start`
	pt, err := Read(strings.NewReader(good), "p")
	if err != nil {
		t.Fatalf("truncated tail rejected: %v", err)
	}
	if len(pt.Spans) != 1 || pt.Name != "p" {
		t.Fatalf("spans = %d, name = %q", len(pt.Spans), pt.Name)
	}

	bad := `{"name":"a","id":1,"lane":0,"start
{"name":"b","id":2,"lane":0,"start_us":1,"dur_us":2}`
	if _, err := Read(strings.NewReader(bad), "p"); err == nil {
		t.Fatal("mid-file garbage accepted")
	}
}

// TestChromeShape checks structural invariants of the merged trace: valid
// JSON, one process_name per input, spans sorted by aligned timestamp, and
// flow events in matched s/f pairs.
func TestChromeShape(t *testing.T) {
	m := Merge(readTestdata(t))
	var buf bytes.Buffer
	if err := m.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Ts   int64          `json:"ts"`
			ID   string         `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	procNames, spans := 0, 0
	flows := map[string]int{}
	lastTs := int64(-1)
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procNames++
			}
		case "X":
			spans++
			if ev.Ts < lastTs {
				t.Fatalf("span timestamps not sorted: %d after %d", ev.Ts, lastTs)
			}
			lastTs = ev.Ts
		case "s", "f":
			flows[ev.ID]++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if procNames != 3 {
		t.Fatalf("process_name events = %d, want 3", procNames)
	}
	if spans != 7 {
		t.Fatalf("span events = %d, want 7", spans)
	}
	if len(flows) != 2 {
		t.Fatalf("flow links = %d, want 2", len(flows))
	}
	for id, n := range flows {
		if n != 2 {
			t.Fatalf("flow %s has %d events, want matched s/f pair", id, n)
		}
	}
}
