// Package tracemerge turns per-process JSONL span exports into one fleet
// trace. Each input file is the output of a telemetry.JSONLSink — an
// optional process-header line followed by one SpanRecord per line, with
// timestamps on that process's private monotonic clock. The merger aligns
// the clocks (coarse wall-clock epochs, refined by cross-process
// parent/child causality), resolves remote parent references by process id,
// and renders a Chrome trace_event file with one pid lane per input
// process, ready for chrome://tracing or Perfetto.
package tracemerge

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"parmem/internal/telemetry"
)

// ProcessTrace is one parsed JSONL input: a process identity plus its spans
// in file order (which is span-end order).
type ProcessTrace struct {
	Name    string // lane label; header's process name or a caller default
	Proc    string // 16-hex tracer process id; "" when the tracer had none
	EpochUs int64  // wall-clock instant of monotonic zero; 0 when unknown
	Spans   []telemetry.SpanRecord
}

// ReadFile parses one JSONL trace file; the file name (sans directory and
// extension) is the fallback lane label when the header is absent.
func ReadFile(path string) (ProcessTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return ProcessTrace{}, err
	}
	defer f.Close()
	return Read(f, defaultLabel(path))
}

func defaultLabel(path string) string {
	base := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			base = path[i+1:]
			break
		}
	}
	for i := len(base) - 1; i >= 0; i-- {
		if base[i] == '.' {
			return base[:i]
		}
	}
	return base
}

// Read parses a JSONL trace stream. Lines that parse as neither a process
// header nor a span record are an error — a truncated tail line (the
// process died mid-write) is tolerated only as the final line.
func Read(r io.Reader, name string) (ProcessTrace, error) {
	pt := ProcessTrace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	var pendingErr error
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			return ProcessTrace{}, pendingErr
		}
		var probe struct {
			Process string `json:"process"`
			Name    string `json:"name"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			// Tolerate exactly one unparseable line, and only if it turns
			// out to be the last — a crash can truncate the final write.
			pendingErr = fmt.Errorf("line %d: %v", lineNo, err)
			continue
		}
		if probe.Process != "" {
			var hdr telemetry.ProcessHeader
			if err := json.Unmarshal(line, &hdr); err != nil {
				return ProcessTrace{}, fmt.Errorf("line %d: %v", lineNo, err)
			}
			pt.Name, pt.Proc, pt.EpochUs = hdr.Process, hdr.Proc, hdr.EpochUs
			continue
		}
		var sp telemetry.SpanRecord
		if err := json.Unmarshal(line, &sp); err != nil {
			return ProcessTrace{}, fmt.Errorf("line %d: %v", lineNo, err)
		}
		pt.Spans = append(pt.Spans, sp)
	}
	if err := sc.Err(); err != nil {
		return ProcessTrace{}, err
	}
	return pt, nil
}

// TraceSummary aggregates one trace id across the merged processes.
type TraceSummary struct {
	Trace     string
	Spans     int
	Processes int // distinct input processes contributing spans
}

// Merged is the result of aligning and joining the inputs.
type Merged struct {
	Procs   []ProcessTrace
	Offsets []int64 // per-process shift (us) onto the common timeline
	Traces  []TraceSummary
}

// Merge aligns the processes onto one timeline. Coarse alignment uses the
// wall-clock epochs from the process headers; causal refinement then shifts
// any process whose spans would start before their cross-process parents —
// a child rpc cannot precede the forward that carried it, so clock skew
// shows up as exactly that violation.
func Merge(procs []ProcessTrace) *Merged {
	m := &Merged{Procs: procs, Offsets: make([]int64, len(procs))}

	// Coarse: shift each epoch-bearing process by its epoch relative to the
	// earliest one. Processes without an epoch start at zero and rely on
	// refinement.
	minEpoch := int64(0)
	for _, p := range procs {
		if p.EpochUs != 0 && (minEpoch == 0 || p.EpochUs < minEpoch) {
			minEpoch = p.EpochUs
		}
	}
	for i, p := range procs {
		if p.EpochUs != 0 {
			m.Offsets[i] = p.EpochUs - minEpoch
		}
	}

	// Index spans by (proc id, span id) for remote-parent resolution.
	type key struct {
		proc string
		id   uint64
	}
	parents := map[key]struct {
		proc int
		span telemetry.SpanRecord
	}{}
	for pi, p := range procs {
		if p.Proc == "" {
			continue
		}
		for _, sp := range p.Spans {
			parents[key{p.Proc, sp.ID}] = struct {
				proc int
				span telemetry.SpanRecord
			}{pi, sp}
		}
	}

	// Causal refinement: child start >= parent start on the common
	// timeline. Violations only ever push a process later, so iterating
	// processes-in-order a bounded number of rounds converges
	// deterministically.
	for range procs {
		changed := false
		for ci, p := range procs {
			for _, sp := range p.Spans {
				if sp.RemoteParent == "" {
					continue
				}
				pid, err := strconv.ParseUint(sp.RemoteParent, 16, 64)
				if err != nil {
					continue
				}
				par, ok := parents[key{sp.RemoteProc, pid}]
				if !ok || par.proc == ci {
					continue
				}
				childAt := sp.StartUs + m.Offsets[ci]
				parentAt := par.span.StartUs + m.Offsets[par.proc]
				if childAt < parentAt {
					m.Offsets[ci] += parentAt - childAt
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Per-trace summaries, ordered by span count (largest first) then id.
	type agg struct {
		spans int
		procs map[int]struct{}
	}
	traces := map[string]*agg{}
	for pi, p := range procs {
		for _, sp := range p.Spans {
			if sp.Trace == "" {
				continue
			}
			a := traces[sp.Trace]
			if a == nil {
				a = &agg{procs: map[int]struct{}{}}
				traces[sp.Trace] = a
			}
			a.spans++
			a.procs[pi] = struct{}{}
		}
	}
	for id, a := range traces {
		m.Traces = append(m.Traces, TraceSummary{Trace: id, Spans: a.spans, Processes: len(a.procs)})
	}
	sort.Slice(m.Traces, func(i, j int) bool {
		if m.Traces[i].Spans != m.Traces[j].Spans {
			return m.Traces[i].Spans > m.Traces[j].Spans
		}
		return m.Traces[i].Trace < m.Traces[j].Trace
	})
	return m
}

// MaxTraceProcesses returns the widest process fan of any single trace —
// the smoke-test gate for "one trace id spans the whole fleet".
func (m *Merged) MaxTraceProcesses() int {
	max := 0
	for _, t := range m.Traces {
		if t.Processes > max {
			max = t.Processes
		}
	}
	return max
}

// event is one Chrome trace_event entry with a fixed field order.
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteChrome renders the merged timeline as a Chrome trace_event JSON
// object: per-process metadata naming each pid lane, one complete ("X")
// event per span on its lane, and flow arrows ("s"/"f") for every resolved
// cross-process parent/child link. Output is deterministic for fixed input.
func (m *Merged) WriteChrome(w io.Writer) error {
	var evs []event
	for pi, p := range m.Procs {
		evs = append(evs, event{
			Name: "process_name", Ph: "M", Pid: pi + 1,
			Args: map[string]any{"name": p.Name},
		})
	}

	type key struct {
		proc string
		id   uint64
	}
	loc := map[key]event{} // resolved parent span -> its X event
	var spans []event
	for pi, p := range m.Procs {
		for _, sp := range p.Spans {
			args := map[string]any{}
			for k, v := range sp.Attrs {
				args[k] = v
			}
			args["trace"] = sp.Trace
			args["span"] = strconv.FormatUint(sp.ID, 16)
			if sp.Parent != 0 {
				args["parent"] = strconv.FormatUint(sp.Parent, 16)
			}
			if sp.RemoteParent != "" {
				args["remote_parent"] = sp.RemoteProc + "/" + sp.RemoteParent
			}
			ev := event{
				Name: sp.Name, Ph: "X", Pid: pi + 1, Tid: sp.Lane,
				Ts: sp.StartUs + m.Offsets[pi], Dur: sp.DurUs, Args: args,
			}
			spans = append(spans, ev)
			if p.Proc != "" {
				loc[key{p.Proc, sp.ID}] = ev
			}
		}
	}

	// Flow arrows for resolved remote links, numbered in span order so the
	// output is stable.
	var flows []event
	flowID := 0
	for pi, p := range m.Procs {
		for _, sp := range p.Spans {
			if sp.RemoteParent == "" {
				continue
			}
			id, err := strconv.ParseUint(sp.RemoteParent, 16, 64)
			if err != nil {
				continue
			}
			par, ok := loc[key{sp.RemoteProc, id}]
			if !ok {
				continue
			}
			flowID++
			fid := strconv.Itoa(flowID)
			childTs := sp.StartUs + m.Offsets[pi]
			flows = append(flows,
				event{Name: "rpc", Ph: "s", Pid: par.Pid, Tid: par.Tid, Ts: par.Ts, ID: fid},
				event{Name: "rpc", Ph: "f", Pid: pi + 1, Tid: sp.Lane, Ts: childTs, ID: fid},
			)
		}
	}

	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Ts != spans[j].Ts {
			return spans[i].Ts < spans[j].Ts
		}
		return spans[i].Pid < spans[j].Pid
	})
	evs = append(evs, spans...)
	evs = append(evs, flows...)

	b, err := json.MarshalIndent(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"}, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
