package ir

import (
	"strings"
	"testing"
)

// sample builds: t0 = x + y; if t0 < 10 jump b1 else fall to b1... a small
// two-block function used across tests.
func sample() (*Func, *Value, *Value) {
	f := NewFunc("sample")
	x := f.NewValue("x", Int, Var)
	y := f.NewValue("y", Int, Var)
	t := f.NewTemp(Int)
	b0 := f.Blocks[0]
	b0.Emit(Instr{Op: Add, Dst: t, A: x, B: y})
	b0.Emit(Instr{Op: Br, A: t, Target: 1})
	b1 := f.NewBlock()
	b1.Emit(Instr{Op: Ret})
	return f, x, y
}

func TestNewFuncHasEntryBlock(t *testing.T) {
	f := NewFunc("f")
	if len(f.Blocks) != 1 || f.Blocks[0].ID != 0 {
		t.Fatalf("blocks = %v", f.Blocks)
	}
}

func TestValueIDsDense(t *testing.T) {
	f := NewFunc("f")
	a := f.NewValue("a", Int, Var)
	b := f.NewTemp(Float)
	c := f.IntConst(7)
	d := f.FloatConst(2.5)
	for i, v := range []*Value{a, b, c, d} {
		if v.ID != i || f.Values[i] != v {
			t.Fatalf("value %d has ID %d", i, v.ID)
		}
	}
	if c.ConstInt != 7 || d.ConstFloat != 2.5 {
		t.Fatal("constant payloads")
	}
}

func TestIsMem(t *testing.T) {
	f := NewFunc("f")
	if !f.NewValue("v", Int, Var).IsMem() {
		t.Fatal("variables are memory-resident")
	}
	if !f.NewTemp(Int).IsMem() {
		t.Fatal("temps are memory-resident")
	}
	if f.IntConst(1).IsMem() {
		t.Fatal("constants are immediates")
	}
	var nilV *Value
	if nilV.IsMem() {
		t.Fatal("nil is not a memory value")
	}
}

func TestUsesSkipsConstants(t *testing.T) {
	f := NewFunc("f")
	x := f.NewValue("x", Int, Var)
	c := f.IntConst(3)
	t1 := f.NewTemp(Int)
	in := Instr{Op: Add, Dst: t1, A: x, B: c}
	uses := in.Uses()
	if len(uses) != 1 || uses[0] != x {
		t.Fatalf("uses = %v", uses)
	}
}

func TestUsesIncludesIndex(t *testing.T) {
	f := NewFunc("f")
	arr := f.NewArray("a", 10, Int)
	i := f.NewValue("i", Int, Var)
	x := f.NewValue("x", Int, Var)
	st := Instr{Op: Store, Arr: arr, Index: i, A: x}
	if got := st.Uses(); len(got) != 2 {
		t.Fatalf("store uses = %v, want [x i]", got)
	}
}

func TestSuccsFallthrough(t *testing.T) {
	f, _, _ := sample()
	// b0 ends in Br to b1 with fallthrough also b1: dedup to one successor.
	succs := f.Succs(f.Blocks[0])
	if len(succs) != 1 || succs[0] != 1 {
		t.Fatalf("succs(b0) = %v, want [1]", succs)
	}
	if got := f.Succs(f.Blocks[1]); got != nil {
		t.Fatalf("succs(ret block) = %v, want nil", got)
	}
}

func TestSuccsBranchAndFallthrough(t *testing.T) {
	f := NewFunc("f")
	x := f.NewValue("x", Int, Var)
	f.Blocks[0].Emit(Instr{Op: Br, A: x, Target: 2})
	f.NewBlock().Emit(Instr{Op: Jmp, Target: 2})
	f.NewBlock().Emit(Instr{Op: Ret})
	succs := f.Succs(f.Blocks[0])
	if len(succs) != 2 || succs[0] != 2 || succs[1] != 1 {
		t.Fatalf("succs = %v, want [2 1]", succs)
	}
	if got := f.Succs(f.Blocks[1]); len(got) != 1 || got[0] != 2 {
		t.Fatalf("jmp succs = %v", got)
	}
}

func TestSuccsEmptyBlock(t *testing.T) {
	f := NewFunc("f")
	f.NewBlock().Emit(Instr{Op: Ret})
	if got := f.Succs(f.Blocks[0]); len(got) != 1 || got[0] != 1 {
		t.Fatalf("empty block succs = %v, want [1]", got)
	}
}

func TestValidateOK(t *testing.T) {
	f, _, _ := sample()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateBranchTarget(t *testing.T) {
	f := NewFunc("f")
	f.Blocks[0].Emit(Instr{Op: Jmp, Target: 42})
	if err := f.Validate(); err == nil {
		t.Fatal("out-of-range target must fail")
	}
}

func TestValidateMidBlockBranch(t *testing.T) {
	f := NewFunc("f")
	f.Blocks[0].Emit(Instr{Op: Jmp, Target: 0})
	f.Blocks[0].Emit(Instr{Op: Ret})
	if err := f.Validate(); err == nil {
		t.Fatal("branch in the middle of a block must fail")
	}
}

func TestValidateForeignValue(t *testing.T) {
	f := NewFunc("f")
	g := NewFunc("g")
	alien := g.NewValue("alien", Int, Var)
	f.Blocks[0].Emit(Instr{Op: Mov, Dst: alien, A: alien})
	f.Blocks[0].Emit(Instr{Op: Ret})
	if err := f.Validate(); err == nil {
		t.Fatal("foreign value must fail validation")
	}
}

func TestValidateLoadWithoutArray(t *testing.T) {
	f := NewFunc("f")
	tv := f.NewTemp(Int)
	f.Blocks[0].Emit(Instr{Op: Load, Dst: tv})
	f.Blocks[0].Emit(Instr{Op: Ret})
	if err := f.Validate(); err == nil {
		t.Fatal("load without array must fail")
	}
}

func TestValidateUnterminatedFinalBlock(t *testing.T) {
	f := NewFunc("f")
	x := f.NewValue("x", Int, Var)
	f.Blocks[0].Emit(Instr{Op: Mov, Dst: x, A: f.IntConst(1)})
	if err := f.Validate(); err == nil {
		t.Fatal("unterminated final block must fail")
	}
}

func TestStringRendering(t *testing.T) {
	f, _, _ := sample()
	s := f.String()
	for _, want := range []string{"func sample:", "b0:", "t2 = x add y", "br t2 -> b1", "ret"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q in:\n%s", want, s)
		}
	}
	arrF := NewFunc("g")
	arr := arrF.NewArray("data", 8, Float)
	i := arrF.NewValue("i", Int, Var)
	d := arrF.NewTemp(Float)
	load := Instr{Op: Load, Dst: d, Arr: arr, Index: i}
	if got := load.String(); got != "t1 = data[i]" {
		t.Fatalf("load string = %q", got)
	}
	store := Instr{Op: Store, Arr: arr, Index: i, A: d}
	if got := store.String(); got != "data[i] = t1" {
		t.Fatalf("store string = %q", got)
	}
}

func TestOpStrings(t *testing.T) {
	if Add.String() != "add" || Not.String() != "not" || Ret.String() != "ret" {
		t.Fatal("op names")
	}
	if Op(999).String() != "op(999)" {
		t.Fatal("unknown op formatting")
	}
	if !Br.IsBranch() || !Jmp.IsBranch() || !Ret.IsBranch() || Add.IsBranch() {
		t.Fatal("IsBranch")
	}
	if !Lt.IsCompare() || !Eq.IsCompare() || Add.IsCompare() || Not.IsCompare() {
		t.Fatal("IsCompare")
	}
}

func TestNumInstrs(t *testing.T) {
	f, _, _ := sample()
	if f.NumInstrs() != 3 {
		t.Fatalf("NumInstrs = %d, want 3", f.NumInstrs())
	}
}

func TestTypeString(t *testing.T) {
	if Int.String() != "int" || Float.String() != "float" {
		t.Fatal("type names")
	}
}
