// Package ir defines the three-address intermediate representation the MPL
// front end lowers to and the LIW scheduler consumes.
//
// The unit of storage allocation is the Value: a scalar variable, a renamed
// definition of one (see internal/dfa), or a compiler temporary. Values of
// kind Const are immediates and never occupy a memory module; everything
// else is memory-resident, exactly as on the paper's RLIW machine, where
// functional units fetch their operands from the parallel memory modules on
// every instruction.
package ir

import (
	"fmt"
	"strings"
)

// Type is a value type.
type Type int

const (
	Int Type = iota
	Float
)

func (t Type) String() string {
	if t == Float {
		return "float"
	}
	return "int"
}

// Kind classifies values.
type Kind int

const (
	// Var is a program variable (or a renamed web of one).
	Var Kind = iota
	// Temp is a compiler temporary.
	Temp
	// Const is an immediate; it consumes no memory-module storage.
	Const
)

// Value is a compile-time data value.
type Value struct {
	ID   int
	Name string
	Type Type
	Kind Kind
	// ConstInt/ConstFloat hold the immediate for Kind == Const.
	ConstInt   int64
	ConstFloat float64
}

// IsMem reports whether the value lives in a memory module (i.e. fetching
// it can conflict with other fetches).
func (v *Value) IsMem() bool { return v != nil && v.Kind != Const }

func (v *Value) String() string {
	if v == nil {
		return "_"
	}
	if v.Kind == Const {
		if v.Type == Float {
			return fmt.Sprintf("%g", v.ConstFloat)
		}
		return fmt.Sprintf("%d", v.ConstInt)
	}
	return v.Name
}

// Array is a program array. Its elements are addressed at run time, so the
// compiler cannot predict which module an element access hits; the machine
// model distributes elements across modules according to a storage scheme.
type Array struct {
	ID   int
	Name string
	Size int
	Type Type
}

// Op is a three-address opcode.
type Op int

const (
	Nop Op = iota
	// Arithmetic: Dst = A op B (Neg/Not: Dst = op A).
	Add
	Sub
	Mul
	Div
	Mod
	Neg
	// Comparisons: Dst = A op B as 0/1 int.
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	// Not is logical negation: Dst = (A == 0).
	Not
	// Mov: Dst = A.
	Mov
	// Load: Dst = Array[Index]. Store: Array[Index] = A.
	Load
	Store
	// Br: if A != 0 jump to block Target, else fall through.
	// Jmp: jump to block Target.
	Br
	Jmp
	// Ret ends execution of the function.
	Ret
)

var opNames = map[Op]string{
	Nop: "nop", Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	Neg: "neg", Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	Not: "not", Mov: "mov", Load: "load", Store: "store", Br: "br", Jmp: "jmp",
	Ret: "ret",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsBranch reports whether the op ends a basic block.
func (o Op) IsBranch() bool { return o == Br || o == Jmp || o == Ret }

// IsCompare reports whether the op is a comparison.
func (o Op) IsCompare() bool { return o >= Eq && o <= Ge }

// Instr is one three-address instruction.
type Instr struct {
	Op     Op
	Dst    *Value // defined value; nil for Store/Br/Jmp/Ret/Nop
	A, B   *Value // operands; B nil for unary/Mov/Load
	Arr    *Array // Load/Store target array
	Index  *Value // Load/Store index
	Target int    // Br/Jmp target block id
	// Seq is the instruction's position in original program order, stamped
	// by the scheduler. Operations packed into the same word commit their
	// results in Seq order, which keeps "which write was last"
	// observations (machine.Result.Scalar) schedule-independent.
	Seq int
}

// Uses returns the memory-resident values the instruction fetches.
func (in *Instr) Uses() []*Value {
	var out []*Value
	add := func(v *Value) {
		if v.IsMem() {
			out = append(out, v)
		}
	}
	if in.A != nil {
		add(in.A)
	}
	if in.B != nil {
		add(in.B)
	}
	if in.Index != nil {
		add(in.Index)
	}
	return out
}

// Def returns the value the instruction defines, or nil.
func (in *Instr) Def() *Value { return in.Dst }

func (in *Instr) String() string {
	switch in.Op {
	case Load:
		return fmt.Sprintf("%s = %s[%s]", in.Dst, in.Arr.Name, in.Index)
	case Store:
		return fmt.Sprintf("%s[%s] = %s", in.Arr.Name, in.Index, in.A)
	case Br:
		return fmt.Sprintf("br %s -> b%d", in.A, in.Target)
	case Jmp:
		return fmt.Sprintf("jmp b%d", in.Target)
	case Ret:
		return "ret"
	case Mov:
		return fmt.Sprintf("%s = %s", in.Dst, in.A)
	case Neg, Not:
		return fmt.Sprintf("%s = %s %s", in.Dst, in.Op, in.A)
	default:
		if in.B != nil {
			return fmt.Sprintf("%s = %s %s %s", in.Dst, in.A, in.Op, in.B)
		}
		return fmt.Sprintf("%s = %s %s", in.Dst, in.Op, in.A)
	}
}

// Block is a basic block. Control falls through to the next block in layout
// order unless the last instruction is an unconditional transfer.
type Block struct {
	ID     int
	Instrs []Instr
}

// Func is a function (MPL programs are a single main function).
type Func struct {
	Name   string
	Blocks []*Block
	Values []*Value // all values, indexed by ID
	Arrays []*Array // all arrays, indexed by ID
}

// NewFunc returns an empty function with one entry block.
func NewFunc(name string) *Func {
	f := &Func{Name: name}
	f.NewBlock()
	return f
}

// NewBlock appends a new empty block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewValue creates a memory-resident value.
func (f *Func) NewValue(name string, t Type, k Kind) *Value {
	v := &Value{ID: len(f.Values), Name: name, Type: t, Kind: k}
	f.Values = append(f.Values, v)
	return v
}

// NewTemp creates a fresh compiler temporary.
func (f *Func) NewTemp(t Type) *Value {
	return f.NewValue(fmt.Sprintf("t%d", len(f.Values)), t, Temp)
}

// IntConst returns an integer immediate.
func (f *Func) IntConst(x int64) *Value {
	v := &Value{ID: len(f.Values), Name: fmt.Sprintf("%d", x), Type: Int, Kind: Const, ConstInt: x}
	f.Values = append(f.Values, v)
	return v
}

// FloatConst returns a floating-point immediate.
func (f *Func) FloatConst(x float64) *Value {
	v := &Value{ID: len(f.Values), Name: fmt.Sprintf("%g", x), Type: Float, Kind: Const, ConstFloat: x}
	f.Values = append(f.Values, v)
	return v
}

// NewArray declares an array.
func (f *Func) NewArray(name string, size int, t Type) *Array {
	a := &Array{ID: len(f.Arrays), Name: name, Size: size, Type: t}
	f.Arrays = append(f.Arrays, a)
	return a
}

// Emit appends an instruction to block b.
func (b *Block) Emit(in Instr) { b.Instrs = append(b.Instrs, in) }

// Terminated reports whether the block already ends in a branch.
func (b *Block) Terminated() bool {
	return len(b.Instrs) > 0 && b.Instrs[len(b.Instrs)-1].Op.IsBranch()
}

// Succs returns the possible successor block ids of block b within f,
// taking the fallthrough edge into account.
func (f *Func) Succs(b *Block) []int {
	if len(b.Instrs) == 0 {
		if b.ID+1 < len(f.Blocks) {
			return []int{b.ID + 1}
		}
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	switch last.Op {
	case Jmp:
		return []int{last.Target}
	case Ret:
		return nil
	case Br:
		if b.ID+1 < len(f.Blocks) {
			if last.Target == b.ID+1 {
				return []int{last.Target}
			}
			return []int{last.Target, b.ID + 1}
		}
		return []int{last.Target}
	default:
		if b.ID+1 < len(f.Blocks) {
			return []int{b.ID + 1}
		}
		return nil
	}
}

// Validate checks structural invariants: branch targets exist, operands are
// registered, Load/Store have arrays and indices, every block reaches a
// terminator or has a fallthrough.
func (f *Func) Validate() error {
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op.IsBranch() && i != len(b.Instrs)-1 {
				return fmt.Errorf("%s: b%d instr %d: branch in the middle of a block", f.Name, b.ID, i)
			}
			if (in.Op == Br || in.Op == Jmp) && (in.Target < 0 || in.Target >= len(f.Blocks)) {
				return fmt.Errorf("%s: b%d instr %d: branch target b%d out of range", f.Name, b.ID, i, in.Target)
			}
			if (in.Op == Load || in.Op == Store) && (in.Arr == nil || in.Index == nil) {
				return fmt.Errorf("%s: b%d instr %d: %s without array or index", f.Name, b.ID, i, in.Op)
			}
			for _, v := range []*Value{in.Dst, in.A, in.B, in.Index} {
				if v == nil {
					continue
				}
				if v.ID < 0 || v.ID >= len(f.Values) || f.Values[v.ID] != v {
					return fmt.Errorf("%s: b%d instr %d: value %q not registered with this function", f.Name, b.ID, i, v.Name)
				}
			}
		}
	}
	// The last block must end execution.
	if len(f.Blocks) > 0 {
		last := f.Blocks[len(f.Blocks)-1]
		if !last.Terminated() {
			return fmt.Errorf("%s: final block b%d does not terminate", f.Name, last.ID)
		}
	}
	return nil
}

// String renders the function for debugging.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", in.String())
		}
	}
	return sb.String()
}

// NumInstrs counts three-address instructions in f.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}
