// Package faultinject provides armable panic points for testing the
// pipeline's panic-recovery boundaries. Production code calls Check at the
// top of each phase; tests arm a point by name and assert that the public
// API converts the forced panic into a typed *InternalError instead of
// letting it escape. While no point is armed the cost of a Check is a
// single atomic load.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Prefix tags every forced panic value so recovery sites and tests can
// recognize injected faults.
const Prefix = "faultinject: forced panic at "

var (
	armed  atomic.Bool
	mu     sync.Mutex
	points = map[string]bool{}
)

// Check panics when the named point is armed. The fast path (nothing armed
// anywhere) is branch-predictable and lock-free.
func Check(point string) {
	if !armed.Load() {
		return
	}
	mu.Lock()
	on := points[point]
	mu.Unlock()
	if on {
		panic(Prefix + point)
	}
}

// Arm enables the named point until Disarm or Reset.
func Arm(point string) {
	mu.Lock()
	points[point] = true
	mu.Unlock()
	armed.Store(true)
}

// Disarm disables the named point.
func Disarm(point string) {
	mu.Lock()
	delete(points, point)
	n := len(points)
	mu.Unlock()
	if n == 0 {
		armed.Store(false)
	}
}

// Reset disables every point.
func Reset() {
	mu.Lock()
	points = map[string]bool{}
	mu.Unlock()
	armed.Store(false)
}
