package faultinject

import (
	"strings"
	"testing"
)

func panicValue(f func()) (v any) {
	defer func() { v = recover() }()
	f()
	return nil
}

func TestCheckInertByDefault(t *testing.T) {
	Reset()
	if v := panicValue(func() { Check("anything") }); v != nil {
		t.Fatalf("unarmed Check panicked: %v", v)
	}
}

func TestArmDisarm(t *testing.T) {
	defer Reset()
	Arm("p1")
	v := panicValue(func() { Check("p1") })
	s, ok := v.(string)
	if !ok || !strings.HasPrefix(s, Prefix) || !strings.HasSuffix(s, "p1") {
		t.Fatalf("panic value = %v, want %q", v, Prefix+"p1")
	}
	// Other points stay inert.
	if v := panicValue(func() { Check("p2") }); v != nil {
		t.Fatalf("unarmed point panicked: %v", v)
	}
	Disarm("p1")
	if v := panicValue(func() { Check("p1") }); v != nil {
		t.Fatalf("disarmed point panicked: %v", v)
	}
}

func TestResetClearsAll(t *testing.T) {
	Arm("a")
	Arm("b")
	Reset()
	for _, p := range []string{"a", "b"} {
		if v := panicValue(func() { Check(p) }); v != nil {
			t.Fatalf("point %s survived Reset: %v", p, v)
		}
	}
}
