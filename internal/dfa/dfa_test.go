package dfa

import (
	"testing"

	"parmem/internal/ir"
	"parmem/internal/lang"
)

func mustCompile(t *testing.T, src string) *ir.Func {
	t.Helper()
	f, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return f
}

const loopSrc = `
program loops;
var s, x: int;
begin
  s := 0;
  for i := 1 to 10 do
    s := s + i;
  end
  while s > 0 do
    s := s - 2;
  end
  x := s;
end
`

func TestBuildCFG(t *testing.T) {
	f := mustCompile(t, loopSrc)
	c := BuildCFG(f)
	if len(c.Succs) != len(f.Blocks) {
		t.Fatalf("succs len = %d", len(c.Succs))
	}
	// Entry has no predecessors... unless it is a loop header; here it is
	// plain straight-line code.
	if len(c.Preds[0]) != 0 {
		t.Fatalf("entry preds = %v", c.Preds[0])
	}
	// Predecessor lists are consistent with successor lists.
	for u, ss := range c.Succs {
		for _, v := range ss {
			found := false
			for _, p := range c.Preds[v] {
				found = found || p == u
			}
			if !found {
				t.Fatalf("edge %d->%d missing from preds", u, v)
			}
		}
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	f := mustCompile(t, loopSrc)
	rpo := BuildCFG(f).RPO()
	if len(rpo) == 0 || rpo[0] != 0 {
		t.Fatalf("rpo = %v", rpo)
	}
	seen := map[int]bool{}
	for _, b := range rpo {
		if seen[b] {
			t.Fatalf("duplicate block %d in rpo", b)
		}
		seen[b] = true
	}
}

func TestDominators(t *testing.T) {
	f := mustCompile(t, loopSrc)
	c := BuildCFG(f)
	idom := c.Dominators()
	if idom[0] != 0 {
		t.Fatalf("idom(entry) = %d", idom[0])
	}
	// Entry dominates everything reachable.
	for _, b := range c.RPO() {
		if !Dominates(idom, 0, b) {
			t.Fatalf("entry must dominate %d", b)
		}
	}
}

func TestLoopsFound(t *testing.T) {
	f := mustCompile(t, loopSrc)
	loops := BuildCFG(f).Loops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2 (for and while)", len(loops))
	}
	for _, lp := range loops {
		if len(lp.Blocks) < 2 {
			t.Fatalf("loop %v too small", lp)
		}
		hasHeader := false
		for _, b := range lp.Blocks {
			hasHeader = hasHeader || b == lp.Header
		}
		if !hasHeader {
			t.Fatalf("loop %v missing its header", lp)
		}
	}
}

func TestNoLoopsInStraightLine(t *testing.T) {
	f := mustCompile(t, "program p; var x: int; begin x := 1; x := x + 2; end")
	if loops := BuildCFG(f).Loops(); len(loops) != 0 {
		t.Fatalf("loops = %v, want none", loops)
	}
}

func TestRegions(t *testing.T) {
	f := mustCompile(t, loopSrc)
	regs := BuildCFG(f).FindRegions()
	if regs.Num != 3 {
		t.Fatalf("regions = %d, want 3 (top + 2 loops)", regs.Num)
	}
	if regs.Of[0] != 0 {
		t.Fatalf("entry block region = %d, want 0", regs.Of[0])
	}
	seen := map[int]bool{}
	for _, r := range regs.Of {
		seen[r] = true
	}
	for r := 0; r < regs.Num; r++ {
		if !seen[r] {
			t.Fatalf("region %d has no blocks", r)
		}
	}
}

func TestNestedLoopInnermost(t *testing.T) {
	src := `
program nest;
var s: int;
begin
  for i := 0 to 3 do
    for j := 0 to 3 do
      s := s + i * j;
    end
  end
end`
	f := mustCompile(t, src)
	c := BuildCFG(f)
	loops := c.Loops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	// One loop strictly contains the other.
	inner, outer := loops[0], loops[1]
	if len(inner.Blocks) > len(outer.Blocks) {
		inner, outer = outer, inner
	}
	if len(inner.Blocks) >= len(outer.Blocks) {
		t.Fatalf("expected nesting, got %v and %v", inner, outer)
	}
	regs := c.FindRegions()
	// Inner blocks must belong to the inner region, not the outer.
	innerRegion := regs.Of[inner.Header]
	for _, b := range inner.Blocks {
		if regs.Of[b] != innerRegion {
			t.Fatalf("inner block %d in region %d, want %d", b, regs.Of[b], innerRegion)
		}
	}
	outerOnly := -1
	for _, b := range outer.Blocks {
		isInner := false
		for _, ib := range inner.Blocks {
			isInner = isInner || ib == b
		}
		if !isInner {
			outerOnly = b
		}
	}
	if outerOnly == -1 {
		t.Fatal("no outer-only block")
	}
	if regs.Of[outerOnly] == innerRegion {
		t.Fatal("outer-only block assigned to inner region")
	}
}

func TestRenameSplitsIndependentDefs(t *testing.T) {
	// x is defined and fully consumed twice, independently: two webs.
	src := `
program split;
var x, a, b: int;
begin
  x := 1;
  a := x + 1;
  x := 2;
  b := x + 2;
end`
	f := mustCompile(t, src)
	split, webs, err := Rename(f)
	if err != nil {
		t.Fatal(err)
	}
	if split != 1 {
		t.Fatalf("split = %d, want 1 (only x)", split)
	}
	// The two real independent defs become two webs; the implicit entry
	// definition reaches no use and gets no web of its own.
	if webs != 2 {
		t.Fatalf("webs = %d, want 2", webs)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// The two defs of x now write different values.
	var defVals []int
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.Mov && in.Dst != nil && in.Dst.Name[0] == 'x' && in.A.Kind == ir.Const {
				defVals = append(defVals, in.Dst.ID)
			}
		}
	}
	if len(defVals) != 2 || defVals[0] == defVals[1] {
		t.Fatalf("x defs = %v, want two distinct values", defVals)
	}
}

func TestRenameKeepsLoopVariableWhole(t *testing.T) {
	// i := 0 and i := i + 1 reach common uses: one web, no split of the
	// live range that crosses the backedge.
	src := `
program loopvar;
var s: int;
begin
  s := 0;
  for i := 0 to 5 do
    s := s + i;
  end
end`
	f := mustCompile(t, src)
	before := len(f.Values)
	if _, _, err := Rename(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// i must not split: its two defs flow into shared uses. s splits into
	// entry-web (unused) + one web for {s:=0, s:=s+i}. So at most s's webs
	// are added.
	var iVals int
	for _, v := range f.Values {
		if v.Kind == ir.Var && (v.Name == "i" || (len(v.Name) > 2 && v.Name[:2] == "i.")) {
			iVals++
		}
	}
	if iVals != 1 {
		t.Fatalf("loop variable fragmented into %d values", iVals)
	}
	_ = before
}

func TestRenameUseBeforeDef(t *testing.T) {
	// y is read before any definition: the implicit entry definition
	// supplies the initial value and joins the web of that use.
	src := `
program ubd;
var x, y: int;
begin
  x := y + 1;
  y := 3;
  x := y + x;
end`
	f := mustCompile(t, src)
	if _, _, err := Rename(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRenameIdempotentOnTemps(t *testing.T) {
	f := mustCompile(t, "program p; var x: int; begin x := 1 + 2 * 3; end")
	nv := len(f.Values)
	split, webs, err := Rename(f)
	if err != nil {
		t.Fatal(err)
	}
	if split != 0 || webs != 0 {
		t.Fatalf("split=%d webs=%d, want 0/0 (single def)", split, webs)
	}
	if len(f.Values) != nv {
		t.Fatal("values added for nothing")
	}
}

func TestLiveness(t *testing.T) {
	src := `
program live;
var a, b, c: int;
begin
  a := 1;
  b := 2;
  while a < 10 do
    a := a + b;
  end
  c := a;
end`
	f := mustCompile(t, src)
	liveIn, liveOut := Liveness(f)
	// Find a and b ids.
	var aID, bID, cID int
	for _, v := range f.Values {
		switch v.Name {
		case "a":
			aID = v.ID
		case "b":
			bID = v.ID
		case "c":
			cID = v.ID
		}
	}
	// b is live into the loop header (used inside the loop).
	header := -1
	for _, lp := range BuildCFG(f).Loops() {
		header = lp.Header
	}
	if header == -1 {
		t.Fatal("no loop found")
	}
	if !liveIn[header][aID] || !liveIn[header][bID] {
		t.Fatalf("a and b must be live into the loop header: %v", liveIn[header])
	}
	// c is dead everywhere (never used after definition).
	for b := range liveOut {
		if liveOut[b][cID] {
			t.Fatalf("c live-out of block %d", b)
		}
	}
}

func TestGlobalValues(t *testing.T) {
	f := mustCompile(t, loopSrc)
	c := BuildCFG(f)
	regs := c.FindRegions()
	globals := GlobalValues(f, regs)
	var sID, xID int
	for _, v := range f.Values {
		switch v.Name {
		case "s":
			sID = v.ID
		case "x":
			xID = v.ID
		}
	}
	if !globals[sID] {
		t.Fatal("s is used in both loops and at top level: must be global")
	}
	if globals[xID] {
		t.Fatal("x only appears at top level: must be local")
	}
}

func TestGlobalValuesSingleRegion(t *testing.T) {
	f := mustCompile(t, "program p; var x: int; begin x := 1; x := x + 1; end")
	regs := BuildCFG(f).FindRegions()
	if regs.Num != 1 {
		t.Fatalf("regions = %d", regs.Num)
	}
	if g := GlobalValues(f, regs); len(g) != 0 {
		t.Fatalf("globals = %v, want none", g)
	}
}
