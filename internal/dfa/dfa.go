// Package dfa provides the dataflow analyses the storage allocator needs:
// CFG construction, dominators, natural-loop regions, reaching definitions,
// liveness, web-based renaming and the global/local value classification of
// strategy STOR2.
//
// Renaming follows the paper's prescription (§2, citing Cytron & Ferrante):
// "corresponding to each definition of a variable, a distinct data value is
// created". Definitions that flow into a common use must share storage, so
// the distinct data values are the *webs* of the def-use graph: maximal
// groups of definitions connected through shared uses. After renaming, each
// web is an independent value and may be assigned its own memory module.
package dfa

import (
	"fmt"
	"sort"

	"parmem/internal/faultinject"
	"parmem/internal/ir"
)

// CFG is the control-flow graph of a function.
type CFG struct {
	F     *ir.Func
	Succs [][]int
	Preds [][]int
}

// BuildCFG computes successor and predecessor lists.
func BuildCFG(f *ir.Func) *CFG {
	n := len(f.Blocks)
	c := &CFG{F: f, Succs: make([][]int, n), Preds: make([][]int, n)}
	for _, b := range f.Blocks {
		c.Succs[b.ID] = f.Succs(b)
	}
	for u, ss := range c.Succs {
		for _, v := range ss {
			c.Preds[v] = append(c.Preds[v], u)
		}
	}
	return c
}

// RPO returns the blocks reachable from entry in reverse postorder.
func (c *CFG) RPO() []int {
	seen := make([]bool, len(c.Succs))
	var post []int
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		for _, v := range c.Succs[u] {
			if !seen[v] {
				dfs(v)
			}
		}
		post = append(post, u)
	}
	if len(c.Succs) > 0 {
		dfs(0)
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators returns idom[b] for every reachable block (idom[entry] =
// entry); unreachable blocks get -1. Cooper/Harvey/Kennedy iterative
// algorithm over reverse postorder.
func (c *CFG) Dominators() []int {
	n := len(c.Succs)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	rpo := c.RPO()
	pos := make([]int, n)
	for i, b := range rpo {
		pos[b] = i
	}
	if len(rpo) == 0 {
		return idom
	}
	idom[rpo[0]] = rpo[0]

	intersect := func(a, b int) int {
		for a != b {
			for pos[a] > pos[b] {
				a = idom[a]
			}
			for pos[b] > pos[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			newIdom := -1
			for _, p := range c.Preds[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b given the idom array.
func Dominates(idom []int, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == idom[b] {
			return false
		}
		b = idom[b]
	}
}

// Loop is one natural loop.
type Loop struct {
	Header int
	Blocks []int // sorted; includes the header
}

// Loops finds the natural loops of c: for every back edge u->h (h dominates
// u), the loop body is h plus everything that reaches u without passing
// through h. Loops sharing a header are merged.
func (c *CFG) Loops() []Loop {
	idom := c.Dominators()
	bodies := map[int]map[int]bool{} // header -> block set
	for u := range c.Succs {
		for _, h := range c.Succs[u] {
			if !Dominates(idom, h, u) {
				continue
			}
			body := bodies[h]
			if body == nil {
				body = map[int]bool{h: true}
				bodies[h] = body
			}
			// Walk predecessors backward from u.
			stack := []int{u}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[x] {
					continue
				}
				body[x] = true
				for _, p := range c.Preds[x] {
					stack = append(stack, p)
				}
			}
		}
	}
	var hs []int
	for h := range bodies {
		hs = append(hs, h)
	}
	sort.Ints(hs)
	out := make([]Loop, 0, len(hs))
	for _, h := range hs {
		var blocks []int
		for b := range bodies[h] {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		out = append(out, Loop{Header: h, Blocks: blocks})
	}
	return out
}

// Regions assigns every block a region id: region 0 is the top level
// (straight-line code outside loops); each natural loop is a region, with
// blocks belonging to their innermost enclosing loop. This is the program
// partition STOR2 allocates one piece at a time.
type Regions struct {
	Of  []int // block id -> region id
	Num int   // number of regions (including region 0)
}

// FindRegions computes the region partition of f's blocks.
func (c *CFG) FindRegions() Regions {
	loops := c.Loops()
	// Innermost = smallest containing loop; sort by size ascending so the
	// first hit wins.
	sort.SliceStable(loops, func(i, j int) bool { return len(loops[i].Blocks) < len(loops[j].Blocks) })
	r := Regions{Of: make([]int, len(c.Succs)), Num: 1}
	assigned := make([]bool, len(c.Succs))
	for _, lp := range loops {
		id := r.Num
		used := false
		for _, b := range lp.Blocks {
			if !assigned[b] {
				assigned[b] = true
				r.Of[b] = id
				used = true
			}
		}
		if used {
			r.Num++
		}
	}
	return r
}

// defSite is one static definition of a value.
type defSite struct {
	block, idx int // idx == -1 encodes the implicit entry definition
	val        int // value id
}

// Rename splits every multi-definition variable into webs and rewrites f in
// place. Each web gets a fresh ir.Value named "<var>.<n>"; single-web
// variables keep their original value. Temps are single-definition by
// construction and are left alone. It returns, for reporting, the number of
// variables split and the total number of webs created. A non-nil error
// means the IR is inconsistent (a definition site that was never
// registered) and f may be partially rewritten.
func Rename(f *ir.Func) (split, webs int, err error) {
	faultinject.Check("dfa.rename")
	c := BuildCFG(f)
	n := len(f.Blocks)

	// Collect definition sites per variable. Every variable also has an
	// implicit entry definition (idx -1): a use before any real definition
	// reads the initial value.
	var defs []defSite
	defIdxByVal := map[int][]int{}
	for _, v := range f.Values {
		if v.Kind == ir.Var {
			defIdxByVal[v.ID] = append(defIdxByVal[v.ID], len(defs))
			defs = append(defs, defSite{block: 0, idx: -1, val: v.ID})
		}
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if d := in.Def(); d != nil && d.Kind == ir.Var {
				defIdxByVal[d.ID] = append(defIdxByVal[d.ID], len(defs))
				defs = append(defs, defSite{block: b.ID, idx: i, val: d.ID})
			}
		}
	}
	nd := len(defs)
	if nd == 0 {
		return 0, 0, nil
	}

	// Reaching definitions, bitset per block.
	words := (nd + 63) / 64
	type bits []uint64
	newBits := func() bits { return make(bits, words) }
	set := func(b bits, i int) { b[i/64] |= 1 << uint(i%64) }
	clr := func(b bits, i int) { b[i/64] &^= 1 << uint(i%64) }
	get := func(b bits, i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

	gen := make([]bits, n)
	killAll := make([]bits, n) // per block: defs surviving the block (transfer)
	out := make([]bits, n)
	in := make([]bits, n)
	for b := 0; b < n; b++ {
		gen[b], killAll[b], out[b], in[b] = newBits(), newBits(), newBits(), newBits()
	}

	// transfer(b, x) = gen[b] ∪ (x − kill[b]); compute gen/kill by forward
	// scan: later defs of the same variable kill earlier ones.
	lastDef := map[int]int{} // val -> def index within the block scan
	for _, b := range f.Blocks {
		for k := range lastDef {
			delete(lastDef, k)
		}
		for i, instr := range b.Instrs {
			if d := instr.Def(); d != nil && d.Kind == ir.Var {
				di, ok := findDef(defIdxByVal[d.ID], defs, b.ID, i)
				if !ok {
					return 0, 0, defNotRegistered(d, b.ID, i)
				}
				lastDef[d.ID] = di
			}
		}
		for _, di := range lastDef {
			set(gen[b.ID], di)
		}
		// kill: every def of a variable that b redefines.
		for v := range lastDef {
			for _, di := range defIdxByVal[v] {
				set(killAll[b.ID], di)
			}
		}
	}
	// Entry: implicit defs reach the start of block 0.
	entryIn := newBits()
	for _, v := range f.Values {
		if v.Kind == ir.Var {
			set(entryIn, defIdxByVal[v.ID][0])
		}
	}

	for changed := true; changed; {
		changed = false
		for _, b := range c.RPO() {
			nin := newBits()
			if b == 0 {
				copy(nin, entryIn)
			}
			for _, p := range c.Preds[b] {
				for w := range nin {
					nin[w] |= out[p][w]
				}
			}
			in[b] = nin
			nout := newBits()
			for w := range nout {
				nout[w] = gen[b][w] | (nin[w] &^ killAll[b][w])
			}
			diff := false
			for w := range nout {
				if nout[w] != out[b][w] {
					diff = true
					break
				}
			}
			if diff {
				out[b] = nout
				changed = true
			}
		}
	}

	// Union-find over defs: defs of the same variable reaching a common use
	// share a web.
	parent := make([]int, nd)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	// useSites[di] collected for rewriting; walk each block tracking the
	// current reaching set.
	type useRef struct {
		block, idx int
		slot       int // 0=A 1=B 2=Index
		def        int // representative def index at time of visit
	}
	var uses []useRef
	for _, b := range f.Blocks {
		cur := newBits()
		copy(cur, in[b.ID])
		for i := range b.Instrs {
			instr := &b.Instrs[i]
			record := func(v *ir.Value, slot int) {
				if v == nil || v.Kind != ir.Var {
					return
				}
				first := -1
				for _, di := range defIdxByVal[v.ID] {
					if get(cur, di) {
						if first == -1 {
							first = di
						} else {
							union(first, di)
						}
					}
				}
				if first == -1 {
					// Unreachable code can see no defs; fall back to the
					// implicit entry definition.
					first = defIdxByVal[v.ID][0]
				}
				uses = append(uses, useRef{block: b.ID, idx: i, slot: slot, def: first})
			}
			record(instr.A, 0)
			record(instr.B, 1)
			record(instr.Index, 2)
			if d := instr.Def(); d != nil && d.Kind == ir.Var {
				for _, di := range defIdxByVal[d.ID] {
					clr(cur, di)
				}
				di, ok := findDef(defIdxByVal[d.ID], defs, b.ID, i)
				if !ok {
					return 0, 0, defNotRegistered(d, b.ID, i)
				}
				set(cur, di)
			}
		}
	}

	// Build web values: one new value per web root of variables with >1 web.
	// A web counts only if it contains a real definition or a use: the
	// implicit entry definition of a variable that is always written before
	// being read forms an empty web that needs no storage of its own.
	rootHasUse := map[int]bool{}
	for _, u := range uses {
		rootHasUse[find(u.def)] = true
	}
	webOf := map[int]*ir.Value{} // def root -> value
	rootsByVal := map[int][]int{}
	for di := range defs {
		if defs[di].idx < 0 && !rootHasUse[find(di)] {
			continue
		}
		r := find(di)
		seen := false
		for _, x := range rootsByVal[defs[di].val] {
			if x == r {
				seen = true
				break
			}
		}
		if !seen {
			rootsByVal[defs[di].val] = append(rootsByVal[defs[di].val], r)
		}
	}
	for _, v := range f.Values {
		roots := rootsByVal[v.ID]
		if len(roots) <= 1 {
			continue // a single web keeps the original value
		}
		split++
		sort.Ints(roots)
		for wi, r := range roots {
			nv := f.NewValue(fmt.Sprintf("%s.%d", v.Name, wi), v.Type, ir.Var)
			webOf[r] = nv
			webs++
		}
	}
	if len(webOf) == 0 {
		return split, webs, nil
	}

	// Rewrite defs.
	for _, d := range defs {
		if d.idx < 0 {
			continue
		}
		di, ok := findDef(defIdxByVal[d.val], defs, d.block, d.idx)
		if !ok {
			return 0, 0, fmt.Errorf("dfa: definition of value %d at block %d op %d not registered", d.val, d.block, d.idx)
		}
		if nv, ok := webOf[find(di)]; ok {
			f.Blocks[d.block].Instrs[d.idx].Dst = nv
		}
	}
	// Rewrite uses.
	for _, u := range uses {
		nv, ok := webOf[find(u.def)]
		if !ok {
			continue
		}
		instr := &f.Blocks[u.block].Instrs[u.idx]
		switch u.slot {
		case 0:
			instr.A = nv
		case 1:
			instr.B = nv
		case 2:
			instr.Index = nv
		}
	}
	return split, webs, nil
}

// findDef locates the def index with the given site among a variable's
// defs. The second result is false when the site was never registered —
// an IR inconsistency the caller reports as an error instead of panicking.
func findDef(cands []int, defs []defSite, block, idx int) (int, bool) {
	for _, di := range cands {
		if defs[di].block == block && defs[di].idx == idx {
			return di, true
		}
	}
	return 0, false
}

// defNotRegistered describes a definition site missing from the def table.
func defNotRegistered(d *ir.Value, block, idx int) error {
	return fmt.Errorf("dfa: definition of %s (id %d) at block %d op %d not registered", d.Name, d.ID, block, idx)
}

// Liveness computes live-in and live-out value-id sets per block.
func Liveness(f *ir.Func) (liveIn, liveOut []map[int]bool) {
	c := BuildCFG(f)
	n := len(f.Blocks)
	use := make([]map[int]bool, n)
	def := make([]map[int]bool, n)
	liveIn = make([]map[int]bool, n)
	liveOut = make([]map[int]bool, n)
	for _, b := range f.Blocks {
		u, d := map[int]bool{}, map[int]bool{}
		for _, in := range b.Instrs {
			for _, v := range in.Uses() {
				if !d[v.ID] {
					u[v.ID] = true
				}
			}
			if dv := in.Def(); dv != nil && dv.IsMem() {
				d[dv.ID] = true
			}
		}
		use[b.ID], def[b.ID] = u, d
		liveIn[b.ID], liveOut[b.ID] = map[int]bool{}, map[int]bool{}
	}
	for changed := true; changed; {
		changed = false
		for bi := n - 1; bi >= 0; bi-- {
			out := map[int]bool{}
			for _, s := range c.Succs[bi] {
				for v := range liveIn[s] {
					out[v] = true
				}
			}
			in := map[int]bool{}
			for v := range use[bi] {
				in[v] = true
			}
			for v := range out {
				if !def[bi][v] {
					in[v] = true
				}
			}
			if len(out) != len(liveOut[bi]) || len(in) != len(liveIn[bi]) {
				changed = true
			} else {
				for v := range in {
					if !liveIn[bi][v] {
						changed = true
						break
					}
				}
			}
			liveIn[bi], liveOut[bi] = in, out
		}
	}
	return liveIn, liveOut
}

// GlobalValues returns the values that STOR2 must allocate in its first
// stage: those referenced (used or defined) in more than one region.
func GlobalValues(f *ir.Func, regs Regions) map[int]bool {
	regionsOf := map[int]map[int]bool{}
	touch := func(v *ir.Value, region int) {
		if v == nil || !v.IsMem() {
			return
		}
		if regionsOf[v.ID] == nil {
			regionsOf[v.ID] = map[int]bool{}
		}
		regionsOf[v.ID][region] = true
	}
	for _, b := range f.Blocks {
		r := regs.Of[b.ID]
		for _, in := range b.Instrs {
			touch(in.A, r)
			touch(in.B, r)
			touch(in.Index, r)
			touch(in.Dst, r)
		}
	}
	global := map[int]bool{}
	for v, rs := range regionsOf {
		if len(rs) > 1 {
			global[v] = true
		}
	}
	return global
}
