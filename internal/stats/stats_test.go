package stats

import (
	"math"
	"testing"
	"testing/quick"

	"parmem/internal/machine"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMaxLoadDistNoArrays(t *testing.T) {
	// Only scalars: max load is exactly 1 (scalars are conflict-free).
	d := MaxLoadDist(4, []int{0, 2}, 0)
	if !almost(d[1], 1, 1e-12) {
		t.Fatalf("dist = %v, want all mass at 1", d)
	}
}

func TestMaxLoadDistNoAccesses(t *testing.T) {
	d := MaxLoadDist(4, nil, 0)
	if !almost(d[0], 1, 1e-12) {
		t.Fatalf("dist = %v, want all mass at 0", d)
	}
}

func TestMaxLoadDistOneArrayNoScalars(t *testing.T) {
	// One array access alone: max load always 1.
	d := MaxLoadDist(8, nil, 1)
	if !almost(d[1], 1, 1e-12) {
		t.Fatalf("dist = %v", d)
	}
}

func TestMaxLoadDistOneArrayOneScalar(t *testing.T) {
	// One scalar on module 0, one uniform array access over k=4:
	// collision probability 1/4 -> max 2; else max 1.
	d := MaxLoadDist(4, []int{0}, 1)
	if !almost(d[1], 0.75, 1e-12) || !almost(d[2], 0.25, 1e-12) {
		t.Fatalf("dist = %v, want [_, .75, .25]", d)
	}
}

func TestMaxLoadDistTwoArrays(t *testing.T) {
	// Two uniform accesses over k=2, no scalars: P(max=2) = P(same bin) =
	// 1/2, P(max=1) = 1/2.
	d := MaxLoadDist(2, nil, 2)
	if !almost(d[1], 0.5, 1e-12) || !almost(d[2], 0.5, 1e-12) {
		t.Fatalf("dist = %v", d)
	}
}

func TestMaxLoadDistSumsToOne(t *testing.T) {
	d := MaxLoadDist(8, []int{1, 3, 5}, 4)
	sum := 0.0
	for _, p := range d {
		sum += p
	}
	if !almost(sum, 1, 1e-9) {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestMaxLoadDistPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("k=0", func() { MaxLoadDist(0, nil, 1) })
	mustPanic("module out of range", func() { MaxLoadDist(2, []int{5}, 1) })
	mustPanic("duplicate module", func() { MaxLoadDist(4, []int{1, 1}, 1) })
}

// Property: the exact DP agrees with Monte Carlo within sampling error.
func TestExactMatchesMonteCarloProperty(t *testing.T) {
	f := func(seed int64) bool {
		k := 2 + int(uint64(seed)%7)
		arr := int(uint64(seed)/7) % 5
		var scal []int
		for m := 0; m < k; m += 2 {
			scal = append(scal, m)
		}
		exact := ExpectedMaxLoad(k, scal, arr)
		mc := MonteCarloMaxLoad(k, scal, arr, 60000, seed)
		return almost(exact, mc, 0.03)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func mkProfiles(entries []machine.Profile) map[string]*machine.Profile {
	out := map[string]*machine.Profile{}
	for i := range entries {
		out[string(rune('a'+i))] = &entries[i]
	}
	return out
}

func TestAnalyzeScalarOnly(t *testing.T) {
	// Scalar-only program: no array conflicts, all ratios 1.
	times := Analyze(mkProfiles([]machine.Profile{
		{ScalarModules: []int{0, 1}, ArrayOps: 0, Count: 100},
	}), 4)
	if times.TMin != 100 || !almost(times.TAve, 100, 1e-9) || times.TMax != 100 {
		t.Fatalf("times = %+v", times)
	}
	if !almost(times.RatioAve(), 1, 1e-12) || !almost(times.RatioMax(), 1, 1e-12) {
		t.Fatalf("ratios = %v %v", times.RatioAve(), times.RatioMax())
	}
}

func TestAnalyzeArrayWord(t *testing.T) {
	// 100 words, each with one scalar fetch on module 0 and one array
	// access, k = 4. t_min = 100; t_ave = 100 * (1 + 1/4) = 125;
	// t_max: arrays in module 0 -> every word costs 2 -> 200.
	times := Analyze(mkProfiles([]machine.Profile{
		{ScalarModules: []int{0}, ArrayOps: 1, Count: 100},
	}), 4)
	if times.TMin != 100 {
		t.Fatalf("tmin = %v", times.TMin)
	}
	if !almost(times.TAve, 125, 1e-9) {
		t.Fatalf("tave = %v, want 125", times.TAve)
	}
	if !almost(times.TMax, 200, 1e-9) {
		t.Fatalf("tmax = %v, want 200", times.TMax)
	}
}

func TestAnalyzeWorstCasePerWord(t *testing.T) {
	// Every array access conflicts in the worst case: each word costs
	// arrayOps + 1 (the colliding scalar) regardless of which module the
	// scalars use.
	times := Analyze(mkProfiles([]machine.Profile{
		{ScalarModules: []int{0}, ArrayOps: 1, Count: 90},
		{ScalarModules: []int{1}, ArrayOps: 2, Count: 10},
	}), 4)
	if !almost(times.TMax, 90*2+10*3, 1e-9) {
		t.Fatalf("tmax = %v, want 210", times.TMax)
	}
	// Array-only words cost arrayOps in the worst case.
	t2 := Analyze(mkProfiles([]machine.Profile{
		{ScalarModules: nil, ArrayOps: 3, Count: 10},
	}), 4)
	if !almost(t2.TMax, 30, 1e-9) {
		t.Fatalf("tmax = %v, want 30", t2.TMax)
	}
}

func TestAnalyzeEmptyProfile(t *testing.T) {
	times := Analyze(map[string]*machine.Profile{}, 8)
	if times.TMin != 0 || times.TAve != 0 || times.TMax != 0 {
		t.Fatalf("times = %+v", times)
	}
	if times.RatioAve() != 1 || times.RatioMax() != 1 {
		t.Fatal("ratios of an empty profile default to 1")
	}
}

func TestPofI(t *testing.T) {
	p := PofI(mkProfiles([]machine.Profile{
		{ScalarModules: []int{0}, ArrayOps: 1, Count: 100},
	}), 4)
	// P(1) = 3/4, P(2) = 1/4.
	if !almost(p[1], 0.75, 1e-12) || !almost(p[2], 0.25, 1e-12) {
		t.Fatalf("p = %v", p)
	}
	sum := 0.0
	for _, x := range p {
		sum += x
	}
	if !almost(sum, 1, 1e-9) {
		t.Fatalf("p sums to %v", sum)
	}
}

// Property: t_min <= t_ave <= t_max for any profile mix.
func TestTimesOrderedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := seed
		next := func(n int) int {
			r = r*6364136223846793005 + 1442695040888963407
			v := int((r >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		k := 2 + next(7)
		var entries []machine.Profile
		for i := 0; i < 1+next(5); i++ {
			used := map[int]bool{}
			var scal []int
			for j := 0; j < next(k); j++ {
				m := next(k)
				if !used[m] {
					used[m] = true
					scal = append(scal, m)
				}
			}
			arr := next(4)
			if len(scal) == 0 && arr == 0 {
				arr = 1 // the machine only profiles words with >= 1 access
			}
			entries = append(entries, machine.Profile{
				ScalarModules: scal,
				ArrayOps:      arr,
				Count:         int64(1 + next(100)),
			})
		}
		times := Analyze(mkProfiles(entries), k)
		return times.TMin <= times.TAve+1e-9 && times.TAve <= times.TMax+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Analyze's t_ave equals the expectation implied by PofI.
func TestAnalyzeConsistentWithPofI(t *testing.T) {
	profiles := mkProfiles([]machine.Profile{
		{ScalarModules: []int{0, 2}, ArrayOps: 2, Count: 40},
		{ScalarModules: []int{1}, ArrayOps: 1, Count: 25},
		{ScalarModules: nil, ArrayOps: 3, Count: 10},
	})
	k := 4
	times := Analyze(profiles, k)
	p := PofI(profiles, k)
	total := 0.0
	for _, pr := range profiles {
		total += float64(pr.Count)
	}
	expected := 0.0
	for i, prob := range p {
		expected += float64(i) * prob
	}
	if !almost(times.TAve, expected*total, 1e-6) {
		t.Fatalf("t_ave = %v, PofI expectation * words = %v", times.TAve, expected*total)
	}
}
