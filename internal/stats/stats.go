// Package stats implements the paper's analytic model of memory conflicts
// caused by array references (§3, Table 2).
//
// For every dynamic word the simulator records which modules the scalar
// fetches used (conflict-free by construction) and how many array accesses
// the word performed. Array elements are assumed uniformly distributed over
// the k modules, so the word's fetch time is Δ times the maximum per-module
// access count. The package computes
//
//	t_min — every array access conflict-free: Δ per memory word;
//	t_ave — the expectation Σ i·Δ·p(i) with p(i) the exact probability of
//	        maximum load i under uniform placement;
//	t_max — all arrays stored in the single worst memory module.
package stats

import (
	"fmt"
	"math/rand"
	"sort"

	"parmem/internal/faultinject"
	"parmem/internal/machine"
)

// MaxLoadDist returns the distribution of the maximum per-module access
// count for one word: the listed scalar modules carry one access each, and
// arrayOps further accesses land independently and uniformly on the k
// modules. Entry i of the result is P(max load == i). k must be >= 1 and
// the scalar modules distinct and within range.
func MaxLoadDist(k int, scalarMods []int, arrayOps int) []float64 {
	if k < 1 {
		panic("stats: k must be >= 1")
	}
	offset := make([]int, k)
	for _, m := range scalarMods {
		if m < 0 || m >= k {
			panic(fmt.Sprintf("stats: scalar module %d out of range [0,%d)", m, k))
		}
		if offset[m] != 0 {
			panic(fmt.Sprintf("stats: scalar module %d listed twice", m))
		}
		offset[m] = 1
	}
	maxLoad := arrayOps + 1 // worst case: all arrays plus a scalar on one module

	// weight[used][m] = number of ball-to-bin sequences (partial, over the
	// bins processed so far) with `used` balls placed and max load m.
	weight := make([][]float64, arrayOps+1)
	for u := range weight {
		weight[u] = make([]float64, maxLoad+1)
	}
	weight[0][0] = 1

	// Pascal triangle for C(n, c).
	choose := make([][]float64, arrayOps+1)
	for n := 0; n <= arrayOps; n++ {
		choose[n] = make([]float64, n+1)
		choose[n][0] = 1
		for c := 1; c <= n; c++ {
			choose[n][c] = choose[n-1][c-1]
			if c <= n-1 {
				choose[n][c] += choose[n-1][c]
			}
		}
	}

	for bin := 0; bin < k; bin++ {
		next := make([][]float64, arrayOps+1)
		for u := range next {
			next[u] = make([]float64, maxLoad+1)
		}
		for used := 0; used <= arrayOps; used++ {
			for m := 0; m <= maxLoad; m++ {
				w := weight[used][m]
				if w == 0 {
					continue
				}
				for c := 0; used+c <= arrayOps; c++ {
					load := c + offset[bin]
					nm := m
					if load > nm {
						nm = load
					}
					next[used+c][nm] += w * choose[arrayOps-used][c]
				}
			}
		}
		weight = next
	}

	total := 1.0
	for i := 0; i < arrayOps; i++ {
		total *= float64(k)
	}
	dist := make([]float64, maxLoad+1)
	for m := 0; m <= maxLoad; m++ {
		dist[m] = weight[arrayOps][m] / total
	}
	return dist
}

// ExpectedMaxLoad returns E[max per-module load] for one word shape.
func ExpectedMaxLoad(k int, scalarMods []int, arrayOps int) float64 {
	e := 0.0
	for i, p := range MaxLoadDist(k, scalarMods, arrayOps) {
		e += float64(i) * p
	}
	return e
}

// Times holds the three transfer-time figures of Table 2, in units of Δ.
type Times struct {
	TMin, TAve, TMax float64
}

// RatioAve returns t_ave/t_min (a Table 2 column).
func (t Times) RatioAve() float64 {
	if t.TMin == 0 {
		return 1
	}
	return t.TAve / t.TMin
}

// RatioMax returns t_max/t_min (a Table 2 column).
func (t Times) RatioMax() float64 {
	if t.TMin == 0 {
		return 1
	}
	return t.TMax / t.TMin
}

// Analyze computes Table 2's times from a run's dynamic word profiles.
//
// t_min charges one Δ per memory word (no array conflicts). t_ave uses the
// exact expected maximum load under uniform array placement. t_max assumes
// every array access causes a conflict — all of a word's array accesses and
// one scalar serialize on a single module, which is what happens when all
// arrays are allocated from the same memory module (the paper's worst
// case). t_max is therefore a per-word upper bound of any placement.
func Analyze(profiles map[string]*machine.Profile, k int) Times {
	faultinject.Check("stats.analyze")
	var t Times
	// Deterministic iteration (map order is random).
	keys := make([]string, 0, len(profiles))
	for key := range profiles {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	for _, key := range keys {
		pr := profiles[key]
		n := float64(pr.Count)
		t.TMin += n
		t.TAve += n * ExpectedMaxLoad(k, pr.ScalarModules, pr.ArrayOps)
		worst := pr.ArrayOps
		if len(pr.ScalarModules) > 0 {
			worst++
		}
		if worst < 1 {
			worst = 1
		}
		t.TMax += n * float64(worst)
	}
	return t
}

// PofI returns the aggregate probability distribution p(i) of an
// instruction requiring i operands from the same module, weighted over the
// dynamic words of a run — the distribution in the paper's t_ave formula.
func PofI(profiles map[string]*machine.Profile, k int) []float64 {
	var total float64
	acc := []float64{}
	keys := make([]string, 0, len(profiles))
	for key := range profiles {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		pr := profiles[key]
		dist := MaxLoadDist(k, pr.ScalarModules, pr.ArrayOps)
		for i, p := range dist {
			for len(acc) <= i {
				acc = append(acc, 0)
			}
			acc[i] += float64(pr.Count) * p
		}
		total += float64(pr.Count)
	}
	if total > 0 {
		for i := range acc {
			acc[i] /= total
		}
	}
	return acc
}

// MonteCarloMaxLoad estimates E[max load] by sampling; used to cross-check
// the exact DP in tests and experiments.
func MonteCarloMaxLoad(k int, scalarMods []int, arrayOps, samples int, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	base := make([]int, k)
	for _, m := range scalarMods {
		base[m] = 1
	}
	sum := 0.0
	load := make([]int, k)
	for s := 0; s < samples; s++ {
		copy(load, base)
		for a := 0; a < arrayOps; a++ {
			load[r.Intn(k)]++
		}
		max := 0
		for _, c := range load {
			if c > max {
				max = c
			}
		}
		sum += float64(max)
	}
	return sum / float64(samples)
}
