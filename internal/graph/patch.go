package graph

import (
	"slices"
	"sort"
)

// This file implements delta patching of the frozen Dense snapshot for the
// incremental recompilation path. A program edit perturbs O(delta) conflict
// edges; Patch rebuilds only the touched CSR rows (copying the untouched
// spans wholesale when the vertex set is stable) and re-derives the bitset
// adjacency under the same ceiling rules as FromGraph, so the result is
// structurally indistinguishable from a cold FromGraph of the edited
// conflict graph — the canonical hash machinery keyed on (degree,index)
// ranks and sorted relabeled edges therefore sees identical input either
// way.

// WeightDelta is one undirected edge-weight adjustment by original vertex
// id: the weight of {U,V} changes by DW. A resulting weight <= 0 removes
// the edge. Conflict-graph weights are co-occurrence counts, so instruction
// removals decrement and additions increment symmetric pair counts.
type WeightDelta struct {
	U, V int
	DW   int32
}

// Patch returns a fresh Dense equal to rebuilding the edited graph from
// scratch: addNodes join the vertex set, dropNodes leave it, and every
// WeightDelta adjusts one edge weight (final weight <= 0 deletes the edge).
// The receiver is never mutated — prior results holding it stay valid for
// concurrent reads.
//
// Callers must drop every edge incident to a dropped node via deltas (the
// conflict-graph refcount arithmetic guarantees this: a value disappears
// only when no instruction uses it, and each using instruction's removal
// decrements all its pair counts); any surviving reference to an absent
// vertex is skipped defensively. Deltas naming vertices outside the new
// vertex set are ignored.
func (d *Dense) Patch(deltas []WeightDelta, addNodes, dropNodes []int) *Dense {
	// New vertex set, ascending.
	drop := make(map[int]bool, len(dropNodes))
	for _, v := range dropNodes {
		drop[v] = true
	}
	ids := make([]int, 0, len(d.ids)+len(addNodes))
	for _, v := range d.ids {
		if !drop[v] {
			ids = append(ids, v)
		}
	}
	for _, v := range addNodes {
		if _, ok := d.idx[v]; !ok && !drop[v] {
			ids = append(ids, v)
		}
	}
	sort.Ints(ids)
	ids = slices.Compact(ids)

	n := len(ids)
	nd := &Dense{
		ids: ids,
		idx: make(map[int]int32, n),
		off: make([]int32, n+1),
	}
	for i, v := range ids {
		nd.idx[v] = int32(i)
	}

	// Group deltas per endpoint id, both directions, keeping only vertices
	// present in the new set.
	type rowDelta struct {
		other int // neighbor original id
		dw    int32
	}
	rowDeltas := make(map[int][]rowDelta, 2*len(deltas))
	for _, wd := range deltas {
		if wd.U == wd.V {
			continue
		}
		if _, ok := nd.idx[wd.U]; !ok {
			continue
		}
		if _, ok := nd.idx[wd.V]; !ok {
			continue
		}
		rowDeltas[wd.U] = append(rowDeltas[wd.U], rowDelta{wd.V, wd.DW})
		rowDeltas[wd.V] = append(rowDeltas[wd.V], rowDelta{wd.U, wd.DW})
	}

	// A stable vertex set keeps every dense index fixed, so untouched CSR
	// rows are verbatim copies; otherwise indices shift and every row is
	// translated through the id space.
	sameIDs := n == len(d.ids)
	if sameIDs {
		for i, v := range ids {
			if d.ids[i] != v {
				sameIDs = false
				break
			}
		}
	}

	// First pass: new degrees. Second pass: fill rows.
	type mergedRow struct {
		nbr []int32
		wt  []int32
	}
	merged := make(map[int32]mergedRow, len(rowDeltas))
	mergeRow := func(i int32) mergedRow {
		v := ids[i]
		dl := rowDeltas[v]
		sort.Slice(dl, func(a, b int) bool { return dl[a].other < dl[b].other })
		// Coalesce repeated deltas against the same neighbor.
		cl := dl[:0]
		for _, e := range dl {
			if len(cl) > 0 && cl[len(cl)-1].other == e.other {
				cl[len(cl)-1].dw += e.dw
			} else {
				cl = append(cl, e)
			}
		}
		var oldRow, oldWt []int32
		if oi, ok := d.idx[v]; ok {
			oldRow, oldWt = d.Row(oi), d.WeightRow(oi)
		}
		row := mergedRow{}
		j := 0
		emit := func(u int32, w int32) {
			if w > 0 {
				row.nbr = append(row.nbr, u)
				row.wt = append(row.wt, w)
			}
		}
		for k, oi := range oldRow {
			uid := d.ids[oi]
			ui, ok := nd.idx[uid]
			if !ok {
				continue // neighbor dropped
			}
			w := oldWt[k]
			for j < len(cl) && cl[j].other < uid {
				emit(nd.idx[cl[j].other], cl[j].dw)
				j++
			}
			if j < len(cl) && cl[j].other == uid {
				w += cl[j].dw
				j++
			}
			emit(ui, w)
		}
		for ; j < len(cl); j++ {
			emit(nd.idx[cl[j].other], cl[j].dw)
		}
		// Both walks emit in ascending ID order and the id→index remap is
		// monotone, so indices are already ascending; the sort is a no-op
		// pass kept as a structural guard.
		sortRowPair(row.nbr, row.wt)
		return row
	}

	total := 0
	for i := 0; i < n; i++ {
		v := ids[i]
		_, touched := rowDeltas[v]
		oi, existed := d.idx[v]
		if sameIDs && !touched && existed {
			total += d.Deg(oi)
		} else {
			r := mergeRow(int32(i))
			merged[int32(i)] = r
			total += len(r.nbr)
		}
		nd.off[i+1] = int32(total)
	}
	nd.nbr = make([]int32, total)
	nd.wt = make([]int32, total)
	nd.numEdges = total / 2

	for i := 0; i < n; i++ {
		dst := nd.nbr[nd.off[i]:nd.off[i+1]]
		dwt := nd.wt[nd.off[i]:nd.off[i+1]]
		if r, ok := merged[int32(i)]; ok {
			copy(dst, r.nbr)
			copy(dwt, r.wt)
			continue
		}
		oi := d.idx[ids[i]]
		copy(dst, d.Row(oi))
		copy(dwt, d.WeightRow(oi))
	}

	// Bitset adjacency under the same ceilings as FromGraphScratch. When
	// the flat form survives with a stable vertex set, untouched rows copy
	// and only touched rows re-derive; every other transition rebuilds
	// from the (already patched) CSR.
	switch {
	case n > 0 && n <= flatCeiling:
		nd.stride = (n + 63) / 64
		nd.bits = make([]uint64, n*nd.stride)
		if sameIDs && d.bits != nil && nd.stride == d.stride {
			copy(nd.bits, d.bits)
			for i := range merged {
				row := nd.bits[int(i)*nd.stride : (int(i)+1)*nd.stride]
				for w := range row {
					row[w] = 0
				}
				for _, u := range nd.Row(i) {
					row[int(u)/64] |= 1 << (uint(u) % 64)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				for _, u := range nd.Row(int32(i)) {
					nd.bits[i*nd.stride+int(u)/64] |= 1 << (uint(u) % 64)
				}
			}
		}
	case n > flatCeiling && n <= blockedCeiling:
		nd.buildBlocked(nil)
	}
	return nd
}

// sortRowPair sorts nbr ascending, carrying wt along.
func sortRowPair(nbr, wt []int32) {
	if len(nbr) < 2 {
		return
	}
	sort.Sort(&rowPair{nbr, wt})
}

type rowPair struct{ nbr, wt []int32 }

func (p *rowPair) Len() int           { return len(p.nbr) }
func (p *rowPair) Less(i, j int) bool { return p.nbr[i] < p.nbr[j] }
func (p *rowPair) Swap(i, j int) {
	p.nbr[i], p.nbr[j] = p.nbr[j], p.nbr[i]
	p.wt[i], p.wt[j] = p.wt[j], p.wt[i]
}

// InducedGraph extracts the subgraph on the given original ids as a fresh
// map-backed Graph: the dirty components of the incremental engine are
// carved out of the patched snapshot with it and re-enter the normal
// decompose/color pipeline. Ids absent from the snapshot become isolated
// vertices (matching Graph.Induced's treatment of unknown ids is moot —
// the engine only passes ids read back from the snapshot).
func (d *Dense) InducedGraph(ids []int) *Graph {
	g := New()
	in := make(map[int32]bool, len(ids))
	for _, v := range ids {
		g.AddNode(v)
		if i, ok := d.idx[v]; ok {
			in[i] = true
		}
	}
	for _, v := range ids {
		i, ok := d.idx[v]
		if !ok {
			continue
		}
		row, wts := d.Row(i), d.WeightRow(i)
		for j, u := range row {
			if u > i && in[u] {
				g.AddEdgeWeight(v, d.ids[u], int(wts[j]))
			}
		}
	}
	return g
}
