package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	g := New()
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func complete(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(i)
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	g.AddNode(3)
	g.AddNode(3)
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestAddEdgeCreatesEndpoints(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 5)
	if !g.HasNode(1) || !g.HasNode(2) {
		t.Fatal("endpoints not created")
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge must be undirected")
	}
	if g.Weight(1, 2) != 5 || g.Weight(2, 1) != 5 {
		t.Fatalf("weight = %d/%d, want 5/5", g.Weight(1, 2), g.Weight(2, 1))
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New()
	g.AddEdge(7, 7, 1)
	if !g.HasNode(7) {
		t.Fatal("vertex should still be created")
	}
	if g.HasEdge(7, 7) || g.NumEdges() != 0 {
		t.Fatal("self loop must be ignored")
	}
	g.AddEdgeWeight(7, 7, 3)
	if g.Weight(7, 7) != 0 {
		t.Fatal("self loop weight must stay 0")
	}
}

func TestAddEdgeWeightAccumulates(t *testing.T) {
	g := New()
	g.AddEdgeWeight(1, 2, 2)
	g.AddEdgeWeight(2, 1, 3)
	if g.Weight(1, 2) != 5 {
		t.Fatalf("weight = %d, want 5", g.Weight(1, 2))
	}
}

func TestAddEdgeOverwrites(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 2)
	g.AddEdge(1, 2, 9)
	if g.Weight(1, 2) != 9 {
		t.Fatalf("weight = %d, want 9", g.Weight(1, 2))
	}
}

func TestRemoveNode(t *testing.T) {
	g := complete(4)
	g.RemoveNode(2)
	if g.HasNode(2) {
		t.Fatal("node not removed")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 (triangle)", g.NumEdges())
	}
	for _, v := range g.Nodes() {
		if g.HasEdge(v, 2) {
			t.Fatalf("dangling edge to removed node from %d", v)
		}
	}
}

func TestRemoveEdge(t *testing.T) {
	g := complete(3)
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge not removed in both directions")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestNodesSorted(t *testing.T) {
	g := New()
	for _, v := range []int{9, 1, 5, 3} {
		g.AddNode(v)
	}
	want := []int{1, 3, 5, 9}
	if got := g.Nodes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Nodes = %v, want %v", got, want)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New()
	g.AddEdge(0, 9, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 5, 1)
	want := []int{2, 5, 9}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors = %v, want %v", got, want)
	}
}

func TestEdgesSortedAndComplete(t *testing.T) {
	g := complete(4)
	es := g.Edges()
	if len(es) != 6 {
		t.Fatalf("len(Edges) = %d, want 6", len(es))
	}
	for i := 1; i < len(es); i++ {
		a, b := es[i-1], es[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			t.Fatalf("edges not sorted: %v before %v", a, b)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	g := complete(3)
	c := g.Clone()
	c.RemoveNode(0)
	if !g.HasNode(0) || g.NumEdges() != 3 {
		t.Fatal("mutating clone changed original")
	}
	if c.HasNode(0) {
		t.Fatal("clone mutation lost")
	}
}

func TestInduced(t *testing.T) {
	g := complete(5)
	sub := g.Induced([]int{0, 2, 4})
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced K3: nodes=%d edges=%d", sub.NumNodes(), sub.NumEdges())
	}
	// Vertex not in g becomes isolated.
	sub2 := g.Induced([]int{0, 99})
	if !sub2.HasNode(99) || sub2.Degree(99) != 0 {
		t.Fatal("missing vertex should be isolated, not absent")
	}
}

func TestInducedPreservesWeights(t *testing.T) {
	g := New()
	g.AddEdge(1, 2, 7)
	g.AddEdge(2, 3, 9)
	sub := g.Induced([]int{1, 2})
	if sub.Weight(1, 2) != 7 {
		t.Fatalf("weight = %d, want 7", sub.Weight(1, 2))
	}
	if sub.HasNode(3) {
		t.Fatal("vertex 3 must not be present")
	}
}

func TestIsClique(t *testing.T) {
	g := complete(4)
	if !g.IsClique([]int{0, 1, 2, 3}) {
		t.Fatal("K4 is a clique")
	}
	if !g.IsClique(nil) || !g.IsClique([]int{2}) {
		t.Fatal("empty set and singleton are cliques")
	}
	g.RemoveEdge(0, 3)
	if g.IsClique([]int{0, 1, 2, 3}) {
		t.Fatal("missing edge: not a clique")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(10, 11, 1)
	g.AddNode(20)
	comps := g.ConnectedComponents()
	want := [][]int{{0, 1, 2}, {10, 11}, {20}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
}

func TestComponentContaining(t *testing.T) {
	// Path 0-1-2-3-4 with separator {2}.
	g := path(5)
	left := g.ComponentContaining(0, []int{2})
	if !reflect.DeepEqual(left, []int{0, 1}) {
		t.Fatalf("left = %v, want [0 1]", left)
	}
	right := g.ComponentContaining(4, []int{2})
	if !reflect.DeepEqual(right, []int{3, 4}) {
		t.Fatalf("right = %v, want [3 4]", right)
	}
	if g.ComponentContaining(2, []int{2}) != nil {
		t.Fatal("separator vertex has no component")
	}
	if g.ComponentContaining(99, nil) != nil {
		t.Fatal("absent vertex has no component")
	}
}

func TestIsSeparator(t *testing.T) {
	g := path(5)
	if !g.IsSeparator([]int{2}) {
		t.Fatal("{2} separates a path")
	}
	if g.IsSeparator([]int{0}) {
		t.Fatal("an endpoint does not separate a path")
	}
	if !g.IsSeparator([]int{1, 2, 3}) {
		t.Fatal("{1,2,3} leaves 0 and 4 disconnected; it is a separator")
	}
	if g.IsSeparator([]int{0, 1, 2, 3}) {
		t.Fatal("only one vertex left outside; not a separator")
	}
	k := complete(4)
	if k.IsSeparator([]int{0}) || k.IsSeparator([]int{0, 1}) {
		t.Fatal("complete graphs have no separators")
	}
}

func TestMaxDegree(t *testing.T) {
	if d := New().MaxDegree(); d != 0 {
		t.Fatalf("empty MaxDegree = %d", d)
	}
	g := New()
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	if d := g.MaxDegree(); d != 3 {
		t.Fatalf("star MaxDegree = %d, want 3", d)
	}
}

func TestStringDeterministic(t *testing.T) {
	g := complete(3)
	if g.String() != g.String() {
		t.Fatal("String must be deterministic")
	}
}

// randomGraph builds a reproducible random graph for property tests.
func randomGraph(r *rand.Rand, n int, p float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(i)
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j, 1+r.Intn(5))
			}
		}
	}
	return g
}

// Property: components partition the vertex set.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(30), r.Float64()*0.3)
		seen := map[int]int{}
		for _, comp := range g.ConnectedComponents() {
			for _, v := range comp {
				seen[v]++
			}
		}
		if len(seen) != g.NumNodes() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Induced(Nodes()) is the identity up to equality of structure.
func TestInducedIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(20), r.Float64()*0.5)
		sub := g.Induced(g.Nodes())
		if sub.NumNodes() != g.NumNodes() || sub.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if sub.Weight(e.U, e.V) != e.W {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: degree equals len(Neighbors) and the sum of degrees is 2|E|.
func TestHandshakeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(25), r.Float64()*0.4)
		sum := 0
		for _, v := range g.Nodes() {
			if g.Degree(v) != len(g.Neighbors(v)) {
				return false
			}
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a separator found by IsSeparator really splits the vertex set:
// some outside vertex is unreachable from another.
func TestSeparatorSplitsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 4+r.Intn(15), 0.25)
		nodes := g.Nodes()
		sep := nodes[:1+r.Intn(2)]
		isSep := g.IsSeparator(sep)
		// Recompute directly: collect components of G minus sep.
		inSep := map[int]bool{}
		for _, s := range sep {
			inSep[s] = true
		}
		var outside []int
		for _, v := range nodes {
			if !inSep[v] {
				outside = append(outside, v)
			}
		}
		if len(outside) <= 1 {
			return !isSep
		}
		comp := g.ComponentContaining(outside[0], sep)
		return isSep == (len(comp) < len(outside))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentContainingSorted(t *testing.T) {
	g := New()
	g.AddEdge(5, 3, 1)
	g.AddEdge(3, 9, 1)
	comp := g.ComponentContaining(9, nil)
	if !sort.IntsAreSorted(comp) {
		t.Fatalf("component %v not sorted", comp)
	}
}
