package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// equalDense asserts every internal array of got matches a cold FromGraph
// build — not just observable behavior, so the patched snapshot is
// structurally indistinguishable from a rebuild (the property the canonical
// hash machinery and the word kernels rely on).
func equalDense(t *testing.T, got, want *Dense) {
	t.Helper()
	if !reflect.DeepEqual(got.ids, want.ids) {
		t.Fatalf("ids: got %v want %v", got.ids, want.ids)
	}
	if !reflect.DeepEqual(got.off, want.off) {
		t.Fatalf("off mismatch")
	}
	if !reflect.DeepEqual(got.nbr, want.nbr) {
		t.Fatalf("nbr: got %v want %v", got.nbr, want.nbr)
	}
	if !reflect.DeepEqual(got.wt, want.wt) {
		t.Fatalf("wt: got %v want %v", got.wt, want.wt)
	}
	if got.numEdges != want.numEdges {
		t.Fatalf("numEdges: got %d want %d", got.numEdges, want.numEdges)
	}
	if got.BitsetKind() != want.BitsetKind() {
		t.Fatalf("bitset kind: got %s want %s", got.BitsetKind(), want.BitsetKind())
	}
	if !reflect.DeepEqual(got.bits, want.bits) {
		t.Fatalf("flat bits mismatch")
	}
	if !reflect.DeepEqual(got.summary, want.summary) {
		t.Fatalf("blocked summary mismatch")
	}
	if !reflect.DeepEqual(got.blockRef, want.blockRef) {
		t.Fatalf("blocked blockRef mismatch")
	}
	if !reflect.DeepEqual(got.blockWords, want.blockWords) {
		t.Fatalf("blocked blockWords mismatch")
	}
}

// TestDensePatchDifferential drives random edit sequences through Patch and
// asserts each step is bit-identical to rebuilding the mutated map graph
// from scratch, across all three bitset representations (forced by ceiling
// overrides) and across node additions, removals, weight increments and
// edge deletions.
func TestDensePatchDifferential(t *testing.T) {
	kinds := []struct {
		name          string
		flat, blocked int
	}{
		{"flat", DenseBitsetMaxN, BlockedBitsetMaxN},
		{"blocked", 4, BlockedBitsetMaxN},
		{"csr", 0, 0},
	}
	for _, kind := range kinds {
		t.Run(kind.name, func(t *testing.T) {
			restore := SetBitsetCeilings(kind.flat, kind.blocked)
			defer restore()
			rng := rand.New(rand.NewSource(0xC0FFEE))
			for trial := 0; trial < 40; trial++ {
				g := New()
				n := 3 + rng.Intn(30)
				for v := 0; v < n; v++ {
					if rng.Intn(4) != 0 {
						g.AddNode(v * 3) // sparse, non-contiguous ids
					}
				}
				nodes := g.Nodes()
				for e := 0; e < 2*n; e++ {
					if len(nodes) < 2 {
						break
					}
					u := nodes[rng.Intn(len(nodes))]
					v := nodes[rng.Intn(len(nodes))]
					if u != v {
						g.AddEdgeWeight(u, v, 1+rng.Intn(3))
					}
				}
				d := FromGraph(g)
				for step := 0; step < 8; step++ {
					var deltas []WeightDelta
					var add, dropids []int
					nodes = g.Nodes()
					switch rng.Intn(4) {
					case 0: // add a node with some edges
						nv := 1000 + trial*100 + step
						g.AddNode(nv)
						add = append(add, nv)
						for _, u := range nodes {
							if rng.Intn(3) == 0 {
								w := 1 + rng.Intn(3)
								g.AddEdgeWeight(nv, u, w)
								deltas = append(deltas, WeightDelta{U: nv, V: u, DW: int32(w)})
							}
						}
					case 1: // drop a node and all incident edges
						if len(nodes) == 0 {
							continue
						}
						v := nodes[rng.Intn(len(nodes))]
						for _, u := range g.Neighbors(v) {
							deltas = append(deltas, WeightDelta{U: v, V: u, DW: int32(-g.Weight(v, u))})
						}
						g.RemoveNode(v)
						dropids = append(dropids, v)
					case 2: // bump weights of a few random pairs
						for k := 0; k < 3 && len(nodes) >= 2; k++ {
							u := nodes[rng.Intn(len(nodes))]
							v := nodes[rng.Intn(len(nodes))]
							if u == v {
								continue
							}
							g.AddEdgeWeight(u, v, 2)
							deltas = append(deltas, WeightDelta{U: u, V: v, DW: 2})
						}
					case 3: // delete a random existing edge outright
						edges := g.Edges()
						if len(edges) == 0 {
							continue
						}
						e := edges[rng.Intn(len(edges))]
						deltas = append(deltas, WeightDelta{U: e.U, V: e.V, DW: int32(-e.W)})
						g.RemoveEdge(e.U, e.V)
					}
					d = d.Patch(deltas, add, dropids)
					equalDense(t, d, FromGraph(g))
				}
			}
		})
	}
}

// TestDensePatchRepresentationCrossing covers patches that push n across a
// bitset ceiling in both directions: the patched snapshot must adopt the
// representation a cold rebuild would pick.
func TestDensePatchRepresentationCrossing(t *testing.T) {
	restore := SetBitsetCeilings(4, 8)
	defer restore()
	g := New()
	for v := 0; v < 4; v++ {
		g.AddNode(v)
		if v > 0 {
			g.AddEdgeWeight(v-1, v, 1)
		}
	}
	d := FromGraph(g)
	if d.BitsetKind() != "flat" {
		t.Fatalf("seed kind = %s, want flat", d.BitsetKind())
	}
	// Grow past the flat ceiling: flat -> blocked.
	g.AddNode(100)
	g.AddEdgeWeight(3, 100, 1)
	d = d.Patch([]WeightDelta{{U: 3, V: 100, DW: 1}}, []int{100}, nil)
	equalDense(t, d, FromGraph(g))
	if d.BitsetKind() != "blocked" {
		t.Fatalf("grown kind = %s, want blocked", d.BitsetKind())
	}
	// Grow past the blocked ceiling: blocked -> csr.
	var deltas []WeightDelta
	var add []int
	for v := 200; v < 205; v++ {
		g.AddNode(v)
		g.AddEdgeWeight(0, v, 2)
		add = append(add, v)
		deltas = append(deltas, WeightDelta{U: 0, V: v, DW: 2})
	}
	d = d.Patch(deltas, add, nil)
	equalDense(t, d, FromGraph(g))
	if d.BitsetKind() != "csr" {
		t.Fatalf("large kind = %s, want csr", d.BitsetKind())
	}
	// Shrink all the way back down: csr -> flat.
	var drops []int
	deltas = nil
	for _, v := range []int{100, 200, 201, 202, 203, 204, 3} {
		for _, u := range g.Neighbors(v) {
			deltas = append(deltas, WeightDelta{U: v, V: u, DW: int32(-g.Weight(v, u))})
		}
		g.RemoveNode(v)
		drops = append(drops, v)
	}
	d = d.Patch(deltas, nil, drops)
	equalDense(t, d, FromGraph(g))
	if d.BitsetKind() != "flat" {
		t.Fatalf("shrunk kind = %s, want flat", d.BitsetKind())
	}
}

// TestDenseInducedGraph checks InducedGraph against Graph.Induced on the
// source graph.
func TestDenseInducedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := New()
		n := 4 + rng.Intn(20)
		for v := 0; v < n; v++ {
			g.AddNode(v)
		}
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdgeWeight(u, v, 1+rng.Intn(2))
			}
		}
		d := FromGraph(g)
		var keep []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				keep = append(keep, v)
			}
		}
		got := d.InducedGraph(keep)
		want := g.Induced(keep)
		if !reflect.DeepEqual(got.Edges(), want.Edges()) {
			t.Fatalf("induced edges: got %v want %v", got.Edges(), want.Edges())
		}
		gn, wn := got.Nodes(), want.Nodes()
		if !reflect.DeepEqual(gn, wn) {
			t.Fatalf("induced nodes: got %v want %v", gn, wn)
		}
	}
}
