// Package graph provides a deterministic undirected graph with integer
// vertices and integer edge weights.
//
// It is the substrate shared by the access-conflict graph
// (internal/conflict), the clique-separator decomposition (internal/atoms)
// and the coloring heuristics (internal/coloring). All iteration orders are
// deterministic (sorted by vertex id) so that every stage of the compiler is
// reproducible run to run.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Graph is an undirected graph over int vertex ids with int edge weights.
// The zero value is not ready to use; call New.
type Graph struct {
	adj map[int]map[int]int // adj[u][v] = weight of edge {u,v}
	m   int                 // number of undirected edges, maintained by every mutator
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[int]map[int]int)}
}

// AddNode ensures vertex v exists. Adding an existing vertex is a no-op.
func (g *Graph) AddNode(v int) {
	if _, ok := g.adj[v]; !ok {
		g.adj[v] = make(map[int]int)
	}
}

// HasNode reports whether vertex v is present.
func (g *Graph) HasNode(v int) bool {
	_, ok := g.adj[v]
	return ok
}

// AddEdge inserts the undirected edge {u,v} with weight w, creating the
// endpoints as needed. If the edge exists its weight is overwritten.
// Self-loops are ignored: a value never conflicts with itself because a
// single fetch serves every use of it inside one instruction.
func (g *Graph) AddEdge(u, v, w int) {
	if u == v {
		g.AddNode(u)
		return
	}
	g.AddNode(u)
	g.AddNode(v)
	if _, ok := g.adj[u][v]; !ok {
		g.m++
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
}

// AddEdgeWeight adds w to the weight of edge {u,v}, creating the edge with
// weight w if absent. It is the natural operation for accumulating
// conf(ni,nj) counts.
func (g *Graph) AddEdgeWeight(u, v, w int) {
	if u == v {
		g.AddNode(u)
		return
	}
	g.AddNode(u)
	g.AddNode(v)
	if _, ok := g.adj[u][v]; !ok {
		g.m++
	}
	g.adj[u][v] += w
	g.adj[v][u] += w
}

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.adj[u][v]
	return ok
}

// Weight returns the weight of edge {u,v}, or 0 if the edge is absent.
func (g *Graph) Weight(u, v int) int {
	return g.adj[u][v]
}

// RemoveNode deletes vertex v and all incident edges.
func (g *Graph) RemoveNode(v int) {
	for u := range g.adj[v] {
		delete(g.adj[u], v)
	}
	g.m -= len(g.adj[v])
	delete(g.adj, v)
}

// RemoveEdge deletes the undirected edge {u,v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	if _, ok := g.adj[u][v]; !ok {
		return
	}
	g.m--
	delete(g.adj[u], v)
	delete(g.adj[v], u)
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges. It is a maintained
// counter, not a recount, so callers may consult it per iteration for free.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Nodes returns all vertex ids in ascending order.
func (g *Graph) Nodes() []int {
	return g.NodesAppend(nil)
}

// NodesAppend appends all vertex ids in ascending order to buf and returns
// the extended slice. Callers that scan nodes inside a loop pass buf[:0] of
// a reusable buffer so the per-call allocation of Nodes disappears.
func (g *Graph) NodesAppend(buf []int) []int {
	base := len(buf)
	for v := range g.adj {
		buf = append(buf, v)
	}
	sort.Ints(buf[base:])
	return buf
}

// Neighbors returns the neighbors of v in ascending order.
func (g *Graph) Neighbors(v int) []int {
	return g.NeighborsAppend(v, nil)
}

// NeighborsAppend appends the neighbors of v in ascending order to buf and
// returns the extended slice; the reusable-buffer counterpart of Neighbors.
func (g *Graph) NeighborsAppend(v int, buf []int) []int {
	base := len(buf)
	for u := range g.adj[v] {
		buf = append(buf, u)
	}
	sort.Ints(buf[base:])
	return buf
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V, W int
}

// Edges returns all edges sorted by (U,V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u, nbrs := range g.adj {
		for v, w := range nbrs {
			if u < v {
				out = append(out, Edge{U: u, V: v, W: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for u, nbrs := range g.adj {
		m := make(map[int]int, len(nbrs))
		for v, w := range nbrs {
			m[v] = w
		}
		c.adj[u] = m
	}
	c.m = g.m
	return c
}

// Induced returns the subgraph induced by the given vertex set. Vertices in
// the set that are absent from g are created as isolated vertices, which
// keeps induced subgraphs usable as coloring inputs even for values that
// never conflict.
func (g *Graph) Induced(vs []int) *Graph {
	in := make(map[int]bool, len(vs))
	for _, v := range vs {
		in[v] = true
	}
	sub := New()
	for _, v := range vs {
		sub.AddNode(v)
		for u, w := range g.adj[v] {
			if in[u] && v < u {
				sub.AddEdge(v, u, w)
			}
		}
	}
	return sub
}

// IsClique reports whether every pair of the given vertices is adjacent in g.
// The empty set and singletons are cliques.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted ascending, ordered by their smallest vertex.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make(map[int]bool, len(g.adj))
	var comps [][]int
	var stack, nbuf []int
	for _, start := range g.Nodes() {
		if seen[start] {
			continue
		}
		var comp []int
		stack = append(stack[:0], start)
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			nbuf = g.NeighborsAppend(v, nbuf[:0])
			for _, u := range nbuf {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// ComponentContaining returns the sorted vertex set of the connected
// component of g that contains v, after conceptually deleting the vertices
// in the separator set. If v is in the separator or absent, it returns nil.
func (g *Graph) ComponentContaining(v int, separator []int) []int {
	sep := make(map[int]bool, len(separator))
	for _, s := range separator {
		sep[s] = true
	}
	if sep[v] || !g.HasNode(v) {
		return nil
	}
	seen := map[int]bool{v: true}
	stack := []int{v}
	var comp, nbuf []int
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		comp = append(comp, x)
		nbuf = g.NeighborsAppend(x, nbuf[:0])
		for _, u := range nbuf {
			if !seen[u] && !sep[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	sort.Ints(comp)
	return comp
}

// IsSeparator reports whether deleting the vertex set sep disconnects g or
// leaves a vertex isolated from some other vertex. A set is not a separator
// of a graph that has at most one vertex outside the set.
func (g *Graph) IsSeparator(sep []int) bool {
	in := make(map[int]bool, len(sep))
	for _, s := range sep {
		in[s] = true
	}
	var outside []int
	for v := range g.adj {
		if !in[v] {
			outside = append(outside, v)
		}
	}
	if len(outside) <= 1 {
		return false
	}
	comp := g.ComponentContaining(outside[0], sep)
	return len(comp) < len(outside)
}

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// String renders the graph as "v: n1 n2 ..." lines for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for _, v := range g.Nodes() {
		fmt.Fprintf(&b, "%d:", v)
		for _, u := range g.Neighbors(v) {
			fmt.Fprintf(&b, " %d(w%d)", u, g.adj[v][u])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
