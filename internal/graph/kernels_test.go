package graph

import (
	"math/rand"
	"testing"
)

// randBitset builds a random bitset over n bits and the equivalent index set.
func randBitset(r *rand.Rand, n int, p float64) ([]uint64, map[int32]bool) {
	s := make([]uint64, BitsetWords(n))
	set := make(map[int32]bool)
	for i := int32(0); int(i) < n; i++ {
		if r.Float64() < p {
			SetBit(s, i)
			set[i] = true
		}
	}
	return s, set
}

// TestKernelsMatchReference fuzzes every word kernel against the naive
// per-bit set semantics.
func TestKernelsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for iter := 0; iter < 200; iter++ {
		n := 1 + r.Intn(300)
		a, as := randBitset(r, n, r.Float64())
		b, bs := randBitset(r, n, r.Float64())

		if got := Popcount(a); got != len(as) {
			t.Fatalf("iter %d: Popcount = %d, want %d", iter, got, len(as))
		}
		for i := int32(0); int(i) < n; i++ {
			if TestBit(a, i) != as[i] {
				t.Fatalf("iter %d: TestBit(%d) = %v, want %v", iter, i, TestBit(a, i), as[i])
			}
		}

		u := append([]uint64(nil), a...)
		Union(u, b)
		x := append([]uint64(nil), a...)
		Intersect(x, b)
		d := append([]uint64(nil), a...)
		AndNot(d, b)
		for i := int32(0); int(i) < n; i++ {
			if TestBit(u, i) != (as[i] || bs[i]) {
				t.Fatalf("iter %d: Union bit %d wrong", iter, i)
			}
			if TestBit(x, i) != (as[i] && bs[i]) {
				t.Fatalf("iter %d: Intersect bit %d wrong", iter, i)
			}
			if TestBit(d, i) != (as[i] && !bs[i]) {
				t.Fatalf("iter %d: AndNot bit %d wrong", iter, i)
			}
		}

		wantContains := true
		for i := range bs {
			if !as[i] {
				wantContains = false
			}
		}
		if Contains(a, b) != wantContains {
			t.Fatalf("iter %d: Contains = %v, want %v", iter, Contains(a, b), wantContains)
		}
		if !Contains(a, x) {
			t.Fatalf("iter %d: a∩b must be a subset of a", iter)
		}
		if !Contains(u, b) {
			t.Fatalf("iter %d: a∪b must contain b", iter)
		}

		// IterateSetBits and AppendSetBits must emit ascending order.
		var it []int32
		IterateSetBits(a, func(i int32) bool { it = append(it, i); return true })
		app := AppendSetBits(nil, a)
		if len(it) != len(as) || len(app) != len(as) {
			t.Fatalf("iter %d: iterate/append lengths %d/%d, want %d", iter, len(it), len(app), len(as))
		}
		for j := range it {
			if it[j] != app[j] || (j > 0 && it[j] <= it[j-1]) || !as[it[j]] {
				t.Fatalf("iter %d: iteration order broken at %d", iter, j)
			}
		}
		// Early stop.
		stopped := 0
		IterateSetBits(a, func(i int32) bool { stopped++; return stopped < 3 })
		if want := min(3, len(as)); stopped != want {
			t.Fatalf("iter %d: early stop visited %d, want %d", iter, stopped, want)
		}
	}
}

// TestIntersectShorterSrc checks the documented clearing of dst words beyond
// len(src).
func TestIntersectShorterSrc(t *testing.T) {
	dst := []uint64{^uint64(0), ^uint64(0), ^uint64(0)}
	src := []uint64{0xF0}
	Intersect(dst, src)
	if dst[0] != 0xF0 || dst[1] != 0 || dst[2] != 0 {
		t.Fatalf("Intersect with short src = %x", dst)
	}
	if !Contains([]uint64{0xF0}, []uint64{0x10, 0, 0}) {
		t.Fatal("Contains must tolerate zero words of inner beyond outer")
	}
	if Contains([]uint64{0xF0}, []uint64{0x10, 1}) {
		t.Fatal("Contains must reject set inner bits beyond outer")
	}
}

// buildAllReprs builds the same graph under each adjacency representation by
// lowering the bitset ceilings, plus the map-backed Graph as the oracle.
func buildAllReprs(t *testing.T, g *Graph) (flat, blocked, csr *Dense) {
	t.Helper()
	n := len(g.adj)
	restore := SetBitsetCeilings(n, n)
	flat = FromGraph(g)
	restore()
	restore = SetBitsetCeilings(0, n)
	blocked = FromGraph(g)
	restore()
	restore = SetBitsetCeilings(0, 0)
	csr = FromGraph(g)
	restore()
	if flat.BitsetKind() != "flat" || blocked.BitsetKind() != "blocked" || csr.BitsetKind() != "csr" {
		t.Fatalf("representation kinds = %s/%s/%s", flat.BitsetKind(), blocked.BitsetKind(), csr.BitsetKind())
	}
	return flat, blocked, csr
}

// TestBlockedBitsetDifferential forces the flat, blocked and CSR forms onto
// identical random graphs and requires every read accessor to agree
// bit-for-bit across all three plus the map reference.
func TestBlockedBitsetDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		n := 65 + r.Intn(400) // spans multiple words and, with low ceilings, blocks
		g := randomIDGraph(r, n, r.Float64()*0.15)
		flat, blocked, csr := buildAllReprs(t, g)

		mask, _ := randBitset(r, n, r.Float64())
		for i := int32(0); int(i) < n; i++ {
			for j := int32(0); int(j) < n; j++ {
				f, b, c := flat.HasEdgeIdx(i, j), blocked.HasEdgeIdx(i, j), csr.HasEdgeIdx(i, j)
				if f != b || f != c {
					t.Fatalf("iter %d: HasEdgeIdx(%d,%d) flat=%v blocked=%v csr=%v", iter, i, j, f, b, c)
				}
			}
			for w := 0; w < BitsetWords(n); w++ {
				if flat.RowWord(i, w) != blocked.RowWord(i, w) {
					t.Fatalf("iter %d: RowWord(%d,%d) differs flat vs blocked", iter, i, w)
				}
			}
			fa := flat.RowAndInto(i, mask, nil)
			ba := blocked.RowAndInto(i, mask, nil)
			ca := csr.RowAndInto(i, mask, nil)
			fn := flat.RowAndNotInto(i, mask, nil)
			bn := blocked.RowAndNotInto(i, mask, nil)
			cn := csr.RowAndNotInto(i, mask, nil)
			if !equalInt32(fa, ba) || !equalInt32(fa, ca) {
				t.Fatalf("iter %d: RowAndInto(%d) diverges: flat=%v blocked=%v csr=%v", iter, i, fa, ba, ca)
			}
			if !equalInt32(fn, bn) || !equalInt32(fn, cn) {
				t.Fatalf("iter %d: RowAndNotInto(%d) diverges: flat=%v blocked=%v csr=%v", iter, i, fn, bn, cn)
			}
			if len(fa)+len(fn) != flat.Deg(i) {
				t.Fatalf("iter %d: row %d and/andNot don't partition the row", iter, i)
			}
		}
	}
}

// TestRowMaskWordPath forces the word-walk branch of the masked row scans
// (dense rows past the degree threshold) against the CSR walk.
func TestRowMaskWordPath(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	n := 192
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(i)
	}
	// Row 0 nearly complete (word path), the rest sparse (CSR path).
	for j := 1; j < n; j++ {
		if j%7 != 0 {
			g.AddEdge(0, j, 1)
		}
		if r.Intn(10) == 0 {
			g.AddEdge(j, r.Intn(n), 1)
		}
	}
	flat, blocked, csr := buildAllReprs(t, g)
	if !flat.rowScanThreshold(0) || !blocked.rowScanThreshold(0) {
		t.Fatal("row 0 should take the word-walk path")
	}
	for trial := 0; trial < 50; trial++ {
		mask, _ := randBitset(r, n, r.Float64())
		for i := int32(0); int(i) < n; i++ {
			want := csr.RowAndInto(i, mask, nil)
			wantNot := csr.RowAndNotInto(i, mask, nil)
			if !equalInt32(flat.RowAndInto(i, mask, nil), want) ||
				!equalInt32(blocked.RowAndInto(i, mask, nil), want) {
				t.Fatalf("trial %d: RowAndInto(%d) word path diverges", trial, i)
			}
			if !equalInt32(flat.RowAndNotInto(i, mask, nil), wantNot) ||
				!equalInt32(blocked.RowAndNotInto(i, mask, nil), wantNot) {
				t.Fatalf("trial %d: RowAndNotInto(%d) word path diverges", trial, i)
			}
		}
	}
}

// TestBlockedBitsetBoundary sweeps the exact flat/blocked handoff: at the
// real DenseBitsetMaxN ceiling ±1 the chosen representation must flip and
// all probes must agree with the map graph.
func TestBlockedBitsetBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("boundary sweep is slow in -short mode")
	}
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{DenseBitsetMaxN - 1, DenseBitsetMaxN, DenseBitsetMaxN + 1} {
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode(i)
		}
		for i := 0; i < 6*n; i++ {
			g.AddEdge(r.Intn(n), r.Intn(n), 1)
		}
		d := FromGraph(g)
		wantKind := "flat"
		if n > DenseBitsetMaxN {
			wantKind = "blocked"
		}
		if d.BitsetKind() != wantKind {
			t.Fatalf("n=%d: BitsetKind = %s, want %s", n, d.BitsetKind(), wantKind)
		}
		for i := 0; i < 20*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if d.HasEdgeIdx(int32(u), int32(v)) != g.HasEdge(u, v) {
				t.Fatalf("n=%d: HasEdgeIdx(%d,%d) disagrees with Graph", n, u, v)
			}
		}
	}
}

// TestBlockedBitset10k proves the acceptance criterion directly: a 10k-node
// conflict graph stays on the bitset fast path, every probe agreeing with
// the map reference.
func TestBlockedBitset10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k graph build is slow in -short mode")
	}
	r := rand.New(rand.NewSource(14))
	n := 10_000
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(i)
	}
	for i := 0; i < 8*n; i++ {
		g.AddEdge(r.Intn(n), r.Intn(n), 1)
	}
	d := FromGraph(g)
	if d.BitsetKind() != "blocked" {
		t.Fatalf("10k graph BitsetKind = %s, want blocked (CSR fallback would be the slow path)", d.BitsetKind())
	}
	for i := 0; i < 50_000; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if d.HasEdgeIdx(int32(u), int32(v)) != g.HasEdge(u, v) {
			t.Fatalf("HasEdgeIdx(%d,%d) disagrees with Graph", u, v)
		}
	}
}

// BenchmarkDense10kProbe measures the blocked bitset against the CSR
// binary-search fallback on a 10k-vertex graph — the probe pattern that
// motivated the blocked form.
func BenchmarkDense10kProbe(b *testing.B) {
	r := rand.New(rand.NewSource(15))
	n := 10_000
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(i)
	}
	for i := 0; i < 8*n; i++ {
		g.AddEdge(r.Intn(n), r.Intn(n), 1)
	}
	probes := make([][2]int32, 4096)
	for i := range probes {
		probes[i] = [2]int32{int32(r.Intn(n)), int32(r.Intn(n))}
	}
	run := func(b *testing.B, d *Dense) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			p := probes[i%len(probes)]
			if d.HasEdgeIdx(p[0], p[1]) {
				hits++
			}
		}
		sink = hits
	}
	b.Run("blocked", func(b *testing.B) {
		d := FromGraph(g)
		if d.BitsetKind() != "blocked" {
			b.Fatalf("kind = %s", d.BitsetKind())
		}
		run(b, d)
	})
	b.Run("csr", func(b *testing.B) {
		restore := SetBitsetCeilings(0, 0)
		d := FromGraph(g)
		restore()
		run(b, d)
	})
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
