package graph

import "math/bits"

// Word-at-a-time bitset kernels.
//
// The hot phases of the assignment engine (MCS-M ordering, clique-separator
// carving, urgency coloring) spend their time asking set questions about
// adjacency rows: "which neighbors are still unnumbered", "which neighbors
// are already assigned", "does this row contain that whole set". Answering
// them one vertex at a time costs a branch per bit; these kernels answer
// them one uint64 word — 64 vertices — at a time, and every iteration order
// is ascending bit order, so call sites keep the "lowest id first"
// tie-break rules of the reference algorithms bit-identically.
//
// A bitset over n vertices is a []uint64 of BitsetWords(n) words; bit i of
// word i/64 is vertex i. All binary kernels require len(dst) >= len(src)
// (the caller sizes both from the same vertex count).

// BitsetWords returns the []uint64 length covering n bits.
func BitsetWords(n int) int { return (n + 63) / 64 }

// TestBit reports whether bit i is set.
func TestBit(s []uint64, i int32) bool {
	return s[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0
}

// SetBit sets bit i.
func SetBit(s []uint64, i int32) {
	s[uint32(i)>>6] |= 1 << (uint32(i) & 63)
}

// ClearBit clears bit i.
func ClearBit(s []uint64, i int32) {
	s[uint32(i)>>6] &^= 1 << (uint32(i) & 63)
}

// Union ors src into dst word by word: dst |= src.
func Union(dst, src []uint64) {
	for w, x := range src {
		dst[w] |= x
	}
}

// Intersect ands src into dst word by word: dst &= src. Words of dst beyond
// len(src) are cleared (they intersect the empty suffix).
func Intersect(dst, src []uint64) {
	for w := range dst {
		if w < len(src) {
			dst[w] &= src[w]
		} else {
			dst[w] = 0
		}
	}
}

// AndNot clears every src bit from dst word by word: dst &^= src.
func AndNot(dst, src []uint64) {
	for w, x := range src {
		dst[w] &^= x
	}
}

// Popcount returns the number of set bits.
func Popcount(s []uint64) int {
	n := 0
	for _, x := range s {
		n += bits.OnesCount64(x)
	}
	return n
}

// Contains reports whether inner is a subset of outer: every set bit of
// inner is set in outer. Words of inner beyond len(outer) must be zero for
// the subset to hold.
func Contains(outer, inner []uint64) bool {
	for w, x := range inner {
		if w < len(outer) {
			if x&^outer[w] != 0 {
				return false
			}
		} else if x != 0 {
			return false
		}
	}
	return true
}

// IterateSetBits calls fn for every set bit in ascending order, stopping
// early when fn returns false.
func IterateSetBits(s []uint64, fn func(i int32) bool) {
	for w, x := range s {
		base := int32(w) << 6
		for x != 0 {
			if !fn(base + int32(bits.TrailingZeros64(x))) {
				return
			}
			x &= x - 1
		}
	}
}

// AppendSetBits appends every set bit index to dst in ascending order and
// returns the extended slice.
func AppendSetBits(dst []int32, s []uint64) []int32 {
	for w, x := range s {
		base := int32(w) << 6
		for x != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(x)))
			x &= x - 1
		}
	}
	return dst
}

// appendWordBits appends the set bits of one word (offset by base) to dst.
func appendWordBits(dst []int32, base int32, x uint64) []int32 {
	for x != 0 {
		dst = append(dst, base+int32(bits.TrailingZeros64(x)))
		x &= x - 1
	}
	return dst
}
