package graph

import (
	"math/rand"
	"testing"
)

// randomIDGraph builds a random graph over n vertices with non-contiguous,
// shuffled ids and edge probability p, exercising the id↔index remapping.
func randomIDGraph(r *rand.Rand, n int, p float64) *Graph {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i*3 + 7 // non-contiguous
	}
	r.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	g := New()
	for _, v := range ids {
		g.AddNode(v)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdgeWeight(ids[i], ids[j], 1+r.Intn(5))
			}
		}
	}
	return g
}

// TestDenseMatchesGraph fuzzes FromGraph: every Dense accessor must agree
// with the mutable Graph it was built from. These sizes stay under the
// bitset threshold; TestDenseBinarySearchPath covers the CSR fallback.
func TestDenseMatchesGraph(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		n := r.Intn(40)
		g := randomIDGraph(r, n, r.Float64()*0.6)
		d := FromGraph(g)

		nodes := g.Nodes()
		if got := d.IDs(); len(got) != len(nodes) {
			t.Fatalf("iter %d: N = %d, want %d", iter, len(got), len(nodes))
		}
		for i, v := range nodes {
			if d.ID(int32(i)) != v {
				t.Fatalf("iter %d: ID(%d) = %d, want %d", iter, i, d.ID(int32(i)), v)
			}
			if d.Index(v) != int32(i) {
				t.Fatalf("iter %d: Index(%d) = %d, want %d", iter, v, d.Index(v), i)
			}
		}
		if d.NumEdges() != g.NumEdges() {
			t.Fatalf("iter %d: NumEdges = %d, want %d", iter, d.NumEdges(), g.NumEdges())
		}
		for _, v := range nodes {
			if d.Degree(v) != g.Degree(v) {
				t.Fatalf("iter %d: Degree(%d) = %d, want %d", iter, v, d.Degree(v), g.Degree(v))
			}
			nbrs := g.Neighbors(v)
			row := d.Row(d.Index(v))
			if len(row) != len(nbrs) {
				t.Fatalf("iter %d: Row(%d) has %d entries, want %d", iter, v, len(row), len(nbrs))
			}
			for j, u := range nbrs {
				if d.ID(row[j]) != u {
					t.Fatalf("iter %d: Row(%d)[%d] = id %d, want %d", iter, v, j, d.ID(row[j]), u)
				}
				if w := d.WeightRow(d.Index(v))[j]; int(w) != g.Weight(v, u) {
					t.Fatalf("iter %d: weight(%d,%d) = %d, want %d", iter, v, u, w, g.Weight(v, u))
				}
			}
		}
		// Pairwise HasEdge/Weight, including absent ids.
		probe := append(append([]int{}, nodes...), -1, 999999)
		for _, u := range probe {
			for _, v := range probe {
				if d.HasEdge(u, v) != g.HasEdge(u, v) {
					t.Fatalf("iter %d: HasEdge(%d,%d) = %v, want %v", iter, u, v, d.HasEdge(u, v), g.HasEdge(u, v))
				}
				if d.Weight(u, v) != g.Weight(u, v) {
					t.Fatalf("iter %d: Weight(%d,%d) = %d, want %d", iter, u, v, d.Weight(u, v), g.Weight(u, v))
				}
			}
		}
		// Edges must be bit-identical to the map graph's sorted edge list.
		ge, de := g.Edges(), d.Edges()
		if len(ge) != len(de) {
			t.Fatalf("iter %d: %d edges, want %d", iter, len(de), len(ge))
		}
		for i := range ge {
			if ge[i] != de[i] {
				t.Fatalf("iter %d: edge %d = %+v, want %+v", iter, i, de[i], ge[i])
			}
		}
		// Random subsets: IsCliqueIDs vs IsClique.
		for trial := 0; trial < 10 && n > 0; trial++ {
			var vs []int
			for _, v := range nodes {
				if r.Intn(4) == 0 {
					vs = append(vs, v)
				}
			}
			if d.IsCliqueIDs(vs) != g.IsClique(vs) {
				t.Fatalf("iter %d: IsCliqueIDs(%v) = %v, want %v", iter, vs, d.IsCliqueIDs(vs), g.IsClique(vs))
			}
		}
	}
}

// TestDenseBinarySearchPath checks HasEdgeIdx beyond the bitset threshold,
// where adjacency probes binary-search the CSR rows instead.
func TestDenseBinarySearchPath(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := DenseBitsetMaxN + 50
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(i)
	}
	type pair struct{ u, v int }
	var edges []pair
	for i := 0; i < 4*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		g.AddEdge(u, v, 1)
		if u != v {
			edges = append(edges, pair{u, v})
		}
	}
	d := FromGraph(g)
	if d.N() != n {
		t.Fatalf("N = %d, want %d", d.N(), n)
	}
	for _, e := range edges {
		if !d.HasEdgeIdx(d.Index(e.u), d.Index(e.v)) || !d.HasEdgeIdx(d.Index(e.v), d.Index(e.u)) {
			t.Fatalf("edge {%d,%d} missing on binary-search path", e.u, e.v)
		}
	}
	for i := 0; i < 4*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if d.HasEdgeIdx(d.Index(u), d.Index(v)) != g.HasEdge(u, v) {
			t.Fatalf("HasEdgeIdx(%d,%d) disagrees with Graph", u, v)
		}
	}
}

func TestNodesNeighborsAppend(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomIDGraph(r, 25, 0.3)
	buf := make([]int, 0, 64)
	nodes := g.Nodes()
	got := g.NodesAppend(buf[:0])
	if len(got) != len(nodes) {
		t.Fatalf("NodesAppend: %d nodes, want %d", len(got), len(nodes))
	}
	for i := range nodes {
		if got[i] != nodes[i] {
			t.Fatalf("NodesAppend[%d] = %d, want %d", i, got[i], nodes[i])
		}
	}
	for _, v := range nodes {
		want := g.Neighbors(v)
		nb := g.NeighborsAppend(v, buf[:0])
		if len(nb) != len(want) {
			t.Fatalf("NeighborsAppend(%d): %d entries, want %d", v, len(nb), len(want))
		}
		for i := range want {
			if nb[i] != want[i] {
				t.Fatalf("NeighborsAppend(%d)[%d] = %d, want %d", v, i, nb[i], want[i])
			}
		}
	}
}

// TestNumEdgesCounter cross-checks the maintained edge counter against a
// recount through every mutator.
func TestNumEdgesCounter(t *testing.T) {
	recount := func(g *Graph) int { return len(g.Edges()) }
	r := rand.New(rand.NewSource(4))
	g := New()
	for step := 0; step < 2000; step++ {
		u, v := r.Intn(20), r.Intn(20)
		switch r.Intn(5) {
		case 0:
			g.AddEdge(u, v, 1)
		case 1:
			g.AddEdgeWeight(u, v, 2)
		case 2:
			g.RemoveEdge(u, v)
		case 3:
			g.AddNode(u)
		default:
			g.RemoveNode(u)
		}
		if g.NumEdges() != recount(g) {
			t.Fatalf("step %d: NumEdges = %d, recount %d", step, g.NumEdges(), recount(g))
		}
	}
	c := g.Clone()
	if c.NumEdges() != g.NumEdges() {
		t.Fatalf("Clone: NumEdges = %d, want %d", c.NumEdges(), g.NumEdges())
	}
}

// BenchmarkDenseVsMap compares the two adjacency representations on the
// read pattern the hot phases use: full neighborhood sweeps plus pairwise
// membership probes.
func BenchmarkDenseVsMap(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	g := randomIDGraph(r, 300, 0.1)
	d := FromGraph(g)
	nodes := g.Nodes()

	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		sum := 0
		for i := 0; i < b.N; i++ {
			for _, v := range nodes {
				for _, u := range g.Neighbors(v) {
					sum += g.Weight(v, u)
				}
			}
		}
		sink = sum
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		sum := 0
		for i := 0; i < b.N; i++ {
			for vi := int32(0); int(vi) < d.N(); vi++ {
				for j := range d.Row(vi) {
					sum += int(d.WeightRow(vi)[j])
				}
			}
		}
		sink = sum
	})
}

var sink int
