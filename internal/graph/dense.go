package graph

import (
	"math/bits"
	"slices"
	"sort"

	"parmem/internal/arena"
)

// Dense is a frozen, cache-friendly snapshot of a Graph, built once and then
// read by the hot phases (MCS-M ordering, urgency coloring, clique checks).
//
// Vertices are remapped onto the dense index range [0,n) in ascending
// original-id order, so index order and id order agree and every tie-break
// rule expressed as "lowest id first" in the map-backed algorithms is
// "lowest index first" here — the dense and map implementations are
// bit-identical by construction.
//
// Adjacency is stored twice, each form serving one access pattern:
//
//   - CSR (compressed sparse row): one flat neighbor array plus per-vertex
//     offsets, neighbors pre-sorted ascending at build time. Iterating a
//     neighborhood is a contiguous slice scan with zero allocation, where
//     Graph.Neighbors allocates and re-sorts on every call.
//   - A bitset adjacency for O(1) HasEdge and the word-at-a-time kernels of
//     kernels.go. While n <= DenseBitsetMaxN it is a flat n×n matrix; up to
//     BlockedBitsetMaxN it is a two-level blocked form that only
//     materializes the non-empty 64-word blocks of each row (a quadratic
//     matrix at 10k+ vertices would dwarf the win); beyond that HasEdge
//     falls back to binary search in the CSR row of the smaller-degree
//     endpoint.
//
// Edge weights ride in a flat []int32 parallel to the neighbor array, and
// degrees are offset differences — no map lookups anywhere on the read path.
type Dense struct {
	ids []int         // index -> original id, ascending
	idx map[int]int32 // original id -> index

	off []int32 // CSR offsets; row i is nbr[off[i]:off[i+1]]
	nbr []int32 // neighbor indices, sorted ascending within each row
	wt  []int32 // edge weight parallel to nbr

	// Flat bitset matrix (n <= the flat ceiling). Row i is
	// bits[i*stride : (i+1)*stride].
	bits   []uint64
	stride int // uint64 words per bitset row (set for both bitset forms)

	// Blocked bitset (flat ceiling < n <= the blocked ceiling). A row is
	// bpr blocks of 64 words (4096 columns) each; only non-empty blocks
	// exist. summary[r*bpr+b] has bit w set iff word b*64+w of row r is
	// non-zero, so a zero summary word means the whole block is absent.
	// blockRef[r*bpr+b] is 1+the block's position in blockWords (64 words
	// per block), or 0 when the block is empty — zeroed scratch memory is
	// the empty state for both arrays.
	bpr        int // blocks per row = ceil(stride/64)
	summary    []uint64
	blockRef   []int32
	blockWords []uint64

	numEdges int
}

// DenseBitsetMaxN bounds the vertex count up to which FromGraph materializes
// the flat bitset adjacency matrix. At the threshold the matrix occupies
// n*n/8 = 512 KiB — small enough to live in L2 while covering every conflict
// graph the paper's workloads produce by orders of magnitude.
const DenseBitsetMaxN = 2048

// BlockedBitsetMaxN bounds the vertex count up to which FromGraph builds
// the blocked bitset when the flat matrix is too big. The per-row overhead
// of the summary and block-reference arrays is 12 bytes per 4096-column
// block — n²·12/4096 bytes total, ~29 MiB at the ceiling — while the
// materialized blocks are bounded by the number of edges, so 10k+-vertex
// conflict graphs stay on the O(1) bitset fast path instead of falling
// back to CSR binary search.
const BlockedBitsetMaxN = 1 << 17

// blockWordsPerBlock is the block granularity of the blocked bitset: 64
// words = 4096 columns, so one summary word exactly covers one block.
const blockWordsPerBlock = 64

// The active ceilings. They default to the constants above; tests lower
// them via SetBitsetCeilings to force every representation at small n.
var flatCeiling, blockedCeiling = DenseBitsetMaxN, BlockedBitsetMaxN

// SetBitsetCeilings overrides the vertex-count ceilings of the flat and
// blocked bitset forms and returns a func restoring the previous values.
// Passing 0 for both forces the CSR binary-search fallback everywhere. It
// is a test/benchmark hook for the representation-differential sweeps; it
// must not be called concurrently with FromGraph.
func SetBitsetCeilings(flat, blocked int) (restore func()) {
	pf, pb := flatCeiling, blockedCeiling
	flatCeiling, blockedCeiling = flat, blocked
	return func() { flatCeiling, blockedCeiling = pf, pb }
}

// FromGraph builds the dense snapshot of g. Later mutations of g are not
// reflected; callers freeze the graph first (every compiler phase does — the
// conflict graph never changes after construction).
func FromGraph(g *Graph) *Dense {
	return FromGraphScratch(g, nil)
}

// FromGraphScratch is FromGraph with the backing arrays (ids, index map,
// CSR offsets/neighbors/weights, bitset matrix) borrowed from sc. The
// returned Dense is only valid until sc is Reset or Released and must not
// escape that scope. A nil sc allocates fresh storage, identical to
// FromGraph.
func FromGraphScratch(g *Graph, sc *arena.Scratch) *Dense {
	n := len(g.adj)
	d := &Dense{
		ids: sc.Ints(n)[:0],
		idx: sc.IntInt32Map(n),
		off: sc.Int32s(n + 1),
	}
	for v := range g.adj {
		d.ids = append(d.ids, v)
	}
	sort.Ints(d.ids)
	for i, v := range d.ids {
		d.idx[v] = int32(i)
	}

	total := 0
	for i, v := range d.ids {
		deg := len(g.adj[v])
		total += deg
		d.off[i+1] = d.off[i] + int32(deg)
	}
	d.nbr = sc.Int32s(total)
	d.wt = sc.Int32s(total)
	d.numEdges = total / 2

	for i, v := range d.ids {
		row := d.nbr[d.off[i]:d.off[i]:d.off[i+1]]
		for u := range g.adj[v] {
			row = append(row, d.idx[u])
		}
		slices.Sort(row)
		for j, u := range row {
			d.wt[int(d.off[i])+j] = int32(g.adj[v][d.ids[u]])
		}
	}

	switch {
	case n > 0 && n <= flatCeiling:
		d.stride = (n + 63) / 64
		d.bits = sc.Uint64s(n * d.stride)
		for i := 0; i < n; i++ {
			for _, u := range d.Row(int32(i)) {
				d.bits[i*d.stride+int(u)/64] |= 1 << (uint(u) % 64)
			}
		}
	case n > flatCeiling && n <= blockedCeiling:
		d.buildBlocked(sc)
	}
	return d
}

// buildBlocked materializes the two-level blocked bitset: a first pass
// marks the summary words (counting non-empty blocks as they first
// appear), a second assigns each non-empty block its slot in blockWords
// and sets the adjacency bits.
func (d *Dense) buildBlocked(sc *arena.Scratch) {
	n := len(d.ids)
	d.stride = (n + 63) / 64
	d.bpr = (d.stride + blockWordsPerBlock - 1) / blockWordsPerBlock
	d.summary = sc.Uint64s(n * d.bpr)
	d.blockRef = sc.Int32s(n * d.bpr)

	nblocks := 0
	for i := 0; i < n; i++ {
		base := i * d.bpr
		for _, u := range d.Row(int32(i)) {
			w := int(u) >> 6
			b := base + w>>6
			if d.summary[b] == 0 {
				nblocks++
			}
			d.summary[b] |= 1 << (uint(w) & 63)
		}
	}
	next := int32(0)
	for b := range d.summary {
		if d.summary[b] != 0 {
			next++
			d.blockRef[b] = next // 1-based; 0 = absent
		}
	}
	d.blockWords = sc.Uint64s(nblocks * blockWordsPerBlock)
	for i := 0; i < n; i++ {
		base := i * d.bpr
		for _, u := range d.Row(int32(i)) {
			w := int(u) >> 6
			ref := int(d.blockRef[base+w>>6]) - 1
			d.blockWords[ref*blockWordsPerBlock+(w&63)] |= 1 << (uint(u) & 63)
		}
	}
}

// N returns the number of vertices.
func (d *Dense) N() int { return len(d.ids) }

// NumEdges returns the number of undirected edges.
func (d *Dense) NumEdges() int { return d.numEdges }

// ID returns the original vertex id of dense index i.
func (d *Dense) ID(i int32) int { return d.ids[i] }

// IDs returns the original vertex ids in ascending order. The slice is the
// Dense's own storage; callers must not modify it.
func (d *Dense) IDs() []int { return d.ids }

// Index returns the dense index of original id v, or -1 if v is absent.
func (d *Dense) Index(v int) int32 {
	if i, ok := d.idx[v]; ok {
		return i
	}
	return -1
}

// Deg returns the degree of dense index i.
func (d *Dense) Deg(i int32) int { return int(d.off[i+1] - d.off[i]) }

// Row returns the neighbor indices of dense index i, sorted ascending. The
// slice aliases the CSR storage; callers must not modify it.
func (d *Dense) Row(i int32) []int32 { return d.nbr[d.off[i]:d.off[i+1]] }

// WeightRow returns the edge weights parallel to Row(i). The slice aliases
// the CSR storage; callers must not modify it.
func (d *Dense) WeightRow(i int32) []int32 { return d.wt[d.off[i]:d.off[i+1]] }

// HasEdgeIdx reports whether the undirected edge {u,v} exists, by dense
// index: one bitset probe when the flat matrix is materialized, a
// summary-gated probe on the blocked form, otherwise a binary search in
// the smaller-degree endpoint's CSR row.
func (d *Dense) HasEdgeIdx(u, v int32) bool {
	if u == v {
		return false
	}
	if d.bits != nil {
		return d.bits[int(u)*d.stride+int(v)/64]&(1<<(uint(v)%64)) != 0
	}
	if d.summary != nil {
		w := int(v) >> 6
		b := int(u)*d.bpr + w>>6
		if d.summary[b]&(1<<(uint(w)&63)) == 0 {
			return false
		}
		ref := int(d.blockRef[b]) - 1
		return d.blockWords[ref*blockWordsPerBlock+(w&63)]&(1<<(uint(v)&63)) != 0
	}
	if d.Deg(v) < d.Deg(u) {
		u, v = v, u
	}
	return d.searchRow(u, v) >= 0
}

// BitsetKind names the adjacency representation answering HasEdgeIdx:
// "flat" (n×n matrix), "blocked" (two-level blocked bitset) or "csr"
// (binary-search fallback, no bitset). Tests and benchmarks assert the
// fast path with it.
func (d *Dense) BitsetKind() string {
	switch {
	case d.bits != nil:
		return "flat"
	case d.summary != nil:
		return "blocked"
	default:
		return "csr"
	}
}

// HasRowWords reports whether RowWord is available (some bitset form
// exists).
func (d *Dense) HasRowWords() bool { return d.bits != nil || d.summary != nil }

// RowWord returns the w-th 64-bit adjacency word of row i (vertices
// w*64..w*64+63). Only valid when HasRowWords; absent blocks of the
// blocked form read as zero.
func (d *Dense) RowWord(i int32, w int) uint64 {
	if d.bits != nil {
		return d.bits[int(i)*d.stride+w]
	}
	b := int(i)*d.bpr + w>>6
	if d.summary[b]&(1<<(uint(w)&63)) == 0 {
		return 0
	}
	ref := int(d.blockRef[b]) - 1
	return d.blockWords[ref*blockWordsPerBlock+(w&63)]
}

// rowScanThreshold picks between the CSR-walk and word-walk forms of the
// masked row scans: a row whose degree is well below the word count of the
// whole bitset is cheaper to walk as a neighbor list with per-bit mask
// probes, a denser one as whole words. Both walks emit ascending indices,
// so the choice never changes results.
func (d *Dense) rowScanThreshold(i int32) bool { return d.Deg(i) >= 2*d.stride }

// RowAndNotInto appends to dst, in ascending order, every neighbor u of
// row i whose mask bit is NOT set, and returns the extended slice. mask is
// a flat bitset of BitsetWords(N()) words. On the bitset forms dense rows
// are combined with the mask one uint64 word — 64 vertices — at a time.
func (d *Dense) RowAndNotInto(i int32, mask []uint64, dst []int32) []int32 {
	if d.HasRowWords() && d.rowScanThreshold(i) {
		return d.rowMaskWords(i, mask, dst, true)
	}
	for _, u := range d.Row(i) {
		if !TestBit(mask, u) {
			dst = append(dst, u)
		}
	}
	return dst
}

// RowAndInto appends to dst, in ascending order, every neighbor u of row i
// whose mask bit IS set, and returns the extended slice.
func (d *Dense) RowAndInto(i int32, mask []uint64, dst []int32) []int32 {
	if d.HasRowWords() && d.rowScanThreshold(i) {
		return d.rowMaskWords(i, mask, dst, false)
	}
	for _, u := range d.Row(i) {
		if TestBit(mask, u) {
			dst = append(dst, u)
		}
	}
	return dst
}

// rowMaskWords is the word-walk form of the masked row scans: row ∧ ¬mask
// (andNot) or row ∧ mask, whole words at a time, ascending.
func (d *Dense) rowMaskWords(i int32, mask []uint64, dst []int32, andNot bool) []int32 {
	if d.bits != nil {
		row := d.bits[int(i)*d.stride : (int(i)+1)*d.stride]
		for w, x := range row {
			if andNot {
				x &^= mask[w]
			} else {
				x &= mask[w]
			}
			dst = appendWordBits(dst, int32(w)<<6, x)
		}
		return dst
	}
	base := int(i) * d.bpr
	for b := 0; b < d.bpr; b++ {
		sum := d.summary[base+b]
		if sum == 0 {
			continue
		}
		ref := int(d.blockRef[base+b]) - 1
		block := d.blockWords[ref*blockWordsPerBlock : (ref+1)*blockWordsPerBlock]
		for sum != 0 {
			s := bits.TrailingZeros64(sum)
			sum &= sum - 1
			w := b*blockWordsPerBlock + s
			x := block[s]
			if andNot {
				x &^= mask[w]
			} else {
				x &= mask[w]
			}
			dst = appendWordBits(dst, int32(w)<<6, x)
		}
	}
	return dst
}

// WeightIdx returns the weight of edge {u,v} by dense index, or 0 if the
// edge is absent.
func (d *Dense) WeightIdx(u, v int32) int32 {
	if u == v {
		return 0
	}
	if j := d.searchRow(u, v); j >= 0 {
		return d.wt[j]
	}
	return 0
}

// searchRow binary-searches row u for v, returning the flat CSR position or
// -1.
func (d *Dense) searchRow(u, v int32) int {
	lo, hi := int(d.off[u]), int(d.off[u+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case d.nbr[mid] < v:
			lo = mid + 1
		case d.nbr[mid] > v:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// HasNode reports whether original id v is a vertex.
func (d *Dense) HasNode(v int) bool { _, ok := d.idx[v]; return ok }

// HasEdge reports whether the undirected edge {u,v} exists, by original id.
func (d *Dense) HasEdge(u, v int) bool {
	ui, ok := d.idx[u]
	if !ok {
		return false
	}
	vi, ok := d.idx[v]
	if !ok {
		return false
	}
	return d.HasEdgeIdx(ui, vi)
}

// Weight returns the weight of edge {u,v} by original id, or 0 if absent.
func (d *Dense) Weight(u, v int) int {
	ui, ok := d.idx[u]
	if !ok {
		return 0
	}
	vi, ok := d.idx[v]
	if !ok {
		return 0
	}
	return int(d.WeightIdx(ui, vi))
}

// Degree returns the degree of original id v, or 0 if absent.
func (d *Dense) Degree(v int) int {
	i, ok := d.idx[v]
	if !ok {
		return 0
	}
	return d.Deg(i)
}

// IsCliqueIDs reports whether every pair of the given original ids is
// adjacent. The empty set and singletons are cliques. Ids absent from the
// graph make the set a non-clique (they have no incident edges).
func (d *Dense) IsCliqueIDs(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !d.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// Edges returns all edges as original-id triples sorted by (U,V), exactly
// like Graph.Edges.
func (d *Dense) Edges() []Edge {
	out := make([]Edge, 0, d.numEdges)
	for i := 0; i < len(d.ids); i++ {
		row, wts := d.Row(int32(i)), d.WeightRow(int32(i))
		for j, u := range row {
			if int32(i) < u {
				out = append(out, Edge{U: d.ids[i], V: d.ids[u], W: int(wts[j])})
			}
		}
	}
	return out
}
