package graph

import (
	"slices"
	"sort"

	"parmem/internal/arena"
)

// Dense is a frozen, cache-friendly snapshot of a Graph, built once and then
// read by the hot phases (MCS-M ordering, urgency coloring, clique checks).
//
// Vertices are remapped onto the dense index range [0,n) in ascending
// original-id order, so index order and id order agree and every tie-break
// rule expressed as "lowest id first" in the map-backed algorithms is
// "lowest index first" here — the dense and map implementations are
// bit-identical by construction.
//
// Adjacency is stored twice, each form serving one access pattern:
//
//   - CSR (compressed sparse row): one flat neighbor array plus per-vertex
//     offsets, neighbors pre-sorted ascending at build time. Iterating a
//     neighborhood is a contiguous slice scan with zero allocation, where
//     Graph.Neighbors allocates and re-sorts on every call.
//   - A []uint64 bitset adjacency matrix for O(1) HasEdge, built only while
//     n <= DenseBitsetMaxN (above that the quadratic memory would dwarf the
//     win and HasEdge falls back to binary search in the CSR row of the
//     smaller-degree endpoint).
//
// Edge weights ride in a flat []int32 parallel to the neighbor array, and
// degrees are offset differences — no map lookups anywhere on the read path.
type Dense struct {
	ids []int         // index -> original id, ascending
	idx map[int]int32 // original id -> index

	off []int32 // CSR offsets; row i is nbr[off[i]:off[i+1]]
	nbr []int32 // neighbor indices, sorted ascending within each row
	wt  []int32 // edge weight parallel to nbr

	bits   []uint64 // adjacency bitset matrix, nil when n > DenseBitsetMaxN
	stride int      // uint64 words per bitset row

	numEdges int
}

// DenseBitsetMaxN bounds the vertex count up to which FromGraph materializes
// the bitset adjacency matrix. At the threshold the matrix occupies
// n*n/8 = 512 KiB — small enough to live in L2 while covering every conflict
// graph the paper's workloads produce by orders of magnitude.
const DenseBitsetMaxN = 2048

// FromGraph builds the dense snapshot of g. Later mutations of g are not
// reflected; callers freeze the graph first (every compiler phase does — the
// conflict graph never changes after construction).
func FromGraph(g *Graph) *Dense {
	return FromGraphScratch(g, nil)
}

// FromGraphScratch is FromGraph with the backing arrays (ids, index map,
// CSR offsets/neighbors/weights, bitset matrix) borrowed from sc. The
// returned Dense is only valid until sc is Reset or Released and must not
// escape that scope. A nil sc allocates fresh storage, identical to
// FromGraph.
func FromGraphScratch(g *Graph, sc *arena.Scratch) *Dense {
	n := len(g.adj)
	d := &Dense{
		ids: sc.Ints(n)[:0],
		idx: sc.IntInt32Map(n),
		off: sc.Int32s(n + 1),
	}
	for v := range g.adj {
		d.ids = append(d.ids, v)
	}
	sort.Ints(d.ids)
	for i, v := range d.ids {
		d.idx[v] = int32(i)
	}

	total := 0
	for i, v := range d.ids {
		deg := len(g.adj[v])
		total += deg
		d.off[i+1] = d.off[i] + int32(deg)
	}
	d.nbr = sc.Int32s(total)
	d.wt = sc.Int32s(total)
	d.numEdges = total / 2

	for i, v := range d.ids {
		row := d.nbr[d.off[i]:d.off[i]:d.off[i+1]]
		for u := range g.adj[v] {
			row = append(row, d.idx[u])
		}
		slices.Sort(row)
		for j, u := range row {
			d.wt[int(d.off[i])+j] = int32(g.adj[v][d.ids[u]])
		}
	}

	if n > 0 && n <= DenseBitsetMaxN {
		d.stride = (n + 63) / 64
		d.bits = sc.Uint64s(n * d.stride)
		for i := 0; i < n; i++ {
			for _, u := range d.Row(int32(i)) {
				d.bits[i*d.stride+int(u)/64] |= 1 << (uint(u) % 64)
			}
		}
	}
	return d
}

// N returns the number of vertices.
func (d *Dense) N() int { return len(d.ids) }

// NumEdges returns the number of undirected edges.
func (d *Dense) NumEdges() int { return d.numEdges }

// ID returns the original vertex id of dense index i.
func (d *Dense) ID(i int32) int { return d.ids[i] }

// IDs returns the original vertex ids in ascending order. The slice is the
// Dense's own storage; callers must not modify it.
func (d *Dense) IDs() []int { return d.ids }

// Index returns the dense index of original id v, or -1 if v is absent.
func (d *Dense) Index(v int) int32 {
	if i, ok := d.idx[v]; ok {
		return i
	}
	return -1
}

// Deg returns the degree of dense index i.
func (d *Dense) Deg(i int32) int { return int(d.off[i+1] - d.off[i]) }

// Row returns the neighbor indices of dense index i, sorted ascending. The
// slice aliases the CSR storage; callers must not modify it.
func (d *Dense) Row(i int32) []int32 { return d.nbr[d.off[i]:d.off[i+1]] }

// WeightRow returns the edge weights parallel to Row(i). The slice aliases
// the CSR storage; callers must not modify it.
func (d *Dense) WeightRow(i int32) []int32 { return d.wt[d.off[i]:d.off[i+1]] }

// HasEdgeIdx reports whether the undirected edge {u,v} exists, by dense
// index: one bitset probe when the matrix is materialized, otherwise a
// binary search in the smaller-degree endpoint's CSR row.
func (d *Dense) HasEdgeIdx(u, v int32) bool {
	if u == v {
		return false
	}
	if d.bits != nil {
		return d.bits[int(u)*d.stride+int(v)/64]&(1<<(uint(v)%64)) != 0
	}
	if d.Deg(v) < d.Deg(u) {
		u, v = v, u
	}
	return d.searchRow(u, v) >= 0
}

// WeightIdx returns the weight of edge {u,v} by dense index, or 0 if the
// edge is absent.
func (d *Dense) WeightIdx(u, v int32) int32 {
	if u == v {
		return 0
	}
	if j := d.searchRow(u, v); j >= 0 {
		return d.wt[j]
	}
	return 0
}

// searchRow binary-searches row u for v, returning the flat CSR position or
// -1.
func (d *Dense) searchRow(u, v int32) int {
	lo, hi := int(d.off[u]), int(d.off[u+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case d.nbr[mid] < v:
			lo = mid + 1
		case d.nbr[mid] > v:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// HasNode reports whether original id v is a vertex.
func (d *Dense) HasNode(v int) bool { _, ok := d.idx[v]; return ok }

// HasEdge reports whether the undirected edge {u,v} exists, by original id.
func (d *Dense) HasEdge(u, v int) bool {
	ui, ok := d.idx[u]
	if !ok {
		return false
	}
	vi, ok := d.idx[v]
	if !ok {
		return false
	}
	return d.HasEdgeIdx(ui, vi)
}

// Weight returns the weight of edge {u,v} by original id, or 0 if absent.
func (d *Dense) Weight(u, v int) int {
	ui, ok := d.idx[u]
	if !ok {
		return 0
	}
	vi, ok := d.idx[v]
	if !ok {
		return 0
	}
	return int(d.WeightIdx(ui, vi))
}

// Degree returns the degree of original id v, or 0 if absent.
func (d *Dense) Degree(v int) int {
	i, ok := d.idx[v]
	if !ok {
		return 0
	}
	return d.Deg(i)
}

// IsCliqueIDs reports whether every pair of the given original ids is
// adjacent. The empty set and singletons are cliques. Ids absent from the
// graph make the set a non-clique (they have no incident edges).
func (d *Dense) IsCliqueIDs(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !d.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// Edges returns all edges as original-id triples sorted by (U,V), exactly
// like Graph.Edges.
func (d *Dense) Edges() []Edge {
	out := make([]Edge, 0, d.numEdges)
	for i := 0; i < len(d.ids); i++ {
		row, wts := d.Row(int32(i)), d.WeightRow(int32(i))
		for j, u := range row {
			if int32(i) < u {
				out = append(out, Edge{U: d.ids[i], V: d.ids[u], W: int(wts[j])})
			}
		}
	}
	return out
}
