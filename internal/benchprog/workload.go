package benchprog

// Large synthetic assignment workloads for the scaling and blocked-bitset
// benchmarks. Unlike the MPL programs in this package, these generate raw
// instruction operand lists (value ids) fed straight into the assignment
// engine, so graph size, density and component count can be dialed far past
// what a compilable source program reaches — the chain family crosses the
// flat-bitset ceiling (2048 nodes) onto the blocked representation, and the
// cluster family exposes component-level parallelism to the worker pool.
//
// Both generators are deterministic: the same knobs always produce the same
// instruction stream, so they double as differential-test corpora (dense vs
// reference backend, parallel vs sequential engine).

// ChainInstrs builds `comps` disjoint chain-of-cliques components, each over
// n values: consecutive instructions of width `width` overlap in exactly one
// value, so every component is a connected chordal graph whose conflict
// graph has n nodes and whose atoms are the width-cliques themselves. With
// comps=1 and n past the flat-bitset ceiling this is the canonical
// blocked-bitset workload; width is the density knob (clique size, so it
// must stay at or below the module count for a conflict-free coloring to
// exist).
func ChainInstrs(comps, n, width int) [][]int {
	if width < 2 {
		width = 2
	}
	var out [][]int
	for c := 0; c < comps; c++ {
		base := c * n
		for lo := 0; lo < n-1; lo += width - 1 {
			hi := lo + width
			if hi > n {
				hi = n
			}
			in := make([]int, 0, width)
			for v := lo; v < hi; v++ {
				in = append(in, base+v+1)
			}
			out = append(out, in)
		}
	}
	return out
}

// ChainNodes returns the number of distinct values ChainInstrs(comps, n,
// width) touches — comps*n — so tests can assert the graph size they think
// they built.
func ChainNodes(comps, n int) int { return comps * n }

// ClusterInstrs builds `comps` disjoint circulant clusters of `per` values
// each, instruction width `width`: instruction i of a cluster reads values
// i..i+width-1 (mod per). Every cluster is one dense connected component and
// one atom, so the stream exposes exactly comps-way parallelism to both the
// per-atom coloring pool and the per-component duplication pool while each
// cluster stays conflict-heavy enough that the searches dominate. comps is
// the component-count knob, width the density knob.
func ClusterInstrs(comps, per, width int) [][]int {
	out := make([][]int, 0, comps*per)
	for c := 0; c < comps; c++ {
		base := c * per
		for i := 0; i < per; i++ {
			in := make([]int, 0, width)
			for j := 0; j < width; j++ {
				in = append(in, base+1+(i+j)%per)
			}
			out = append(out, in)
		}
	}
	return out
}
