package benchprog

import (
	"fmt"

	"parmem/internal/machine"
)

// Spec is one benchmark program: its MPL source and a semantic check that
// validates the simulator's final state against an independent Go
// computation of the same result.
type Spec struct {
	Name   string
	Source string
	Check  func(*machine.Result) error
}

// All returns the six benchmark programs of the paper's evaluation, in the
// order of Table 1.
func All() []Spec {
	return []Spec{
		{Name: "TAYLOR1", Source: Taylor1Source(), Check: CheckTaylor1},
		{Name: "TAYLOR2", Source: Taylor2Source(), Check: CheckTaylor2},
		{Name: "EXACT", Source: ExactSource(), Check: CheckExact},
		{Name: "FFT", Source: FFTSource(), Check: CheckFFT},
		{Name: "SORT", Source: SortSource(), Check: CheckSort},
		{Name: "COLOR", Source: ColorSource(), Check: CheckColor},
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("benchprog: unknown program %q", name)
}
