package benchprog

import (
	"testing"

	"parmem/internal/assign"
	"parmem/internal/dfa"
	"parmem/internal/lang"
	"parmem/internal/machine"
	"parmem/internal/sched"
)

// runSpec compiles, schedules, allocates and simulates one benchmark with
// the paper's machine shape (k modules) and returns the simulation result.
func runSpec(t *testing.T, spec Spec, k int, strategy assign.Strategy) *machine.Result {
	t.Helper()
	f, err := lang.Compile(spec.Source)
	if err != nil {
		t.Fatalf("%s: compile: %v", spec.Name, err)
	}
	if _, _, err := dfa.Rename(f); err != nil {
		t.Fatal(err)
	}
	p, err := sched.Schedule(f, sched.Config{Modules: k, Units: k})
	if err != nil {
		t.Fatalf("%s: schedule: %v", spec.Name, err)
	}
	cfg := dfa.BuildCFG(f)
	regs := cfg.FindRegions()
	prog := assign.Program{
		Instrs:   p.Instructions(),
		RegionOf: p.RegionOf,
		Global:   dfa.GlobalValues(f, regs),
	}
	al, err := assign.Assign(prog, assign.Options{K: k, Strategy: strategy})
	if err != nil {
		t.Fatalf("%s: assign: %v", spec.Name, err)
	}
	if bad := assign.Verify(prog, al); bad != nil {
		t.Fatalf("%s: residual conflicts in instructions %v", spec.Name, bad)
	}
	res, err := machine.Run(p, al.Copies, machine.Options{})
	if err != nil {
		t.Fatalf("%s: run: %v", spec.Name, err)
	}
	return res
}

// TestAllProgramsCorrect is the load-bearing end-to-end test: all six paper
// benchmarks compile, schedule, allocate conflict-free, execute on the
// simulated machine, and produce semantically correct results.
func TestAllProgramsCorrect(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res := runSpec(t, spec, 8, assign.STOR1)
			if err := spec.Check(res); err != nil {
				t.Fatal(err)
			}
			if res.ScalarConflicts != 0 {
				t.Fatalf("scalar conflicts = %d under a verified allocation", res.ScalarConflicts)
			}
		})
	}
}

// TestAllProgramsAllStrategies runs every benchmark under STOR2 and STOR3:
// restricted strategies change duplication, never correctness.
func TestAllProgramsAllStrategies(t *testing.T) {
	for _, spec := range All() {
		for _, s := range []assign.Strategy{assign.STOR2, assign.STOR3} {
			spec, s := spec, s
			t.Run(spec.Name+"/"+s.String(), func(t *testing.T) {
				res := runSpec(t, spec, 8, s)
				if err := spec.Check(res); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestFourModules reruns the suite with k=4 (Table 2's second machine).
func TestFourModules(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res := runSpec(t, spec, 4, assign.STOR1)
			if err := spec.Check(res); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("FFT"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("unknown name must fail")
	}
}

func TestSpeedupsAreParallel(t *testing.T) {
	// The paper reports 64-300% overall speedup; our machine should at
	// least beat sequential execution on every benchmark.
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res := runSpec(t, spec, 8, assign.STOR1)
			if s := res.Speedup(); s <= 1.0 {
				t.Fatalf("speedup = %.2f, want > 1", s)
			}
		})
	}
}

func TestSyntheticCompilesAndRuns(t *testing.T) {
	for _, units := range []int{1, 4} {
		src := Synthetic(units)
		f, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("units=%d: %v", units, err)
		}
		if _, _, err := dfa.Rename(f); err != nil {
			t.Fatal(err)
		}
		p, err := sched.Schedule(f, sched.Config{Modules: 8, Units: 8})
		if err != nil {
			t.Fatal(err)
		}
		prog := assign.Program{Instrs: p.Instructions(), RegionOf: p.RegionOf}
		al, err := assign.Assign(prog, assign.Options{K: 8})
		if err != nil {
			t.Fatal(err)
		}
		res, err := machine.Run(p, al.Copies, machine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Unit u sums i*s+t over 16 elements; spot-check unit 0:
		// s0=1, t0=3 -> sum(i*1+3) = 120+48 = 168 -> t0 = 68.
		if v, _ := res.Scalar("t0"); v != 68 {
			t.Fatalf("units=%d: t0 = %v, want 68", units, v)
		}
	}
}
