package benchprog

import (
	"fmt"
	"sort"

	"parmem/internal/machine"
)

const sortN = 128 // elements to sort

// lcg reproduces the MPL programs' pseudo-random sequence in Go.
func lcg(seed *int64) int64 {
	*seed = (*seed*1103515245 + 12345) % 2147483648
	return *seed
}

// SortSource returns SORT: an iterative quicksort (explicit stack, Lomuto
// partition) over data produced by a linear congruential generator.
func SortSource() string {
	n := sortN
	return fmt.Sprintf(`
program sort;
var a: array[%d] of int;
var lo, hi: array[64] of int;
var seed, top, l, h, pivot, store, tmp: int;
begin
  seed := 42;
  for i := 0 to %d do
    seed := (seed * 1103515245 + 12345) %% 2147483648;
    a[i] := seed %% 10000;
  end
  top := 0;
  lo[0] := 0;
  hi[0] := %d;
  while top >= 0 do
    l := lo[top];
    h := hi[top];
    top := top - 1;
    if l < h then
      pivot := a[h];
      store := l;
      for i := l to h - 1 do
        if a[i] < pivot then
          tmp := a[i];
          a[i] := a[store];
          a[store] := tmp;
          store := store + 1;
        end
      end
      tmp := a[h];
      a[h] := a[store];
      a[store] := tmp;
      top := top + 1;
      lo[top] := l;
      hi[top] := store - 1;
      top := top + 1;
      lo[top] := store + 1;
      hi[top] := h;
    end
  end
end
`, n, n-1, n-1)
}

// CheckSort verifies the array is the sorted LCG sequence.
func CheckSort(res *machine.Result) error {
	a, ok := res.Array("a")
	if !ok {
		return fmt.Errorf("sort: array missing")
	}
	seed := int64(42)
	want := make([]int, sortN)
	for i := range want {
		want[i] = int(lcg(&seed) % 10000)
	}
	sort.Ints(want)
	for i := range want {
		if int(a[i]) != want[i] {
			return fmt.Errorf("sort: a[%d] = %v, want %d", i, a[i], want[i])
		}
	}
	return nil
}

const (
	colorN = 20 // graph vertices
	colorK = 8  // colors available (the machine's module count)
)

// ColorSource returns COLOR: the paper's own graph-coloring heuristic as a
// benchmark — a pseudo-random graph is colored by repeatedly selecting the
// uncolored vertex with the highest saturation (colored-neighbor count,
// ties by degree) and giving it the lowest available color.
func ColorSource() string {
	n, k := colorN, colorK
	return fmt.Sprintf(`
program color;
var adj: array[%d] of int;
var color, degree: array[%d] of int;
var used: array[%d] of int;
var seed, best, bestsat, bestdeg, sat, c, v, picked: int;
begin
  -- pseudo-random graph: edge when lcg value below threshold
  seed := 7;
  for i := 0 to %d do
    degree[i] := 0;
    color[i] := 0 - 1;
  end
  for i := 0 to %d do
    for j := i + 1 to %d do
      seed := (seed * 1103515245 + 12345) %% 2147483648;
      if seed %% 100 < 30 then
        adj[i*%d+j] := 1;
        adj[j*%d+i] := 1;
        degree[i] := degree[i] + 1;
        degree[j] := degree[j] + 1;
      else
        adj[i*%d+j] := 0;
        adj[j*%d+i] := 0;
      end
    end
  end
  -- saturation-driven greedy coloring
  for picked := 1 to %d do
    best := 0 - 1;
    bestsat := 0 - 1;
    bestdeg := 0 - 1;
    for v := 0 to %d do
      if color[v] < 0 then
        sat := 0;
        for j := 0 to %d do
          if adj[v*%d+j] = 1 and color[j] >= 0 then
            sat := sat + 1;
          end
        end
        if (sat > bestsat) or (sat = bestsat and degree[v] > bestdeg) then
          best := v;
          bestsat := sat;
          bestdeg := degree[v];
        end
      end
    end
    for c := 0 to %d do
      used[c] := 0;
    end
    for j := 0 to %d do
      if adj[best*%d+j] = 1 and color[j] >= 0 then
        used[color[j]] := 1;
      end
    end
    color[best] := 0 - 2;
    for c := 0 to %d do
      if used[%d - c] = 0 then
        color[best] := %d - c;
      end
    end
  end
end
`, n*n, n, k,
		n-1, n-1, n-1, n, n, n, n, // graph build
		n, n-1, n-1, n, // selection
		k-1, n-1, n, // used computation
		k-1, k-1, k-1, // lowest free color (scan downward, keep overwriting)
	)
}

// CheckColor rebuilds the graph in Go and verifies the coloring is proper
// and every vertex got a color (k=8 suffices for this graph).
func CheckColor(res *machine.Result) error {
	colors, ok := res.Array("color")
	if !ok {
		return fmt.Errorf("color: array missing")
	}
	seed := int64(7)
	adj := make([][]bool, colorN)
	for i := range adj {
		adj[i] = make([]bool, colorN)
	}
	for i := 0; i < colorN; i++ {
		for j := i + 1; j < colorN; j++ {
			if lcg(&seed)%100 < 30 {
				adj[i][j], adj[j][i] = true, true
			}
		}
	}
	for v := 0; v < colorN; v++ {
		c := int(colors[v])
		if c < 0 || c >= colorK {
			return fmt.Errorf("color: vertex %d has color %d", v, c)
		}
		for u := v + 1; u < colorN; u++ {
			if adj[v][u] && int(colors[u]) == c {
				return fmt.Errorf("color: adjacent vertices %d and %d share color %d", v, u, c)
			}
		}
	}
	return nil
}
