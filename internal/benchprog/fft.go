package benchprog

import (
	"fmt"
	"math"

	"parmem/internal/machine"
)

const fftN = 16 // transform size (power of two)

// FFTSource returns FFT: an iterative radix-2 Cooley-Tukey transform of
// size 16. MPL has no trigonometric builtins, so the base twiddle factor is
// computed from Taylor series of cos and sin, and the twiddle table by
// complex rotation — faithful to how the original machine would have done
// it, and a rich source of scalar temporaries.
func FFTSource() string {
	n := fftN
	half := n / 2
	bits := 0
	for 1<<bits < n {
		bits++
	}
	return fmt.Sprintf(`
program fft;
var xre, xim: array[%d] of float;
var wre, wim: array[%d] of float;
var theta, term, cosv, sinv, tr, ti, ur, ui, vr, vi: float;
var rev, bit, idx, len, halfl, step, pos, tw: int;
begin
  -- input signal
  for i := 0 to %d do
    xre[i] := (i %% 4) + 1;
    xim[i] := 0.0;
  end
  -- base angle -2*pi/N
  theta := 0.0 - 2.0 * 3.14159265358979 / %d;
  -- cos(theta), sin(theta) by Taylor series
  cosv := 1.0;
  term := 1.0;
  for m := 1 to 10 do
    term := 0.0 - term * theta * theta / ((2*m - 1) * (2*m));
    cosv := cosv + term;
  end
  sinv := theta;
  term := theta;
  for m := 1 to 10 do
    term := 0.0 - term * theta * theta / ((2*m) * (2*m + 1));
    sinv := sinv + term;
  end
  -- twiddle table: w[j] = (cos,sin)^j
  wre[0] := 1.0;
  wim[0] := 0.0;
  for j := 1 to %d do
    wre[j] := wre[j-1] * cosv - wim[j-1] * sinv;
    wim[j] := wre[j-1] * sinv + wim[j-1] * cosv;
  end
  -- bit-reversal permutation
  for i := 0 to %d do
    rev := 0;
    idx := i;
    for b := 1 to %d do
      bit := idx %% 2;
      rev := rev * 2 + bit;
      idx := idx / 2;
    end
    if rev > i then
      tr := xre[i];
      xre[i] := xre[rev];
      xre[rev] := tr;
      ti := xim[i];
      xim[i] := xim[rev];
      xim[rev] := ti;
    end
  end
  -- butterflies
  len := 2;
  while len <= %d do
    halfl := len / 2;
    step := %d / len;
    pos := 0;
    while pos < %d do
      for j := 0 to halfl - 1 do
        tw := j * step;
        ur := xre[pos+j];
        ui := xim[pos+j];
        vr := xre[pos+j+halfl] * wre[tw] - xim[pos+j+halfl] * wim[tw];
        vi := xre[pos+j+halfl] * wim[tw] + xim[pos+j+halfl] * wre[tw];
        xre[pos+j] := ur + vr;
        xim[pos+j] := ui + vi;
        xre[pos+j+halfl] := ur - vr;
        xim[pos+j+halfl] := ui - vi;
      end
      pos := pos + len;
    end
    len := len * 2;
  end
end
`, n, half, n-1, n, half-1, n-1, bits, n, n, n)
}

// CheckFFT compares the transform with a direct DFT computed in Go.
func CheckFFT(res *machine.Result) error {
	re, ok1 := res.Array("xre")
	im, ok2 := res.Array("xim")
	if !ok1 || !ok2 {
		return fmt.Errorf("fft: output arrays missing")
	}
	for k := 0; k < fftN; k++ {
		var wr, wi float64
		for t := 0; t < fftN; t++ {
			x := float64(t%4 + 1)
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(fftN)
			wr += x * math.Cos(ang)
			wi += x * math.Sin(ang)
		}
		if math.Abs(re[k]-wr) > 1e-6 || math.Abs(im[k]-wi) > 1e-6 {
			return fmt.Errorf("fft: bin %d = (%g,%g), want (%g,%g)", k, re[k], im[k], wr, wi)
		}
	}
	return nil
}
