package benchprog

import (
	"fmt"
	"strings"
)

// Synthetic generates an MPL program of parameterized size for scaling
// experiments: `units` independent computation units, each declaring its
// own scalars, filling a private array, and reducing it. The conflict
// graph grows linearly with units, so assignment-cost scaling is measured
// on realistic (loop + array + scalar-temp) code rather than random
// instruction soup.
func Synthetic(units int) string {
	var sb strings.Builder
	sb.WriteString("program synthetic;\n")
	for u := 0; u < units; u++ {
		fmt.Fprintf(&sb, "var s%d, t%d: int;\n", u, u)
		fmt.Fprintf(&sb, "var arr%d: array[16] of int;\n", u)
	}
	sb.WriteString("begin\n")
	for u := 0; u < units; u++ {
		fmt.Fprintf(&sb, `
  s%[1]d := %[1]d + 1;
  t%[1]d := s%[1]d * 3;
  for i%[1]d := 0 to 15 do
    arr%[1]d[i%[1]d] := i%[1]d * s%[1]d + t%[1]d;
  end
  s%[1]d := 0;
  for i%[1]d := 0 to 15 do
    s%[1]d := s%[1]d + arr%[1]d[i%[1]d];
  end
  if s%[1]d > 100 then
    t%[1]d := s%[1]d - 100;
  else
    t%[1]d := 100 - s%[1]d;
  end
`, u)
	}
	sb.WriteString("end\n")
	return sb.String()
}
