// Package benchprog contains the six benchmark programs of the paper's
// evaluation (§3), written in MPL: TAYLOR1 and TAYLOR2 (Taylor coefficients
// of complex and real analytic functions), EXACT (linear equations in
// residue arithmetic), FFT, SORT (quicksort) and COLOR (the paper's own
// graph-coloring heuristic). Each program carries a semantic check that
// validates the simulator's final state against an independent Go
// computation.
package benchprog

import (
	"fmt"
	"math"

	"parmem/internal/machine"
)

// taylor1N is the number of complex Taylor coefficients TAYLOR1 computes.
const taylor1N = 24

// Taylor1Source returns TAYLOR1: the Taylor coefficients of two complex
// exponentials e^{az} and e^{bz} by recurrence, and of their product by
// Cauchy convolution. Complex arithmetic over scalar re/im pairs makes this
// the most scalar-temp-heavy program of the suite.
func Taylor1Source() string {
	return fmt.Sprintf(`
program taylor1;
var cre, cim, dre, dim, pre, pim: array[%d] of float;
var are, aim, bre, bim, tre, tim, invn: float;
begin
  are := 0.3;  aim := 0.7;
  bre := -0.2; bim := 0.5;
  cre[0] := 1.0; cim[0] := 0.0;
  dre[0] := 1.0; dim[0] := 0.0;
  for n := 1 to %d do
    invn := 1.0 / n;
    tre := cre[n-1]*are - cim[n-1]*aim;
    tim := cre[n-1]*aim + cim[n-1]*are;
    cre[n] := tre * invn;
    cim[n] := tim * invn;
    tre := dre[n-1]*bre - dim[n-1]*bim;
    tim := dre[n-1]*bim + dim[n-1]*bre;
    dre[n] := tre * invn;
    dim[n] := tim * invn;
  end
  for n := 0 to %d do
    tre := 0.0;
    tim := 0.0;
    for j := 0 to n do
      tre := tre + cre[j]*dre[n-j] - cim[j]*dim[n-j];
      tim := tim + cre[j]*dim[n-j] + cim[j]*dre[n-j];
    end
    pre[n] := tre;
    pim[n] := tim;
  end
end
`, taylor1N, taylor1N-1, taylor1N-1)
}

// CheckTaylor1 verifies p against the identity e^{az}·e^{bz} = e^{(a+b)z}:
// coefficient n of the product must be (a+b)^n/n!.
func CheckTaylor1(res *machine.Result) error {
	pre, ok1 := res.Array("pre")
	pim, ok2 := res.Array("pim")
	if !ok1 || !ok2 {
		return fmt.Errorf("taylor1: output arrays missing")
	}
	sre, sim := 0.3+(-0.2), 0.7+0.5
	// c_n = (a+b)^n / n! by recurrence.
	cr, ci := 1.0, 0.0
	for n := 0; n < taylor1N; n++ {
		if math.Abs(pre[n]-cr) > 1e-9 || math.Abs(pim[n]-ci) > 1e-9 {
			return fmt.Errorf("taylor1: coefficient %d = (%g,%g), want (%g,%g)",
				n, pre[n], pim[n], cr, ci)
		}
		nr := (cr*sre - ci*sim) / float64(n+1)
		ni := (cr*sim + ci*sre) / float64(n+1)
		cr, ci = nr, ni
	}
	return nil
}

// taylor2N is the number of real Taylor coefficients TAYLOR2 computes.
const taylor2N = 20

// Taylor2Source returns TAYLOR2: real Taylor series of e^x and cos x, their
// Cauchy product (the series of e^x·cos x), and a Horner evaluation of the
// product at x = 0.5.
func Taylor2Source() string {
	return fmt.Sprintf(`
program taylor2;
var e, c, p: array[%d] of float;
var acc, x, s: float;
begin
  e[0] := 1.0;
  for n := 1 to %d do
    e[n] := e[n-1] / n;
  end
  c[0] := 1.0;
  c[1] := 0.0;
  for n := 2 to %d do
    c[n] := 0.0 - c[n-2] / ((n-1) * n);
    n := n + 1;
    if n <= %d then
      c[n] := 0.0;
    end
  end
  for n := 0 to %d do
    acc := 0.0;
    for j := 0 to n do
      acc := acc + e[j] * c[n-j];
    end
    p[n] := acc;
  end
  x := 0.5;
  s := 0.0;
  for n := 0 to %d do
    s := s * x + p[%d - n];
  end
end
`, taylor2N, taylor2N-1, taylor2N-1, taylor2N-1, taylor2N-1, taylor2N-1, taylor2N-1)
}

// CheckTaylor2 verifies the product coefficients and the Horner value
// against a direct Go computation of the e^x·cos x series.
func CheckTaylor2(res *machine.Result) error {
	p, ok := res.Array("p")
	if !ok {
		return fmt.Errorf("taylor2: output array missing")
	}
	e := make([]float64, taylor2N)
	c := make([]float64, taylor2N)
	e[0], c[0] = 1, 1
	for n := 1; n < taylor2N; n++ {
		e[n] = e[n-1] / float64(n)
		if n%2 == 0 {
			c[n] = -c[n-2] / float64((n-1)*n)
		}
	}
	horner := 0.0
	for n := 0; n < taylor2N; n++ {
		want := 0.0
		for j := 0; j <= n; j++ {
			want += e[j] * c[n-j]
		}
		if math.Abs(p[n]-want) > 1e-9 {
			return fmt.Errorf("taylor2: p[%d] = %g, want %g", n, p[n], want)
		}
	}
	for n := taylor2N - 1; n >= 0; n-- {
		want := 0.0
		for j := 0; j <= n; j++ {
			want += e[j] * c[n-j]
		}
		horner = horner*0.5 + want
	}
	s, _ := res.Scalar("s")
	if math.Abs(s-horner) > 1e-9 {
		return fmt.Errorf("taylor2: Horner value %g, want %g", s, horner)
	}
	// Sanity: the series truly approximates e^x cos x at 0.5.
	if math.Abs(horner-math.Exp(0.5)*math.Cos(0.5)) > 1e-6 {
		return fmt.Errorf("taylor2: series value %g far from e^0.5·cos 0.5", horner)
	}
	return nil
}
