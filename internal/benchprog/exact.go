package benchprog

import (
	"fmt"

	"parmem/internal/machine"
)

const (
	exactN = 6     // system size
	exactP = 65537 // prime modulus of the residue arithmetic
)

// ExactSource returns EXACT: solving a linear system with residue
// arithmetic modulo a prime, as the paper's EXACT benchmark does. The
// program builds a guaranteed-nonsingular system A = L·U (unit lower ×
// upper with nonzero diagonal) and b = A·x* for a known x*, then runs
// Gaussian elimination without pivoting (safe for an LU product) using
// Fermat modular inverses computed by square-and-multiply, and back
// substitution — all in exact integer arithmetic mod p.
func ExactSource() string {
	n, p := exactN, exactP
	return fmt.Sprintf(`
program exact;
var l, u, a: array[%d] of int;
var b, x: array[%d] of int;
var acc, f, t, base, e, inv, piv: int;
begin
  -- unit lower-triangular L and upper-triangular U with nonzero diagonal
  for i := 0 to %d do
    for j := 0 to %d do
      l[i*%d+j] := 0;
      u[i*%d+j] := 0;
    end
  end
  for i := 0 to %d do
    l[i*%d+i] := 1;
    u[i*%d+i] := (i*i + 3*i + 7) %% %d;
    for j := 0 to i-1 do
      l[i*%d+j] := (5*i + 11*j + 13) %% %d;
    end
    for j := i+1 to %d do
      u[i*%d+j] := (7*i + 3*j + 1) %% %d;
    end
  end
  -- A = L*U mod p
  for i := 0 to %d do
    for j := 0 to %d do
      acc := 0;
      for q := 0 to %d do
        acc := (acc + l[i*%d+q] * u[q*%d+j]) %% %d;
      end
      a[i*%d+j] := acc;
    end
  end
  -- b = A * xtrue, xtrue[i] = i + 1
  for i := 0 to %d do
    acc := 0;
    for j := 0 to %d do
      acc := (acc + a[i*%d+j] * (j + 1)) %% %d;
    end
    b[i] := acc;
  end
  -- forward elimination mod p
  for q := 0 to %d do
    piv := a[q*%d+q];
    -- inv = piv^(p-2) mod p by square-and-multiply
    e := %d - 2;
    base := piv;
    inv := 1;
    while e > 0 do
      if e %% 2 = 1 then
        inv := (inv * base) %% %d;
      end
      base := (base * base) %% %d;
      e := e / 2;
    end
    for i := q+1 to %d do
      f := (a[i*%d+q] * inv) %% %d;
      for j := q to %d do
        t := (a[i*%d+j] - f * a[q*%d+j]) %% %d;
        if t < 0 then
          t := t + %d;
        end
        a[i*%d+j] := t;
      end
      t := (b[i] - f * b[q]) %% %d;
      if t < 0 then
        t := t + %d;
      end
      b[i] := t;
    end
  end
  -- back substitution
  for q := 0 to %d do
    i := %d - q;
    acc := b[i];
    for j := i+1 to %d do
      acc := (acc - a[i*%d+j] * x[j]) %% %d;
      if acc < 0 then
        acc := acc + %d;
      end
    end
    piv := a[i*%d+i];
    e := %d - 2;
    base := piv;
    inv := 1;
    while e > 0 do
      if e %% 2 = 1 then
        inv := (inv * base) %% %d;
      end
      base := (base * base) %% %d;
      e := e / 2;
    end
    x[i] := (acc * inv) %% %d;
  end
end
`,
		n*n, n, // array sizes
		n-1, n-1, n, n, // zero fill
		n-1, n, n, p, n, p, n-1, n, p, // L and U fill
		n-1, n-1, n-1, n, n, p, n, // A = L*U
		n-1, n-1, n, p, // b
		n-1, n, p, p, p, // pivot + inverse
		n-1, n, p, n-1, n, n, p, p, n, p, p, // elimination
		n-1, n-1, n-1, n, p, p, n, p, p, p, p, // back substitution
	)
}

// CheckExact verifies x == (1, 2, ..., n) — the planted solution.
func CheckExact(res *machine.Result) error {
	x, ok := res.Array("x")
	if !ok {
		return fmt.Errorf("exact: solution array missing")
	}
	for i := 0; i < exactN; i++ {
		if int(x[i]) != i+1 {
			return fmt.Errorf("exact: x[%d] = %v, want %d", i, x[i], i+1)
		}
	}
	return nil
}
