package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parmem/internal/telemetry"
)

// TestFlightRingAlwaysOn checks the base contract: every completed request
// lands in the ring with its op, code, latency and echoed trace, telemetry
// or not.
func TestFlightRingAlwaysOn(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialTest(t, s)
	ctx := context.Background()

	if _, err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	tc := telemetry.NewTrace()
	resp, err := c.Assign(telemetry.ContextWithTrace(ctx, tc), AssignRequest{
		Instrs: [][]int{{0, 1}, {1, 2}}, K: 4,
	})
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("assign: %+v, %v", resp, err)
	}
	if resp.Trace != tc.TraceID() {
		t.Fatalf("assign response echoed trace %q, want %q", resp.Trace, tc.TraceID())
	}

	recs := s.FlightRecords()
	if len(recs) != 2 {
		t.Fatalf("flight ring has %d records, want 2", len(recs))
	}
	last := recs[len(recs)-1]
	if last.Op != "assign" || last.Code != string(CodeOK) || last.Trace != tc.TraceID() {
		t.Fatalf("flight record = %+v", last)
	}
	if last.LatencyUS <= 0 {
		t.Fatalf("flight record latency = %d, want > 0", last.LatencyUS)
	}
}

// TestFlightSlowTrigger drives one request over an absurdly low latency
// threshold and requires a capture: correct reason, the trigger record, a
// ring snapshot, the request's span tree, a spool file, and retrievability
// over /debug/flight.
func TestFlightSlowTrigger(t *testing.T) {
	dir := t.TempDir()
	rec := telemetry.New()
	s := newTestServer(t, Config{
		Telemetry:     rec,
		FlightLatency: time.Nanosecond, // everything is slow
		FlightDir:     dir,
	})
	c := dialTest(t, s)

	tc := telemetry.NewTrace()
	resp, err := c.Assign(telemetry.ContextWithTrace(context.Background(), tc), AssignRequest{
		Instrs: [][]int{{0, 1, 2}, {1, 2, 3}}, K: 4,
	})
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("assign: %+v, %v", resp, err)
	}

	caps := s.FlightCaptures()
	if len(caps) != 1 {
		t.Fatalf("captures = %d, want 1", len(caps))
	}
	fc := caps[0]
	if fc.Reason != flightSlow {
		t.Fatalf("capture reason = %q, want %q", fc.Reason, flightSlow)
	}
	if fc.Trigger.Trace != tc.TraceID() || fc.Trigger.Op != "assign" {
		t.Fatalf("capture trigger = %+v", fc.Trigger)
	}
	if len(fc.Ring) == 0 {
		t.Fatal("capture carries no ring snapshot")
	}
	if len(fc.Spans) == 0 {
		t.Fatal("capture carries no span tree")
	}
	for _, sp := range fc.Spans {
		if sp.Trace != tc.TraceID() {
			t.Fatalf("capture span %q belongs to trace %q, want %q", sp.Name, sp.Trace, tc.TraceID())
		}
	}
	// The rpc root span and at least the engine's assign root must be there.
	names := map[string]bool{}
	for _, sp := range fc.Spans {
		names[sp.Name] = true
	}
	if !names["rpc_assign"] || !names["assign"] {
		t.Fatalf("capture span names = %v, want rpc_assign and assign", names)
	}

	// Spooled to disk under the capture's own name.
	if _, err := os.Stat(filepath.Join(dir, fc.Name)); err != nil {
		t.Fatalf("spool file: %v", err)
	}
	if !strings.Contains(fc.Name, "-slow-") {
		t.Fatalf("spool name %q does not embed the reason", fc.Name)
	}

	// Served over the telemetry endpoint.
	ts, err := rec.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	s.MountHealth(ts)

	res, err := http.Get("http://" + ts.Addr() + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var idx struct {
		Ring     []FlightRecord `json:"ring"`
		Captures []struct {
			Name string `json:"name"`
		} `json:"captures"`
		Spooled []string `json:"spooled"`
	}
	err = json.NewDecoder(res.Body).Decode(&idx)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Captures) != 1 || idx.Captures[0].Name != fc.Name {
		t.Fatalf("/debug/flight captures = %+v", idx.Captures)
	}
	if len(idx.Spooled) != 1 || idx.Spooled[0] != fc.Name {
		t.Fatalf("/debug/flight spooled = %v", idx.Spooled)
	}

	res, err = http.Get("http://" + ts.Addr() + "/debug/flight/" + fc.Name)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("capture fetch: status %d, %v", res.StatusCode, err)
	}
	var got FlightCapture
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("capture body: %v", err)
	}
	if got.Name != fc.Name || got.Trigger.Trace != tc.TraceID() {
		t.Fatalf("served capture = %+v", got)
	}

	// Traversal attempts and unknown names are rejected.
	res, err = http.Get("http://" + ts.Addr() + "/debug/flight/..%2fserver.go")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode == http.StatusOK {
		t.Fatal("path traversal served a file")
	}
}

// TestFlightThrottleAndEviction floods the slow trigger and checks the
// per-reason throttle keeps captures bounded, then verifies spool eviction
// keeps at most FlightMaxCaptures files.
func TestFlightThrottleAndEviction(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{
		FlightLatency:     time.Nanosecond,
		FlightMinInterval: time.Hour, // after the first capture, throttle everything
		FlightDir:         dir,
		FlightMaxCaptures: 2,
	})
	c := dialTest(t, s)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := c.Ping(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.FlightCaptures()); got != 1 {
		t.Fatalf("captures after throttle = %d, want 1", got)
	}
	names := spoolNames(dir)
	if len(names) != 1 {
		t.Fatalf("spool files = %v, want 1", names)
	}
}

// TestFlightShedTrigger parks one request in the only admission slot and
// checks that a shed request (typed RESOURCE_EXHAUSTED) triggers a capture
// with the shed reason even with the latency trigger disabled.
func TestFlightShedTrigger(t *testing.T) {
	release := parkAdmitted(t)
	rec := telemetry.New()
	s := newTestServer(t, Config{
		MaxInFlight:     1,
		MaxQueue:        -1, // no queue: the second concurrent request sheds
		PerConnInFlight: 4,
		FlightLatency:   -1, // latency trigger off; only the shed may fire
		Telemetry:       rec,
	})
	ctx := context.Background()

	holder := dialTest(t, s)
	parked := make(chan outcomeResp, 1)
	go func() {
		resp, err := holder.Compile(ctx, CompileRequest{Src: testSrc, DeadlineMS: 10_000})
		parked <- outcomeResp{resp, err}
	}()
	waitGauge(t, rec, "parmem_server_inflight", 1)

	probe := dialTest(t, s)
	tc := telemetry.NewTrace()
	resp, err := probe.Compile(telemetry.ContextWithTrace(ctx, tc), CompileRequest{Src: testSrc})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeResourceExhausted {
		t.Fatalf("want RESOURCE_EXHAUSTED while the slot is held, got %+v", resp)
	}
	if resp.Trace != tc.TraceID() {
		t.Fatalf("shed response echoed trace %q, want %q", resp.Trace, tc.TraceID())
	}

	release()
	o := <-parked
	if o.err != nil || o.resp.Code != CodeOK {
		t.Fatalf("parked request should complete once released: %+v, %v", o.resp, o.err)
	}

	var shedCap *FlightCapture
	for _, fc := range s.FlightCaptures() {
		if fc.Reason == flightShed {
			shedCap = fc
		}
	}
	if shedCap == nil {
		t.Fatalf("no shed-reason capture; captures = %d", len(s.FlightCaptures()))
	}
	if shedCap.Trigger.Trace != tc.TraceID() || shedCap.Trigger.Code != string(CodeResourceExhausted) {
		t.Fatalf("shed capture trigger = %+v", shedCap.Trigger)
	}
	if got := rec.MetricsSnapshot()[`parmem_server_flight_captures_total{reason="shed"}`]; got == 0 {
		t.Fatal("flight capture counter not recorded")
	}
}
