// Package server is the network face of the assignment engine: a TCP
// daemon (parmemd) speaking a length-prefixed framed protocol that
// multiplexes concurrent compile/assign requests over the shared worker
// pool, allocation cache and scratch arenas.
//
// Robustness is the organizing principle, not the plumbing. Every request
// carries a deadline and a search budget mapped onto the engine's
// ctx/budget machinery; a bounded admission gate sheds excess load with a
// typed RESOURCE_EXHAUSTED response instead of queueing unboundedly or
// hanging; a poisoned request (internal invariant panic) comes back as a
// typed INTERNAL response while the process and its sibling connections
// keep serving; malformed, oversized or truncated frames are rejected
// without tearing down the listener; and SIGTERM triggers a graceful
// drain — stop accepting, finish or deadline-cancel in-flight work, write
// every pending response, then exit. The soak harness (soak.go) proves
// all of it under injected faults.
//
// This file defines the wire protocol. A frame is a fixed 16-byte header
// followed by a JSON payload:
//
//	offset  size  field
//	0       2     magic 0x504D ("PM")
//	2       1     version (1)
//	3       1     op
//	4       8     request id (echoed verbatim in the response)
//	12      4     payload length (bounded by the server's frame cap)
//
// Integers are big-endian. Requests and responses share the framing; a
// response's op is the request's op with the high bit set. Request ids
// are chosen by the client and only need to be unique per connection,
// which is what lets one connection carry many requests concurrently.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire constants.
const (
	Magic   = 0x504D // "PM"
	Version = 1
	// HeaderLen is the fixed frame header size in bytes.
	HeaderLen = 16
	// DefaultMaxFrame bounds a frame's payload unless Config overrides it.
	DefaultMaxFrame = 4 << 20
)

// Op identifies a request kind. Responses echo the request op with the
// high bit set.
type Op uint8

// Request ops.
const (
	OpPing    Op = 1 // liveness + drain state probe; empty payload
	OpCompile Op = 2 // CompileRequest -> Response with an AllocSummary
	OpAssign  Op = 3 // AssignRequest -> Response with an AllocSummary
	OpBatch   Op = 4 // BatchRequest  -> Response with per-item results
	OpDelta   Op = 5 // DeltaRequest  -> Response patched from a held base

	respFlag Op = 0x80
)

// Response returns the response op for a request op.
func (o Op) Response() Op { return o | respFlag }

// IsResponse reports whether o is a response op.
func (o Op) IsResponse() bool { return o&respFlag != 0 }

// Request returns the request op a response op answers.
func (o Op) Request() Op { return o &^ respFlag }

// String names the op for logs and metric labels.
func (o Op) String() string {
	suffix := ""
	r := o
	if o.IsResponse() {
		suffix = "+resp"
		r = o.Request()
	}
	switch r {
	case OpPing:
		return "ping" + suffix
	case OpCompile:
		return "compile" + suffix
	case OpAssign:
		return "assign" + suffix
	case OpBatch:
		return "batch" + suffix
	case OpDelta:
		return "delta" + suffix
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// knownRequest reports whether o is an op the server handles.
func knownRequest(o Op) bool {
	switch o {
	case OpPing, OpCompile, OpAssign, OpBatch, OpDelta:
		return true
	}
	return false
}

// Code classifies a response. The daemon never answers a well-framed
// request with anything but one of these, so clients can switch on the
// code without parsing message text.
type Code string

const (
	// CodeOK: the request succeeded; result fields are populated.
	CodeOK Code = "OK"
	// CodeInvalidArgument: the request was malformed — unparseable
	// payload, unknown op, bad MPL source, out-of-range config.
	CodeInvalidArgument Code = "INVALID_ARGUMENT"
	// CodeResourceExhausted: admission control shed the request (global
	// queue full or per-connection concurrency cap); retry later, ideally
	// with backoff.
	CodeResourceExhausted Code = "RESOURCE_EXHAUSTED"
	// CodeDeadlineExceeded: the request's deadline expired before the
	// engine finished.
	CodeDeadlineExceeded Code = "DEADLINE_EXCEEDED"
	// CodeCanceled: the work was canceled for a reason other than its own
	// deadline (hard shutdown past the drain timeout).
	CodeCanceled Code = "CANCELED"
	// CodeUnavailable: the daemon is draining and accepts no new work.
	CodeUnavailable Code = "UNAVAILABLE"
	// CodeInternal: an internal invariant panic was recovered; the
	// response names the failing phase and the process keeps serving.
	CodeInternal Code = "INTERNAL"
)

// Frame is one decoded wire frame.
type Frame struct {
	Op      Op
	ID      uint64
	Payload []byte
}

// Framing errors. The server distinguishes them to decide whether the
// stream is still trustworthy (oversized: answer then close; bad
// magic/version: close immediately).
var (
	ErrBadMagic   = errors.New("server: bad frame magic")
	ErrBadVersion = errors.New("server: unsupported protocol version")
	ErrFrameSize  = errors.New("server: frame exceeds size cap")
)

// parseHeader decodes and validates a frame header against max payload
// bytes. It returns the op, request id and payload length.
func parseHeader(hdr *[HeaderLen]byte, max int) (Op, uint64, int, error) {
	if binary.BigEndian.Uint16(hdr[0:2]) != Magic {
		return 0, 0, 0, ErrBadMagic
	}
	if hdr[2] != Version {
		return 0, 0, 0, fmt.Errorf("%w: %d", ErrBadVersion, hdr[2])
	}
	op := Op(hdr[3])
	id := binary.BigEndian.Uint64(hdr[4:12])
	n := int(binary.BigEndian.Uint32(hdr[12:16]))
	if n > max {
		return op, id, n, fmt.Errorf("%w: %d bytes > %d", ErrFrameSize, n, max)
	}
	return op, id, n, nil
}

// appendFrame encodes f into one contiguous buffer so a frame is always
// written with a single Write call (no interleaving risk, and a write
// timeout never leaves a half-frame mid-stream for the peer to misparse
// as the start of the next one).
func appendFrame(buf []byte, f Frame) []byte {
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = uint8(f.Op)
	binary.BigEndian.PutUint64(hdr[4:12], f.ID)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(f.Payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, f.Payload...)
}

// writeFrame writes f to w as one Write call.
func writeFrame(w io.Writer, f Frame) error {
	_, err := w.Write(appendFrame(make([]byte, 0, HeaderLen+len(f.Payload)), f))
	return err
}

// ReadFrame reads one frame from r, rejecting payloads over max bytes;
// the exported form exists for other protocol speakers (the gateway).
// The caller owns read deadlines on the underlying connection.
func ReadFrame(r io.Reader, max int) (Frame, error) { return readFrame(r, max) }

// WriteFrame writes f to w as a single Write call; see ReadFrame.
func WriteFrame(w io.Writer, f Frame) error { return writeFrame(w, f) }

// readFrame reads one frame from r, rejecting payloads over max bytes.
// The caller owns read deadlines on the underlying connection.
func readFrame(r io.Reader, max int) (Frame, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	op, id, n, err := parseHeader(&hdr, max)
	if err != nil {
		return Frame{Op: op, ID: id}, err
	}
	f := Frame{Op: op, ID: id}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// CompileRequest is the payload of an OpCompile frame: compile one MPL
// source and return its allocation summary.
type CompileRequest struct {
	// Src is the MPL source text.
	Src string `json:"src"`
	// K is the module count; 0 means the server default (8).
	K int `json:"k,omitempty"`
	// Strategy is "STOR1" (default), "STOR2", "STOR3" or "PerRegion".
	Strategy string `json:"strategy,omitempty"`
	// Method is "hittingset" (default) or "backtrack".
	Method string `json:"method,omitempty"`
	// BudgetNodes caps the duplication search; 0 means the engine
	// default, negative is rejected (no unlimited searches over the
	// network), and the server clamps it to its own ceiling.
	BudgetNodes int64 `json:"budget_nodes,omitempty"`
	// DeadlineMS bounds this request's wall clock in milliseconds; 0
	// means the server default, and the server clamps it to its maximum.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Trace is the optional distributed trace context in
	// telemetry.TraceContext wire form ("traceid-spanid-procid", hex). An
	// absent or malformed field is identical to an old client: the server
	// starts a fresh trace. The wire version stays 1 — old servers ignore
	// the field entirely.
	Trace string `json:"trace,omitempty"`
}

// AssignRequest is the payload of an OpAssign frame: run memory-module
// assignment directly on instruction operand sets.
type AssignRequest struct {
	// Instrs is one operand set per long instruction word.
	Instrs [][]int `json:"instrs"`
	// K is the module count; required, 1..64.
	K int `json:"k"`
	// Strategy, Method, BudgetNodes, DeadlineMS: as in CompileRequest.
	Strategy    string `json:"strategy,omitempty"`
	Method      string `json:"method,omitempty"`
	BudgetNodes int64  `json:"budget_nodes,omitempty"`
	DeadlineMS  int64  `json:"deadline_ms,omitempty"`
	// Hold, when non-empty, retains the result server-side under this
	// session name (scoped to the connection) so later OpDelta requests can
	// patch against it instead of recompiling. Requires Strategy STOR1 (the
	// default). Each connection holds a bounded number of sessions; holding
	// a new one past the cap evicts the oldest.
	Hold string `json:"hold,omitempty"`
	// Trace: as in CompileRequest.
	Trace string `json:"trace,omitempty"`
}

// PingRequest is the (optional) payload of an OpPing frame. An empty
// payload is the classic liveness probe; a payload may carry a trace
// context so even pings correlate end to end.
type PingRequest struct {
	// Trace: as in CompileRequest.
	Trace string `json:"trace,omitempty"`
}

// ChangedOp is one in-place instruction replacement in a DeltaRequest.
type ChangedOp struct {
	// Index into the base result's instruction stream.
	Index int `json:"index"`
	// Ops is the replacement operand set.
	Ops []int `json:"ops"`
}

// DeltaRequest is the payload of an OpDelta frame: edit a held result's
// instruction stream and recompile incrementally — only the conflict
// components touched by the edit re-run the pipeline, the rest are
// stitched from the base. The configuration (K, method) is the one the
// base was compiled under; only the budget and deadline are per-request.
type DeltaRequest struct {
	// Base names the held session to patch (see AssignRequest.Hold).
	Base string `json:"base"`
	// Hold, when non-empty, retains the patched result under this name
	// (which may equal Base, replacing it).
	Hold string `json:"hold,omitempty"`
	// Changed replaces instructions in place; Removed deletes by index;
	// Added appends new operand sets. Indices refer to the base's stream.
	Changed []ChangedOp `json:"changed,omitempty"`
	Removed []int       `json:"removed,omitempty"`
	Added   [][]int     `json:"added,omitempty"`
	// BudgetNodes, DeadlineMS, Trace: as in CompileRequest.
	BudgetNodes int64  `json:"budget_nodes,omitempty"`
	DeadlineMS  int64  `json:"deadline_ms,omitempty"`
	Trace       string `json:"trace,omitempty"`
}

// IncrSummary is the wire form of the incremental reuse accounting.
type IncrSummary struct {
	Components int  `json:"components"`
	Dirty      int  `json:"dirty"`
	Reused     int  `json:"reused"`
	CacheHits  int  `json:"cache_hits,omitempty"`
	Full       bool `json:"full,omitempty"`
}

// BatchRequest is the payload of an OpBatch frame: compile many sources
// as one admission unit through the engine's batch pipeline.
type BatchRequest struct {
	// Srcs are the MPL sources; capped by the server's MaxBatchItems.
	Srcs []string `json:"srcs"`
	// K, Strategy, Method, BudgetNodes, DeadlineMS: as in CompileRequest
	// (the budget is per item, the deadline covers the whole batch).
	K           int    `json:"k,omitempty"`
	Strategy    string `json:"strategy,omitempty"`
	Method      string `json:"method,omitempty"`
	BudgetNodes int64  `json:"budget_nodes,omitempty"`
	DeadlineMS  int64  `json:"deadline_ms,omitempty"`
	// Trace: as in CompileRequest.
	Trace string `json:"trace,omitempty"`
}

// AllocSummary is the wire form of an Allocation: the Table 1 shape plus
// the degradation flag, and (for OpAssign) the full copy placement so
// clients can verify conflict-freedom end to end.
type AllocSummary struct {
	Values      int  `json:"values"`
	SingleCopy  int  `json:"single_copy"`
	MultiCopy   int  `json:"multi_copy"`
	TotalCopies int  `json:"total_copies"`
	Words       int  `json:"words,omitempty"`
	Atoms       int  `json:"atoms"`
	Degraded    bool `json:"degraded,omitempty"`
	// BudgetNodes is the search-budget spend summed over all phases, and
	// CacheHit names the first phase served from the allocation cache ("" =
	// fully computed). Both feed the flight recorder's request records and
	// give clients per-request cost visibility.
	BudgetNodes int64  `json:"budget_nodes,omitempty"`
	CacheHit    string `json:"cache_hit,omitempty"`
	// Copies maps value id -> modules holding it (OpAssign only; compile
	// summaries stay compact).
	Copies map[int][]int `json:"copies,omitempty"`
}

// ItemResult is one batch item's outcome.
type ItemResult struct {
	Code   Code          `json:"code"`
	Error  string        `json:"error,omitempty"`
	Result *AllocSummary `json:"result,omitempty"`
}

// Response is the payload of every response frame.
type Response struct {
	// Code classifies the outcome; OK is the only success.
	Code Code `json:"code"`
	// Error is the human-readable failure detail ("" on OK).
	Error string `json:"error,omitempty"`
	// Phase names the failing pipeline stage on CodeInternal.
	Phase string `json:"phase,omitempty"`
	// Draining reports (on ping) that the server is refusing new work.
	Draining bool `json:"draining,omitempty"`
	// Result is the allocation summary of a compile/assign success.
	Result *AllocSummary `json:"result,omitempty"`
	// Items are the per-item outcomes of a batch, in input order.
	Items []ItemResult `json:"items,omitempty"`
	// Held echoes the session name the result was retained under (assign
	// and delta requests that asked to Hold).
	Held string `json:"held,omitempty"`
	// Incremental reports the reuse accounting of an incremental run
	// (assign-with-Hold and delta responses).
	Incremental *IncrSummary `json:"incremental,omitempty"`
	// Trace echoes the request's 128-bit trace id (32 hex digits). When the
	// request carried no trace the server generates one at ingress and
	// reports it here, so callers can always correlate a response with the
	// server's spans, exemplars and flight captures.
	Trace string `json:"trace,omitempty"`
}
