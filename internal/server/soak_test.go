package server

import (
	"context"
	"testing"
	"time"
)

// TestSoakWithFaults runs the chaos client against a live server — garbage
// frames, slow loris, mid-request disconnects, oversized frames, deadline
// storms and per-connection overload all at once — and holds the daemon to
// the acceptance bar: ≥99% availability for well-formed traffic, typed
// shedding under overload, and not one request left without a response.
func TestSoakWithFaults(t *testing.T) {
	dur := 4 * time.Second
	if testing.Short() {
		dur = 1500 * time.Millisecond
	}
	s := newTestServer(t, Config{
		MaxInFlight:     4,
		MaxQueue:        16,
		PerConnInFlight: 4,
		FrameTimeout:    300 * time.Millisecond,
	})

	ctx, cancel := context.WithTimeout(context.Background(), dur+30*time.Second)
	defer cancel()
	report, err := Soak(ctx, SoakOptions{
		Addr:     s.Addr(),
		Duration: dur,
		Workers:  3,
		Faults:   true,
		Seed:     7,
		// Post-chaos steady state: identical cached assigns must cost a
		// bounded number of allocations each. The bar is loose — it exists
		// to catch per-request leaks (thousands of allocs), not to tune
		// the protocol — and covers both sides since server and client
		// share this process.
		SteadyStateOps: 64,
		MaxAllocsPerOp: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: sent=%d ok=%d shed=%d unavailable=%d availability=%.4f p99=%dus allocs/op=%.1f",
		report.Sent, report.OK, report.Shed, report.Unavailable,
		report.Availability(), report.LatencyP99US, report.AllocsPerOp)
	if report.SteadyStateOps != 64 || report.AllocsPerOp <= 0 {
		t.Fatalf("steady-state phase did not run: %+v", report)
	}
	if err := report.Assert(true); err != nil {
		t.Fatalf("soak acceptance failed: %v\nreport: %+v", err, report)
	}

	// Drain after the storm: nothing may hang.
	dctx, dcancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
}
