package server

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"parmem/internal/benchprog"
)

// bootCached starts a server with a persistent cache tier over dir.
func bootCached(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := New(Config{Addr: "127.0.0.1:0", CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServerDiskCacheRestart proves the daemon-level acceptance behavior:
// compile through one daemon, drain it, boot a second daemon over the
// same cache directory, and observe the same compile served as a
// second-level (disk) hit.
func TestServerDiskCacheRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	src := benchprog.All()[0].Source

	s1 := bootCached(t, dir)
	c1, err := Dial(s1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c1.Compile(context.Background(), CompileRequest{Src: src, K: 8})
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("first compile: %v / %+v", err, resp)
	}
	c1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	s2 := bootCached(t, dir)
	defer s2.Close()
	c2, err := Dial(s2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	resp, err = c2.Compile(context.Background(), CompileRequest{Src: src, K: 8})
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("restarted compile: %v / %+v", err, resp)
	}
	cs, ok := s2.CacheStats()
	if !ok || cs.BackingHits == 0 {
		t.Fatalf("restarted daemon served no disk hits: %+v (ok=%v)", cs, ok)
	}
	ds, ok := s2.DiskCacheStats()
	if !ok || ds.Hits == 0 {
		t.Fatalf("disk tier reports no hits: %+v (ok=%v)", ds, ok)
	}
}

func TestServerRejectsCacheDirWithCachingDisabled(t *testing.T) {
	_, err := New(Config{Addr: "127.0.0.1:0", CacheDir: t.TempDir(), CacheCapacity: -1})
	if err == nil {
		t.Fatal("New accepted CacheDir with caching disabled")
	}
}

func TestServerNoDiskTierByDefault(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.DiskCacheStats(); ok {
		t.Fatal("disk tier present without CacheDir")
	}
	if _, ok := s.CacheStats(); !ok {
		t.Fatal("memory cache absent by default")
	}
}
