package server

import (
	"context"
	"errors"

	"parmem/internal/telemetry"
)

// Admission control. The daemon bounds concurrent engine work twice over:
// MaxInFlight requests may hold an execution slot at once, and at most
// MaxQueue more may wait for one. Anything beyond that is shed
// immediately with a typed RESOURCE_EXHAUSTED response — the Versaci &
// Pingali observation that under contention limiting concurrent work
// beats letting it pile up: an unbounded queue converts overload into
// latency collapse and memory growth, while a bounded one converts it
// into fast, explicit, retryable rejections.

// errShed reports that the admission queue was full at arrival.
var errShed = errors.New("server: admission queue full")

// gate is the two-stage admission bound: a slot semaphore (running) and a
// queue semaphore (waiting). Both are plain buffered channels, so the
// whole gate is lock-free and cancellation-aware.
type gate struct {
	slots chan struct{}
	queue chan struct{}

	inflight *telemetry.Gauge // nil-safe instruments
	depth    *telemetry.Gauge
}

func newGate(maxInFlight, maxQueue int, rec *telemetry.Recorder) *gate {
	return &gate{
		slots:    make(chan struct{}, maxInFlight),
		queue:    make(chan struct{}, maxQueue),
		inflight: rec.Gauge(telemetry.MServerInFlight),
		depth:    rec.Gauge(telemetry.MServerQueueDepth),
	}
}

// acquire claims an execution slot. The fast path takes a free slot
// without queueing; otherwise the request joins the bounded queue and
// waits for a slot or its deadline. A full queue returns errShed at once
// — a request is never silently parked beyond the declared bounds.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		return nil
	default:
	}
	select {
	case g.queue <- struct{}{}:
	default:
		return errShed
	}
	g.depth.Add(1)
	defer func() {
		g.depth.Add(-1)
		<-g.queue
	}()
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot.
func (g *gate) release() {
	g.inflight.Add(-1)
	<-g.slots
}
