package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parmem/internal/telemetry"
)

// The soak harness: hammer a parmemd with mixed well-formed traffic while
// injecting the faults a long-lived daemon actually meets — mid-request
// disconnects, garbage bytes, slow-loris writers, oversized frames,
// deadline storms, overload bursts — and account for every single request.
// The availability claim it checks is the PR's acceptance criterion: under
// all of that, >= 99% of well-formed in-budget requests succeed, excess
// load is shed with typed codes, and no in-flight request ever loses its
// response.

// SoakOptions configures one soak run.
type SoakOptions struct {
	// Addr is the daemon under test.
	Addr string
	// Duration is how long the load runs.
	Duration time.Duration
	// Workers is the number of well-formed load generators (each owns one
	// connection); default 4.
	Workers int
	// Faults enables the fault injectors.
	Faults bool
	// Seed makes the workload mix reproducible; 0 picks 1.
	Seed int64
	// DeadlineMS is the well-formed requests' deadline; default 5000.
	DeadlineMS int64
	// SteadyStateOps, when positive, appends a quiesced measurement phase
	// after the load (and any chaos) has drained: one client repeats an
	// identical well-formed assign request this many times and the
	// client-path heap allocations per operation are recorded in
	// AllocsPerOp. Identical requests are steady state by construction —
	// the daemon serves them from its allocation cache — so what is being
	// measured is the per-request protocol overhead that should never
	// creep.
	SteadyStateOps int
	// MaxAllocsPerOp is the Assert bar on AllocsPerOp; 0 disables the
	// check.
	MaxAllocsPerOp float64
	// Telemetry, when non-nil, records one client-side span per
	// well-formed request, so a -trace run contributes the client lane to
	// a fleet-merged trace.
	Telemetry *telemetry.Recorder
	// FlightURLs, when non-empty, enables the flight-recorder check after
	// the load drains: one deliberately heavy traced assign is sent, then
	// each URL's /debug/flight index is fetched and the run must find at
	// least one capture fleet-wide. List every backend's telemetry base
	// URL — routing may land the probe on any of them.
	FlightURLs []string
}

// SoakReport is the accounting of one soak run. Counters split by who
// sent the request: well-formed workers (the availability denominator),
// the deadline storm, and the overload bursts.
type SoakReport struct {
	// Well-formed traffic.
	Sent             int64 `json:"sent"`
	OK               int64 `json:"ok"`
	Degraded         int64 `json:"degraded"` // subset of OK (allocation degraded, still correct)
	Shed             int64 `json:"shed"`     // typed RESOURCE_EXHAUSTED
	Unavailable      int64 `json:"unavailable"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Canceled         int64 `json:"canceled"`
	InvalidArgument  int64 `json:"invalid_argument"`
	Internal         int64 `json:"internal"`
	TransportErrors  int64 `json:"transport_errors"` // connection died before a response: dropped in-flight

	// Deadline storm (tiny deadlines on purpose; any typed code is fine,
	// a dropped response is not).
	StormSent      int64 `json:"storm_sent"`
	StormResponded int64 `json:"storm_responded"`

	// Overload bursts (concurrency beyond the declared caps; must shed
	// typed, not hang or drop).
	OverloadSent      int64 `json:"overload_sent"`
	OverloadShed      int64 `json:"overload_shed"`
	OverloadOK        int64 `json:"overload_ok"`
	OverloadResponded int64 `json:"overload_responded"`

	// FaultConns counts raw fault-injector connections made.
	FaultConns int64 `json:"fault_conns"`

	// Latency of well-formed successful requests, microseconds.
	LatencyP50US int64 `json:"latency_p50_us"`
	LatencyP95US int64 `json:"latency_p95_us"`
	LatencyP99US int64 `json:"latency_p99_us"`
	LatencyMaxUS int64 `json:"latency_max_us"`

	// Distributed-tracing accounting: every well-formed response must echo
	// the 32-hex trace id its request carried; Slowest lists the worst
	// successful requests with their trace ids, the handle an operator
	// pastes into parmemtrace output or /debug/flight.
	TraceEchoMismatches int64         `json:"trace_echo_mismatches"`
	Slowest             []SlowRequest `json:"slowest,omitempty"`

	// SessionResets counts deltas whose base session had evaporated
	// server-side (backend death or upstream redial behind a gateway);
	// each one was answered by re-holding, the normal client recovery.
	SessionResets int64 `json:"session_resets,omitempty"`

	// Flight-recorder check (only with SoakOptions.FlightURLs).
	FlightChecked  bool  `json:"flight_checked,omitempty"`
	FlightCaptures int64 `json:"flight_captures,omitempty"`

	// Steady-state measurement (only with SoakOptions.SteadyStateOps).
	SteadyStateOps int64   `json:"steady_state_ops,omitempty"`
	AllocsPerOp    float64 `json:"allocs_per_op,omitempty"`
	MaxAllocsPerOp float64 `json:"max_allocs_per_op,omitempty"`
}

// SlowRequest is one entry of SoakReport.Slowest.
type SlowRequest struct {
	TraceID   string `json:"trace_id"`
	Op        string `json:"op"`
	LatencyUS int64  `json:"latency_us"`
}

// Availability is the served fraction of well-formed in-budget requests:
// successes over everything that was not explicitly shed by admission
// control (shed requests are the control working, and a real client
// retries them).
func (r *SoakReport) Availability() float64 {
	denom := r.Sent - r.Shed - r.Unavailable
	if denom <= 0 {
		return 1
	}
	return float64(r.OK) / float64(denom)
}

// Assert checks the acceptance criteria and returns a descriptive error
// on the first violation. faults says whether the injectors ran (and so
// whether shed/storm accounting must be non-trivial).
func (r *SoakReport) Assert(faults bool) error {
	if r.Sent == 0 {
		return errors.New("soak: no well-formed requests were sent")
	}
	if a := r.Availability(); a < 0.99 {
		return fmt.Errorf("soak: availability %.4f < 0.99 (%d ok of %d sent, %d shed, %d unavailable)",
			a, r.OK, r.Sent, r.Shed, r.Unavailable)
	}
	if r.TransportErrors > 0 {
		return fmt.Errorf("soak: %d well-formed requests lost their response (transport errors)", r.TransportErrors)
	}
	if r.Internal > 0 {
		return fmt.Errorf("soak: %d INTERNAL responses", r.Internal)
	}
	if r.InvalidArgument > 0 {
		return fmt.Errorf("soak: %d well-formed requests rejected as INVALID_ARGUMENT", r.InvalidArgument)
	}
	if r.TraceEchoMismatches > 0 {
		return fmt.Errorf("soak: %d responses did not echo their request's trace id", r.TraceEchoMismatches)
	}
	if r.FlightChecked && r.FlightCaptures == 0 {
		return errors.New("soak: forced-slow request produced no flight capture on any backend")
	}
	if faults {
		if r.StormSent > 0 && r.StormResponded != r.StormSent {
			return fmt.Errorf("soak: deadline storm sent %d, only %d got a typed response", r.StormSent, r.StormResponded)
		}
		if r.OverloadSent > 0 {
			if r.OverloadResponded != r.OverloadSent {
				return fmt.Errorf("soak: overload burst sent %d, only %d got a typed response", r.OverloadSent, r.OverloadResponded)
			}
			if r.OverloadShed == 0 {
				return fmt.Errorf("soak: overload bursts (%d requests past the declared caps) were never shed — admission control is not binding", r.OverloadSent)
			}
		}
	}
	if r.MaxAllocsPerOp > 0 && r.SteadyStateOps > 0 && r.AllocsPerOp > r.MaxAllocsPerOp {
		return fmt.Errorf("soak: steady-state allocations %.1f/op exceed the bar of %.1f/op over %d ops",
			r.AllocsPerOp, r.MaxAllocsPerOp, r.SteadyStateOps)
	}
	return nil
}

// soakSources are the well-formed compile payloads: small MPL programs
// exercising straight-line code, expressions and a loop.
var soakSources = []string{
	`program s0;
var a, b, c: int;
begin
  a := 2; b := 3; c := a * b + a;
end`,
	`program s1;
var a, b, c, d, e: int;
begin
  a := 1; b := a + 2; c := a * b;
  d := c - b; e := d * d + a;
end`,
	`program s2;
var s, t: int;
begin
  s := 0; t := 1;
  for i := 1 to 6 do
    s := s + i * t;
    t := t + s;
  end
end`,
}

// soakInstrs builds a random well-formed instruction stream: words of up
// to k distinct operands drawn from a small value universe, always
// assignable (possibly with duplication) for k modules.
func soakInstrs(rng *rand.Rand, k int) [][]int {
	// The universe must hold at least k distinct values or the word-filling
	// loop below could never collect a k-wide word.
	nvals := k + rng.Intn(12)
	words := 3 + rng.Intn(8)
	out := make([][]int, words)
	for w := range out {
		n := 1 + rng.Intn(k)
		seen := map[int]bool{}
		for len(seen) < n {
			seen[rng.Intn(nvals)] = true
		}
		word := make([]int, 0, n)
		for v := range seen {
			word = append(word, v)
		}
		sort.Ints(word)
		out[w] = word
	}
	return out
}

// soakState is the shared mutable accounting of one run.
type soakState struct {
	opt SoakOptions
	rep SoakReport

	latMu sync.Mutex
	lats  []int64
	slow  []SlowRequest
}

func (st *soakState) observe(us int64, op, trace string) {
	st.latMu.Lock()
	st.lats = append(st.lats, us)
	st.slow = append(st.slow, SlowRequest{TraceID: trace, Op: op, LatencyUS: us})
	st.latMu.Unlock()
}

// countCode attributes one well-formed response.
func (st *soakState) countCode(resp Response) {
	switch resp.Code {
	case CodeOK:
		atomic.AddInt64(&st.rep.OK, 1)
		if resp.Result != nil && resp.Result.Degraded {
			atomic.AddInt64(&st.rep.Degraded, 1)
		}
	case CodeResourceExhausted:
		atomic.AddInt64(&st.rep.Shed, 1)
	case CodeUnavailable:
		atomic.AddInt64(&st.rep.Unavailable, 1)
	case CodeDeadlineExceeded:
		atomic.AddInt64(&st.rep.DeadlineExceeded, 1)
	case CodeCanceled:
		atomic.AddInt64(&st.rep.Canceled, 1)
	case CodeInvalidArgument:
		atomic.AddInt64(&st.rep.InvalidArgument, 1)
	case CodeInternal:
		atomic.AddInt64(&st.rep.Internal, 1)
	}
}

// Soak runs the load (and, when enabled, the fault injectors) against
// opt.Addr until opt.Duration elapses or ctx cancels, then returns the
// full accounting. The error is non-nil only for setup failures — result
// judgments live in SoakReport.Assert so callers can print the report
// either way.
func Soak(ctx context.Context, opt SoakOptions) (*SoakReport, error) {
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	if opt.DeadlineMS <= 0 {
		opt.DeadlineMS = 5000
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Duration <= 0 {
		opt.Duration = 10 * time.Second
	}
	// Fail fast if the daemon is not there at all.
	probe, err := Dial(opt.Addr)
	if err != nil {
		return nil, fmt.Errorf("soak: cannot reach %s: %w", opt.Addr, err)
	}
	pctx, pcancel := context.WithTimeout(ctx, 5*time.Second)
	_, err = probe.Ping(pctx)
	pcancel()
	probe.Close()
	if err != nil {
		return nil, fmt.Errorf("soak: ping %s: %w", opt.Addr, err)
	}

	st := &soakState{opt: opt}
	runCtx, cancel := context.WithTimeout(ctx, opt.Duration)
	defer cancel()

	var wg sync.WaitGroup
	for i := 0; i < opt.Workers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			st.wellFormedWorker(runCtx, rand.New(rand.NewSource(seed)))
		}(opt.Seed + int64(i))
	}
	if opt.Faults {
		injectors := []func(context.Context, *rand.Rand){
			st.garbageInjector,
			st.disconnectInjector,
			st.slowLorisInjector,
			st.oversizeInjector,
			st.deadlineStormInjector,
			st.overloadInjector,
		}
		for i, inj := range injectors {
			wg.Add(1)
			go func(seed int64, inj func(context.Context, *rand.Rand)) {
				defer wg.Done()
				inj(runCtx, rand.New(rand.NewSource(seed)))
			}(opt.Seed+100+int64(i), inj)
		}
	}
	wg.Wait()

	st.latMu.Lock()
	sort.Slice(st.lats, func(i, j int) bool { return st.lats[i] < st.lats[j] })
	if n := len(st.lats); n > 0 {
		st.rep.LatencyP50US = st.lats[n/2]
		st.rep.LatencyP95US = st.lats[n*95/100]
		st.rep.LatencyP99US = st.lats[n*99/100]
		st.rep.LatencyMaxUS = st.lats[n-1]
	}
	sort.Slice(st.slow, func(i, j int) bool { return st.slow[i].LatencyUS > st.slow[j].LatencyUS })
	if len(st.slow) > 3 {
		st.slow = st.slow[:3]
	}
	st.rep.Slowest = st.slow
	st.latMu.Unlock()

	if len(opt.FlightURLs) > 0 {
		if err := st.flightCheck(ctx); err != nil {
			return &st.rep, err
		}
	}
	if opt.SteadyStateOps > 0 {
		if err := st.steadyState(ctx); err != nil {
			return &st.rep, err
		}
	}
	return &st.rep, nil
}

// flightCheck forces one anomalously heavy assign through the daemon, then
// counts flight captures across the fleet's /debug/flight endpoints. The
// probe is traced, so the capture it produces can be joined against a
// merged trace. Setup failures (unreachable telemetry URL) are errors; an
// absent capture is an Assert failure, recorded in the report.
func (st *soakState) flightCheck(ctx context.Context) error {
	st.rep.FlightChecked = true
	c, err := Dial(st.opt.Addr)
	if err != nil {
		return fmt.Errorf("soak: flight probe dial %s: %w", st.opt.Addr, err)
	}
	defer c.Close()

	// Heavy by construction: a long stream over a wide value universe.
	rng := rand.New(rand.NewSource(st.opt.Seed + 7))
	var instrs [][]int
	for len(instrs) < 192 {
		instrs = append(instrs, soakInstrs(rng, 6)...)
	}
	instrs = instrs[:192]
	tc := telemetry.NewTrace()
	pctx, pcancel := context.WithTimeout(telemetry.ContextWithTrace(ctx, tc), 30*time.Second)
	resp, err := c.Assign(pctx, AssignRequest{Instrs: instrs, K: 6, DeadlineMS: 30000})
	pcancel()
	if err != nil {
		return fmt.Errorf("soak: flight probe: %w", err)
	}
	if resp.Trace != tc.TraceID() {
		atomic.AddInt64(&st.rep.TraceEchoMismatches, 1)
	}

	// The capture is written just after the response; poll briefly.
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var total int64
		for _, base := range st.opt.FlightURLs {
			n, err := fetchFlightCaptures(client, base)
			if err != nil {
				return fmt.Errorf("soak: flight index %s: %w", base, err)
			}
			total += n
		}
		st.rep.FlightCaptures = total
		if total > 0 || time.Now().After(deadline) {
			return nil
		}
		if !pause(ctx, 200*time.Millisecond) {
			return nil
		}
	}
}

// fetchFlightCaptures counts one daemon's retained flight captures via its
// /debug/flight index.
func fetchFlightCaptures(client *http.Client, base string) (int64, error) {
	url := strings.TrimSuffix(base, "/") + "/debug/flight"
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %s", resp.Status)
	}
	var idx struct {
		Captures []json.RawMessage `json:"captures"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		return 0, err
	}
	return int64(len(idx.Captures)), nil
}

// steadyState measures client-path heap allocations per operation after
// the load (and any chaos) has fully drained: a single goroutine on one
// connection repeats an identical assign request. The daemon answers
// every repeat from its allocation cache, so the delta in Mallocs across
// the loop is the per-request protocol overhead — marshal, frame,
// dispatch, unmarshal — which must not creep between releases. All other
// soak goroutines have exited by the time this runs, so the process-wide
// Mallocs counter is attributable to this loop.
func (st *soakState) steadyState(ctx context.Context) error {
	ops := st.opt.SteadyStateOps
	c, err := Dial(st.opt.Addr)
	if err != nil {
		return fmt.Errorf("soak: steady-state dial %s: %w", st.opt.Addr, err)
	}
	defer c.Close()
	req := AssignRequest{
		Instrs:     soakInstrs(rand.New(rand.NewSource(st.opt.Seed)), 4),
		K:          4,
		DeadlineMS: st.opt.DeadlineMS,
	}
	one := func() error {
		resp, err := c.Assign(ctx, req)
		if err != nil {
			return err
		}
		if resp.Code != CodeOK {
			return fmt.Errorf("code %s (%s)", resp.Code, resp.Error)
		}
		return nil
	}
	// Warmup fills the daemon's cache and the client's internal buffers
	// so the measured window sees only steady-state work.
	warm := ops / 4
	if warm < 8 {
		warm = 8
	}
	for i := 0; i < warm; i++ {
		if err := one(); err != nil {
			return fmt.Errorf("soak: steady-state warmup: %w", err)
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < ops; i++ {
		if err := one(); err != nil {
			return fmt.Errorf("soak: steady-state op %d: %w", i, err)
		}
	}
	runtime.ReadMemStats(&after)
	st.rep.SteadyStateOps = int64(ops)
	st.rep.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
	st.rep.MaxAllocsPerOp = st.opt.MaxAllocsPerOp
	return nil
}

// wellFormedWorker drives one connection with a mixed op workload. It
// reconnects only after the server closes the connection during drain;
// a connection death with a request in flight counts as a dropped
// response.
func (st *soakState) wellFormedWorker(ctx context.Context, rng *rand.Rand) {
	var c *Client
	defer func() {
		if c != nil {
			c.Close()
		}
	}()
	held := false // a "soak" incremental session exists on this connection
	for ctx.Err() == nil {
		if c == nil {
			var err error
			if c, err = Dial(st.opt.Addr); err != nil {
				select {
				case <-ctx.Done():
					return
				case <-time.After(50 * time.Millisecond):
				}
				continue
			}
			held = false // sessions die with the connection
		}
		resp, err := st.sendOne(ctx, c, rng, &held)
		if err != nil {
			if ctx.Err() != nil {
				// Our own run window closed mid-request; not a drop.
				return
			}
			if errors.Is(err, ErrConnClosed) {
				// The server hung up with our request in flight — the
				// drop the drain criterion forbids.
				atomic.AddInt64(&st.rep.TransportErrors, 1)
				c.Close()
				c = nil
				continue
			}
			atomic.AddInt64(&st.rep.TransportErrors, 1)
			continue
		}
		st.countCode(resp)
	}
}

// sendOne sends one well-formed request, counting it Sent. Every request
// carries a fresh distributed trace (and, when SoakOptions.Telemetry is
// set, a client-side span), and every response must echo that trace id —
// the propagation contract the soak enforces.
func (st *soakState) sendOne(ctx context.Context, c *Client, rng *rand.Rand, held *bool) (Response, error) {
	atomic.AddInt64(&st.rep.Sent, 1)
	tc := telemetry.NewTrace()
	sp := st.opt.Telemetry.StartSpanTrace("request", tc)
	wire := tc
	if sp != nil {
		wire = sp.Context()
	}
	start := time.Now()
	op, resp, err := st.dispatch(telemetry.ContextWithTrace(ctx, wire), c, rng, held)
	sp.SetAttrStr("op", op)
	sp.End()
	if err == nil {
		if resp.Trace != tc.TraceID() {
			atomic.AddInt64(&st.rep.TraceEchoMismatches, 1)
		}
		if resp.Code == CodeOK {
			st.observe(time.Since(start).Microseconds(), op, tc.TraceID())
		}
	}
	return resp, err
}

// dispatch picks and sends one well-formed request. held tracks whether
// this connection holds the "soak" incremental session; delta requests are
// only sent against a base that was confirmed held.
func (st *soakState) dispatch(ctx context.Context, c *Client, rng *rand.Rand, held *bool) (string, Response, error) {
	dl := st.opt.DeadlineMS
	switch p := rng.Intn(100); {
	case p < 10:
		resp, err := c.Ping(ctx)
		return "ping", resp, err
	case p < 55:
		resp, err := c.Assign(ctx, AssignRequest{
			Instrs:     soakInstrs(rng, 4),
			K:          4,
			DeadlineMS: dl,
		})
		return "assign", resp, err
	case p < 65:
		// Incremental round-trip: hold a base, then patch it with a small
		// well-formed delta. The first leg (or a reconnect) establishes the
		// session; later visits exercise the delta path against it.
		if !*held {
			resp, err := c.Assign(ctx, AssignRequest{
				Instrs:     soakInstrs(rng, 4),
				K:          4,
				DeadlineMS: dl,
				Hold:       "soak",
			})
			if err == nil && resp.Code == CodeOK && resp.Held == "soak" {
				*held = true
			}
			return "assign", resp, err
		}
		// Change instruction 0 and append one word: always in range (the
		// held stream is never emptied — deltas here only change and add).
		resp, err := c.Delta(ctx, DeltaRequest{
			Base:       "soak",
			Hold:       "soak",
			Changed:    []ChangedOp{{Index: 0, Ops: soakInstrs(rng, 4)[0]}},
			Added:      [][]int{soakInstrs(rng, 4)[0]},
			DeadlineMS: dl,
		})
		if err == nil && resp.Code == CodeInvalidArgument &&
			strings.Contains(resp.Error, "unknown base session") {
			// The base evaporated server-side — a backend behind a gateway
			// died or its upstream connection was redialed. A real client
			// re-holds and carries on; do the same and account the re-hold
			// as this round's request.
			atomic.AddInt64(&st.rep.SessionResets, 1)
			*held = false
			resp, err = c.Assign(ctx, AssignRequest{
				Instrs:     soakInstrs(rng, 4),
				K:          4,
				DeadlineMS: dl,
				Hold:       "soak",
			})
			if err == nil && resp.Code == CodeOK && resp.Held == "soak" {
				*held = true
			}
			return "assign", resp, err
		}
		if err == nil && resp.Code == CodeOK && resp.Incremental == nil {
			// A delta success must carry its reuse accounting.
			resp = Response{Code: CodeInternal, Error: "delta response missing incremental stats", Trace: resp.Trace}
		}
		return "delta", resp, err
	case p < 90:
		resp, err := c.Compile(ctx, CompileRequest{
			Src:        soakSources[rng.Intn(len(soakSources))],
			DeadlineMS: dl,
		})
		return "compile", resp, err
	default:
		n := 2 + rng.Intn(3)
		srcs := make([]string, n)
		for i := range srcs {
			srcs[i] = soakSources[rng.Intn(len(soakSources))]
		}
		resp, err := c.Batch(ctx, BatchRequest{Srcs: srcs, DeadlineMS: dl})
		return "batch", resp, err
	}
}

// rawConn dials a raw TCP connection for the byte-level injectors.
func (st *soakState) rawConn() (net.Conn, error) {
	atomic.AddInt64(&st.rep.FaultConns, 1)
	return net.DialTimeout("tcp", st.opt.Addr, 2*time.Second)
}

// pause sleeps briefly between fault rounds, honoring cancellation.
func pause(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// garbageInjector writes random bytes (never a valid magic) and expects
// the server to close the connection without dying.
func (st *soakState) garbageInjector(ctx context.Context, rng *rand.Rand) {
	for ctx.Err() == nil {
		nc, err := st.rawConn()
		if err == nil {
			buf := make([]byte, 64+rng.Intn(512))
			rng.Read(buf)
			buf[0] = 0xFF                                   // guarantee a bad magic
			nc.Write(buf)                                   //nolint:errcheck
			nc.SetReadDeadline(time.Now().Add(time.Second)) //nolint:errcheck
			io := make([]byte, 16)
			nc.Read(io) //nolint:errcheck // just confirm the server hangs up
			nc.Close()
		}
		if !pause(ctx, 100*time.Millisecond) {
			return
		}
	}
}

// disconnectInjector sends truncated frames — a header promising a
// payload that never fully arrives — then hangs up mid-request.
func (st *soakState) disconnectInjector(ctx context.Context, rng *rand.Rand) {
	for ctx.Err() == nil {
		nc, err := st.rawConn()
		if err == nil {
			payload := []byte(`{"src":"program x; var a: int; begin a := 1; end"}`)
			f := appendFrame(nil, Frame{Op: OpCompile, ID: 1, Payload: payload})
			// Cut the frame anywhere, header included.
			cut := 1 + rng.Intn(len(f)-1)
			nc.Write(f[:cut]) //nolint:errcheck
			nc.Close()
		}
		if !pause(ctx, 80*time.Millisecond) {
			return
		}
	}
}

// slowLorisInjector trickles a valid header one byte at a time, far
// slower than any real client, and expects the frame timeout to kill the
// connection rather than the read loop waiting forever.
func (st *soakState) slowLorisInjector(ctx context.Context, _ *rand.Rand) {
	for ctx.Err() == nil {
		nc, err := st.rawConn()
		if err == nil {
			f := appendFrame(nil, Frame{Op: OpPing, ID: 7})
			for i := range f {
				if _, werr := nc.Write(f[i : i+1]); werr != nil {
					break // server cut us off: the guard worked
				}
				if !pause(ctx, 150*time.Millisecond) {
					break
				}
			}
			nc.Close()
		}
		if !pause(ctx, 100*time.Millisecond) {
			return
		}
	}
}

// oversizeInjector claims a payload beyond any sane frame cap and expects
// a typed INVALID_ARGUMENT response before the server closes the
// connection.
func (st *soakState) oversizeInjector(ctx context.Context, _ *rand.Rand) {
	for ctx.Err() == nil {
		nc, err := st.rawConn()
		if err == nil {
			var hdr [HeaderLen]byte
			binary.BigEndian.PutUint16(hdr[0:2], Magic)
			hdr[2] = Version
			hdr[3] = uint8(OpCompile)
			binary.BigEndian.PutUint64(hdr[4:12], 9)
			binary.BigEndian.PutUint32(hdr[12:16], 1<<31-1)
			nc.Write(hdr[:])                                    //nolint:errcheck
			nc.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
			readFrame(nc, DefaultMaxFrame)                      //nolint:errcheck // best-effort: the typed reject
			nc.Close()
		}
		if !pause(ctx, 150*time.Millisecond) {
			return
		}
	}
}

// deadlineStormInjector fires bursts of requests with 1ms deadlines. Any
// typed code is acceptable; what is being proven is that every one gets a
// response (no hangs, no drops) while the rest of the load is unharmed.
func (st *soakState) deadlineStormInjector(ctx context.Context, rng *rand.Rand) {
	for ctx.Err() == nil {
		c, err := Dial(st.opt.Addr)
		if err == nil {
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					atomic.AddInt64(&st.rep.StormSent, 1)
					rctx, rcancel := context.WithTimeout(ctx, 5*time.Second)
					defer rcancel()
					if _, err := c.Assign(rctx, AssignRequest{
						Instrs: soakInstrs(r, 4), K: 4, DeadlineMS: 1,
					}); err == nil {
						atomic.AddInt64(&st.rep.StormResponded, 1)
					} else if ctx.Err() != nil {
						// Storm cut off by the end of the run, not by the
						// server: do not count it against the daemon.
						atomic.AddInt64(&st.rep.StormSent, -1)
					}
				}(rng.Int63())
			}
			wg.Wait()
			c.Close()
		}
		if !pause(ctx, 200*time.Millisecond) {
			return
		}
	}
}

// overloadInjector bursts more concurrent requests onto one connection
// than its declared per-connection cap, proving admission control sheds
// the excess with typed codes instead of queueing it silently.
func (st *soakState) overloadInjector(ctx context.Context, rng *rand.Rand) {
	for ctx.Err() == nil {
		c, err := Dial(st.opt.Addr)
		if err == nil {
			var wg sync.WaitGroup
			for i := 0; i < 16; i++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					atomic.AddInt64(&st.rep.OverloadSent, 1)
					rctx, rcancel := context.WithTimeout(ctx, 10*time.Second)
					defer rcancel()
					resp, err := c.Compile(rctx, CompileRequest{
						Src:        soakSources[r.Intn(len(soakSources))],
						DeadlineMS: 5000,
					})
					if err != nil {
						if ctx.Err() != nil {
							atomic.AddInt64(&st.rep.OverloadSent, -1)
						}
						return
					}
					atomic.AddInt64(&st.rep.OverloadResponded, 1)
					switch resp.Code {
					case CodeResourceExhausted:
						atomic.AddInt64(&st.rep.OverloadShed, 1)
					case CodeOK:
						atomic.AddInt64(&st.rep.OverloadOK, 1)
					}
				}(rng.Int63())
			}
			wg.Wait()
			c.Close()
		}
		if !pause(ctx, 250*time.Millisecond) {
			return
		}
	}
}
