package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parmem"
	"parmem/internal/telemetry"
)

// Config sizes the daemon's robustness envelope. The zero value of every
// field picks a production-sane default (see withDefaults); tests shrink
// them to force the edges.
type Config struct {
	// Addr is the listen address ("host:port"; port 0 picks a free one).
	Addr string
	// MaxInFlight bounds requests executing concurrently; default 8.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot before new
	// arrivals are shed with RESOURCE_EXHAUSTED; default 2*MaxInFlight.
	MaxQueue int
	// PerConnInFlight bounds concurrent requests per connection (a single
	// client cannot monopolize the admission queue); default 4.
	PerConnInFlight int
	// MaxFrameBytes caps a frame payload; default DefaultMaxFrame.
	MaxFrameBytes int
	// MaxBatchItems caps the sources of one batch request; default 64.
	MaxBatchItems int
	// DefaultDeadline applies when a request carries no deadline_ms;
	// default 10s.
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested deadlines; default 60s.
	MaxDeadline time.Duration
	// MaxBudgetNodes clamps client-requested search budgets; default
	// parmem.DefaultMaxBacktrackNodes.
	MaxBudgetNodes int64
	// FrameTimeout is the slow-loris guard: once a frame's first byte
	// arrives, the whole frame must follow within this window or the
	// connection is closed (idle connections may wait indefinitely for a
	// first byte); it also bounds response writes. Default 10s.
	FrameTimeout time.Duration
	// Workers is the engine pool size per request. The default 1 keeps
	// each request sequential — concurrent requests are the parallelism,
	// and nested fan-out would oversubscribe the pool.
	Workers int
	// CacheCapacity sizes the shared allocation cache (0 = engine
	// default; negative disables caching). Sharing one cache across
	// requests is the daemon's whole reason to exist: repeated graphs
	// skip their coloring and duplication searches.
	CacheCapacity int
	// CacheDir, when non-empty, backs the allocation cache with a
	// persistent disk tier at this directory, so a restarted daemon
	// serves previously compiled programs as cache hits. Requires
	// caching enabled (CacheCapacity >= 0).
	CacheDir string
	// MaxCacheBytes bounds the disk tier's log file (0 = tier default).
	MaxCacheBytes int64
	// CacheReadOnly opens the disk tier as a snapshot: hits are served
	// but nothing is persisted.
	CacheReadOnly bool
	// Telemetry records server metrics and engine spans; nil disables.
	Telemetry *telemetry.Recorder

	// FlightRing sizes the flight recorder's always-on ring of completed
	// request records; default 256.
	FlightRing int
	// FlightLatency is the slow-request capture threshold: any request
	// whose wall time meets or exceeds it trips a flight capture. Default
	// 1s; negative disables the latency trigger (shed/degraded/internal
	// triggers stay armed — the recorder itself is always on).
	FlightLatency time.Duration
	// FlightDir, when non-empty, spools flight captures to this directory
	// with oldest-first eviction. Empty keeps captures in memory only.
	FlightDir string
	// FlightMaxCaptures bounds retained captures, in memory and on disk;
	// default 32.
	FlightMaxCaptures int
	// FlightMinInterval throttles captures per trigger reason; default 1s.
	FlightMinInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.PerConnInFlight <= 0 {
		c.PerConnInFlight = 4
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = DefaultMaxFrame
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.MaxBudgetNodes <= 0 {
		c.MaxBudgetNodes = parmem.DefaultMaxBacktrackNodes
	}
	if c.FrameTimeout <= 0 {
		c.FrameTimeout = 10 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.FlightRing <= 0 {
		c.FlightRing = 256
	}
	if c.FlightLatency == 0 {
		c.FlightLatency = time.Second
	}
	if c.FlightMaxCaptures <= 0 {
		c.FlightMaxCaptures = 32
	}
	if c.FlightMinInterval == 0 {
		c.FlightMinInterval = time.Second
	}
	return c
}

// Server is a running parmemd instance.
type Server struct {
	cfg   Config
	ln    net.Listener
	cache *parmem.AllocCache
	store parmem.CacheStore // non-nil only with Config.CacheDir
	gate  *gate

	// baseCtx parents every request context; cancelBase deadline-cancels
	// all in-flight work when a drain overruns its grace period.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	// drainMu makes "check draining, then track the request" atomic
	// against Drain setting the flag: once Drain holds the write lock, no
	// further reqWG.Add can happen, so its Wait is race-free and every
	// tracked request's response is written before connections close.
	drainMu  sync.RWMutex
	draining atomic.Bool
	drained  chan struct{} // closed when Drain completes

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	connWG sync.WaitGroup // connection read loops
	reqWG  sync.WaitGroup // in-flight requests, through response write

	flight *flightRecorder

	// Resolved nil-safe instruments (all no-ops without Telemetry).
	mConnsOpen  *telemetry.Gauge
	mConnsTotal *telemetry.Counter
	mDrainUS    *telemetry.Gauge
	mQueueWait  *telemetry.Histogram
}

// New validates cfg, binds the listener and starts the accept loop. The
// returned server is serving; stop it with Drain (graceful) or Close
// (hard).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	var cache *parmem.AllocCache
	var store parmem.CacheStore
	if cfg.CacheDir != "" {
		if cfg.CacheCapacity < 0 {
			ln.Close()
			return nil, fmt.Errorf("server: CacheDir set but caching disabled (CacheCapacity < 0)")
		}
		store, err = parmem.OpenCacheStore(parmem.CacheConfig{
			MemoryEntries: cfg.CacheCapacity,
			DiskPath:      cfg.CacheDir,
			MaxDiskBytes:  cfg.MaxCacheBytes,
			ReadOnly:      cfg.CacheReadOnly,
		})
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("server: opening cache dir: %w", err)
		}
		cache = store.Cache()
	} else if cfg.CacheCapacity >= 0 {
		cache = parmem.NewAllocCache(cfg.CacheCapacity)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		ln:          ln,
		cache:       cache,
		store:       store,
		gate:        newGate(cfg.MaxInFlight, cfg.MaxQueue, cfg.Telemetry),
		baseCtx:     ctx,
		cancelBase:  cancel,
		drained:     make(chan struct{}),
		conns:       map[net.Conn]struct{}{},
		flight:      newFlightRecorder(cfg),
		mConnsOpen:  cfg.Telemetry.Gauge(telemetry.MServerConnsOpen),
		mConnsTotal: cfg.Telemetry.Counter(telemetry.MServerConnsTotal),
		mDrainUS:    cfg.Telemetry.Gauge(telemetry.MServerDrainMicros),
		mQueueWait:  cfg.Telemetry.Histogram(telemetry.MServerQueueWaitUs),
	}
	// The flight recorder's span ring listens to every span the engine
	// emits, so a capture can include the triggering request's full tree.
	cfg.Telemetry.AddSink(s.flight.spans)
	s.connWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Draining reports whether a drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// Healthy reports process liveness (the /healthz answer): true until the
// drain has fully completed.
func (s *Server) Healthy() bool {
	select {
	case <-s.drained:
		return false
	default:
		return true
	}
}

// Ready reports readiness for new work (the /readyz answer): serving and
// not draining.
func (s *Server) Ready() bool { return !s.draining.Load() && s.Healthy() }

// MountHealth mounts /healthz (process liveness) and /readyz (accepting
// new work) on a telemetry endpoint, so one scrape address answers
// metrics, profiles and orchestration probes. During a drain /readyz
// flips to 503 immediately — load balancers stop routing — while
// /healthz stays 200 until the drain completes, so the process is not
// killed mid-drain.
func (s *Server) MountHealth(ts *telemetry.Server) {
	probe := func(name string, ok func() bool) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			if ok() {
				fmt.Fprintf(w, "%s ok\n", name)
				return
			}
			http.Error(w, name+": draining", http.StatusServiceUnavailable)
		})
	}
	ts.Handle("/healthz", probe("healthz", s.Healthy))
	ts.Handle("/readyz", probe("readyz", s.Ready))
	ts.Handle("/debug/flight", http.HandlerFunc(s.serveFlightIndex))
	ts.Handle("/debug/flight/", http.HandlerFunc(s.serveFlightCapture))
}

// flightIndex is the /debug/flight payload: the live request ring plus the
// retained captures (newest last). CaptureNames includes spooled files from
// earlier runs when FlightDir is set.
type flightIndex struct {
	Ring     []FlightRecord   `json:"ring"`
	Captures []*FlightCapture `json:"captures"`
	Spooled  []string         `json:"spooled,omitempty"`
}

func (s *Server) serveFlightIndex(w http.ResponseWriter, _ *http.Request) {
	idx := flightIndex{Ring: s.flight.Records(), Captures: s.flight.Captures()}
	if s.cfg.FlightDir != "" {
		idx.Spooled = spoolNames(s.cfg.FlightDir)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(idx) //nolint:errcheck // best-effort introspection
}

func (s *Server) serveFlightCapture(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/debug/flight/")
	// Spool names are flat; anything with a path separator is a traversal
	// attempt, not a capture.
	if name == "" || strings.ContainsAny(name, "/\\") {
		http.Error(w, "bad capture name", http.StatusBadRequest)
		return
	}
	if fc, ok := s.flight.Capture(name); ok {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fc) //nolint:errcheck
		return
	}
	if s.cfg.FlightDir != "" {
		b, err := os.ReadFile(filepath.Join(s.cfg.FlightDir, name))
		if err == nil {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Write(b) //nolint:errcheck
			return
		}
	}
	http.Error(w, "unknown capture "+name, http.StatusNotFound)
}

// FlightRecords exposes the flight ring (oldest first) for tests and
// embedders.
func (s *Server) FlightRecords() []FlightRecord { return s.flight.Records() }

// FlightCaptures exposes the retained flight captures (oldest first).
func (s *Server) FlightCaptures() []*FlightCapture { return s.flight.Captures() }

func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			// Listener closed (drain/close) or a transient accept error;
			// either way one bad accept never stops the loop — only a
			// closed listener does.
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.mu.Lock()
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		s.mConnsTotal.Inc()
		s.mConnsOpen.Add(1)
		s.connWG.Add(1)
		go s.serveConn(nc)
	}
}

// maxHeldSessions bounds the incremental results one connection may hold;
// holding another past the cap evicts the oldest (FIFO). Sessions die with
// the connection — they are working state, not a cache.
const maxHeldSessions = 8

// conn is the per-connection state shared by its request goroutines.
type conn struct {
	nc  net.Conn
	wmu sync.Mutex    // serializes response frames
	sem chan struct{} // per-connection concurrency cap

	// Held incremental sessions, by client-chosen name. AssignResult is
	// immutable (a delta forks a new one), so concurrent deltas against one
	// base are safe; the mutex only guards the map itself.
	smu      sync.Mutex
	sessions map[string]*heldSession
	order    []string // FIFO eviction order
}

// heldSession is one retained incremental result plus the configuration
// it was compiled under — deltas must replay the same K and method.
type heldSession struct {
	res *parmem.AssignResult
	cfg parmem.AssignConfig
}

// holdSession retains res under name, evicting the oldest session past the
// cap. Re-holding an existing name replaces it in place.
func (c *conn) holdSession(name string, s *heldSession) {
	c.smu.Lock()
	defer c.smu.Unlock()
	if c.sessions == nil {
		c.sessions = map[string]*heldSession{}
	}
	if _, ok := c.sessions[name]; !ok {
		c.order = append(c.order, name)
		if len(c.order) > maxHeldSessions {
			delete(c.sessions, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.sessions[name] = s
}

// session looks up a held session by name.
func (c *conn) session(name string) (*heldSession, bool) {
	c.smu.Lock()
	defer c.smu.Unlock()
	s, ok := c.sessions[name]
	return s, ok
}

// writeFrame writes one response frame under the connection's write lock
// and deadline. A peer that stops reading (full socket buffer) trips the
// deadline and the connection is abandoned — it cannot wedge the writer
// goroutine forever.
func (s *Server) writeFrame(c *conn, f Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(s.cfg.FrameTimeout)) //nolint:errcheck
	err := writeFrame(c.nc, f)
	c.nc.SetWriteDeadline(time.Time{}) //nolint:errcheck
	return err
}

// respond marshals and writes a response, counting it in the request
// metrics.
func (s *Server) respond(c *conn, op Op, id uint64, resp Response) {
	payload, err := json.Marshal(resp)
	if err != nil { // unreachable: Response marshals cleanly by shape
		payload = []byte(`{"code":"INTERNAL","error":"response marshal failed"}`)
	}
	s.cfg.Telemetry.Counter(telemetry.MServerRequests, "op", op.String(), "code", string(resp.Code)).Inc()
	s.writeFrame(c, Frame{Op: op.Response(), ID: id, Payload: payload}) //nolint:errcheck // peer gone; nothing to tell it
}

func (s *Server) badFrame(kind string) {
	s.cfg.Telemetry.Counter(telemetry.MServerBadFrames, "kind", kind).Inc()
}

// serveConn reads frames and fans requests out to handler goroutines,
// bounded by the per-connection cap. Framing failures end only this
// connection; the listener and sibling connections keep serving.
func (s *Server) serveConn(nc net.Conn) {
	defer s.connWG.Done()
	c := &conn{nc: nc, sem: make(chan struct{}, s.cfg.PerConnInFlight)}
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.mConnsOpen.Add(-1)
		nc.Close()
	}()
	br := bufio.NewReaderSize(nc, 4096)
	for {
		f, err := s.readFrame(nc, br)
		if err != nil {
			s.rejectFrame(c, f, err)
			return
		}
		start := time.Now()
		if !knownRequest(f.Op) {
			// The frame parsed cleanly, so the stream is still in sync:
			// answer and keep the connection.
			s.badFrame("unknown_op")
			s.respond(c, f.Op, f.ID, Response{Code: CodeInvalidArgument, Error: fmt.Sprintf("unknown op %d", uint8(f.Op))})
			continue
		}
		select {
		case c.sem <- struct{}{}:
		default:
			// Per-connection cap: shed immediately and typed, never a
			// silent hang behind the connection's own backlog.
			s.cfg.Telemetry.Counter(telemetry.MServerShed, "reason", "per_conn").Inc()
			s.respond(c, f.Op, f.ID, Response{Code: CodeResourceExhausted, Trace: traceEcho(f.Payload),
				Error: fmt.Sprintf("connection already has %d requests in flight", s.cfg.PerConnInFlight)})
			continue
		}
		s.drainMu.RLock()
		if s.draining.Load() {
			s.drainMu.RUnlock()
			<-c.sem
			s.cfg.Telemetry.Counter(telemetry.MServerShed, "reason", "draining").Inc()
			s.respond(c, f.Op, f.ID, Response{Code: CodeUnavailable, Trace: traceEcho(f.Payload),
				Error: "server is draining", Draining: true})
			continue
		}
		s.reqWG.Add(1)
		s.drainMu.RUnlock()
		go func(f Frame) {
			defer s.reqWG.Done()
			defer func() { <-c.sem }()
			var meta reqMeta
			resp := s.process(c, f, &meta)
			resp.Trace = meta.trace.TraceID()
			s.respond(c, f.Op, f.ID, resp)
			us := time.Since(start).Microseconds()
			s.cfg.Telemetry.Histogram(telemetry.MServerReqMicros, "op", f.Op.String()).
				ObserveExemplar(us, resp.Trace)
			rec := FlightRecord{
				Op:          f.Op.String(),
				Trace:       resp.Trace,
				Code:        string(resp.Code),
				StartUnixUS: start.UnixMicro(),
				LatencyUS:   us,
				QueueUS:     meta.queueUS,
			}
			if resp.Result != nil {
				rec.BudgetNodes = resp.Result.BudgetNodes
				rec.CacheHit = resp.Result.CacheHit
				rec.Degraded = resp.Result.Degraded
			}
			s.flight.record(rec)
		}(f)
	}
}

// reqMeta carries per-request bookkeeping from the handlers back to the
// response path: the resolved trace context and the admission queue wait.
type reqMeta struct {
	trace   telemetry.TraceContext
	queueUS int64
}

// ingressTrace resolves a request's wire trace field: a parseable context is
// continued, anything else starts a fresh trace — so every request is
// traceable and every response carries a trace id to correlate by.
func ingressTrace(wire string) telemetry.TraceContext {
	if tc, ok := telemetry.ParseTraceContext(wire); ok {
		return tc
	}
	return telemetry.NewTrace()
}

// traceEcho extracts the trace id to echo from an unprocessed payload — the
// shed paths answer before any handler parses the request, but the caller
// still deserves its correlation id back.
func traceEcho(payload []byte) string {
	if len(payload) == 0 {
		return ""
	}
	var t struct {
		Trace string `json:"trace"`
	}
	if json.Unmarshal(payload, &t) != nil {
		return ""
	}
	tc, ok := telemetry.ParseTraceContext(t.Trace)
	if !ok {
		return ""
	}
	return tc.TraceID()
}

// engineCtx returns the context engine work should run under: carrying the
// rpc span's origin when spans are recorded (the engine's root span becomes
// its local child), otherwise the wire trace context as-is.
func engineCtx(ctx context.Context, sp *telemetry.Span, tc telemetry.TraceContext) context.Context {
	if out := sp.Context(); out.Valid() {
		return telemetry.ContextWithTrace(ctx, out)
	}
	return telemetry.ContextWithTrace(ctx, tc)
}

// readFrame reads one frame with the slow-loris guard: wait for the first
// byte without a deadline (idle connections are fine), then require the
// rest of the frame within FrameTimeout.
func (s *Server) readFrame(nc net.Conn, br *bufio.Reader) (Frame, error) {
	nc.SetReadDeadline(time.Time{}) //nolint:errcheck
	b0, err := br.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	nc.SetReadDeadline(time.Now().Add(s.cfg.FrameTimeout)) //nolint:errcheck
	var hdr [HeaderLen]byte
	hdr[0] = b0
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return Frame{}, fmt.Errorf("truncated header: %w", err)
	}
	op, id, n, err := parseHeader(&hdr, s.cfg.MaxFrameBytes)
	if err != nil {
		return Frame{Op: op, ID: id}, err
	}
	f := Frame{Op: op, ID: id}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(br, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("truncated payload: %w", err)
		}
	}
	return f, nil
}

// rejectFrame classifies a framing failure, emits a best-effort typed
// error frame where the peer can still use one, and lets the connection
// close. EOF (peer hung up cleanly) is not a fault.
func (s *Server) rejectFrame(c *conn, f Frame, err error) {
	switch {
	case errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed):
		return
	case errors.Is(err, ErrFrameSize):
		// Header was sane, payload is just too big: tell the peer why
		// before closing (we will not read the oversized payload).
		s.badFrame("oversized")
		s.respond(c, f.Op, f.ID, Response{Code: CodeInvalidArgument, Error: err.Error()})
	case errors.Is(err, ErrBadMagic) || errors.Is(err, ErrBadVersion):
		// Garbage stream: nothing after this point can be trusted, and a
		// response frame would be garbage to whatever the peer is.
		s.badFrame("bad_magic")
	case errors.Is(err, io.ErrUnexpectedEOF):
		s.badFrame("truncated")
	default:
		// Read timeout (slow loris) or transport error mid-frame.
		s.badFrame("timeout")
	}
}

// process executes one admitted-or-shed request and builds its response.
// It never panics: a poisoned request is isolated here and answered with
// a typed INTERNAL response while sibling requests keep running. Each known
// request resolves its trace context at ingress (recorded into meta for the
// response echo and the flight record) and runs under a per-request rpc
// span that parents the engine's own span tree.
func (s *Server) process(c *conn, f Frame, meta *reqMeta) (resp Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = Response{Code: CodeInternal, Phase: "server/handler",
				Error: fmt.Sprintf("panic: %v\n%s", r, debug.Stack())}
		}
	}()
	switch f.Op {
	case OpPing:
		var req PingRequest
		if len(f.Payload) > 0 {
			json.Unmarshal(f.Payload, &req) //nolint:errcheck // a garbled ping payload still gets a pong
		}
		meta.trace = ingressTrace(req.Trace)
		return Response{Code: CodeOK, Draining: s.draining.Load()}
	case OpCompile:
		var req CompileRequest
		if err := json.Unmarshal(f.Payload, &req); err != nil {
			return Response{Code: CodeInvalidArgument, Error: "bad compile payload: " + err.Error()}
		}
		meta.trace = ingressTrace(req.Trace)
		sp := s.cfg.Telemetry.StartSpanTrace("rpc_compile", meta.trace)
		defer sp.End()
		return s.handleCompile(req, meta, sp)
	case OpAssign:
		var req AssignRequest
		if err := json.Unmarshal(f.Payload, &req); err != nil {
			return Response{Code: CodeInvalidArgument, Error: "bad assign payload: " + err.Error()}
		}
		meta.trace = ingressTrace(req.Trace)
		sp := s.cfg.Telemetry.StartSpanTrace("rpc_assign", meta.trace)
		defer sp.End()
		return s.handleAssign(c, req, meta, sp)
	case OpDelta:
		var req DeltaRequest
		if err := json.Unmarshal(f.Payload, &req); err != nil {
			return Response{Code: CodeInvalidArgument, Error: "bad delta payload: " + err.Error()}
		}
		meta.trace = ingressTrace(req.Trace)
		sp := s.cfg.Telemetry.StartSpanTrace("rpc_delta", meta.trace)
		defer sp.End()
		return s.handleDelta(c, req, meta, sp)
	case OpBatch:
		var req BatchRequest
		if err := json.Unmarshal(f.Payload, &req); err != nil {
			return Response{Code: CodeInvalidArgument, Error: "bad batch payload: " + err.Error()}
		}
		meta.trace = ingressTrace(req.Trace)
		sp := s.cfg.Telemetry.StartSpanTrace("rpc_batch", meta.trace)
		defer sp.End()
		return s.handleBatch(req, meta, sp)
	}
	return Response{Code: CodeInvalidArgument, Error: fmt.Sprintf("unknown op %d", uint8(f.Op))}
}

// requestCtx maps a request's deadline_ms onto a context under baseCtx,
// clamped to MaxDeadline.
func (s *Server) requestCtx(deadlineMS int64) (context.Context, context.CancelFunc, error) {
	d := s.cfg.DefaultDeadline
	if deadlineMS < 0 {
		return nil, nil, fmt.Errorf("deadline_ms %d: must be non-negative", deadlineMS)
	}
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, d)
	return ctx, cancel, nil
}

// requestBudget maps budget_nodes onto an engine Budget, clamped to
// MaxBudgetNodes; negative (unlimited) is not accepted from the network.
func (s *Server) requestBudget(nodes int64) (parmem.Budget, error) {
	if nodes < 0 {
		return parmem.Budget{}, fmt.Errorf("budget_nodes %d: unlimited budgets are not accepted over the network", nodes)
	}
	if nodes == 0 || nodes > s.cfg.MaxBudgetNodes {
		nodes = s.cfg.MaxBudgetNodes
	}
	return parmem.Budget{MaxBacktrackNodes: nodes}, nil
}

func parseStrategy(s string) (parmem.Strategy, error) {
	switch s {
	case "", "STOR1":
		return parmem.STOR1, nil
	case "STOR2":
		return parmem.STOR2, nil
	case "STOR3":
		return parmem.STOR3, nil
	case "PerRegion":
		return parmem.PerRegion, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func parseMethod(s string) (parmem.Method, error) {
	switch s {
	case "", "hittingset":
		return parmem.HittingSet, nil
	case "backtrack":
		return parmem.Backtrack, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

// admit runs fn under the admission gate and the request context,
// translating gate and context failures into typed responses. The queue
// wait (acquire entry to slot grant) lands in meta and the queue-wait
// histogram, exemplared with the request's trace id.
func (s *Server) admit(ctx context.Context, meta *reqMeta, fn func(ctx context.Context) Response) Response {
	enter := time.Now()
	err := s.gate.acquire(ctx)
	wait := time.Since(enter).Microseconds()
	if meta != nil {
		meta.queueUS = wait
		s.mQueueWait.ObserveExemplar(wait, meta.trace.TraceID())
	}
	if err != nil {
		if errors.Is(err, errShed) {
			s.cfg.Telemetry.Counter(telemetry.MServerShed, "reason", "queue_full").Inc()
			return Response{Code: CodeResourceExhausted,
				Error: fmt.Sprintf("admission queue full (%d running, %d queued)", s.cfg.MaxInFlight, s.cfg.MaxQueue)}
		}
		return Response{Code: codeForCtx(ctx), Error: "expired while queued: " + err.Error()}
	}
	defer s.gate.release()
	if testHookAdmitted != nil {
		testHookAdmitted(ctx)
	}
	// A request that spent its whole deadline queued gets a typed expiry
	// instead of burning an execution slot on doomed work.
	if ctx.Err() != nil {
		return Response{Code: codeForCtx(ctx), Error: "expired before execution: " + ctx.Err().Error()}
	}
	return fn(ctx)
}

// testHookAdmitted, when non-nil, runs after a request has acquired its
// admission slot and before its handler executes. Tests use it to park
// requests in their slots deterministically; production never sets it.
var testHookAdmitted func(ctx context.Context)

// codeForCtx distinguishes a request that ran out of its own deadline
// from one canceled by hard shutdown.
func codeForCtx(ctx context.Context) Code {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return CodeDeadlineExceeded
	}
	return CodeCanceled
}

// codeForError maps an engine error onto the wire taxonomy.
func codeForError(ctx context.Context, err error) (Code, string) {
	var ie *parmem.InternalError
	switch {
	case errors.As(err, &ie):
		return CodeInternal, ie.Phase
	case errors.Is(err, parmem.ErrCanceled):
		return codeForCtx(ctx), ""
	case errors.Is(err, parmem.ErrBudget):
		return CodeDeadlineExceeded, ""
	default:
		// Everything else the engine rejects — parse errors, config
		// errors (parmem.ErrConfig), bad instruction streams — is the
		// client's input.
		return CodeInvalidArgument, ""
	}
}

func (s *Server) handleCompile(req CompileRequest, meta *reqMeta, sp *telemetry.Span) Response {
	opt, resp := s.compileOptions(req.K, req.Strategy, req.Method, req.BudgetNodes)
	if resp != nil {
		return *resp
	}
	ctx, cancel, err := s.requestCtx(req.DeadlineMS)
	if err != nil {
		return Response{Code: CodeInvalidArgument, Error: err.Error()}
	}
	defer cancel()
	ctx = engineCtx(ctx, sp, meta.trace)
	return s.admit(ctx, meta, func(ctx context.Context) Response {
		p, err := parmem.CompileCtx(ctx, req.Src, opt)
		if err != nil {
			code, phase := codeForError(ctx, err)
			return Response{Code: code, Phase: phase, Error: err.Error()}
		}
		sum := summarize(p.Alloc, false)
		sum.Words = len(p.Sched.Words)
		return Response{Code: CodeOK, Result: sum}
	})
}

// compileOptions builds the engine Options shared by compile and batch
// requests, or a typed error response.
func (s *Server) compileOptions(k int, strategy, method string, nodes int64) (parmem.Options, *Response) {
	bad := func(msg string) (parmem.Options, *Response) {
		return parmem.Options{}, &Response{Code: CodeInvalidArgument, Error: msg}
	}
	st, err := parseStrategy(strategy)
	if err != nil {
		return bad(err.Error())
	}
	m, err := parseMethod(method)
	if err != nil {
		return bad(err.Error())
	}
	b, err := s.requestBudget(nodes)
	if err != nil {
		return bad(err.Error())
	}
	return parmem.Options{
		Modules:   k,
		Strategy:  st,
		Method:    m,
		Budget:    b,
		Workers:   s.cfg.Workers,
		Store:     s.store,
		Cache:     s.cache,
		Telemetry: s.cfg.Telemetry,
	}, nil
}

func (s *Server) handleAssign(c *conn, req AssignRequest, meta *reqMeta, sp *telemetry.Span) Response {
	st, err := parseStrategy(req.Strategy)
	if err != nil {
		return Response{Code: CodeInvalidArgument, Error: err.Error()}
	}
	m, err := parseMethod(req.Method)
	if err != nil {
		return Response{Code: CodeInvalidArgument, Error: err.Error()}
	}
	b, err := s.requestBudget(req.BudgetNodes)
	if err != nil {
		return Response{Code: CodeInvalidArgument, Error: err.Error()}
	}
	instrs, badResp := wireInstrs(req.Instrs)
	if badResp != nil {
		return *badResp
	}
	ctx, cancel, err := s.requestCtx(req.DeadlineMS)
	if err != nil {
		return Response{Code: CodeInvalidArgument, Error: err.Error()}
	}
	defer cancel()
	cfg := parmem.AssignConfig{
		K:         req.K,
		Strategy:  st,
		Method:    m,
		Budget:    b,
		Workers:   s.cfg.Workers,
		Store:     s.store,
		Cache:     s.cache,
		Telemetry: s.cfg.Telemetry,
	}
	ctx = engineCtx(ctx, sp, meta.trace)
	return s.admit(ctx, meta, func(ctx context.Context) Response {
		if req.Hold == "" {
			al, err := parmem.AssignValues(ctx, instrs, cfg)
			if err != nil {
				code, phase := codeForError(ctx, err)
				return Response{Code: code, Phase: phase, Error: err.Error()}
			}
			return Response{Code: CodeOK, Result: summarize(al, true)}
		}
		res, err := parmem.AssignValuesIncremental(ctx, instrs, cfg)
		if err != nil {
			code, phase := codeForError(ctx, err)
			return Response{Code: code, Phase: phase, Error: err.Error()}
		}
		c.holdSession(req.Hold, &heldSession{res: res, cfg: cfg})
		return Response{Code: CodeOK, Result: summarize(res.Alloc, true),
			Held: req.Hold, Incremental: incrWire(res.Incremental)}
	})
}

// handleDelta patches a held incremental session. The configuration is the
// base's; only the budget and deadline come from the request.
func (s *Server) handleDelta(c *conn, req DeltaRequest, meta *reqMeta, sp *telemetry.Span) Response {
	if req.Base == "" {
		return Response{Code: CodeInvalidArgument, Error: "delta has no base session"}
	}
	sess, ok := c.session(req.Base)
	if !ok {
		return Response{Code: CodeInvalidArgument,
			Error: fmt.Sprintf("unknown base session %q (hold one with an assign request first)", req.Base)}
	}
	b, err := s.requestBudget(req.BudgetNodes)
	if err != nil {
		return Response{Code: CodeInvalidArgument, Error: err.Error()}
	}
	var d parmem.Delta
	for _, ch := range req.Changed {
		d.Changed = append(d.Changed, parmem.ChangedInstruction{Index: ch.Index, Instr: parmem.Instruction(ch.Ops)})
	}
	d.Removed = req.Removed
	added, badResp := wireInstrs(req.Added)
	if badResp != nil {
		return *badResp
	}
	d.Added = added
	ctx, cancel, err := s.requestCtx(req.DeadlineMS)
	if err != nil {
		return Response{Code: CodeInvalidArgument, Error: err.Error()}
	}
	defer cancel()
	cfg := sess.cfg
	cfg.Budget = b
	ctx = engineCtx(ctx, sp, meta.trace)
	return s.admit(ctx, meta, func(ctx context.Context) Response {
		res, err := parmem.AssignValuesDelta(ctx, sess.res, d, cfg)
		if err != nil {
			code, phase := codeForError(ctx, err)
			return Response{Code: code, Phase: phase, Error: err.Error()}
		}
		resp := Response{Code: CodeOK, Result: summarize(res.Alloc, true),
			Incremental: incrWire(res.Incremental)}
		if req.Hold != "" {
			c.holdSession(req.Hold, &heldSession{res: res, cfg: cfg})
			resp.Held = req.Hold
		}
		return resp
	})
}

// wireInstrs validates and converts wire operand sets to instructions.
func wireInstrs(ops [][]int) ([]parmem.Instruction, *Response) {
	instrs := make([]parmem.Instruction, len(ops))
	for i, set := range ops {
		for _, v := range set {
			if v < 0 {
				return nil, &Response{Code: CodeInvalidArgument,
					Error: fmt.Sprintf("instrs[%d]: negative value id %d", i, v)}
			}
		}
		instrs[i] = parmem.Instruction(set)
	}
	return instrs, nil
}

// incrWire converts incremental stats to their wire form.
func incrWire(st parmem.IncrementalStats) *IncrSummary {
	return &IncrSummary{Components: st.Components, Dirty: st.Dirty,
		Reused: st.Reused, CacheHits: st.CacheHits, Full: st.Full}
}

func (s *Server) handleBatch(req BatchRequest, meta *reqMeta, sp *telemetry.Span) Response {
	if len(req.Srcs) == 0 {
		return Response{Code: CodeInvalidArgument, Error: "batch has no sources"}
	}
	if len(req.Srcs) > s.cfg.MaxBatchItems {
		return Response{Code: CodeInvalidArgument,
			Error: fmt.Sprintf("batch of %d sources exceeds the cap of %d", len(req.Srcs), s.cfg.MaxBatchItems)}
	}
	opt, badResp := s.compileOptions(req.K, req.Strategy, req.Method, req.BudgetNodes)
	if badResp != nil {
		return *badResp
	}
	ctx, cancel, err := s.requestCtx(req.DeadlineMS)
	if err != nil {
		return Response{Code: CodeInvalidArgument, Error: err.Error()}
	}
	defer cancel()
	ctx = engineCtx(ctx, sp, meta.trace)
	return s.admit(ctx, meta, func(ctx context.Context) Response {
		results := parmem.CompileBatch(ctx, req.Srcs, opt)
		items := make([]ItemResult, len(results))
		for i, r := range results {
			if r.Err != nil {
				code, _ := codeForError(ctx, r.Err)
				items[i] = ItemResult{Code: code, Error: r.Err.Error()}
				continue
			}
			sum := summarize(r.Program.Alloc, false)
			sum.Words = len(r.Program.Sched.Words)
			items[i] = ItemResult{Code: CodeOK, Result: sum}
		}
		return Response{Code: CodeOK, Items: items}
	})
}

// summarize converts an Allocation to its wire form; withCopies includes
// the full value->modules placement.
func summarize(al parmem.Allocation, withCopies bool) *AllocSummary {
	sum := &AllocSummary{
		Values:      al.SingleCopy + al.MultiCopy,
		SingleCopy:  al.SingleCopy,
		MultiCopy:   al.MultiCopy,
		TotalCopies: al.TotalCopies,
		Atoms:       al.Atoms,
		Degraded:    al.Degraded,
	}
	for _, ph := range al.Phases {
		sum.BudgetNodes += ph.Nodes
		if ph.Cached && sum.CacheHit == "" {
			sum.CacheHit = ph.Phase
		}
	}
	if withCopies {
		sum.Copies = make(map[int][]int, len(al.Copies))
		for id, set := range al.Copies {
			sum.Copies[id] = set.Modules()
		}
	}
	return sum
}

// Drain gracefully shuts the server down: stop accepting connections,
// refuse new requests on existing ones with UNAVAILABLE, let in-flight
// work finish, and — if ctx expires first — deadline-cancel the stragglers
// so even they get a typed response. Every admitted request has its
// response written before Drain returns: zero in-flight responses are
// dropped. Safe to call once; subsequent calls wait for the first.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	first := s.draining.CompareAndSwap(false, true)
	s.drainMu.Unlock()
	if !first {
		<-s.drained
		return nil
	}
	start := time.Now()
	s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Grace period over: cancel every in-flight request. The engine
		// polls cancellation at phase boundaries and inside its search
		// loops, so this converges quickly — and the handlers still
		// write their (CANCELED) responses before reqWG releases.
		err = fmt.Errorf("server: drain grace period expired; canceled in-flight work: %w", ctx.Err())
		s.cancelBase()
		<-done
	}

	// All responses are written; now the connections can go.
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	s.cancelBase()
	// With no request able to start and none in flight, flush and release
	// the persistent cache tier so the next daemon over this directory
	// opens a complete, unlocked log.
	if s.store != nil {
		if cerr := s.store.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("server: closing cache store: %w", cerr)
		}
	}
	s.mDrainUS.Set(time.Since(start).Microseconds())
	close(s.drained)
	return err
}

// CacheStats snapshots the shared allocation cache; ok is false when
// caching is disabled.
func (s *Server) CacheStats() (st parmem.CacheStats, ok bool) {
	if s.cache == nil {
		return parmem.CacheStats{}, false
	}
	return s.cache.Stats(), true
}

// DiskCacheStats snapshots the persistent cache tier; ok is false without
// Config.CacheDir.
func (s *Server) DiskCacheStats() (st parmem.DiskCacheStats, ok bool) {
	if s.store == nil {
		return parmem.DiskCacheStats{}, false
	}
	return s.store.DiskStats()
}

// Close hard-stops the server: cancel all work, close everything, wait.
// Prefer Drain; Close is for tests and fatal teardown.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // a pre-expired drain deadline = cancel in-flight work now
	if err := s.Drain(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	return nil
}
