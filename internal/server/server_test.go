package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"parmem"
	"parmem/internal/faultinject"
	"parmem/internal/telemetry"
)

const testSrc = `
program quick;
var a, b, c: int;
begin
  a := 2;
  b := 3;
  c := a * b + a;
end
`

// newTestServer starts a server on a free port with test-friendly bounds
// and registers cleanup.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.FrameTimeout == 0 {
		cfg.FrameTimeout = 500 * time.Millisecond
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialTest(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPingCompileAssignBatch(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialTest(t, s)
	ctx := context.Background()

	resp, err := c.Ping(ctx)
	if err != nil || resp.Code != CodeOK || resp.Draining {
		t.Fatalf("ping: %+v, %v", resp, err)
	}

	resp, err = c.Compile(ctx, CompileRequest{Src: testSrc})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeOK || resp.Result == nil || resp.Result.Values == 0 || resp.Result.Words == 0 {
		t.Fatalf("compile: %+v", resp)
	}

	resp, err = c.Assign(ctx, AssignRequest{
		Instrs: [][]int{{0, 1, 2}, {1, 2, 3}, {0, 3}},
		K:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeOK || resp.Result == nil || len(resp.Result.Copies) == 0 {
		t.Fatalf("assign: %+v", resp)
	}
	// The returned placement must actually be conflict-free.
	copies := parmem.Copies{}
	for id, mods := range resp.Result.Copies {
		for _, m := range mods {
			copies[id] = copies[id].Add(m)
		}
	}
	for _, word := range [][]int{{0, 1, 2}, {1, 2, 3}, {0, 3}} {
		if !parmem.ConflictFree(word, copies) {
			t.Fatalf("returned allocation leaves %v conflicting", word)
		}
	}

	resp, err = c.Batch(ctx, BatchRequest{Srcs: []string{testSrc, testSrc, "program broken"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeOK || len(resp.Items) != 3 {
		t.Fatalf("batch: %+v", resp)
	}
	if resp.Items[0].Code != CodeOK || resp.Items[1].Code != CodeOK {
		t.Fatalf("batch items 0/1 should compile: %+v", resp.Items)
	}
	if resp.Items[2].Code != CodeInvalidArgument {
		t.Fatalf("batch item 2 is a parse error, got %+v", resp.Items[2])
	}
}

func TestMalformedPayloadKeepsConnection(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialTest(t, s)
	ctx := context.Background()

	// Raw garbage JSON inside a perfectly framed request.
	resp, err := c.Do(ctx, OpCompile, nil) // empty payload: not valid JSON for a CompileRequest
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeInvalidArgument {
		t.Fatalf("want INVALID_ARGUMENT, got %+v", resp)
	}

	// Unknown op: framed fine, still typed, connection still usable.
	resp, err = c.Do(ctx, Op(42), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeInvalidArgument {
		t.Fatalf("unknown op: want INVALID_ARGUMENT, got %+v", resp)
	}

	// Bad MPL source and bad config are the client's fault, typed.
	for _, req := range []CompileRequest{
		{Src: "not a program"},
		{Src: testSrc, K: 65},
		{Src: testSrc, Strategy: "STOR9"},
		{Src: testSrc, BudgetNodes: -1},
		{Src: testSrc, DeadlineMS: -5},
	} {
		resp, err = c.Compile(ctx, req)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if resp.Code != CodeInvalidArgument {
			t.Fatalf("%+v: want INVALID_ARGUMENT, got %+v", req, resp)
		}
	}

	// And after all that abuse the connection still serves real work.
	resp, err = c.Compile(ctx, CompileRequest{Src: testSrc})
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("connection poisoned: %+v, %v", resp, err)
	}
}

func TestGarbageStreamClosesOnlyThatConnection(t *testing.T) {
	s := newTestServer(t, Config{})

	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("GET / HTTP/1.1\r\nHost: nope\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	if _, err := nc.Read(buf); err == nil {
		// Drain until close; the server must hang up.
		for err == nil {
			_, err = nc.Read(buf)
		}
	}

	// A sibling connection is unaffected.
	c := dialTest(t, s)
	resp, err := c.Ping(context.Background())
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("listener damaged by garbage stream: %+v, %v", resp, err)
	}
}

func TestOversizedFrameTypedReject(t *testing.T) {
	s := newTestServer(t, Config{MaxFrameBytes: 1024})

	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:2], Magic)
	hdr[2] = Version
	hdr[3] = uint8(OpCompile)
	binary.BigEndian.PutUint64(hdr[4:12], 42)
	binary.BigEndian.PutUint32(hdr[12:16], 1<<20)
	if _, err := nc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	f, err := readFrame(nc, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("expected a typed reject frame, got %v", err)
	}
	if f.ID != 42 || !f.Op.IsResponse() {
		t.Fatalf("reject frame should echo the request id: %+v", f)
	}
	if !strings.Contains(string(f.Payload), string(CodeInvalidArgument)) {
		t.Fatalf("reject payload: %s", f.Payload)
	}
	// The connection is then closed (the payload was never read, so the
	// stream cannot stay in sync).
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFrame(nc, DefaultMaxFrame); err == nil {
		t.Fatal("connection should be closed after an oversized frame")
	}
}

func TestSlowLorisKilled(t *testing.T) {
	s := newTestServer(t, Config{FrameTimeout: 200 * time.Millisecond})

	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	f := appendFrame(nil, Frame{Op: OpPing, ID: 1})
	// First byte opens the frame window; then stall.
	if _, err := nc.Write(f[:1]); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	var rerr error
	for rerr == nil {
		_, rerr = nc.Read(buf)
	}
	if errors.Is(rerr, io.EOF) == false && !strings.Contains(rerr.Error(), "reset") {
		t.Logf("connection ended with: %v", rerr)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("slow-loris connection survived %v; frame timeout not enforced", elapsed)
	}

	// The daemon is still serving.
	c := dialTest(t, s)
	if resp, err := c.Ping(context.Background()); err != nil || resp.Code != CodeOK {
		t.Fatalf("server unhealthy after slow loris: %+v, %v", resp, err)
	}
}

func TestPerConnCapSheds(t *testing.T) {
	rec := telemetry.New()
	s := newTestServer(t, Config{PerConnInFlight: 1, MaxInFlight: 1, MaxQueue: 4, Telemetry: rec})
	c := dialTest(t, s)
	ctx := context.Background()

	// Fire a burst of concurrent compiles on one connection: with one
	// per-conn slot, at least one must come back RESOURCE_EXHAUSTED and
	// every single one must come back with something.
	const n = 8
	codes := make(chan Code, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Compile(ctx, CompileRequest{Src: testSrc})
			if err != nil {
				codes <- Code("TRANSPORT:" + err.Error())
				return
			}
			codes <- resp.Code
		}()
	}
	wg.Wait()
	close(codes)
	var ok, shed int
	for code := range codes {
		switch code {
		case CodeOK:
			ok++
		case CodeResourceExhausted:
			shed++
		default:
			t.Fatalf("unexpected outcome %q", code)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("want both successes and sheds, got ok=%d shed=%d", ok, shed)
	}
	if got := rec.MetricsSnapshot()[`parmem_server_shed_total{reason="per_conn"}`]; got == 0 {
		t.Fatal("per_conn shed metric not recorded")
	}
}

// parkAdmitted installs the admitted-hook so every admitted request blocks
// until the returned release func is called (or its ctx expires). Must be
// called before the test server is created so the hook outlives it.
func parkAdmitted(t *testing.T) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	testHookAdmitted = func(ctx context.Context) {
		select {
		case <-ch:
		case <-ctx.Done():
		}
	}
	t.Cleanup(func() { testHookAdmitted = nil })
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func TestAdmissionQueueSheds(t *testing.T) {
	release := parkAdmitted(t)
	rec := telemetry.New()
	// One slot, no queue: while the slot is held, any other request must
	// shed immediately with a typed RESOURCE_EXHAUSTED — never hang.
	s := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: -1, PerConnInFlight: 4, Telemetry: rec})
	ctx := context.Background()

	holder := dialTest(t, s)
	parked := make(chan outcomeResp, 1)
	go func() {
		resp, err := holder.Compile(ctx, CompileRequest{Src: testSrc, DeadlineMS: 10_000})
		parked <- outcomeResp{resp, err}
	}()
	waitGauge(t, rec, "parmem_server_inflight", 1)

	probe := dialTest(t, s)
	start := time.Now()
	resp, err := probe.Compile(ctx, CompileRequest{Src: testSrc})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeResourceExhausted {
		t.Fatalf("want RESOURCE_EXHAUSTED while the slot is held, got %+v", resp)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shed took %v; load shedding must be immediate, not a hang", d)
	}
	if got := rec.MetricsSnapshot()[`parmem_server_shed_total{reason="queue_full"}`]; got == 0 {
		t.Fatal("queue_full shed metric not recorded")
	}

	release()
	o := <-parked
	if o.err != nil || o.resp.Code != CodeOK {
		t.Fatalf("parked request should complete once released: %+v, %v", o.resp, o.err)
	}
}

// waitGauge polls the recorder until the named gauge reaches at least want.
func waitGauge(t *testing.T, rec *telemetry.Recorder, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for rec.MetricsSnapshot()[name] < want {
		if time.Now().After(deadline) {
			t.Fatalf("gauge %s never reached %d (now %d)", name, want, rec.MetricsSnapshot()[name])
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDeadlineExceededTyped(t *testing.T) {
	// Park every admitted request until its own deadline fires: the hook
	// stands in for a compile slow enough to blow a 50ms budget.
	parkAdmitted(t)
	s := newTestServer(t, Config{})
	c := dialTest(t, s)

	resp, err := c.Compile(context.Background(), CompileRequest{Src: testSrc, DeadlineMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeDeadlineExceeded {
		t.Fatalf("want DEADLINE_EXCEEDED, got %+v", resp)
	}
}

func TestPanicIsolation(t *testing.T) {
	defer faultinject.Reset()
	s := newTestServer(t, Config{})
	c := dialTest(t, s)
	sibling := dialTest(t, s)
	ctx := context.Background()

	req := AssignRequest{Instrs: [][]int{{0, 1, 2}, {1, 2, 3}}, K: 4}

	faultinject.Arm("assign.phase")
	resp, err := c.Assign(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeInternal {
		t.Fatalf("armed fault: want INTERNAL, got %+v", resp)
	}
	if !strings.HasPrefix(resp.Phase, "assign") {
		t.Fatalf("INTERNAL response should name the phase, got %q", resp.Phase)
	}

	// Sibling connection unaffected while the fault is still armed (ping
	// does not reach the armed point).
	if resp, err := sibling.Ping(ctx); err != nil || resp.Code != CodeOK {
		t.Fatalf("sibling connection damaged: %+v, %v", resp, err)
	}

	faultinject.Reset()
	// The same connection keeps serving after the poisoned request.
	resp, err = c.Assign(ctx, req)
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("connection dead after panic isolation: %+v, %v", resp, err)
	}
}

func TestDrainUnderLoad(t *testing.T) {
	release := parkAdmitted(t)
	rec := telemetry.New()
	s := newTestServer(t, Config{MaxInFlight: 2, MaxQueue: 32, PerConnInFlight: 32, Telemetry: rec})
	c := dialTest(t, s)
	ctx := context.Background()

	// Park a pile of requests in flight (2 running, the rest queued).
	const n = 12
	results := make(chan outcomeResp, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := c.Compile(ctx, CompileRequest{Src: testSrc, DeadlineMS: 10_000})
			results <- outcomeResp{resp, err}
		}()
	}
	waitGauge(t, rec, "parmem_server_inflight", 2)

	// Start the drain while the load is parked, then let it run to
	// completion by releasing the parked requests.
	drained := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		drained <- s.Drain(dctx)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if s.Ready() {
		t.Fatal("server still ready after drain")
	}

	// Every single request got a response: the drain dropped nothing.
	for i := 0; i < n; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("request %d lost its response during drain: %v", i, o.err)
		}
		switch o.resp.Code {
		case CodeOK, CodeUnavailable, CodeCanceled, CodeDeadlineExceeded:
		default:
			t.Fatalf("request %d: unexpected drain-time code %+v", i, o.resp)
		}
	}

	// The listener is closed: new connections are refused.
	if _, err := net.DialTimeout("tcp", s.Addr(), time.Second); err == nil {
		t.Fatal("listener still accepting after drain")
	}
	if rec.MetricsSnapshot()["parmem_server_drain_us"] == 0 {
		t.Fatal("drain duration metric not recorded")
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	release := parkAdmitted(t)
	rec := telemetry.New()
	s := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 8, PerConnInFlight: 8, Telemetry: rec})
	c := dialTest(t, s)
	ctx := context.Background()

	// Hold the single slot so the drain has something in flight.
	slow := make(chan outcomeResp, 1)
	go func() {
		resp, err := c.Compile(ctx, CompileRequest{Src: testSrc, DeadlineMS: 10_000})
		slow <- outcomeResp{resp, err}
	}()
	waitGauge(t, rec, "parmem_server_inflight", 1)

	go s.Drain(context.Background()) //nolint:errcheck
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}

	// The in-flight request is still parked, so the connection is alive:
	// new work on it must be refused with a typed UNAVAILABLE.
	resp, err := c.Compile(ctx, CompileRequest{Src: testSrc})
	if err != nil {
		t.Fatalf("probe during drain lost its response: %v", err)
	}
	if resp.Code != CodeUnavailable {
		t.Fatalf("request during drain: want UNAVAILABLE, got %+v", resp)
	}
	if got := rec.MetricsSnapshot()[`parmem_server_shed_total{reason="draining"}`]; got == 0 {
		t.Fatal("draining shed metric not recorded")
	}

	release()
	o := <-slow
	if o.err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", o.err)
	}
	if o.resp.Code != CodeOK {
		t.Fatalf("in-flight request during drain: %+v", o.resp)
	}
}

type outcomeResp struct {
	resp Response
	err  error
}

func TestHealthEndpoints(t *testing.T) {
	rec := telemetry.New()
	s := newTestServer(t, Config{Telemetry: rec})
	ts, err := rec.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	s.MountHealth(ts)

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ts.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz = %d", got)
	}
	// Metrics still served on the same endpoint.
	if got := get("/metrics"); got != http.StatusOK {
		t.Fatalf("/metrics = %d", got)
	}

	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after completed drain = %d, want 503", got)
	}
}

// TestDeltaSessionRoundTrip drives the incremental wire path: hold a base
// with an assign request, patch it with deltas, verify the patched
// placement is conflict-free and matches a cold assign of the edited
// stream, and check the session-scoping error paths.
func TestDeltaSessionRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialTest(t, s)
	ctx := context.Background()

	instrs := [][]int{{0, 1, 2}, {1, 2, 3}, {4, 5}, {5, 6}}
	resp, err := c.Assign(ctx, AssignRequest{Instrs: instrs, K: 4, Hold: "base"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeOK || resp.Held != "base" || resp.Incremental == nil {
		t.Fatalf("assign+hold: %+v", resp)
	}
	if !resp.Incremental.Full || resp.Incremental.Components != 2 {
		t.Fatalf("cold hold stats: %+v", resp.Incremental)
	}

	// Patch: rewrite one instruction in the first component, append a word.
	edited := [][]int{{0, 1, 3}, {1, 2, 3}, {4, 5}, {5, 6}, {7, 8}}
	resp, err = c.Delta(ctx, DeltaRequest{
		Base:    "base",
		Hold:    "base2",
		Changed: []ChangedOp{{Index: 0, Ops: []int{0, 1, 3}}},
		Added:   [][]int{{7, 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeOK || resp.Held != "base2" || resp.Incremental == nil {
		t.Fatalf("delta: %+v", resp)
	}
	if resp.Incremental.Full || resp.Incremental.Reused == 0 {
		t.Fatalf("delta stats show no reuse: %+v", resp.Incremental)
	}
	copies := parmem.Copies{}
	for id, mods := range resp.Result.Copies {
		for _, m := range mods {
			copies[id] = copies[id].Add(m)
		}
	}
	for _, word := range edited {
		if !parmem.ConflictFree(word, copies) {
			t.Fatalf("patched allocation leaves %v conflicting", word)
		}
	}
	cold, err := c.Assign(ctx, AssignRequest{Instrs: edited, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Code != CodeOK {
		t.Fatalf("cold assign: %+v", cold)
	}
	// The patched placement must be bit-identical to the cold recompile.
	if !reflect.DeepEqual(resp.Result.Copies, cold.Result.Copies) ||
		resp.Result.TotalCopies != cold.Result.TotalCopies ||
		resp.Result.Atoms != cold.Result.Atoms {
		t.Fatalf("delta result differs from cold recompile:\n got %+v\nwant %+v", resp.Result, cold.Result)
	}

	// Chained delta against the patched session.
	resp, err = c.Delta(ctx, DeltaRequest{Base: "base2", Removed: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeOK || resp.Held != "" {
		t.Fatalf("chained delta without hold: %+v", resp)
	}

	// Error paths: unknown base, missing base, out-of-range edit.
	resp, err = c.Delta(ctx, DeltaRequest{Base: "nope"})
	if err != nil || resp.Code != CodeInvalidArgument {
		t.Fatalf("unknown base: %+v, %v", resp, err)
	}
	resp, err = c.Delta(ctx, DeltaRequest{})
	if err != nil || resp.Code != CodeInvalidArgument {
		t.Fatalf("missing base: %+v, %v", resp, err)
	}
	resp, err = c.Delta(ctx, DeltaRequest{Base: "base", Removed: []int{99}})
	if err != nil || resp.Code != CodeInvalidArgument {
		t.Fatalf("out-of-range removal: %+v, %v", resp, err)
	}
	// Hold with a non-STOR1 strategy is rejected up front.
	resp, err = c.Assign(ctx, AssignRequest{Instrs: instrs, K: 4, Strategy: "STOR2", Hold: "s2"})
	if err != nil || resp.Code != CodeInvalidArgument {
		t.Fatalf("non-STOR1 hold: %+v, %v", resp, err)
	}

	// Sessions are per-connection: a second client cannot see "base".
	c2 := dialTest(t, s)
	resp, err = c2.Delta(ctx, DeltaRequest{Base: "base"})
	if err != nil || resp.Code != CodeInvalidArgument {
		t.Fatalf("cross-connection base: %+v, %v", resp, err)
	}
}

// TestDeltaSessionEviction pins the FIFO cap on held sessions.
func TestDeltaSessionEviction(t *testing.T) {
	s := newTestServer(t, Config{})
	c := dialTest(t, s)
	ctx := context.Background()
	instrs := [][]int{{0, 1}, {1, 2}}
	for i := 0; i <= maxHeldSessions; i++ {
		resp, err := c.Assign(ctx, AssignRequest{
			Instrs: instrs, K: 4, Hold: fmt.Sprintf("s%d", i),
		})
		if err != nil || resp.Code != CodeOK {
			t.Fatalf("hold s%d: %+v, %v", i, resp, err)
		}
	}
	// s0 was evicted by the (cap+1)-th hold; s1 survives.
	resp, err := c.Delta(ctx, DeltaRequest{Base: "s0"})
	if err != nil || resp.Code != CodeInvalidArgument {
		t.Fatalf("evicted base should be unknown: %+v, %v", resp, err)
	}
	resp, err = c.Delta(ctx, DeltaRequest{Base: "s1"})
	if err != nil || resp.Code != CodeOK {
		t.Fatalf("s1 should survive: %+v, %v", resp, err)
	}
}
