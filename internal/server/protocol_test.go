package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	in := Frame{Op: OpCompile, ID: 0xDEADBEEF12345678, Payload: []byte(`{"src":"x"}`)}
	var buf bytes.Buffer
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || out.ID != in.ID || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
	// Empty payload too.
	buf.Reset()
	if err := writeFrame(&buf, Frame{Op: OpPing, ID: 1}); err != nil {
		t.Fatal(err)
	}
	out, err = readFrame(&buf, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if out.Op != OpPing || out.ID != 1 || len(out.Payload) != 0 {
		t.Fatalf("empty-payload round trip mismatch: %+v", out)
	}
}

func TestParseHeaderRejects(t *testing.T) {
	valid := func() [HeaderLen]byte {
		var h [HeaderLen]byte
		binary.BigEndian.PutUint16(h[0:2], Magic)
		h[2] = Version
		h[3] = uint8(OpPing)
		return h
	}

	h := valid()
	h[0] = 0xFF
	if _, _, _, err := parseHeader(&h, DefaultMaxFrame); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}

	h = valid()
	h[2] = 99
	if _, _, _, err := parseHeader(&h, DefaultMaxFrame); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: got %v", err)
	}

	h = valid()
	binary.BigEndian.PutUint32(h[12:16], 1<<30)
	op, id, n, err := parseHeader(&h, 1024)
	if !errors.Is(err, ErrFrameSize) {
		t.Fatalf("oversize: got %v", err)
	}
	// Op and id survive the size rejection so the server can answer with
	// the request's own id.
	if op != OpPing || id != 0 || n != 1<<30 {
		t.Fatalf("oversize header fields: op=%v id=%d n=%d", op, id, n)
	}
}

func TestOpStrings(t *testing.T) {
	cases := map[Op]string{
		OpPing:               "ping",
		OpCompile:            "compile",
		OpAssign:             "assign",
		OpBatch:              "batch",
		OpCompile.Response(): "compile+resp",
		Op(77):               "op(77)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", uint8(op), got, want)
		}
	}
	if !OpAssign.Response().IsResponse() || OpAssign.IsResponse() {
		t.Fatal("response-bit accessors broken")
	}
	if OpAssign.Response().Request() != OpAssign {
		t.Fatal("Request() does not invert Response()")
	}
}
