package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"parmem/internal/telemetry"
)

// Client is a multiplexing parmemd client: one TCP connection carrying
// many concurrent requests, matched to responses by request id. It is
// safe for concurrent use. Transport failures (the connection died before
// a response arrived) come back as ordinary errors distinct from typed
// protocol responses — the distinction the soak harness uses to prove the
// daemon never drops an in-flight response.
type Client struct {
	nc     net.Conn
	wmu    sync.Mutex
	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan Response

	dead    chan struct{} // closed when the read loop exits
	readErr error         // set before dead closes
	closed  atomic.Bool   // Close was called locally
}

// ErrConnClosed reports that the connection died (or was closed) before a
// response arrived.
var ErrConnClosed = errors.New("server: connection closed before response")

// Dial connects to a parmemd at addr.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:      nc,
		pending: map[uint64]chan Response{},
		dead:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; pending requests fail with
// ErrConnClosed.
func (c *Client) Close() error {
	c.closed.Store(true)
	return c.nc.Close()
}

// LocalClosed reports whether Close was called on this client (as opposed
// to the server ending the connection).
func (c *Client) LocalClosed() bool { return c.closed.Load() }

// Dead returns a channel closed when the connection has died (read loop
// exited); callers pooling clients use it to discard and redial.
func (c *Client) Dead() <-chan struct{} { return c.dead }

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.nc, 4096)
	for {
		f, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			close(c.dead)
			return
		}
		c.mu.Lock()
		ch := c.pending[f.ID]
		delete(c.pending, f.ID)
		c.mu.Unlock()
		if ch == nil {
			continue // response to an abandoned (ctx-expired) request
		}
		var resp Response
		if err := json.Unmarshal(f.Payload, &resp); err != nil {
			resp = Response{Code: CodeInternal, Error: "unparseable response payload: " + err.Error()}
		}
		ch <- resp
	}
}

// Do sends one request frame and waits for its response, ctx expiry, or
// connection death.
func (c *Client) Do(ctx context.Context, op Op, req any) (Response, error) {
	var payload []byte
	if req != nil {
		var err error
		if payload, err = json.Marshal(req); err != nil {
			return Response{}, err
		}
	}
	return c.DoRaw(ctx, op, payload)
}

// DoRaw sends one request frame with a pre-encoded payload — the
// forwarding primitive a proxy needs, since it already holds the client's
// JSON bytes and must not re-interpret them.
func (c *Client) DoRaw(ctx context.Context, op Op, payload []byte) (Response, error) {
	id := c.nextID.Add(1)
	ch := make(chan Response, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return Response{}, fmt.Errorf("%w: %v", ErrConnClosed, err)
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeFrame(c.nc, Frame{Op: op, ID: id, Payload: payload})
	c.wmu.Unlock()
	if err != nil {
		c.drop(id)
		return Response{}, fmt.Errorf("%w: %v", ErrConnClosed, err)
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		c.drop(id)
		return Response{}, ctx.Err()
	case <-c.dead:
		c.drop(id)
		return Response{}, fmt.Errorf("%w: %v", ErrConnClosed, c.readErr)
	}
}

func (c *Client) drop(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// ctxTrace renders a trace context carried on ctx in wire form, or "" when
// the ctx is untraced. The typed client methods use it to stamp outbound
// requests so a caller only has to put the trace on the context once.
func ctxTrace(ctx context.Context) string {
	if tc, ok := telemetry.TraceFromContext(ctx); ok && tc.Valid() {
		return tc.String()
	}
	return ""
}

// Ping probes liveness and drain state.
func (c *Client) Ping(ctx context.Context) (Response, error) {
	if t := ctxTrace(ctx); t != "" {
		return c.Do(ctx, OpPing, PingRequest{Trace: t})
	}
	return c.Do(ctx, OpPing, nil)
}

// Compile submits one MPL source.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (Response, error) {
	if req.Trace == "" {
		req.Trace = ctxTrace(ctx)
	}
	return c.Do(ctx, OpCompile, req)
}

// Assign submits one instruction-stream assignment.
func (c *Client) Assign(ctx context.Context, req AssignRequest) (Response, error) {
	if req.Trace == "" {
		req.Trace = ctxTrace(ctx)
	}
	return c.Do(ctx, OpAssign, req)
}

// Delta patches a held incremental session (see AssignRequest.Hold).
func (c *Client) Delta(ctx context.Context, req DeltaRequest) (Response, error) {
	if req.Trace == "" {
		req.Trace = ctxTrace(ctx)
	}
	return c.Do(ctx, OpDelta, req)
}

// Batch submits many sources as one admission unit.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (Response, error) {
	if req.Trace == "" {
		req.Trace = ctxTrace(ctx)
	}
	return c.Do(ctx, OpBatch, req)
}
