package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"parmem/internal/telemetry"
)

// The flight recorder is the daemon's always-on anomaly capture: a bounded
// ring of completed request records (op, trace id, latency, queue wait,
// budget spend, cache hit, outcome) that costs one mutexed append per
// request. When a request trips a trigger — latency over threshold, a
// RESOURCE_EXHAUSTED shed, a degraded allocation, or a panic-recovered
// INTERNAL — the recorder snapshots the ring plus the request's full span
// tree into a capture, keeps it in a bounded in-memory list, and (when
// Config.FlightDir is set) spools it to disk with oldest-first eviction.
// Captures are served over /debug/flight on the telemetry endpoint, and a
// per-reason throttle keeps a pathological steady state (every request slow)
// from turning the spool into a write amplifier.

// Flight trigger reasons.
const (
	flightSlow     = "slow"
	flightShed     = "shed"
	flightDegraded = "degraded"
	flightInternal = "internal"
)

// FlightRecord is one completed request as the ring retains it.
type FlightRecord struct {
	Op          string `json:"op"`
	Trace       string `json:"trace,omitempty"`
	Code        string `json:"code"`
	StartUnixUS int64  `json:"start_unix_us"`
	LatencyUS   int64  `json:"latency_us"`
	QueueUS     int64  `json:"queue_us"`
	BudgetNodes int64  `json:"budget_nodes,omitempty"`
	CacheHit    string `json:"cache_hit,omitempty"`
	Degraded    bool   `json:"degraded,omitempty"`
}

// FlightCapture is one triggered snapshot: the record that tripped the
// trigger, the ring at that moment (oldest first), and the triggering
// request's span tree.
type FlightCapture struct {
	Name    string                 `json:"name"`
	Reason  string                 `json:"reason"`
	Trigger FlightRecord           `json:"trigger"`
	Ring    []FlightRecord         `json:"ring"`
	Spans   []telemetry.SpanRecord `json:"spans,omitempty"`
}

// flightRecorder holds the ring, the recent-span buffer and the spool.
type flightRecorder struct {
	latency     time.Duration // latency trigger threshold; <= 0 disables
	minInterval time.Duration // per-reason capture throttle
	dir         string        // spool directory; "" = in-memory only
	maxCaptures int

	spans *telemetry.RingSink // recent ended spans, capture source

	mCaptures func(reason string) *telemetry.Counter
	mDropped  func(reason string) *telemetry.Counter

	mu       sync.Mutex
	ring     []FlightRecord
	next     int
	seq      int64 // capture sequence number (continues past existing spool files)
	last     map[string]time.Time
	captures []*FlightCapture // newest last, bounded by maxCaptures
}

// newFlightRecorder builds the recorder from the server config. The span
// ring must be attached to the Recorder by the caller (telemetry may be
// nil, in which case captures carry no spans but the ring still works).
func newFlightRecorder(cfg Config) *flightRecorder {
	fr := &flightRecorder{
		latency:     cfg.FlightLatency,
		minInterval: cfg.FlightMinInterval,
		dir:         cfg.FlightDir,
		maxCaptures: cfg.FlightMaxCaptures,
		spans:       telemetry.NewRingSink(4096),
		ring:        make([]FlightRecord, 0, cfg.FlightRing),
		last:        map[string]time.Time{},
		mCaptures: func(reason string) *telemetry.Counter {
			return cfg.Telemetry.Counter(telemetry.MServerFlightCaptures, "reason", reason)
		},
		mDropped: func(reason string) *telemetry.Counter {
			return cfg.Telemetry.Counter(telemetry.MServerFlightDropped, "reason", reason)
		},
	}
	if fr.dir != "" {
		if err := os.MkdirAll(fr.dir, 0o755); err == nil {
			fr.seq = maxSpoolSeq(fr.dir)
		}
	}
	return fr
}

// record appends one completed request and fires a capture if it trips a
// trigger. Called once per request, after the response is written.
func (fr *flightRecorder) record(rec FlightRecord) {
	reason := fr.triggerReason(rec)
	fr.mu.Lock()
	if len(fr.ring) < cap(fr.ring) {
		fr.ring = append(fr.ring, rec)
	} else {
		fr.ring[fr.next] = rec
		fr.next = (fr.next + 1) % len(fr.ring)
	}
	if reason == "" {
		fr.mu.Unlock()
		return
	}
	now := time.Now()
	if last, ok := fr.last[reason]; ok && now.Sub(last) < fr.minInterval {
		fr.mu.Unlock()
		fr.mDropped(reason).Inc()
		return
	}
	fr.last[reason] = now
	fr.seq++
	fc := &FlightCapture{
		Name:    fmt.Sprintf("flight-%06d-%s-%s.json", fr.seq, reason, shortTrace(rec.Trace)),
		Reason:  reason,
		Trigger: rec,
		Ring:    fr.ringLocked(),
	}
	fr.mu.Unlock()

	// Build the capture fully before publishing it: once it is on the
	// captures list, /debug/flight may serve it concurrently.
	fc.Spans = fr.traceSpans(rec.Trace)
	fr.mu.Lock()
	fr.captures = append(fr.captures, fc)
	if len(fr.captures) > fr.maxCaptures {
		fr.captures = fr.captures[len(fr.captures)-fr.maxCaptures:]
	}
	fr.mu.Unlock()

	fr.mCaptures(reason).Inc()
	if fr.dir != "" {
		if err := fr.spool(fc); err != nil {
			fr.mDropped(reason).Inc()
		}
	}
}

// triggerReason classifies a record against the trigger taxonomy; "" means
// no trigger. Order matters: a panic is the strongest signal, then an
// explicit shed, then a degraded result, then plain slowness.
func (fr *flightRecorder) triggerReason(rec FlightRecord) string {
	switch {
	case rec.Code == string(CodeInternal):
		return flightInternal
	case rec.Code == string(CodeResourceExhausted):
		return flightShed
	case rec.Degraded:
		return flightDegraded
	case fr.latency > 0 && rec.LatencyUS >= fr.latency.Microseconds():
		return flightSlow
	}
	return ""
}

// ringLocked snapshots the ring oldest-first; caller holds fr.mu.
func (fr *flightRecorder) ringLocked() []FlightRecord {
	out := make([]FlightRecord, 0, len(fr.ring))
	out = append(out, fr.ring[fr.next:]...)
	out = append(out, fr.ring[:fr.next]...)
	return out
}

// Records returns the ring contents, oldest first.
func (fr *flightRecorder) Records() []FlightRecord {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.ringLocked()
}

// Captures returns the retained captures, oldest first.
func (fr *flightRecorder) Captures() []*FlightCapture {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]*FlightCapture, len(fr.captures))
	copy(out, fr.captures)
	return out
}

// Capture returns the retained capture with the given name.
func (fr *flightRecorder) Capture(name string) (*FlightCapture, bool) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	for _, c := range fr.captures {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// traceSpans extracts the spans of one trace from the recent-span ring,
// oldest first (the ring is already end-ordered).
func (fr *flightRecorder) traceSpans(traceID string) []telemetry.SpanRecord {
	tc, ok := telemetry.ParseTraceContext(traceID)
	if !ok {
		return nil
	}
	var out []telemetry.SpanRecord
	for _, sp := range fr.spans.Spans() {
		if sp.TraceHi == tc.TraceHi && sp.TraceLo == tc.TraceLo {
			out = append(out, telemetry.MakeSpanRecord(sp))
		}
	}
	return out
}

// spool writes a capture to the directory and evicts the oldest files past
// the cap. Names embed a zero-padded sequence number, so lexicographic
// order is arrival order and eviction is a sorted-listing prefix removal.
func (fr *flightRecorder) spool(c *FlightCapture) error {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(fr.dir, c.Name), append(b, '\n'), 0o644); err != nil {
		return err
	}
	names := spoolNames(fr.dir)
	for len(names) > fr.maxCaptures {
		os.Remove(filepath.Join(fr.dir, names[0])) //nolint:errcheck // best-effort eviction
		names = names[1:]
	}
	return nil
}

// spoolNames lists the spool's capture files in sequence order.
func spoolNames(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "flight-") && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// maxSpoolSeq scans an existing spool so a restarted daemon continues the
// sequence instead of overwriting survivors.
func maxSpoolSeq(dir string) int64 {
	var max int64
	for _, n := range spoolNames(dir) {
		var seq int64
		if _, err := fmt.Sscanf(n, "flight-%d-", &seq); err == nil && seq > max {
			max = seq
		}
	}
	return max
}

// shortTrace renders the 16-digit prefix of a trace id for file names.
func shortTrace(traceID string) string {
	if len(traceID) >= 16 {
		return traceID[:16]
	}
	if traceID == "" {
		return "untraced"
	}
	return traceID
}
