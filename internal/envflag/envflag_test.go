package envflag

import (
	"flag"
	"testing"
	"time"
)

func newSet() (*flag.FlagSet, *string, *int, *time.Duration, *bool) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	addr := fs.String("addr", ":9090", "")
	n := fs.Int("max-inflight", 8, "")
	d := fs.Duration("drain-grace", 15*time.Second, "")
	b := fs.Bool("cache-readonly", false, "")
	return fs, addr, n, d, b
}

func env(m map[string]string) func(string) (string, bool) {
	return func(k string) (string, bool) { v, ok := m[k]; return v, ok }
}

func TestVarName(t *testing.T) {
	if got := VarName("PARMEMD", "cache-dir"); got != "PARMEMD_CACHE_DIR" {
		t.Fatalf("VarName = %q", got)
	}
	if got := VarName("X", "a.b-c"); got != "X_A_B_C" {
		t.Fatalf("VarName = %q", got)
	}
}

func TestEnvFillsUnsetFlags(t *testing.T) {
	fs, addr, n, d, b := newSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	err := apply("PARMEMD", fs, env(map[string]string{
		"PARMEMD_ADDR":           ":7070",
		"PARMEMD_MAX_INFLIGHT":   "3",
		"PARMEMD_DRAIN_GRACE":    "2s",
		"PARMEMD_CACHE_READONLY": "true",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if *addr != ":7070" || *n != 3 || *d != 2*time.Second || !*b {
		t.Fatalf("env not applied: addr=%q n=%d d=%v b=%v", *addr, *n, *d, *b)
	}
}

func TestFlagWinsOverEnv(t *testing.T) {
	fs, addr, n, _, _ := newSet()
	if err := fs.Parse([]string{"-addr", ":1111"}); err != nil {
		t.Fatal(err)
	}
	err := apply("PARMEMD", fs, env(map[string]string{
		"PARMEMD_ADDR":         ":7070",
		"PARMEMD_MAX_INFLIGHT": "3",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if *addr != ":1111" {
		t.Fatalf("explicit flag overridden by env: %q", *addr)
	}
	if *n != 3 {
		t.Fatalf("unset flag not filled from env: %d", *n)
	}
}

func TestUnsetAndEmptyVarsSkipped(t *testing.T) {
	fs, addr, n, _, _ := newSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := apply("PARMEMD", fs, env(map[string]string{"PARMEMD_ADDR": ""})); err != nil {
		t.Fatal(err)
	}
	if *addr != ":9090" || *n != 8 {
		t.Fatalf("defaults disturbed: addr=%q n=%d", *addr, *n)
	}
}

func TestBadValueIsAnError(t *testing.T) {
	fs, _, _, _, _ := newSet()
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	err := apply("PARMEMD", fs, env(map[string]string{"PARMEMD_MAX_INFLIGHT": "zebra"}))
	if err == nil {
		t.Fatal("invalid env value accepted")
	}
}
