// Package envflag fills a flag.FlagSet from environment variables, so a
// daemon can be configured the twelve-factor way (PARMEMD_ADDR=...) while
// command-line flags keep the last word.
//
// The mapping is mechanical: flag -cache-dir under prefix PARMEMD becomes
// PARMEMD_CACHE_DIR (dashes and dots to underscores, upper-cased). A
// variable only applies when its flag was not set explicitly on the
// command line — flag wins over env, env wins over default — and a value
// the flag rejects (e.g. "zebra" for an integer) is reported as an error
// naming both the variable and the flag, not silently ignored.
package envflag

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

// Apply sets every flag of fs whose environment variable (prefix + "_" +
// mangled flag name) is present and whose flag was not explicitly set on
// the command line. Call it after fs.Parse. The first rejected value
// aborts with an error naming the variable; unset and empty variables are
// skipped.
func Apply(prefix string, fs *flag.FlagSet) error {
	return apply(prefix, fs, os.LookupEnv)
}

// apply is Apply with the environment injected for tests.
func apply(prefix string, fs *flag.FlagSet, lookup func(string) (string, bool)) error {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	var err error
	fs.VisitAll(func(f *flag.Flag) {
		if err != nil || set[f.Name] {
			return
		}
		name := VarName(prefix, f.Name)
		val, ok := lookup(name)
		if !ok || val == "" {
			return
		}
		if serr := fs.Set(f.Name, val); serr != nil {
			err = fmt.Errorf("envflag: %s=%q: invalid value for -%s: %v", name, val, f.Name, serr)
		}
	})
	return err
}

// VarName returns the environment variable that configures the named
// flag under the given prefix: dashes and dots become underscores and the
// result is upper-cased, e.g. VarName("PARMEMD", "cache-dir") =
// "PARMEMD_CACHE_DIR".
func VarName(prefix, flagName string) string {
	mangled := strings.NewReplacer("-", "_", ".", "_").Replace(flagName)
	return prefix + "_" + strings.ToUpper(mangled)
}
