package duplication

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"parmem/internal/coloring"
	"parmem/internal/conflict"
)

func TestModSet(t *testing.T) {
	s := ModSet(0)
	if s.Count() != 0 || s.Has(0) {
		t.Fatal("empty set")
	}
	s = s.Add(3).Add(0).Add(3)
	if s.Count() != 2 || !s.Has(3) || !s.Has(0) || s.Has(1) {
		t.Fatalf("set = %v", s.Modules())
	}
	if !reflect.DeepEqual(s.Modules(), []int{0, 3}) {
		t.Fatalf("Modules = %v", s.Modules())
	}
	s = s.Remove(0)
	if s.Count() != 1 || s.Has(0) {
		t.Fatal("remove failed")
	}
	if Full(4) != ModSet(0b1111) {
		t.Fatalf("Full(4) = %b", Full(4))
	}
	if Full(64) != ^ModSet(0) {
		t.Fatal("Full(64) must be all ones")
	}
}

func TestCopiesCloneAndCounts(t *testing.T) {
	c := Copies{1: ModSet(0).Add(0), 2: ModSet(0).Add(1).Add(2)}
	if c.TotalCopies() != 3 || c.Multi() != 1 {
		t.Fatalf("total=%d multi=%d", c.TotalCopies(), c.Multi())
	}
	d := c.Clone()
	d[1] = d[1].Add(5)
	if c[1].Has(5) {
		t.Fatal("clone aliases original")
	}
}

func TestHasSDRBasics(t *testing.T) {
	c := Copies{
		1: ModSet(0).Add(0),
		2: ModSet(0).Add(1),
		3: ModSet(0).Add(0).Add(1),
	}
	// Paper §2.2.2.1 configuration (i): V1 in Mi, V2 in Mj, V3 in {Mi,Mj}:
	// three values, two modules — conflict.
	if HasSDR([]int{1, 2, 3}, c) {
		t.Fatal("config (i) must conflict")
	}
	// One more copy of V3 fixes it.
	c[3] = c[3].Add(2)
	if !HasSDR([]int{1, 2, 3}, c) {
		t.Fatal("extra copy must resolve the conflict")
	}
}

func TestHasSDRSameSingleton(t *testing.T) {
	c := Copies{1: ModSet(0).Add(2), 2: ModSet(0).Add(2)}
	if HasSDR([]int{1, 2}, c) {
		t.Fatal("two values pinned to one module conflict")
	}
}

func TestHasSDRWildcards(t *testing.T) {
	// Values without copies are placeable anywhere and never block.
	c := Copies{1: ModSet(0).Add(0)}
	if !HasSDR([]int{1, 7, 8}, c) {
		t.Fatal("zero-copy values are wildcards")
	}
	if !HasSDR(nil, c) {
		t.Fatal("empty combination is trivially free")
	}
}

func TestHasSDRMatchingNeedsAugmenting(t *testing.T) {
	// v1:{0}, v2:{0,1}, v3:{1,2} needs the augmenting path v2->1,v3->2.
	c := Copies{
		1: ModSet(0).Add(0),
		2: ModSet(0).Add(0).Add(1),
		3: ModSet(0).Add(1).Add(2),
	}
	if !HasSDR([]int{1, 2, 3}, c) {
		t.Fatal("SDR exists: 1->M0, 2->M1, 3->M2")
	}
}

// paperSection2 is the running example of §2: Fig. 1's instructions plus
// {V2 V4 V5}, which makes a conflict-free single-copy assignment impossible;
// one extra copy of V5 fixes everything. Adding {V1 V4 V5} forces a third
// copy of V5.
func paperSection2(extra bool) []conflict.Instruction {
	instrs := []conflict.Instruction{
		{1, 2, 4}, {2, 3, 5}, {2, 3, 4}, {2, 4, 5},
	}
	if extra {
		instrs = append(instrs, conflict.Instruction{1, 4, 5})
	}
	return instrs
}

// endToEnd runs coloring plus a duplication strategy.
func endToEnd(t *testing.T, instrs []conflict.Instruction, k int, hit bool) Result {
	t.Helper()
	g := conflict.Build(instrs)
	col := coloring.GuptaSoffa(g, coloring.Options{K: k})
	in := Input{Instrs: instrs, Assigned: col.Assign, Unassigned: col.Unassigned, K: k}
	run := Backtrack
	if hit {
		run = HittingSetApproach
	}
	res, err := run(in)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkAllFree(t *testing.T, instrs []conflict.Instruction, res Result) {
	t.Helper()
	if len(res.Residual) != 0 {
		t.Fatalf("residual conflicts: %v", res.Residual)
	}
	for i, in := range instrs {
		if !ConflictFree(in.Normalize(), res.Copies) {
			t.Fatalf("instruction %d (%v) still conflicts; copies=%v", i, in, res.Copies)
		}
	}
}

func TestPaperSection2Backtrack(t *testing.T) {
	instrs := paperSection2(false)
	res := endToEnd(t, instrs, 3, false)
	checkAllFree(t, instrs, res)
	// The paper resolves this with a single duplicated value (V5 gets a
	// second copy). Allow the heuristic pipeline at most 2 extra copies.
	if res.NewCopies > 2 {
		t.Fatalf("NewCopies = %d, want <= 2 (paper: 1)", res.NewCopies)
	}
}

func TestPaperSection2HittingSet(t *testing.T) {
	instrs := paperSection2(false)
	res := endToEnd(t, instrs, 3, true)
	checkAllFree(t, instrs, res)
	if res.NewCopies > 2 {
		t.Fatalf("NewCopies = %d, want <= 2 (paper: 1)", res.NewCopies)
	}
}

func TestPaperSection2ThreeCopies(t *testing.T) {
	// With the extra instruction the paper needs three copies of V5 (one
	// per module). Both strategies must still produce a conflict-free
	// allocation.
	instrs := paperSection2(true)
	for _, hit := range []bool{false, true} {
		res := endToEnd(t, instrs, 3, hit)
		checkAllFree(t, instrs, res)
	}
}

// TestFigure8 reproduces paper Fig. 8: with V1..V3,V5 fixed and V4 removed,
// four 4-operand instructions force copies of V4 in three specific modules;
// a bad placement order would need four.
func TestFigure8(t *testing.T) {
	instrs := []conflict.Instruction{
		{1, 2, 3, 5},
		{4, 2, 3, 5},
		{1, 2, 3, 4},
		{4, 2, 1, 5},
	}
	assigned := map[int]int{1: 1, 2: 3, 3: 2, 5: 0}
	in := Input{Instrs: instrs, Assigned: assigned, Unassigned: []int{4}, K: 4}

	for name, f := range map[string]func(Input) (Result, error){
		"hitting":   HittingSetApproach,
		"backtrack": Backtrack,
	} {
		res, err := f(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkAllFree(t, instrs, res)
		if got := res.Copies[4].Count(); got != 3 {
			t.Fatalf("%s: copies of V4 = %d (%v), want exactly 3 (paper solution 2)",
				name, got, res.Copies[4].Modules())
		}
		// Each instruction pins V4 to a specific free module: M1, M0, M2.
		want := ModSet(0).Add(0).Add(1).Add(2)
		if res.Copies[4] != want {
			t.Fatalf("%s: V4 modules = %v, want [0 1 2]", name, res.Copies[4].Modules())
		}
	}
}

// TestFigure3 runs the Fig. 3 instruction set (a K5 conflict graph with
// k=3): two values must be removed and duplicated; the better solution of
// the paper uses 7 total copies for the 5 values.
func TestFigure3(t *testing.T) {
	instrs := []conflict.Instruction{
		{1, 2, 3}, {2, 3, 4}, {1, 3, 4}, {1, 3, 5}, {2, 3, 5}, {1, 4, 5},
	}
	for _, hit := range []bool{false, true} {
		res := endToEnd(t, instrs, 3, hit)
		checkAllFree(t, instrs, res)
		total := res.Copies.TotalCopies()
		// Paper solution 2 needs 7 copies, solution 1 needs 8. Anything
		// conflict-free with <= 8 matches the paper's range.
		if total > 8 {
			t.Fatalf("hit=%v: total copies = %d, want <= 8", hit, total)
		}
	}
}

func TestBacktrackNoUnassigned(t *testing.T) {
	instrs := []conflict.Instruction{{1, 2}}
	in := Input{Instrs: instrs, Assigned: map[int]int{1: 0, 2: 1}, K: 2}
	res, err := Backtrack(in)
	if err != nil {
		t.Fatal(err)
	}
	checkAllFree(t, instrs, res)
	if res.NewCopies != 0 {
		t.Fatalf("NewCopies = %d, want 0", res.NewCopies)
	}
}

func TestResidualDetected(t *testing.T) {
	// Two fixed values on the same module: nothing to duplicate, conflict
	// stays and must be reported.
	instrs := []conflict.Instruction{{1, 2}}
	in := Input{Instrs: instrs, Assigned: map[int]int{1: 0, 2: 0}, K: 2}
	res, err := Backtrack(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Residual) != 1 || res.Residual[0] != 0 {
		t.Fatalf("residual = %v, want [0]", res.Residual)
	}
}

func TestUnusedUnassignedGetsStorage(t *testing.T) {
	in := Input{
		Instrs:     []conflict.Instruction{{1, 2}},
		Assigned:   map[int]int{1: 0, 2: 1},
		Unassigned: []int{9}, // appears in no instruction
		K:          2,
	}
	for _, f := range []func(Input) (Result, error){Backtrack, HittingSetApproach} {
		res, err := f(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Copies[9].Count() < 1 {
			t.Fatal("unused value still needs at least one home")
		}
	}
}

func TestHittingSetSingletons(t *testing.T) {
	hs := HittingSet([][]int{{3}, {5}, {3, 5, 7}})
	if !reflect.DeepEqual(hs, []int{3, 5}) {
		t.Fatalf("hs = %v, want [3 5]", hs)
	}
}

func TestHittingSetGreedyPrefersFrequent(t *testing.T) {
	hs := HittingSet([][]int{{1, 2}, {2, 3}, {3, 4}})
	if len(hs) != 2 {
		t.Fatalf("hs = %v, want 2 elements", hs)
	}
	hit := func(s []int) bool {
		for _, v := range s {
			for _, h := range hs {
				if v == h {
					return true
				}
			}
		}
		return false
	}
	for _, s := range [][]int{{1, 2}, {2, 3}, {3, 4}} {
		if !hit(s) {
			t.Fatalf("set %v not hit by %v", s, hs)
		}
	}
}

func TestHittingSetStarIsSingleElement(t *testing.T) {
	// All sets share element 9: the greedy must find the single-element
	// hitting set.
	hs := HittingSet([][]int{{9, 1}, {9, 2}, {9, 3}, {9, 4}})
	if !reflect.DeepEqual(hs, []int{9}) {
		t.Fatalf("hs = %v, want [9]", hs)
	}
}

func TestHittingSetEmpty(t *testing.T) {
	if hs := HittingSet(nil); hs != nil {
		t.Fatalf("hs = %v, want nil", hs)
	}
}

// Property: HittingSet hits every input set and uses only elements of the
// union.
func TestHittingSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sets [][]int
		union := map[int]bool{}
		for i := 0; i < 1+r.Intn(12); i++ {
			size := 1 + r.Intn(4)
			set := map[int]bool{}
			for len(set) < size {
				set[r.Intn(10)] = true
			}
			var s []int
			for v := range set {
				s = append(s, v)
				union[v] = true
			}
			sets = append(sets, s)
		}
		hs := HittingSet(sets)
		inHS := map[int]bool{}
		for _, v := range hs {
			if !union[v] {
				return false
			}
			inHS[v] = true
		}
		for _, s := range sets {
			hit := false
			for _, v := range s {
				hit = hit || inHS[v]
			}
			if !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// randomInstrs generates a random program fragment with operand counts up
// to k over nvals values.
func randomInstrs(r *rand.Rand, nvals, n, k int) []conflict.Instruction {
	var instrs []conflict.Instruction
	maxOps := k
	if nvals < maxOps {
		maxOps = nvals
	}
	for i := 0; i < n; i++ {
		nops := 1 + r.Intn(maxOps)
		set := map[int]bool{}
		for len(set) < nops {
			set[1+r.Intn(nvals)] = true
		}
		var in conflict.Instruction
		for v := range set {
			in = append(in, v)
		}
		instrs = append(instrs, in)
	}
	return instrs
}

// Property: the full pipeline (coloring + either strategy) always yields a
// conflict-free allocation with sound bookkeeping.
func TestPipelineProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		instrs := randomInstrs(r, 3+r.Intn(12), 2+r.Intn(25), k)
		g := conflict.Build(instrs)
		col := coloring.GuptaSoffa(g, coloring.Options{K: k})
		in := Input{Instrs: instrs, Assigned: col.Assign, Unassigned: col.Unassigned, K: k}
		for _, f := range []func(Input) (Result, error){Backtrack, HittingSetApproach} {
			res, err := f(in)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if len(res.Residual) != 0 {
				t.Logf("seed %d: residual %v", seed, res.Residual)
				return false
			}
			for _, instr := range instrs {
				if !ConflictFree(instr.Normalize(), res.Copies) {
					t.Logf("seed %d: instruction %v conflicts", seed, instr)
					return false
				}
			}
			// Assigned values keep exactly their fixed single copy.
			for v, m := range col.Assign {
				if res.Copies[v] != ModSet(0).Add(m) {
					t.Logf("seed %d: assigned value %d moved: %v", seed, v, res.Copies[v].Modules())
					return false
				}
			}
			// Every value that appears anywhere has storage.
			for _, v := range g.Nodes() {
				if res.Copies[v].Count() < 1 {
					t.Logf("seed %d: value %d has no storage", seed, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: both strategies are deterministic.
func TestStrategiesDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(3)
		instrs := randomInstrs(r, 4+r.Intn(8), 2+r.Intn(15), k)
		g := conflict.Build(instrs)
		col := coloring.GuptaSoffa(g, coloring.Options{K: k})
		in := Input{Instrs: instrs, Assigned: col.Assign, Unassigned: col.Unassigned, K: k}
		a1, err1 := Backtrack(in)
		a2, err2 := Backtrack(in)
		b1, err3 := HittingSetApproach(in)
		b2, err4 := HittingSetApproach(in)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return reflect.DeepEqual(a1, a2) && reflect.DeepEqual(b1, b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExactMinCopiesFig8(t *testing.T) {
	// Fig. 8: the optimum is 3 copies of V4 (7 total), matching the
	// paper's solution 2.
	instrs := []conflict.Instruction{
		{1, 2, 3, 5}, {4, 2, 3, 5}, {1, 2, 3, 4}, {4, 2, 1, 5},
	}
	in := Input{
		Instrs:     instrs,
		Assigned:   map[int]int{1: 1, 2: 3, 3: 2, 5: 0},
		Unassigned: []int{4},
		K:          4,
	}
	res, err := ExactMinCopies(in)
	if err != nil {
		t.Fatal(err)
	}
	checkAllFree(t, instrs, res)
	if res.Copies.TotalCopies() != 7 {
		t.Fatalf("optimal total copies = %d, want 7", res.Copies.TotalCopies())
	}
	if res.Copies[4].Count() != 3 {
		t.Fatalf("V4 copies = %d, want 3", res.Copies[4].Count())
	}
}

func TestExactNeverWorseThanHeuristicsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(3)
		instrs := randomInstrs(r, 4+r.Intn(5), 3+r.Intn(8), k)
		g := conflict.Build(instrs)
		col := coloring.GuptaSoffa(g, coloring.Options{K: k})
		if len(col.Unassigned) > 4 {
			return true // keep the exact search tractable
		}
		in := Input{Instrs: instrs, Assigned: col.Assign, Unassigned: col.Unassigned, K: k}
		exact, err := ExactMinCopies(in)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(exact.Residual) != 0 {
			t.Logf("seed %d: exact left residual %v", seed, exact.Residual)
			return false
		}
		bt, err1 := Backtrack(in)
		hs, err2 := HittingSetApproach(in)
		if err1 != nil || err2 != nil {
			t.Logf("seed %d: %v %v", seed, err1, err2)
			return false
		}
		for _, h := range []Result{bt, hs} {
			if exact.Copies.TotalCopies() > h.Copies.TotalCopies() {
				t.Logf("seed %d: exact %d > heuristic %d", seed,
					exact.Copies.TotalCopies(), h.Copies.TotalCopies())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExactInfeasibleReportsResidual(t *testing.T) {
	// Two fixed values pinned to the same module conflict regardless of
	// replication of others.
	in := Input{
		Instrs:   []conflict.Instruction{{1, 2}},
		Assigned: map[int]int{1: 0, 2: 0},
		K:        2,
	}
	res, err := ExactMinCopies(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Residual) != 1 {
		t.Fatalf("residual = %v, want [0]", res.Residual)
	}
}

func TestExactKeepsCarriedCopies(t *testing.T) {
	// Value 9 arrives with a copy in module 1; the exact search must keep
	// it (supersets only).
	in := Input{
		Instrs:     []conflict.Instruction{{1, 9}},
		Assigned:   map[int]int{1: 0},
		Unassigned: []int{9},
		Initial:    Copies{9: ModSet(0).Add(1)},
		K:          2,
	}
	res, err := ExactMinCopies(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Copies[9].Has(1) {
		t.Fatalf("carried copy dropped: %v", res.Copies[9].Modules())
	}
	checkAllFree(t, in.Instrs, res)
}
