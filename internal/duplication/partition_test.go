package duplication

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"parmem/internal/budget"
	"parmem/internal/conflict"
)

// randomInput builds a multi-component duplication problem: nc disjoint
// clusters of instructions over separate value ranges, plus a few isolated
// unassigned values that appear in no instruction.
func randomInput(r *rand.Rand, nc, instrsPer, valsPer, k int) Input {
	var in Input
	in.K = k
	in.Assigned = map[int]int{}
	base := 0
	for c := 0; c < nc; c++ {
		for i := 0; i < instrsPer; i++ {
			n := 2 + r.Intn(k-1)
			instr := make(conflict.Instruction, n)
			for j := range instr {
				instr[j] = base + r.Intn(valsPer)
			}
			in.Instrs = append(in.Instrs, instr)
		}
		base += valsPer
	}
	seen := map[int]bool{}
	for _, instr := range in.Instrs {
		for _, v := range instr.Normalize() {
			seen[v] = true
		}
	}
	for v := range seen {
		if r.Intn(3) == 0 {
			in.Unassigned = append(in.Unassigned, v)
		} else {
			in.Assigned[v] = r.Intn(k)
		}
	}
	// Isolated values: unassigned but in no instruction of this phase.
	for j := 0; j < 3; j++ {
		in.Unassigned = append(in.Unassigned, base+j)
	}
	normalizeUnassigned(&in)
	return in
}

func normalizeUnassigned(in *Input) {
	set := map[int]bool{}
	for _, v := range in.Unassigned {
		set[v] = true
	}
	in.Unassigned = in.Unassigned[:0]
	for v := range set {
		in.Unassigned = append(in.Unassigned, v)
	}
	sortInts(in.Unassigned)
	for _, v := range in.Unassigned {
		delete(in.Assigned, v)
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func freshMeter() *budget.Meter {
	return budget.NewMeter(context.Background(), -1, 0)
}

// TestParallelMatchesSequential proves the determinism contract: for both
// strategies, the parallel runner produces exactly the sequential result
// (copies, residual, new-copy count, fallback) on multi-component inputs.
func TestParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		in := randomInput(r, 1+r.Intn(5), 1+r.Intn(6), 4+r.Intn(6), 4+r.Intn(4))
		for _, method := range []string{"backtrack", "hittingset"} {
			seq := in
			seq.Meter = freshMeter()
			par := in
			par.Meter = freshMeter()

			var sres, pres Result
			var serr, perr error
			if method == "backtrack" {
				sres, serr = Backtrack(seq)
				pres, perr = BacktrackParallel(par, 4)
			} else {
				sres, serr = HittingSetApproach(seq)
				pres, perr = HittingSetParallel(par, 4)
			}
			if serr != nil || perr != nil {
				t.Fatalf("trial %d %s: errors %v / %v", trial, method, serr, perr)
			}
			if !reflect.DeepEqual(sres.Copies, pres.Copies) {
				t.Fatalf("trial %d %s: copies diverge\nseq: %v\npar: %v", trial, method, sres.Copies, pres.Copies)
			}
			if !reflect.DeepEqual(sres.Residual, pres.Residual) {
				t.Fatalf("trial %d %s: residual diverge: %v vs %v", trial, method, sres.Residual, pres.Residual)
			}
			if sres.NewCopies != pres.NewCopies || sres.Fallback != pres.Fallback {
				t.Fatalf("trial %d %s: NewCopies/Fallback diverge: %d/%q vs %d/%q",
					trial, method, sres.NewCopies, sres.Fallback, pres.NewCopies, pres.Fallback)
			}
		}
	}
}

// TestParallelSingleComponentFallsBack checks that one-component inputs
// take the sequential path and still agree.
func TestParallelSingleComponentFallsBack(t *testing.T) {
	in := Input{
		Instrs:     []conflict.Instruction{{1, 2, 3}, {2, 3, 4}, {1, 4}},
		Assigned:   map[int]int{1: 0, 2: 1},
		Unassigned: []int{3, 4},
		K:          4,
	}
	seq := in
	seq.Meter = freshMeter()
	par := in
	par.Meter = freshMeter()
	sres, err1 := HittingSetApproach(seq)
	pres, err2 := HittingSetParallel(par, 8)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(sres.Copies, pres.Copies) {
		t.Fatalf("copies diverge: %v vs %v", sres.Copies, pres.Copies)
	}
}

// TestParallelCancellation checks that a canceled context aborts the
// fan-out with an error wrapping budget.ErrCanceled.
func TestParallelCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	in := randomInput(r, 6, 8, 8, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in.Meter = budget.NewMeter(ctx, -1, 0)
	_, err := BacktrackParallel(in, 4)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}

// TestPartitionCoversInput checks the partition invariants: every
// instruction lands in exactly one component, every unassigned value in
// exactly one, and the residue holds only values outside all instructions.
func TestPartitionCoversInput(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	in := randomInput(r, 4, 5, 6, 5)
	in.Meter = freshMeter()
	comps := partition(in)
	nInstr, nUn := 0, 0
	seenVal := map[int]bool{}
	for _, c := range comps {
		nInstr += len(c.in.Instrs)
		nUn += len(c.in.Unassigned)
		for _, v := range c.in.Unassigned {
			if seenVal[v] {
				t.Fatalf("value %d in two components", v)
			}
			seenVal[v] = true
		}
	}
	if nInstr != len(in.Instrs) {
		t.Fatalf("instructions dropped: %d of %d", nInstr, len(in.Instrs))
	}
	if nUn != len(in.Unassigned) {
		t.Fatalf("unassigned dropped: %d of %d", nUn, len(in.Unassigned))
	}
}
