package duplication

import (
	"errors"
	"sort"

	"parmem/internal/arena"
	"parmem/internal/budget"
	"parmem/internal/conflict"
	"parmem/internal/faultinject"
)

// HittingSet implements the greedy heuristic of paper Fig. 9.
//
// Given candidate sets (each listing the values whose duplication would
// resolve one conflicting operand combination), it returns a set of values
// hitting every candidate set. All singleton sets are taken outright; then
// sets are processed by increasing size, and from each not-yet-hit set the
// element occurring in the most sets is chosen, comparing occurrence counts
// lexicographically from the current size upward (S_{v,size}, S_{v,size+1},
// ...), with ties broken toward the smaller value id. The approximation
// ratio is the harmonic bound H_m stated in the paper.
func HittingSet(sets [][]int) []int {
	if len(sets) == 0 {
		return nil
	}
	maxSize := 0
	for _, s := range sets {
		if len(s) > maxSize {
			maxSize = len(s)
		}
	}
	// occ[v][p] = number of sets of size p containing v.
	occ := map[int][]int{}
	for _, s := range sets {
		for _, v := range s {
			if occ[v] == nil {
				occ[v] = make([]int, maxSize+1)
			}
			occ[v][len(s)]++
		}
	}

	hs := map[int]bool{}
	for _, s := range sets {
		if len(s) == 1 {
			hs[s[0]] = true
		}
	}

	// Deterministic processing order: by size, then lexicographic content.
	ordered := make([][]int, len(sets))
	copy(ordered, sets)
	sort.SliceStable(ordered, func(i, j int) bool {
		if len(ordered[i]) != len(ordered[j]) {
			return len(ordered[i]) < len(ordered[j])
		}
		for x := range ordered[i] {
			if ordered[i][x] != ordered[j][x] {
				return ordered[i][x] < ordered[j][x]
			}
		}
		return false
	})

	for size := 2; size <= maxSize; size++ {
		for _, s := range ordered {
			if len(s) != size {
				continue
			}
			hit := false
			for _, v := range s {
				if hs[v] {
					hit = true
					break
				}
			}
			if hit {
				continue
			}
			// Choose the element with the lexicographically largest
			// occurrence vector (S_{v,size}, ..., S_{v,maxSize}).
			best := -1
			for _, v := range s {
				if best == -1 || occLess(occ[best], occ[v], size, maxSize) ||
					(!occLess(occ[v], occ[best], size, maxSize) && v < best) {
					best = v
				}
			}
			hs[best] = true
		}
	}

	out := make([]int, 0, len(hs))
	for v := range hs {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// occLess reports whether a's occurrence vector is lexicographically smaller
// than b's over sizes [from, to].
func occLess(a, b []int, from, to int) bool {
	for p := from; p <= to; p++ {
		av, bv := 0, 0
		if a != nil && p < len(a) {
			av = a[p]
		}
		if b != nil && p < len(b) {
			bv = b[p]
		}
		if av != bv {
			return av < bv
		}
	}
	return false
}

// Place implements the placement algorithm of paper Fig. 10: place one new
// copy of each value in hs so that as many conflicting instructions as
// possible become conflict-free.
//
// Instructions are grouped by how many of their operands are replicable
// (I_y = instructions with y operands in V_unassigned): an instruction with
// a single replicable operand has the least placement freedom, so group I_1
// dominates every comparison. Values are placed one at a time, most
// constrained first; each value goes to the module whose vector of
// "conflicts newly avoided per group" is lexicographically largest. The
// choice is deterministic (smallest module index on ties; the paper makes a
// random choice).
func Place(instrs []conflict.Instruction, copies Copies, hs []int, repl map[int]bool, k int) {
	sc := arena.Get()
	defer sc.Release()
	placeTable(conflict.NormalizeTable(instrs, sc), copies, hs, repl, k, sc)
}

// placeTable is Place over a pre-normalized operand table, with every
// placement buffer (grouping, conflict flags, occurrence vectors, trial
// vectors) borrowed from sc. It mutates copies in place and allocates
// nothing that outlives the call.
func placeTable(t conflict.OpsTable, copies Copies, hs []int, repl map[int]bool, k int, sc *arena.Scratch) {
	// gisIdx lists the instructions with at least one replicable operand
	// (table row indices); gisGrp is the parallel group number 1..k.
	gisIdx := sc.Ints(t.Len())[:0]
	gisGrp := sc.Ints(t.Len())[:0]
	for i := 0; i < t.Len(); i++ {
		y := 0
		for _, v := range t.Row(i) {
			if repl[v] {
				y++
			}
		}
		if y >= 1 {
			gisIdx = append(gisIdx, i)
			gisGrp = append(gisGrp, y)
		}
	}

	// conflicting instructions that involve v, counted per group. copies is
	// constant until placement starts, so the free/conflicting status of
	// each instruction is computed once, and each value's vector once —
	// not per comparator call of the sort below.
	confl := sc.Bools(len(gisIdx))
	for j, i := range gisIdx {
		confl[j] = !ConflictFree(t.Row(i), copies)
	}
	// vecs holds one (k+1)-wide occurrence vector per hs entry, flat.
	vecs := sc.Ints(len(hs) * (k + 1))
	for vi, v := range hs {
		vec := vecs[vi*(k+1) : (vi+1)*(k+1)]
		for j, i := range gisIdx {
			if !confl[j] {
				continue
			}
			for _, o := range t.Row(i) {
				if o == v {
					vec[gisGrp[j]]++
					break
				}
			}
		}
	}

	// Order the values: the one involved in the most group-1 conflicts
	// first, comparing group vectors lexicographically. order permutes hs
	// positions; ties fall back to the smaller value id, and stable sorting
	// from hs order keeps the historical ordering on full ties.
	order := sc.Ints(len(hs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		va := vecs[order[a]*(k+1) : order[a]*(k+1)+k+1]
		vb := vecs[order[b]*(k+1) : order[b]*(k+1)+k+1]
		for y := 1; y <= k; y++ {
			if va[y] != vb[y] {
				return va[y] > vb[y]
			}
		}
		return hs[order[a]] < hs[order[b]]
	})

	involved := sc.Ints(len(gisIdx))[:0]
	vec := sc.Ints(k + 1)
	bestVec := sc.Ints(k + 1)
	for _, oi := range order {
		v := hs[oi]
		if copies[v].Count() >= k {
			continue // already everywhere; nothing to place
		}
		// Instructions that involve v. Because adding a copy can only
		// enlarge a value's module set, an instruction that is free stays
		// free, so maximizing "free after the trial placement" equals
		// maximizing C_{M_x,I_y}(v) = "became free" — and it additionally
		// steers the *first* copy of a value (whose placement narrows the
		// value from a wildcard to one module) away from modules that
		// would create new conflicts.
		involved = involved[:0]
		for j, i := range gisIdx {
			for _, o := range t.Row(i) {
				if o == v {
					involved = append(involved, j)
					break
				}
			}
		}
		old := copies[v]
		bestM := -1
		for m := 0; m < k; m++ {
			if old.Has(m) {
				continue
			}
			clear(vec)
			copies[v] = old.Add(m)
			for _, j := range involved {
				if ConflictFree(t.Row(gisIdx[j]), copies) {
					vec[gisGrp[j]]++
				}
			}
			copies[v] = old
			if bestM == -1 || vecGreater(vec, bestVec, k) {
				bestM = m
				copy(bestVec, vec)
			}
		}
		if bestM >= 0 {
			copies[v] = old.Add(bestM)
		}
	}
}

// vecGreater reports a > b lexicographically over groups 1..k.
func vecGreater(a, b []int, k int) bool {
	for y := 1; y <= k; y++ {
		if a[y] != b[y] {
			return a[y] > b[y]
		}
	}
	return false
}

// HittingSetApproach implements the overall strategy of paper Fig. 7.
//
// First one copy of every replicable value is placed (greedy placement),
// then a second copy of each, which makes every operand *pair* conflict-free
// by construction. Then, for combination sizes 3..k, the operand
// combinations that still conflict are collected; each contributes the
// candidate set of its replicable members, a hitting set of those candidate
// sets is duplicated, and the new copies are placed. Sizes are re-examined
// until clean, which terminates because each round adds at least one copy
// and a value held by all k modules can never conflict.
//
// Work is charged against in.Meter in the same node currency as the
// backtracking search (roughly one node per instruction examined or
// combination enumerated). On budget exhaustion the approach degrades to
// full replication: every replicable operand of a still-conflicting
// instruction receives a copy in every module, which is conflict-free by
// construction wherever replicable values are involved; the result carries
// Fallback "fullreplication". Cancellation aborts with an error wrapping
// budget.ErrCanceled.
func HittingSetApproach(in Input) (Result, error) {
	start := in.Meter.Spent()
	copies, fallback, err := hittingCore(in)
	if err != nil {
		return Result{}, err
	}
	res := finishResult(in, copies)
	res.Fallback = fallback
	res.NodesSpent = in.Meter.Spent() - start
	return res, nil
}

// hittingCore is the Fig. 7 strategy without the final bookkeeping; see
// backtrackCore for why the split exists.
func hittingCore(in Input) (Copies, string, error) {
	faultinject.Check("duplication.hittingset")
	// One arena scope covers the whole strategy: the normalized operand
	// table, the replicable set and every Place/Combinations buffer. The
	// copy table escapes into the Result and stays freshly allocated.
	// Workers of the parallel engine pass their shard via in.Scratch.
	sc := in.Scratch
	if sc == nil {
		sc = arena.Get()
		defer sc.Release()
	}
	tbl := conflict.NormalizeTable(in.Instrs, sc)
	copies := baseCopies(in)
	repl := sc.IntBoolMap(len(in.Unassigned))
	for _, v := range in.Unassigned {
		repl[v] = true
	}

	// degrade resolves every remaining conflict by brute replication. A
	// single forward pass suffices: ConflictFree is monotone in the copy
	// sets, so enlarging copies for a later instruction never breaks an
	// earlier one.
	degrade := func() (Copies, string, error) {
		full := Full(in.K)
		for i := 0; i < tbl.Len(); i++ {
			ops := tbl.Row(i)
			if ConflictFree(ops, copies) {
				continue
			}
			for _, v := range ops {
				if repl[v] {
					copies[v] = full
				}
			}
		}
		return copies, "fullreplication", nil
	}
	// charge bills n nodes; the returned action distinguishes "keep going",
	// "degrade" and "abort with err".
	charge := func(n int) (degraded bool, err error) {
		serr := in.Meter.Spend(int64(n))
		if serr == nil {
			return false, nil
		}
		if errors.Is(serr, budget.ErrCanceled) {
			return false, serr
		}
		return true, nil
	}

	// First and second copies of every replicable value (paper: the two
	// initial Place(V_unassigned) calls). Values carried over from an
	// earlier phase may already have storage; only top each value up to
	// two copies, which is what makes every operand *pair* conflict-free.
	for round := 0; round < 2; round++ {
		var todo []int
		for _, v := range in.Unassigned {
			if copies[v].Count() <= round {
				todo = append(todo, v)
			}
		}
		if deg, err := charge(len(todo) * len(in.Instrs)); err != nil {
			return nil, "", err
		} else if deg {
			return degrade()
		}
		placeTable(tbl, copies, todo, repl, in.K, sc)
	}

	for num := 3; num <= in.K; num++ {
		for round := 0; ; round++ {
			combs := conflict.CombinationsTable(tbl, num, sc)
			if deg, err := charge(len(combs)); err != nil {
				return nil, "", err
			} else if deg {
				return degrade()
			}
			var candSets [][]int
			for _, comb := range combs {
				if ConflictFree(comb, copies) {
					continue
				}
				var cand []int
				for _, v := range comb {
					if repl[v] && copies[v].Count() < in.K {
						cand = append(cand, v)
					}
				}
				if len(cand) > 0 {
					candSets = append(candSets, cand)
				}
			}
			if len(candSets) == 0 {
				break
			}
			hs := HittingSet(candSets)
			if deg, err := charge(len(hs) * len(in.Instrs)); err != nil {
				return nil, "", err
			} else if deg {
				return degrade()
			}
			before := copies.TotalCopies()
			placeTable(tbl, copies, hs, repl, in.K, sc)
			if copies.TotalCopies() == before {
				// No progress is possible (every candidate already has a
				// copy in all modules); the remaining conflicts involve
				// fixed values and surface as Residual.
				break
			}
			if round > in.K*len(in.Unassigned)+1 {
				break // safety valve; cannot trigger with progressing rounds
			}
		}
	}
	return copies, "", nil
}
