// Package duplication resolves the memory-access conflicts that survive
// graph coloring by replicating data values across memory modules
// (Gupta & Soffa, PPOPP 1988, §2.2).
//
// Two strategies are implemented:
//
//   - Backtrack (paper Fig. 6): instructions are processed one at a time in
//     order of how many replicable operands they contain; for each, an
//     exhaustive search over module placements finds the assignment that
//     creates the fewest new copies.
//   - HittingSet (paper Figs. 7, 9, 10): all instructions are examined
//     before any replication decision; for every operand-combination size
//     3..k, the still-conflicting combinations define candidate sets whose
//     minimum hitting set (approximated greedily) is duplicated, and the new
//     copies are placed by a grouped greedy placement.
//
// A combination of values is conflict-free when the modules holding their
// copies admit a system of distinct representatives — each value can be
// fetched from its own module in the same cycle.
package duplication

import "math/bits"

// ModSet is a set of memory-module indices packed into a bitmask.
// Module indices must lie in [0,64).
type ModSet uint64

// Has reports whether module m is in the set.
func (s ModSet) Has(m int) bool { return s&(1<<uint(m)) != 0 }

// Add returns the set with module m added.
func (s ModSet) Add(m int) ModSet { return s | 1<<uint(m) }

// Remove returns the set with module m removed.
func (s ModSet) Remove(m int) ModSet { return s &^ (1 << uint(m)) }

// Count returns the number of modules in the set.
func (s ModSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Modules returns the module indices in ascending order.
func (s ModSet) Modules() []int {
	out := make([]int, 0, s.Count())
	for m := 0; s != 0; m++ {
		if s.Has(m) {
			out = append(out, m)
			s = s.Remove(m)
		}
	}
	return out
}

// Full returns the set of all k modules.
func Full(k int) ModSet {
	if k >= 64 {
		return ^ModSet(0)
	}
	return ModSet(1)<<uint(k) - 1
}

// Copies records where each data value is stored: value id → set of memory
// modules holding a copy. Values absent from the map have no storage yet.
type Copies map[int]ModSet

// Clone returns a deep copy.
func (c Copies) Clone() Copies {
	out := make(Copies, len(c))
	for v, s := range c {
		out[v] = s
	}
	return out
}

// TotalCopies returns the total number of stored copies.
func (c Copies) TotalCopies() int {
	n := 0
	for _, s := range c {
		n += s.Count()
	}
	return n
}

// Multi returns how many values have more than one copy.
func (c Copies) Multi() int {
	n := 0
	for _, s := range c {
		if s.Count() > 1 {
			n++
		}
	}
	return n
}

// HasSDR reports whether the given values can be fetched in parallel: their
// copy sets admit a system of distinct representatives (one private module
// per value). Values with no copies yet are treated as wildcards — they can
// later be placed in any module — so they only require the total operand
// count to stay within k, which the scheduler guarantees.
//
// The check is a bipartite matching (values → modules) by augmenting paths;
// combination sizes are at most k ≤ 64, so this is effectively constant
// time.
func HasSDR(values []int, copies Copies) bool {
	// Collect the constrained values (those that already have copies).
	sets := make([]ModSet, 0, len(values))
	for _, v := range values {
		if s := copies[v]; s != 0 {
			sets = append(sets, s)
		}
	}
	return matchAll(sets)
}

// matchAll reports whether every set can be matched to a distinct module.
func matchAll(sets []ModSet) bool {
	matchedBy := make(map[int]int) // module -> set index
	var try func(i int, visited *ModSet) bool
	try = func(i int, visited *ModSet) bool {
		for _, m := range sets[i].Modules() {
			if visited.Has(m) {
				continue
			}
			*visited = visited.Add(m)
			holder, taken := matchedBy[m]
			if !taken || try(holder, visited) {
				matchedBy[m] = i
				return true
			}
		}
		return false
	}
	for i := range sets {
		visited := ModSet(0)
		if !try(i, &visited) {
			return false
		}
	}
	return true
}

// ConflictFree reports whether a whole instruction (operand set) is
// fetchable in one cycle under the current copies.
func ConflictFree(operands []int, copies Copies) bool {
	return HasSDR(operands, copies)
}

// MatchModules computes the concrete fetch schedule for an instruction: for
// every value with storage it picks the module that supplies the fetch, all
// pairwise distinct if possible. The boolean reports whether a complete
// matching exists; values that could not be matched (hardware conflict) are
// assigned the first module of their copy set. Values without storage are
// omitted from the result.
func MatchModules(values []int, copies Copies) (map[int]int, bool) {
	type entry struct {
		v int
		s ModSet
	}
	var es []entry
	for _, v := range values {
		if s := copies[v]; s != 0 {
			es = append(es, entry{v, s})
		}
	}
	matchedBy := make(map[int]int) // module -> entry index
	var try func(i int, visited *ModSet) bool
	try = func(i int, visited *ModSet) bool {
		for _, m := range es[i].s.Modules() {
			if visited.Has(m) {
				continue
			}
			*visited = visited.Add(m)
			holder, taken := matchedBy[m]
			if !taken || try(holder, visited) {
				matchedBy[m] = i
				return true
			}
		}
		return false
	}
	ok := true
	matched := make(map[int]int, len(es)) // entry index -> module
	for i := range es {
		visited := ModSet(0)
		if try(i, &visited) {
			continue
		}
		ok = false
	}
	for m, i := range matchedBy {
		matched[i] = m
	}
	out := make(map[int]int, len(es))
	for i, e := range es {
		if m, has := matched[i]; has {
			out[e.v] = m
		} else {
			out[e.v] = e.s.Modules()[0]
		}
	}
	return out, ok
}
