// Package duplication resolves the memory-access conflicts that survive
// graph coloring by replicating data values across memory modules
// (Gupta & Soffa, PPOPP 1988, §2.2).
//
// Two strategies are implemented:
//
//   - Backtrack (paper Fig. 6): instructions are processed one at a time in
//     order of how many replicable operands they contain; for each, an
//     exhaustive search over module placements finds the assignment that
//     creates the fewest new copies.
//   - HittingSet (paper Figs. 7, 9, 10): all instructions are examined
//     before any replication decision; for every operand-combination size
//     3..k, the still-conflicting combinations define candidate sets whose
//     minimum hitting set (approximated greedily) is duplicated, and the new
//     copies are placed by a grouped greedy placement.
//
// A combination of values is conflict-free when the modules holding their
// copies admit a system of distinct representatives — each value can be
// fetched from its own module in the same cycle.
package duplication

import "math/bits"

// ModSet is a set of memory-module indices packed into a bitmask.
// Module indices must lie in [0,64).
type ModSet uint64

// Has reports whether module m is in the set.
func (s ModSet) Has(m int) bool { return s&(1<<uint(m)) != 0 }

// Add returns the set with module m added.
func (s ModSet) Add(m int) ModSet { return s | 1<<uint(m) }

// Remove returns the set with module m removed.
func (s ModSet) Remove(m int) ModSet { return s &^ (1 << uint(m)) }

// Count returns the number of modules in the set.
func (s ModSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Modules returns the module indices in ascending order.
func (s ModSet) Modules() []int {
	out := make([]int, 0, s.Count())
	for m := 0; s != 0; m++ {
		if s.Has(m) {
			out = append(out, m)
			s = s.Remove(m)
		}
	}
	return out
}

// Full returns the set of all k modules.
func Full(k int) ModSet {
	if k >= 64 {
		return ^ModSet(0)
	}
	return ModSet(1)<<uint(k) - 1
}

// Copies records where each data value is stored: value id → set of memory
// modules holding a copy. Values absent from the map have no storage yet.
type Copies map[int]ModSet

// Clone returns a deep copy.
func (c Copies) Clone() Copies {
	out := make(Copies, len(c))
	for v, s := range c {
		out[v] = s
	}
	return out
}

// TotalCopies returns the total number of stored copies.
func (c Copies) TotalCopies() int {
	n := 0
	for _, s := range c {
		n += s.Count()
	}
	return n
}

// Multi returns how many values have more than one copy.
func (c Copies) Multi() int {
	n := 0
	for _, s := range c {
		if s.Count() > 1 {
			n++
		}
	}
	return n
}

// HasSDR reports whether the given values can be fetched in parallel: their
// copy sets admit a system of distinct representatives (one private module
// per value). Values with no copies yet are treated as wildcards — they can
// later be placed in any module — so they only require the total operand
// count to stay within k, which the scheduler guarantees.
//
// The check is a bipartite matching (values → modules) by augmenting paths;
// combination sizes are at most k ≤ 64, so this is effectively constant
// time.
func HasSDR(values []int, copies Copies) bool {
	// Collect the constrained values (those that already have copies) into a
	// stack buffer — HasSDR runs inside the innermost search loops of both
	// duplication strategies and must not allocate.
	var st sdrState
	sets := st.sets[:0]
	for _, v := range values {
		if s := copies[v]; s != 0 {
			if len(sets) == cap(sets) {
				return false // pigeonhole: more constrained values than modules
			}
			sets = append(sets, s)
		}
	}
	return st.matchAll(sets)
}

// sdrState is the scratch of one bipartite-matching run. It lives on the
// caller's stack: the matcher is a method rather than a recursive closure
// precisely so escape analysis keeps it there (the closure form forced a
// heap allocation per call).
type sdrState struct {
	sets      [64]ModSet
	matchedBy [64]int8 // module -> set index; valid only while taken.Has(m)
	taken     ModSet   // modules currently matched
}

// matchAll reports whether every set can be matched to a distinct module.
// Matching state lives in fixed arrays (module indices are < 64 by the
// ModSet representation) and candidate modules are iterated by peeling the
// lowest set bit — ascending module order, exactly like the Modules() slice
// the map-based implementation walked, so the match outcome is unchanged.
//
// Two word-level shortcuts keep the common cases out of the augmenting-path
// search without changing any outcome: the union of all sets must have at
// least one module per set (Hall's condition for the full family — popcount
// of one word), and the matched-module word `taken` replaces the 64-entry
// matchedBy wipe each run needed before.
func (st *sdrState) matchAll(sets []ModSet) bool {
	if len(sets) > 64 {
		return false // pigeonhole
	}
	union := ModSet(0)
	for _, s := range sets {
		union |= s
	}
	if union.Count() < len(sets) {
		return false // Hall: fewer modules than sets to match
	}
	st.taken = 0
	for i := range sets {
		visited := ModSet(0)
		if !st.try(sets, i, &visited) {
			return false
		}
	}
	return true
}

func (st *sdrState) try(sets []ModSet, i int, visited *ModSet) bool {
	for {
		rem := sets[i] &^ *visited
		if rem == 0 {
			return false
		}
		m := bits.TrailingZeros64(uint64(rem))
		*visited = visited.Add(m)
		if !st.taken.Has(m) || st.try(sets, int(st.matchedBy[m]), visited) {
			st.taken = st.taken.Add(m)
			st.matchedBy[m] = int8(i)
			return true
		}
	}
}

// matchAll is the slice-input form used by callers that assemble their own
// set list (conflictFreeWith).
func matchAll(sets []ModSet) bool {
	var st sdrState
	return st.matchAll(sets)
}

// hasSDRRef is the original map-and-slice implementation of HasSDR,
// retained as the ablation baseline for BenchmarkDuplication*.
func hasSDRRef(values []int, copies Copies) bool {
	sets := make([]ModSet, 0, len(values))
	for _, v := range values {
		if s := copies[v]; s != 0 {
			sets = append(sets, s)
		}
	}
	matchedBy := make(map[int]int) // module -> set index
	var try func(i int, visited *ModSet) bool
	try = func(i int, visited *ModSet) bool {
		for _, m := range sets[i].Modules() {
			if visited.Has(m) {
				continue
			}
			*visited = visited.Add(m)
			holder, taken := matchedBy[m]
			if !taken || try(holder, visited) {
				matchedBy[m] = i
				return true
			}
		}
		return false
	}
	for i := range sets {
		visited := ModSet(0)
		if !try(i, &visited) {
			return false
		}
	}
	return true
}

// ConflictFree reports whether a whole instruction (operand set) is
// fetchable in one cycle under the current copies.
func ConflictFree(operands []int, copies Copies) bool {
	return HasSDR(operands, copies)
}

// MatchModules computes the concrete fetch schedule for an instruction: for
// every value with storage it picks the module that supplies the fetch, all
// pairwise distinct if possible. The boolean reports whether a complete
// matching exists; values that could not be matched (hardware conflict) are
// assigned the first module of their copy set. Values without storage are
// omitted from the result.
func MatchModules(values []int, copies Copies) (map[int]int, bool) {
	type entry struct {
		v int
		s ModSet
	}
	var es []entry
	for _, v := range values {
		if s := copies[v]; s != 0 {
			es = append(es, entry{v, s})
		}
	}
	var matchedBy [64]int // module -> entry index, -1 = free
	for i := range matchedBy {
		matchedBy[i] = -1
	}
	var try func(i int, visited *ModSet) bool
	try = func(i int, visited *ModSet) bool {
		for {
			rem := es[i].s &^ *visited
			if rem == 0 {
				return false
			}
			m := bits.TrailingZeros64(uint64(rem))
			*visited = visited.Add(m)
			if h := matchedBy[m]; h < 0 || try(h, visited) {
				matchedBy[m] = i
				return true
			}
		}
	}
	ok := true
	for i := range es {
		visited := ModSet(0)
		if !try(i, &visited) {
			ok = false
		}
	}
	out := make(map[int]int, len(es))
	for _, e := range es {
		out[e.v] = bits.TrailingZeros64(uint64(e.s)) // first copy, fallback
	}
	for m, i := range matchedBy {
		if i >= 0 {
			out[es[i].v] = m
		}
	}
	return out, ok
}
