package duplication

import (
	"sort"
	"sync"
	"sync/atomic"

	"parmem/internal/arena"
	"parmem/internal/conflict"
)

// This file parallelizes the duplication strategies across the connected
// components of the operand-sharing relation. Every instruction's operands
// form a clique in the conflict graph, so each instruction belongs to
// exactly one component, and both strategies are component-local: the
// backtracking search of one instruction reads and writes only the copies
// of that instruction's own operands, and the hitting-set machinery
// (candidate sets, occurrence vectors, placement scores) never couples
// values that share no instruction. Components can therefore be solved
// concurrently and merged in a fixed order with a result bit-identical to
// the sequential run — except for the global bookkeeping of finishResult
// (load-balanced placement of copyless values and the residual scan),
// which must run exactly once over the merged copy table, never
// per component.

// coreFunc is the finish-free kernel of a duplication strategy: it returns
// the copy table and the fallback taken ("" when the primary strategy
// completed). backtrackCore and hittingCore implement it.
type coreFunc func(Input) (Copies, string, error)

// component is one independent subproblem of an Input.
type component struct {
	in  Input
	min int // smallest member value id, for deterministic ordering
}

// partition splits in into independent subproblems: one per connected
// component of the operand-sharing relation, ordered by smallest member
// value, plus (last) a residue holding the unassigned values that appear
// in no instruction of this phase. The residue has an empty instruction
// list; running a core over it reproduces exactly what the sequential run
// does with such values (the hitting-set approach gives them their two
// context-free copies, the backtracking search ignores them).
func partition(in Input) []component {
	// Union-find over value ids; each instruction unions its operands.
	parent := map[int]int{}
	var find func(v int) int
	find = func(v int) int {
		p, ok := parent[v]
		if !ok {
			parent[v] = v
			return v
		}
		if p != v {
			p = find(p)
			parent[v] = p
		}
		return p
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	norm := make([]conflict.Instruction, len(in.Instrs))
	for i, instr := range in.Instrs {
		ops := instr.Normalize()
		norm[i] = ops
		for j := 1; j < len(ops); j++ {
			union(ops[0], ops[j])
		}
		if len(ops) > 0 {
			find(ops[0])
		}
	}

	members := map[int][]int{} // root -> sorted member values
	for v := range parent {
		r := find(v)
		members[r] = append(members[r], v)
	}

	byRoot := map[int]*component{}
	compOf := func(root int) *component {
		c, ok := byRoot[root]
		if !ok {
			c = &component{in: Input{K: in.K, Meter: in.Meter}, min: int(^uint(0) >> 1)}
			byRoot[root] = c
		}
		return c
	}
	for i, ops := range norm {
		if len(ops) == 0 {
			continue
		}
		c := compOf(find(ops[0]))
		c.in.Instrs = append(c.in.Instrs, in.Instrs[i])
	}
	for root, vs := range members {
		c := compOf(root)
		sort.Ints(vs)
		if vs[0] < c.min {
			c.min = vs[0]
		}
		for _, v := range vs {
			if m, ok := in.Assigned[v]; ok {
				if c.in.Assigned == nil {
					c.in.Assigned = map[int]int{}
				}
				c.in.Assigned[v] = m
			}
			if s, ok := in.Initial[v]; ok {
				if c.in.Initial == nil {
					c.in.Initial = Copies{}
				}
				c.in.Initial[v] = s
			}
		}
	}
	inComp := func(v int) bool { _, ok := parent[v]; return ok }
	var residue component
	residue.in = Input{K: in.K, Meter: in.Meter}
	residue.min = int(^uint(0) >> 1)
	for _, v := range in.Unassigned {
		if inComp(v) {
			c := compOf(find(v))
			c.in.Unassigned = append(c.in.Unassigned, v)
			continue
		}
		residue.in.Unassigned = append(residue.in.Unassigned, v)
		if s, ok := in.Initial[v]; ok {
			if residue.in.Initial == nil {
				residue.in.Initial = Copies{}
			}
			residue.in.Initial[v] = s
		}
	}

	comps := make([]component, 0, len(byRoot)+1)
	for _, c := range byRoot {
		comps = append(comps, *c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].min < comps[j].min })
	if len(residue.in.Unassigned) > 0 {
		comps = append(comps, residue)
	}
	return comps
}

// workerPanic carries a panic out of a worker goroutine so it can be
// re-raised on the caller's goroutine, where the assign boundary's recover
// converts it into a *budget.InternalError as usual.
type workerPanic struct{ value any }

// runParallel solves in with core, fanning the connected components across
// at most workers goroutines, and finishes globally. workers <= 1, or an
// input with fewer than two components, falls back to one sequential core
// call. The merged result is bit-identical to the sequential one whenever
// the budget is not exhausted mid-run (degradation points can differ under
// an exhausted budget: the per-component hitting-set passes charge their
// smaller component sizes, so the meter trips at different places — the
// degraded result is still Verify-clean either way).
func runParallel(in Input, core coreFunc, workers int) (Result, error) {
	start := in.Meter.Spent()
	copies, fallback, err := runCores(in, core, workers)
	if err != nil {
		return Result{}, err
	}
	res := finishResult(in, copies)
	res.Fallback = fallback
	res.NodesSpent = in.Meter.Spent() - start
	return res, nil
}

// runCores is runParallel without the global finish: it returns the merged
// per-component core output (every value that gained storage mapped to its
// modules, values no component touched riding through from Initial) and the
// merged fallback label. The incremental engine calls it through
// BacktrackCores/HittingSetCores so it can stitch freshly solved components
// together with reused ones before finishing once, globally, with Finish.
func runCores(in Input, core coreFunc, workers int) (Copies, string, error) {
	var copies Copies
	var fallbacks []string

	comps := partition(in)
	if workers <= 1 || len(comps) < 2 {
		c, fb, err := core(in)
		if err != nil {
			return nil, "", err
		}
		copies, fallbacks = c, []string{fb}
	} else {
		type outcome struct {
			copies   Copies
			fallback string
			err      error
			panicked *workerPanic
		}
		results := make([]outcome, len(comps))
		next := make(chan int)
		var stop atomic.Bool
		var wg sync.WaitGroup
		if workers > len(comps) {
			workers = len(comps)
		}
		// One arena shard per worker for the whole fan-out: each worker
		// solves its components against a private Scratch, Reset between
		// components, never touching the global pool mid-phase.
		shards := arena.GetShards(workers)
		defer shards.Release()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sc := shards.Worker(w)
				for i := range next {
					if stop.Load() {
						continue
					}
					func() {
						defer func() {
							if r := recover(); r != nil {
								results[i].panicked = &workerPanic{value: r}
								stop.Store(true)
							}
						}()
						cin := comps[i].in
						cin.Scratch = sc
						c, fb, err := core(cin)
						results[i] = outcome{copies: c, fallback: fb, err: err}
						if err != nil {
							stop.Store(true)
						}
					}()
					sc.Reset()
				}
			}(w)
		}
		for i := range comps {
			next <- i
		}
		close(next)
		wg.Wait()

		for _, r := range results {
			if r.panicked != nil {
				panic(r.panicked.value)
			}
		}
		for _, r := range results {
			if r.err != nil {
				return nil, "", r.err
			}
		}
		// Merge in component order. Components hold disjoint value sets, so
		// the order only matters for determinism of map construction, not
		// content; values no component touched (pinned by earlier phases,
		// unused here) ride through from Initial.
		copies = in.Initial.Clone()
		if copies == nil {
			copies = Copies{}
		}
		for _, r := range results {
			for v, s := range r.copies {
				copies[v] = s
			}
			fallbacks = append(fallbacks, r.fallback)
		}
	}

	return copies, mergeFallbacks(fallbacks), nil
}

// mergeFallbacks reduces per-component fallbacks to one label, keeping the
// most severe: fullreplication > hittingset > none.
func mergeFallbacks(fbs []string) string {
	out := ""
	for _, fb := range fbs {
		switch fb {
		case "fullreplication":
			return fb
		case "hittingset":
			out = fb
		}
	}
	return out
}

// BacktrackParallel is Backtrack fanned across the connected components of
// the operand-sharing relation. See runParallel for the determinism
// contract.
func BacktrackParallel(in Input, workers int) (Result, error) {
	return runParallel(in, backtrackCore, workers)
}

// HittingSetParallel is HittingSetApproach fanned across the connected
// components of the operand-sharing relation. See runParallel for the
// determinism contract.
func HittingSetParallel(in Input, workers int) (Result, error) {
	return runParallel(in, hittingCore, workers)
}

// BacktrackCores runs the backtracking cores of in's components without the
// global finish, returning the merged copy table and fallback label. Pair
// with Finish after stitching in copies from components solved elsewhere
// (the incremental engine's reused components).
func BacktrackCores(in Input, workers int) (Copies, string, error) {
	return runCores(in, backtrackCore, workers)
}

// HittingSetCores is BacktrackCores for the hitting-set strategy.
func HittingSetCores(in Input, workers int) (Copies, string, error) {
	return runCores(in, hittingCore, workers)
}

// Finish runs the global epilogue over a stitched copy table: load-balanced
// placement of copyless values, the residual conflict scan, and the copy
// accounting. It must see the FULL input (all instructions and unassigned
// values), not a component slice — per-module load is a global quantity.
func Finish(in Input, copies Copies) Result {
	return finishResult(in, copies)
}
