package duplication

import (
	"errors"
	"math/bits"
	"slices"

	"parmem/internal/arena"
	"parmem/internal/budget"
	"parmem/internal/conflict"
	"parmem/internal/faultinject"
)

// Input bundles what both duplication strategies consume: the instruction
// stream, the single-module assignment produced by coloring, the values the
// coloring removed (paper V_unassigned), and the module count.
type Input struct {
	Instrs     []conflict.Instruction
	Assigned   map[int]int // value -> module, fixed single copies
	Unassigned []int       // values eligible for replication
	// Initial carries allocations made by an earlier phase (STOR2 globals,
	// earlier STOR3 instruction groups). Those copies are kept; values
	// listed in Unassigned may gain further copies on top.
	Initial Copies
	K       int // number of memory modules
	// Meter charges the search against a node/time budget and polls for
	// cancellation; nil meters nothing. On budget exhaustion a strategy
	// degrades to a cheaper one (see Result.Fallback); on cancellation it
	// returns an error wrapping budget.ErrCanceled.
	Meter *budget.Meter
	// Scratch optionally supplies the arena a strategy core borrows its
	// working set from — the parallel engine passes each worker's shard so
	// per-component runs reuse one set of buffers. The caller owns its
	// lifecycle (Reset between components); nil draws a Scratch from the
	// global pool for the duration of the call.
	Scratch *arena.Scratch
}

// Result is the outcome of a duplication strategy.
type Result struct {
	// Copies maps every value (assigned and unassigned) to the modules
	// holding it.
	Copies Copies
	// Residual lists indices of instructions that remain conflicting.
	// This can only happen when the fixed assignments passed in already
	// clash (e.g. values bound in different STOR3 groups); the assign
	// driver repairs those before calling a strategy, so Residual is
	// normally empty.
	Residual []int
	// NewCopies is the number of copies created beyond the first copy of
	// each value — the quantity both strategies minimize.
	NewCopies int
	// NodesSpent is the number of budget nodes this call charged to the
	// input meter.
	NodesSpent int64
	// Fallback names the cheaper strategy the call degraded to after
	// exhausting its budget: "" (none), "hittingset" (Backtrack handed the
	// remaining placements to HittingSetApproach) or "fullreplication"
	// (remaining conflicting replicable values were copied to every
	// module). Degraded results are still correct — they just use more
	// copies than the primary strategy would have.
	Fallback string
}

// baseCopies builds the initial copy table: the carried-over allocations of
// earlier phases plus one fixed copy per newly assigned value. Unassigned
// values without prior storage start with none.
func baseCopies(in Input) Copies {
	c := in.Initial.Clone()
	if c == nil {
		c = make(Copies, len(in.Assigned)+len(in.Unassigned))
	}
	for v, m := range in.Assigned {
		c[v] = c[v].Add(m)
	}
	return c
}

// unassignedSet returns the membership set of in.Unassigned.
func unassignedSet(in Input) map[int]bool {
	set := make(map[int]bool, len(in.Unassigned))
	for _, v := range in.Unassigned {
		set[v] = true
	}
	return set
}

// finishResult fills in Residual and NewCopies and guarantees that every
// unassigned value has at least one copy (a value that appears in no
// conflicting instruction still needs storage somewhere).
func finishResult(in Input, copies Copies) Result {
	sc := arena.Get()
	defer sc.Release()
	load := sc.Ints(in.K)
	for _, s := range copies {
		for t := s; t != 0; {
			m := bits.TrailingZeros64(uint64(t))
			load[m]++
			t = t.Remove(m)
		}
	}
	for _, v := range in.Unassigned {
		if copies[v] == 0 {
			best := 0
			for m := 1; m < in.K; m++ {
				if load[m] < load[best] {
					best = m
				}
			}
			copies[v] = ModSet(0).Add(best)
			load[best]++
		}
	}
	res := Result{Copies: copies}
	tbl := conflict.NormalizeTable(in.Instrs, sc)
	for i := 0; i < tbl.Len(); i++ {
		if !ConflictFree(tbl.Row(i), copies) {
			res.Residual = append(res.Residual, i)
		}
	}
	total := copies.TotalCopies()
	res.NewCopies = total - len(copies) // beyond one copy per stored value
	return res
}

// Backtrack implements the straightforward approach of paper Fig. 6.
//
// Instructions are ordered by how many of their operands are replicable
// (members of V_unassigned), fewest first: an instruction with a single
// replicable operand usually has only one way to become conflict-free, so
// deciding it early avoids wasted copies. For each instruction an
// exhaustive backtracking search over module placements of its replicable
// operands finds the placement needing the fewest new copies; existing
// copies are reused whenever possible. Ties are broken deterministically in
// favor of the lexicographically first placement (the paper makes a random
// choice).
//
// The search charges one budget node per recursive placement step against
// in.Meter. When the budget runs out mid-stream the search stops cleanly
// and the remaining placements degrade to HittingSetApproach (polynomial),
// keeping every copy placed so far; the result is then marked with
// Fallback "hittingset". Cancellation aborts with an error wrapping
// budget.ErrCanceled.
func Backtrack(in Input) (Result, error) {
	start := in.Meter.Spent()
	copies, fallback, err := backtrackCore(in)
	if err != nil {
		return Result{}, err
	}
	res := finishResult(in, copies)
	res.Fallback = fallback
	res.NodesSpent = in.Meter.Spent() - start
	return res, nil
}

// backtrackCore is the search of Fig. 6 without the final bookkeeping:
// it places copies for every instruction with replicable operands and
// returns the copy table, leaving the load-balanced placement of copyless
// values and the residual scan to finishResult. The split lets the
// parallel engine run the core per connected component and finish once,
// globally — component-local finishing would balance loads against a
// partial view and diverge from the sequential result.
func backtrackCore(in Input) (Copies, string, error) {
	faultinject.Check("duplication.backtrack")
	sc := in.Scratch
	if sc == nil {
		sc = arena.Get()
		defer sc.Release()
	}
	tbl := conflict.NormalizeTable(in.Instrs, sc)
	copies := baseCopies(in)
	repl := sc.IntBoolMap(len(in.Unassigned))
	for _, v := range in.Unassigned {
		repl[v] = true
	}

	// Work items are (nrep, arrival) keys packed into uint64s, so a plain
	// sort is the stable fewest-replicable-operands-first order; workIdx
	// maps arrival position back to the instruction's table row.
	workIdx := sc.Ints(tbl.Len())[:0]
	keys := sc.Uint64s(tbl.Len())[:0]
	for i := 0; i < tbl.Len(); i++ {
		nrep := 0
		for _, v := range tbl.Row(i) {
			if repl[v] {
				nrep++
			}
		}
		if nrep > 0 {
			keys = append(keys, uint64(nrep)<<32|uint64(len(workIdx)))
			workIdx = append(workIdx, i)
		}
	}
	slices.Sort(keys)

	var pb placeBufs
	for _, key := range keys {
		ops := tbl.Row(workIdx[uint32(key)])
		if _, err := placeInstruction(ops, copies, repl, in.K, in.Meter, &pb); err != nil {
			if errors.Is(err, budget.ErrCanceled) {
				return nil, "", err
			}
			// Budget exhausted: degrade. Everything placed so far is kept
			// (it rides in via Initial); the hitting-set approach decides
			// the rest. The fallback ignores the spent budget but still
			// honors cancellation.
			fb := Input{
				Instrs:     in.Instrs,
				Unassigned: in.Unassigned,
				Initial:    copies,
				K:          in.K,
				Meter:      in.Meter.CancelOnly(),
				Scratch:    sc,
			}
			c, _, err := hittingCore(fb)
			if err != nil {
				return nil, "", err
			}
			return c, "hittingset", nil
		}
	}
	return copies, "", nil
}

// placeBufs is the reusable working set of placeInstruction, hoisted into
// backtrackCore so the per-instruction search costs no pool round-trip and
// no allocation at all in steady state (the previous version drew a whole
// Scratch per instruction — the hottest Get/Release pair of the engine).
type placeBufs struct {
	fixedVals, freeVals []int
	bestChoice, choice  []int
}

// grow returns buf with length exactly n, reusing its capacity. Contents
// are unspecified; placeInstruction overwrites every entry before reading.
func (pb *placeBufs) grow(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// placeInstruction finds the cheapest conflict-free module choice for the
// replicable operands of one instruction and records any new copies.
// It returns false when no conflict-free placement exists (the fixed
// operands already clash). A non-nil error means the meter cut the search
// short (budget exhausted or canceled); no copies are recorded then.
func placeInstruction(ops []int, copies Copies, repl map[int]bool, k int, meter *budget.Meter, pb *placeBufs) (bool, error) {
	fixedVals := pb.grow(pb.fixedVals, len(ops))[:0]
	freeVals := pb.grow(pb.freeVals, len(ops))[:0]
	for _, v := range ops {
		if repl[v] {
			freeVals = append(freeVals, v)
		} else {
			fixedVals = append(fixedVals, v)
		}
	}
	// Modules claimed by the fixed operands. Coloring makes them pairwise
	// distinct; if an upstream phase broke that, no placement can help.
	taken := ModSet(0)
	for _, v := range fixedVals {
		s := copies[v]
		if s.Count() != 1 {
			// A fixed operand with several copies (already replicated by an
			// earlier instruction group) participates in the SDR instead.
			continue
		}
		m := s.Modules()[0]
		if taken.Has(m) {
			return false, nil
		}
		taken = taken.Add(m)
	}
	// Fixed multi-copy operands: let the final SDR check handle them; for
	// the search we conservatively only reserve single-copy modules.

	bestCost := k + 1
	found := false
	bestChoice := pb.grow(pb.bestChoice, len(freeVals))
	choice := pb.grow(pb.choice, len(freeVals))
	// Retain the (possibly re-grown) capacity for the next instruction.
	pb.fixedVals, pb.freeVals = fixedVals, freeVals
	pb.bestChoice, pb.choice = bestChoice, choice

	var searchErr error
	var rec func(i int, used ModSet, cost int)
	rec = func(i int, used ModSet, cost int) {
		if searchErr != nil {
			return
		}
		if err := meter.Spend(1); err != nil {
			searchErr = err
			return
		}
		if cost >= bestCost {
			return
		}
		if i == len(freeVals) {
			// Validate with the full SDR including multi-copy fixed values.
			if conflictFreeWith(ops, copies, freeVals, choice) {
				bestCost = cost
				found = true
				copy(bestChoice, choice)
			}
			return
		}
		v := freeVals[i]
		// Reuse existing copies first (cost 0), then new modules.
		for pass := 0; pass < 2; pass++ {
			for m := 0; m < k; m++ {
				if used.Has(m) {
					continue
				}
				exists := copies[v].Has(m)
				if (pass == 0) != exists {
					continue
				}
				extra := 0
				if !exists {
					extra = 1
				}
				choice[i] = m
				rec(i+1, used.Add(m), cost+extra)
			}
		}
	}
	rec(0, taken, 0)

	if searchErr != nil {
		return false, searchErr
	}
	if !found {
		return false, nil
	}
	for j, v := range freeVals {
		copies[v] = copies[v].Add(bestChoice[j])
	}
	return true, nil
}

// conflictFreeWith is ConflictFree(ops, copies) with a trial placement
// applied virtually: freeVals[j] gains module choice[j] for the duration of
// the check, without cloning the copy table. It is the leaf test of the
// backtracking search, hit once per candidate placement — the clone it
// replaces dominated the allocation profile of the whole strategy.
func conflictFreeWith(ops []int, copies Copies, freeVals, choice []int) bool {
	var arr [64]ModSet
	sets := arr[:0]
	for _, v := range ops {
		s := copies[v]
		for j, f := range freeVals {
			if f == v {
				s = s.Add(choice[j])
			}
		}
		if s != 0 {
			if len(sets) == cap(sets) {
				return false // pigeonhole, as in HasSDR
			}
			sets = append(sets, s)
		}
	}
	return matchAll(sets)
}
