package duplication

import (
	"errors"
	"sort"

	"parmem/internal/budget"
)

// ExactMinCopies finds, by branch and bound, a placement of the replicable
// values that minimizes the total number of stored copies while making
// every instruction conflict-free. It is exponential in the number of
// replicable values (each can occupy any non-empty subset of the k modules)
// and exists to measure the heuristics' optimality gap on small instances —
// the paper's Fig. 3 and Fig. 8 discussions are exactly about those gaps.
//
// The search charges one budget node per branch step against in.Meter. On
// budget exhaustion it returns the best placement found so far (still
// verified conflict-free) — or the full-replication fallback when none was
// found — marked with Fallback "incomplete": the copy count is then an
// upper bound, not a proven minimum. Cancellation aborts with an error
// wrapping budget.ErrCanceled.
//
// The result has Residual set when even full replication cannot fix an
// instruction (clashing fixed values).
func ExactMinCopies(in Input) (Result, error) {
	base := baseCopies(in)
	repl := in.Unassigned
	start := in.Meter.Spent()

	// Deduplicate instruction operand sets and keep only those involving a
	// replicable value (others are fixed and unaffected by the search).
	replSet := unassignedSet(in)
	var relevant [][]int
	for _, instr := range in.Instrs {
		ops := instr.Normalize()
		hasRepl := false
		for _, v := range ops {
			if replSet[v] {
				hasRepl = true
				break
			}
		}
		if hasRepl {
			relevant = append(relevant, ops)
		}
	}

	full := Full(in.K)
	// Candidate module sets per value, cheapest (fewest copies) first.
	var candidates []ModSet
	for s := ModSet(1); s <= full; s++ {
		candidates = append(candidates, s)
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Count() != candidates[j].Count() {
			return candidates[i].Count() < candidates[j].Count()
		}
		return candidates[i] < candidates[j]
	})

	bestCost := 1 << 30
	var best Copies

	var searchErr error
	var rec func(idx, cost int, cur Copies)
	rec = func(idx, cost int, cur Copies) {
		if searchErr != nil {
			return
		}
		if err := in.Meter.Spend(1); err != nil {
			searchErr = err
			return
		}
		if cost >= bestCost {
			return
		}
		if idx == len(repl) {
			for _, ops := range relevant {
				if !ConflictFree(ops, cur) {
					return
				}
			}
			bestCost = cost
			best = cur.Clone()
			return
		}
		v := repl[idx]
		for _, s := range candidates {
			if s&base[v] != base[v] {
				continue // existing copies of carried-over values are kept
			}
			cur[v] = s
			// Prune: instructions whose replicable operands are all
			// decided must already be conflict-free.
			ok := true
			for _, ops := range relevant {
				decided := true
				involved := false
				for _, o := range ops {
					if o == v {
						involved = true
					}
					if replSet[o] && cur[o] == 0 {
						decided = false
					}
				}
				if involved && decided && !ConflictFree(ops, cur) {
					ok = false
					break
				}
			}
			if ok {
				rec(idx+1, cost+s.Count(), cur)
			}
		}
		delete(cur, v)
	}
	// Fixed storage cost; replicable values' sets are chosen by the search
	// (as supersets of any carried-over copies).
	cost0 := base.TotalCopies()
	for _, v := range repl {
		cost0 -= base[v].Count()
	}
	rec(0, cost0, base.Clone())

	if searchErr != nil && errors.Is(searchErr, budget.ErrCanceled) {
		return Result{}, searchErr
	}
	if best == nil {
		// No feasible placement (fixed values clash), or the budget ran
		// out before the first complete placement; fall back to full
		// replication so Residual reporting is meaningful.
		cur := base.Clone()
		for _, v := range repl {
			cur[v] = full
		}
		best = cur
	}
	res := Result{Copies: best}
	for i, instr := range in.Instrs {
		if !ConflictFree(instr.Normalize(), best) {
			res.Residual = append(res.Residual, i)
		}
	}
	res.NewCopies = best.TotalCopies() - len(best)
	res.NodesSpent = in.Meter.Spent() - start
	if searchErr != nil {
		res.Fallback = "incomplete"
	}
	return res, nil
}
