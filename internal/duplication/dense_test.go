package duplication

import (
	"math/rand"
	"testing"
)

// TestHasSDRMatchesRef fuzzes the allocation-free bipartite matcher against
// the original map-and-slice implementation.
func TestHasSDRMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	for iter := 0; iter < 5000; iter++ {
		k := 1 + r.Intn(10)
		nvals := 1 + r.Intn(12)
		copies := make(Copies, nvals)
		values := make([]int, nvals)
		for i := range values {
			values[i] = i
			if r.Intn(4) > 0 { // some values stay wildcards
				var s ModSet
				for m := 0; m < k; m++ {
					if r.Intn(3) == 0 {
						s = s.Add(m)
					}
				}
				copies[i] = s
			}
		}
		if got, want := HasSDR(values, copies), hasSDRRef(values, copies); got != want {
			t.Fatalf("iter %d: HasSDR = %v, ref %v (copies %v)", iter, got, want, copies)
		}
	}
}

// TestConflictFreeWithMatchesClone checks the virtual-placement SDR test
// against the clone-and-check formulation it replaced in the backtracking
// leaf.
func TestConflictFreeWithMatchesClone(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for iter := 0; iter < 3000; iter++ {
		k := 2 + r.Intn(6)
		nops := 1 + r.Intn(6)
		ops := make([]int, nops)
		copies := make(Copies, nops)
		for i := range ops {
			ops[i] = i
			if r.Intn(3) > 0 {
				var s ModSet
				for m := 0; m < k; m++ {
					if r.Intn(3) == 0 {
						s = s.Add(m)
					}
				}
				copies[i] = s
			}
		}
		var freeVals, choice []int
		for _, v := range ops {
			if r.Intn(2) == 0 {
				freeVals = append(freeVals, v)
				choice = append(choice, r.Intn(k))
			}
		}
		trial := copies.Clone()
		for j, v := range freeVals {
			trial[v] = trial[v].Add(choice[j])
		}
		want := ConflictFree(ops, trial)
		if got := conflictFreeWith(ops, copies, freeVals, choice); got != want {
			t.Fatalf("iter %d: conflictFreeWith = %v, want %v (ops %v copies %v free %v choice %v)",
				iter, got, want, ops, copies, freeVals, choice)
		}
	}
}

// benchSDRInputs builds a workload shaped like the backtracking search's
// leaf checks: many SDR feasibility probes over instruction-sized operand
// sets.
func benchSDRInputs() ([][]int, Copies) {
	r := rand.New(rand.NewSource(32))
	const k = 8
	copies := make(Copies, 256)
	for v := 0; v < 256; v++ {
		var s ModSet
		for m := 0; m < k; m++ {
			if r.Intn(4) == 0 {
				s = s.Add(m)
			}
		}
		if s == 0 {
			s = s.Add(r.Intn(k))
		}
		copies[v] = s
	}
	sets := make([][]int, 512)
	for i := range sets {
		ops := make([]int, k)
		for j := range ops {
			ops[j] = r.Intn(256)
		}
		sets[i] = ops
	}
	return sets, copies
}

func BenchmarkDuplicationDense(b *testing.B) {
	sets, copies := benchSDRInputs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ops := range sets {
			HasSDR(ops, copies)
		}
	}
}

func BenchmarkDuplicationMap(b *testing.B) {
	sets, copies := benchSDRInputs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ops := range sets {
			hasSDRRef(ops, copies)
		}
	}
}
