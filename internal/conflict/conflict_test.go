package conflict

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// fig1 is the instruction list of paper Fig. 1: three instructions over
// values V1..V5 (ids 1..5), three memory modules.
func fig1() []Instruction {
	return []Instruction{
		{1, 2, 4},
		{2, 3, 5},
		{2, 3, 4},
	}
}

func TestNormalize(t *testing.T) {
	in := Instruction{5, 2, 2, 9, 5}
	got := in.Normalize()
	want := Instruction{2, 5, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
	// Receiver untouched.
	if !reflect.DeepEqual(in, Instruction{5, 2, 2, 9, 5}) {
		t.Fatal("Normalize mutated receiver")
	}
}

func TestNormalizeEmpty(t *testing.T) {
	if got := (Instruction{}).Normalize(); got != nil {
		t.Fatalf("empty Normalize = %v, want nil", got)
	}
}

func TestNormalizeAll(t *testing.T) {
	got := Normalize([]Instruction{{3, 1, 3}, {2}})
	want := []Instruction{{1, 3}, {2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
}

func TestBuildFig1(t *testing.T) {
	g := Build(fig1())
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d, want 5", g.NumNodes())
	}
	// V2 conflicts with everything; V2-V3 appears twice.
	if got := g.Weight(2, 3); got != 2 {
		t.Fatalf("conf(2,3) = %d, want 2", got)
	}
	if got := g.Weight(2, 4); got != 2 {
		t.Fatalf("conf(2,4) = %d, want 2", got)
	}
	if got := g.Weight(1, 2); got != 1 {
		t.Fatalf("conf(1,2) = %d, want 1", got)
	}
	if g.HasEdge(1, 3) {
		t.Fatal("V1 and V3 never co-occur")
	}
	if g.HasEdge(1, 5) {
		t.Fatal("V1 and V5 never co-occur")
	}
}

func TestBuildDuplicateOperandsNoSelfConflict(t *testing.T) {
	g := Build([]Instruction{{1, 1, 2}})
	if g.HasEdge(1, 1) {
		t.Fatal("a value never conflicts with itself")
	}
	if g.Weight(1, 2) != 1 {
		t.Fatalf("conf(1,2) = %d, want 1 (duplicates collapse)", g.Weight(1, 2))
	}
}

func TestBuildIsolatedOperand(t *testing.T) {
	g := Build([]Instruction{{7}})
	if !g.HasNode(7) || g.Degree(7) != 0 {
		t.Fatal("single-operand instruction must still register its value")
	}
}

func TestConf(t *testing.T) {
	g := Build(fig1())
	if Conf(g, 2, 3) != 2 {
		t.Fatalf("Conf = %d, want 2", Conf(g, 2, 3))
	}
}

func TestValidate(t *testing.T) {
	instrs := []Instruction{{1, 2, 3}, {4, 5}}
	if err := Validate(instrs, 3); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := Validate(instrs, 2); err == nil {
		t.Fatal("want error: 3 operands, 2 modules")
	}
	// Duplicate operands collapse before checking.
	if err := Validate([]Instruction{{1, 1, 1, 2}}, 2); err != nil {
		t.Fatalf("duplicates should collapse: %v", err)
	}
}

func TestCombinationsPairs(t *testing.T) {
	got := Combinations(fig1(), 2)
	want := [][]int{{1, 2}, {1, 4}, {2, 3}, {2, 4}, {2, 5}, {3, 4}, {3, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pairs = %v, want %v", got, want)
	}
}

func TestCombinationsTriples(t *testing.T) {
	got := Combinations(fig1(), 3)
	want := [][]int{{1, 2, 4}, {2, 3, 4}, {2, 3, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("triples = %v, want %v", got, want)
	}
}

func TestCombinationsTooLarge(t *testing.T) {
	if got := Combinations(fig1(), 4); len(got) != 0 {
		t.Fatalf("no 4-combinations in 3-operand instructions, got %v", got)
	}
	if got := Combinations(fig1(), 0); got != nil {
		t.Fatalf("n=0 must yield nil, got %v", got)
	}
}

func TestCombinationsDedup(t *testing.T) {
	instrs := []Instruction{{1, 2, 3}, {3, 2, 1}, {1, 2, 4}}
	got := Combinations(instrs, 3)
	want := [][]int{{1, 2, 3}, {1, 2, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("triples = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(fig1())
	if s.Instructions != 3 || s.Values != 5 || s.MaxOperands != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Edges != 7 {
		t.Fatalf("edges = %d, want 7", s.Edges)
	}
	if s.TotalConf != 9 { // 3 instructions x C(3,2) pairs
		t.Fatalf("totalConf = %d, want 9", s.TotalConf)
	}
}

// Property: edge weight conf(u,v) equals a direct recount over instructions.
func TestConfMatchesRecountProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nvals := 3 + r.Intn(10)
		var instrs []Instruction
		for i := 0; i < 3+r.Intn(20); i++ {
			in := Instruction{}
			for j := 0; j < 1+r.Intn(4); j++ {
				in = append(in, r.Intn(nvals))
			}
			instrs = append(instrs, in)
		}
		g := Build(instrs)
		for u := 0; u < nvals; u++ {
			for v := u + 1; v < nvals; v++ {
				count := 0
				for _, in := range instrs {
					ops := in.Normalize()
					hasU, hasV := false, false
					for _, o := range ops {
						hasU = hasU || o == u
						hasV = hasV || o == v
					}
					if hasU && hasV {
						count++
					}
				}
				if g.Weight(u, v) != count {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every n-combination is a subset of some instruction, and every
// instruction of size >= n has all its n-subsets present.
func TestCombinationsCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var instrs []Instruction
		for i := 0; i < 2+r.Intn(10); i++ {
			in := Instruction{}
			for j := 0; j < 1+r.Intn(5); j++ {
				in = append(in, r.Intn(8))
			}
			instrs = append(instrs, in)
		}
		n := 2 + r.Intn(2)
		combs := Combinations(instrs, n)
		inSet := func(comb []int, in Instruction) bool {
			ops := map[int]bool{}
			for _, o := range in.Normalize() {
				ops[o] = true
			}
			for _, c := range comb {
				if !ops[c] {
					return false
				}
			}
			return true
		}
		// Each combination comes from some instruction.
		for _, c := range combs {
			found := false
			for _, in := range instrs {
				if inSet(c, in) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// Count check: the number of combinations from one instruction of m
		// operands is C(m,n); dedup means the set union is covered.
		for _, in := range instrs {
			ops := in.Normalize()
			if len(ops) < n {
				continue
			}
			// Spot-check the first n operands as a combination.
			c := append([]int(nil), ops[:n]...)
			found := false
			for _, got := range combs {
				if reflect.DeepEqual(got, c) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
