// Package conflict builds the access-conflict graph of Gupta & Soffa
// (PPOPP 1988, §2) from a stream of long instructions.
//
// An instruction is abstracted to the set of data values it fetches as
// operands; the operations themselves are irrelevant to memory-module
// assignment. Two values conflict when some instruction uses both: fetching
// them in parallel then requires them to live in different memory modules.
// conf(ni,nj) counts the number of instructions in which both appear; it is
// the edge weight that drives the coloring heuristic.
package conflict

import (
	"fmt"
	"sort"

	"parmem/internal/arena"
	"parmem/internal/graph"
)

// ValueID identifies a compile-time data value (a renamed definition of a
// variable or a temporary). IDs are small dense integers assigned by the
// front end.
type ValueID = int

// Instruction is the operand set of one long instruction: the data values it
// fetches in parallel. Order is irrelevant; duplicates are collapsed by
// Normalize because a single fetch serves every use of a value within one
// instruction.
type Instruction []ValueID

// Normalize returns the instruction's operand set sorted with duplicates
// removed. The receiver is not modified.
func (in Instruction) Normalize() Instruction {
	if len(in) == 0 {
		return nil
	}
	out := make(Instruction, len(in))
	copy(out, in)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// Normalize normalizes every instruction of a program fragment.
func Normalize(instrs []Instruction) []Instruction {
	out := make([]Instruction, len(instrs))
	for i, in := range instrs {
		out[i] = in.Normalize()
	}
	return out
}

// Build constructs the access-conflict graph for the given instructions.
// Every operand becomes a vertex (including operands that never conflict);
// the weight of edge {u,v} is conf(u,v), the number of instructions whose
// operand sets contain both u and v.
//
// Operand values are interned onto dense int32 indices so the pair counts
// accumulate in a map keyed by one packed uint64 per pair instead of two
// nested graph-map probes per occurrence; the graph receives one
// AddEdgeWeight per *distinct* pair at the end. The result is identical to
// inserting pairs one occurrence at a time.
func Build(instrs []Instruction) *graph.Graph {
	// The interning tables, pair counts and normalize buffer are all
	// borrowed scratch; only the returned graph is freshly allocated.
	sc := arena.Get()
	defer sc.Release()
	intern := sc.IntInt32Map(len(instrs))
	ids := sc.Ints(len(instrs))[:0] // index -> value id, first-seen order
	conf := sc.PairMap(len(instrs))
	ops := Instruction(sc.Ints(16)[:0]) // reusable normalize buffer
	for _, in := range instrs {
		ops = normalizeInto(in, ops[:0])
		for i, v := range ops {
			vi, ok := intern[v]
			if !ok {
				vi = int32(len(ids))
				intern[v] = vi
				ids = append(ids, v)
			}
			// ops is sorted ascending and interning follows scan order only
			// for fresh values, so pack the pair by index as (lo,hi).
			for j := 0; j < i; j++ {
				ui := intern[ops[j]]
				lo, hi := ui, vi
				if lo > hi {
					lo, hi = hi, lo
				}
				conf[uint64(lo)<<32|uint64(hi)]++
			}
		}
	}
	g := graph.New()
	for _, v := range ids {
		g.AddNode(v)
	}
	for key, w := range conf {
		g.AddEdgeWeight(ids[key>>32], ids[uint32(key)], w)
	}
	return g
}

// normalizeInto is Instruction.Normalize with a caller-supplied buffer: it
// appends the sorted, deduplicated operand set of in to buf and returns the
// extended slice.
func normalizeInto(in Instruction, buf Instruction) Instruction {
	base := len(buf)
	buf = append(buf, in...)
	out := buf[base:]
	sort.Ints(out)
	w := 0
	for i := range out {
		if i == 0 || out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return buf[:base+w]
}

// Conf returns conf(u,v): the number of instructions using both u and v.
// It is a convenience over Build(instrs).Weight(u,v) for callers that hold
// the graph already.
func Conf(g *graph.Graph, u, v ValueID) int { return g.Weight(u, v) }

// Validate checks that no instruction has more distinct operands than the
// machine has memory modules; such an instruction could never be fetched in
// one cycle regardless of data placement and indicates a scheduler bug.
func Validate(instrs []Instruction, modules int) error {
	sc := arena.Get()
	defer sc.Release()
	buf := Instruction(sc.Ints(16)[:0])
	for i, in := range instrs {
		buf = normalizeInto(in, buf[:0])
		if n := len(buf); n > modules {
			return fmt.Errorf("instruction %d has %d distinct operands but the machine has %d memory modules", i, n, modules)
		}
	}
	return nil
}

// OpsTable holds the normalized (sorted, deduplicated) operand sets of an
// instruction stream in CSR form: one flat operand array plus per-
// instruction offsets. It replaces per-call Instruction.Normalize in the
// duplication hot loops; when built from a Scratch it is valid only for
// that arena scope.
type OpsTable struct {
	flat []ValueID
	off  []int32
}

// Len returns the number of instructions in the table.
func (t OpsTable) Len() int { return len(t.off) - 1 }

// Row returns the normalized operand set of instruction i. The slice
// aliases the table storage; callers must not modify it.
func (t OpsTable) Row(i int) Instruction { return Instruction(t.flat[t.off[i]:t.off[i+1]]) }

// NormalizeTable normalizes every instruction into one flat table backed
// by sc (a nil sc allocates fresh storage).
func NormalizeTable(instrs []Instruction, sc *arena.Scratch) OpsTable {
	total := 0
	for _, in := range instrs {
		total += len(in)
	}
	// Dedup only ever shrinks rows, so the flat buffer never regrows and
	// the row offsets stay valid.
	t := OpsTable{
		flat: sc.Ints(total)[:0],
		off:  sc.Int32s(len(instrs) + 1),
	}
	for i, in := range instrs {
		t.flat = []ValueID(normalizeInto(in, Instruction(t.flat)))
		t.off[i+1] = int32(len(t.flat))
	}
	return t
}

// appendCombKey appends the canonical dedup key bytes of a combination.
func appendCombKey(b []byte, comb []ValueID) []byte {
	for _, v := range comb {
		b = append(b, byte(v), byte(v>>8), byte(v>>16))
	}
	return b
}

// Combinations enumerates, without repetition, every size-n subset of
// operands that occurs together in at least one instruction (the sets
// S_i^n of paper Fig. 7). Each combination is sorted ascending; the result
// is sorted lexicographically. Instructions with fewer than n operands
// contribute nothing.
func Combinations(instrs []Instruction, n int) [][]ValueID {
	sc := arena.Get()
	defer sc.Release()
	// nil output scratch: the combinations escape to the caller.
	return CombinationsTable(NormalizeTable(instrs, sc), n, nil)
}

// CombinationsTable is Combinations over a pre-normalized table. The
// returned combination slices are carved from sc and share its lifetime
// (nil sc allocates them fresh); internal dedup state is pooled either
// way.
func CombinationsTable(t OpsTable, n int, sc *arena.Scratch) [][]ValueID {
	if n <= 0 {
		return nil
	}
	isc := arena.Get()
	defer isc.Release()
	seen := isc.StrSet(0)
	kb := isc.Bytes(3 * n)[:0]
	// Combinations are appended to a flat chunk and carved by full slice
	// expressions; when append regrows the chunk, already carved slices
	// keep pointing into the previous (still live) backing array.
	flat := sc.Ints(64 * n)[:0]
	var out [][]ValueID
	for i := 0; i < t.Len(); i++ {
		ops := t.Row(i)
		if len(ops) < n {
			continue
		}
		forEachSubset(ops, n, func(comb []ValueID) {
			kb = appendCombKey(kb[:0], comb)
			if _, ok := seen[string(kb)]; !ok {
				seen[string(kb)] = struct{}{}
				flat = append(flat, comb...)
				out = append(out, flat[len(flat)-n:len(flat):len(flat)])
			}
		})
	}
	sort.Slice(out, func(i, j int) bool { return lessIntSlice(out[i], out[j]) })
	return out
}

// forEachSubset calls fn with every size-n subset of the sorted slice ops.
// The slice passed to fn is reused between calls.
func forEachSubset(ops []ValueID, n int, fn func([]ValueID)) {
	comb := make([]ValueID, n)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == n {
			fn(comb)
			return
		}
		for i := start; i <= len(ops)-(n-depth); i++ {
			comb[depth] = ops[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func lessIntSlice(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Stats summarizes an instruction stream for reporting.
type Stats struct {
	Instructions int // total instructions
	Values       int // distinct operand values
	MaxOperands  int // largest distinct-operand count in one instruction
	Edges        int // conflict-graph edges
	TotalConf    int // sum of conf over all edges
}

// Summarize computes Stats for an instruction stream.
func Summarize(instrs []Instruction) Stats {
	g := Build(instrs)
	s := Stats{
		Instructions: len(instrs),
		Values:       g.NumNodes(),
		Edges:        g.NumEdges(),
	}
	for _, in := range instrs {
		if n := len(in.Normalize()); n > s.MaxOperands {
			s.MaxOperands = n
		}
	}
	for _, e := range g.Edges() {
		s.TotalConf += e.W
	}
	return s
}
