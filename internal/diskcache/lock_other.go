//go:build !unix

package diskcache

import "os"

// tryLockExclusive has no advisory-lock support off unix; the store
// behaves as if it always wins the race. Multi-process sharing safety is
// only guaranteed on unix.
func tryLockExclusive(*os.File) (bool, error) { return true, nil }

func unlock(*os.File) {}
