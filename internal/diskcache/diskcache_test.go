package diskcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string, mut func(*Options)) *Store {
	t.Helper()
	opt := Options{Dir: dir, EngineVersion: "test-engine-1"}
	if mut != nil {
		mut(&opt)
	}
	s, err := Open(opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func put(t *testing.T, s *Store, key, val string) {
	t.Helper()
	s.Put(key, []byte(val))
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	put(t, s, "alpha", "payload-a")
	put(t, s, "beta", "payload-b")
	if v, ok := s.Get("alpha"); !ok || string(v) != "payload-a" {
		t.Fatalf("Get(alpha) = %q, %v", v, ok)
	}
	if _, ok := s.Get("gamma"); ok {
		t.Fatal("Get(gamma) hit on an absent key")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart: the records must survive the process boundary.
	s2 := openT(t, dir, nil)
	for key, want := range map[string]string{"alpha": "payload-a", "beta": "payload-b"} {
		if v, ok := s2.Get(key); !ok || string(v) != want {
			t.Fatalf("after reopen Get(%s) = %q, %v; want %q", key, v, ok, want)
		}
	}
	st := s2.Stats()
	if st.Records != 2 || st.RecoveredTail || st.Degraded {
		t.Fatalf("unexpected stats after clean reopen: %+v", st)
	}
}

func TestOverwriteKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	put(t, s, "k", "old")
	put(t, s, "k", "new")
	if v, _ := s.Get("k"); string(v) != "new" {
		t.Fatalf("Get after overwrite = %q", v)
	}
	s.Close()
	s2 := openT(t, dir, nil)
	if v, _ := s2.Get("k"); string(v) != "new" {
		t.Fatalf("Get after reopen = %q (older record resurrected)", v)
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	put(t, s, "good1", "v1")
	put(t, s, "good2", "v2")
	s.Close()

	// Simulate a crash mid-append: append half a record.
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x10, 0x00}) //nolint:errcheck
	f.Close()
	before, _ := os.Stat(path)

	s2 := openT(t, dir, nil)
	st := s2.Stats()
	if !st.RecoveredTail {
		t.Fatalf("torn tail not flagged: %+v", st)
	}
	for key, want := range map[string]string{"good1": "v1", "good2": "v2"} {
		if v, ok := s2.Get(key); !ok || string(v) != want {
			t.Fatalf("Get(%s) after recovery = %q, %v", key, v, ok)
		}
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// And the recovered store keeps working.
	put(t, s2, "good3", "v3")
	if v, ok := s2.Get("good3"); !ok || string(v) != "v3" {
		t.Fatalf("Get(good3) after recovery append = %q, %v", v, ok)
	}
}

func TestBitFlipIsAMissNeverAWrongPayload(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	want := map[string]string{}
	for i := 0; i < 8; i++ {
		k, v := fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d-0123456789", i)
		put(t, s, k, v)
		want[k] = v
	}
	s.Close()

	path := filepath.Join(dir, logName)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte position (one at a time) past the header and
	// verify no Get ever returns a payload that differs from what was
	// written: corrupted records must vanish, not mutate.
	for pos := headerLen; pos < len(orig); pos += 7 {
		data := append([]byte(nil), orig...)
		data[pos] ^= 0x41
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := openT(t, dir, nil)
		for k, v := range want {
			if got, ok := s2.Get(k); ok && string(got) != v {
				t.Fatalf("flip at %d: Get(%s) returned wrong payload %q", pos, k, got)
			}
		}
		s2.Close()
		// Restore for the next position (the writer may have truncated).
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGetReverifiesCRCAfterOpen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	put(t, s, "k", "payload-payload-payload")
	// Corrupt the live log underneath the open store: the payload byte
	// flip must turn the next Get into a miss, not a wrong value.
	ref := s.index["k"]
	buf := make([]byte, ref.vlen)
	if _, err := s.f.ReadAt(buf, ref.off+recHeaderLen+int64(ref.klen)); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := s.f.WriteAt(buf, ref.off+recHeaderLen+int64(ref.klen)); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("k"); ok {
		t.Fatalf("Get returned %q from a corrupted record", v)
	}
	if st := s.Stats(); st.CorruptGets != 1 {
		t.Fatalf("CorruptGets = %d, want 1", st.CorruptGets)
	}
}

func TestWrongEngineVersionIsInvisible(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, func(o *Options) { o.EngineVersion = "engine-A" })
	put(t, s, "k", "from-A")
	s.Close()

	sB := openT(t, dir, func(o *Options) { o.EngineVersion = "engine-B" })
	if v, ok := sB.Get("k"); ok {
		t.Fatalf("engine-B read engine-A's payload %q", v)
	}
	if st := sB.Stats(); st.SkippedVersion != 1 {
		t.Fatalf("SkippedVersion = %d, want 1", st.SkippedVersion)
	}
	// B's own writes coexist with A's records in the same log.
	put(t, sB, "k", "from-B")
	if v, ok := sB.Get("k"); !ok || string(v) != "from-B" {
		t.Fatalf("engine-B Get = %q, %v", v, ok)
	}
	sB.Close()

	sA := openT(t, dir, func(o *Options) { o.EngineVersion = "engine-A" })
	if v, ok := sA.Get("k"); !ok || string(v) != "from-A" {
		t.Fatalf("engine-A Get after B's writes = %q, %v", v, ok)
	}
}

func TestWrongFormatVersionStartsOver(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	put(t, s, "k", "v")
	s.Close()

	path := filepath.Join(dir, logName)
	data, _ := os.ReadFile(path)
	data[4] = 0xEE                  // format version field
	os.WriteFile(path, data, 0o644) //nolint:errcheck

	s2 := openT(t, dir, nil)
	if _, ok := s2.Get("k"); ok {
		t.Fatal("record of a foreign format version was served")
	}
	put(t, s2, "k2", "v2") // writer starts the log over
	if v, ok := s2.Get("k2"); !ok || string(v) != "v2" {
		t.Fatalf("Get(k2) = %q, %v", v, ok)
	}
}

func TestCompactionBoundsSizeAndKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, func(o *Options) { o.MaxBytes = 4096 })
	val := bytes.Repeat([]byte("x"), 200)
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("key-%03d", i), val)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d bytes of puts into a 4096-byte bound", 100*200)
	}
	if st.Bytes > 4096 {
		t.Fatalf("log still %d bytes after compaction (bound 4096)", st.Bytes)
	}
	// The newest key must have survived; the oldest must be gone.
	if _, ok := s.Get("key-099"); !ok {
		t.Fatal("newest key evicted by compaction")
	}
	if _, ok := s.Get("key-000"); ok {
		t.Fatal("oldest key survived a full-log compaction")
	}
	s.Close()
	// And the compacted log reopens cleanly.
	s2 := openT(t, dir, func(o *Options) { o.MaxBytes = 4096 })
	if v, ok := s2.Get("key-099"); !ok || !bytes.Equal(v, val) {
		t.Fatalf("Get(key-099) after reopen = %d bytes, %v", len(v), ok)
	}
}

func TestConcurrentOpenDegradesToReadOnly(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, nil)
	put(t, w, "k", "v")

	// Second writable open while the first holds the lock: must degrade
	// to a read-only snapshot, not corrupt the live log.
	r := openT(t, dir, nil)
	st := r.Stats()
	if !st.ReadOnly || !st.Degraded {
		t.Fatalf("second open not degraded: %+v", st)
	}
	if v, ok := r.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("snapshot Get = %q, %v", v, ok)
	}
	r.Put("k2", []byte("dropped"))
	r.Sync() //nolint:errcheck
	if _, ok := r.Get("k2"); ok {
		t.Fatal("read-only snapshot accepted a Put")
	}
	if r.Stats().DroppedPuts == 0 {
		t.Fatal("dropped put not counted")
	}

	// The writer keeps working while the snapshot exists.
	put(t, w, "k3", "v3")
	if v, ok := w.Get("k3"); !ok || string(v) != "v3" {
		t.Fatalf("writer Get(k3) = %q, %v", v, ok)
	}
	w.Close()

	// Lock released: a fresh open becomes the writer again.
	w2 := openT(t, dir, nil)
	if st := w2.Stats(); st.ReadOnly {
		t.Fatalf("open after Close still read-only: %+v", st)
	}
}

func TestExplicitReadOnlyOpen(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, nil)
	put(t, w, "k", "v")
	w.Close()

	r := openT(t, dir, func(o *Options) { o.ReadOnly = true })
	if v, ok := r.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("read-only Get = %q, %v", v, ok)
	}
	if st := r.Stats(); !st.ReadOnly || st.Degraded {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestReadOnlyOpenOfMissingDirIsEmpty(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "never-written")
	r, err := Open(Options{Dir: dir, EngineVersion: "e", ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only open of empty dir: %v", err)
	}
	defer r.Close()
	if _, ok := r.Get("k"); ok {
		t.Fatal("hit in an empty store")
	}
}

func TestConcurrentPutGetRace(t *testing.T) {
	s := openT(t, t.TempDir(), nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i%17)
				s.Put(k, []byte(k))
				if v, ok := s.Get(k); ok && string(v) != k {
					t.Errorf("Get(%s) = %q", k, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	s.Put("k", []byte("v"))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats: %+v", st)
	}
}
