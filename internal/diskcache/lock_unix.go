//go:build unix

package diskcache

import (
	"errors"
	"os"
	"syscall"
)

// tryLockExclusive takes a non-blocking exclusive advisory lock on f.
// It returns (false, nil) when another open file description holds the
// lock — the caller degrades to a read-only snapshot.
func tryLockExclusive(f *os.File) (bool, error) {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return false, nil
	}
	return false, err
}

// unlock releases the advisory lock (best effort; closing the file
// releases it anyway).
func unlock(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN) //nolint:errcheck
}
