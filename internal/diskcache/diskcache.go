// Package diskcache is the persistent second level of the allocation
// cache: a corruption-safe append-log of (key, payload) records shared
// across processes. Compile results survive restarts — a daemon rebooted
// with the same cache directory serves previously compiled programs
// without recomputing them — and a fleet of daemons pointed at disjoint
// directories converges to disjoint warm caches under the gateway's
// hash sharding.
//
// Safety model. The log is append-only: one file, a fixed header, then
// CRC-framed records. Trust in the log ends at the first bad frame — a
// torn tail from a crash mid-append, a bit flip, an impossible length —
// and everything before it keeps serving. A writable open truncates the
// file back to the last good record; a read-only open simply stops
// indexing there. Every record key embeds the engine version and the file
// header embeds the format version, so a store written by a different
// engine or format degrades to cache misses, never to a wrong payload.
// Get re-verifies the CRC on every read, so corruption that arrives
// after open (bit rot, a scribbling neighbor) is also a miss, not a
// wrong answer.
//
// Sharing model. One writer at a time: Open takes a non-blocking
// exclusive advisory lock (flock) on a lock file; a second process that
// loses the race degrades to a read-only snapshot of the valid prefix
// instead of failing. Compaction rewrites to a temp file and renames it
// into place, so concurrent readers holding the old file keep reading a
// consistent (merely stale) log.
//
// Write model. Puts are write-behind: they enqueue onto a bounded
// channel served by one background appender, so the engine's hot path
// never waits on disk. A full queue drops the put (it is a cache);
// Sync flushes the queue for callers that need durability ordering.
package diskcache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

const (
	// FormatVersion is the on-disk format generation; it is embedded in
	// the file header and a mismatch makes Open start over (writer) or
	// see an empty store (reader).
	FormatVersion = 1

	// DefaultMaxBytes bounds the log when Options.MaxBytes is zero.
	DefaultMaxBytes = 64 << 20

	logName  = "cache.log"
	lockName = "cache.lock"

	headerLen = 8 // "PMDC" + uint32 format version

	// recHeaderLen frames one record: crc32, key length, value length.
	recHeaderLen = 12

	// maxKeyBytes and maxValBytes bound a single record; lengths beyond
	// them mean the frame is garbage, not a huge entry.
	maxKeyBytes = 1 << 20
	maxValBytes = 32 << 20

	// putQueueLen bounds the write-behind queue.
	putQueueLen = 256
)

var magic = [4]byte{'P', 'M', 'D', 'C'}

// Options configures Open.
type Options struct {
	// Dir is the cache directory (created if absent).
	Dir string
	// MaxBytes bounds the log file; exceeding it triggers a compaction
	// that keeps the newest records. <= 0 means DefaultMaxBytes.
	MaxBytes int64
	// EngineVersion is prefixed onto every record key, so payloads
	// written by a different engine generation are invisible (a miss)
	// rather than wrong. Required.
	EngineVersion string
	// ReadOnly opens a snapshot: no lock is taken, no truncation or
	// compaction happens, and Put drops silently.
	ReadOnly bool
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Hits        int64 // Get calls served from the log
	Misses      int64 // Get calls that found nothing usable
	Puts        int64 // records appended
	DroppedPuts int64 // puts dropped (full queue, read-only store, oversized)
	CorruptGets int64 // Gets that found a record with a bad CRC (counted in Misses)
	Compactions int64 // log rewrites triggered by the size bound

	Records int   // live keys indexed
	Bytes   int64 // current log file size

	// ReadOnly reports the store serves a snapshot (requested, or
	// degraded because another process holds the writer lock).
	ReadOnly bool
	// Degraded reports a writable open lost the lock race and fell back
	// to read-only.
	Degraded bool
	// RecoveredTail reports Open found a torn or corrupt tail and
	// truncated (writer) or ignored (reader) it.
	RecoveredTail bool
	// SkippedVersion counts records of other engine versions seen at
	// open (kept on disk, invisible to this store).
	SkippedVersion int64
}

// recRef locates one live record's value in the log.
type recRef struct {
	off  int64 // offset of the record header
	klen int   // disk-key length (engine-version prefix included)
	vlen int
}

// putOp is one queued write-behind operation; a nil-key op with a
// non-nil flush channel is a Sync barrier.
type putOp struct {
	key   string
	val   []byte
	flush chan struct{}
}

// Store is an open disk cache. It is safe for concurrent use.
type Store struct {
	opt      Options
	path     string
	readOnly bool
	degraded bool

	mu    sync.Mutex
	f     *os.File
	index map[string]recRef
	order []string // append order of live keys, oldest first
	size  int64

	lockF *os.File

	qMu     sync.RWMutex
	qClosed bool
	q       chan putOp
	wg      sync.WaitGroup

	hits, misses, puts, dropped atomic.Int64
	corruptGets, compactions    atomic.Int64

	recoveredTail  bool
	skippedVersion int64
}

// Open opens (creating if needed) the store in opt.Dir. A writable open
// that cannot take the writer lock degrades to a read-only snapshot
// rather than failing; see the package comment for the sharing model.
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, errors.New("diskcache: Options.Dir is required")
	}
	if opt.EngineVersion == "" {
		return nil, errors.New("diskcache: Options.EngineVersion is required")
	}
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	s := &Store{
		opt:      opt,
		path:     filepath.Join(opt.Dir, logName),
		readOnly: opt.ReadOnly,
		index:    map[string]recRef{},
	}
	if !opt.ReadOnly {
		lf, err := os.OpenFile(filepath.Join(opt.Dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("diskcache: %w", err)
		}
		switch locked, lerr := tryLockExclusive(lf); {
		case lerr != nil:
			lf.Close()
			return nil, fmt.Errorf("diskcache: lock: %w", lerr)
		case !locked:
			// Another process owns the log: serve a read-only snapshot
			// instead of corrupting a live writer's appends.
			lf.Close()
			s.readOnly, s.degraded = true, true
		default:
			s.lockF = lf
		}
	}
	if err := s.open(); err != nil {
		if s.lockF != nil {
			unlock(s.lockF)
			s.lockF.Close()
		}
		return nil, err
	}
	if !s.readOnly {
		s.q = make(chan putOp, putQueueLen)
		s.wg.Add(1)
		go s.writeLoop()
	}
	return s, nil
}

// open opens the log file, validates the header and builds the index
// from the valid record prefix.
func (s *Store) open() error {
	flags, perm := os.O_RDONLY, os.FileMode(0)
	if !s.readOnly {
		flags, perm = os.O_CREATE|os.O_RDWR, 0o644
	}
	f, err := os.OpenFile(s.path, flags, perm)
	if err != nil {
		if s.readOnly && errors.Is(err, os.ErrNotExist) {
			// Nothing persisted yet; an empty read-only store.
			return nil
		}
		return fmt.Errorf("diskcache: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("diskcache: %w", err)
	}
	switch ok, herr := checkHeader(f, fi.Size()); {
	case herr != nil:
		f.Close()
		return herr
	case !ok && s.readOnly:
		// Foreign or stale format: invisible to a snapshot reader.
		f.Close()
		return nil
	case !ok:
		// Writer: start the log over under the current format.
		if err := writeHeader(f); err != nil {
			f.Close()
			return err
		}
		s.f, s.size = f, headerLen
		return nil
	}
	s.f = f
	s.scan(fi.Size())
	return nil
}

// checkHeader validates the magic and format version of a non-empty log;
// an empty (or too-short) file counts as "no valid header" without error.
func checkHeader(f *os.File, size int64) (bool, error) {
	if size < headerLen {
		return false, nil
	}
	var hdr [headerLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return false, fmt.Errorf("diskcache: header: %w", err)
	}
	if [4]byte(hdr[0:4]) != magic {
		return false, nil
	}
	if binary.LittleEndian.Uint32(hdr[4:8]) != FormatVersion {
		return false, nil
	}
	return true, nil
}

// writeHeader truncates f and writes a fresh header.
func writeHeader(f *os.File) error {
	if err := f.Truncate(0); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[0:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], FormatVersion)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	return nil
}

// scan walks the records from the header to the first bad frame, indexing
// records of this store's engine version (later records override earlier
// ones). A writer truncates the bad tail away; a reader just stops.
func (s *Store) scan(size int64) {
	prefix := s.diskPrefix()
	off := int64(headerLen)
	r := io.NewSectionReader(s.f, 0, size)
	var rh [recHeaderLen]byte
	for off+recHeaderLen <= size {
		if _, err := r.ReadAt(rh[:], off); err != nil {
			break
		}
		crc := binary.LittleEndian.Uint32(rh[0:4])
		klen := int(binary.LittleEndian.Uint32(rh[4:8]))
		vlen := int(binary.LittleEndian.Uint32(rh[8:12]))
		if klen <= 0 || klen > maxKeyBytes || vlen < 0 || vlen > maxValBytes ||
			off+recHeaderLen+int64(klen)+int64(vlen) > size {
			break
		}
		body := make([]byte, klen+vlen)
		if _, err := r.ReadAt(body, off+recHeaderLen); err != nil {
			break
		}
		if crc32.ChecksumIEEE(body) != crc {
			break
		}
		dk := string(body[:klen])
		if len(dk) > len(prefix) && dk[:len(prefix)] == prefix {
			key := dk[len(prefix):]
			if _, seen := s.index[key]; !seen {
				s.order = append(s.order, key)
			}
			s.index[key] = recRef{off: off, klen: klen, vlen: vlen}
		} else {
			s.skippedVersion++
		}
		off += recHeaderLen + int64(klen) + int64(vlen)
	}
	s.size = off
	if off < size {
		s.recoveredTail = true
		if !s.readOnly {
			// Trust ends here: cut the torn/corrupt tail so the next
			// append starts at a clean boundary.
			s.f.Truncate(off) //nolint:errcheck // best effort; appends overwrite anyway
		}
	}
}

// diskPrefix is the engine-version prefix of every on-disk key.
func (s *Store) diskPrefix() string {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s.opt.EngineVersion)))
	return string(n[:]) + s.opt.EngineVersion
}

// Get returns the payload stored under key. The record's CRC is
// re-verified on every read; any mismatch is a miss (and the record is
// dropped from the index), never a wrong payload. Safe on a nil store.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		s.misses.Add(1)
		return nil, false
	}
	ref, ok := s.index[key]
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	buf := make([]byte, recHeaderLen+ref.klen+ref.vlen)
	if _, err := s.f.ReadAt(buf, ref.off); err != nil {
		s.dropLocked(key)
		s.corruptGets.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	crc := binary.LittleEndian.Uint32(buf[0:4])
	if crc32.ChecksumIEEE(buf[recHeaderLen:]) != crc {
		s.dropLocked(key)
		s.corruptGets.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return buf[recHeaderLen+ref.klen:], true
}

// dropLocked removes key from the index (order entries are lazily skipped).
func (s *Store) dropLocked(key string) {
	delete(s.index, key)
}

// Put enqueues (key, val) for appending. It never blocks: a full queue,
// a read-only store or an oversized record drops the put. The value is
// copied before Put returns, so the caller may reuse its buffer. Safe on
// a nil store.
func (s *Store) Put(key string, val []byte) {
	if s == nil {
		return
	}
	if s.readOnly || len(key) == 0 || len(key) > maxKeyBytes-len(s.diskPrefix()) || len(val) > maxValBytes {
		s.dropped.Add(1)
		return
	}
	op := putOp{key: key, val: append([]byte(nil), val...)}
	s.qMu.RLock()
	defer s.qMu.RUnlock()
	if s.qClosed {
		s.dropped.Add(1)
		return
	}
	select {
	case s.q <- op:
	default:
		s.dropped.Add(1)
	}
}

// Sync blocks until every Put enqueued before it has been applied to the
// log. Safe on a nil or read-only store.
func (s *Store) Sync() error {
	if s == nil || s.readOnly {
		return nil
	}
	ch := make(chan struct{})
	s.qMu.RLock()
	if s.qClosed {
		s.qMu.RUnlock()
		return nil
	}
	s.q <- putOp{flush: ch}
	s.qMu.RUnlock()
	<-ch
	return nil
}

// writeLoop is the single background appender.
func (s *Store) writeLoop() {
	defer s.wg.Done()
	for op := range s.q {
		if op.flush != nil {
			close(op.flush)
			continue
		}
		s.append(op.key, op.val)
	}
}

// append writes one record and compacts when the log outgrows MaxBytes.
func (s *Store) append(key string, val []byte) {
	dk := s.diskPrefix() + key
	rec := make([]byte, recHeaderLen, recHeaderLen+len(dk)+len(val))
	rec = append(rec, dk...)
	rec = append(rec, val...)
	binary.LittleEndian.PutUint32(rec[0:4], crc32.ChecksumIEEE(rec[recHeaderLen:]))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(dk)))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(val)))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		s.dropped.Add(1)
		return
	}
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		s.dropped.Add(1)
		return
	}
	if _, seen := s.index[key]; !seen {
		s.order = append(s.order, key)
	}
	s.index[key] = recRef{off: s.size, klen: len(dk), vlen: len(val)}
	s.size += int64(len(rec))
	s.puts.Add(1)
	if s.size > s.opt.MaxBytes {
		s.compactLocked()
	}
}

// compactLocked rewrites the log keeping only the newest live records
// that fit in half the size bound (eviction is oldest-first, matching
// the in-memory tier's FIFO), then atomically renames it into place.
// Concurrent readers of the old file keep a consistent stale snapshot.
func (s *Store) compactLocked() {
	budget := s.opt.MaxBytes / 2
	type keep struct {
		key string
		ref recRef
	}
	var kept []keep
	var total int64
	for i := len(s.order) - 1; i >= 0; i-- {
		key := s.order[i]
		ref, ok := s.index[key]
		if !ok || ref.off != s.refOff(key) {
			continue // dead entry or an older duplicate of a live key
		}
		sz := int64(recHeaderLen + ref.klen + ref.vlen)
		if total+sz > budget {
			break
		}
		kept = append(kept, keep{key, ref})
		total += sz
	}

	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return // keep serving the oversized log; better than losing it
	}
	if err := writeHeader(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return
	}
	off := int64(headerLen)
	newIndex := make(map[string]recRef, len(kept))
	newOrder := make([]string, 0, len(kept))
	// kept is newest-first; write oldest-first to preserve append order.
	for i := len(kept) - 1; i >= 0; i-- {
		k := kept[i]
		buf := make([]byte, recHeaderLen+k.ref.klen+k.ref.vlen)
		if _, err := s.f.ReadAt(buf, k.ref.off); err != nil {
			continue
		}
		if crc32.ChecksumIEEE(buf[recHeaderLen:]) != binary.LittleEndian.Uint32(buf[0:4]) {
			continue // never copy a corrupt record forward
		}
		if _, err := tmp.WriteAt(buf, off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return
		}
		newIndex[k.key] = recRef{off: off, klen: k.ref.klen, vlen: k.ref.vlen}
		newOrder = append(newOrder, k.key)
		off += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return
	}
	s.f.Close()
	s.f = tmp
	s.index = newIndex
	s.order = newOrder
	s.size = off
	s.compactions.Add(1)
}

// refOff returns the indexed offset of key (or -1), for duplicate
// detection during compaction.
func (s *Store) refOff(key string) int64 {
	if ref, ok := s.index[key]; ok {
		return ref.off
	}
	return -1
}

// Close flushes the write-behind queue, syncs and closes the log, and
// releases the writer lock. Safe on a nil store and safe to call twice.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.qMu.Lock()
	if s.qClosed {
		s.qMu.Unlock()
		return nil
	}
	s.qClosed = true
	if s.q != nil {
		close(s.q)
	}
	s.qMu.Unlock()
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.f != nil {
		if !s.readOnly {
			err = s.f.Sync()
		}
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	if s.lockF != nil {
		unlock(s.lockF)
		s.lockF.Close()
		s.lockF = nil
	}
	return err
}

// Stats returns a snapshot of the store's counters. Safe on a nil store.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	records, bytes := len(s.index), s.size
	s.mu.Unlock()
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Puts:           s.puts.Load(),
		DroppedPuts:    s.dropped.Load(),
		CorruptGets:    s.corruptGets.Load(),
		Compactions:    s.compactions.Load(),
		Records:        records,
		Bytes:          bytes,
		ReadOnly:       s.readOnly,
		Degraded:       s.degraded,
		RecoveredTail:  s.recoveredTail,
		SkippedVersion: s.skippedVersion,
	}
}

// Path returns the log file path (for tests and diagnostics).
func (s *Store) Path() string { return s.path }
