package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Lex tokenizes MPL source. Comments run from "--" to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)

	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	emit := func(kind TokKind, text string, l, c int) {
		toks = append(toks, Token{Kind: kind, Text: text, Line: l, Col: c})
	}

	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case isAlpha(c):
			l0, c0 := line, col
			j := i
			for j < n && (isAlpha(src[j]) || isDigit(src[j])) {
				j++
			}
			word := src[i:j]
			advance(j - i)
			if kw, ok := keywords[strings.ToLower(word)]; ok {
				emit(kw, word, l0, c0)
			} else {
				emit(Ident, word, l0, c0)
			}
		case isDigit(c):
			l0, c0 := line, col
			j := i
			for j < n && isDigit(src[j]) {
				j++
			}
			isFloat := false
			if j < n && src[j] == '.' && j+1 < n && isDigit(src[j+1]) {
				isFloat = true
				j++
				for j < n && isDigit(src[j]) {
					j++
				}
			}
			if j < n && (src[j] == 'e' || src[j] == 'E') {
				k := j + 1
				if k < n && (src[k] == '+' || src[k] == '-') {
					k++
				}
				if k < n && isDigit(src[k]) {
					isFloat = true
					j = k
					for j < n && isDigit(src[j]) {
						j++
					}
				}
			}
			text := src[i:j]
			advance(j - i)
			if isFloat {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, fmt.Errorf("%d:%d: bad float literal %q: %v", l0, c0, text, err)
				}
				toks = append(toks, Token{Kind: FloatLit, Text: text, Flt: f, Line: l0, Col: c0})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%d:%d: bad integer literal %q: %v", l0, c0, text, err)
				}
				toks = append(toks, Token{Kind: IntLit, Text: text, Int: v, Line: l0, Col: c0})
			}
		default:
			l0, c0 := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case ":=":
				emit(Assign, two, l0, c0)
				advance(2)
				continue
			case "<>":
				emit(NeOp, two, l0, c0)
				advance(2)
				continue
			case "<=":
				emit(LeOp, two, l0, c0)
				advance(2)
				continue
			case ">=":
				emit(GeOp, two, l0, c0)
				advance(2)
				continue
			}
			var kind TokKind
			switch c {
			case ';':
				kind = Semi
			case ',':
				kind = Comma
			case ':':
				kind = Colon
			case '(':
				kind = LParen
			case ')':
				kind = RParen
			case '[':
				kind = LBracket
			case ']':
				kind = RBracket
			case '+':
				kind = Plus
			case '-':
				kind = Minus
			case '*':
				kind = Star
			case '/':
				kind = Slash
			case '%':
				kind = Percent
			case '=':
				kind = EqOp
			case '<':
				kind = LtOp
			case '>':
				kind = GtOp
			default:
				return nil, fmt.Errorf("%d:%d: unexpected character %q", l0, c0, string(c))
			}
			emit(kind, string(c), l0, c0)
			advance(1)
		}
	}
	toks = append(toks, Token{Kind: EOF, Line: line, Col: col})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
