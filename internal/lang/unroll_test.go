package lang

import (
	"testing"
)

func parseT(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUnrollFactorOneNoop(t *testing.T) {
	p := parseT(t, "program p; var s: int; begin for i := 0 to 9 do s := s + i; end end")
	Unroll(p, 1, 4)
	if len(p.Body) != 1 {
		t.Fatalf("factor 1 must not change the program, body = %d stmts", len(p.Body))
	}
	if _, ok := p.Body[0].(*ForStmt); !ok {
		t.Fatal("loop replaced")
	}
}

func TestUnrollFull(t *testing.T) {
	p := parseT(t, "program p; var s: int; begin for i := 0 to 3 do s := s + i; end end")
	Unroll(p, 4, 8)
	// Full unroll: 4 copies of (i := const; s := s + i) plus the final
	// i := 4 that preserves the post-loop value = 9 statements.
	if len(p.Body) != 9 {
		t.Fatalf("body = %d stmts, want 9", len(p.Body))
	}
	for n := 0; n < 4; n++ {
		as, ok := p.Body[2*n].(*AssignStmt)
		if !ok || as.Name != "i" {
			t.Fatalf("stmt %d is not an i assignment", 2*n)
		}
		if v, ok := as.Value.(*IntExpr); !ok || v.Val != int64(n) {
			t.Fatalf("copy %d sets i to %v", n, as.Value)
		}
	}
}

func TestUnrollDowntoFull(t *testing.T) {
	p := parseT(t, "program p; var s: int; begin for i := 3 downto 1 do s := s + i; end end")
	Unroll(p, 4, 8)
	if len(p.Body) != 7 { // 3 copies x 2 stmts + final i := 0
		t.Fatalf("body = %d stmts, want 7", len(p.Body))
	}
	vals := []int64{3, 2, 1}
	for n, want := range vals {
		as := p.Body[2*n].(*AssignStmt)
		if v := as.Value.(*IntExpr); v.Val != want {
			t.Fatalf("copy %d sets i to %d, want %d", n, v.Val, want)
		}
	}
}

func TestUnrollPartialWithRemainder(t *testing.T) {
	// 10 iterations, factor 4: one chunk loop of 2 rounds + 2 remainder
	// copies.
	p := parseT(t, "program p; var s: int; begin for i := 0 to 9 do s := s + i; end end")
	Unroll(p, 4, 4)
	f, ok := p.Body[0].(*ForStmt)
	if !ok {
		t.Fatalf("first stmt %T, want chunk loop", p.Body[0])
	}
	if f.Var != "_u_i" {
		t.Fatalf("chunk variable %q", f.Var)
	}
	if hi := f.Hi.(*IntExpr); hi.Val != 1 {
		t.Fatalf("chunk loop bound %d, want 1", hi.Val)
	}
	if len(f.Body) != 8 { // 4 copies of (assign + body stmt)
		t.Fatalf("chunk body = %d stmts, want 8", len(f.Body))
	}
	// Remainder: i := 8; body; i := 9; body; final i := 10.
	if len(p.Body) != 1+4+1 {
		t.Fatalf("top-level stmts = %d, want 6", len(p.Body))
	}
}

func TestUnrollVariableBoundsLeftAlone(t *testing.T) {
	p := parseT(t, "program p; var s, n: int; begin n := 5; for i := 0 to n do s := s + i; end end")
	Unroll(p, 4, 8)
	if len(p.Body) != 2 {
		t.Fatalf("body = %d stmts", len(p.Body))
	}
	if _, ok := p.Body[1].(*ForStmt); !ok {
		t.Fatal("variable-bound loop must stay")
	}
}

func TestUnrollNestedLoops(t *testing.T) {
	p := parseT(t, `program p; var s: int;
begin
  for i := 0 to 99 do
    for j := 0 to 1 do
      s := s + i * j;
    end
  end
end`)
	Unroll(p, 4, 4)
	// Outer partially unrolled into a chunk loop; inner (2 iterations)
	// fully unrolled inside each copy.
	f, ok := p.Body[0].(*ForStmt)
	if !ok {
		t.Fatal("chunk loop missing")
	}
	// Each of the 4 copies contributes: i assign + inner fully unrolled
	// (2 x (j assign + stmt) + final j assign) = 6 statements.
	if len(f.Body) != 4*6 {
		t.Fatalf("chunk body = %d stmts, want 24", len(f.Body))
	}
}

func TestUnrollSemanticsPreserved(t *testing.T) {
	src := `program p; var s: int; var a: array[16] of int;
begin
  s := 0;
  for i := 0 to 15 do
    a[i] := i * i;
  end
  for i := 0 to 15 do
    s := s + a[i];
  end
end`
	// Lower both versions and compare structurally impossible — instead
	// check the unrolled program still compiles.
	p := parseT(t, src)
	Unroll(p, 4, 8)
	f, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnrollKeepsIfWhileBodies(t *testing.T) {
	p := parseT(t, `program p; var s, x: int;
begin
  if x > 0 then
    for i := 0 to 1 do s := s + i; end
  end
  while x > 0 do
    for i := 0 to 1 do s := s - i; end
    x := x - 1;
  end
end`)
	Unroll(p, 4, 4)
	// Each inner loop fully unrolls to 2 x (assign + stmt) + the final
	// post-loop assignment = 5 statements.
	ifSt := p.Body[0].(*IfStmt)
	if len(ifSt.Then) != 5 {
		t.Fatalf("if-then not unrolled: %d stmts", len(ifSt.Then))
	}
	whSt := p.Body[1].(*WhileStmt)
	if len(whSt.Body) != 6 {
		t.Fatalf("while body not unrolled: %d stmts", len(whSt.Body))
	}
}
