package lang

import (
	"testing"
)

func TestIfConvertSimple(t *testing.T) {
	p := parseT(t, `program p; var x, c: int;
begin
  if c > 0 then
    x := 5;
  else
    x := 7;
  end
end`)
	n := IfConvert(p, 0)
	if n != 1 {
		t.Fatalf("converted = %d, want 1", n)
	}
	// The if is gone: body is now _ic0 assignment + 2 blends.
	if len(p.Body) != 3 {
		t.Fatalf("body = %d stmts, want 3", len(p.Body))
	}
	for _, s := range p.Body {
		if _, ok := s.(*IfStmt); ok {
			t.Fatal("conditional survived conversion")
		}
	}
	if len(p.ImplicitInts) == 0 || p.ImplicitInts[0] != "_ic0" {
		t.Fatalf("implicit condition variable missing: %v", p.ImplicitInts)
	}
	if _, err := Lower(p); err != nil {
		t.Fatal(err)
	}
}

func TestIfConvertRejectsUnsafe(t *testing.T) {
	cases := []struct{ name, src string }{
		{"division", `program p; var x, c: int; begin if c > 0 then x := 1 / c; end end`},
		{"modulo", `program p; var x, c: int; begin if c > 0 then x := c % 2; end end`},
		{"array read", `program p; var a: array[4] of int; var x, c: int; begin if c > 0 then x := a[c]; end end`},
		{"array write", `program p; var a: array[4] of int; var c: int; begin if c > 0 then a[c] := 1; end end`},
		{"nested while", `program p; var x, c: int; begin if c > 0 then while x > 0 do x := x - 1; end end end`},
	}
	for _, tc := range cases {
		p := parseT(t, tc.src)
		if n := IfConvert(p, 0); n != 0 {
			t.Errorf("%s: converted %d, want 0", tc.name, n)
		}
		if _, ok := p.Body[0].(*IfStmt); !ok {
			t.Errorf("%s: conditional was rewritten", tc.name)
		}
	}
}

func TestIfConvertRespectsSizeLimit(t *testing.T) {
	p := parseT(t, `program p; var a, b, c, d, x: int;
begin
  if x > 0 then
    a := 1; b := 2; c := 3; d := 4;
  end
end`)
	if n := IfConvert(p, 2); n != 0 {
		t.Fatalf("converted despite size limit: %d", n)
	}
	if n := IfConvert(p, 8); n != 1 {
		t.Fatalf("not converted within limit: %d", n)
	}
}

func TestIfConvertNestedInnerFirst(t *testing.T) {
	// The inner if converts first, turning the outer arm into plain
	// assignments, which makes the outer if convertible too.
	p := parseT(t, `program p; var x, y, c, d: int;
begin
  if c > 0 then
    if d > 0 then
      x := 1;
    end
    y := 2;
  end
end`)
	if n := IfConvert(p, 0); n != 2 {
		t.Fatalf("converted = %d, want 2 (inner then outer)", n)
	}
	for _, s := range p.Body {
		if _, ok := s.(*IfStmt); ok {
			t.Fatal("conditionals survived")
		}
	}
}

func TestIfConvertInsideLoops(t *testing.T) {
	p := parseT(t, `program p; var best, v: int;
begin
  for i := 0 to 9 do
    v := i * 3 % 7;
    if v > best then
      best := v;
    end
  end
end`)
	if n := IfConvert(p, 0); n != 1 {
		t.Fatalf("converted = %d, want 1", n)
	}
	f := p.Body[0].(*ForStmt)
	for _, s := range f.Body {
		if _, ok := s.(*IfStmt); ok {
			t.Fatal("conditional in loop body survived")
		}
	}
}
