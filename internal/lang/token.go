// Package lang implements MPL, the small imperative language the benchmark
// programs are written in. MPL plays the role of the source language of the
// paper's RLIW compiler: scalar int/float variables, fixed-size arrays,
// structured control flow, and nothing else. A program is lexed, parsed,
// type-checked and lowered to the three-address IR of internal/ir.
//
//	program demo;
//	var x, y: int;
//	var a: array[16] of float;
//	begin
//	  x := 0;
//	  for i := 0 to 15 do
//	    a[i] := a[i] * 2.0;
//	  end
//	end
package lang

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

const (
	EOF TokKind = iota
	Ident
	IntLit
	FloatLit

	// Keywords.
	KwProgram
	KwVar
	KwBegin
	KwEnd
	KwIf
	KwThen
	KwElse
	KwWhile
	KwDo
	KwFor
	KwTo
	KwDownto
	KwArray
	KwOf
	KwInt
	KwFloat
	KwAnd
	KwOr
	KwNot

	// Punctuation and operators.
	Semi     // ;
	Comma    // ,
	Colon    // :
	Assign   // :=
	LParen   // (
	RParen   // )
	LBracket // [
	RBracket // ]
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Percent  // %
	EqOp     // =
	NeOp     // <>
	LtOp     // <
	LeOp     // <=
	GtOp     // >
	GeOp     // >=
)

var kindNames = map[TokKind]string{
	EOF: "end of input", Ident: "identifier", IntLit: "integer literal",
	FloatLit: "float literal", KwProgram: "'program'", KwVar: "'var'",
	KwBegin: "'begin'", KwEnd: "'end'", KwIf: "'if'", KwThen: "'then'",
	KwElse: "'else'", KwWhile: "'while'", KwDo: "'do'", KwFor: "'for'",
	KwTo: "'to'", KwDownto: "'downto'", KwArray: "'array'", KwOf: "'of'",
	KwInt: "'int'", KwFloat: "'float'", KwAnd: "'and'", KwOr: "'or'",
	KwNot: "'not'", Semi: "';'", Comma: "','", Colon: "':'", Assign: "':='",
	LParen: "'('", RParen: "')'", LBracket: "'['", RBracket: "']'",
	Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'", Percent: "'%'",
	EqOp: "'='", NeOp: "'<>'", LtOp: "'<'", LeOp: "'<='", GtOp: "'>'",
	GeOp: "'>='",
}

func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokKind{
	"program": KwProgram, "var": KwVar, "begin": KwBegin, "end": KwEnd,
	"if": KwIf, "then": KwThen, "else": KwElse, "while": KwWhile,
	"do": KwDo, "for": KwFor, "to": KwTo, "downto": KwDownto,
	"array": KwArray, "of": KwOf, "int": KwInt, "float": KwFloat,
	"and": KwAnd, "or": KwOr, "not": KwNot,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Int  int64   // for IntLit
	Flt  float64 // for FloatLit
	Line int
	Col  int
}

// Pos formats the token position for error messages.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }
