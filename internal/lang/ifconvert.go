package lang

import "fmt"

// If-conversion, an AST-level transformation applied before lowering.
//
// Branchy code defeats a lock-step LIW machine: every basic-block boundary
// drains the instruction word. The RLIW work this paper belongs to
// (Gupta & Soffa, "A Matching Approach to Utilizing Fine-Grained
// Parallelism") converts short conditionals into straight-line arithmetic.
// MPL's version rewrites
//
//	if c then x := e1; else x := e2; end
//
// into
//
//	_ic := c
//	x := _ic * (e1) + (1 - _ic) * x
//	x := (1 - _ic) * (e2) + _ic * x
//
// which is branch-free and schedules into wide words. The rewrite is sound
// because MPL conditions are 0/1 integers and both arms' expressions are
// restricted to fault-free arithmetic (no division, no modulo, no array
// accesses), so evaluating the not-taken arm is harmless.

// IfConvert rewrites every eligible conditional of prog. maxAssigns bounds
// the total number of assignments across both arms (code-bloat guard); 0
// applies a default of 8.
func IfConvert(prog *Program, maxAssigns int) int {
	if maxAssigns <= 0 {
		maxAssigns = 8
	}
	c := &ifConverter{max: maxAssigns}
	prog.Body = c.stmts(prog.Body)
	prog.ImplicitInts = append(prog.ImplicitInts, c.implicit...)
	return c.converted
}

type ifConverter struct {
	max       int
	nextID    int
	converted int
	implicit  []string
}

func (c *ifConverter) stmts(ss []Stmt) []Stmt {
	var out []Stmt
	for _, s := range ss {
		out = append(out, c.stmt(s)...)
	}
	return out
}

func (c *ifConverter) stmt(s Stmt) []Stmt {
	switch st := s.(type) {
	case *IfStmt:
		// Convert inner conditionals first: a nested eligible if becomes
		// plain assignments, which may make the outer one eligible too.
		st.Then = c.stmts(st.Then)
		st.Else = c.stmts(st.Else)
		return c.convert(st)
	case *WhileStmt:
		st.Body = c.stmts(st.Body)
		return []Stmt{st}
	case *ForStmt:
		st.Body = c.stmts(st.Body)
		return []Stmt{st}
	default:
		return []Stmt{s}
	}
}

// convert rewrites one conditional if both arms are eligible.
func (c *ifConverter) convert(st *IfStmt) []Stmt {
	if len(st.Then)+len(st.Else) > c.max {
		return []Stmt{st}
	}
	for _, arm := range [][]Stmt{st.Then, st.Else} {
		for _, s := range arm {
			as, ok := s.(*AssignStmt)
			if !ok || as.Index != nil || !safeExpr(as.Value) {
				return []Stmt{st}
			}
		}
	}
	c.converted++
	cond := fmt.Sprintf("_ic%d", c.nextID)
	c.nextID++
	c.implicit = append(c.implicit, cond)

	// Normalize to 0/1: "if x then" is taken for any nonzero x.
	norm := &BinaryExpr{Op: NeOp, X: st.Cond, Y: &IntExpr{Val: 0, Line: st.Line}, Line: st.Line}
	out := []Stmt{&AssignStmt{Name: cond, Value: norm, Line: st.Line}}
	condRef := func() Expr { return &IdentExpr{Name: cond, Line: st.Line} }
	oneMinus := func() Expr {
		return &BinaryExpr{Op: Minus, X: &IntExpr{Val: 1, Line: st.Line}, Y: condRef(), Line: st.Line}
	}
	blend := func(as *AssignStmt, taken, notTaken Expr) Stmt {
		// target := taken*(expr) + notTaken*target
		return &AssignStmt{
			Name: as.Name,
			Value: &BinaryExpr{
				Op:   Plus,
				X:    &BinaryExpr{Op: Star, X: taken, Y: parenValue(as.Value), Line: as.Line},
				Y:    &BinaryExpr{Op: Star, X: notTaken, Y: &IdentExpr{Name: as.Name, Line: as.Line}, Line: as.Line},
				Line: as.Line,
			},
			Line: as.Line,
		}
	}
	for _, s := range st.Then {
		out = append(out, blend(s.(*AssignStmt), condRef(), oneMinus()))
	}
	for _, s := range st.Else {
		out = append(out, blend(s.(*AssignStmt), oneMinus(), condRef()))
	}
	return out
}

// parenValue returns the expression as-is; precedence is preserved because
// the AST already encodes it (no re-parsing happens).
func parenValue(e Expr) Expr { return e }

// safeExpr reports whether evaluating e speculatively can neither fault nor
// touch memory whose address might be invalid: no division, no modulo, no
// array indexing.
func safeExpr(e Expr) bool {
	switch ex := e.(type) {
	case *IntExpr, *FloatExpr, *IdentExpr:
		return true
	case *IndexExpr:
		return false
	case *UnaryExpr:
		return safeExpr(ex.X)
	case *BinaryExpr:
		if ex.Op == Slash || ex.Op == Percent {
			return false
		}
		return safeExpr(ex.X) && safeExpr(ex.Y)
	default:
		return false
	}
}
