package lang

import "parmem/internal/ir"

// Program is a parsed MPL program.
type Program struct {
	Name  string
	Decls []Decl
	Body  []Stmt
	// ImplicitInts lists variables that transformations (loop unrolling)
	// now assign outside any for-statement; lowering declares them as int
	// scalars if the program has not declared them itself.
	ImplicitInts []string
}

// Decl declares one or more variables of a common type.
type Decl struct {
	Names     []string
	Type      ir.Type
	ArraySize int // 0 for scalars, element count for arrays
	Line      int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// AssignStmt is "name := expr" or "name[index] := expr".
type AssignStmt struct {
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
	Line  int
}

// IfStmt is "if cond then ... [else ...] end".
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt is "while cond do ... end".
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ForStmt is "for v := lo to|downto hi do ... end".
type ForStmt struct {
	Var      string
	Lo, Hi   Expr
	Downward bool
	Body     []Stmt
	Line     int
}

func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*WhileStmt) stmt()  {}
func (*ForStmt) stmt()    {}

// Expr is an expression node.
type Expr interface{ expr() }

// IntExpr is an integer literal.
type IntExpr struct {
	Val  int64
	Line int
}

// FloatExpr is a floating-point literal.
type FloatExpr struct {
	Val  float64
	Line int
}

// IdentExpr is a scalar variable reference.
type IdentExpr struct {
	Name string
	Line int
}

// IndexExpr is an array element reference "name[index]".
type IndexExpr struct {
	Name  string
	Index Expr
	Line  int
}

// UnaryExpr is "-x" or "not x".
type UnaryExpr struct {
	Op   TokKind // Minus or KwNot
	X    Expr
	Line int
}

// BinaryExpr is "x op y" for arithmetic, comparison and logic operators.
type BinaryExpr struct {
	Op   TokKind
	X, Y Expr
	Line int
}

func (*IntExpr) expr()    {}
func (*FloatExpr) expr()  {}
func (*IdentExpr) expr()  {}
func (*IndexExpr) expr()  {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
