package lang

import (
	"fmt"

	"parmem/internal/ir"
)

// Parse lexes and parses MPL source into an AST.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("%s: expected %v, found %v %q", t.Pos(), k, t.Kind, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) program() (*Program, error) {
	if _, err := p.expect(KwProgram); err != nil {
		return nil, err
	}
	name, err := p.expect(Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	prog := &Program{Name: name.Text}
	for p.cur().Kind == KwVar {
		d, err := p.decl()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, d)
	}
	if _, err := p.expect(KwBegin); err != nil {
		return nil, err
	}
	body, err := p.stmts(KwEnd)
	if err != nil {
		return nil, err
	}
	prog.Body = body
	if _, err := p.expect(KwEnd); err != nil {
		return nil, err
	}
	if t := p.cur(); t.Kind != EOF {
		return nil, fmt.Errorf("%s: trailing input after final 'end'", t.Pos())
	}
	return prog, nil
}

func (p *parser) decl() (Decl, error) {
	kw, _ := p.expect(KwVar)
	d := Decl{Line: kw.Line}
	for {
		id, err := p.expect(Ident)
		if err != nil {
			return d, err
		}
		d.Names = append(d.Names, id.Text)
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(Colon); err != nil {
		return d, err
	}
	switch t := p.next(); t.Kind {
	case KwInt:
		d.Type = ir.Int
	case KwFloat:
		d.Type = ir.Float
	case KwArray:
		if _, err := p.expect(LBracket); err != nil {
			return d, err
		}
		size, err := p.expect(IntLit)
		if err != nil {
			return d, err
		}
		if size.Int <= 0 {
			return d, fmt.Errorf("%s: array size must be positive, got %d", size.Pos(), size.Int)
		}
		if _, err := p.expect(RBracket); err != nil {
			return d, err
		}
		if _, err := p.expect(KwOf); err != nil {
			return d, err
		}
		switch et := p.next(); et.Kind {
		case KwInt:
			d.Type = ir.Int
		case KwFloat:
			d.Type = ir.Float
		default:
			return d, fmt.Errorf("%s: expected element type, found %v", et.Pos(), et.Kind)
		}
		d.ArraySize = int(size.Int)
	default:
		return d, fmt.Errorf("%s: expected type, found %v", t.Pos(), t.Kind)
	}
	if _, err := p.expect(Semi); err != nil {
		return d, err
	}
	return d, nil
}

// stmts parses statements until one of the given terminators (not consumed).
func (p *parser) stmts(stops ...TokKind) ([]Stmt, error) {
	isStop := func(k TokKind) bool {
		if k == EOF {
			return true
		}
		for _, s := range stops {
			if k == s {
				return true
			}
		}
		return false
	}
	var out []Stmt
	for !isStop(p.cur().Kind) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		// Semicolons between statements are accepted but optional after
		// block statements.
		p.accept(Semi)
	}
	return out, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case Ident:
		return p.assign()
	case KwIf:
		return p.ifStmt()
	case KwWhile:
		return p.whileStmt()
	case KwFor:
		return p.forStmt()
	default:
		return nil, fmt.Errorf("%s: expected statement, found %v %q", t.Pos(), t.Kind, t.Text)
	}
}

func (p *parser) assign() (Stmt, error) {
	id, _ := p.expect(Ident)
	st := &AssignStmt{Name: id.Text, Line: id.Line}
	if p.accept(LBracket) {
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Index = idx
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Assign); err != nil {
		return nil, err
	}
	val, err := p.expr()
	if err != nil {
		return nil, err
	}
	st.Value = val
	return st, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	kw, _ := p.expect(KwIf)
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwThen); err != nil {
		return nil, err
	}
	then, err := p.stmts(KwElse, KwEnd)
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Line: kw.Line}
	if p.accept(KwElse) {
		els, err := p.stmts(KwEnd)
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	if _, err := p.expect(KwEnd); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	kw, _ := p.expect(KwWhile)
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwDo); err != nil {
		return nil, err
	}
	body, err := p.stmts(KwEnd)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwEnd); err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: kw.Line}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	kw, _ := p.expect(KwFor)
	id, err := p.expect(Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Assign); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	down := false
	switch t := p.next(); t.Kind {
	case KwTo:
	case KwDownto:
		down = true
	default:
		return nil, fmt.Errorf("%s: expected 'to' or 'downto', found %v", t.Pos(), t.Kind)
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwDo); err != nil {
		return nil, err
	}
	body, err := p.stmts(KwEnd)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwEnd); err != nil {
		return nil, err
	}
	return &ForStmt{Var: id.Text, Lo: lo, Hi: hi, Downward: down, Body: body, Line: kw.Line}, nil
}

// Expression precedence, loosest first: or, and, comparisons, additive,
// multiplicative, unary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == KwOr {
		op := p.next()
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: KwOr, X: x, Y: y, Line: op.Line}
	}
	return x, nil
}

func (p *parser) andExpr() (Expr, error) {
	x, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == KwAnd {
		op := p.next()
		y, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: KwAnd, X: x, Y: y, Line: op.Line}
	}
	return x, nil
}

func (p *parser) relExpr() (Expr, error) {
	x, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch k := p.cur().Kind; k {
	case EqOp, NeOp, LtOp, LeOp, GtOp, GeOp:
		op := p.next()
		y, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: k, X: x, Y: y, Line: op.Line}, nil
	}
	return x, nil
}

func (p *parser) addExpr() (Expr, error) {
	x, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		if k != Plus && k != Minus {
			return x, nil
		}
		op := p.next()
		y, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: k, X: x, Y: y, Line: op.Line}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		if k != Star && k != Slash && k != Percent {
			return x, nil
		}
		op := p.next()
		y, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: k, X: x, Y: y, Line: op.Line}
	}
}

func (p *parser) unary() (Expr, error) {
	switch t := p.cur(); t.Kind {
	case Minus:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: Minus, X: x, Line: t.Line}, nil
	case KwNot:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: KwNot, X: x, Line: t.Line}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	switch t := p.next(); t.Kind {
	case IntLit:
		return &IntExpr{Val: t.Int, Line: t.Line}, nil
	case FloatLit:
		return &FloatExpr{Val: t.Flt, Line: t.Line}, nil
	case Ident:
		if p.accept(LBracket) {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.Text, Index: idx, Line: t.Line}, nil
		}
		return &IdentExpr{Name: t.Text, Line: t.Line}, nil
	case LParen:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, fmt.Errorf("%s: expected expression, found %v %q", t.Pos(), t.Kind, t.Text)
	}
}
