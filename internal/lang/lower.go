package lang

import (
	"fmt"

	"parmem/internal/ir"
)

// Compile parses, type-checks and lowers MPL source to an ir.Func.
func Compile(src string) (*ir.Func, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(prog)
}

// symbol is a declared name.
type symbol struct {
	val *ir.Value // scalars
	arr *ir.Array // arrays
}

// lowerer walks the AST emitting IR, type-checking as it goes.
type lowerer struct {
	f    *ir.Func
	cur  *ir.Block
	syms map[string]symbol
}

// Lower type-checks prog and lowers it to IR.
func Lower(prog *Program) (*ir.Func, error) {
	lo := &lowerer{
		f:    ir.NewFunc(prog.Name),
		syms: map[string]symbol{},
	}
	lo.cur = lo.f.Blocks[0]
	for _, d := range prog.Decls {
		for _, name := range d.Names {
			if _, dup := lo.syms[name]; dup {
				return nil, fmt.Errorf("line %d: %q redeclared", d.Line, name)
			}
			if d.ArraySize > 0 {
				lo.syms[name] = symbol{arr: lo.f.NewArray(name, d.ArraySize, d.Type)}
			} else {
				lo.syms[name] = symbol{val: lo.f.NewValue(name, d.Type, ir.Var)}
			}
		}
	}
	for _, name := range prog.ImplicitInts {
		if _, ok := lo.syms[name]; !ok {
			lo.syms[name] = symbol{val: lo.f.NewValue(name, ir.Int, ir.Var)}
		}
	}
	if err := lo.stmts(prog.Body); err != nil {
		return nil, err
	}
	lo.cur.Emit(ir.Instr{Op: ir.Ret})
	if err := lo.f.Validate(); err != nil {
		return nil, fmt.Errorf("internal error: generated invalid IR: %v", err)
	}
	return lo.f, nil
}

func (lo *lowerer) stmts(ss []Stmt) error {
	for _, s := range ss {
		if err := lo.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lo *lowerer) stmt(s Stmt) error {
	switch st := s.(type) {
	case *AssignStmt:
		return lo.assign(st)
	case *IfStmt:
		return lo.ifStmt(st)
	case *WhileStmt:
		return lo.whileStmt(st)
	case *ForStmt:
		return lo.forStmt(st)
	default:
		return fmt.Errorf("internal error: unknown statement %T", s)
	}
}

func (lo *lowerer) assign(st *AssignStmt) error {
	sym, ok := lo.syms[st.Name]
	if !ok {
		return fmt.Errorf("line %d: %q undeclared", st.Line, st.Name)
	}
	val, err := lo.expr(st.Value)
	if err != nil {
		return err
	}
	if st.Index != nil {
		if sym.arr == nil {
			return fmt.Errorf("line %d: %q is not an array", st.Line, st.Name)
		}
		idx, err := lo.intExpr(st.Index, "array index")
		if err != nil {
			return err
		}
		v, err := lo.coerce(val, sym.arr.Type, st.Line)
		if err != nil {
			return err
		}
		lo.cur.Emit(ir.Instr{Op: ir.Store, Arr: sym.arr, Index: idx, A: v})
		return nil
	}
	if sym.val == nil {
		return fmt.Errorf("line %d: array %q assigned without index", st.Line, st.Name)
	}
	v, err := lo.coerce(val, sym.val.Type, st.Line)
	if err != nil {
		return err
	}
	lo.cur.Emit(ir.Instr{Op: ir.Mov, Dst: sym.val, A: v})
	return nil
}

// branchPatch records a branch whose target is filled in later.
type branchPatch struct {
	blk *ir.Block
	idx int
}

func (lo *lowerer) patch(p branchPatch, target int) {
	p.blk.Instrs[p.idx].Target = target
}

// emitBranchIfFalse emits "t = not cond; br t -> ?" and returns the patch.
func (lo *lowerer) emitBranchIfFalse(cond *ir.Value) branchPatch {
	inv := lo.f.NewTemp(ir.Int)
	lo.cur.Emit(ir.Instr{Op: ir.Not, Dst: inv, A: cond})
	lo.cur.Emit(ir.Instr{Op: ir.Br, A: inv, Target: -1})
	return branchPatch{blk: lo.cur, idx: len(lo.cur.Instrs) - 1}
}

func (lo *lowerer) ifStmt(st *IfStmt) error {
	cond, err := lo.condExpr(st.Cond)
	if err != nil {
		return err
	}
	toElse := lo.emitBranchIfFalse(cond)
	lo.cur = lo.f.NewBlock() // then, falls through from cond block
	if err := lo.stmts(st.Then); err != nil {
		return err
	}
	if len(st.Else) == 0 {
		end := lo.f.NewBlock()
		lo.patch(toElse, end.ID)
		lo.cur = end
		return nil
	}
	lo.cur.Emit(ir.Instr{Op: ir.Jmp, Target: -1})
	toEnd := branchPatch{blk: lo.cur, idx: len(lo.cur.Instrs) - 1}
	elseBlk := lo.f.NewBlock()
	lo.patch(toElse, elseBlk.ID)
	lo.cur = elseBlk
	if err := lo.stmts(st.Else); err != nil {
		return err
	}
	end := lo.f.NewBlock()
	lo.patch(toEnd, end.ID)
	lo.cur = end
	return nil
}

func (lo *lowerer) whileStmt(st *WhileStmt) error {
	header := lo.f.NewBlock() // fallthrough from current block
	lo.cur = header
	cond, err := lo.condExpr(st.Cond)
	if err != nil {
		return err
	}
	toExit := lo.emitBranchIfFalse(cond)
	lo.cur = lo.f.NewBlock() // body
	if err := lo.stmts(st.Body); err != nil {
		return err
	}
	lo.cur.Emit(ir.Instr{Op: ir.Jmp, Target: header.ID})
	exit := lo.f.NewBlock()
	lo.patch(toExit, exit.ID)
	lo.cur = exit
	return nil
}

func (lo *lowerer) forStmt(st *ForStmt) error {
	// The loop variable is implicitly an int scalar; declare on first use.
	sym, ok := lo.syms[st.Var]
	if !ok {
		sym = symbol{val: lo.f.NewValue(st.Var, ir.Int, ir.Var)}
		lo.syms[st.Var] = sym
	}
	if sym.val == nil {
		return fmt.Errorf("line %d: loop variable %q is an array", st.Line, st.Var)
	}
	if sym.val.Type != ir.Int {
		return fmt.Errorf("line %d: loop variable %q must be int", st.Line, st.Var)
	}
	lov, err := lo.intExpr(st.Lo, "loop bound")
	if err != nil {
		return err
	}
	lo.cur.Emit(ir.Instr{Op: ir.Mov, Dst: sym.val, A: lov})
	hiv, err := lo.intExpr(st.Hi, "loop bound")
	if err != nil {
		return err
	}
	// Evaluate the bound once (Pascal semantics).
	bound := lo.f.NewTemp(ir.Int)
	lo.cur.Emit(ir.Instr{Op: ir.Mov, Dst: bound, A: hiv})

	header := lo.f.NewBlock()
	lo.cur = header
	done := lo.f.NewTemp(ir.Int)
	cmp := ir.Gt
	if st.Downward {
		cmp = ir.Lt
	}
	lo.cur.Emit(ir.Instr{Op: cmp, Dst: done, A: sym.val, B: bound})
	lo.cur.Emit(ir.Instr{Op: ir.Br, A: done, Target: -1})
	toExit := branchPatch{blk: lo.cur, idx: len(lo.cur.Instrs) - 1}

	lo.cur = lo.f.NewBlock() // body
	if err := lo.stmts(st.Body); err != nil {
		return err
	}
	step := ir.Add
	if st.Downward {
		step = ir.Sub
	}
	lo.cur.Emit(ir.Instr{Op: step, Dst: sym.val, A: sym.val, B: lo.f.IntConst(1)})
	lo.cur.Emit(ir.Instr{Op: ir.Jmp, Target: header.ID})
	exit := lo.f.NewBlock()
	lo.patch(toExit, exit.ID)
	lo.cur = exit
	return nil
}

// condExpr evaluates a condition to an int (0/1) value.
func (lo *lowerer) condExpr(e Expr) (*ir.Value, error) {
	v, err := lo.expr(e)
	if err != nil {
		return nil, err
	}
	if v.Type != ir.Int {
		return nil, fmt.Errorf("condition must be int (comparisons and logic yield int), got %v", v.Type)
	}
	return v, nil
}

// intExpr evaluates e and requires an int result.
func (lo *lowerer) intExpr(e Expr, what string) (*ir.Value, error) {
	v, err := lo.expr(e)
	if err != nil {
		return nil, err
	}
	if v.Type != ir.Int {
		return nil, fmt.Errorf("%s must be int, got %v", what, v.Type)
	}
	return v, nil
}

// coerce converts v to type t, emitting a Mov when widening int to float.
// Narrowing float to int is a type error.
func (lo *lowerer) coerce(v *ir.Value, t ir.Type, line int) (*ir.Value, error) {
	if v.Type == t {
		return v, nil
	}
	if v.Type == ir.Int && t == ir.Float {
		tmp := lo.f.NewTemp(ir.Float)
		lo.cur.Emit(ir.Instr{Op: ir.Mov, Dst: tmp, A: v})
		return tmp, nil
	}
	return nil, fmt.Errorf("line %d: cannot assign float to int without explicit truncation", line)
}

var binOps = map[TokKind]ir.Op{
	Plus: ir.Add, Minus: ir.Sub, Star: ir.Mul, Slash: ir.Div, Percent: ir.Mod,
	EqOp: ir.Eq, NeOp: ir.Ne, LtOp: ir.Lt, LeOp: ir.Le, GtOp: ir.Gt, GeOp: ir.Ge,
}

func (lo *lowerer) expr(e Expr) (*ir.Value, error) {
	switch ex := e.(type) {
	case *IntExpr:
		return lo.f.IntConst(ex.Val), nil
	case *FloatExpr:
		return lo.f.FloatConst(ex.Val), nil
	case *IdentExpr:
		sym, ok := lo.syms[ex.Name]
		if !ok {
			return nil, fmt.Errorf("line %d: %q undeclared", ex.Line, ex.Name)
		}
		if sym.val == nil {
			return nil, fmt.Errorf("line %d: array %q used without index", ex.Line, ex.Name)
		}
		return sym.val, nil
	case *IndexExpr:
		sym, ok := lo.syms[ex.Name]
		if !ok {
			return nil, fmt.Errorf("line %d: %q undeclared", ex.Line, ex.Name)
		}
		if sym.arr == nil {
			return nil, fmt.Errorf("line %d: %q is not an array", ex.Line, ex.Name)
		}
		idx, err := lo.intExpr(ex.Index, "array index")
		if err != nil {
			return nil, err
		}
		dst := lo.f.NewTemp(sym.arr.Type)
		lo.cur.Emit(ir.Instr{Op: ir.Load, Dst: dst, Arr: sym.arr, Index: idx})
		return dst, nil
	case *UnaryExpr:
		x, err := lo.expr(ex.X)
		if err != nil {
			return nil, err
		}
		if ex.Op == KwNot {
			if x.Type != ir.Int {
				return nil, fmt.Errorf("line %d: 'not' needs an int operand", ex.Line)
			}
			dst := lo.f.NewTemp(ir.Int)
			lo.cur.Emit(ir.Instr{Op: ir.Not, Dst: dst, A: x})
			return dst, nil
		}
		dst := lo.f.NewTemp(x.Type)
		lo.cur.Emit(ir.Instr{Op: ir.Neg, Dst: dst, A: x})
		return dst, nil
	case *BinaryExpr:
		x, err := lo.expr(ex.X)
		if err != nil {
			return nil, err
		}
		y, err := lo.expr(ex.Y)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case KwAnd, KwOr:
			if x.Type != ir.Int || y.Type != ir.Int {
				return nil, fmt.Errorf("line %d: logic operators need int operands", ex.Line)
			}
			op := ir.Mul // and: both nonzero — normalize below
			dst := lo.f.NewTemp(ir.Int)
			if ex.Op == KwAnd {
				// x and y  ->  (x != 0) * (y != 0) != 0: since comparisons
				// already yield 0/1 and MPL logic is used on 0/1 values,
				// multiplication implements 'and' and addition-then-compare
				// implements 'or'.
				lo.cur.Emit(ir.Instr{Op: op, Dst: dst, A: x, B: y})
				norm := lo.f.NewTemp(ir.Int)
				lo.cur.Emit(ir.Instr{Op: ir.Ne, Dst: norm, A: dst, B: lo.f.IntConst(0)})
				return norm, nil
			}
			lo.cur.Emit(ir.Instr{Op: ir.Add, Dst: dst, A: x, B: y})
			norm := lo.f.NewTemp(ir.Int)
			lo.cur.Emit(ir.Instr{Op: ir.Ne, Dst: norm, A: dst, B: lo.f.IntConst(0)})
			return norm, nil
		case Percent:
			if x.Type != ir.Int || y.Type != ir.Int {
				return nil, fmt.Errorf("line %d: '%%' needs int operands", ex.Line)
			}
		}
		op, ok := binOps[ex.Op]
		if !ok {
			return nil, fmt.Errorf("internal error: unknown binary operator %v", ex.Op)
		}
		resType := ir.Int
		if x.Type == ir.Float || y.Type == ir.Float {
			resType = ir.Float
		}
		if op.IsCompare() {
			dst := lo.f.NewTemp(ir.Int)
			lo.cur.Emit(ir.Instr{Op: op, Dst: dst, A: x, B: y})
			return dst, nil
		}
		dst := lo.f.NewTemp(resType)
		lo.cur.Emit(ir.Instr{Op: op, Dst: dst, A: x, B: y})
		return dst, nil
	default:
		return nil, fmt.Errorf("internal error: unknown expression %T", e)
	}
}
