package lang

// Loop unrolling, an AST-level transformation applied before lowering.
//
// The paper's RLIW compiler exposes instruction-level parallelism across
// loop iterations through region scheduling; MPL's equivalent is unrolling:
// a counted loop with constant bounds is rewritten so that several copies
// of the body execute per iteration, each preceded by an explicit
// assignment of the loop variable. The definition-renaming pass
// (internal/dfa) then splits the per-copy loop-variable assignments and
// temporaries into independent webs, letting the scheduler pack iterations
// side by side in the same long instruction words.

// Unroll rewrites every counted for-loop of prog whose bounds are integer
// literals. Loops with at most maxFull iterations are fully unrolled;
// longer loops are unrolled by the given factor, with a remainder loop when
// the trip count does not divide evenly. factor < 2 leaves the program
// unchanged. Nested loops are processed inside-out, so a short inner loop
// fully unrolls inside an unrolled outer body.
func Unroll(prog *Program, factor, maxFull int) {
	if factor < 2 {
		return
	}
	u := &unroller{factor: factor, maxFull: maxFull}
	prog.Body = u.stmts(prog.Body)
	prog.ImplicitInts = append(prog.ImplicitInts, u.implicit...)
}

type unroller struct {
	factor, maxFull int
	implicit        []string // loop variables now assigned outside a for
}

func (u *unroller) stmts(ss []Stmt) []Stmt {
	var out []Stmt
	for _, s := range ss {
		out = append(out, u.stmt(s)...)
	}
	return out
}

func (u *unroller) stmt(s Stmt) []Stmt {
	switch st := s.(type) {
	case *IfStmt:
		st.Then = u.stmts(st.Then)
		st.Else = u.stmts(st.Else)
		return []Stmt{st}
	case *WhileStmt:
		st.Body = u.stmts(st.Body)
		return []Stmt{st}
	case *ForStmt:
		st.Body = u.stmts(st.Body)
		return u.unrollFor(st)
	default:
		return []Stmt{s}
	}
}

// unrollFor rewrites one counted loop. Only literal bounds are handled —
// variable bounds would need runtime trip-count dispatch, which buys
// nothing for the fixed-size benchmark programs.
func (u *unroller) unrollFor(st *ForStmt) []Stmt {
	factor, maxFull := u.factor, u.maxFull
	lo, okLo := st.Lo.(*IntExpr)
	hi, okHi := st.Hi.(*IntExpr)
	if !okLo || !okHi {
		return []Stmt{st}
	}
	// A body that assigns its own loop variable controls the iteration
	// sequence itself; unrolling it with a static sequence is unsound.
	if assignsTo(st.Body, st.Var) {
		return []Stmt{st}
	}
	u.implicit = append(u.implicit, st.Var)
	var trip int64
	if st.Downward {
		trip = lo.Val - hi.Val + 1
	} else {
		trip = hi.Val - lo.Val + 1
	}
	if trip <= 0 {
		return []Stmt{st} // degenerate; keep the (empty) loop semantics
	}
	step := int64(1)
	if st.Downward {
		step = -1
	}
	iter := func(n int64) int64 { return lo.Val + step*n }
	// The original loop exits with the variable one step past the bound;
	// every rewrite ends with this assignment to preserve that.
	finalAssign := &AssignStmt{
		Name: st.Var, Value: &IntExpr{Val: hi.Val + step, Line: st.Line}, Line: st.Line,
	}

	// Full unroll of short loops.
	if trip <= int64(maxFull) {
		var out []Stmt
		for n := int64(0); n < trip; n++ {
			out = append(out, bodyCopy(st, iter(n))...)
		}
		return append(out, finalAssign)
	}

	// Partial unroll: whole chunks of `factor` iterations, then remainder.
	chunks := trip / int64(factor)
	var out []Stmt
	if chunks > 0 {
		// for u := 0 to chunks-1 do  i := lo + step*(u*factor + c); body ...
		uVar := "_u_" + st.Var
		var body []Stmt
		for c := 0; c < factor; c++ {
			// i := lo + step*(u*factor + c)
			idx := &BinaryExpr{
				Op: Plus,
				X:  &IntExpr{Val: lo.Val + step*int64(c), Line: st.Line},
				Y: &BinaryExpr{
					Op:   Star,
					X:    &IntExpr{Val: step * int64(factor), Line: st.Line},
					Y:    &IdentExpr{Name: uVar, Line: st.Line},
					Line: st.Line,
				},
				Line: st.Line,
			}
			body = append(body, &AssignStmt{Name: st.Var, Value: idx, Line: st.Line})
			body = append(body, cloneStmts(st.Body)...)
		}
		out = append(out, &ForStmt{
			Var:  uVar,
			Lo:   &IntExpr{Val: 0, Line: st.Line},
			Hi:   &IntExpr{Val: chunks - 1, Line: st.Line},
			Body: body,
			Line: st.Line,
		})
	}
	for n := chunks * int64(factor); n < trip; n++ {
		out = append(out, bodyCopy(st, iter(n))...)
	}
	return append(out, finalAssign)
}

// bodyCopy emits "i := <value>" followed by a deep copy of the body.
func bodyCopy(st *ForStmt, val int64) []Stmt {
	out := []Stmt{&AssignStmt{Name: st.Var, Value: &IntExpr{Val: val, Line: st.Line}, Line: st.Line}}
	return append(out, cloneStmts(st.Body)...)
}

// assignsTo reports whether any statement in ss (recursively) assigns the
// named scalar, including by using it as a nested loop variable.
func assignsTo(ss []Stmt, name string) bool {
	for _, s := range ss {
		switch st := s.(type) {
		case *AssignStmt:
			if st.Name == name && st.Index == nil {
				return true
			}
		case *IfStmt:
			if assignsTo(st.Then, name) || assignsTo(st.Else, name) {
				return true
			}
		case *WhileStmt:
			if assignsTo(st.Body, name) {
				return true
			}
		case *ForStmt:
			if st.Var == name || assignsTo(st.Body, name) {
				return true
			}
		}
	}
	return false
}

// cloneStmts deep-copies statements so each unrolled body copy can be
// rewritten independently by later passes.
func cloneStmts(ss []Stmt) []Stmt {
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = cloneStmt(s)
	}
	return out
}

func cloneStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *AssignStmt:
		return &AssignStmt{Name: st.Name, Index: cloneExpr(st.Index), Value: cloneExpr(st.Value), Line: st.Line}
	case *IfStmt:
		return &IfStmt{Cond: cloneExpr(st.Cond), Then: cloneStmts(st.Then), Else: cloneStmts(st.Else), Line: st.Line}
	case *WhileStmt:
		return &WhileStmt{Cond: cloneExpr(st.Cond), Body: cloneStmts(st.Body), Line: st.Line}
	case *ForStmt:
		return &ForStmt{Var: st.Var, Lo: cloneExpr(st.Lo), Hi: cloneExpr(st.Hi),
			Downward: st.Downward, Body: cloneStmts(st.Body), Line: st.Line}
	default:
		return s
	}
}

func cloneExpr(e Expr) Expr {
	switch ex := e.(type) {
	case nil:
		return nil
	case *IntExpr:
		return &IntExpr{Val: ex.Val, Line: ex.Line}
	case *FloatExpr:
		return &FloatExpr{Val: ex.Val, Line: ex.Line}
	case *IdentExpr:
		return &IdentExpr{Name: ex.Name, Line: ex.Line}
	case *IndexExpr:
		return &IndexExpr{Name: ex.Name, Index: cloneExpr(ex.Index), Line: ex.Line}
	case *UnaryExpr:
		return &UnaryExpr{Op: ex.Op, X: cloneExpr(ex.X), Line: ex.Line}
	case *BinaryExpr:
		return &BinaryExpr{Op: ex.Op, X: cloneExpr(ex.X), Y: cloneExpr(ex.Y), Line: ex.Line}
	default:
		return e
	}
}
