package lang

import (
	"math/rand"
	"strings"
	"testing"

	"parmem/internal/ir"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("program p; var x: int; begin x := 1 + 2; end")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{KwProgram, Ident, Semi, KwVar, Ident, Colon, KwInt,
		Semi, KwBegin, Ident, Assign, IntLit, Plus, IntLit, Semi, KwEnd, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("42 3.5 1e3 2.5e-2 7")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != IntLit || toks[0].Int != 42 {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != FloatLit || toks[1].Flt != 3.5 {
		t.Fatalf("tok1 = %+v", toks[1])
	}
	if toks[2].Kind != FloatLit || toks[2].Flt != 1000 {
		t.Fatalf("tok2 = %+v", toks[2])
	}
	if toks[3].Kind != FloatLit || toks[3].Flt != 0.025 {
		t.Fatalf("tok3 = %+v", toks[3])
	}
	if toks[4].Kind != IntLit || toks[4].Int != 7 {
		t.Fatalf("tok4 = %+v", toks[4])
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("x -- the whole rest vanishes := ; while\ny")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Fatalf("toks = %+v", toks)
	}
}

func TestLexTwoCharOps(t *testing.T) {
	toks, err := Lex(":= <> <= >= < > =")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{Assign, NeOp, LeOp, GeOp, LtOp, GtOp, EqOp, EOF}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Fatalf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Fatalf("b at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestLexBadChar(t *testing.T) {
	if _, err := Lex("x @ y"); err == nil || !strings.Contains(err.Error(), "@") {
		t.Fatalf("want error naming '@', got %v", err)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Lex("PROGRAM While BEGIN")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != KwProgram || toks[1].Kind != KwWhile || toks[2].Kind != KwBegin {
		t.Fatalf("toks = %+v", toks)
	}
}

const miniProg = `
program mini;
var x, y: int;
var a: array[8] of float;
begin
  x := 1;
  y := x + 2 * 3;
  if x < y then
    a[x] := 1.5;
  else
    a[0] := 0.0;
  end
  while x < 10 do
    x := x + 1;
  end
  for i := 0 to 7 do
    a[i] := a[i] + 1.0;
  end
end
`

func TestParseMini(t *testing.T) {
	prog, err := Parse(miniProg)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "mini" {
		t.Fatalf("name = %q", prog.Name)
	}
	if len(prog.Decls) != 2 {
		t.Fatalf("decls = %d", len(prog.Decls))
	}
	if prog.Decls[0].Names[0] != "x" || prog.Decls[0].Names[1] != "y" || prog.Decls[0].Type != ir.Int {
		t.Fatalf("decl0 = %+v", prog.Decls[0])
	}
	if prog.Decls[1].ArraySize != 8 || prog.Decls[1].Type != ir.Float {
		t.Fatalf("decl1 = %+v", prog.Decls[1])
	}
	if len(prog.Body) != 5 {
		t.Fatalf("body statements = %d, want 5", len(prog.Body))
	}
	if _, ok := prog.Body[2].(*IfStmt); !ok {
		t.Fatalf("stmt 2 is %T, want IfStmt", prog.Body[2])
	}
	if _, ok := prog.Body[3].(*WhileStmt); !ok {
		t.Fatalf("stmt 3 is %T, want WhileStmt", prog.Body[3])
	}
	f, ok := prog.Body[4].(*ForStmt)
	if !ok {
		t.Fatalf("stmt 4 is %T, want ForStmt", prog.Body[4])
	}
	if f.Var != "i" || f.Downward {
		t.Fatalf("for = %+v", f)
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("program p; var x: int; begin x := 1 + 2 * 3; end")
	if err != nil {
		t.Fatal(err)
	}
	as := prog.Body[0].(*AssignStmt)
	top, ok := as.Value.(*BinaryExpr)
	if !ok || top.Op != Plus {
		t.Fatalf("top = %+v, want +", as.Value)
	}
	if inner, ok := top.Y.(*BinaryExpr); !ok || inner.Op != Star {
		t.Fatalf("right = %+v, want *", top.Y)
	}
}

func TestParseLogicPrecedence(t *testing.T) {
	prog, err := Parse("program p; var x: int; begin x := 1 < 2 and 3 < 4 or 0; end")
	if err != nil {
		t.Fatal(err)
	}
	top := prog.Body[0].(*AssignStmt).Value.(*BinaryExpr)
	if top.Op != KwOr {
		t.Fatalf("top op = %v, want or", top.Op)
	}
	if l, ok := top.X.(*BinaryExpr); !ok || l.Op != KwAnd {
		t.Fatalf("left = %+v, want and", top.X)
	}
}

func TestParseDownto(t *testing.T) {
	prog, err := Parse("program p; begin for i := 9 downto 0 do x := i; end end")
	if err == nil {
		f := prog.Body[0].(*ForStmt)
		if !f.Downward {
			t.Fatal("downto not recorded")
		}
		return
	}
	t.Fatal(err)
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing program", "var x: int; begin end"},
		{"missing semi after name", "program p var x: int; begin end"},
		{"bad decl type", "program p; var x: banana; begin end"},
		{"zero array", "program p; var a: array[0] of int; begin end"},
		{"unclosed paren", "program p; var x: int; begin x := (1 + 2; end"},
		{"missing then", "program p; var x: int; begin if x end end"},
		{"missing do", "program p; var x: int; begin while x x := 1; end end"},
		{"bad for", "program p; begin for i := 1 bananas 10 do end end"},
		{"trailing input", "program p; begin end extra"},
		{"statement keyword", "program p; begin of; end"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: want parse error", c.name)
		}
	}
}

func TestCompileMini(t *testing.T) {
	f, err := Compile(miniProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Name != "mini" {
		t.Fatalf("func name %q", f.Name)
	}
	if len(f.Blocks) < 8 {
		t.Fatalf("expected at least 8 blocks (if/while/for lowering), got %d", len(f.Blocks))
	}
	// Ends in Ret.
	last := f.Blocks[len(f.Blocks)-1]
	if !last.Terminated() {
		t.Fatal("final block unterminated")
	}
}

func TestCompileSemanticErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undeclared", "program p; begin x := 1; end"},
		{"redeclared", "program p; var x: int; var x: int; begin end"},
		{"array without index", "program p; var a: array[4] of int; var x: int; begin x := a; end"},
		{"scalar indexed", "program p; var x: int; begin x[0] := 1; end"},
		{"index not int", "program p; var a: array[4] of int; begin a[1.5] := 1; end"},
		{"float to int", "program p; var x: int; begin x := 1.5; end"},
		{"mod float", "program p; var x: int; begin x := 1.0 % 2; end"},
		{"not on float", "program p; var x: int; begin x := not 1.5; end"},
		{"and on float", "program p; var x: int; begin x := 1.0 and 1; end"},
		{"float condition", "program p; var x: float; begin if x then x := 1.0; end end"},
		{"float loop var", "program p; var i: float; begin for i := 0 to 3 do end end"},
		{"array loop var", "program p; var i: array[2] of int; begin for i := 0 to 3 do end end"},
		{"float loop bound", "program p; begin for i := 0 to 3.5 do end end"},
		{"undeclared array", "program p; var x: int; begin y[0] := 1; end"},
		{"store to non-array", "program p; var x: int; var y: int; begin y[x] := 1; end"},
	}
	for _, c := range cases {
		if _, err := Compile(c.src); err == nil {
			t.Errorf("%s: want compile error", c.name)
		}
	}
}

func TestCompileIntToFloatPromotion(t *testing.T) {
	f, err := Compile("program p; var x: float; var n: int; begin x := n + 1; end")
	if err != nil {
		t.Fatal(err)
	}
	// The add is int (both operands int) and a widening Mov feeds x.
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.Mov && in.Dst.Name == "x" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no assignment to x emitted")
	}
}

func TestCompileLoopShape(t *testing.T) {
	f, err := Compile("program p; var s: int; begin for i := 1 to 3 do s := s + i; end end")
	if err != nil {
		t.Fatal(err)
	}
	// Expect a backedge: some block ends in Jmp to a lower-numbered block.
	hasBackedge := false
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			continue
		}
		last := b.Instrs[len(b.Instrs)-1]
		if last.Op == ir.Jmp && last.Target < b.ID {
			hasBackedge = true
		}
	}
	if !hasBackedge {
		t.Fatalf("no loop backedge in:\n%s", f)
	}
}

func TestCompileImplicitLoopVarReuse(t *testing.T) {
	// The same implicit loop variable used twice must refer to one value.
	f, err := Compile("program p; var s: int; begin for i := 0 to 1 do s := s + i; end for i := 0 to 1 do s := s - i; end end")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, v := range f.Values {
		if v.Name == "i" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("loop variable i declared %d times, want 1", count)
	}
}

// TestParserNeverPanics feeds mangled inputs to the full front end: every
// outcome must be a value or an error, never a panic.
func TestParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	inputs := []string{
		"", ";;;", "program", "program ;", "begin end",
		"program p; begin end end end", "program p; var : int; begin end",
		"\x00\x01\x02", "program p; begin x := ((((1; end",
	}
	// Mutations of a valid program.
	base := miniProg
	for i := 0; i < 200; i++ {
		b := []byte(base)
		for j := 0; j < 1+r.Intn(4); j++ {
			pos := r.Intn(len(b))
			switch r.Intn(3) {
			case 0:
				b[pos] = byte(r.Intn(128))
			case 1:
				b = append(b[:pos], b[pos+1:]...)
			default:
				b = append(b[:pos], append([]byte{byte(r.Intn(128))}, b[pos:]...)...)
			}
		}
		inputs = append(inputs, string(b))
	}
	for _, src := range inputs {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on input %q: %v", src, p)
				}
			}()
			_, _ = Compile(src)
		}()
	}
}
