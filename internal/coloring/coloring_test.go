package coloring

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"parmem/internal/conflict"
	"parmem/internal/graph"
)

func completeGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(i)
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	return g
}

func cycleGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1)
	}
	return g
}

func TestGuptaSoffaTriangle(t *testing.T) {
	g := completeGraph(3)
	res := GuptaSoffa(g, Options{K: 3})
	if len(res.Unassigned) != 0 {
		t.Fatalf("triangle with 3 modules: unassigned = %v", res.Unassigned)
	}
	if err := CheckProper(g, res.Assign); err != nil {
		t.Fatal(err)
	}
}

func TestGuptaSoffaK4With3Modules(t *testing.T) {
	g := completeGraph(4)
	res := GuptaSoffa(g, Options{K: 3})
	if len(res.Unassigned) != 1 {
		t.Fatalf("K4/3 modules: unassigned = %v, want exactly 1", res.Unassigned)
	}
	if err := CheckProper(g, res.Assign); err != nil {
		t.Fatal(err)
	}
}

func TestGuptaSoffaK5With3Modules(t *testing.T) {
	g := completeGraph(5)
	res := GuptaSoffa(g, Options{K: 3})
	if len(res.Unassigned) != 2 {
		t.Fatalf("K5/3 modules: unassigned = %v, want exactly 2", res.Unassigned)
	}
}

// TestFigure1 reproduces paper Fig. 1: instructions {V1 V2 V4}, {V2 V3 V5},
// {V2 V3 V4} over three modules admit a conflict-free assignment without any
// duplication.
func TestFigure1(t *testing.T) {
	instrs := []conflict.Instruction{{1, 2, 4}, {2, 3, 5}, {2, 3, 4}}
	g := conflict.Build(instrs)
	res := GuptaSoffa(g, Options{K: 3})
	if len(res.Unassigned) != 0 {
		t.Fatalf("Fig. 1 needs no duplication, but unassigned = %v", res.Unassigned)
	}
	if err := CheckProper(g, res.Assign); err != nil {
		t.Fatal(err)
	}
	// Every instruction must see its operands in pairwise-distinct modules.
	for _, in := range instrs {
		seen := map[int]int{}
		for _, v := range in {
			m := res.Assign[v]
			if prev, clash := seen[m]; clash {
				t.Fatalf("instruction %v: values %d and %d share module %d", in, prev, v, m)
			}
			seen[m] = v
		}
	}
}

func TestGuptaSoffaLowDegreeAlwaysColored(t *testing.T) {
	// Star: center degree 5, leaves degree 1. With k=2 everything colors.
	g := graph.New()
	for leaf := 1; leaf <= 5; leaf++ {
		g.AddEdge(0, leaf, 1)
	}
	res := GuptaSoffa(g, Options{K: 2})
	if len(res.Unassigned) != 0 {
		t.Fatalf("star is 2-colorable: unassigned = %v", res.Unassigned)
	}
	if err := CheckProper(g, res.Assign); err != nil {
		t.Fatal(err)
	}
}

func TestGuptaSoffaPrecoloredRespected(t *testing.T) {
	g := completeGraph(3)
	pre := map[int]int{0: 2, 1: 0}
	res := GuptaSoffa(g, Options{K: 3, Precolored: pre})
	if res.Assign[0] != 2 || res.Assign[1] != 0 {
		t.Fatalf("precolored moved: %v", res.Assign)
	}
	if res.Assign[2] != 1 {
		t.Fatalf("node 2 should take the only free module 1, got %d", res.Assign[2])
	}
}

func TestGuptaSoffaPrecoloredAbsentNodeIgnored(t *testing.T) {
	g := completeGraph(2)
	res := GuptaSoffa(g, Options{K: 2, Precolored: map[int]int{99: 1}})
	if _, ok := res.Assign[99]; ok {
		t.Fatal("precolored node absent from graph must be ignored")
	}
	if len(res.Assign) != 2 {
		t.Fatalf("assign = %v", res.Assign)
	}
}

func TestGuptaSoffaPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("K=0", func() { GuptaSoffa(graph.New(), Options{K: 0}) })
	g := completeGraph(2)
	mustPanic("precolored out of range", func() {
		GuptaSoffa(g, Options{K: 2, Precolored: map[int]int{0: 5}})
	})
}

func TestGuptaSoffaEmptyGraph(t *testing.T) {
	res := GuptaSoffa(graph.New(), Options{K: 4})
	if len(res.Assign) != 0 || len(res.Unassigned) != 0 {
		t.Fatalf("empty graph: %+v", res)
	}
}

func TestGuptaSoffaDeterministic(t *testing.T) {
	g := cycleGraph(9)
	g.AddEdge(0, 4, 3)
	g.AddEdge(2, 7, 2)
	a := GuptaSoffa(g, Options{K: 3})
	b := GuptaSoffa(g, Options{K: 3})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GuptaSoffa must be deterministic")
	}
}

func TestPickPolicyLeastLoaded(t *testing.T) {
	// Eight isolated nodes, 4 modules: LeastLoaded spreads 2 per module,
	// LowestIndex piles everything on module 0.
	g := graph.New()
	for i := 0; i < 8; i++ {
		g.AddNode(i)
	}
	spread := GuptaSoffa(g, Options{K: 4, Pick: LeastLoaded})
	load := map[int]int{}
	for _, m := range spread.Assign {
		load[m]++
	}
	for m := 0; m < 4; m++ {
		if load[m] != 2 {
			t.Fatalf("LeastLoaded load = %v, want 2 per module", load)
		}
	}
	piled := GuptaSoffa(g, Options{K: 4, Pick: LowestIndex})
	for v, m := range piled.Assign {
		if m != 0 {
			t.Fatalf("LowestIndex put isolated node %d on module %d", v, m)
		}
	}
}

func TestCheckProper(t *testing.T) {
	g := completeGraph(2)
	if err := CheckProper(g, map[int]int{0: 0, 1: 0}); err == nil {
		t.Fatal("want error for improper coloring")
	}
	if err := CheckProper(g, map[int]int{0: 0, 1: 1}); err != nil {
		t.Fatalf("proper coloring rejected: %v", err)
	}
	// Partial assignments are fine.
	if err := CheckProper(g, map[int]int{0: 0}); err != nil {
		t.Fatalf("partial coloring rejected: %v", err)
	}
}

func TestDSATUR(t *testing.T) {
	if res := DSATUR(completeGraph(4), 3); len(res.Unassigned) != 1 {
		t.Fatalf("DSATUR K4/3: unassigned = %v", res.Unassigned)
	}
	// Even cycle is 2-colorable and DSATUR finds it.
	g := cycleGraph(8)
	res := DSATUR(g, 2)
	if len(res.Unassigned) != 0 {
		t.Fatalf("DSATUR C8/2: unassigned = %v", res.Unassigned)
	}
	if err := CheckProper(g, res.Assign); err != nil {
		t.Fatal(err)
	}
}

func TestFirstFit(t *testing.T) {
	g := cycleGraph(5)
	res := FirstFit(g, 3)
	if len(res.Unassigned) != 0 {
		t.Fatalf("FirstFit C5/3: unassigned = %v", res.Unassigned)
	}
	if err := CheckProper(g, res.Assign); err != nil {
		t.Fatal(err)
	}
}

func TestExactMinRemoved(t *testing.T) {
	if res := ExactMinRemoved(completeGraph(5), 3); len(res.Unassigned) != 2 {
		t.Fatalf("exact K5/3 removed = %v, want 2", res.Unassigned)
	}
	// Odd cycle with 2 colors: removing any single vertex suffices.
	res := ExactMinRemoved(cycleGraph(5), 2)
	if len(res.Unassigned) != 1 {
		t.Fatalf("exact C5/2 removed = %v, want 1", res.Unassigned)
	}
	g := cycleGraph(5)
	if err := CheckProper(g, res.Assign); err != nil {
		t.Fatal(err)
	}
	// 3-colorable graph: nothing removed.
	if res := ExactMinRemoved(cycleGraph(7), 3); len(res.Unassigned) != 0 {
		t.Fatalf("exact C7/3 removed = %v, want 0", res.Unassigned)
	}
}

func randomGraph(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(i)
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j, 1+r.Intn(4))
			}
		}
	}
	return g
}

// Property: the heuristic result is always a proper partial coloring, the
// colored and removed sets partition V, and nodes of degree < k are never
// removed.
func TestGuptaSoffaInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		g := randomGraph(r, 3+r.Intn(15), 0.2+r.Float64()*0.5)
		res := GuptaSoffa(g, Options{K: k})
		if err := CheckProper(g, res.Assign); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(res.Assign)+len(res.Unassigned) != g.NumNodes() {
			t.Logf("seed %d: partition broken", seed)
			return false
		}
		for _, v := range res.Unassigned {
			if _, ok := res.Assign[v]; ok {
				t.Logf("seed %d: node %d both assigned and unassigned", seed, v)
				return false
			}
			if g.Degree(v) < k {
				t.Logf("seed %d: low-degree node %d removed", seed, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the heuristic never beats the exact optimum (sanity check of
// both implementations on small graphs).
func TestHeuristicVsExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(2)
		g := randomGraph(r, 3+r.Intn(9), 0.3+r.Float64()*0.4)
		h := GuptaSoffa(g, Options{K: k})
		e := ExactMinRemoved(g, k)
		if len(h.Unassigned) < len(e.Unassigned) {
			t.Logf("seed %d: heuristic %d < exact %d", seed, len(h.Unassigned), len(e.Unassigned))
			return false
		}
		return CheckProper(g, e.Assign) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestHeuristicSuboptimalExists documents that the heuristic is not optimal:
// there is some instance where it removes more nodes than the exact
// algorithm (the paper proves a worst-case ratio of (n-k)/2).
func TestHeuristicSuboptimalExists(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	for i := 0; i < 400; i++ {
		k := 2 + r.Intn(2)
		g := randomGraph(r, 6+r.Intn(8), 0.4+r.Float64()*0.3)
		h := GuptaSoffa(g, Options{K: k})
		e := ExactMinRemoved(g, k)
		if len(h.Unassigned) > len(e.Unassigned) {
			return // found a witness: heuristic is suboptimal, as the paper states
		}
	}
	t.Fatal("no instance found where the heuristic is suboptimal; either the heuristic became exact (unlikely) or the search is broken")
}

// Property: precolored nodes survive in the output with their exact module.
func TestPrecoloredSurvivesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 3 + r.Intn(3)
		g := randomGraph(r, 5+r.Intn(10), 0.3)
		nodes := g.Nodes()
		pre := map[int]int{nodes[0]: r.Intn(k)}
		res := GuptaSoffa(g, Options{K: k, Precolored: pre})
		return res.Assign[nodes[0]] == pre[nodes[0]]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
