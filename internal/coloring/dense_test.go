package coloring

import (
	"math/rand"
	"reflect"
	"testing"

	"parmem/internal/graph"
)

func randomConflictGraph(r *rand.Rand, n int, p float64, maxW int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(i*3 + 1) // non-contiguous ids
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdgeWeight(i*3+1, j*3+1, 1+r.Intn(maxW))
			}
		}
	}
	return g
}

// TestGuptaSoffaDenseMatchesMap proves the dense urgency heuristic
// bit-identical to the map reference across random graphs, module counts,
// pick policies and precolorings: same assignment map and same removal
// order.
func TestGuptaSoffaDenseMatchesMap(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	for iter := 0; iter < 200; iter++ {
		n := r.Intn(28)
		g := randomConflictGraph(r, n, r.Float64()*0.7, 4)
		k := 1 + r.Intn(6)
		pre := map[int]int{}
		if n > 0 && r.Intn(2) == 0 {
			for c := r.Intn(4); c > 0; c-- {
				pre[r.Intn(n)*3+1] = r.Intn(k)
			}
			// Precolored nodes must not make adjacent nodes share a module;
			// GuptaSoffa does not require that, so random precoloring is fine.
		}
		pick := LowestIndex
		if r.Intn(2) == 0 {
			pick = LeastLoaded
		}
		opt := Options{K: k, Precolored: pre, Pick: pick}
		optRef := opt
		optRef.Reference = true
		want := GuptaSoffa(g, optRef)
		got := GuptaSoffa(g, opt)
		if !reflect.DeepEqual(got.Assign, want.Assign) {
			t.Fatalf("iter %d (k=%d pick=%d pre=%v): assign %v, want %v\n%s",
				iter, k, pick, pre, got.Assign, want.Assign, g)
		}
		if len(got.Unassigned) != len(want.Unassigned) ||
			(len(want.Unassigned) > 0 && !reflect.DeepEqual(got.Unassigned, want.Unassigned)) {
			t.Fatalf("iter %d (k=%d pick=%d pre=%v): unassigned %v, want %v\n%s",
				iter, k, pick, pre, got.Unassigned, want.Unassigned, g)
		}
		// Random precoloring may clash by construction (GuptaSoffa honors it
		// verbatim); only unconstrained runs must be proper.
		if len(pre) == 0 {
			if err := CheckProper(g, got.Assign); err != nil {
				t.Fatalf("iter %d: improper coloring: %v", iter, err)
			}
		}
	}
}

// benchColoringGraph is a large synthetic conflict graph whose scale makes
// the per-iteration allocation differences between the two backends visible.
func benchColoringGraph() *graph.Graph {
	r := rand.New(rand.NewSource(21))
	return randomConflictGraph(r, 400, 0.06, 3)
}

func BenchmarkColoringDense(b *testing.B) {
	g := benchColoringGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := GuptaSoffa(g, Options{K: 8})
		if len(res.Assign) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkColoringMap(b *testing.B) {
	g := benchColoringGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := GuptaSoffa(g, Options{K: 8, Reference: true})
		if len(res.Assign) == 0 {
			b.Fatal("empty result")
		}
	}
}
