package coloring

import (
	"fmt"

	"parmem/internal/arena"
	"parmem/internal/graph"
)

// guptaSoffaDense is the urgency heuristic of paper Fig. 4 on the frozen
// dense graph core: the conflict graph is snapshotted into CSR + flat
// arrays once, and the selection loop runs over index-addressed scratch
// slices instead of per-iteration maps and sorted copies.
//
// It is bit-identical to guptaSoffaMap for every input: dense indices are
// assigned in ascending id order, so every "lowest id first" tie-break of
// the map implementation is "lowest index first" here, and both scan
// candidates in that same order.
func guptaSoffaDense(g *graph.Graph, opt Options) Result {
	k := opt.K
	if k < 1 {
		panic(fmt.Sprintf("coloring: K = %d, need at least one module", k))
	}
	// All selection-loop scratch (the dense snapshot, urgency and load
	// arrays) is borrowed from the arena — the caller's shard when
	// opt.Scratch is set, a pooled one otherwise; only assign and
	// Unassigned escape into the Result and stay freshly allocated.
	sc := opt.Scratch
	if sc == nil {
		sc = arena.Get()
		defer sc.Release()
	}
	d := graph.FromGraphScratch(g, sc)
	n := d.N()

	assign := make(map[int]int, n)
	asg := sc.Int32s(n) // module+1 per dense index; 0 = unassigned
	// asgBits mirrors asg != 0 as a bitset, so the per-candidate
	// assigned-neighbor scans run word-at-a-time through the adjacency rows.
	asgBits := sc.Uint64s(graph.BitsetWords(n))
	for v, m := range opt.Precolored {
		if m < 0 || m >= k {
			panic(fmt.Sprintf("coloring: precolored node %d has module %d outside [0,%d)", v, m, k))
		}
		if i := d.Index(v); i >= 0 {
			assign[v] = m
			asg[i] = int32(m) + 1
			graph.SetBit(asgBits, i)
		}
	}
	res := Result{Assign: assign}

	// S_ni = total outgoing weight under the directed-weight rule of
	// Fig. 4: edges leaving a node of degree < k weigh nothing, otherwise
	// conf(ni,nj) — which is the plain sum of the node's CSR weight row.
	s := sc.Ints(n)
	for i := int32(0); int(i) < n; i++ {
		if d.Deg(i) < k {
			continue
		}
		sum := 0
		for _, w := range d.WeightRow(i) {
			sum += int(w)
		}
		s[i] = sum
	}

	rest := sc.Bools(n)
	nrest := 0
	for i := range rest {
		if asg[i] == 0 {
			rest[i] = true
			nrest++
		}
	}

	moduleLoad := sc.Ints(k)
	for _, m := range assign {
		moduleLoad[m]++
	}

	// If nothing is precolored, seed with the maximum-S node, assigned to
	// module 0 (paper: ASSIGN(n_first) = M1). Ascending scan with strict
	// improvement keeps the lowest index on ties.
	if len(assign) == 0 && nrest > 0 {
		first := -1
		for i := 0; i < n; i++ {
			if rest[i] && (first == -1 || s[i] > s[first]) {
				first = i
			}
		}
		assign[d.ID(int32(first))] = 0
		asg[first] = 1
		graph.SetBit(asgBits, int32(first))
		moduleLoad[0]++
		rest[first] = false
		nrest--
	}

	used := sc.Bools(k)      // scratch: modules taken by assigned neighbors
	abuf := sc.Int32s(n)[:0] // assigned-neighbor scan buffer
	for nrest > 0 {
		// Choose n_next maximizing urgency U = (Σ incoming weight from
		// assigned neighbors) / K_nj, comparing fractions by
		// cross-multiplication; K_nj = 0 is infinite urgency (the node goes
		// to V_unassigned immediately). Ascending index scan + the strict
		// better() rules reproduce the map implementation's ordering.
		best, bestNum, bestDen := int32(-1), 0, 0
		for i := int32(0); int(i) < n; i++ {
			if !rest[i] {
				continue
			}
			for m := range used {
				used[m] = false
			}
			// Assigned neighbors of i, word-parallel through the bitset;
			// the CSR cursor j recovers each one's weight (both walks are
			// ascending, so the cursor only ever moves forward).
			abuf = d.RowAndInto(i, asgBits, abuf[:0])
			num := 0
			row, wts := d.Row(i), d.WeightRow(i)
			j := 0
			for _, u := range abuf {
				for row[j] != u {
					j++
				}
				used[asg[u]-1] = true
				if d.Deg(u) >= k { // wt(u,i): 0 when deg(u) < k
					num += int(wts[j])
				}
			}
			den := 0
			for m := 0; m < k; m++ {
				if !used[m] {
					den++
				}
			}
			if best == -1 || denseBetter(num, den, s[i], bestNum, bestDen, s[best]) {
				best, bestNum, bestDen = i, num, den
			}
		}

		rest[best] = false
		nrest--
		if bestDen == 0 {
			res.Unassigned = append(res.Unassigned, d.ID(best))
			continue
		}
		for m := range used {
			used[m] = false
		}
		abuf = d.RowAndInto(best, asgBits, abuf[:0])
		for _, u := range abuf {
			used[asg[u]-1] = true
		}
		m := pickModule(used, moduleLoad, opt.Pick)
		assign[d.ID(best)] = m
		asg[best] = int32(m) + 1
		graph.SetBit(asgBits, best)
		moduleLoad[m]++
	}
	return res
}

// denseBetter reports whether candidate a = (aNum/aDen, tie aS) beats the
// incumbent b under the urgency comparison of Fig. 4. The caller scans
// candidates in ascending index order, so "equal" means the incumbent (the
// lower index) wins — exactly the a.v < b.v tie-break of the map version.
func denseBetter(aNum, aDen, aS, bNum, bDen, bS int) bool {
	// Infinite urgencies (den 0) first.
	if (aDen == 0) != (bDen == 0) {
		return aDen == 0
	}
	if aDen == 0 { // both infinite: higher num wins, ties keep the incumbent
		return aNum > bNum
	}
	l, r := aNum*bDen, bNum*aDen
	if l != r {
		return l > r
	}
	return aS > bS
}
