// Package coloring implements the graph-coloring stage of memory-module
// assignment (Gupta & Soffa, PPOPP 1988, §2.1, Fig. 4).
//
// Nodes are data values, colors are memory modules, and an edge means the
// two values appear in the same long instruction and therefore must live in
// different modules. The paper's heuristic colors nodes in order of
// "urgency" and removes a node into V_unassigned whenever no module remains
// for it; removed values are later replicated by internal/duplication.
//
// DSATUR and first-fit baselines and an exact branch-and-bound colorer are
// provided for the ablation experiments.
package coloring

import (
	"fmt"
	"sort"

	"parmem/internal/arena"
	"parmem/internal/faultinject"
	"parmem/internal/graph"
)

// PickPolicy selects which available module an assignable node receives.
type PickPolicy int

const (
	// LowestIndex deterministically picks the smallest-numbered available
	// module. This is the default.
	LowestIndex PickPolicy = iota
	// LeastLoaded picks the available module holding the fewest values so
	// far (ties toward the smallest index), spreading values evenly.
	LeastLoaded
)

// Options configures a coloring run.
type Options struct {
	// K is the number of memory modules (colors); it must be >= 1.
	K int
	// Precolored fixes module assignments decided by an earlier phase
	// (separator vertices of a previous atom, globals in STOR2, earlier
	// instruction groups in STOR3). Precolored nodes are never moved and
	// never removed.
	Precolored map[int]int
	// Pick selects the module-choice policy; zero value is LowestIndex.
	Pick PickPolicy
	// Reference runs the original map-graph implementation of the urgency
	// heuristic instead of the dense CSR-backed one. Both produce
	// bit-identical results for every input (enforced by differential
	// tests); the knob exists for those tests and for the ablation
	// benchmarks that quantify the dense core's win.
	Reference bool
	// Scratch optionally supplies the arena the dense implementation
	// borrows its selection-loop buffers from — worker pools pass their
	// per-worker shard so repeated colorings reuse one working set. The
	// caller owns its lifecycle (Reset between calls); nil draws a Scratch
	// from the global pool for the duration of the call. The reference
	// implementation ignores it.
	Scratch *arena.Scratch
}

// Result is the outcome of a coloring run.
type Result struct {
	// Assign maps each colored node to its module in [0,K).
	Assign map[int]int
	// Unassigned lists the removed nodes (paper V_unassigned) in removal
	// order.
	Unassigned []int
}

// GuptaSoffa colors g with opt.K colors using the urgency heuristic of
// paper Fig. 4. Nodes that cannot be colored are removed into
// Result.Unassigned instead of failing. Panics if opt.K < 1 (caller bug) or
// if a precolored node has an out-of-range module.
//
// The default implementation snapshots g into the dense graph core
// (graph.Dense) and runs allocation-free index loops; opt.Reference selects
// the original map-graph implementation, which produces bit-identical
// results.
func GuptaSoffa(g *graph.Graph, opt Options) Result {
	faultinject.Check("coloring.guptasoffa")
	if opt.Reference {
		return guptaSoffaMap(g, opt)
	}
	return guptaSoffaDense(g, opt)
}

// guptaSoffaMap is the original map-graph implementation of the urgency
// heuristic, retained as the differential-test and ablation baseline of the
// dense core.
func guptaSoffaMap(g *graph.Graph, opt Options) Result {
	k := opt.K
	if k < 1 {
		panic(fmt.Sprintf("coloring: K = %d, need at least one module", k))
	}
	assign := make(map[int]int, g.NumNodes())
	for v, m := range opt.Precolored {
		if m < 0 || m >= k {
			panic(fmt.Sprintf("coloring: precolored node %d has module %d outside [0,%d)", v, m, k))
		}
		if g.HasNode(v) {
			assign[v] = m
		}
	}
	res := Result{Assign: assign}

	// Directed edge weights, paper Fig. 4: edges leaving a node of degree
	// < k weigh nothing (any order colors such a node), otherwise the
	// weight is conf(ni,nj) — the number of instructions using both.
	wt := func(from, to int) int {
		if g.Degree(from) < k {
			return 0
		}
		return g.Weight(from, to)
	}

	// S_ni = total outgoing weight; the most conflicted node goes first.
	s := make(map[int]int, g.NumNodes())
	for _, v := range g.Nodes() {
		sum := 0
		for _, u := range g.Neighbors(v) {
			sum += wt(v, u)
		}
		s[v] = sum
	}

	rest := make(map[int]bool, g.NumNodes())
	for _, v := range g.Nodes() {
		if _, ok := assign[v]; !ok {
			rest[v] = true
		}
	}

	moduleLoad := make([]int, k)
	for _, m := range assign {
		moduleLoad[m]++
	}

	// availableCount returns K_nj (modules not used by assigned neighbors)
	// and the set itself.
	available := func(v int) []bool {
		used := make([]bool, k)
		for _, u := range g.Neighbors(v) {
			if m, ok := assign[u]; ok {
				used[m] = true
			}
		}
		return used
	}

	// If nothing is precolored, seed with the maximum-S node, assigned to
	// module 0 (paper: ASSIGN(n_first) = M1).
	if len(assign) == 0 && len(rest) > 0 {
		first := -1
		for v := range rest {
			if first == -1 || s[v] > s[first] || (s[v] == s[first] && v < first) {
				first = v
			}
		}
		assign[first] = 0
		moduleLoad[0]++
		delete(rest, first)
	}

	for len(rest) > 0 {
		// Choose n_next maximizing urgency U = (Σ incoming weight from
		// assigned neighbors) / K. Compare fractions num/den by
		// cross-multiplication; K = 0 is infinite urgency (the node must
		// be dealt with immediately — it goes to V_unassigned).
		type cand struct {
			v, num, den int // den = K_nj; den 0 means +inf urgency
		}
		best := cand{v: -1}
		better := func(a, b cand) bool {
			if b.v == -1 {
				return true
			}
			// Infinite urgencies first.
			if (a.den == 0) != (b.den == 0) {
				return a.den == 0
			}
			if a.den == 0 { // both infinite: higher num, then lower id
				if a.num != b.num {
					return a.num > b.num
				}
				return a.v < b.v
			}
			// a.num/a.den vs b.num/b.den.
			l, r := a.num*b.den, b.num*a.den
			if l != r {
				return l > r
			}
			if s[a.v] != s[b.v] {
				return s[a.v] > s[b.v]
			}
			return a.v < b.v
		}
		// Deterministic scan order.
		restSorted := make([]int, 0, len(rest))
		for v := range rest {
			restSorted = append(restSorted, v)
		}
		sort.Ints(restSorted)
		for _, v := range restSorted {
			used := available(v)
			den, num := 0, 0
			for m := 0; m < k; m++ {
				if !used[m] {
					den++
				}
			}
			for _, u := range g.Neighbors(v) {
				if _, ok := assign[u]; ok {
					num += wt(u, v)
				}
			}
			c := cand{v: v, num: num, den: den}
			if better(c, best) {
				best = c
			}
		}

		v := best.v
		delete(rest, v)
		if best.den == 0 {
			res.Unassigned = append(res.Unassigned, v)
			continue
		}
		used := available(v)
		m := pickModule(used, moduleLoad, opt.Pick)
		assign[v] = m
		moduleLoad[m]++
	}
	return res
}

// pickModule returns an unused module index per the policy. At least one
// module must be free.
func pickModule(used []bool, load []int, pick PickPolicy) int {
	best := -1
	for m := range used {
		if used[m] {
			continue
		}
		switch {
		case best == -1:
			best = m
		case pick == LeastLoaded && load[m] < load[best]:
			best = m
		}
	}
	if best == -1 {
		panic("coloring: pickModule called with no free module")
	}
	return best
}

// CheckProper verifies that assign is a proper partial coloring of g: no
// edge joins two assigned nodes of the same color. It returns the first
// offending edge in (U,V) order, or ok. The scan walks adjacency in node
// order with a reusable neighbor buffer instead of materializing the full
// edge list.
func CheckProper(g *graph.Graph, assign map[int]int) error {
	var nbuf []int
	for _, u := range g.Nodes() {
		cu, okU := assign[u]
		if !okU {
			continue
		}
		nbuf = g.NeighborsAppend(u, nbuf[:0])
		for _, v := range nbuf {
			if v <= u {
				continue // each edge once, as (min,max) — Edges() order
			}
			if cv, okV := assign[v]; okV && cu == cv {
				return fmt.Errorf("coloring: adjacent nodes %d and %d share module %d", u, v, cu)
			}
		}
	}
	return nil
}

// DSATUR colors g with k colors by the saturation-degree heuristic,
// removing nodes whose saturation reaches k, exactly as GuptaSoffa removes
// them, so the two heuristics are comparable by |Unassigned|.
func DSATUR(g *graph.Graph, k int) Result {
	if k < 1 {
		panic("coloring: DSATUR needs k >= 1")
	}
	assign := make(map[int]int, g.NumNodes())
	res := Result{Assign: assign}
	remaining := make(map[int]bool)
	for _, v := range g.Nodes() {
		remaining[v] = true
	}
	satur := func(v int) map[int]bool {
		set := map[int]bool{}
		for _, u := range g.Neighbors(v) {
			if c, ok := assign[u]; ok {
				set[c] = true
			}
		}
		return set
	}
	for len(remaining) > 0 {
		// Max saturation, tie: max degree, tie: lowest id.
		best, bestSat, bestDeg := -1, -1, -1
		keys := make([]int, 0, len(remaining))
		for v := range remaining {
			keys = append(keys, v)
		}
		sort.Ints(keys)
		for _, v := range keys {
			sat := len(satur(v))
			deg := g.Degree(v)
			if sat > bestSat || (sat == bestSat && deg > bestDeg) {
				best, bestSat, bestDeg = v, sat, deg
			}
		}
		delete(remaining, best)
		used := satur(best)
		colored := false
		for c := 0; c < k; c++ {
			if !used[c] {
				assign[best] = c
				colored = true
				break
			}
		}
		if !colored {
			res.Unassigned = append(res.Unassigned, best)
		}
	}
	return res
}

// FirstFit colors nodes in ascending id order with the lowest free color,
// removing nodes with no free color. It is the weakest baseline.
func FirstFit(g *graph.Graph, k int) Result {
	if k < 1 {
		panic("coloring: FirstFit needs k >= 1")
	}
	assign := make(map[int]int, g.NumNodes())
	res := Result{Assign: assign}
	for _, v := range g.Nodes() {
		used := make([]bool, k)
		for _, u := range g.Neighbors(v) {
			if c, ok := assign[u]; ok {
				used[c] = true
			}
		}
		colored := false
		for c := 0; c < k; c++ {
			if !used[c] {
				assign[v] = c
				colored = true
				break
			}
		}
		if !colored {
			res.Unassigned = append(res.Unassigned, v)
		}
	}
	return res
}

// ExactMinRemoved finds, by branch and bound, the minimum number of nodes
// whose removal leaves g k-colorable, returning an optimal Result. It is
// exponential and intended for graphs of at most ~20 nodes (ablation and
// worst-case tests only).
func ExactMinRemoved(g *graph.Graph, k int) Result {
	nodes := g.Nodes()
	n := len(nodes)
	bestRemoved := n + 1
	var bestAssign map[int]int
	var bestUnassigned []int

	assign := make(map[int]int, n)
	var removed []int

	var rec func(i, removedCount int)
	rec = func(i, removedCount int) {
		if removedCount >= bestRemoved {
			return // prune
		}
		if i == n {
			bestRemoved = removedCount
			bestAssign = make(map[int]int, len(assign))
			for v, c := range assign {
				bestAssign[v] = c
			}
			bestUnassigned = append([]int(nil), removed...)
			return
		}
		v := nodes[i]
		used := make([]bool, k)
		for _, u := range g.Neighbors(v) {
			if c, ok := assign[u]; ok {
				used[c] = true
			}
		}
		// Try each free color; symmetry break: allow only colors up to
		// (max used so far)+1 would be unsound with removals interleaved,
		// so try all free colors.
		for c := 0; c < k; c++ {
			if used[c] {
				continue
			}
			assign[v] = c
			rec(i+1, removedCount)
			delete(assign, v)
		}
		// Or remove v.
		removed = append(removed, v)
		rec(i+1, removedCount+1)
		removed = removed[:len(removed)-1]
	}
	rec(0, 0)
	sort.Ints(bestUnassigned)
	return Result{Assign: bestAssign, Unassigned: bestUnassigned}
}
