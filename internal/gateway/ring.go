package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend indices. Each backend
// contributes `replicas` virtual points; a routing key walks clockwise
// from its hash and yields backends in first-encounter order, which is
// both the primary choice and the failover sequence. Consistency is the
// property the warm caches need: adding or removing one backend remaps
// only the keys whose nearest point belonged to it, so the other
// backends' disk and memory caches stay hot.
type ring struct {
	points []rpoint // sorted by hash
	n      int      // backend count
}

type rpoint struct {
	hash    uint64
	backend int
}

// defaultReplicas is the virtual-node count per backend; enough to keep
// the largest/smallest load ratio small at single-digit backend counts.
const defaultReplicas = 128

func newRing(backends []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{n: len(backends), points: make([]rpoint, 0, len(backends)*replicas)}
	for i, addr := range backends {
		for v := 0; v < replicas; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", addr, v)
			// FNV of short, similar strings clusters badly; a finalizer
			// spreads the virtual points evenly around the ring.
			r.points = append(r.points, rpoint{hash: mix64(h.Sum64()), backend: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// sequence appends to buf the distinct backend indices encountered
// walking clockwise from key: the preferred backend first, then the
// failover order. Every backend appears exactly once.
func (r *ring) sequence(key uint64, buf []int) []int {
	if r.n == 0 {
		return buf
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	seen := make([]bool, r.n)
	found := 0
	for i := 0; i < len(r.points) && found < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			buf = append(buf, p.backend)
			found++
		}
	}
	return buf
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pick returns the preferred backend for key.
func (r *ring) pick(key uint64) int {
	if r.n == 0 {
		return -1
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	return r.points[start%len(r.points)].backend
}
