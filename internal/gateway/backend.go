package gateway

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"parmem/internal/server"
	"parmem/internal/telemetry"
)

// backend is one parmemd the gateway routes to: a lazily (re)dialed
// multiplexing client plus the prober's last view of its health. A
// backend is routable when it is healthy and not draining; a draining
// backend finishes what it has but receives nothing new (the drain
// passthrough — parmemd's own drain refuses new work with UNAVAILABLE,
// the gateway just stops sending it first).
type backend struct {
	addr     string
	readyURL string // optional /readyz endpoint, probed alongside Ping

	mu     sync.Mutex
	client *server.Client

	healthy  atomic.Bool
	draining atomic.Bool

	mUp *telemetry.Gauge
}

// routable reports whether new requests may be sent to this backend.
func (b *backend) routable() bool { return b.healthy.Load() && !b.draining.Load() }

// getClient returns the live client, dialing if needed. A client whose
// connection died is discarded and redialed; failure marks the backend
// unhealthy until the prober sees it again.
func (b *backend) getClient() (*server.Client, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.client != nil {
		select {
		case <-b.client.Dead():
			b.client.Close()
			b.client = nil
		default:
			return b.client, nil
		}
	}
	c, err := server.Dial(b.addr)
	if err != nil {
		b.setHealthy(false)
		return nil, err
	}
	b.client = c
	return c, nil
}

func (b *backend) setHealthy(up bool) {
	b.healthy.Store(up)
	if up {
		b.mUp.Set(1)
	} else {
		b.mUp.Set(0)
	}
}

func (b *backend) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.client != nil {
		b.client.Close()
		b.client = nil
	}
}

// probe refreshes the backend's health: a protocol Ping answers both
// liveness and drain state; when a readyz URL is configured it is
// consulted too, so an operator draining through the HTTP side is seen
// even before the protocol reports it.
func (b *backend) probe(ctx context.Context, timeout time.Duration) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	c, err := b.getClient()
	if err != nil {
		b.setHealthy(false)
		return
	}
	resp, err := c.Ping(pctx)
	if err != nil {
		b.setHealthy(false)
		return
	}
	draining := resp.Draining
	if b.readyURL != "" && !draining {
		draining = !probeReady(pctx, b.readyURL)
	}
	b.draining.Store(draining)
	b.setHealthy(true)
}

// probeReady returns whether a /readyz endpoint answers 200.
func probeReady(ctx context.Context, url string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
