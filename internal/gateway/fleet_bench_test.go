package gateway

import (
	"context"
	"testing"
	"time"

	"parmem/internal/benchprog"
	"parmem/internal/server"
)

// Fleet throughput: boot a two-backend parmemd fleet behind the gateway,
// push the whole benchmark corpus through it, tear it down. Cold runs on
// fresh cache directories so every program does its full coloring and
// duplication work; warm reuses directories a previous fleet populated,
// so every backend restart serves the corpus from its persistent tier.
// The gap between the two progs/sec numbers is what the disk cache buys
// a restarted fleet — the acceptance criterion archived in
// BENCH_parmem.json (warm must beat cold).

// fleetServe boots two disk-backed backends on dirs, fronts them with a
// gateway, compiles the corpus once through it, and drains everything —
// one full fleet lifecycle, restart included.
func fleetServe(b *testing.B, dirs [2]string) {
	b.Helper()
	var backends [2]*server.Server
	for i, dir := range dirs {
		s, err := server.New(server.Config{Addr: "127.0.0.1:0", CacheDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		backends[i] = s
	}
	g, err := New(Config{
		Addr:          "127.0.0.1:0",
		Backends:      []string{backends[0].Addr(), backends[1].Addr()},
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := server.Dial(g.Addr())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, spec := range benchprog.All() {
		resp, err := c.Compile(ctx, server.CompileRequest{Src: spec.Source, K: 8})
		if err != nil || resp.Code != server.CodeOK {
			b.Fatalf("compile %s: %v / %+v", spec.Name, err, resp)
		}
	}
	c.Close()
	g.Close()
	// Drain, not kill: the write-behind tier must flush so the next boot
	// over these directories sees every entry.
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	for _, s := range backends {
		if err := s.Drain(dctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetCold(b *testing.B) {
	corpus := float64(len(benchprog.All()))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dirs := [2]string{b.TempDir(), b.TempDir()} // fresh: nothing cached
		b.StartTimer()
		fleetServe(b, dirs)
	}
	b.ReportMetric(corpus*float64(b.N)/b.Elapsed().Seconds(), "progs/sec")
}

func BenchmarkFleetWarm(b *testing.B) {
	dirs := [2]string{b.TempDir(), b.TempDir()}
	fleetServe(b, dirs) // populate the persistent tiers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleetServe(b, dirs) // restarted fleet: the corpus is all disk hits
	}
	b.ReportMetric(float64(len(benchprog.All()))*float64(b.N)/b.Elapsed().Seconds(), "progs/sec")
}
