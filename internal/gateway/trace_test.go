package gateway

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"parmem/internal/server"
	"parmem/internal/telemetry"
	"parmem/internal/tracemerge"
)

// tracedProc bundles one process's recorder with its JSONL export buffer.
type tracedProc struct {
	rec  *telemetry.Recorder
	sink *telemetry.JSONLSink
	buf  *bytes.Buffer
}

func newTracedProc(name string) *tracedProc {
	buf := &bytes.Buffer{}
	sink := telemetry.NewJSONLSink(buf)
	rec := telemetry.New(sink)
	sink.WriteProcess(name, rec.Tracer())
	return &tracedProc{rec: rec, sink: sink, buf: buf}
}

func (p *tracedProc) read(t *testing.T, name string) tracemerge.ProcessTrace {
	t.Helper()
	if err := p.sink.Flush(); err != nil {
		t.Fatal(err)
	}
	pt, err := tracemerge.Read(bytes.NewReader(p.buf.Bytes()), name)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

// TestEndToEndTrace is the acceptance test for fleet-wide tracing: one
// traced assign from a client through a gateway to a daemon must produce
// JSONL exports that merge into a single trace id spanning all three
// processes, with the daemon's rpc span remotely parented to the gateway's
// forward span and the gateway's root remotely parented to the client span.
func TestEndToEndTrace(t *testing.T) {
	daemon := newTracedProc("parmemd")
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", Telemetry: daemon.rec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	gw := newTracedProc("parmemgw")
	g, err := New(Config{
		Addr:          "127.0.0.1:0",
		Backends:      []string{s.Addr()},
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
		Telemetry:     gw.rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })

	client := newTracedProc("client")
	c, err := server.Dial(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tc := telemetry.NewTrace()
	sp := client.rec.StartSpanTrace("request", tc)
	ctx := telemetry.ContextWithTrace(context.Background(), sp.Context())
	resp, err := c.Assign(ctx, server.AssignRequest{
		Instrs: [][]int{{0, 1, 2}, {1, 2, 3}, {0, 3}},
		K:      4,
	})
	sp.End()
	if err != nil || resp.Code != server.CodeOK {
		t.Fatalf("assign through gateway: %+v, %v", resp, err)
	}
	if resp.Trace != tc.TraceID() {
		t.Fatalf("response echoed trace %q, want %q", resp.Trace, tc.TraceID())
	}

	procs := []tracemerge.ProcessTrace{
		client.read(t, "client"),
		gw.read(t, "parmemgw"),
		daemon.read(t, "parmemd"),
	}
	for i, p := range procs {
		if len(p.Spans) == 0 {
			t.Fatalf("process %d (%s) exported no spans", i, p.Name)
		}
		for _, srec := range p.Spans {
			if srec.Trace != tc.TraceID() {
				t.Fatalf("%s span %q carries trace %q, want %q", p.Name, srec.Name, srec.Trace, tc.TraceID())
			}
		}
	}

	m := tracemerge.Merge(procs)
	if got := m.MaxTraceProcesses(); got != 3 {
		t.Fatalf("merged trace spans %d processes, want 3 (traces: %+v)", got, m.Traces)
	}
	if len(m.Traces) != 1 || m.Traces[0].Trace != tc.TraceID() {
		t.Fatalf("merged traces = %+v, want exactly %s", m.Traces, tc.TraceID())
	}

	// The remote-parent chain must link daemon -> gateway -> client.
	findRemote := func(p tracemerge.ProcessTrace, name string) (string, bool) {
		for _, srec := range p.Spans {
			if srec.Name == name && srec.RemoteParent != "" {
				return srec.RemoteProc, true
			}
		}
		return "", false
	}
	if proc, ok := findRemote(procs[2], "rpc_assign"); !ok || proc != procs[1].Proc {
		t.Fatalf("daemon rpc span not remotely parented to the gateway (got proc %q, ok=%v, want %q)",
			proc, ok, procs[1].Proc)
	}
	if proc, ok := findRemote(procs[1], "gw_assign"); !ok || proc != procs[0].Proc {
		t.Fatalf("gateway root span not remotely parented to the client (got proc %q, ok=%v, want %q)",
			proc, ok, procs[0].Proc)
	}

	// The merged Chrome trace must carry lanes for all three processes and
	// at least two cross-process flow links.
	var out bytes.Buffer
	if err := m.WriteChrome(&out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"client", "parmemgw", "parmemd"} {
		if !strings.Contains(out.String(), `"name": "`+name+`"`) {
			t.Fatalf("merged Chrome trace missing process lane %q", name)
		}
	}
	if strings.Count(out.String(), `"ph": "s"`) < 2 {
		t.Fatalf("merged Chrome trace has fewer than 2 flow links:\n%s", out.String())
	}
}

// TestDeltaSessionAffinity holds an incremental session through a
// two-backend gateway and patches it with deltas: the session-name routing
// must keep the hold and every delta on the same upstream connection, so
// the daemon still knows the base.
func TestDeltaSessionAffinity(t *testing.T) {
	b1 := bootBackend(t)
	b2 := bootBackend(t)
	g := bootGateway(t, b1.Addr(), b2.Addr())
	c, err := server.Dial(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	resp, err := c.Assign(ctx, server.AssignRequest{
		Instrs: [][]int{{0, 1, 2}, {1, 2, 3}, {0, 3}},
		K:      4,
		Hold:   "affinity",
	})
	if err != nil || resp.Code != server.CodeOK || resp.Held != "affinity" {
		t.Fatalf("hold through gateway: %+v, %v", resp, err)
	}
	for i := 0; i < 3; i++ {
		resp, err = c.Delta(ctx, server.DeltaRequest{
			Base:  "affinity",
			Hold:  "affinity",
			Added: [][]int{{1, 3}},
		})
		if err != nil || resp.Code != server.CodeOK {
			t.Fatalf("delta %d through gateway: %+v, %v", i, resp, err)
		}
		if resp.Incremental == nil {
			t.Fatalf("delta %d response carries no incremental stats", i)
		}
	}
}

// TestUntracedPassThrough checks the no-trace paths: a gateway without
// telemetry must forward payloads byte-identically (no trace injection),
// and the daemon must still mint a trace id so every response carries one.
func TestUntracedPassThrough(t *testing.T) {
	b := bootBackend(t)
	g := bootGateway(t, b.Addr())
	c, err := server.Dial(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Assign(context.Background(), server.AssignRequest{
		Instrs: [][]int{{0, 1}}, K: 4,
	})
	if err != nil || resp.Code != server.CodeOK {
		t.Fatalf("assign: %+v, %v", resp, err)
	}
	if len(resp.Trace) != 32 {
		t.Fatalf("untraced request got trace %q, want a daemon-minted 32-hex id", resp.Trace)
	}
}
