package gateway

import (
	"encoding/json"
	"hash/fnv"

	"parmem/internal/alloccache"
	"parmem/internal/conflict"
	"parmem/internal/server"
)

// Routing keys. The gateway's job is cache affinity: every request that
// would hit the same memo entries must land on the same backend, so the
// fleet's caches partition the keyspace instead of each backend slowly
// warming a copy of everything.
//
// For assign requests the key is the canonical hash of the conflict graph
// the engine will build — the same graph signature the allocation cache
// keys on — mixed with K, so isomorphic-in-bytes requests route together
// no matter how the client ordered its JSON. For compile and batch
// requests the graph does not exist yet (building it would mean running
// half the pipeline in the gateway), so the key hashes the source text
// and the options that shape compilation; identical submissions — the
// warm-fleet case — still collide.
//
// Session-flavored requests trade cache affinity for session affinity:
// an assign that holds a session, and every delta against one, route by
// the session's name. Daemon-side sessions live on the connection that
// created them, and the gateway keeps exactly one multiplexed upstream
// connection per backend — so pinning a session name to one ring position
// keeps the hold and all its deltas on the connection that knows the
// session. A failover (the session's home backend dying) loses the
// session; the daemon answers the next delta with its typed unknown-base
// INVALID_ARGUMENT and the client re-holds, exactly as it would after its
// own connection dropped.

// routeKey computes the routing key of one request frame. Unparseable
// payloads return key 0 (a deterministic backend will reject them with
// the protocol's own INVALID_ARGUMENT).
func routeKey(op server.Op, payload []byte) uint64 {
	switch op {
	case server.OpAssign:
		var req server.AssignRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return 0
		}
		if req.Hold != "" {
			return sessionKey(req.Hold)
		}
		return assignKey(req)
	case server.OpDelta:
		var req server.DeltaRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return 0
		}
		return sessionKey(req.Base)
	case server.OpCompile:
		var req server.CompileRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return 0
		}
		return textKey(req.Src, req.K, req.Strategy, req.Method)
	case server.OpBatch:
		var req server.BatchRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return 0
		}
		h := fnv.New64a()
		for _, src := range req.Srcs {
			writeLenPrefixed(h, src)
		}
		return mixOpts(h.Sum64(), req.K, req.Strategy, req.Method)
	}
	return 0
}

// assignKey hashes the conflict graph the backend's engine will build
// from the instruction stream — the canonical (order-independent) graph
// hash the allocation cache itself uses — mixed with K.
func assignKey(req server.AssignRequest) uint64 {
	instrs := make([]conflict.Instruction, len(req.Instrs))
	for i, ops := range req.Instrs {
		for _, v := range ops {
			if v < 0 {
				return 0 // the backend rejects negative ids; don't build
			}
		}
		instrs[i] = conflict.Instruction(ops)
	}
	g := conflict.Build(instrs)
	h := alloccache.CanonicalHash(g)
	return mixOpts(h, req.K, req.Strategy, req.Method)
}

// sessionKey pins a session name to one ring position. The "sess\x00"
// prefix keeps the namespace disjoint from text keys.
func sessionKey(name string) uint64 {
	h := fnv.New64a()
	writeLenPrefixed(h, "sess\x00"+name)
	return h.Sum64()
}

func textKey(src string, k int, strategy, method string) uint64 {
	h := fnv.New64a()
	writeLenPrefixed(h, src)
	return mixOpts(h.Sum64(), k, strategy, method)
}

// mixOpts folds the option fields that change what the engine computes
// into the base hash.
func mixOpts(base uint64, k int, strategy, method string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(base >> (8 * i))
	}
	h.Write(b[:])
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(k) >> (8 * i))
	}
	h.Write(b[:])
	writeLenPrefixed(h, strategy)
	writeLenPrefixed(h, method)
	return h.Sum64()
}

func writeLenPrefixed(h interface{ Write([]byte) (int, error) }, s string) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(len(s)) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(s))
}
