package gateway

import (
	"context"
	"testing"
	"time"

	"parmem/internal/benchprog"
	"parmem/internal/server"
)

// bootBackend starts one parmemd on a free port.
func bootBackend(t *testing.T) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// bootGateway fronts the given backends with a fast probe cycle.
func bootGateway(t *testing.T, addrs ...string) *Gateway {
	t.Helper()
	g, err := New(Config{
		Addr:          "127.0.0.1:0",
		Backends:      addrs,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestGatewayRequiresBackends(t *testing.T) {
	if _, err := New(Config{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("New accepted an empty backend list")
	}
}

func TestGatewayForwardsCompileAssignBatch(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	g := bootGateway(t, b1.Addr(), b2.Addr())
	c, err := server.Dial(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	resp, err := c.Ping(ctx)
	if err != nil || resp.Code != server.CodeOK || resp.Draining {
		t.Fatalf("ping through gateway: %v / %+v", err, resp)
	}
	src := benchprog.All()[0].Source
	resp, err = c.Compile(ctx, server.CompileRequest{Src: src, K: 8})
	if err != nil || resp.Code != server.CodeOK {
		t.Fatalf("compile through gateway: %v / %+v", err, resp)
	}
	if resp.Result == nil || resp.Result.TotalCopies == 0 {
		t.Fatalf("compile result empty: %+v", resp)
	}
	resp, err = c.Assign(ctx, server.AssignRequest{
		Instrs: [][]int{{0, 1, 2}, {1, 2, 3}}, K: 4,
	})
	if err != nil || resp.Code != server.CodeOK {
		t.Fatalf("assign through gateway: %v / %+v", err, resp)
	}
	resp, err = c.Batch(ctx, server.BatchRequest{Srcs: []string{src, src}, K: 8})
	if err != nil || resp.Code != server.CodeOK || len(resp.Items) != 2 {
		t.Fatalf("batch through gateway: %v / %+v", err, resp)
	}
	// Typed errors relay too.
	resp, err = c.Compile(ctx, server.CompileRequest{Src: "this is not MPL", K: 8})
	if err != nil || resp.Code != server.CodeInvalidArgument {
		t.Fatalf("bad compile through gateway: %v / %+v", err, resp)
	}
}

// TestGatewayRoutesStably: the same request always lands on the same
// backend (observed through that backend's cache stats), and the two
// backends' caches end up disjoint.
func TestGatewayRoutesStably(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	g := bootGateway(t, b1.Addr(), b2.Addr())
	c, err := server.Dial(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Enough distinct sources that both shards almost surely see work.
	specs := benchprog.All()
	for round := 0; round < 3; round++ {
		for _, spec := range specs {
			resp, err := c.Compile(ctx, server.CompileRequest{Src: spec.Source, K: 8})
			if err != nil || resp.Code != server.CodeOK {
				t.Fatalf("compile %s: %v / %+v", spec.Name, err, resp)
			}
		}
	}
	s1, _ := b1.CacheStats()
	s2, _ := b2.CacheStats()
	if s1.Entries == 0 || s2.Entries == 0 {
		t.Skipf("all programs hashed to one shard (s1=%d s2=%d entries); ring is fine, corpus is small", s1.Entries, s2.Entries)
	}
	// Stability: rounds 2 and 3 of each program must hit the warm shard.
	// With perfect affinity every recompile is a whole-assign cache hit.
	if s1.Hits+s2.Hits == 0 {
		t.Fatalf("no cache hits across recompiles: routing is not stable (s1=%+v s2=%+v)", s1, s2)
	}
}

// TestGatewayFailover: killing one backend mid-traffic degrades nothing —
// requests re-route to the survivor and the client keeps getting typed OK
// responses.
func TestGatewayFailover(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	g := bootGateway(t, b1.Addr(), b2.Addr())
	c, err := server.Dial(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	src := benchprog.All()[0].Source

	for _, spec := range benchprog.All() {
		if resp, err := c.Compile(ctx, server.CompileRequest{Src: spec.Source, K: 8}); err != nil || resp.Code != server.CodeOK {
			t.Fatalf("warmup %s: %v / %+v", spec.Name, err, resp)
		}
	}
	b2.Close() // hard kill one backend

	deadline := time.Now().Add(10 * time.Second)
	for _, spec := range benchprog.All() {
		for {
			resp, err := c.Compile(ctx, server.CompileRequest{Src: spec.Source, K: 8})
			if err != nil {
				t.Fatalf("transport error through gateway after backend death: %v", err)
			}
			if resp.Code == server.CodeOK {
				break
			}
			// A brief UNAVAILABLE window while probes catch up is
			// acceptable; it must converge.
			if time.Now().After(deadline) {
				t.Fatalf("failover never converged for %s: %+v", spec.Name, resp)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	_ = src
}

// TestGatewayDrainPassthrough: a draining backend stops receiving new
// work (requests fail over), and a draining gateway answers UNAVAILABLE.
func TestGatewayDrainPassthrough(t *testing.T) {
	b1, b2 := bootBackend(t), bootBackend(t)
	g := bootGateway(t, b1.Addr(), b2.Addr())
	c, err := server.Dial(g.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := b2.Drain(dctx); err != nil {
		t.Fatalf("backend drain: %v", err)
	}
	// Every program must still compile OK via b1, never UNAVAILABLE.
	for _, spec := range benchprog.All() {
		resp, err := c.Compile(ctx, server.CompileRequest{Src: spec.Source, K: 8})
		if err != nil || resp.Code != server.CodeOK {
			t.Fatalf("compile %s with one backend drained: %v / %+v", spec.Name, err, resp)
		}
	}

	// Now drain the gateway itself: new requests get typed UNAVAILABLE
	// on already-open connections, then the listener is gone.
	gctx, gcancel := context.WithTimeout(ctx, 5*time.Second)
	defer gcancel()
	drained := make(chan error, 1)
	go func() { drained <- g.Drain(gctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := c.Ping(ctx)
		if err != nil {
			break // connection closed by the completed drain: also fine
		}
		if resp.Draining || resp.Code == server.CodeUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gateway never reported draining")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := <-drained; err != nil {
		t.Fatalf("gateway drain: %v", err)
	}
}

func TestGatewayReady(t *testing.T) {
	b1 := bootBackend(t)
	g := bootGateway(t, b1.Addr())
	if !g.Ready() {
		t.Fatal("gateway with a healthy backend not ready")
	}
	b1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for g.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("gateway still ready with its only backend dead")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
