// Package gateway is the fleet front of the assignment engine: a TCP
// proxy (parmemgw) speaking the same framed protocol as parmemd, routing
// each request to one of N backends by consistent hashing over the
// request's cache identity. Identical work always lands on the same
// backend, so the fleet's allocation caches — memory and disk tiers —
// partition the keyspace into disjoint warm shards instead of N cold
// copies of everything.
//
// Health is probed continuously (protocol Ping, which also reports drain
// state, plus an optional /readyz URL per backend). A request whose
// preferred backend is down or draining fails over along the ring's
// clockwise order; only when every backend is unroutable does the client
// see a typed UNAVAILABLE. Backend drains pass through: a draining
// parmemd stops receiving new work from the gateway before it would have
// refused it itself.
package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"parmem/internal/server"
	"parmem/internal/telemetry"
)

// Config configures a gateway.
type Config struct {
	// Addr is the listen address (host:port; port 0 picks a free one).
	Addr string
	// Backends are the parmemd addresses to route across; at least one.
	Backends []string
	// ReadyURLs optionally maps (by index) each backend to a /readyz
	// endpoint probed alongside the protocol ping; "" skips.
	ReadyURLs []string
	// Replicas is the virtual-node count per backend on the hash ring;
	// 0 picks the default.
	Replicas int
	// MaxFrameBytes caps a frame payload; default server.DefaultMaxFrame.
	MaxFrameBytes int
	// FrameTimeout bounds one frame's read after its first byte and each
	// response write; default 10s.
	FrameTimeout time.Duration
	// ProbeInterval is the health-probe period; default 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip; default 2s.
	ProbeTimeout time.Duration
	// ForwardTimeout bounds one forwarded request when the client gave no
	// deadline; default 60s.
	ForwardTimeout time.Duration
	// Telemetry records gateway metrics; nil disables.
	Telemetry *telemetry.Recorder
}

func (c Config) withDefaults() Config {
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = server.DefaultMaxFrame
	}
	if c.FrameTimeout <= 0 {
		c.FrameTimeout = 10 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 60 * time.Second
	}
	return c
}

// Gateway is a running parmemgw instance.
type Gateway struct {
	cfg      Config
	ln       net.Listener
	ring     *ring
	backends []*backend

	baseCtx    context.Context
	cancelBase context.CancelFunc

	drainMu  sync.RWMutex
	draining atomic.Bool
	drained  chan struct{}

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	connWG  sync.WaitGroup
	reqWG   sync.WaitGroup
	probeWG sync.WaitGroup

	mConnsOpen *telemetry.Gauge
	mReqUS     map[server.Op]*telemetry.Histogram
}

// New validates cfg, binds the listener, starts the health prober and the
// accept loop.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: no backends configured")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	g := &Gateway{
		cfg:        cfg,
		ln:         ln,
		ring:       newRing(cfg.Backends, cfg.Replicas),
		baseCtx:    ctx,
		cancelBase: cancel,
		drained:    make(chan struct{}),
		conns:      map[net.Conn]struct{}{},
		mConnsOpen: cfg.Telemetry.Gauge(telemetry.MGatewayConnsOpen),
		mReqUS:     map[server.Op]*telemetry.Histogram{},
	}
	for _, op := range []server.Op{server.OpPing, server.OpCompile, server.OpAssign, server.OpBatch} {
		g.mReqUS[op] = cfg.Telemetry.Histogram(telemetry.MGatewayReqMicros, "op", op.String())
	}
	for i, addr := range cfg.Backends {
		b := &backend{
			addr: addr,
			mUp:  cfg.Telemetry.Gauge(telemetry.MGatewayBackendUp, "backend", addr),
		}
		if i < len(cfg.ReadyURLs) {
			b.readyURL = cfg.ReadyURLs[i]
		}
		g.backends = append(g.backends, b)
	}
	// One synchronous probe round so the first request after New sees
	// real health instead of all-down.
	for _, b := range g.backends {
		b.probe(ctx, cfg.ProbeTimeout)
	}
	g.probeWG.Add(1)
	go g.probeLoop()
	go g.acceptLoop()
	return g, nil
}

// Addr returns the bound listen address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// Draining reports whether a drain has begun.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Healthy reports process liveness (the listener is up or draining
// cleanly) — the /healthz answer.
func (g *Gateway) Healthy() bool { return true }

// Ready reports whether the gateway can accept new work: not draining
// and at least one routable backend — the /readyz answer.
func (g *Gateway) Ready() bool {
	if g.draining.Load() {
		return false
	}
	for _, b := range g.backends {
		if b.routable() {
			return true
		}
	}
	return false
}

// MountHealth registers /healthz and /readyz on a telemetry server.
func (g *Gateway) MountHealth(ts *telemetry.Server) {
	probe := func(name string, ok func() bool) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			if ok() {
				fmt.Fprintf(w, "%s ok\n", name)
				return
			}
			http.Error(w, name+": unavailable", http.StatusServiceUnavailable)
		})
	}
	ts.Handle("/healthz", probe("healthz", g.Healthy))
	ts.Handle("/readyz", probe("readyz", g.Ready))
}

func (g *Gateway) probeLoop() {
	defer g.probeWG.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.baseCtx.Done():
			return
		case <-t.C:
		}
		for _, b := range g.backends {
			b.probe(g.baseCtx, g.cfg.ProbeTimeout)
		}
	}
}

func (g *Gateway) acceptLoop() {
	for {
		nc, err := g.ln.Accept()
		if err != nil {
			return // listener closed (drain)
		}
		g.mu.Lock()
		if g.draining.Load() {
			g.mu.Unlock()
			nc.Close()
			continue
		}
		g.conns[nc] = struct{}{}
		g.mu.Unlock()
		g.connWG.Add(1)
		g.mConnsOpen.Add(1)
		go g.serveConn(nc)
	}
}

func (g *Gateway) serveConn(nc net.Conn) {
	defer func() {
		g.mu.Lock()
		delete(g.conns, nc)
		g.mu.Unlock()
		nc.Close()
		g.mConnsOpen.Add(-1)
		g.connWG.Done()
	}()
	br := bufio.NewReaderSize(nc, 8192)
	var wmu sync.Mutex
	for {
		nc.SetReadDeadline(time.Time{})
		f, err := server.ReadFrame(br, g.cfg.MaxFrameBytes)
		if err != nil {
			return // protocol or transport error: drop the connection
		}

		// Atomic against Drain: once draining is set under the write
		// lock, no new request can register with reqWG.
		g.drainMu.RLock()
		if g.draining.Load() {
			g.drainMu.RUnlock()
			g.respond(nc, &wmu, f, server.Response{
				Code: server.CodeUnavailable, Error: "gateway: draining",
				Trace: echoTrace(f.Payload),
			})
			continue
		}
		g.reqWG.Add(1)
		g.drainMu.RUnlock()

		go func(f server.Frame) {
			defer g.reqWG.Done()
			start := time.Now()
			resp := g.process(f)
			g.mReqUS[f.Op].ObserveExemplar(time.Since(start).Microseconds(), resp.Trace)
			g.respond(nc, &wmu, f, resp)
		}(f)
	}
}

// respond writes a response frame for f; write errors drop the
// connection (the read side will notice on its next read).
func (g *Gateway) respond(nc net.Conn, wmu *sync.Mutex, f server.Frame, resp server.Response) {
	payload, err := json.Marshal(resp)
	if err != nil {
		payload = []byte(`{"code":"INTERNAL","error":"gateway: unencodable response"}`)
	}
	wmu.Lock()
	defer wmu.Unlock()
	nc.SetWriteDeadline(time.Now().Add(g.cfg.FrameTimeout))
	server.WriteFrame(nc, server.Frame{Op: f.Op.Response(), ID: f.ID, Payload: payload})
}

// process answers one request frame: pings locally, everything else by
// routed forwarding.
func (g *Gateway) process(f server.Frame) server.Response {
	switch f.Op {
	case server.OpPing:
		return server.Response{Code: server.CodeOK, Draining: g.draining.Load(),
			Trace: echoTrace(f.Payload)}
	case server.OpCompile, server.OpAssign, server.OpBatch, server.OpDelta:
		return g.forward(f)
	default:
		return server.Response{Code: server.CodeInvalidArgument,
			Error: fmt.Sprintf("gateway: unknown op %d", uint8(f.Op)),
			Trace: echoTrace(f.Payload)}
	}
}

// payloadTrace extracts the optional wire trace context from a request
// payload without interpreting the rest of it.
func payloadTrace(payload []byte) string {
	if len(payload) == 0 {
		return ""
	}
	var t struct {
		Trace string `json:"trace"`
	}
	if json.Unmarshal(payload, &t) != nil {
		return ""
	}
	return t.Trace
}

// echoTrace renders the 32-hex trace id a locally answered request should
// echo, or "" when the request is untraced.
func echoTrace(payload []byte) string {
	if tc, ok := telemetry.ParseTraceContext(payloadTrace(payload)); ok {
		return tc.TraceID()
	}
	return ""
}

// injectTrace rewrites the payload's trace field to tc's wire form and
// leaves every other field untouched. On any marshaling trouble the
// original payload comes back — propagation is best-effort, routing is not.
func injectTrace(payload []byte, tc telemetry.TraceContext) []byte {
	m := map[string]json.RawMessage{}
	if len(payload) > 0 {
		if err := json.Unmarshal(payload, &m); err != nil {
			return payload
		}
	}
	enc, err := json.Marshal(tc.String())
	if err != nil {
		return payload
	}
	m["trace"] = enc
	out, err := json.Marshal(m)
	if err != nil {
		return payload
	}
	return out
}

// forward routes f to its consistent-hash backend, failing over along
// the ring when the preferred backend is unroutable or the send fails at
// the transport layer. Typed protocol responses — including UNAVAILABLE
// from a backend that started draining between probe rounds — are
// relayed, except that UNAVAILABLE triggers one more failover attempt
// since a sibling backend can still serve the request (a cache miss
// there at worst).
func (g *Gateway) forward(f server.Frame) server.Response {
	// Route on the payload as the client sent it: trace injection must not
	// move a request to a different cache shard.
	key := routeKey(f.Op, f.Payload)

	// Adopt the client's trace or start one at the fleet edge, so every
	// response carries a trace id and the daemon's spans link back here.
	tc, ok := telemetry.ParseTraceContext(payloadTrace(f.Payload))
	if !ok {
		tc = telemetry.NewTrace()
	}
	sp := g.cfg.Telemetry.StartSpanTrace("gw_"+f.Op.String(), tc)
	defer sp.End()

	seq := g.ring.sequence(key, make([]int, 0, len(g.backends)))
	var lastErr string
	for attempt, idx := range seq {
		b := g.backends[idx]
		if !b.routable() && attempt < len(seq)-1 {
			// Known-bad: skip without burning a transport attempt, unless
			// it is the last candidate (then try anyway — probes lag).
			continue
		}
		if attempt > 0 {
			g.cfg.Telemetry.Counter(telemetry.MGatewayFailovers, "backend", g.backends[seq[0]].addr).Inc()
		}
		fwd := f
		fsp := g.cfg.Telemetry.StartSpan("forward", sp)
		if fsp != nil {
			// A tracing gateway rewrites the trace field so the backend's
			// rpc span links under this forward attempt; an untraced one
			// passes the payload through byte-identical.
			fsp.SetAttrStr("backend", b.addr)
			fwd.Payload = injectTrace(f.Payload, fsp.Context())
		}
		resp, err := g.forwardTo(b, fwd)
		fsp.End()
		if err != nil {
			b.setHealthy(false)
			lastErr = err.Error()
			continue
		}
		if resp.Code == server.CodeUnavailable {
			// The backend is draining; let the ring's next choice take it.
			b.draining.Store(true)
			lastErr = resp.Error
			continue
		}
		g.cfg.Telemetry.Counter(telemetry.MGatewayRequests, "backend", b.addr, "code", string(resp.Code)).Inc()
		if resp.Trace == "" {
			resp.Trace = tc.TraceID()
		}
		return resp
	}
	if lastErr == "" {
		lastErr = "no routable backend"
	}
	return server.Response{Code: server.CodeUnavailable,
		Error: "gateway: " + lastErr, Trace: tc.TraceID()}
}

func (g *Gateway) forwardTo(b *backend, f server.Frame) (server.Response, error) {
	c, err := b.getClient()
	if err != nil {
		return server.Response{}, err
	}
	ctx, cancel := context.WithTimeout(g.baseCtx, g.cfg.ForwardTimeout)
	defer cancel()
	return c.DoRaw(ctx, f.Op, f.Payload)
}

// Drain gracefully stops the gateway: stop accepting, refuse new
// requests with UNAVAILABLE, wait for in-flight forwards (bounded by
// ctx), then close connections and backend clients.
func (g *Gateway) Drain(ctx context.Context) error {
	g.drainMu.Lock()
	first := g.draining.CompareAndSwap(false, true)
	g.drainMu.Unlock()
	if !first {
		<-g.drained
		return nil
	}
	g.ln.Close()

	done := make(chan struct{})
	go func() {
		g.reqWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("gateway: drain grace period expired: %w", ctx.Err())
		g.cancelBase()
		<-done
	}

	g.mu.Lock()
	for nc := range g.conns {
		nc.Close()
	}
	g.mu.Unlock()
	g.connWG.Wait()
	g.cancelBase()
	g.probeWG.Wait()
	for _, b := range g.backends {
		b.close()
	}
	close(g.drained)
	return err
}

// Close hard-stops the gateway.
func (g *Gateway) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.Drain(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	return nil
}
