package gateway

import (
	"math/rand"
	"testing"
)

func TestRingCoversAllBackends(t *testing.T) {
	r := newRing([]string{"a:1", "b:2", "c:3"}, 0)
	seq := r.sequence(12345, nil)
	if len(seq) != 3 {
		t.Fatalf("sequence covers %d backends, want 3", len(seq))
	}
	seen := map[int]bool{}
	for _, b := range seq {
		if seen[b] {
			t.Fatalf("backend %d repeated in %v", b, seq)
		}
		seen[b] = true
	}
	if r.pick(12345) != seq[0] {
		t.Fatalf("pick %d != sequence head %d", r.pick(12345), seq[0])
	}
}

func TestRingIsDeterministic(t *testing.T) {
	a := newRing([]string{"x:1", "y:2"}, 64)
	b := newRing([]string{"x:1", "y:2"}, 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		k := rng.Uint64()
		if a.pick(k) != b.pick(k) {
			t.Fatalf("rings disagree on key %d", k)
		}
	}
}

func TestRingBalance(t *testing.T) {
	backends := []string{"h0:1", "h1:1", "h2:1", "h3:1"}
	r := newRing(backends, 0)
	counts := make([]int, len(backends))
	rng := rand.New(rand.NewSource(42))
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.pick(rng.Uint64())]++
	}
	want := n / len(backends)
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("backend %d got %d of %d keys (counts %v): ring badly unbalanced", i, c, n, counts)
		}
	}
}

// TestRingConsistency is the property the warm caches depend on: removing
// one backend only remaps the keys that pointed at it.
func TestRingConsistency(t *testing.T) {
	full := []string{"h0:1", "h1:1", "h2:1", "h3:1"}
	without := []string{"h0:1", "h1:1", "h2:1"} // h3 removed
	rf := newRing(full, 0)
	rw := newRing(without, 0)
	rng := rand.New(rand.NewSource(7))
	moved := 0
	const n = 20000
	for i := 0; i < n; i++ {
		k := rng.Uint64()
		pf := rf.pick(k)
		pw := rw.pick(k)
		if pf == 3 {
			continue // its keys must move somewhere; that's fine
		}
		if pf != pw {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys whose backend survived were remapped anyway", moved)
	}
}

// TestRingFailoverOrderMatchesRemoval: the failover target of a key (the
// second backend in its sequence) is exactly where the key lands when its
// primary is removed from the ring — so failover traffic warms the very
// cache that will own the keys after the backend is gone for good.
func TestRingFailoverOrderMatchesRemoval(t *testing.T) {
	full := []string{"h0:1", "h1:1", "h2:1"}
	rf := newRing(full, 0)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		k := rng.Uint64()
		seq := rf.sequence(k, nil)
		primary := seq[0]
		rest := append([]string{}, full[:primary]...)
		rest = append(rest, full[primary+1:]...)
		rr := newRing(rest, 0)
		got := rest[rr.pick(k)]
		if want := full[seq[1]]; got != want {
			t.Fatalf("key %d: failover %s, removal lands on %s", k, want, got)
		}
	}
}

func TestEmptyRing(t *testing.T) {
	r := newRing(nil, 0)
	if r.pick(1) != -1 {
		t.Fatal("empty ring picked a backend")
	}
	if seq := r.sequence(1, nil); len(seq) != 0 {
		t.Fatalf("empty ring sequence = %v", seq)
	}
}
