// Package profiling wires runtime/pprof into the command-line drivers.
//
// Both CLIs expose -cpuprofile and -memprofile flags so a slow compilation
// or table sweep can be captured and inspected with `go tool pprof` without
// rebuilding anything. The package exists because the drivers exit through
// several paths (success, degraded, canceled, fatal) and every one of them
// must flush the profiles; Start returns one idempotent stop function that
// all of those paths can call.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"parmem/internal/arena"
)

// Start begins CPU profiling into cpuPath (if non-empty) and arranges for a
// heap profile to be written to memPath (if non-empty) when the returned
// stop function runs. Empty paths disable the corresponding profile, so
// callers can pass flag values through unconditionally. The stop function
// is safe to call more than once and from any exit path.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "profiling:", err)
					return
				}
				defer f.Close()
				// Retained scratch buffers are pool bookkeeping, not program
				// state; release them so the profile shows what the workload
				// itself holds live.
				arena.Drain()
				runtime.GC() // materialize the final live heap
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "profiling:", err)
				}
			}
		})
	}, nil
}
