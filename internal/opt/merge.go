package opt

import "parmem/internal/ir"

// Basic-block merging. Lowering creates a fresh block after every
// structured statement, so straight-line stretches end up chopped into
// short blocks that drain the instruction word at each boundary. Merging a
// block with its unique fallthrough successor (when that successor has no
// other predecessors) restores long scheduling regions; it matters most
// after if-conversion has already removed the branches themselves.

// MergeBlocks repeatedly merges fallthrough-only block pairs and drops
// empty interior blocks, returning the number of blocks removed.
func MergeBlocks(f *ir.Func) int {
	removed := 0
	for {
		n := mergeOnce(f)
		if n == 0 {
			return removed
		}
		removed += n
	}
}

// FoldBranches resolves conditional branches whose condition is a constant
// (exposed by constant folding and copy propagation): a taken branch
// becomes a Jmp, an untaken one disappears. Returns the number of branches
// resolved. Unreachable blocks this creates are removed by
// RemoveUnreachable, and the resulting fallthrough chains by MergeBlocks.
func FoldBranches(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			continue
		}
		last := &b.Instrs[len(b.Instrs)-1]
		if last.Op != ir.Br || last.A.Kind != ir.Const {
			continue
		}
		taken := last.A.ConstInt != 0
		if last.A.Type == ir.Float {
			taken = last.A.ConstFloat != 0
		}
		if taken {
			*last = ir.Instr{Op: ir.Jmp, Target: last.Target, Seq: last.Seq}
		} else {
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
		}
		n++
	}
	return n
}

// RemoveUnreachable deletes blocks that no path from the entry reaches.
// Returns the number of blocks removed.
func RemoveUnreachable(f *ir.Func) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	reached := make([]bool, len(f.Blocks))
	stack := []int{0}
	reached[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Succs(f.Blocks[b]) {
			if !reached[s] {
				reached[s] = true
				stack = append(stack, s)
			}
		}
	}
	removed := 0
	for i := len(f.Blocks) - 1; i >= 1; i-- {
		if !reached[i] {
			deleteBlock(f, i)
			removed++
		}
	}
	return removed
}

// mergeOnce performs one scan, merging the first eligible pair it finds.
func mergeOnce(f *ir.Func) int {
	if len(f.Blocks) < 2 {
		return 0
	}
	// preds[b] = number of blocks branching or falling through to b.
	preds := make([]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range f.Succs(b) {
			preds[s]++
		}
	}

	for i := 0; i+1 < len(f.Blocks); i++ {
		b, next := f.Blocks[i], f.Blocks[i+1]
		fallsThrough := !b.Terminated()
		// A Jmp to the next block is also pure fallthrough; it is stripped
		// only if the merge commits.
		jmpToNext := false
		if !fallsThrough && len(b.Instrs) > 0 {
			last := b.Instrs[len(b.Instrs)-1]
			if last.Op == ir.Jmp && last.Target == next.ID {
				jmpToNext = true
			}
		}
		if (!fallsThrough && !jmpToNext) || preds[next.ID] != 1 {
			continue
		}
		// Merge next into b and renumber everything after it.
		if jmpToNext {
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
		}
		b.Instrs = append(b.Instrs, next.Instrs...)
		deleteBlock(f, i+1)
		return 1
	}

	// Drop empty interior blocks: an empty block just falls through, so
	// retargeting its predecessors to the next block is equivalent.
	for i := 1; i < len(f.Blocks)-1; i++ {
		if len(f.Blocks[i].Instrs) == 0 {
			deleteBlock(f, i)
			return 1
		}
	}
	return 0
}

// deleteBlock removes block at index idx, renumbering ids and retargeting
// branches. Branches to the deleted block go to the block that now occupies
// its position (its fallthrough successor).
func deleteBlock(f *ir.Func, idx int) {
	f.Blocks = append(f.Blocks[:idx], f.Blocks[idx+1:]...)
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != ir.Br && in.Op != ir.Jmp {
				continue
			}
			if in.Target > idx {
				in.Target--
			} else if in.Target == idx {
				// The deleted block was empty or merged into its
				// predecessor's fallthrough; its old position now holds
				// what followed it.
				in.Target = idx
			}
		}
	}
	for i, b := range f.Blocks {
		b.ID = i
	}
}
