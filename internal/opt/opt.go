// Package opt provides the classic scalar optimizations a real LIW compiler
// runs before scheduling: constant folding, block-local copy and constant
// propagation, and dead temporary elimination.
//
// The passes matter to memory-module assignment because every surviving
// temporary is a data value that needs a module: removing the Mov chatter
// of naive lowering shrinks the conflict graph and shortens the dependence
// chains the word scheduler sees.
//
// Program variables (ir.Var) are never deleted: they are memory-resident
// outputs observable after execution. Only temporaries whose values are
// provably unused disappear.
package opt

import (
	"parmem/internal/ir"
)

// Result reports what a Run changed.
type Result struct {
	Folded     int // instructions turned into constant Movs
	Propagated int // operand slots rewritten by copy/constant propagation
	Eliminated int // dead temporary definitions removed
	Merged     int // basic blocks merged away
}

// Run applies all passes to a fixpoint (bounded by a few iterations; each
// pass only shrinks the program). Block merging participates in the loop
// because longer blocks expose more block-local propagation.
func Run(f *ir.Func) Result {
	var total Result
	for i := 0; i < 10; i++ {
		r := Result{
			Folded:     FoldConstants(f),
			Propagated: PropagateCopies(f),
			Eliminated: EliminateDeadTemps(f),
		}
		r.Folded += FoldBranches(f)
		r.Merged = RemoveUnreachable(f) + MergeBlocks(f)
		total.Folded += r.Folded
		total.Propagated += r.Propagated
		total.Eliminated += r.Eliminated
		total.Merged += r.Merged
		if r.Folded+r.Propagated+r.Eliminated+r.Merged == 0 {
			break
		}
	}
	return total
}

// FoldConstants rewrites operations whose operands are all constants into
// constant moves. Folding never introduces a fault that the original did
// not have: division and modulo by a constant zero are left alone (the
// machine reports them at run time, as the original would).
func FoldConstants(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Dst == nil || in.Dst.Kind == ir.Const {
				continue
			}
			folded, ok := fold(f, in)
			if ok {
				in.Op = ir.Mov
				in.A = folded
				in.B = nil
				n++
			}
		}
	}
	return n
}

func isConst(v *ir.Value) bool { return v != nil && v.Kind == ir.Const }

func cInt(v *ir.Value) int64 {
	if v.Type == ir.Float {
		return int64(v.ConstFloat)
	}
	return v.ConstInt
}

func cFloat(v *ir.Value) float64 {
	if v.Type == ir.Float {
		return v.ConstFloat
	}
	return float64(v.ConstInt)
}

// fold evaluates one instruction over constant operands.
func fold(f *ir.Func, in *ir.Instr) (*ir.Value, bool) {
	switch in.Op {
	case ir.Neg:
		if !isConst(in.A) {
			return nil, false
		}
		if in.Dst.Type == ir.Float {
			return f.FloatConst(-cFloat(in.A)), true
		}
		return f.IntConst(-cInt(in.A)), true
	case ir.Not:
		if !isConst(in.A) {
			return nil, false
		}
		if cInt(in.A) == 0 {
			return f.IntConst(1), true
		}
		return f.IntConst(0), true
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod:
		if !isConst(in.A) || !isConst(in.B) {
			return nil, false
		}
		if in.Dst.Type == ir.Float {
			a, b := cFloat(in.A), cFloat(in.B)
			switch in.Op {
			case ir.Add:
				return f.FloatConst(a + b), true
			case ir.Sub:
				return f.FloatConst(a - b), true
			case ir.Mul:
				return f.FloatConst(a * b), true
			case ir.Div:
				if b == 0 {
					return nil, false // preserve the runtime fault
				}
				return f.FloatConst(a / b), true
			}
			return nil, false
		}
		a, b := cInt(in.A), cInt(in.B)
		switch in.Op {
		case ir.Add:
			return f.IntConst(a + b), true
		case ir.Sub:
			return f.IntConst(a - b), true
		case ir.Mul:
			return f.IntConst(a * b), true
		case ir.Div:
			if b == 0 {
				return nil, false
			}
			return f.IntConst(a / b), true
		case ir.Mod:
			if b == 0 {
				return nil, false
			}
			return f.IntConst(a % b), true
		}
		return nil, false
	case ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge:
		if !isConst(in.A) || !isConst(in.B) {
			return nil, false
		}
		var res bool
		if in.A.Type == ir.Float || in.B.Type == ir.Float {
			a, b := cFloat(in.A), cFloat(in.B)
			res = cmpF(in.Op, a, b)
		} else {
			a, b := cInt(in.A), cInt(in.B)
			res = cmpI(in.Op, a, b)
		}
		if res {
			return f.IntConst(1), true
		}
		return f.IntConst(0), true
	}
	return nil, false
}

func cmpI(op ir.Op, a, b int64) bool {
	switch op {
	case ir.Eq:
		return a == b
	case ir.Ne:
		return a != b
	case ir.Lt:
		return a < b
	case ir.Le:
		return a <= b
	case ir.Gt:
		return a > b
	default:
		return a >= b
	}
}

func cmpF(op ir.Op, a, b float64) bool {
	switch op {
	case ir.Eq:
		return a == b
	case ir.Ne:
		return a != b
	case ir.Lt:
		return a < b
	case ir.Le:
		return a <= b
	case ir.Gt:
		return a > b
	default:
		return a >= b
	}
}

// PropagateCopies rewrites, within each basic block, uses of a temporary t
// defined by "t = Mov x" to use x directly, as long as neither t nor x has
// been redefined in between. Only same-type moves propagate (a widening
// int→float Mov is a conversion, not a copy). Cross-block propagation would
// need SSA and buys little here.
func PropagateCopies(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		// copyOf[v] = the value v currently mirrors.
		copyOf := map[int]*ir.Value{}
		invalidate := func(v *ir.Value) {
			if v == nil {
				return
			}
			delete(copyOf, v.ID)
			for id, src := range copyOf {
				if src.ID == v.ID {
					delete(copyOf, id)
				}
			}
		}
		rewrite := func(slot **ir.Value) {
			v := *slot
			if v == nil || v.Kind == ir.Const {
				return
			}
			if src, ok := copyOf[v.ID]; ok {
				*slot = src
				n++
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			rewrite(&in.A)
			rewrite(&in.B)
			rewrite(&in.Index)
			if d := in.Def(); d != nil && d.IsMem() {
				invalidate(d)
				if in.Op == ir.Mov && in.A != nil &&
					(in.A.Kind == ir.Const || in.A.IsMem()) &&
					in.A.Type == d.Type && in.A.ID != d.ID {
					copyOf[d.ID] = in.A
				}
			}
		}
	}
	return n
}

// EliminateDeadTemps removes definitions of temporaries that are never
// used anywhere in the function. Stores, branches and definitions of
// program variables are never removed. Returns the number of instructions
// deleted.
func EliminateDeadTemps(f *ir.Func) int {
	used := map[int]bool{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			for _, u := range b.Instrs[i].Uses() {
				used[u.ID] = true
			}
		}
	}
	removed := 0
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			d := in.Def()
			dead := d != nil && d.Kind == ir.Temp && !used[d.ID]
			if dead && in.Op == ir.Load {
				// Removing a load also removes its bounds check; only do so
				// when the index is provably in range.
				dead = in.Index.Kind == ir.Const &&
					in.Index.ConstInt >= 0 && in.Index.ConstInt < int64(in.Arr.Size)
			}
			if dead {
				removed++
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return removed
}
