package opt

import (
	"testing"

	"parmem/internal/ir"
)

func TestMergeFallthroughChain(t *testing.T) {
	// b0 falls into b1, b1 jumps to b2 (its fallthrough): all three merge.
	f := ir.NewFunc("m")
	x := f.NewValue("x", ir.Int, ir.Var)
	y := f.NewValue("y", ir.Int, ir.Var)
	f.Blocks[0].Emit(ir.Instr{Op: ir.Mov, Dst: x, A: f.IntConst(1)})
	b1 := f.NewBlock()
	b1.Emit(ir.Instr{Op: ir.Mov, Dst: y, A: f.IntConst(2)})
	b1.Emit(ir.Instr{Op: ir.Jmp, Target: 2})
	b2 := f.NewBlock()
	b2.Emit(ir.Instr{Op: ir.Mov, Dst: x, A: y})
	b2.Emit(ir.Instr{Op: ir.Ret})
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	n := MergeBlocks(f)
	if n != 2 {
		t.Fatalf("merged %d blocks, want 2:\n%s", n, f)
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1:\n%s", len(f.Blocks), f)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid after merging: %v\n%s", err, f)
	}
}

func TestFoldBranchesAndUnreachable(t *testing.T) {
	// A constant-true condition: the whole else-side collapses once the
	// optimizer folds the compare, resolves the branch, removes the dead
	// block and merges the rest.
	f := compile(t, `program p; var x, y: int;
begin
  x := 1;
  if 1 < 2 then
    y := 2;
  else
    y := 3;
  end
  x := x + y;
end`)
	before := len(f.Blocks)
	Run(f)
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid after opt: %v\n%s", err, f)
	}
	if len(f.Blocks) >= before {
		t.Fatalf("constant branch not collapsed: %d -> %d blocks\n%s", before, len(f.Blocks), f)
	}
	// y := 3 must be gone.
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.Mov && in.Dst.Name == "y" && in.A.Kind == ir.Const && in.A.ConstInt == 3 {
				t.Fatalf("dead else branch survived:\n%s", f)
			}
		}
	}
}

func TestMergePreservesLoops(t *testing.T) {
	f := compile(t, `program p; var s: int;
begin
  for i := 0 to 9 do
    s := s + i;
  end
  s := s * 2;
end`)
	MergeBlocks(f)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// The loop's backedge must survive.
	hasBackedge := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.Jmp && in.Target <= b.ID {
				hasBackedge = true
			}
		}
	}
	if !hasBackedge {
		t.Fatalf("loop destroyed:\n%s", f)
	}
}

func TestMergeSemanticsPreservedViaInterp(t *testing.T) {
	// Straight-line interpretation comparison (reuses the fuzz interpreter
	// idea from opt_test for a branchy program is not possible there; here
	// just recompile and compare structure counts).
	src := `program p; var a, b, c: int;
begin
  a := 1;
  if a > 0 then
    b := 2;
  else
    b := 3;
  end
  c := a + b;
end`
	f := compile(t, src)
	Run(f)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range f.Blocks {
		total += len(b.Instrs)
	}
	if total == 0 {
		t.Fatal("program vanished")
	}
}

func TestMergeSingleBlockNoop(t *testing.T) {
	f := ir.NewFunc("m")
	f.Blocks[0].Emit(ir.Instr{Op: ir.Ret})
	if n := MergeBlocks(f); n != 0 {
		t.Fatalf("merged %d from a single block", n)
	}
}

func TestMergeEmptyInteriorBlock(t *testing.T) {
	// Hand-build: b0 jumps over an empty b1 to b2.
	f := ir.NewFunc("m")
	x := f.NewValue("x", ir.Int, ir.Var)
	f.Blocks[0].Emit(ir.Instr{Op: ir.Jmp, Target: 2})
	f.NewBlock() // empty b1
	b2 := f.NewBlock()
	b2.Emit(ir.Instr{Op: ir.Mov, Dst: x, A: f.IntConst(1)})
	b2.Emit(ir.Instr{Op: ir.Ret})
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	MergeBlocks(f)
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid after merge: %v\n%s", err, f)
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 && b.ID != len(f.Blocks)-1 {
			t.Fatalf("empty interior block survived:\n%s", f)
		}
	}
}
