package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parmem/internal/ir"
	"parmem/internal/lang"
)

func compile(t *testing.T, src string) *ir.Func {
	t.Helper()
	f, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

func TestFoldConstants(t *testing.T) {
	f := compile(t, "program p; var x: int; begin x := 2 + 3 * 4; end")
	folded := FoldConstants(f)
	if folded < 1 {
		t.Fatalf("folded = %d, want >= 1", folded)
	}
	// After a full Run the assignment is a single constant move.
	Run(f)
	if got := countOps(f, ir.Add) + countOps(f, ir.Mul); got != 0 {
		t.Fatalf("arithmetic left after folding: %d\n%s", got, f)
	}
}

func TestFoldPreservesDivByZeroFault(t *testing.T) {
	f := compile(t, "program p; var x: int; begin x := 1 / 0; end")
	if n := FoldConstants(f); n != 0 {
		t.Fatalf("folded a division by zero (%d)", n)
	}
	ff := compile(t, "program p; var x: float; begin x := 1.0 / 0.0; end")
	if n := FoldConstants(ff); n != 0 {
		t.Fatalf("folded a float division by zero (%d)", n)
	}
}

func TestFoldComparisonsAndLogic(t *testing.T) {
	f := compile(t, "program p; var x: int; begin x := (1 < 2) and (3 >= 4); end")
	Run(f)
	// Everything constant: no compares left.
	for _, op := range []ir.Op{ir.Lt, ir.Ge, ir.Mul, ir.Ne} {
		if countOps(f, op) != 0 {
			t.Fatalf("%v left after folding:\n%s", op, f)
		}
	}
}

func TestFoldUnary(t *testing.T) {
	f := compile(t, "program p; var x, y: int; begin x := -(3); y := not 0; end")
	Run(f)
	if countOps(f, ir.Neg) != 0 || countOps(f, ir.Not) != 0 {
		t.Fatalf("unary ops left:\n%s", f)
	}
}

func TestPropagateCopies(t *testing.T) {
	// Lowering produces t := a+b; s := t. Propagation rewrites nothing here
	// (the Mov defines a Var, which must stay), but chains of temp copies
	// collapse.
	f := compile(t, "program p; var a, b, s: int; begin s := a + b; s := s + s; end")
	before := f.NumInstrs()
	Run(f)
	if f.NumInstrs() > before {
		t.Fatal("optimization grew the program")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPropagationRespectsRedefinition(t *testing.T) {
	// t := x; x := 7; y := t  — t must NOT be replaced by x after the
	// redefinition.
	f := ir.NewFunc("m")
	x := f.NewValue("x", ir.Int, ir.Var)
	y := f.NewValue("y", ir.Int, ir.Var)
	tv := f.NewTemp(ir.Int)
	b := f.Blocks[0]
	b.Emit(ir.Instr{Op: ir.Mov, Dst: tv, A: x})
	b.Emit(ir.Instr{Op: ir.Mov, Dst: x, A: f.IntConst(7)})
	b.Emit(ir.Instr{Op: ir.Mov, Dst: y, A: tv})
	b.Emit(ir.Instr{Op: ir.Ret})
	PropagateCopies(f)
	if b.Instrs[2].A != tv {
		t.Fatalf("use of t rewritten to a redefined source: %s", b.Instrs[2].String())
	}
}

func TestPropagationSkipsWideningMov(t *testing.T) {
	// fl := i  (int->float conversion) is not a copy.
	f := ir.NewFunc("m")
	i := f.NewValue("i", ir.Int, ir.Var)
	fl := f.NewTemp(ir.Float)
	out := f.NewValue("o", ir.Float, ir.Var)
	b := f.Blocks[0]
	b.Emit(ir.Instr{Op: ir.Mov, Dst: fl, A: i})
	b.Emit(ir.Instr{Op: ir.Mov, Dst: out, A: fl})
	b.Emit(ir.Instr{Op: ir.Ret})
	PropagateCopies(f)
	if b.Instrs[1].A != fl {
		t.Fatal("widening conversion propagated as a copy")
	}
}

func TestEliminateDeadTemps(t *testing.T) {
	f := ir.NewFunc("m")
	x := f.NewValue("x", ir.Int, ir.Var)
	dead := f.NewTemp(ir.Int)
	b := f.Blocks[0]
	b.Emit(ir.Instr{Op: ir.Add, Dst: dead, A: f.IntConst(1), B: f.IntConst(2)})
	b.Emit(ir.Instr{Op: ir.Mov, Dst: x, A: f.IntConst(3)})
	b.Emit(ir.Instr{Op: ir.Ret})
	if n := EliminateDeadTemps(f); n != 1 {
		t.Fatalf("eliminated = %d, want 1", n)
	}
	if f.NumInstrs() != 2 {
		t.Fatalf("instrs = %d, want 2", f.NumInstrs())
	}
}

func TestDeadVarNotEliminated(t *testing.T) {
	// Program variables are observable outputs; never delete their defs.
	f := compile(t, "program p; var unusedvar: int; begin unusedvar := 42; end")
	Run(f)
	if countOps(f, ir.Mov) == 0 {
		t.Fatal("assignment to a program variable was eliminated")
	}
}

func TestDeadLoadKeptWhenIndexUnknown(t *testing.T) {
	f := ir.NewFunc("m")
	arr := f.NewArray("a", 4, ir.Int)
	i := f.NewValue("i", ir.Int, ir.Var)
	dead := f.NewTemp(ir.Int)
	b := f.Blocks[0]
	b.Emit(ir.Instr{Op: ir.Load, Dst: dead, Arr: arr, Index: i})
	b.Emit(ir.Instr{Op: ir.Ret})
	if n := EliminateDeadTemps(f); n != 0 {
		t.Fatal("load with runtime index removed; its bounds check is observable")
	}
	// Constant in-range index: removable.
	f2 := ir.NewFunc("m2")
	arr2 := f2.NewArray("a", 4, ir.Int)
	dead2 := f2.NewTemp(ir.Int)
	f2.Blocks[0].Emit(ir.Instr{Op: ir.Load, Dst: dead2, Arr: arr2, Index: f2.IntConst(2)})
	f2.Blocks[0].Emit(ir.Instr{Op: ir.Ret})
	if n := EliminateDeadTemps(f2); n != 1 {
		t.Fatal("provably safe dead load not removed")
	}
}

func TestRunShrinks(t *testing.T) {
	f := compile(t, `program p; var s: int; var a: array[8] of int;
begin
  s := 1 + 2;
  for i := 0 to 7 do
    a[i] := s * 1 + 0 + i;
  end
end`)
	before := f.NumInstrs()
	res := Run(f)
	if f.NumInstrs() >= before {
		t.Fatalf("Run did not shrink: %d -> %d (%+v)", before, f.NumInstrs(), res)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

// randProgram emits a random but valid straight-line MPL program exercising
// the optimizer.
func randProgram(r *rand.Rand) string {
	vars := []string{"a", "b", "c", "d"}
	src := "program fz; var a, b, c, d: int;\nbegin\n"
	for i := 0; i < 3+r.Intn(12); i++ {
		dst := vars[r.Intn(len(vars))]
		x := vars[r.Intn(len(vars))]
		y := vars[r.Intn(len(vars))]
		ops := []string{"+", "-", "*"}
		switch r.Intn(4) {
		case 0:
			src += dst + " := " + x + " " + ops[r.Intn(3)] + " " + y + ";\n"
		case 1:
			src += dst + " := 3 " + ops[r.Intn(3)] + " 5;\n"
		case 2:
			src += dst + " := " + x + ";\n"
		default:
			src += dst + " := " + x + " * 2 + 1;\n"
		}
	}
	return src + "end\n"
}

// Property: optimization preserves the final values of all variables under
// direct IR interpretation (straight-line programs, so a simple sequential
// walk suffices).
func TestOptimizationPreservesSemanticsProperty(t *testing.T) {
	interp := func(f *ir.Func) map[string]int64 {
		env := make([]int64, len(f.Values))
		get := func(v *ir.Value) int64 {
			if v.Kind == ir.Const {
				return v.ConstInt
			}
			return env[v.ID]
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.Mov:
					env[in.Dst.ID] = get(in.A)
				case ir.Add:
					env[in.Dst.ID] = get(in.A) + get(in.B)
				case ir.Sub:
					env[in.Dst.ID] = get(in.A) - get(in.B)
				case ir.Mul:
					env[in.Dst.ID] = get(in.A) * get(in.B)
				}
			}
		}
		out := map[string]int64{}
		for _, v := range f.Values {
			if v.Kind == ir.Var {
				out[v.Name] = env[v.ID]
			}
		}
		return out
	}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randProgram(r)
		f1, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("generator produced invalid program: %v\n%s", err, src)
		}
		f2, err := lang.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		Run(f2)
		if err := f2.Validate(); err != nil {
			t.Logf("seed %d: invalid after opt: %v", seed, err)
			return false
		}
		w1, w2 := interp(f1), interp(f2)
		for k, v := range w1 {
			if w2[k] != v {
				t.Logf("seed %d: %s = %d before, %d after\n%s", seed, k, v, w2[k], src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldFloatArithmeticAndCompares(t *testing.T) {
	f := compile(t, `program p; var x, y: float; var b, c, d, e, g, h: int;
begin
  x := 1.5 + 2.5 * 2.0 - 1.0 / 4.0;
  y := -(2.5);
  b := 1.5 < 2.5;
  c := 2.5 <= 2.5;
  d := 3.5 > 2.5;
  e := 2.5 >= 3.5;
  g := 1.5 = 1.5;
  h := 1.5 <> 1.5;
end`)
	Run(f)
	for _, op := range []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Neg,
		ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.Eq, ir.Ne} {
		if countOps(f, op) != 0 {
			t.Fatalf("%v not folded:\n%s", op, f)
		}
	}
}

func TestFoldIntCompares(t *testing.T) {
	f := compile(t, `program p; var b, c, d, e, g, h: int;
begin
  b := 1 < 2;
  c := 2 <= 2;
  d := 3 > 2;
  e := 2 >= 3;
  g := 1 = 1;
  h := 1 <> 1;
end`)
	Run(f)
	for _, op := range []ir.Op{ir.Lt, ir.Le, ir.Gt, ir.Ge, ir.Eq, ir.Ne} {
		if countOps(f, op) != 0 {
			t.Fatalf("%v not folded:\n%s", op, f)
		}
	}
}

func TestFoldIntDivMod(t *testing.T) {
	f := compile(t, `program p; var a, b: int; begin a := 17 / 5; b := 17 % 5; end`)
	Run(f)
	if countOps(f, ir.Div) != 0 || countOps(f, ir.Mod) != 0 {
		t.Fatalf("div/mod not folded:\n%s", f)
	}
	// Check the folded constants flow into the assignments.
	found := map[string]int64{}
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Op == ir.Mov && in.Dst.Kind == ir.Var && in.A.Kind == ir.Const {
				found[in.Dst.Name] = in.A.ConstInt
			}
		}
	}
	if found["a"] != 3 || found["b"] != 2 {
		t.Fatalf("constants = %v, want a=3 b=2", found)
	}
}

func TestFoldNegInt(t *testing.T) {
	f := compile(t, `program p; var a: int; begin a := -(7); end`)
	Run(f)
	if countOps(f, ir.Neg) != 0 {
		t.Fatalf("neg not folded:\n%s", f)
	}
}

func TestFoldNotNonzero(t *testing.T) {
	f := compile(t, `program p; var a: int; begin a := not 5; end`)
	Run(f)
	if countOps(f, ir.Not) != 0 {
		t.Fatalf("not not folded:\n%s", f)
	}
}

func TestFoldMixedIntFloatCompare(t *testing.T) {
	// int-float comparison folds in the float domain.
	f := compile(t, `program p; var b: int; begin b := 1 < 1.5; end`)
	Run(f)
	if countOps(f, ir.Lt) != 0 {
		t.Fatalf("mixed compare not folded:\n%s", f)
	}
}
