// Package budget bounds the expensive phases of the compilation pipeline.
//
// The paper's backtracking duplication (Fig. 6) is an exhaustive placement
// search — exponential in the worst case — and the exact colorers and
// branch-and-bound tools share that shape. A production compiler cannot let
// any of them run open-ended: every search gets a Budget of nodes and wall
// clock, every loop honors context cancellation, and when a budget runs out
// the caller degrades to a cheaper polynomial strategy instead of hanging.
//
// The package is a leaf: assign, duplication and machine all consume it, and
// the parmem root re-exports its types as the public error taxonomy.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// DefaultMaxBacktrackNodes is the search-node budget applied when
// Budget.MaxBacktrackNodes is zero. It is far beyond what any of the
// paper's benchmarks need (they finish in thousands of nodes) while keeping
// the worst-case exponential search bounded to well under a second.
const DefaultMaxBacktrackNodes = 1 << 22

// Budget caps the expensive phases of one compilation. The zero value picks
// safe defaults; explicit negative values lift a cap entirely.
type Budget struct {
	// MaxBacktrackNodes bounds the search nodes a duplication phase may
	// expand, summed over all phases of one assignment (the backtracking
	// search of Fig. 6 counts one node per recursive placement step; the
	// hitting-set approach counts its combination and placement work in the
	// same currency). 0 means DefaultMaxBacktrackNodes; negative means
	// unlimited. On exhaustion the phase degrades to a cheaper strategy and
	// the allocation is marked Degraded — it never fails.
	MaxBacktrackNodes int64
	// MaxDuplicationTime bounds the wall-clock time of the duplication
	// phases of one assignment. 0 means unlimited. Exhaustion degrades
	// exactly like node exhaustion.
	MaxDuplicationTime time.Duration
	// MaxCycles bounds simulated machine cycles in Run. 0 means unlimited
	// (the simulator's MaxWords runaway guard still applies); exceeding a
	// positive cap aborts the run with an error wrapping ErrBudget.
	MaxCycles int64
}

// BacktrackNodes resolves the node cap: the default for 0, -1 for
// "unlimited".
func (b Budget) BacktrackNodes() int64 {
	switch {
	case b.MaxBacktrackNodes < 0:
		return -1
	case b.MaxBacktrackNodes == 0:
		return DefaultMaxBacktrackNodes
	default:
		return b.MaxBacktrackNodes
	}
}

// ErrCanceled reports that a context canceled compilation mid-phase.
// Errors returned on that path wrap it: test with errors.Is.
var ErrCanceled = errors.New("canceled")

// ErrBudget reports that a phase exhausted its node, time or cycle budget.
// Where a cheaper fallback exists the phase degrades instead of returning
// it; it surfaces only where no correct cheaper answer exists (the
// simulator's cycle cap).
var ErrBudget = errors.New("budget exhausted")

// InternalError is a recovered internal invariant panic. The public API
// boundaries convert panics into *InternalError so that no call can escape
// a panic; Phase names the pipeline stage that failed.
type InternalError struct {
	Phase string // pipeline stage, e.g. "compile", "assign/stor2/region1"
	Value any    // the recovered panic value
	Stack []byte // stack trace captured at recovery
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("parmem: internal error in %s: %v", e.Phase, e.Value)
}

// Meter charges search work against a Budget and polls for cancellation.
// A nil *Meter is valid and meters nothing. A Meter is safe for concurrent
// use: the parallel assignment engine shares one meter across its worker
// pool, so the node budget caps the *total* search work of an assignment no
// matter how many goroutines spend against it. Each compilation owns one.
type Meter struct {
	ctx       context.Context
	maxNodes  int64 // <0 = unlimited
	spent     atomic.Int64
	start     time.Time
	deadline  time.Time // zero = no deadline
	exhausted atomic.Bool
}

// NewMeter builds a meter over ctx with the given node cap (<0 unlimited)
// and wall-clock cap (0 unlimited). A nil ctx means context.Background().
func NewMeter(ctx context.Context, maxNodes int64, maxTime time.Duration) *Meter {
	if ctx == nil {
		ctx = context.Background()
	}
	m := &Meter{ctx: ctx, maxNodes: maxNodes, start: time.Now()}
	if maxTime > 0 {
		m.deadline = m.start.Add(maxTime)
	}
	return m
}

// CancelOnly derives a meter that still honors cancellation but has no node
// or time cap — the degradation path must run to completion, yet a canceled
// caller must still be able to abort it.
func (m *Meter) CancelOnly() *Meter {
	if m == nil {
		return nil
	}
	return &Meter{ctx: m.ctx, maxNodes: -1, start: time.Now()}
}

// Spend charges n nodes. It returns nil while the budget holds, an error
// wrapping ErrBudget once the node or time cap is exhausted, and an error
// wrapping ErrCanceled when the context is done. The clock and the context
// are only polled every ~1k nodes (and on the first spend), so the search
// hot loop stays cheap. Spend is safe to call from several goroutines; the
// cap applies to their combined total.
func (m *Meter) Spend(n int64) error {
	if m == nil {
		return nil
	}
	now := m.spent.Add(n)
	prev := now - n
	if m.exhausted.Load() {
		return fmt.Errorf("%w: node budget", ErrBudget)
	}
	if m.maxNodes >= 0 && now > m.maxNodes {
		m.exhausted.Store(true)
		return fmt.Errorf("%w: %d search nodes", ErrBudget, m.maxNodes)
	}
	if prev == 0 || prev>>10 != now>>10 {
		return m.Check()
	}
	return nil
}

// Check polls the context and the deadline without charging nodes.
func (m *Meter) Check() error {
	if m == nil {
		return nil
	}
	if err := m.Canceled(); err != nil {
		return err
	}
	if !m.deadline.IsZero() && time.Now().After(m.deadline) {
		m.exhausted.Store(true)
		return fmt.Errorf("%w: exceeded %v time budget", ErrBudget, m.deadline.Sub(m.start))
	}
	return nil
}

// Canceled polls only the context: it returns an error wrapping
// ErrCanceled when the context is done and nil otherwise, regardless of
// budget state. Phase boundaries use it to abort on cancellation while
// letting budget exhaustion flow into the degradation path.
func (m *Meter) Canceled() error {
	if m == nil {
		return nil
	}
	if err := m.ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	return nil
}

// Spent returns the nodes charged so far.
func (m *Meter) Spent() int64 {
	if m == nil {
		return 0
	}
	return m.spent.Load()
}

// Elapsed returns the wall-clock time since the meter was created.
func (m *Meter) Elapsed() time.Duration {
	if m == nil {
		return 0
	}
	return time.Since(m.start)
}

// Exhausted reports whether a node or time cap has been hit.
func (m *Meter) Exhausted() bool { return m != nil && m.exhausted.Load() }
