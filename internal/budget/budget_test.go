package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBacktrackNodesResolution(t *testing.T) {
	if got := (Budget{}).BacktrackNodes(); got != DefaultMaxBacktrackNodes {
		t.Fatalf("zero budget resolves to %d, want default %d", got, DefaultMaxBacktrackNodes)
	}
	if got := (Budget{MaxBacktrackNodes: -5}).BacktrackNodes(); got != -1 {
		t.Fatalf("negative budget resolves to %d, want -1", got)
	}
	if got := (Budget{MaxBacktrackNodes: 7}).BacktrackNodes(); got != 7 {
		t.Fatalf("explicit budget resolves to %d, want 7", got)
	}
}

func TestNilMeterIsInert(t *testing.T) {
	var m *Meter
	if err := m.Spend(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if err := m.Canceled(); err != nil {
		t.Fatal(err)
	}
	if m.Spent() != 0 || m.Elapsed() != 0 || m.Exhausted() {
		t.Fatal("nil meter reported state")
	}
	if m.CancelOnly() != nil {
		t.Fatal("CancelOnly of nil must stay nil")
	}
}

func TestMeterNodeCap(t *testing.T) {
	m := NewMeter(context.Background(), 10, 0)
	for i := 0; i < 10; i++ {
		if err := m.Spend(1); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}
	err := m.Spend(1)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if !m.Exhausted() {
		t.Fatal("meter not marked exhausted")
	}
	if m.Spent() != 11 {
		t.Fatalf("spent = %d, want 11", m.Spent())
	}
	// Exhaustion is sticky.
	if err := m.Spend(1); !errors.Is(err, ErrBudget) {
		t.Fatalf("second overdraw: %v, want ErrBudget", err)
	}
}

func TestMeterUnlimited(t *testing.T) {
	m := NewMeter(context.Background(), -1, 0)
	if err := m.Spend(1 << 30); err != nil {
		t.Fatal(err)
	}
	if m.Exhausted() {
		t.Fatal("unlimited meter exhausted")
	}
}

func TestMeterDeadline(t *testing.T) {
	m := NewMeter(context.Background(), -1, time.Nanosecond)
	time.Sleep(time.Millisecond)
	if err := m.Check(); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// An expired deadline is a budget matter, not a cancellation.
	if err := m.Canceled(); err != nil {
		t.Fatalf("Canceled() = %v, want nil", err)
	}
}

func TestMeterCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewMeter(ctx, 1<<20, 0)
	if err := m.Spend(1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("first spend: %v, want ErrCanceled (polled on first spend)", err)
	}
	if err := m.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Check: %v, want ErrCanceled", err)
	}
	if err := m.Canceled(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Canceled: %v, want ErrCanceled", err)
	}
}

func TestCancelOnlyLiftsCapsKeepsCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := NewMeter(ctx, 1, time.Nanosecond)
	fb := m.CancelOnly()
	if err := fb.Spend(1 << 20); err != nil {
		t.Fatalf("fallback meter must be uncapped: %v", err)
	}
	cancel()
	if err := fb.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("fallback meter must stay cancelable: %v", err)
	}
}

func TestSpendPollsPeriodically(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := NewMeter(ctx, -1, 0)
	if err := m.Spend(1); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Within one 1024-node block no poll happens...
	if err := m.Spend(1); err != nil {
		t.Fatalf("intra-block spend polled: %v", err)
	}
	// ...but crossing a block boundary must observe the cancellation.
	var err error
	for i := 0; i < 2048 && err == nil; i++ {
		err = m.Spend(1)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled within one poll block", err)
	}
}

func TestInternalErrorMessage(t *testing.T) {
	e := &InternalError{Phase: "assign/stor1", Value: "boom"}
	msg := e.Error()
	for _, want := range []string{"assign/stor1", "boom", "internal error"} {
		if !contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
