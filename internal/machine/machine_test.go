package machine

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"parmem/internal/assign"
	"parmem/internal/dfa"
	"parmem/internal/duplication"
	"parmem/internal/lang"
	"parmem/internal/memory"
	"parmem/internal/sched"
)

// build compiles MPL source, renames, schedules for k modules, and runs
// memory-module assignment, returning everything a simulation needs.
func build(t *testing.T, src string, k int) (*sched.Program, duplication.Copies) {
	t.Helper()
	f, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, _, err := dfa.Rename(f); err != nil {
		t.Fatal(err)
	}
	p, err := sched.Schedule(f, sched.Config{Modules: k, Units: k})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	prog := assign.Program{Instrs: p.Instructions(), RegionOf: p.RegionOf}
	al, err := assign.Assign(prog, assign.Options{K: k})
	if err != nil {
		t.Fatalf("assign: %v", err)
	}
	if bad := assign.Verify(prog, al); bad != nil {
		t.Fatalf("allocation leaves conflicts: %v", bad)
	}
	return p, al.Copies
}

func run(t *testing.T, src string, k int, opt Options) *Result {
	t.Helper()
	p, copies := build(t, src, k)
	res, err := Run(p, copies, opt)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestFactorial(t *testing.T) {
	res := run(t, `
program fact;
var n, f: int;
begin
  n := 10;
  f := 1;
  while n > 1 do
    f := f * n;
    n := n - 1;
  end
end`, 4, Options{})
	got, ok := res.Scalar("f")
	if !ok || got != 3628800 {
		t.Fatalf("10! = %v (ok=%v), want 3628800", got, ok)
	}
}

func TestFibonacciArray(t *testing.T) {
	res := run(t, `
program fib;
var fib: array[20] of int;
begin
  fib[0] := 0;
  fib[1] := 1;
  for i := 2 to 19 do
    fib[i] := fib[i-1] + fib[i-2];
  end
end`, 4, Options{})
	arr, ok := res.Array("fib")
	if !ok {
		t.Fatal("array fib missing")
	}
	want := []float64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987, 1597, 2584, 4181}
	for i, w := range want {
		if arr[i] != w {
			t.Fatalf("fib[%d] = %v, want %v", i, arr[i], w)
		}
	}
}

func TestFloatMath(t *testing.T) {
	res := run(t, `
program flo;
var x, y: float;
var n: int;
begin
  n := 3;
  x := 2.5;
  y := x * n + 0.5;
  x := y / 2.0 - 1.0;
end`, 4, Options{})
	y, _ := res.Scalar("y")
	if math.Abs(y-8.0) > 1e-12 {
		t.Fatalf("y = %v, want 8.0", y)
	}
	x, _ := res.Scalar("x")
	if math.Abs(x-3.0) > 1e-12 {
		t.Fatalf("x = %v, want 3.0", x)
	}
}

func TestIfElse(t *testing.T) {
	res := run(t, `
program sel;
var a, b, r: int;
begin
  a := 7;
  b := 9;
  if a > b then
    r := a;
  else
    r := b;
  end
end`, 4, Options{})
	r, _ := res.Scalar("r")
	if r != 9 {
		t.Fatalf("max = %v, want 9", r)
	}
}

func TestModAndLogic(t *testing.T) {
	res := run(t, `
program ml;
var n, evens: int;
begin
  evens := 0;
  for i := 1 to 20 do
    if (i % 2 = 0) and (i < 15) then
      evens := evens + 1;
    end
  end
end`, 4, Options{})
	e, _ := res.Scalar("evens")
	if e != 7 {
		t.Fatalf("evens = %v, want 7 (2,4,...,14)", e)
	}
}

func TestInitScalarsAndArrays(t *testing.T) {
	p, copies := build(t, `
program init;
var x, y: int;
var a: array[4] of float;
var s: float;
begin
  y := x * 2;
  s := a[0] + a[1] + a[2] + a[3];
end`, 4)
	res, err := Run(p, copies, Options{
		InitScalars: map[string]float64{"x": 21},
		InitArrays:  map[string][]float64{"a": {1, 2, 3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	y, _ := res.Scalar("y")
	if y != 42 {
		t.Fatalf("y = %v, want 42", y)
	}
	s, _ := res.Scalar("s")
	if s != 10 {
		t.Fatalf("s = %v, want 10", s)
	}
}

func TestInitErrors(t *testing.T) {
	p, copies := build(t, "program p; var x: int; begin x := 1; end", 4)
	if _, err := Run(p, copies, Options{InitScalars: map[string]float64{"nope": 1}}); err == nil {
		t.Fatal("unknown scalar must fail")
	}
	if _, err := Run(p, copies, Options{InitArrays: map[string][]float64{"nope": {1}}}); err == nil {
		t.Fatal("unknown array must fail")
	}
}

func TestOutOfBounds(t *testing.T) {
	p, copies := build(t, `
program oob;
var a: array[4] of int;
var i: int;
begin
  i := 9;
  a[i] := 1;
end`, 4)
	if _, err := Run(p, copies, Options{}); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("want bounds error, got %v", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	p, copies := build(t, `
program dz;
var a, b: int;
begin
  b := 0;
  a := 1 / b;
end`, 4)
	if _, err := Run(p, copies, Options{}); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("want division error, got %v", err)
	}
}

func TestMaxWordsGuard(t *testing.T) {
	p, copies := build(t, `
program spin;
var x: int;
begin
  x := 1;
  while x > 0 do
    x := x + 1;
  end
end`, 4)
	if _, err := Run(p, copies, Options{MaxWords: 1000}); err == nil || !strings.Contains(err.Error(), "dynamic words") {
		t.Fatalf("want word-budget error, got %v", err)
	}
}

const arrayHeavy = `
program ah;
var a, b: array[64] of int;
var s: int;
begin
  for i := 0 to 63 do
    a[i] := i;
  end
  s := 0;
  for i := 0 to 63 do
    b[i] := a[i] * 2;
    s := s + b[i];
  end
end`

func TestNoScalarConflictsWithValidAllocation(t *testing.T) {
	res := run(t, arrayHeavy, 8, Options{})
	if res.ScalarConflicts != 0 {
		t.Fatalf("scalar conflicts = %d with a verified allocation", res.ScalarConflicts)
	}
	s, _ := res.Scalar("s")
	if s != 2*(63*64/2) {
		t.Fatalf("s = %v, want %v", s, 2*(63*64/2))
	}
}

func TestSingleModuleLayoutStallsMore(t *testing.T) {
	p, copies := build(t, arrayHeavy, 8)
	inter, err := Run(p, copies, Options{Layout: memory.Interleaved{K: 8}})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(p, copies, Options{Layout: memory.SingleModule{M: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if single.Stalls < inter.Stalls {
		t.Fatalf("single-module stalls %d < interleaved stalls %d", single.Stalls, inter.Stalls)
	}
	if single.TransferTime <= single.MemWords {
		t.Fatal("single-module layout should conflict at least once in this program")
	}
	// Results must be identical regardless of layout.
	s1, _ := inter.Scalar("s")
	s2, _ := single.Scalar("s")
	if s1 != s2 {
		t.Fatalf("layout changed program semantics: %v vs %v", s1, s2)
	}
}

func TestSpeedupOverSequential(t *testing.T) {
	res := run(t, arrayHeavy, 8, Options{})
	if res.Speedup() <= 1.0 {
		t.Fatalf("speedup = %.2f, want > 1 (the whole point of the LIW machine)", res.Speedup())
	}
	if res.DynamicOps <= res.DynamicWords {
		t.Fatal("words must pack more than one op on average for this program")
	}
}

func TestProfilesAggregated(t *testing.T) {
	res := run(t, arrayHeavy, 8, Options{})
	if len(res.Profiles) == 0 {
		t.Fatal("no profiles recorded")
	}
	var totalCount int64
	hasArrays := false
	for _, pr := range res.Profiles {
		totalCount += pr.Count
		if pr.ArrayOps > 0 {
			hasArrays = true
		}
	}
	if totalCount != res.MemWords {
		t.Fatalf("profile counts %d != MemWords %d", totalCount, res.MemWords)
	}
	if !hasArrays {
		t.Fatal("array-heavy program must record array profiles")
	}
}

func TestCycleAccounting(t *testing.T) {
	res := run(t, arrayHeavy, 8, Options{})
	if res.Cycles != res.DynamicWords+res.Stalls {
		t.Fatalf("cycles %d != words %d + stalls %d", res.Cycles, res.DynamicWords, res.Stalls)
	}
	if res.TransferTime != res.MemWords+res.Stalls {
		t.Fatalf("transfer %d != memwords %d + stalls %d", res.TransferTime, res.MemWords, res.Stalls)
	}
}

func TestScalarMissing(t *testing.T) {
	res := run(t, "program p; var x: int; begin x := 1; end", 4, Options{})
	if _, ok := res.Scalar("zzz"); ok {
		t.Fatal("unknown scalar must report !ok")
	}
	if _, ok := res.Array("zzz"); ok {
		t.Fatal("unknown array must report !ok")
	}
}

func TestRenamedScalarReadback(t *testing.T) {
	// x splits into webs; Scalar must still retrieve the final value.
	res := run(t, `
program rn;
var x, a, b: int;
begin
  x := 1;
  a := x + 1;
  x := 50;
  b := x + 1;
end`, 4, Options{})
	b, _ := res.Scalar("b")
	if b != 51 {
		t.Fatalf("b = %v, want 51", b)
	}
	x, ok := res.Scalar("x")
	if !ok || x != 50 {
		t.Fatalf("x = %v (ok=%v), want 50", x, ok)
	}
}

func TestNestedLoops(t *testing.T) {
	res := run(t, `
program mm;
var c: array[16] of int;
var acc: int;
begin
  for i := 0 to 3 do
    for j := 0 to 3 do
      acc := 0;
      for k := 0 to 3 do
        acc := acc + (i*4+k) * (k*4+j);
      end
      c[i*4+j] := acc;
    end
  end
end`, 8, Options{})
	// c = A*B with A[i][k] = i*4+k and B[k][j] = k*4+j.
	arr, _ := res.Array("c")
	// Check one entry by hand: c[0][0] = sum_k k*(4k) = 4*(0+1+4+9) = 56.
	if arr[0] != 56 {
		t.Fatalf("c[0] = %v, want 56", arr[0])
	}
	// c[3][3]: sum_k (12+k)*(k*4+3) = 12*3+13*7+14*11+15*15 = 36+91+154+225 = 506.
	if arr[15] != 506 {
		t.Fatalf("c[15] = %v, want 506", arr[15])
	}
}

func TestCountWritesIncreasesTraffic(t *testing.T) {
	p, copies := build(t, arrayHeavy, 8)
	base, err := Run(p, copies, Options{})
	if err != nil {
		t.Fatal(err)
	}
	writes, err := Run(p, copies, Options{CountWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if writes.TransferTime <= base.TransferTime {
		t.Fatalf("write accounting must increase transfer time: %d vs %d",
			writes.TransferTime, base.TransferTime)
	}
	// Semantics unchanged.
	s1, _ := base.Scalar("s")
	s2, _ := writes.Scalar("s")
	if s1 != s2 {
		t.Fatalf("accounting changed semantics: %v vs %v", s1, s2)
	}
}

func TestTraceOutput(t *testing.T) {
	p, copies := build(t, "program p; var x: int; begin x := 1 + 2; end", 4)
	var buf bytes.Buffer
	if _, err := Run(p, copies, Options{Trace: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "w0 b0") || !strings.Contains(out, "[ret]") {
		t.Fatalf("trace missing expected lines:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines < 2 {
		t.Fatalf("trace lines = %d", lines)
	}
}
