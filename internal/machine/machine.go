// Package machine is a cycle-level simulator of the paper's lock-step LIW
// machine: functional units execute the operations of each long instruction
// word together, fetching every memory-resident operand from the parallel
// memory modules in the same cycle.
//
// Scalar fetches are routed by the compile-time allocation (each value may
// have copies in several modules; the hardware picks a conflict-free
// matching when one exists). Array element accesses are routed by the
// array Layout, because their indices are runtime values — these are the
// accesses the compiler cannot predict and Table 2 quantifies.
//
// A word whose module sees m accesses stalls the machine m-1 extra cycles
// (every transfer costs Δ; Δ is the unit of all reported times).
package machine

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"

	"parmem/internal/budget"
	"parmem/internal/duplication"
	"parmem/internal/faultinject"
	"parmem/internal/ir"
	"parmem/internal/memory"
	"parmem/internal/sched"
)

// Options configures a simulation run.
type Options struct {
	// Layout routes array element accesses; required when the program
	// touches arrays. Defaults to interleaving across the machine's
	// modules.
	Layout memory.Layout
	// MaxWords bounds dynamic execution (runaway-loop guard). Default 50M.
	MaxWords int64
	// Ctx cancels a running simulation; nil means context.Background().
	// The word loop polls it every few thousand words and aborts with an
	// error wrapping budget.ErrCanceled.
	Ctx context.Context
	// MaxCycles bounds total simulated cycles (issue cycles plus stalls);
	// 0 means unlimited. Exceeding it aborts with an error wrapping
	// budget.ErrBudget — unlike compilation there is no cheaper correct
	// answer to degrade to, a partial simulation is not a result.
	MaxCycles int64
	// InitScalars presets named scalar variables before execution.
	InitScalars map[string]float64
	// InitArrays presets named arrays before execution.
	InitArrays map[string][]float64
	// Trace, when non-nil, receives one line per executed word:
	// "w<index> b<block>  [op] [op] ...". For debugging and the
	// parmemc -trace flag; tracing does not affect results.
	Trace io.Writer
	// CountWrites adds result write-backs to the per-module traffic. The
	// paper's model counts operand fetches only (write-backs are buffered
	// a cycle behind on the RLIW); enabling this is the pessimistic
	// variant used by the write-contention ablation. A scalar result is
	// written to every module holding a copy of the destination value.
	CountWrites bool
}

// Profile aggregates the dynamic memory behaviour of one word shape: which
// modules its scalar fetches used and how many array accesses it performed.
// internal/stats consumes profiles to compute the paper's t_min, t_ave and
// t_max analytically.
type Profile struct {
	ScalarModules []int // sorted distinct modules used by scalar fetches
	ArrayOps      int   // array accesses in the word
	Count         int64 // dynamic occurrences
}

// Result is the outcome of a run.
type Result struct {
	// DynamicWords is the number of long instruction words executed.
	DynamicWords int64
	// DynamicOps is the number of operations executed — the cycle count of
	// a sequential machine running the same program.
	DynamicOps int64
	// MemWords counts words with at least one memory access; each costs at
	// least Δ of transfer time (this is the paper's t_min).
	MemWords int64
	// TransferTime is Δ-weighted transfer time under the configured
	// layout: the sum over words of the maximum per-module access count.
	TransferTime int64
	// Stalls = TransferTime − MemWords: extra cycles lost to conflicts.
	Stalls int64
	// Cycles is total execution time: one issue cycle per word plus
	// stalls.
	Cycles int64
	// ScalarConflicts counts words whose scalar fetches could not be
	// matched to distinct modules. Zero whenever the allocation verified.
	ScalarConflicts int64
	// Profiles aggregates dynamic word shapes for the analytic model.
	Profiles map[string]*Profile

	fn   *ir.Func
	vals []word
	arrs [][]word
	// lastWrite maps a base variable name to the renamed web that was
	// written last in program terms — that web holds the variable's final
	// value even when renaming split it (e.g. after unrolling). "Last in
	// program terms" means: later dynamic basic-block execution wins;
	// within one block execution, higher original program position (Seq)
	// wins, because the scheduler may legally reorder independent writes
	// to different webs across words.
	lastWrite map[string]lastWriteInfo
}

type lastWriteInfo struct {
	id    int   // value id of the web
	epoch int64 // dynamic block-execution counter
	seq   int   // original program position
}

// baseName strips a renaming suffix: "s.3" -> "s", "s" -> "s".
func baseName(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		c := name[i]
		if c == '.' {
			if i > 0 && i < len(name)-1 {
				return name[:i]
			}
			return name
		}
		if c < '0' || c > '9' {
			return name
		}
	}
	return name
}

type word struct {
	i int64
	f float64
}

// Run executes p under the storage allocation copies.
//
// Run never panics on internal invariant violations: they are recovered
// and returned as a *budget.InternalError with phase "machine". A canceled
// opt.Ctx aborts the word loop with an error wrapping budget.ErrCanceled;
// exceeding opt.MaxCycles aborts with an error wrapping budget.ErrBudget.
func Run(p *sched.Program, copies duplication.Copies, opt Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &budget.InternalError{Phase: "machine", Value: r, Stack: debug.Stack()}
		}
	}()
	faultinject.Check("machine.run")
	f := p.F
	if opt.MaxWords == 0 {
		opt.MaxWords = 50_000_000
	}
	if opt.Layout == nil {
		opt.Layout = memory.Interleaved{K: p.Config.Modules}
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res = &Result{Profiles: map[string]*Profile{}, fn: f, lastWrite: map[string]lastWriteInfo{}}
	res.vals = make([]word, len(f.Values))
	res.arrs = make([][]word, len(f.Arrays))
	for i, a := range f.Arrays {
		res.arrs[i] = make([]word, a.Size)
	}
	for name, x := range opt.InitScalars {
		// Initialize every web of the variable: a web's uses are only ever
		// reached by its own definitions, so presetting all of them is
		// equivalent to presetting the initial value.
		found := false
		for _, v := range f.Values {
			if v.Kind != ir.Const && baseName(v.Name) == name {
				res.setVal(v, x)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("machine: no scalar %q to initialize", name)
		}
	}
	for name, xs := range opt.InitArrays {
		var arr *ir.Array
		for _, a := range f.Arrays {
			if a.Name == name {
				arr = a
			}
		}
		if arr == nil {
			return nil, fmt.Errorf("machine: no array %q to initialize", name)
		}
		if len(xs) > arr.Size {
			return nil, fmt.Errorf("machine: initializer for %q has %d elements, array holds %d", name, len(xs), arr.Size)
		}
		for i, x := range xs {
			if arr.Type == ir.Float {
				res.arrs[arr.ID][i] = word{f: x}
			} else {
				res.arrs[arr.ID][i] = word{i: int64(x)}
			}
		}
	}

	wi := int64(0)    // word index (program counter)
	epoch := int64(0) // dynamic basic-block execution counter
	curBlock := -1
	for wi >= 0 && wi < int64(len(p.Words)) {
		if res.DynamicWords >= opt.MaxWords {
			return nil, fmt.Errorf("machine: exceeded %d dynamic words (likely an infinite loop)", opt.MaxWords)
		}
		if res.DynamicWords&4095 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return nil, fmt.Errorf("machine: %w after %d words: %v", budget.ErrCanceled, res.DynamicWords, cerr)
			}
		}
		if opt.MaxCycles > 0 && res.DynamicWords+res.Stalls >= opt.MaxCycles {
			return nil, fmt.Errorf("machine: %w: exceeded %d cycles", budget.ErrBudget, opt.MaxCycles)
		}
		w := &p.Words[wi]
		if w.Block != curBlock {
			curBlock = w.Block
			epoch++
		}
		res.DynamicWords++
		res.DynamicOps += int64(len(w.Ops))
		if opt.Trace != nil {
			var sb strings.Builder
			fmt.Fprintf(&sb, "w%d b%d ", wi, w.Block)
			for oi := range w.Ops {
				sb.WriteString(" [")
				sb.WriteString(w.Ops[oi].String())
				sb.WriteString("]")
			}
			sb.WriteByte('\n')
			if _, err := io.WriteString(opt.Trace, sb.String()); err != nil {
				return nil, fmt.Errorf("machine: trace write: %w", err)
			}
		}

		// ---- Memory accounting for this word.
		load := map[int]int{}
		scalars := w.MemUses()
		match, ok := duplication.MatchModules(scalars, copies)
		if !ok {
			res.ScalarConflicts++
		}
		for _, v := range scalars {
			m, has := match[v]
			if !has {
				return nil, fmt.Errorf("machine: value %s (id %d) has no storage allocation", f.Values[v].Name, v)
			}
			load[m]++
		}
		var scalarMods []int
		for m := range load {
			scalarMods = append(scalarMods, m)
		}
		sort.Ints(scalarMods)
		arrayOps := 0
		for oi := range w.Ops {
			op := &w.Ops[oi]
			if op.Op == ir.Load || op.Op == ir.Store {
				idx := res.getInt(op.Index)
				load[opt.Layout.ModuleOf(op.Arr.ID, int(idx))]++
				arrayOps++
			}
			if opt.CountWrites {
				// Scalar results are written back to every module holding a
				// copy of the destination. (Array stores already counted
				// above: the store access IS the write.)
				if d := op.Def(); d != nil && d.IsMem() {
					for _, m := range copies[d.ID].Modules() {
						load[m]++
					}
				}
			}
		}
		if len(load) > 0 {
			maxLoad := 0
			for _, c := range load {
				if c > maxLoad {
					maxLoad = c
				}
			}
			res.MemWords++
			res.TransferTime += int64(maxLoad)
			res.Stalls += int64(maxLoad - 1)
			key := profileKey(scalarMods, arrayOps)
			pr := res.Profiles[key]
			if pr == nil {
				pr = &Profile{ScalarModules: scalarMods, ArrayOps: arrayOps}
				res.Profiles[key] = pr
			}
			pr.Count++
		}

		// ---- Execute: all reads happen before any write (lock-step).
		type writeback struct {
			dst *ir.Value
			arr *ir.Array
			idx int64
			val word
			seq int
		}
		var writes []writeback
		next := wi + 1
		halted := false
		for oi := range w.Ops {
			op := &w.Ops[oi]
			switch op.Op {
			case ir.Nop:
			case ir.Ret:
				halted = true
			case ir.Jmp:
				next = int64(p.BlockStart[op.Target])
			case ir.Br:
				if res.getInt(op.A) != 0 {
					next = int64(p.BlockStart[op.Target])
				}
			case ir.Load:
				idx := res.getInt(op.Index)
				if idx < 0 || idx >= int64(op.Arr.Size) {
					return nil, fmt.Errorf("machine: %s[%d] out of bounds (size %d)", op.Arr.Name, idx, op.Arr.Size)
				}
				writes = append(writes, writeback{dst: op.Dst, val: res.arrs[op.Arr.ID][idx], seq: op.Seq})
			case ir.Store:
				idx := res.getInt(op.Index)
				if idx < 0 || idx >= int64(op.Arr.Size) {
					return nil, fmt.Errorf("machine: %s[%d] out of bounds (size %d)", op.Arr.Name, idx, op.Arr.Size)
				}
				var val word
				if op.Arr.Type == ir.Float {
					val = word{f: res.getFloat(op.A)}
				} else {
					val = word{i: res.getInt(op.A)}
				}
				writes = append(writes, writeback{arr: op.Arr, idx: idx, val: val, seq: op.Seq})
			default:
				v, err := res.compute(op)
				if err != nil {
					return nil, err
				}
				writes = append(writes, writeback{dst: op.Dst, val: v, seq: op.Seq})
			}
		}
		// Commit in original program order: results within a word are
		// independent, but observations of "the last write to x" must not
		// depend on how the scheduler packed the word.
		sort.Slice(writes, func(a, b int) bool { return writes[a].seq < writes[b].seq })
		for _, wb := range writes {
			if wb.arr != nil {
				res.arrs[wb.arr.ID][wb.idx] = wb.val
			} else if wb.dst != nil {
				if wb.dst.Type == ir.Float {
					res.vals[wb.dst.ID] = word{f: wb.val.f}
				} else {
					res.vals[wb.dst.ID] = word{i: wb.val.i}
				}
				if wb.dst.Kind == ir.Var {
					key := baseName(wb.dst.Name)
					prev, seen := res.lastWrite[key]
					if !seen || epoch > prev.epoch || (epoch == prev.epoch && wb.seq >= prev.seq) {
						res.lastWrite[key] = lastWriteInfo{id: wb.dst.ID, epoch: epoch, seq: wb.seq}
					}
				}
			}
		}
		if halted {
			break
		}
		if next != wi+1 {
			// A taken branch starts a new block execution even when the
			// target is the current block (self-loop).
			curBlock = -1
		}
		wi = next
	}
	res.Cycles = res.DynamicWords + res.Stalls
	return res, nil
}

// compute evaluates a non-memory, non-control op.
func (r *Result) compute(op *ir.Instr) (word, error) {
	isFloat := op.Dst != nil && op.Dst.Type == ir.Float
	if op.Op.IsCompare() {
		// Compare in float domain if either side is float.
		if (op.A != nil && op.A.Type == ir.Float) || (op.B != nil && op.B.Type == ir.Float) {
			a, b := r.getFloat(op.A), r.getFloat(op.B)
			return word{i: b2i(cmpFloat(op.Op, a, b))}, nil
		}
		a, b := r.getInt(op.A), r.getInt(op.B)
		return word{i: b2i(cmpInt(op.Op, a, b))}, nil
	}
	switch op.Op {
	case ir.Mov:
		if isFloat {
			return word{f: r.getFloat(op.A)}, nil
		}
		return word{i: r.getInt(op.A)}, nil
	case ir.Neg:
		if isFloat {
			return word{f: -r.getFloat(op.A)}, nil
		}
		return word{i: -r.getInt(op.A)}, nil
	case ir.Not:
		if r.getInt(op.A) == 0 {
			return word{i: 1}, nil
		}
		return word{i: 0}, nil
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod:
		if isFloat {
			a, b := r.getFloat(op.A), r.getFloat(op.B)
			switch op.Op {
			case ir.Add:
				return word{f: a + b}, nil
			case ir.Sub:
				return word{f: a - b}, nil
			case ir.Mul:
				return word{f: a * b}, nil
			case ir.Div:
				if b == 0 {
					return word{}, fmt.Errorf("machine: float division by zero")
				}
				return word{f: a / b}, nil
			default:
				return word{}, fmt.Errorf("machine: %v on floats", op.Op)
			}
		}
		a, b := r.getInt(op.A), r.getInt(op.B)
		switch op.Op {
		case ir.Add:
			return word{i: a + b}, nil
		case ir.Sub:
			return word{i: a - b}, nil
		case ir.Mul:
			return word{i: a * b}, nil
		case ir.Div:
			if b == 0 {
				return word{}, fmt.Errorf("machine: integer division by zero")
			}
			return word{i: a / b}, nil
		default: // Mod
			if b == 0 {
				return word{}, fmt.Errorf("machine: modulo by zero")
			}
			return word{i: a % b}, nil
		}
	}
	return word{}, fmt.Errorf("machine: cannot execute %v", op.Op)
}

func cmpInt(op ir.Op, a, b int64) bool {
	switch op {
	case ir.Eq:
		return a == b
	case ir.Ne:
		return a != b
	case ir.Lt:
		return a < b
	case ir.Le:
		return a <= b
	case ir.Gt:
		return a > b
	default:
		return a >= b
	}
}

func cmpFloat(op ir.Op, a, b float64) bool {
	switch op {
	case ir.Eq:
		return a == b
	case ir.Ne:
		return a != b
	case ir.Lt:
		return a < b
	case ir.Le:
		return a <= b
	case ir.Gt:
		return a > b
	default:
		return a >= b
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// getInt reads an operand as an integer (truncating floats).
func (r *Result) getInt(v *ir.Value) int64 {
	if v.Kind == ir.Const {
		if v.Type == ir.Float {
			return int64(v.ConstFloat)
		}
		return v.ConstInt
	}
	w := r.vals[v.ID]
	if v.Type == ir.Float {
		return int64(w.f)
	}
	return w.i
}

// getFloat reads an operand as a float (widening ints).
func (r *Result) getFloat(v *ir.Value) float64 {
	if v.Kind == ir.Const {
		if v.Type == ir.Float {
			return v.ConstFloat
		}
		return float64(v.ConstInt)
	}
	w := r.vals[v.ID]
	if v.Type == ir.Float {
		return w.f
	}
	return float64(w.i)
}

// setVal writes a scalar by value descriptor.
func (r *Result) setVal(v *ir.Value, x float64) {
	if v.Type == ir.Float {
		r.vals[v.ID] = word{f: x}
	} else {
		r.vals[v.ID] = word{i: int64(x)}
	}
}

// Scalar returns the final value of the named scalar variable. When
// renaming split the variable into webs, the web written last during
// execution holds the final value.
func (r *Result) Scalar(name string) (float64, bool) {
	var best *ir.Value
	if info, ok := r.lastWrite[name]; ok {
		best = r.fn.Values[info.id]
	} else {
		for _, v := range r.fn.Values {
			if v.Kind != ir.Const && baseName(v.Name) == name {
				best = v
				break
			}
		}
	}
	if best == nil {
		return 0, false
	}
	if best.Type == ir.Float {
		return r.vals[best.ID].f, true
	}
	return float64(r.vals[best.ID].i), true
}

// Array returns the final contents of the named array.
func (r *Result) Array(name string) ([]float64, bool) {
	for _, a := range r.fn.Arrays {
		if a.Name != name {
			continue
		}
		out := make([]float64, a.Size)
		for i, w := range r.arrs[a.ID] {
			if a.Type == ir.Float {
				out[i] = w.f
			} else {
				out[i] = float64(w.i)
			}
		}
		return out, true
	}
	return nil, false
}

// Speedup is the ratio of sequential to parallel execution time.
func (r *Result) Speedup() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.DynamicOps) / float64(r.Cycles)
}

func profileKey(mods []int, arrayOps int) string {
	var sb strings.Builder
	for _, m := range mods {
		sb.WriteString(strconv.Itoa(m))
		sb.WriteByte(',')
	}
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(arrayOps))
	return sb.String()
}
