package cache

import (
	"testing"
	"testing/quick"

	"parmem/internal/duplication"
)

func TestAssignSmallTrace(t *testing.T) {
	// Items 1,2 always read together: they must land in different caches.
	tr := Trace{{1, 2}, {1, 2}, {1, 3}}
	p, err := Assign(tr, System{Caches: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := Simulate(tr, p, System{Caches: 2})
	if st.StallCycles != 0 {
		t.Fatalf("stalls = %d, want 0", st.StallCycles)
	}
}

func TestAssignNeedsReplication(t *testing.T) {
	// Pairwise co-access of 3 items over 2 caches: some item must be
	// replicated, and afterwards everything is conflict-free.
	tr := Trace{{1, 2}, {2, 3}, {1, 3}}
	p, err := Assign(tr, System{Caches: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := Simulate(tr, p, System{Caches: 2})
	if st.StallCycles != 0 {
		t.Fatalf("stalls = %d, want 0 after replication", st.StallCycles)
	}
	if st.ReplicatedItems < 1 {
		t.Fatal("the odd cycle requires at least one replicated item")
	}
}

func TestAssignRejectsOverwideStep(t *testing.T) {
	tr := Trace{{1, 2, 3}}
	if _, err := Assign(tr, System{Caches: 2}); err == nil {
		t.Fatal("3 simultaneous reads cannot be served by 2 caches")
	}
}

func TestRoundRobinCollides(t *testing.T) {
	// Items 0 and 2 share cache 0 under round-robin with 2 caches.
	tr := Trace{{0, 2}}
	p := RoundRobin(tr, System{Caches: 2})
	st := Simulate(tr, p, System{Caches: 2})
	if st.StallCycles == 0 {
		t.Fatal("round-robin must collide on items 0 and 2")
	}
}

func TestFrequencyBalancedSpreads(t *testing.T) {
	tr := Trace{{0}, {0}, {0}, {1}, {2}, {3}}
	p := FrequencyBalanced(tr, System{Caches: 4})
	// The hot item 0 is alone in its cache.
	hot := p[0]
	for item, set := range p {
		if item != 0 && set == hot {
			t.Fatalf("item %d shares the hot cache", item)
		}
	}
}

func TestSimulatePenalty(t *testing.T) {
	tr := Trace{{1, 2}}
	p := Placement{1: duplication.ModSet(0).Add(0), 2: duplication.ModSet(0).Add(0)}
	st := Simulate(tr, p, System{Caches: 2, Penalty: 5})
	if st.StallCycles != 5 || st.MultiHitSteps != 1 {
		t.Fatalf("stats = %+v, want one multi-hit costing 5", st)
	}
}

func TestSyntheticTraceShape(t *testing.T) {
	tr := SyntheticTrace(32, 4, 100, 7)
	if len(tr) != 100 {
		t.Fatalf("steps = %d", len(tr))
	}
	for _, s := range tr {
		if len(s) != 4 {
			t.Fatalf("step width = %d, want 4", len(s))
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatalf("step %v not sorted-unique", s)
			}
		}
		for _, item := range s {
			if item < 0 || item >= 32 {
				t.Fatalf("item %d out of range", item)
			}
		}
	}
	// Deterministic.
	tr2 := SyntheticTrace(32, 4, 100, 7)
	for i := range tr {
		for j := range tr[i] {
			if tr[i][j] != tr2[i][j] {
				t.Fatal("trace not deterministic")
			}
		}
	}
}

// TestPaperTechniqueBeatsBaselines is the headline experiment of the §3
// application: on a skewed parallel-lookup workload, coloring+replication
// eliminates all predictable multi-hits while both baselines stall.
func TestPaperTechniqueBeatsBaselines(t *testing.T) {
	sys := System{Caches: 8}
	tr := SyntheticTrace(64, 6, 400, 123)

	paper, err := Assign(tr, sys)
	if err != nil {
		t.Fatal(err)
	}
	stPaper := Simulate(tr, paper, sys)
	stRR := Simulate(tr, RoundRobin(tr, sys), sys)
	stFB := Simulate(tr, FrequencyBalanced(tr, sys), sys)

	if stPaper.StallCycles != 0 {
		t.Fatalf("paper technique left %d stall cycles", stPaper.StallCycles)
	}
	if stRR.StallCycles == 0 || stFB.StallCycles == 0 {
		t.Fatalf("baselines unexpectedly conflict-free (rr=%d fb=%d); workload too easy",
			stRR.StallCycles, stFB.StallCycles)
	}
	if stPaper.StallCycles >= stRR.StallCycles || stPaper.StallCycles >= stFB.StallCycles {
		t.Fatalf("paper %d, rr %d, fb %d: technique must win",
			stPaper.StallCycles, stRR.StallCycles, stFB.StallCycles)
	}
}

// Property: Assign always yields a zero-stall placement when step widths
// fit the cache count.
func TestAssignAlwaysConflictFreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		caches := 2 + int(uint64(seed)%7)
		procs := 1 + int(uint64(seed/7)%uint64(caches))
		tr := SyntheticTrace(24, procs, 60, seed)
		p, err := Assign(tr, System{Caches: caches})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		st := Simulate(tr, p, System{Caches: caches})
		return st.StallCycles == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
