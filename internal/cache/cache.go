// Package cache applies the paper's storage-allocation machinery to the
// shared-cache multiprocessor of its closing discussion (§3): machines like
// the Alliant FX/8 attach caches to shared memory, and performance
// deteriorates when several processors hit the same cache simultaneously.
// For read-only shared data, the paper observes, the very same techniques
// apply: predict which items are accessed together, color them onto
// different caches, and replicate the few items that cannot be placed
// conflict-free.
//
// An access trace plays the role of the instruction stream: each step lists
// the items the processors read in the same cycle. Placement reuses
// internal/assign wholesale — a step is an "instruction", a cache is a
// "memory module", a replicated item is a multi-copy value.
package cache

import (
	"fmt"
	"math/rand"
	"sort"

	"parmem/internal/assign"
	"parmem/internal/conflict"
	"parmem/internal/duplication"
)

// System describes the shared-cache hardware.
type System struct {
	// Caches is the number of shared caches.
	Caches int
	// Penalty is the extra cycles each additional simultaneous hit on one
	// cache costs (Δ in the paper's terms). Default 1.
	Penalty int
}

// Step is one parallel access: the read-only items the processors fetch in
// the same cycle.
type Step []int

// Trace is a predicted (or profiled) access pattern.
type Trace []Step

// Placement maps each item to the caches holding a copy of it.
type Placement = duplication.Copies

// Assign places the items of the trace into caches with the paper's
// pipeline: conflict graph over co-accessed items, atom decomposition,
// urgency coloring, and hitting-set duplication for items that cannot be
// placed singly.
func Assign(tr Trace, sys System) (Placement, error) {
	instrs := make([]conflict.Instruction, len(tr))
	for i, s := range tr {
		instrs[i] = conflict.Instruction(s)
	}
	al, err := assign.Assign(assign.Program{Instrs: instrs}, assign.Options{K: sys.Caches})
	if err != nil {
		return nil, err
	}
	if bad := assign.Verify(assign.Program{Instrs: instrs}, al); bad != nil {
		return nil, fmt.Errorf("cache: %d steps still multi-hit after placement", len(bad))
	}
	return al.Copies, nil
}

// RoundRobin is the naive baseline: item i lives (singly) in cache i mod C.
func RoundRobin(tr Trace, sys System) Placement {
	p := Placement{}
	for _, s := range tr {
		for _, item := range s {
			if _, ok := p[item]; !ok {
				p[item] = duplication.ModSet(0).Add(item % sys.Caches)
			}
		}
	}
	return p
}

// FrequencyBalanced places the most-accessed items first, each into the
// currently least-loaded cache (load weighted by access frequency) — a
// plausible heuristic that uses frequency information but ignores
// co-access structure.
func FrequencyBalanced(tr Trace, sys System) Placement {
	freq := map[int]int{}
	for _, s := range tr {
		for _, item := range s {
			freq[item]++
		}
	}
	items := make([]int, 0, len(freq))
	for item := range freq {
		items = append(items, item)
	}
	sort.Slice(items, func(i, j int) bool {
		if freq[items[i]] != freq[items[j]] {
			return freq[items[i]] > freq[items[j]]
		}
		return items[i] < items[j]
	})
	load := make([]int, sys.Caches)
	p := Placement{}
	for _, item := range items {
		best := 0
		for c := 1; c < sys.Caches; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		p[item] = duplication.ModSet(0).Add(best)
		load[best] += freq[item]
	}
	return p
}

// Stats summarizes a simulated trace execution.
type Stats struct {
	// Steps is the trace length.
	Steps int
	// MultiHitSteps counts steps where some cache served several requests.
	MultiHitSteps int
	// StallCycles is the total extra time from multi-hits (Penalty per
	// extra request serialized on a cache).
	StallCycles int
	// Copies is the total number of stored item copies.
	Copies int
	// ReplicatedItems is how many items have more than one copy.
	ReplicatedItems int
}

// Simulate runs the trace against a placement: each step routes every item
// to one of its caches (conflict-free matching when possible, as the
// hardware's crossbar would) and counts multi-hits.
func Simulate(tr Trace, p Placement, sys System) Stats {
	penalty := sys.Penalty
	if penalty == 0 {
		penalty = 1
	}
	st := Stats{Steps: len(tr), Copies: p.TotalCopies(), ReplicatedItems: p.Multi()}
	for _, s := range tr {
		items := conflict.Instruction(s).Normalize()
		match, _ := duplication.MatchModules(items, p)
		load := map[int]int{}
		for _, item := range items {
			load[match[item]]++
		}
		stall := 0
		for _, n := range load {
			if n > 1 {
				stall += (n - 1) * penalty
			}
		}
		if stall > 0 {
			st.MultiHitSteps++
			st.StallCycles += stall
		}
	}
	return st
}

// SyntheticTrace generates a deterministic workload shaped like parallel
// table lookup: procs processors read shared read-only items each step,
// with item popularity skewed so that a few hot items appear in most steps
// (the regime where placement quality matters most).
func SyntheticTrace(items, procs, steps int, seed int64) Trace {
	r := rand.New(rand.NewSource(seed))
	// Zipf-like popularity without floats: item i has weight ~ items/(i+1).
	var weights []int
	total := 0
	for i := 0; i < items; i++ {
		w := items/(i+1) + 1
		weights = append(weights, w)
		total += w
	}
	pick := func() int {
		x := r.Intn(total)
		for i, w := range weights {
			if x < w {
				return i
			}
			x -= w
		}
		return items - 1
	}
	tr := make(Trace, steps)
	for s := range tr {
		seen := map[int]bool{}
		for len(seen) < procs {
			seen[pick()] = true
		}
		step := make(Step, 0, procs)
		for item := range seen {
			step = append(step, item)
		}
		sort.Ints(step)
		tr[s] = step
	}
	return tr
}
