package atoms

import (
	"container/heap"
	"slices"
	"sort"

	"parmem/internal/arena"
	"parmem/internal/graph"
)

// mcsmDense is MCS-M on the frozen dense graph core. The map-backed
// implementation (mcsmRef) allocates a weight map, a visited map and a
// sorted neighbor slice per elimination step; this version runs the same
// algorithm over index-addressed scratch arrays reused across steps.
//
// Dense indices ascend with original ids, so every id-based tie-break
// (heap pops, bottleneck extract-min, bumped-vertex ordering) is preserved
// and the returned ordering and fill are bit-identical to mcsmRef's.
func mcsmDense(d *graph.Dense, sc *arena.Scratch) Triangulation {
	n := d.N()
	weight := sc.Ints(n)
	// numbered is a bitset so the "unnumbered neighbors of x" scans below
	// run word-at-a-time through the dense adjacency rows.
	numbered := sc.Uint64s(graph.BitsetWords(n))
	order := sc.Ints(n) // dense indices; converted to ids at the end
	var fill []graph.Edge

	// Lazy max-heap of candidate (index, weight) pairs; stale entries are
	// skipped on pop.
	h := &wheap{}
	for i := 0; i < n; i++ {
		heap.Push(h, wItem{i, 0})
	}

	// Bottleneck-search scratch, reused across elimination steps: mw[u] is
	// valid only while mwSet[u]; touched lists the set entries to reset.
	mw := sc.Ints(n)
	mwSet := sc.Bools(n)
	touched := sc.Int32s(n)[:0]
	// pq entries pack (distance+1, vertex) into one uint64, kept as a binary
	// min-heap (pqPush/pqPop); the packed order equals (distance, vertex)
	// lexicographic order because both halves are non-negative, and every
	// live key is distinct — push only appends a vertex's key when its mw
	// strictly improves — so the heap's minimum is the unique minimum the
	// old linear scan found and the visit order is unchanged.
	pq := sc.Uint64s(n)[:0]
	bumped := sc.Int32s(n)[:0]
	nbuf := sc.Int32s(n)[:0] // unnumbered-neighbor scan buffer

	for i := n - 1; i >= 0; i-- {
		// Pick the unnumbered vertex with maximum weight (lowest index on
		// tie — the heap comparator).
		var v int32
		for {
			it := heap.Pop(h).(wItem)
			if !graph.TestBit(numbered, int32(it.v)) && weight[it.v] == it.w {
				v = int32(it.v)
				break
			}
		}
		order[i] = int(v)
		graph.SetBit(numbered, v)

		// Bottleneck search: mw[u] = minimum over v→u paths through
		// unnumbered intermediates of the maximum intermediate weight
		// (-1 when u is a direct neighbor). u is reachable "for increment"
		// iff mw[u] < weight[u].
		for _, u := range touched {
			mwSet[u] = false
		}
		touched = touched[:0]
		pq = pq[:0]
		push := func(u int32, dd int) {
			if !mwSet[u] {
				mwSet[u] = true
				mw[u] = dd
				touched = append(touched, u)
				pq = pqPush(pq, uint64(dd+1)<<32|uint64(uint32(u)))
			} else if dd < mw[u] {
				mw[u] = dd
				pq = pqPush(pq, uint64(dd+1)<<32|uint64(uint32(u)))
			}
		}
		nbuf = d.RowAndNotInto(v, numbered, nbuf[:0])
		for _, u := range nbuf {
			push(u, -1)
		}
		for len(pq) > 0 {
			var key uint64
			key, pq = pqPop(pq)
			curD := int(key>>32) - 1
			curV := int32(uint32(key))
			if curD > mw[curV] {
				continue // stale
			}
			through := curD
			if weight[curV] > through {
				through = weight[curV]
			}
			// v itself is already numbered, so the mask also drops the old
			// x != v exclusion.
			nbuf = d.RowAndNotInto(curV, numbered, nbuf[:0])
			for _, x := range nbuf {
				push(x, through)
			}
		}
		// Increment and add fill edges, lowest index (= lowest id) first.
		bumped = bumped[:0]
		for _, u := range touched {
			if mw[u] < weight[u] {
				bumped = append(bumped, u)
			}
		}
		slices.Sort(bumped)
		for _, u := range bumped {
			weight[u]++
			heap.Push(h, wItem{int(u), weight[u]})
			if !d.HasEdgeIdx(u, v) {
				a, b := d.ID(u), d.ID(v)
				if a > b {
					a, b = b, a
				}
				fill = append(fill, graph.Edge{U: a, V: b, W: 1})
			}
		}
	}
	sort.Slice(fill, func(i, j int) bool {
		if fill[i].U != fill[j].U {
			return fill[i].U < fill[j].U
		}
		return fill[i].V < fill[j].V
	})
	out := make([]int, n)
	for i, idx := range order {
		out[i] = d.ID(int32(idx))
	}
	return Triangulation{Order: out, Fill: fill}
}

// pqPush appends packed key x to the binary min-heap pq and restores the
// heap property. Keys are unique (see mcsmDense), so pqPop's minimum is
// deterministic without a tie-break.
func pqPush(pq []uint64, x uint64) []uint64 {
	pq = append(pq, x)
	i := len(pq) - 1
	for i > 0 {
		p := (i - 1) / 2
		if pq[p] <= pq[i] {
			break
		}
		pq[p], pq[i] = pq[i], pq[p]
		i = p
	}
	return pq
}

// pqPop removes and returns the minimum key of the binary min-heap pq.
func pqPop(pq []uint64) (uint64, []uint64) {
	min := pq[0]
	last := len(pq) - 1
	pq[0] = pq[last]
	pq = pq[:last]
	i := 0
	for {
		s := i
		if l := 2*i + 1; l < len(pq) && pq[l] < pq[s] {
			s = l
		}
		if r := 2*i + 2; r < len(pq) && pq[r] < pq[s] {
			s = r
		}
		if s == i {
			break
		}
		pq[i], pq[s] = pq[s], pq[i]
		i = s
	}
	return min, pq
}

// cliqueIdx reports whether the dense indices in sIdx are pairwise adjacent
// in gd, comparing whole adjacency words against the set's bitset (sbits,
// with swords listing its non-zero word indices) when gd has a bitset form.
// It answers exactly like pairwise HasEdgeIdx probes — each pair must be an
// edge — just 64 candidates per word instead of one.
func cliqueIdx(gd *graph.Dense, sIdx []int32, sbits []uint64, swords []int32) bool {
	if !gd.HasRowWords() {
		for i := 0; i < len(sIdx); i++ {
			for j := i + 1; j < len(sIdx); j++ {
				if !gd.HasEdgeIdx(sIdx[i], sIdx[j]) {
					return false
				}
			}
		}
		return true
	}
	for _, u := range sIdx {
		uw := int(u) >> 6
		for _, w := range swords {
			need := sbits[w]
			if int(w) == uw {
				need &^= 1 << (uint(u) & 63) // a vertex is not its own neighbor
			}
			if need&^gd.RowWord(u, int(w)) != 0 {
				return false
			}
		}
	}
	return true
}

// decomposeConnectedDense appends the atoms of the connected graph g to d,
// using the dense core for the frozen reads: MCS-M runs on a Dense snapshot
// of g, the triangulation H = G+F is snapshotted once fill edges are known,
// clique tests compare whole words of G's bitset adjacency, and the
// shrinking G' scans reuse neighbor buffers.
//
// All frozen state (the gd/hd snapshots, the elimination scratch, the
// position table) is borrowed from sc; the atoms and separators appended to
// d are freshly allocated and outlive it. A nil sc allocates fresh buffers
// throughout. The caller owns sc's lifecycle (the worker pools Reset their
// shard between components).
func decomposeConnectedDense(g *graph.Graph, d *Decomposition, sc *arena.Scratch) {
	gd := graph.FromGraphScratch(g, sc)
	tri := mcsmDense(gd, sc)
	d.Fill += len(tri.Fill)

	// H = G + fill, frozen after construction.
	h := g.Clone()
	for _, e := range tri.Fill {
		h.AddEdge(e.U, e.V, 0)
	}
	hd := graph.FromGraphScratch(h, sc)

	// pos[i] = position of dense index i in the elimination order. H has
	// exactly G's vertex set, so gd and hd share one id↔index mapping.
	pos := sc.Ints(gd.N())
	for i, v := range tri.Order {
		pos[gd.Index(v)] = i
	}

	gp := g.Clone() // G', shrinking as components split off
	var s []int
	// Candidate-separator scratch for the word-parallel clique test: the
	// dense indices of S, their bitset, and the bitset's non-zero words
	// (cleared again after each candidate, so the zeroing cost is |S|, not
	// n/64).
	sIdx := sc.Int32s(gd.N())[:0]
	sbits := sc.Uint64s(graph.BitsetWords(gd.N()))
	swords := sc.Int32s(graph.BitsetWords(gd.N()))[:0]
	for i, x := range tri.Order {
		if !gp.HasNode(x) {
			continue // already carved out with an earlier atom's component
		}
		// S = later neighbors of x in H that are still present in G'.
		// hd rows are ascending by index (= by id), so s is born sorted.
		s = s[:0]
		sIdx = sIdx[:0]
		swords = swords[:0]
		for _, u := range hd.Row(hd.Index(x)) {
			if pos[u] > i && gp.HasNode(gd.ID(u)) {
				s = append(s, gd.ID(u))
				sIdx = append(sIdx, u)
				if w := u >> 6; sbits[w] == 0 {
					swords = append(swords, w)
				}
				graph.SetBit(sbits, u)
			}
		}
		clique := len(s) > 0 && cliqueIdx(gd, sIdx, sbits, swords)
		for _, u := range sIdx {
			graph.ClearBit(sbits, u)
		}
		if !clique {
			continue
		}
		// S is a clique in G; check that removing it separates x from the
		// rest of G'.
		comp := gp.ComponentContaining(x, s)
		if len(comp)+len(s) >= gp.NumNodes() {
			continue // not a proper split: C ∪ S is all of G'
		}
		// S must be a *minimal* separator (see minimalSeparator).
		if !minimalSeparator(gp, s, comp) {
			continue
		}
		atomNodes := append(append([]int{}, comp...), s...)
		sort.Ints(atomNodes)
		d.Atoms = append(d.Atoms, makeAtom(g, atomNodes))
		d.Separators = append(d.Separators, append([]int{}, s...))
		for _, c := range comp {
			gp.RemoveNode(c)
		}
	}
	if gp.NumNodes() > 0 {
		d.Atoms = append(d.Atoms, makeAtom(g, gp.Nodes()))
	}
}
