package atoms

import (
	"container/heap"
	"slices"
	"sort"

	"parmem/internal/arena"
	"parmem/internal/graph"
)

// mcsmDense is MCS-M on the frozen dense graph core. The map-backed
// implementation (mcsmRef) allocates a weight map, a visited map and a
// sorted neighbor slice per elimination step; this version runs the same
// algorithm over index-addressed scratch arrays reused across steps.
//
// Dense indices ascend with original ids, so every id-based tie-break
// (heap pops, bottleneck extract-min, bumped-vertex ordering) is preserved
// and the returned ordering and fill are bit-identical to mcsmRef's.
func mcsmDense(d *graph.Dense, sc *arena.Scratch) Triangulation {
	n := d.N()
	weight := sc.Ints(n)
	numbered := sc.Bools(n)
	order := sc.Ints(n) // dense indices; converted to ids at the end
	var fill []graph.Edge

	// Lazy max-heap of candidate (index, weight) pairs; stale entries are
	// skipped on pop.
	h := &wheap{}
	for i := 0; i < n; i++ {
		heap.Push(h, wItem{i, 0})
	}

	// Bottleneck-search scratch, reused across elimination steps: mw[u] is
	// valid only while mwSet[u]; touched lists the set entries to reset.
	mw := sc.Ints(n)
	mwSet := sc.Bools(n)
	touched := sc.Int32s(n)[:0]
	// pq entries pack (distance+1, vertex) into one uint64 so the queue can
	// live in the arena; the packed order equals (distance, vertex)
	// lexicographic order because both halves are non-negative.
	pq := sc.Uint64s(n)[:0]
	bumped := sc.Int32s(n)[:0]

	for i := n - 1; i >= 0; i-- {
		// Pick the unnumbered vertex with maximum weight (lowest index on
		// tie — the heap comparator).
		var v int32
		for {
			it := heap.Pop(h).(wItem)
			if !numbered[it.v] && weight[it.v] == it.w {
				v = int32(it.v)
				break
			}
		}
		order[i] = int(v)
		numbered[v] = true

		// Bottleneck search: mw[u] = minimum over v→u paths through
		// unnumbered intermediates of the maximum intermediate weight
		// (-1 when u is a direct neighbor). u is reachable "for increment"
		// iff mw[u] < weight[u].
		for _, u := range touched {
			mwSet[u] = false
		}
		touched = touched[:0]
		pq = pq[:0]
		push := func(u int32, dd int) {
			if !mwSet[u] {
				mwSet[u] = true
				mw[u] = dd
				touched = append(touched, u)
				pq = append(pq, uint64(dd+1)<<32|uint64(uint32(u)))
			} else if dd < mw[u] {
				mw[u] = dd
				pq = append(pq, uint64(dd+1)<<32|uint64(uint32(u)))
			}
		}
		for _, u := range d.Row(v) {
			if !numbered[u] {
				push(u, -1)
			}
		}
		for len(pq) > 0 {
			// Extract min (d, v) by linear scan — small sparse graphs;
			// determinism matters more than asymptotics. The packed keys
			// compare exactly like the (d, v) pairs they encode.
			best := 0
			for j := 1; j < len(pq); j++ {
				if pq[j] < pq[best] {
					best = j
				}
			}
			curD := int(pq[best]>>32) - 1
			curV := int32(uint32(pq[best]))
			pq[best] = pq[len(pq)-1]
			pq = pq[:len(pq)-1]
			if curD > mw[curV] {
				continue // stale
			}
			through := curD
			if weight[curV] > through {
				through = weight[curV]
			}
			for _, x := range d.Row(curV) {
				if !numbered[x] && x != v {
					push(x, through)
				}
			}
		}
		// Increment and add fill edges, lowest index (= lowest id) first.
		bumped = bumped[:0]
		for _, u := range touched {
			if mw[u] < weight[u] {
				bumped = append(bumped, u)
			}
		}
		slices.Sort(bumped)
		for _, u := range bumped {
			weight[u]++
			heap.Push(h, wItem{int(u), weight[u]})
			if !d.HasEdgeIdx(u, v) {
				a, b := d.ID(u), d.ID(v)
				if a > b {
					a, b = b, a
				}
				fill = append(fill, graph.Edge{U: a, V: b, W: 1})
			}
		}
	}
	sort.Slice(fill, func(i, j int) bool {
		if fill[i].U != fill[j].U {
			return fill[i].U < fill[j].U
		}
		return fill[i].V < fill[j].V
	})
	out := make([]int, n)
	for i, idx := range order {
		out[i] = d.ID(int32(idx))
	}
	return Triangulation{Order: out, Fill: fill}
}

// decomposeConnectedDense appends the atoms of the connected graph g to d,
// using the dense core for the frozen reads: MCS-M runs on a Dense snapshot
// of g, the triangulation H = G+F is snapshotted once fill edges are known,
// clique tests probe G's bitset adjacency, and the shrinking G' scans reuse
// neighbor buffers.
func decomposeConnectedDense(g *graph.Graph, d *Decomposition) {
	// The frozen snapshots (gd, hd), the elimination scratch and the
	// position table all come from one arena scope; the atoms and
	// separators appended to d are freshly allocated and outlive it.
	sc := arena.Get()
	defer sc.Release()
	gd := graph.FromGraphScratch(g, sc)
	tri := mcsmDense(gd, sc)
	d.Fill += len(tri.Fill)

	// H = G + fill, frozen after construction.
	h := g.Clone()
	for _, e := range tri.Fill {
		h.AddEdge(e.U, e.V, 0)
	}
	hd := graph.FromGraphScratch(h, sc)

	// pos[i] = position of dense index i in the elimination order. H has
	// exactly G's vertex set, so gd and hd share one id↔index mapping.
	pos := sc.Ints(gd.N())
	for i, v := range tri.Order {
		pos[gd.Index(v)] = i
	}

	gp := g.Clone() // G', shrinking as components split off
	var s []int
	for i, x := range tri.Order {
		if !gp.HasNode(x) {
			continue // already carved out with an earlier atom's component
		}
		// S = later neighbors of x in H that are still present in G'.
		// hd rows are ascending by index (= by id), so s is born sorted.
		s = s[:0]
		for _, u := range hd.Row(hd.Index(x)) {
			if pos[u] > i && gp.HasNode(gd.ID(u)) {
				s = append(s, gd.ID(u))
			}
		}
		if len(s) == 0 || !gd.IsCliqueIDs(s) {
			continue
		}
		// S is a clique in G; check that removing it separates x from the
		// rest of G'.
		comp := gp.ComponentContaining(x, s)
		if len(comp)+len(s) >= gp.NumNodes() {
			continue // not a proper split: C ∪ S is all of G'
		}
		// S must be a *minimal* separator (see minimalSeparator).
		if !minimalSeparator(gp, s, comp) {
			continue
		}
		atomNodes := append(append([]int{}, comp...), s...)
		sort.Ints(atomNodes)
		d.Atoms = append(d.Atoms, makeAtom(g, atomNodes))
		d.Separators = append(d.Separators, append([]int{}, s...))
		for _, c := range comp {
			gp.RemoveNode(c)
		}
	}
	if gp.NumNodes() > 0 {
		d.Atoms = append(d.Atoms, makeAtom(g, gp.Nodes()))
	}
}
