// Package atoms implements decomposition of a graph into atoms — maximal
// subgraphs without clique separators (Tarjan, Decomposition by Clique
// Separators, Discrete Math. 55, 1985).
//
// The paper's coloring stage (Gupta & Soffa §2.1) first splits the
// access-conflict graph into atoms: if every atom is k-colorable then the
// whole graph is, so the heuristic only ever works on one atom at a time.
//
// The decomposition follows the classic two-step scheme:
//
//  1. Compute a minimal triangulation H = G+F and a minimal elimination
//     ordering via MCS-M (Berry, Blair, Heggernes, Villanger, Maximum
//     Cardinality Search for Computing Minimal Triangulations of Graphs,
//     Algorithmica 2004).
//  2. Scan vertices in elimination order; whenever the not-yet-eliminated
//     H-neighborhood of a vertex is a clique in G, it is a clique minimal
//     separator: split off the component containing the vertex as an atom.
package atoms

import (
	"container/heap"
	"sort"

	"parmem/internal/arena"
	"parmem/internal/graph"
)

// Atom is one subgraph of the decomposition.
type Atom struct {
	Nodes []int        // sorted vertex ids
	Graph *graph.Graph // subgraph of the original graph induced by Nodes
}

// Decomposition is the result of Decompose.
type Decomposition struct {
	Atoms      []Atom  // atoms in the order they were split off
	Separators [][]int // the clique minimal separators used, sorted sets
	Fill       int     // number of fill edges added by the minimal triangulation
}

// MaxAtomSize returns the node count of the largest atom (0 when there are
// none) — the quantity that bounds per-atom coloring cost, reported by the
// telemetry layer.
func (d Decomposition) MaxAtomSize() int {
	max := 0
	for _, a := range d.Atoms {
		if len(a.Nodes) > max {
			max = len(a.Nodes)
		}
	}
	return max
}

// Triangulation is the result of MCSM: a minimal elimination ordering and
// the fill edges whose addition to G yields a chordal graph H.
type Triangulation struct {
	// Order lists the vertices in elimination order: Order[0] is
	// eliminated first.
	Order []int
	// Fill contains the added edges (U < V).
	Fill []graph.Edge
}

// wheap is a max-heap of (weight, -id) so ties break toward the lowest id,
// keeping the whole pipeline deterministic.
type wItem struct {
	v, w int
}
type wheap []wItem

func (h wheap) Len() int { return len(h) }
func (h wheap) Less(i, j int) bool {
	if h[i].w != h[j].w {
		return h[i].w > h[j].w
	}
	return h[i].v < h[j].v
}
func (h wheap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *wheap) Push(x any)   { *h = append(*h, x.(wItem)) }
func (h *wheap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// MCSM runs the MCS-M algorithm on g, returning a minimal elimination
// ordering and the fill of the corresponding minimal triangulation. It runs
// on a dense snapshot of g (see mcsmDense); MCSMRef is the map-backed
// original, which produces bit-identical results.
func MCSM(g *graph.Graph) Triangulation {
	sc := arena.Get()
	defer sc.Release()
	return mcsmDense(graph.FromGraphScratch(g, sc), sc)
}

// MCSMRef is the original map-graph MCS-M implementation, retained as the
// differential-test and ablation baseline of mcsmDense.
func MCSMRef(g *graph.Graph) Triangulation {
	nodes := g.Nodes()
	n := len(nodes)
	weight := make(map[int]int, n)
	numbered := make(map[int]bool, n)
	for _, v := range nodes {
		weight[v] = 0
	}
	order := make([]int, n) // order[i] eliminated i-th; filled back to front
	var fill []graph.Edge

	// Lazy max-heap of candidate (vertex, weight) pairs; stale entries are
	// skipped on pop.
	h := &wheap{}
	for _, v := range nodes {
		heap.Push(h, wItem{v, 0})
	}

	for i := n - 1; i >= 0; i-- {
		// Pick the unnumbered vertex with maximum weight (lowest id on tie).
		var v int
		for {
			it := heap.Pop(h).(wItem)
			if !numbered[it.v] && weight[it.v] == it.w {
				v = it.v
				break
			}
		}
		order[i] = v
		numbered[v] = true

		// Bottleneck search: mw[u] = minimum over v→u paths through
		// unnumbered intermediates of the maximum intermediate weight
		// (-1 when u is a direct neighbor). u is reachable "for increment"
		// iff mw[u] < weight[u].
		mw := map[int]int{}
		type qi struct{ v, d int }
		var pq []qi
		push := func(u, d int) {
			if cur, ok := mw[u]; !ok || d < cur {
				mw[u] = d
				pq = append(pq, qi{u, d})
			}
		}
		for _, u := range g.Neighbors(v) {
			if !numbered[u] {
				push(u, -1)
			}
		}
		for len(pq) > 0 {
			// Extract min d (linear scan is fine: graphs here are small and
			// sparse; determinism matters more than asymptotics).
			best := 0
			for j := 1; j < len(pq); j++ {
				if pq[j].d < pq[best].d || (pq[j].d == pq[best].d && pq[j].v < pq[best].v) {
					best = j
				}
			}
			cur := pq[best]
			pq[best] = pq[len(pq)-1]
			pq = pq[:len(pq)-1]
			if cur.d > mw[cur.v] {
				continue // stale
			}
			// cur.v may act as an intermediate for its neighbors.
			through := cur.d
			if weight[cur.v] > through {
				through = weight[cur.v]
			}
			for _, x := range g.Neighbors(cur.v) {
				if !numbered[x] && x != v {
					push(x, through)
				}
			}
		}
		// Increment and add fill edges.
		var bumped []int
		for u, d := range mw {
			if d < weight[u] {
				bumped = append(bumped, u)
			}
		}
		sort.Ints(bumped)
		for _, u := range bumped {
			weight[u]++
			heap.Push(h, wItem{u, weight[u]})
			if !g.HasEdge(u, v) {
				a, b := u, v
				if a > b {
					a, b = b, a
				}
				fill = append(fill, graph.Edge{U: a, V: b, W: 1})
			}
		}
	}
	sort.Slice(fill, func(i, j int) bool {
		if fill[i].U != fill[j].U {
			return fill[i].U < fill[j].U
		}
		return fill[i].V < fill[j].V
	})
	return Triangulation{Order: order, Fill: fill}
}

// Decompose splits g into its atoms. The union of the atoms' vertex sets
// covers V(g), every edge of g appears in at least one atom, and the vertices
// of each clique minimal separator are shared between atoms. A disconnected
// graph is decomposed one connected component at a time. An empty graph
// yields no atoms.
//
// The per-component work runs on the dense graph core; DecomposeRef is the
// map-backed original, which produces bit-identical results.
func Decompose(g *graph.Graph) Decomposition {
	return decomposeWith(g, decomposeConnectedDense)
}

// DecomposeRef is Decompose on the original map-graph implementation,
// retained as the differential-test and ablation baseline of the dense core.
func DecomposeRef(g *graph.Graph) Decomposition {
	return decomposeWith(g, decomposeConnectedRef)
}

func decomposeWith(g *graph.Graph, fn decomposeFunc) Decomposition {
	var d Decomposition
	sc := arena.Get()
	defer sc.Release()
	for _, comp := range g.ConnectedComponents() {
		fn(g.Induced(comp), &d, sc)
		sc.Reset()
	}
	return d
}

// decomposeFunc decomposes one connected graph into d, borrowing scratch
// from sc (which may be nil — the fresh-allocation Scratch). The caller
// owns sc and Resets it between components.
type decomposeFunc func(*graph.Graph, *Decomposition, *arena.Scratch)

// decomposeConnectedRef appends the atoms of the connected graph g to d
// using the map-backed graph throughout. It ignores the scratch — the
// reference implementation allocates freshly by design.
func decomposeConnectedRef(g *graph.Graph, d *Decomposition, _ *arena.Scratch) {
	tri := MCSMRef(g)
	d.Fill += len(tri.Fill)

	// H = G + fill.
	h := g.Clone()
	for _, e := range tri.Fill {
		h.AddEdge(e.U, e.V, 0)
	}

	// pos[v] = index of v in the elimination order.
	pos := make(map[int]int, len(tri.Order))
	for i, v := range tri.Order {
		pos[v] = i
	}

	gp := g.Clone() // G', shrinking as components split off
	for i, x := range tri.Order {
		if !gp.HasNode(x) {
			continue // already carved out with an earlier atom's component
		}
		// S = later neighbors of x in H that are still present in G'.
		var s []int
		for _, u := range h.Neighbors(x) {
			if pos[u] > i && gp.HasNode(u) {
				s = append(s, u)
			}
		}
		sort.Ints(s)
		if len(s) == 0 || !g.IsClique(s) {
			continue
		}
		// S is a clique in G; check that removing it separates x from the
		// rest of G'.
		comp := gp.ComponentContaining(x, s)
		if len(comp)+len(s) >= gp.NumNodes() {
			continue // not a proper split: C ∪ S is all of G'
		}
		// S must be a *minimal* separator: every separator vertex needs a
		// G'-neighbor inside the carved component C and another outside
		// C ∪ S. (madj sets of a minimal elimination ordering can be
		// cliques without being minimal separators — e.g. the madj {2,3}
		// of the outer vertex of a bowtie — and splitting on those emits
		// spurious sub-atoms.)
		if !minimalSeparator(gp, s, comp) {
			continue
		}
		atomNodes := append(append([]int{}, comp...), s...)
		sort.Ints(atomNodes)
		d.Atoms = append(d.Atoms, makeAtom(g, atomNodes))
		d.Separators = append(d.Separators, append([]int{}, s...))
		for _, c := range comp {
			gp.RemoveNode(c)
		}
	}
	if gp.NumNodes() > 0 {
		d.Atoms = append(d.Atoms, makeAtom(g, gp.Nodes()))
	}
}

func makeAtom(g *graph.Graph, nodes []int) Atom {
	return Atom{Nodes: nodes, Graph: g.Induced(nodes)}
}

// minimalSeparator reports whether the clique set s is a minimal separator
// of gp with respect to the component comp: every vertex of s must have a
// gp-neighbor inside comp and a gp-neighbor outside comp ∪ s.
func minimalSeparator(gp *graph.Graph, s, comp []int) bool {
	inComp := make(map[int]bool, len(comp))
	for _, c := range comp {
		inComp[c] = true
	}
	inSep := make(map[int]bool, len(s))
	for _, v := range s {
		inSep[v] = true
	}
	for _, v := range s {
		hasIn, hasOut := false, false
		for _, u := range gp.Neighbors(v) {
			switch {
			case inComp[u]:
				hasIn = true
			case !inSep[u]:
				hasOut = true
			}
		}
		if !hasIn || !hasOut {
			return false
		}
	}
	return true
}
