package atoms

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"parmem/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func cycleGraph(n int) *graph.Graph {
	g := pathGraph(n)
	g.AddEdge(n-1, 0, 1)
	return g
}

func completeGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(i)
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	return g
}

// isChordalVia checks that order is a perfect elimination ordering of g:
// for every vertex, its later-ordered neighbors form a clique.
func isChordalVia(g *graph.Graph, order []int) bool {
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	for i, v := range order {
		var later []int
		for _, u := range g.Neighbors(v) {
			if pos[u] > i {
				later = append(later, u)
			}
		}
		if !g.IsClique(later) {
			return false
		}
	}
	return true
}

func withFill(g *graph.Graph, tri Triangulation) *graph.Graph {
	h := g.Clone()
	for _, e := range tri.Fill {
		h.AddEdge(e.U, e.V, 0)
	}
	return h
}

func TestMCSMOrderIsPermutation(t *testing.T) {
	g := cycleGraph(6)
	tri := MCSM(g)
	if len(tri.Order) != 6 {
		t.Fatalf("order length = %d", len(tri.Order))
	}
	seen := map[int]bool{}
	for _, v := range tri.Order {
		if seen[v] {
			t.Fatalf("duplicate vertex %d in order", v)
		}
		seen[v] = true
	}
}

func TestMCSMChordalInputNoFill(t *testing.T) {
	// A chordal graph (two triangles sharing an edge) needs no fill.
	g := graph.New()
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	tri := MCSM(g)
	if len(tri.Fill) != 0 {
		t.Fatalf("chordal input should need no fill, got %v", tri.Fill)
	}
	if !isChordalVia(g, tri.Order) {
		t.Fatal("order is not a perfect elimination ordering")
	}
}

func TestMCSMCycleFill(t *testing.T) {
	// C4 needs exactly one chord to triangulate minimally.
	tri := MCSM(cycleGraph(4))
	if len(tri.Fill) != 1 {
		t.Fatalf("C4 minimal fill = %d edges, want 1 (%v)", len(tri.Fill), tri.Fill)
	}
	// C5 needs exactly two chords.
	tri5 := MCSM(cycleGraph(5))
	if len(tri5.Fill) != 2 {
		t.Fatalf("C5 minimal fill = %d edges, want 2", len(tri5.Fill))
	}
}

func TestMCSMTriangulationIsChordal(t *testing.T) {
	for n := 3; n <= 9; n++ {
		g := cycleGraph(n)
		tri := MCSM(g)
		h := withFill(g, tri)
		if !isChordalVia(h, tri.Order) {
			t.Fatalf("C%d: H=G+fill not chordal via returned order", n)
		}
	}
}

func TestMCSMDeterministic(t *testing.T) {
	g := cycleGraph(7)
	a := MCSM(g)
	b := MCSM(g)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("MCSM must be deterministic")
	}
}

func TestDecomposeEmpty(t *testing.T) {
	d := Decompose(graph.New())
	if len(d.Atoms) != 0 {
		t.Fatalf("empty graph atoms = %d", len(d.Atoms))
	}
}

func TestDecomposeComplete(t *testing.T) {
	d := Decompose(completeGraph(5))
	if len(d.Atoms) != 1 {
		t.Fatalf("complete graph is one atom, got %d", len(d.Atoms))
	}
	if len(d.Atoms[0].Nodes) != 5 {
		t.Fatalf("atom nodes = %v", d.Atoms[0].Nodes)
	}
}

func TestDecomposeCycleNoSeparator(t *testing.T) {
	// A chordless cycle has no clique separator: single atom.
	d := Decompose(cycleGraph(5))
	if len(d.Atoms) != 1 {
		t.Fatalf("C5 should be a single atom, got %d: %v", len(d.Atoms), d.Atoms)
	}
}

func TestDecomposePathIntoEdges(t *testing.T) {
	// Every interior vertex of a path is a (singleton) clique separator, so
	// the atoms are exactly the edges.
	d := Decompose(pathGraph(5))
	if len(d.Atoms) != 4 {
		t.Fatalf("path atoms = %d, want 4: %+v", len(d.Atoms), d.Atoms)
	}
	for _, a := range d.Atoms {
		if len(a.Nodes) != 2 {
			t.Fatalf("path atom %v is not an edge", a.Nodes)
		}
	}
}

func TestDecomposeDiamond(t *testing.T) {
	// Two triangles sharing edge {1,2}: separator {1,2}, atoms {0,1,2} and
	// {1,2,3}.
	g := graph.New()
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	d := Decompose(g)
	if len(d.Atoms) != 2 {
		t.Fatalf("diamond atoms = %d, want 2: %+v", len(d.Atoms), d.Atoms)
	}
	var sets [][]int
	for _, a := range d.Atoms {
		sets = append(sets, a.Nodes)
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i][0] < sets[j][0] })
	if !reflect.DeepEqual(sets[0], []int{0, 1, 2}) || !reflect.DeepEqual(sets[1], []int{1, 2, 3}) {
		t.Fatalf("atoms = %v", sets)
	}
	if len(d.Separators) != 1 || !reflect.DeepEqual(d.Separators[0], []int{1, 2}) {
		t.Fatalf("separators = %v, want [[1 2]]", d.Separators)
	}
}

func TestDecomposeDisconnected(t *testing.T) {
	g := graph.New()
	g.AddEdge(0, 1, 1)
	g.AddEdge(10, 11, 1)
	g.AddEdge(11, 12, 1)
	g.AddEdge(10, 12, 1)
	g.AddNode(20)
	d := Decompose(g)
	if len(d.Atoms) != 3 {
		t.Fatalf("atoms = %d, want 3: %+v", len(d.Atoms), d.Atoms)
	}
	total := 0
	for _, a := range d.Atoms {
		total += len(a.Nodes)
	}
	if total != 6 {
		t.Fatalf("total atom vertices = %d, want 6 (no sharing across components)", total)
	}
}

func TestDecomposeCutVertex(t *testing.T) {
	// Two triangles joined at a single vertex 2 (bowtie): cut vertex is a
	// clique separator.
	g := graph.New()
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(2, 4, 1)
	g.AddEdge(3, 4, 1)
	d := Decompose(g)
	if len(d.Atoms) != 2 {
		t.Fatalf("bowtie atoms = %d, want 2: %+v", len(d.Atoms), d.Atoms)
	}
	for _, a := range d.Atoms {
		if len(a.Nodes) != 3 {
			t.Fatalf("bowtie atom %v should be a triangle", a.Nodes)
		}
		has2 := false
		for _, v := range a.Nodes {
			has2 = has2 || v == 2
		}
		if !has2 {
			t.Fatalf("cut vertex 2 must be in every atom, got %v", a.Nodes)
		}
	}
}

func TestAtomGraphPreservesWeights(t *testing.T) {
	g := graph.New()
	g.AddEdge(0, 1, 7)
	g.AddEdge(1, 2, 9)
	d := Decompose(g)
	for _, a := range d.Atoms {
		for _, e := range a.Graph.Edges() {
			if g.Weight(e.U, e.V) != e.W {
				t.Fatalf("atom edge %v weight mismatch", e)
			}
		}
	}
}

func randomGraph(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(i)
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j, 1)
			}
		}
	}
	return g
}

// hasCliqueSeparator brute-forces whether g has any clique separator, for
// validating that atoms are indecomposable. Exponential; small graphs only.
func hasCliqueSeparator(g *graph.Graph) bool {
	nodes := g.Nodes()
	n := len(nodes)
	for mask := 0; mask < 1<<n; mask++ {
		var s []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, nodes[i])
			}
		}
		if len(s) >= n-1 {
			continue
		}
		if g.IsClique(s) && g.IsSeparator(s) {
			return true
		}
	}
	return false
}

// Property: atoms cover all vertices and edges, and no atom has a clique
// separator (checked by brute force on small random graphs).
func TestDecomposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		g := randomGraph(r, n, 0.2+r.Float64()*0.4)
		d := Decompose(g)

		covered := map[int]bool{}
		for _, a := range d.Atoms {
			for _, v := range a.Nodes {
				covered[v] = true
			}
		}
		if len(covered) != g.NumNodes() {
			t.Logf("seed %d: vertex cover %d != %d", seed, len(covered), g.NumNodes())
			return false
		}
		for _, e := range g.Edges() {
			found := false
			for _, a := range d.Atoms {
				if a.Graph.HasEdge(e.U, e.V) {
					found = true
					break
				}
			}
			if !found {
				t.Logf("seed %d: edge %v missing from all atoms", seed, e)
				return false
			}
		}
		for _, a := range d.Atoms {
			if hasCliqueSeparator(a.Graph) {
				t.Logf("seed %d: atom %v still has a clique separator", seed, a.Nodes)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the MCS-M triangulation is chordal via its own order.
func TestMCSMChordalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 3+r.Intn(12), 0.15+r.Float64()*0.4)
		tri := MCSM(g)
		return isChordalVia(withFill(g, tri), tri.Order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
