package atoms

import (
	"math/rand"
	"reflect"
	"testing"

	"parmem/internal/graph"
)

func randomAtomGraph(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(i * 2) // non-contiguous ids
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i*2, j*2, 1)
			}
		}
	}
	return g
}

// TestMCSMDenseMatchesRef proves the dense MCS-M bit-identical to the
// map-backed reference: same elimination order and same fill edges for
// every random input.
func TestMCSMDenseMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for iter := 0; iter < 120; iter++ {
		n := r.Intn(30)
		g := randomAtomGraph(r, n, r.Float64()*0.5)
		want := MCSMRef(g)
		got := MCSM(g)
		if !reflect.DeepEqual(got.Order, want.Order) {
			t.Fatalf("iter %d: order %v, want %v\n%s", iter, got.Order, want.Order, g)
		}
		if len(got.Fill) != len(want.Fill) || (len(want.Fill) > 0 && !reflect.DeepEqual(got.Fill, want.Fill)) {
			t.Fatalf("iter %d: fill %v, want %v\n%s", iter, got.Fill, want.Fill, g)
		}
	}
}

// TestDecomposeDenseMatchesRef proves the dense decomposition bit-identical
// to the reference: same atoms (node sets and induced subgraphs), same
// separators, same fill count.
func TestDecomposeDenseMatchesRef(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 80; iter++ {
		n := r.Intn(26)
		g := randomAtomGraph(r, n, r.Float64()*0.4)
		want := DecomposeRef(g)
		got := Decompose(g)
		if len(got.Atoms) != len(want.Atoms) {
			t.Fatalf("iter %d: %d atoms, want %d\n%s", iter, len(got.Atoms), len(want.Atoms), g)
		}
		for i := range want.Atoms {
			if !reflect.DeepEqual(got.Atoms[i].Nodes, want.Atoms[i].Nodes) {
				t.Fatalf("iter %d: atom %d nodes %v, want %v", iter, i, got.Atoms[i].Nodes, want.Atoms[i].Nodes)
			}
			ge, we := got.Atoms[i].Graph.Edges(), want.Atoms[i].Graph.Edges()
			if !reflect.DeepEqual(ge, we) {
				t.Fatalf("iter %d: atom %d edges %v, want %v", iter, i, ge, we)
			}
		}
		if !reflect.DeepEqual(got.Separators, want.Separators) {
			t.Fatalf("iter %d: separators %v, want %v", iter, got.Separators, want.Separators)
		}
		if got.Fill != want.Fill {
			t.Fatalf("iter %d: fill %d, want %d", iter, got.Fill, want.Fill)
		}
	}
}

// TestDecomposeParallelRefMatches pins the parallel reference path to the
// sequential reference path.
func TestDecomposeParallelRefMatches(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	// Several components to actually exercise the fan-out.
	g := graph.New()
	base := 0
	for c := 0; c < 5; c++ {
		for i := 0; i < 6; i++ {
			for j := i + 1; j < 6; j++ {
				if r.Float64() < 0.5 {
					g.AddEdge(base+i, base+j, 1)
				}
			}
		}
		base += 10
	}
	want := DecomposeRef(g)
	got := DecomposeParallelRef(g, 4)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel ref decomposition diverged")
	}
}
