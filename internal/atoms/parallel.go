package atoms

import (
	"sync"

	"parmem/internal/arena"
	"parmem/internal/graph"
)

// DecomposeParallel splits g into its atoms exactly like Decompose,
// fanning the per-connected-component decompositions across at most
// workers goroutines. Components are independent subproblems — each is
// decomposed into a private Decomposition against a read-only view of g —
// and the per-component results are merged in component order, so the
// output is bit-identical to Decompose's for every input.
func DecomposeParallel(g *graph.Graph, workers int) Decomposition {
	return decomposeParallelWith(g, workers, decomposeConnectedDense)
}

// DecomposeParallelRef is DecomposeParallel on the map-backed reference
// implementation (see DecomposeRef).
func DecomposeParallelRef(g *graph.Graph, workers int) Decomposition {
	return decomposeParallelWith(g, workers, decomposeConnectedRef)
}

func decomposeParallelWith(g *graph.Graph, workers int, fn decomposeFunc) Decomposition {
	comps := g.ConnectedComponents()
	if workers > len(comps) {
		workers = len(comps)
	}
	if workers <= 1 || len(comps) < 2 {
		return decomposeWith(g, fn)
	}

	parts := make([]Decomposition, len(comps))
	panics := make([]any, len(comps))
	idx := make(chan int)
	// One arena shard per worker for the whole fan-out: workers recycle
	// their private Scratch between components and never touch the global
	// pool mid-phase.
	shards := arena.GetShards(workers)
	defer shards.Release()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := shards.Worker(w)
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					fn(g.Induced(comps[i]), &parts[i], sc)
				}()
				sc.Reset()
			}
		}(w)
	}
	for i := range comps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			// Re-raise on the caller's goroutine so the usual phase
			// boundary recovery applies.
			panic(r)
		}
	}

	var d Decomposition
	for _, p := range parts {
		d.Atoms = append(d.Atoms, p.Atoms...)
		d.Separators = append(d.Separators, p.Separators...)
		d.Fill += p.Fill
	}
	return d
}
