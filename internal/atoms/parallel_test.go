package atoms

import (
	"math/rand"
	"reflect"
	"testing"

	"parmem/internal/graph"
)

// multiComponentGraph builds nc disjoint random components so the
// parallel decomposition has real fan-out.
func multiComponentGraph(r *rand.Rand, nc int) *graph.Graph {
	g := graph.New()
	base := 0
	for c := 0; c < nc; c++ {
		n := 3 + r.Intn(10)
		sub := randomGraph(r, n, 0.2+r.Float64()*0.4)
		for _, v := range sub.Nodes() {
			g.AddNode(base + v)
		}
		for _, e := range sub.Edges() {
			g.AddEdgeWeight(base+e.U, base+e.V, e.W)
		}
		base += n
	}
	return g
}

// TestDecomposeParallelMatchesSequential checks the determinism contract:
// DecomposeParallel must return exactly what Decompose returns, for any
// worker count, including single-component and empty graphs.
func TestDecomposeParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	graphs := []*graph.Graph{
		graph.New(),
		pathGraph(6),
		completeGraph(5),
	}
	for i := 0; i < 25; i++ {
		graphs = append(graphs, multiComponentGraph(r, 1+r.Intn(6)))
	}
	for i, g := range graphs {
		want := Decompose(g)
		for _, workers := range []int{1, 2, 3, 8} {
			got := DecomposeParallel(g, workers)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("graph %d, workers=%d: parallel decomposition differs from sequential", i, workers)
			}
		}
	}
}
