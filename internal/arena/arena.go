// Package arena provides sync.Pool-backed scratch arenas for the hot
// per-call state of the assignment engine: graph.Dense build buffers,
// coloring scratch, hitting-set combination tables, conflict-graph
// interning maps and cache-key byte buffers.
//
// A Scratch is a set of typed free lists. Hot paths borrow buffers for the
// duration of one call scope:
//
//	sc := arena.Get()
//	defer sc.Release()
//	buf := sc.Ints(n) // zeroed, len n
//
// Ownership rules (see DESIGN §9):
//
//   - Buffers obtained from a Scratch are valid until that Scratch is
//     Released. They must never escape into results returned to callers
//     (Allocation, coloring.Result, cache entries) — escaping state is
//     always freshly allocated.
//   - Every getter returns zeroed memory, so a pooled run is bit-identical
//     to a fresh-allocation run: reused capacity can never leak state
//     between calls.
//   - A nil *Scratch is valid and falls back to plain make. Get returns
//     nil when pooling is disabled (SetEnabled(false)), which turns every
//     call site back into the fresh-allocation path — the differential
//     tests run both modes and compare outputs.
//
// Scratches are recycled through a sync.Pool; Drain swaps the pool out so
// heap profiles and leak-sensitive callers can drop all retained buffers.
package arena

import (
	"sync"
	"sync/atomic"
)

// maxFree bounds how many buffers of one type a Scratch retains across
// Reset, keeping steady-state pool memory proportional to the hottest
// call's working set rather than the sum of everything ever borrowed.
const maxFree = 64

// bufs is a typed free list of slices. Borrowed buffers move to lent so
// Reset can recycle them without the call sites tracking anything.
type bufs[T any] struct {
	free [][]T
	lent [][]T
}

// get returns a zeroed slice of length n, reusing a free buffer whose
// capacity suffices when one exists.
func (b *bufs[T]) get(n int) []T {
	for i := len(b.free) - 1; i >= 0; i-- {
		if cap(b.free[i]) >= n {
			s := b.free[i][:n]
			last := len(b.free) - 1
			b.free[i] = b.free[last]
			b.free[last] = nil
			b.free = b.free[:last]
			clear(s)
			b.lent = append(b.lent, s)
			return s
		}
	}
	s := make([]T, n)
	b.lent = append(b.lent, s)
	return s
}

// pending reports how many borrowed buffers Reset will return.
func (b *bufs[T]) pending() int { return len(b.lent) }

// reset recycles every lent buffer, dropping the excess beyond maxFree.
func (b *bufs[T]) reset() {
	for _, s := range b.lent {
		if len(b.free) < maxFree {
			b.free = append(b.free, s[:0])
		}
	}
	clear(b.lent)
	b.lent = b.lent[:0]
}

// maps is a typed free list of maps, cleared on reuse.
type maps[K comparable, V any] struct {
	free []map[K]V
	lent []map[K]V
}

func (m *maps[K, V]) get(hint int) map[K]V {
	if n := len(m.free); n > 0 {
		mp := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		clear(mp)
		m.lent = append(m.lent, mp)
		return mp
	}
	mp := make(map[K]V, hint)
	m.lent = append(m.lent, mp)
	return mp
}

func (m *maps[K, V]) pending() int { return len(m.lent) }

func (m *maps[K, V]) reset() {
	for _, mp := range m.lent {
		if len(m.free) < maxFree {
			m.free = append(m.free, mp)
		}
	}
	clear(m.lent)
	m.lent = m.lent[:0]
}

// Scratch is one session's worth of reusable engine buffers. It is not
// safe for concurrent use; each goroutine obtains its own via Get.
type Scratch struct {
	ints    bufs[int]
	int32s  bufs[int32]
	bools   bufs[bool]
	uint64s bufs[uint64]
	bytes   bufs[byte]

	intInt   maps[int, int]
	intInt32 maps[int, int32]
	intBool  maps[int, bool]
	pairInt  maps[uint64, int]
	strSet   maps[string, struct{}]

	// Local telemetry tallies: plain fields (the Scratch is single-owner)
	// incremented on the hot getters and flushed to the package counters
	// once per Reset, so observability costs no atomics per borrow.
	gets   int64
	zeroed int64 // bytes handed out zeroed (reused capacity + fresh)

	// inShard marks a Scratch currently owned by a Shards set; its Resets
	// are tallied separately so the per-worker reuse rate is observable.
	inShard bool
}

// Stats is a snapshot of the package-wide arena counters.
type Stats struct {
	// Gets counts buffers and maps borrowed from scratches.
	Gets int64
	// Puts counts buffers and maps returned to the free lists on Reset.
	Puts int64
	// ZeroedBytes counts slice bytes handed out zeroed.
	ZeroedBytes int64
}

// global counters, flushed from per-Scratch tallies on Reset. Disabled
// pooling (nil Scratch) bypasses the arena entirely and counts nothing.
var (
	statGets   atomic.Int64
	statPuts   atomic.Int64
	statZeroed atomic.Int64

	statPoolGets    atomic.Int64
	statShardGets   atomic.Int64
	statShardResets atomic.Int64
)

// ReadStats returns the cumulative arena counters for this process.
func ReadStats() Stats {
	return Stats{
		Gets:        statGets.Load(),
		Puts:        statPuts.Load(),
		ZeroedBytes: statZeroed.Load(),
	}
}

// ShardStats is a snapshot of the worker-sharding counters: how scratches
// reach workers (single Get vs shard handout) and how often shard-owned
// scratches are recycled in place. A healthy parallel phase shows ShardGets
// growing by the worker count per phase and ShardResets growing by the item
// count — the pool itself is only touched at phase boundaries.
type ShardStats struct {
	// PoolGets counts Scratches drawn one at a time via Get.
	PoolGets int64
	// ShardGets counts Scratches handed out as part of a Shards set.
	ShardGets int64
	// ShardResets counts in-place Resets of shard-owned Scratches (one per
	// work item a worker finished without touching the global pool).
	ShardResets int64
}

// ReadShardStats returns the cumulative worker-sharding counters.
func ReadShardStats() ShardStats {
	return ShardStats{
		PoolGets:    statPoolGets.Load(),
		ShardGets:   statShardGets.Load(),
		ShardResets: statShardResets.Load(),
	}
}

// Ints returns a zeroed []int of length n.
func (s *Scratch) Ints(n int) []int {
	if s == nil {
		return make([]int, n)
	}
	s.gets++
	s.zeroed += int64(n) * 8
	return s.ints.get(n)
}

// Int32s returns a zeroed []int32 of length n.
func (s *Scratch) Int32s(n int) []int32 {
	if s == nil {
		return make([]int32, n)
	}
	s.gets++
	s.zeroed += int64(n) * 4
	return s.int32s.get(n)
}

// Bools returns a zeroed []bool of length n.
func (s *Scratch) Bools(n int) []bool {
	if s == nil {
		return make([]bool, n)
	}
	s.gets++
	s.zeroed += int64(n) * 1
	return s.bools.get(n)
}

// Uint64s returns a zeroed []uint64 of length n.
func (s *Scratch) Uint64s(n int) []uint64 {
	if s == nil {
		return make([]uint64, n)
	}
	s.gets++
	s.zeroed += int64(n) * 8
	return s.uint64s.get(n)
}

// Bytes returns a zeroed []byte of length n.
func (s *Scratch) Bytes(n int) []byte {
	if s == nil {
		return make([]byte, n)
	}
	s.gets++
	s.zeroed += int64(n) * 1
	return s.bytes.get(n)
}

// IntMap returns an empty map[int]int.
func (s *Scratch) IntMap(hint int) map[int]int {
	if s == nil {
		return make(map[int]int, hint)
	}
	s.gets++
	return s.intInt.get(hint)
}

// IntInt32Map returns an empty map[int]int32.
func (s *Scratch) IntInt32Map(hint int) map[int]int32 {
	if s == nil {
		return make(map[int]int32, hint)
	}
	s.gets++
	return s.intInt32.get(hint)
}

// IntBoolMap returns an empty map[int]bool.
func (s *Scratch) IntBoolMap(hint int) map[int]bool {
	if s == nil {
		return make(map[int]bool, hint)
	}
	s.gets++
	return s.intBool.get(hint)
}

// PairMap returns an empty map[uint64]int (packed node-pair keys).
func (s *Scratch) PairMap(hint int) map[uint64]int {
	if s == nil {
		return make(map[uint64]int, hint)
	}
	s.gets++
	return s.pairInt.get(hint)
}

// StrSet returns an empty map[string]struct{} (combination dedup keys).
func (s *Scratch) StrSet(hint int) map[string]struct{} {
	if s == nil {
		return make(map[string]struct{}, hint)
	}
	s.gets++
	return s.strSet.get(hint)
}

// Reset recycles every borrowed buffer without returning the Scratch to
// the pool. All previously returned buffers become invalid.
func (s *Scratch) Reset() {
	if s == nil {
		return
	}
	puts := s.ints.pending() + s.int32s.pending() + s.bools.pending() +
		s.uint64s.pending() + s.bytes.pending() +
		s.intInt.pending() + s.intInt32.pending() + s.intBool.pending() +
		s.pairInt.pending() + s.strSet.pending()
	if puts > 0 {
		statPuts.Add(int64(puts))
	}
	if s.inShard {
		statShardResets.Add(1)
	}
	if s.gets > 0 {
		statGets.Add(s.gets)
		statZeroed.Add(s.zeroed)
		s.gets, s.zeroed = 0, 0
	}
	s.ints.reset()
	s.int32s.reset()
	s.bools.reset()
	s.uint64s.reset()
	s.bytes.reset()
	s.intInt.reset()
	s.intInt32.reset()
	s.intBool.reset()
	s.pairInt.reset()
	s.strSet.reset()
}

// Release resets the Scratch and returns it to the pool. The Scratch and
// every buffer obtained from it must not be used afterwards.
func (s *Scratch) Release() {
	if s == nil {
		return
	}
	s.Reset()
	pool.Load().Put(s)
}

// enabled gates pooling globally; differential tests flip it to force the
// fresh-allocation path through every call site.
var enabled atomic.Bool

// pool holds the live sync.Pool behind an atomic pointer so Drain can swap
// in an empty one, releasing all retained buffers to the garbage collector.
var pool atomic.Pointer[sync.Pool]

func init() {
	enabled.Store(true)
	pool.Store(newPool())
}

func newPool() *sync.Pool {
	return &sync.Pool{New: func() any { return new(Scratch) }}
}

// Get returns a pooled Scratch, or nil when pooling is disabled (a nil
// Scratch is valid and allocates fresh buffers on every call).
func Get() *Scratch {
	if !enabled.Load() {
		return nil
	}
	statPoolGets.Add(1)
	return pool.Load().Get().(*Scratch)
}

// Shards is a fixed set of per-worker Scratches drawn from the pool in one
// step. A parallel phase obtains one Shards sized to its worker pool, each
// worker indexes its private slot with Worker and Resets it between work
// items, and Release returns the whole set — so the phase costs O(workers)
// pool operations total instead of two per work item, and no two cores ever
// contend on the sync.Pool while the phase runs.
//
// When pooling is disabled every slot is nil, which is the valid
// fresh-allocation Scratch — the parallel differential oracle keeps working
// unchanged.
type Shards struct {
	scs []*Scratch
}

// GetShards returns n per-worker Scratches (nil slots when pooling is
// disabled).
func GetShards(n int) *Shards {
	sh := &Shards{scs: make([]*Scratch, n)}
	if !enabled.Load() {
		return sh
	}
	p := pool.Load()
	for i := range sh.scs {
		sc := p.Get().(*Scratch)
		sc.inShard = true
		sh.scs[i] = sc
	}
	statShardGets.Add(int64(n))
	return sh
}

// Worker returns worker i's private Scratch (possibly nil — the valid
// fresh-allocation Scratch — when pooling is disabled).
func (sh *Shards) Worker(i int) *Scratch { return sh.scs[i] }

// Len returns the number of shards.
func (sh *Shards) Len() int { return len(sh.scs) }

// Release resets every shard and returns it to the pool. No Scratch of the
// set, nor any buffer borrowed from one, may be used afterwards.
func (sh *Shards) Release() {
	for i, sc := range sh.scs {
		if sc != nil {
			// Clear the mark first: the final drain is pool bookkeeping, not
			// a per-item reuse, so it stays out of ShardResets.
			sc.inShard = false
			sc.Release()
			sh.scs[i] = nil
		}
	}
}

// SetEnabled turns pooling on or off globally and reports the previous
// setting. Intended for tests; disabling also drains retained memory.
func SetEnabled(on bool) bool {
	prev := enabled.Swap(on)
	if !on {
		Drain()
	}
	return prev
}

// Enabled reports whether pooling is on.
func Enabled() bool { return enabled.Load() }

// Drain discards every pooled Scratch (and all buffers they retain) by
// swapping in a fresh pool. Heap profiling calls this before writing the
// profile so retained scratch does not show up as live engine state.
func Drain() {
	pool.Store(newPool())
}
