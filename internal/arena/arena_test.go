package arena

import (
	"sync"
	"testing"
)

func TestBuffersZeroedOnReuse(t *testing.T) {
	sc := Get()
	if sc == nil {
		t.Fatal("Get returned nil with pooling enabled")
	}
	b := sc.Ints(8)
	for i := range b {
		b[i] = i + 1
	}
	first := &b[0]
	sc.Reset()
	b2 := sc.Ints(4)
	if &b2[0] != first {
		t.Error("expected buffer reuse after Reset")
	}
	for i, v := range b2 {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %d", i, v)
		}
	}
	sc.Release()
}

func TestMapsClearedOnReuse(t *testing.T) {
	sc := Get()
	defer sc.Release()
	m := sc.IntMap(4)
	m[1] = 2
	m[3] = 4
	sc.Reset()
	m2 := sc.IntMap(0)
	if len(m2) != 0 {
		t.Fatalf("reused map not cleared: %v", m2)
	}
}

func TestNilScratchAllocatesFresh(t *testing.T) {
	var sc *Scratch
	b := sc.Ints(5)
	if len(b) != 5 {
		t.Fatalf("nil Scratch Ints len = %d, want 5", len(b))
	}
	if m := sc.PairMap(3); m == nil {
		t.Fatal("nil Scratch PairMap returned nil map")
	}
	sc.Reset()   // must not panic
	sc.Release() // must not panic
}

func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	if prev := SetEnabled(false); !prev {
		t.Error("pooling should start enabled")
	}
	if Get() != nil {
		t.Error("Get should return nil while disabled")
	}
	SetEnabled(true)
	if Get() == nil {
		t.Error("Get should return a Scratch when enabled")
	}
}

func TestDistinctBuffersWithinScope(t *testing.T) {
	sc := Get()
	defer sc.Release()
	a := sc.Ints(4)
	b := sc.Ints(4)
	a[0] = 7
	if b[0] != 0 {
		t.Fatal("concurrent borrows alias the same buffer")
	}
}

func TestRetentionBounded(t *testing.T) {
	sc := Get()
	for i := 0; i < 4*maxFree; i++ {
		sc.Ints(16)
	}
	sc.Reset()
	if n := len(sc.ints.free); n > maxFree {
		t.Fatalf("free list retained %d buffers, cap %d", n, maxFree)
	}
	sc.Release()
}

func TestConcurrentGetRelease(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sc := Get()
				b := sc.Ints(32)
				for j := range b {
					if b[j] != 0 {
						panic("dirty buffer")
					}
					b[j] = j
				}
				m := sc.IntMap(8)
				m[i] = i
				sc.Release()
			}
		}()
	}
	wg.Wait()
	Drain()
}
