package assign

import (
	"reflect"
	"testing"
	"time"

	"parmem/internal/alloccache"
	"parmem/internal/duplication"
)

func roundTrip(t *testing.T, enc func(alloccache.Entry) ([]byte, error), dec func([]byte) (alloccache.Entry, error), e alloccache.Entry) alloccache.Entry {
	t.Helper()
	data, err := enc(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := dec(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestDupEntryRoundTrip(t *testing.T) {
	// Bit 63 set: the case JSON numbers cannot carry.
	e := &dupResultEntry{
		copies:    duplication.Copies{0: 1, 7: 1 << 63, 3: (1 << 63) | 5},
		residual:  []int{4, 1, 9},
		newCopies: 12,
	}
	got := roundTrip(t, encodeDupEntry, decodeDupEntry, e)
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip:\n got %#v\nwant %#v", got, e)
	}
}

func TestDupEntryEmptyShapes(t *testing.T) {
	// CloneEntry yields a non-nil empty map and nil slices; the decoder
	// must reproduce that exact shape.
	e := &dupResultEntry{copies: duplication.Copies{}, residual: nil, newCopies: 0}
	got := roundTrip(t, encodeDupEntry, decodeDupEntry, e).(*dupResultEntry)
	if got.copies == nil || len(got.copies) != 0 {
		t.Fatalf("copies = %#v, want non-nil empty", got.copies)
	}
	if got.residual != nil {
		t.Fatalf("residual = %#v, want nil", got.residual)
	}
	if !reflect.DeepEqual(got, e.CloneEntry()) {
		t.Fatalf("decode differs from CloneEntry shape")
	}
}

func TestAllocEntryRoundTrip(t *testing.T) {
	e := &allocEntry{al: Allocation{
		Copies:      duplication.Copies{1: 3, 2: 1 << 63},
		Unassigned:  []int{5},
		Forced:      nil,
		SingleCopy:  10,
		MultiCopy:   2,
		TotalCopies: 14,
		Atoms:       3,
		Degraded:    false,
		Phases: []PhaseReport{
			{Phase: "stor1", Method: "exhaustive", Nodes: 1234, Elapsed: 5 * time.Millisecond, Cached: true},
			{Phase: "stor2/global", Method: "coloring", Fallback: "hittingset"},
		},
	}}
	got := roundTrip(t, encodeAllocEntry, decodeAllocEntry, e)
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip:\n got %#v\nwant %#v", got, e)
	}
}

func TestAtomColorRoundTrip(t *testing.T) {
	e := &atomColorResult{assign: map[int]int{0: 1, 4: 0, 9: 3}, unassigned: []int{2}}
	got := roundTrip(t, encodeAtomColorEntry, decodeAtomColorEntry, e)
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip:\n got %#v\nwant %#v", got, e)
	}
	empty := &atomColorResult{assign: map[int]int{}, unassigned: nil}
	got2 := roundTrip(t, encodeAtomColorEntry, decodeAtomColorEntry, empty).(*atomColorResult)
	if got2.assign == nil || got2.unassigned != nil {
		t.Fatalf("empty shapes: %#v", got2)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	e := &allocEntry{al: Allocation{
		Copies:     duplication.Copies{1: 3},
		Unassigned: []int{5, 6},
		Phases:     []PhaseReport{{Phase: "stor1", Method: "exhaustive"}},
	}}
	data, err := encodeAllocEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	decoders := map[string]func([]byte) (alloccache.Entry, error){
		"assign":    decodeAllocEntry,
		"dup":       decodeDupEntry,
		"atomcolor": decodeAtomColorEntry,
	}
	for name, dec := range decoders {
		// Truncations at every length must error, never panic or half-build.
		for n := 0; n < len(data); n++ {
			if _, err := dec(data[:n]); err == nil && !(name == "assign" && n == len(data)) {
				// A strict prefix can only legitimately decode at the assign
				// decoder on the full payload.
				t.Fatalf("%s decoder accepted truncation at %d", name, n)
			}
		}
		// Trailing garbage must error too.
		if _, err := dec(append(append([]byte(nil), data...), 0x7)); err == nil {
			t.Fatalf("%s decoder accepted trailing bytes", name)
		}
	}
	// Wrong format byte.
	bad := append([]byte(nil), data...)
	bad[0] = 0x7F
	if _, err := decodeAllocEntry(bad); err == nil {
		t.Fatal("accepted wrong format byte")
	}
	// Invalid bool byte.
	data2, _ := encodeDupEntry(&dupResultEntry{copies: duplication.Copies{}})
	if _, err := decodeAllocEntry(data2); err == nil {
		t.Fatal("assign decoder accepted a dup payload")
	}
}

func TestCodecsRegisteredForAllLevels(t *testing.T) {
	// The init registration is what wires the disk tier; prove each level
	// round-trips through the cache-facing registry path by exercising a
	// cache with a byte backing.
	type kv struct{ m map[string][]byte }
	back := &kv{m: map[string][]byte{}}
	backing := backingFuncs{
		get: func(k string) ([]byte, bool) { v, ok := back.m[k]; return v, ok },
		put: func(k string, v []byte) { back.m[k] = v },
	}
	c := alloccache.New(8)
	c.SetBacking(backing)

	keys := map[string]alloccache.Entry{}
	{
		k := alloccache.NewKey(nil)
		k.Str("dup")
		k.Str("x")
		keys[k.String()] = &dupResultEntry{copies: duplication.Copies{2: 1 << 63}, residual: []int{1}}
	}
	{
		k := alloccache.NewKey(nil)
		k.Str("assign")
		k.Str("x")
		keys[k.String()] = &allocEntry{al: Allocation{Copies: duplication.Copies{0: 1}, TotalCopies: 1, SingleCopy: 1}}
	}
	{
		k := alloccache.NewKey(nil)
		k.Str("atomcolor")
		k.Str("x")
		keys[k.String()] = &atomColorResult{assign: map[int]int{1: 0}}
	}
	for key, e := range keys {
		c.Put(key, e)
	}
	if len(back.m) != 3 {
		t.Fatalf("backing holds %d records, want 3 (a level is missing its codec)", len(back.m))
	}
	// A cold cache over the same backing must reproduce every entry.
	c2 := alloccache.New(8)
	c2.SetBacking(backing)
	for key, want := range keys {
		got, ok := c2.Get(key)
		if !ok {
			t.Fatalf("cold cache missed %q", key[:16])
		}
		if !reflect.DeepEqual(got, want.(alloccache.Entry).CloneEntry()) {
			t.Fatalf("disk-tier entry differs:\n got %#v\nwant %#v", got, want)
		}
	}
}

type backingFuncs struct {
	get func(string) ([]byte, bool)
	put func(string, []byte)
}

func (b backingFuncs) Get(key string) ([]byte, bool) { return b.get(key) }
func (b backingFuncs) Put(key string, val []byte)    { b.put(key, val) }
