package assign

// Incremental recompilation (STOR1). A program edit perturbs only the
// conflict components reachable from the touched values — every
// instruction's operands form a clique, so each instruction lives in
// exactly one connected component, and both the coloring pipeline and the
// duplication cores are component-local (the invariant the parallel engine
// of duplication's partition.go is built on). The incremental engine
// exploits it end to end: the frozen Dense snapshot is patched per edited
// edge, only the dirty components re-enter decompose/color/duplicate,
// untouched components' results are stitched straight out of the prior
// run's per-component records, and one global duplication.Finish
// (per-module load is a whole-program quantity) completes an allocation
// bit-identical to a full recompile.

import (
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"parmem/internal/alloccache"
	"parmem/internal/budget"
	"parmem/internal/conflict"
	"parmem/internal/duplication"
	"parmem/internal/graph"
	"parmem/internal/telemetry"
)

// Delta is a program edit against the instruction stream of a prior
// incremental result. Changed and Removed index into the PRIOR stream;
// Added instructions append after it. The edited stream preserves the
// relative order of untouched instructions — the property that keeps
// untouched components' duplication work orders, and therefore their
// results, bit-identical to a cold run of the edited program.
type Delta struct {
	Changed []ChangedInstr
	Removed []int
	Added   []conflict.Instruction
}

// ChangedInstr replaces the instruction at Index with Instr.
type ChangedInstr struct {
	Index int
	Instr conflict.Instruction
}

// IncrStats reports what the incremental engine reused versus recomputed.
type IncrStats struct {
	// Components is the number of conflict components of the (new) program.
	Components int
	// Dirty is how many components were recomputed (touched by the delta,
	// or not matchable against the prior run).
	Dirty int
	// Reused is how many components' records were stitched from the prior
	// result without recomputation.
	Reused int
	// CacheHits is how many dirty components were served from the
	// alloccache's "comp" level instead of re-running color/duplicate.
	CacheHits int
	// Full reports that the engine fell back to a full recompilation (no
	// prior state, incompatible options, degraded prior result, or a
	// residual conflict after stitching).
	Full bool
}

// compRecord is one component's slice of an assignment: the sorted member
// values, the component's instructions in stream order, the values its
// coloring rejected (sorted), its post-cores copy table (pre-Finish; values
// that gained no storage are absent — the global Finish places them), and
// its atom count. Records are immutable once built: reuse shares pointers
// and the stitch clones before mutating.
type compRecord struct {
	values     []int
	instrs     []conflict.Instruction
	unassigned []int
	copies     duplication.Copies
	atoms      int
}

// IncrState is the retained state of an incremental assignment: the exact
// instruction stream, the frozen (patched) Dense snapshot of its conflict
// graph, per-value instruction refcounts, and the per-component records.
// It is immutable — AssignDelta returns a fresh state and never mutates
// its input, so concurrent deltas against one base are safe.
type IncrState struct {
	instrs []conflict.Instruction
	dense  *graph.Dense
	valRef map[int]int // value -> number of instructions using it
	comps  []*compRecord
	sig    string // option fingerprint the records are valid under
	// usable is false when the prior result was budget-dependent (degraded
	// or meter-exhausted): its records may not match what an unbudgeted
	// cold run produces, so the next delta recompiles in full.
	usable bool
}

// Instructions returns a copy of the state's instruction stream (the base
// a Delta's indices refer to).
func (s *IncrState) Instructions() []conflict.Instruction {
	out := make([]conflict.Instruction, len(s.instrs))
	for i, in := range s.instrs {
		out[i] = append(conflict.Instruction(nil), in...)
	}
	return out
}

// NumInstructions returns the length of the state's instruction stream.
func (s *IncrState) NumInstructions() int { return len(s.instrs) }

// incrSig fingerprints every option the per-component records depend on.
// Workers and Budget are deliberately absent for the same reason they are
// absent from assignKey: the parallel engine is bit-identical and only
// budget-independent results are retained.
func incrSig(opt Options) string {
	k := alloccache.NewKey(nil)
	k.Str("incr")
	k.Int(opt.K)
	k.Int(int(opt.Method))
	k.Int(int(opt.Pick))
	k.Int(boolBit(opt.Reference))
	k.Int(boolBit(opt.DisableAtoms))
	return k.String()
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// validateIncr rejects option combinations the incremental engine does not
// support: the dirty-region rule relies on STOR1's empty precoloring and
// empty Initial (STOR2/3 thread allocations across phases, so a component
// is no longer a function of its own instructions alone).
func validateIncr(opt Options) error {
	if err := opt.validate(); err != nil {
		return err
	}
	if opt.Strategy != STOR1 {
		return fmt.Errorf("assign: incremental recompilation supports STOR1 only, not %v", opt.Strategy)
	}
	return nil
}

// partitionInstrs splits the stream into its conflict components: one
// record per connected component of the operand-sharing relation, values
// sorted, instructions in stream order, components ordered by smallest
// member value. Instructions with no operands belong to no component (they
// are trivially conflict-free; the global Finish still scans them).
func partitionInstrs(instrs []conflict.Instruction) []*compRecord {
	parent := map[int]int{}
	var find func(v int) int
	find = func(v int) int {
		p, ok := parent[v]
		if !ok {
			parent[v] = v
			return v
		}
		if p != v {
			p = find(p)
			parent[v] = p
		}
		return p
	}
	norm := make([]conflict.Instruction, len(instrs))
	for i, instr := range instrs {
		ops := instr.Normalize()
		norm[i] = ops
		for j := 1; j < len(ops); j++ {
			ra, rb := find(ops[0]), find(ops[j])
			if ra != rb {
				parent[ra] = rb
			}
		}
		if len(ops) > 0 {
			find(ops[0])
		}
	}
	byRoot := map[int]*compRecord{}
	for i, ops := range norm {
		if len(ops) == 0 {
			continue
		}
		r := find(ops[0])
		c, ok := byRoot[r]
		if !ok {
			c = &compRecord{}
			byRoot[r] = c
		}
		c.instrs = append(c.instrs, instrs[i])
	}
	for v := range parent {
		byRoot[find(v)].values = append(byRoot[find(v)].values, v)
	}
	comps := make([]*compRecord, 0, len(byRoot))
	for _, c := range byRoot {
		sort.Ints(c.values)
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].values[0] < comps[j].values[0] })
	return comps
}

// compEntry adapts a compRecord to the alloccache (the "comp" level).
type compEntry struct{ rec compRecord }

func (e *compEntry) CloneEntry() alloccache.Entry {
	return &compEntry{rec: compRecord{
		values:     append([]int(nil), e.rec.values...),
		instrs:     e.rec.instrs, // instruction slices are never mutated
		unassigned: append([]int(nil), e.rec.unassigned...),
		copies:     e.rec.copies.Clone(),
		atoms:      e.rec.atoms,
	}}
}

// compKey signs one component subproblem: the options that shape its
// result plus its exact instruction sequence (which determines its values,
// graph, and duplication work order).
func compKey(instrs []conflict.Instruction, opt Options) string {
	k := alloccache.NewKey(make([]byte, 0, 256))
	k.Str("comp")
	k.Int(opt.K)
	k.Int(int(opt.Method))
	k.Int(int(opt.Pick))
	k.Int(boolBit(opt.Reference))
	k.Int(boolBit(opt.DisableAtoms))
	k.Int(len(instrs))
	for _, instr := range instrs {
		k.Ints(instr)
	}
	return k.String()
}

// valuesKey signs a sorted value set, for matching new components against
// prior records.
func valuesKey(values []int) string {
	k := alloccache.NewKey(make([]byte, 0, 128))
	k.Ints(values)
	return k.String()
}

// solveDirty recomputes the dirty components in place: each is served from
// the "comp" cache level when possible, otherwise colored against the
// patched snapshot (decompose → atoms → urgency coloring, the normal
// pipeline) and then duplicated — all misses in ONE cores call, whose
// internal partition fans them across the worker pool. It returns the
// merged fallback label ("" when every core completed its primary
// strategy).
func (st *phaseState) solveDirty(dirty []*compRecord, snap *graph.Dense, opt Options, stats *IncrStats) (string, error) {
	var pending []*compRecord
	assigned := map[int]int{}
	csp := st.rec.StartSpan("incr_color", st.root)
	for _, rec := range dirty {
		if opt.Cache != nil {
			if e, ok := opt.Cache.Get(compKey(rec.instrs, opt)); ok {
				hit := e.(*compEntry).rec // Get already deep-cloned
				rec.unassigned = hit.unassigned
				rec.copies = hit.copies
				rec.atoms = hit.atoms
				stats.CacheHits++
				continue
			}
		}
		g := snap.InducedGraph(rec.values)
		atoms0 := st.atoms
		assignMap, unassigned := st.colorPhase(g, opt)
		rec.atoms = st.atoms - atoms0
		rec.unassigned = append([]int(nil), unassigned...)
		sort.Ints(rec.unassigned)
		for v, m := range assignMap {
			assigned[v] = m
		}
		pending = append(pending, rec)
	}
	if csp != nil {
		csp.SetAttr("dirty", int64(len(dirty)))
		csp.SetAttr("cache_hits", int64(stats.CacheHits))
		csp.End()
	}
	if len(pending) == 0 {
		return "", nil
	}

	// One duplication-cores pass over every pending component. Within-
	// component instruction order is preserved, so each core sees the same
	// work order a whole-program run would give it; cross-component order
	// is irrelevant (cores are component-local).
	var instrs []conflict.Instruction
	var unassigned []int
	for _, rec := range pending {
		instrs = append(instrs, rec.instrs...)
		unassigned = append(unassigned, rec.unassigned...)
	}
	sort.Ints(unassigned)
	in := duplication.Input{
		Instrs:     instrs,
		Assigned:   assigned,
		Unassigned: unassigned,
		K:          opt.K,
		Meter:      st.meter,
	}
	dsp := st.rec.StartSpan("incr_duplicate", st.root)
	var copies duplication.Copies
	var fb string
	var err error
	if opt.Method == Backtrack {
		copies, fb, err = duplication.BacktrackCores(in, opt.workerCount())
	} else {
		copies, fb, err = duplication.HittingSetCores(in, opt.workerCount())
	}
	if dsp != nil {
		dsp.SetAttr("components", int64(len(pending)))
		if fb != "" {
			dsp.SetAttrStr("fallback", fb)
		}
		dsp.End()
	}
	if err != nil {
		return "", err
	}

	// Split the merged copy table back into per-component records
	// (components hold disjoint value sets).
	for _, rec := range pending {
		rec.copies = make(duplication.Copies, len(rec.values))
		for _, v := range rec.values {
			if s, ok := copies[v]; ok && s != 0 {
				rec.copies[v] = s
			}
		}
		// Like every other cache level: only budget-independent results
		// are memoized.
		if opt.Cache != nil && fb == "" && !st.meter.Exhausted() {
			opt.Cache.Put(compKey(rec.instrs, opt), &compEntry{rec: *rec})
		}
	}
	return fb, nil
}

// stitch merges every component record (reused and fresh) and runs the
// single global Finish: load-balanced placement of copyless values, the
// residual conflict scan, and the copy accounting. ok is false when a
// residual conflict survives — never the case for STOR1 inputs, but the
// caller falls back to a full recompile rather than trust the stitch.
func (st *phaseState) stitch(instrs []conflict.Instruction, comps []*compRecord, opt Options) (Allocation, bool) {
	var unassigned []int
	atoms := 0
	merged := duplication.Copies{}
	for _, rec := range comps {
		unassigned = append(unassigned, rec.unassigned...)
		atoms += rec.atoms
		for v, s := range rec.copies {
			merged[v] = s
		}
	}
	sort.Ints(unassigned)
	in := duplication.Input{
		Instrs:     instrs,
		Unassigned: unassigned,
		K:          opt.K,
		Meter:      st.meter,
	}
	ssp := st.rec.StartSpan("incr_stitch", st.root)
	res := duplication.Finish(in, merged)
	if ssp != nil {
		ssp.SetAttr("components", int64(len(comps)))
		ssp.SetAttr("residual", int64(len(res.Residual)))
		ssp.End()
	}
	if len(res.Residual) > 0 {
		return Allocation{}, false
	}
	al := Allocation{
		Copies:     res.Copies,
		Unassigned: unassigned,
		Atoms:      atoms,
	}
	for _, s := range al.Copies {
		al.TotalCopies += s.Count()
		if s.Count() > 1 {
			al.MultiCopy++
		} else if s.Count() == 1 {
			al.SingleCopy++
		}
	}
	return al, true
}

// incrPhaseState builds the shared phase bookkeeping of an incremental
// run, mirroring Assign's meter and span setup.
func incrPhaseState(opt Options, spanName string) *phaseState {
	st := newPhaseState()
	st.phase = spanName
	if opt.Meter != nil {
		st.meter = opt.Meter
	} else {
		st.meter = budget.NewMeter(opt.Ctx, opt.Budget.BacktrackNodes(), opt.Budget.MaxDuplicationTime)
	}
	st.rec = opt.Telemetry
	if opt.Parent != nil {
		st.root = st.rec.StartSpan(spanName, opt.Parent)
	} else {
		st.root = st.rec.StartSpanContext(opt.Ctx, spanName, nil)
	}
	if st.root != nil {
		st.root.SetAttrStr("method", opt.Method.String())
		st.root.SetAttr("k", int64(opt.K))
	}
	return st
}

// AssignIncremental is the cold entry of the incremental engine: it solves
// p like Assign(STOR1) — the result is bit-identical — while also
// retaining the per-component records, refcounts, and frozen snapshot a
// later AssignDelta stitches against.
func AssignIncremental(p Program, opt Options) (al Allocation, state *IncrState, stats IncrStats, err error) {
	st := incrPhaseState(opt, "assign_incremental")
	defer func() {
		if r := recover(); r != nil {
			al, state, stats = Allocation{}, nil, IncrStats{}
			err = &budget.InternalError{Phase: "assign/" + st.phase, Value: r, Stack: debug.Stack()}
		}
	}()
	defer st.root.End()
	if err := validateIncr(opt); err != nil {
		return Allocation{}, nil, IncrStats{}, err
	}
	if err := conflict.Validate(p.Instrs, opt.K); err != nil {
		return Allocation{}, nil, IncrStats{}, err
	}
	if err := st.meter.Canceled(); err != nil {
		return Allocation{}, nil, IncrStats{}, fmt.Errorf("assign: %w", err)
	}
	stats.Full = true
	al, state, err = st.solveCold(p.Instrs, opt, &stats)
	return al, state, stats, err
}

// solveCold recomputes everything from scratch: full conflict build, every
// component dirty. It still goes through the component machinery so the
// resulting state carries records for the next delta.
func (st *phaseState) solveCold(instrs []conflict.Instruction, opt Options, stats *IncrStats) (Allocation, *IncrState, error) {
	start := time.Now()
	nodes0 := st.meter.Spent()
	st.phase = "incremental/cold"
	own := append([]conflict.Instruction(nil), instrs...)
	g := st.buildConflict("incremental", own)
	snap := graph.FromGraph(g) // fresh storage: the snapshot outlives this call
	valRef := map[int]int{}
	for _, instr := range own {
		for _, v := range instr.Normalize() {
			valRef[v]++
		}
	}
	comps := partitionInstrs(own)
	stats.Components = len(comps)
	stats.Dirty = len(comps)
	fb, err := st.solveDirty(comps, snap, opt, stats)
	if err != nil {
		return Allocation{}, nil, fmt.Errorf("assign: incremental: %w", err)
	}
	al, ok := st.stitch(own, comps, opt)
	if !ok {
		// Residual after stitch: cannot happen for STOR1 (coloring gives
		// pinned operands pairwise-distinct modules), but if it ever does,
		// hand the program to the battle-tested full path and mark the
		// state unusable for deltas.
		p := Program{Instrs: own}
		fopt := opt
		fopt.Meter = st.meter
		al, err := Assign(p, fopt)
		if err != nil {
			return Allocation{}, nil, err
		}
		return al, &IncrState{instrs: own, sig: incrSig(opt)}, nil
	}
	al.Degraded = fb != ""
	if al.Degraded {
		st.degraded = true
	}
	al.Phases = []PhaseReport{{
		Phase:    "incremental/cold",
		Method:   opt.Method.String(),
		Nodes:    st.meter.Spent() - nodes0,
		Elapsed:  time.Since(start),
		Fallback: fb,
		Cached:   stats.CacheHits > 0,
	}}
	state := &IncrState{
		instrs: own,
		dense:  snap,
		valRef: valRef,
		comps:  comps,
		sig:    incrSig(opt),
		usable: fb == "" && !st.meter.Exhausted(),
	}
	return al, state, nil
}

// applyDelta edits prev's stream: Changed replaces in place, Removed
// deletes, Added appends — preserving the relative order of untouched
// instructions. It returns the new stream and the set of touched values
// (operands of every edited instruction, old and new versions both).
func applyDelta(prev []conflict.Instruction, d Delta) ([]conflict.Instruction, map[int]bool, error) {
	n := len(prev)
	seen := map[int]bool{}
	for _, c := range d.Changed {
		if c.Index < 0 || c.Index >= n {
			return nil, nil, fmt.Errorf("assign: delta: changed index %d out of range [0,%d)", c.Index, n)
		}
		if seen[c.Index] {
			return nil, nil, fmt.Errorf("assign: delta: index %d edited twice", c.Index)
		}
		seen[c.Index] = true
	}
	for _, i := range d.Removed {
		if i < 0 || i >= n {
			return nil, nil, fmt.Errorf("assign: delta: removed index %d out of range [0,%d)", i, n)
		}
		if seen[i] {
			return nil, nil, fmt.Errorf("assign: delta: index %d edited twice", i)
		}
		seen[i] = true
	}
	touched := map[int]bool{}
	touch := func(instr conflict.Instruction) {
		for _, v := range instr.Normalize() {
			touched[v] = true
		}
	}
	next := make([]conflict.Instruction, 0, n+len(d.Added)-len(d.Removed))
	removed := map[int]bool{}
	for _, i := range d.Removed {
		removed[i] = true
	}
	changed := map[int]conflict.Instruction{}
	for _, c := range d.Changed {
		changed[c.Index] = append(conflict.Instruction(nil), c.Instr...)
	}
	for i, instr := range prev {
		if removed[i] {
			touch(instr)
			continue
		}
		if ni, ok := changed[i]; ok {
			touch(instr)
			touch(ni)
			next = append(next, ni)
			continue
		}
		next = append(next, instr)
	}
	for _, instr := range d.Added {
		ni := append(conflict.Instruction(nil), instr...)
		touch(ni)
		next = append(next, ni)
	}
	return next, touched, nil
}

// deltaGraphEdits derives the conflict-graph edit from the instruction
// delta: per-pair weight adjustments (co-occurrence counts) plus the value
// refcount updates that decide node insertion and removal. newRef is the
// updated refcount map (fresh — prev's map is not mutated).
func deltaGraphEdits(prevRef map[int]int, d Delta, prev []conflict.Instruction) (wds []graph.WeightDelta, addNodes, dropNodes []int, newRef map[int]int) {
	newRef = make(map[int]int, len(prevRef))
	for v, c := range prevRef {
		newRef[v] = c
	}
	apply := func(instr conflict.Instruction, sign int) {
		ops := instr.Normalize()
		for _, v := range ops {
			newRef[v] += sign
		}
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				wds = append(wds, graph.WeightDelta{U: ops[i], V: ops[j], DW: int32(sign)})
			}
		}
	}
	for _, i := range d.Removed {
		apply(prev[i], -1)
	}
	for _, c := range d.Changed {
		apply(prev[c.Index], -1)
		apply(c.Instr, +1)
	}
	for _, instr := range d.Added {
		apply(instr, +1)
	}
	for v, c := range newRef {
		pc := prevRef[v]
		switch {
		case pc == 0 && c > 0:
			addNodes = append(addNodes, v)
		case pc > 0 && c <= 0:
			dropNodes = append(dropNodes, v)
			delete(newRef, v)
		case c <= 0:
			delete(newRef, v)
		}
	}
	sort.Ints(addNodes)
	sort.Ints(dropNodes)
	return wds, addNodes, dropNodes, newRef
}

// instrsEqual reports whether two instruction sequences are identical.
func instrsEqual(a, b []conflict.Instruction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// AssignDelta applies d to the program held by prev and recompiles
// incrementally: the Dense snapshot is patched, components containing no
// touched value reuse their prior records, and only the dirty region
// re-runs the pipeline. The returned Allocation is bit-identical to a cold
// recompile of the edited program (Phases excepted — its timings and
// budget charges honestly reflect the incremental work). prev is never
// mutated; the returned state supersedes it.
func AssignDelta(prev *IncrState, d Delta, opt Options) (al Allocation, state *IncrState, stats IncrStats, err error) {
	st := incrPhaseState(opt, "assign_delta")
	defer func() {
		if r := recover(); r != nil {
			al, state, stats = Allocation{}, nil, IncrStats{}
			err = &budget.InternalError{Phase: "assign/" + st.phase, Value: r, Stack: debug.Stack()}
		}
	}()
	defer st.root.End()
	st.phase = "delta/validate"
	if err := validateIncr(opt); err != nil {
		return Allocation{}, nil, IncrStats{}, err
	}
	if prev == nil {
		return Allocation{}, nil, IncrStats{}, fmt.Errorf("assign: delta: nil prior state")
	}
	next, touched, err := applyDelta(prev.instrs, d)
	if err != nil {
		return Allocation{}, nil, IncrStats{}, err
	}
	if err := conflict.Validate(next, opt.K); err != nil {
		return Allocation{}, nil, IncrStats{}, err
	}
	if err := st.meter.Canceled(); err != nil {
		return Allocation{}, nil, IncrStats{}, fmt.Errorf("assign: %w", err)
	}

	// A prior result produced under different options, or one that was
	// budget-dependent, cannot seed reuse: recompile in full (the fresh
	// state makes the next delta incremental again).
	if !prev.usable || prev.sig != incrSig(opt) || prev.dense == nil {
		stats.Full = true
		st.rec.Counter(telemetry.MIncrFull).Inc()
		al, state, err = st.solveCold(next, opt, &stats)
		return al, state, stats, err
	}

	start := time.Now()
	nodes0 := st.meter.Spent()
	st.phase = "delta/patch"
	wds, addNodes, dropNodes, newRef := deltaGraphEdits(prev.valRef, d, prev.instrs)
	psp := st.rec.StartSpan("incr_patch", st.root)
	snap := prev.dense.Patch(wds, addNodes, dropNodes)
	if psp != nil {
		psp.SetAttr("edge_deltas", int64(len(wds)))
		psp.SetAttr("nodes_added", int64(len(addNodes)))
		psp.SetAttr("nodes_dropped", int64(len(dropNodes)))
		psp.End()
	}

	// Dirty-region rule: a component is reusable iff it contains no
	// touched value AND the prior run had a component with the identical
	// value set (any edited instruction inside a component marks all its
	// operands touched, so merges are always dirty; splits either carry a
	// touched value or simply find no prior match). The instruction-list
	// comparison is a structural guard — the value-set match already
	// implies it for untouched components.
	st.phase = "delta/partition"
	comps := partitionInstrs(next)
	stats.Components = len(comps)
	prevByValues := make(map[string]*compRecord, len(prev.comps))
	for _, rec := range prev.comps {
		prevByValues[valuesKey(rec.values)] = rec
	}
	var dirty []*compRecord
	for i, rec := range comps {
		clean := true
		for _, v := range rec.values {
			if touched[v] {
				clean = false
				break
			}
		}
		if clean {
			if old, ok := prevByValues[valuesKey(rec.values)]; ok && instrsEqual(old.instrs, rec.instrs) {
				comps[i] = old // reuse the immutable prior record
				stats.Reused++
				continue
			}
		}
		dirty = append(dirty, rec)
	}
	stats.Dirty = len(dirty)
	st.rec.Counter(telemetry.MIncrDirty).Add(int64(stats.Dirty))
	st.rec.Counter(telemetry.MIncrReused).Add(int64(stats.Reused))

	st.phase = "delta/solve"
	fb, err := st.solveDirty(dirty, snap, opt, &stats)
	if err != nil {
		return Allocation{}, nil, IncrStats{}, fmt.Errorf("assign: delta: %w", err)
	}
	st.phase = "delta/stitch"
	al, ok := st.stitch(next, comps, opt)
	if !ok {
		stats = IncrStats{Full: true}
		st.rec.Counter(telemetry.MIncrFull).Inc()
		al, state, err = st.solveCold(next, opt, &stats)
		return al, state, stats, err
	}
	al.Degraded = fb != ""
	al.Phases = []PhaseReport{{
		Phase:    "incremental/delta",
		Method:   opt.Method.String(),
		Nodes:    st.meter.Spent() - nodes0,
		Elapsed:  time.Since(start),
		Fallback: fb,
		Cached:   stats.CacheHits > 0 || stats.Reused > 0,
	}}
	if st.root != nil {
		st.root.SetAttr("components", int64(stats.Components))
		st.root.SetAttr("dirty", int64(stats.Dirty))
		st.root.SetAttr("reused", int64(stats.Reused))
	}
	state = &IncrState{
		instrs: next,
		dense:  snap,
		valRef: newRef,
		comps:  comps,
		sig:    prev.sig,
		usable: fb == "" && !st.meter.Exhausted(),
	}
	return al, state, stats, nil
}
