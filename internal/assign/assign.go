// Package assign drives end-to-end memory-module assignment: it combines
// clique-separator decomposition, the urgency coloring heuristic and a
// duplication strategy into the three whole-program storage strategies the
// paper evaluates (Gupta & Soffa, PPOPP 1988, §3):
//
//   - STOR1 — all data values of the program are considered at once; the
//     conflict graph is unrestricted.
//   - STOR2 — two stages: values live across regions ("globals") are
//     assigned first using conflicts visible among globals only, then each
//     region's local values are assigned with the globals pinned.
//   - STOR3 — the instruction stream is cut into a fixed number of groups;
//     each group's new values are assigned in turn with all earlier
//     bindings pinned.
//
// STOR2/STOR3 can pin two values to the same module before ever seeing an
// instruction that uses both; such instructions cannot be repaired by
// coloring, so the driver force-replicates the clashing values (they count
// toward the multi-copy column of Table 1, which is exactly the degradation
// the paper reports for the restricted strategies).
package assign

import (
	"context"
	"fmt"
	"math/bits"
	"runtime/debug"
	"sort"
	"time"

	"parmem/internal/alloccache"
	"parmem/internal/arena"
	"parmem/internal/atoms"
	"parmem/internal/budget"
	"parmem/internal/coloring"
	"parmem/internal/conflict"
	"parmem/internal/duplication"
	"parmem/internal/faultinject"
	"parmem/internal/graph"
	"parmem/internal/telemetry"
)

// Strategy selects how much of the program the conflict graph may span.
type Strategy int

const (
	// STOR1 considers every value and every instruction simultaneously.
	STOR1 Strategy = iota
	// STOR2 assigns region-crossing values first, then region locals.
	STOR2
	// STOR3 splits the instructions into groups assigned in sequence.
	STOR3
	// PerRegion assigns one program region at a time with no global stage
	// — the first alternative §2 mentions for bounding the graph size
	// ("perform the memory module assignment for one program region at a
	// time"). Cross-region values are bound by whichever region touches
	// them first.
	PerRegion
)

func (s Strategy) String() string {
	switch s {
	case STOR1:
		return "STOR1"
	case STOR2:
		return "STOR2"
	case STOR3:
		return "STOR3"
	case PerRegion:
		return "PerRegion"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Method selects the duplication strategy of §2.2.
type Method int

const (
	// HittingSet is the global approach of paper Figs. 7/9/10 (the one the
	// paper reports results for).
	HittingSet Method = iota
	// Backtrack is the per-instruction approach of paper Fig. 6.
	Backtrack
)

func (m Method) String() string {
	if m == Backtrack {
		return "backtrack"
	}
	return "hittingset"
}

// Options configures an assignment run.
type Options struct {
	// K is the number of memory modules; required, >= 1.
	K int
	// Strategy is the conflict-graph scoping strategy; default STOR1.
	Strategy Strategy
	// Method is the duplication strategy; default HittingSet.
	Method Method
	// DisableAtoms turns off clique-separator decomposition before
	// coloring (ablation knob; the paper always decomposes).
	DisableAtoms bool
	// Groups is the number of instruction groups for STOR3; default 2
	// (the paper's experiment splits the instructions into two groups).
	Groups int
	// Pick is the module-choice policy used while coloring.
	Pick coloring.PickPolicy
	// Ctx cancels assignment between and within phases; nil means
	// context.Background(). A canceled context aborts with an error
	// wrapping budget.ErrCanceled.
	Ctx context.Context
	// Budget caps the duplication searches; the zero value applies
	// budget.DefaultMaxBacktrackNodes. Exhaustion degrades to a cheaper
	// strategy and marks the Allocation Degraded instead of failing.
	Budget budget.Budget
	// Meter, when non-nil, charges this assignment's search work against an
	// externally owned meter instead of building one from Ctx/Budget — the
	// batch API shares one meter across every item of a batch so the whole
	// batch observes one node/time cap. Cancellation and exhaustion behave
	// exactly as with an internally built meter; Ctx and Budget are ignored
	// while a Meter is set.
	Meter *budget.Meter
	// Workers bounds the worker pool of the parallel assignment engine:
	// per-atom coloring and per-component duplication fan out across this
	// many goroutines. 0 (the default) means one worker per available CPU
	// (runtime.GOMAXPROCS); 1 or any negative value forces the sequential
	// paths. The parallel engine is bit-identical to the sequential one
	// whenever the budget is not exhausted mid-run.
	Workers int
	// Cache memoizes subproblem results (atom colorings, duplication
	// phases, whole assignments) across Assign calls. nil disables
	// caching. The cache is a pure memo — hits return exactly what the
	// computation would have produced — and may be shared by concurrent
	// assignments.
	Cache *alloccache.Cache
	// Reference runs the map-graph reference implementations of the
	// coloring heuristic and the clique-separator decomposition instead of
	// the dense-core ones. Both backends are bit-identical (enforced by the
	// differential pipeline tests); the knob exists for those tests and for
	// ablation benchmarks.
	Reference bool
	// Telemetry records spans and metrics for this assignment. nil (the
	// default) disables all instrumentation at zero cost: every telemetry
	// operation on a nil recorder is a no-op.
	Telemetry *telemetry.Recorder
	// Parent, when Telemetry is set, nests the assignment's root span under
	// an outer pipeline span (the compile driver's).
	Parent *telemetry.Span
}

// validate rejects option values that would otherwise trip internal
// invariant panics (coloring requires K >= 1, ModSet holds at most 64
// modules) deeper in the pipeline.
func (opt Options) validate() error {
	if opt.K < 1 {
		return fmt.Errorf("assign: K = %d, need at least one memory module", opt.K)
	}
	if opt.K > 64 {
		return fmt.Errorf("assign: K = %d, at most 64 memory modules are supported", opt.K)
	}
	if opt.Strategy < STOR1 || opt.Strategy > PerRegion {
		return fmt.Errorf("assign: unknown strategy %d", int(opt.Strategy))
	}
	if opt.Method != HittingSet && opt.Method != Backtrack {
		return fmt.Errorf("assign: unknown duplication method %d", int(opt.Method))
	}
	if opt.Groups < 0 {
		return fmt.Errorf("assign: Groups = %d, must be non-negative", opt.Groups)
	}
	if opt.Pick != coloring.LowestIndex && opt.Pick != coloring.LeastLoaded {
		return fmt.Errorf("assign: unknown pick policy %d", int(opt.Pick))
	}
	return nil
}

// PhaseReport records what one assignment phase did: how much budget it
// consumed and whether it had to degrade to a cheaper strategy. Callers
// and the CLI use the reports to observe budgeted runs.
type PhaseReport struct {
	// Phase names the pipeline stage, e.g. "stor1", "stor2/global",
	// "stor3/group1", "region2".
	Phase string
	// Method is the duplication method the phase ran ("coloring" for the
	// STOR2 global stage, which only colors).
	Method string
	// Nodes is the number of search-budget nodes the phase charged.
	Nodes int64
	// Elapsed is the wall-clock time of the phase.
	Elapsed time.Duration
	// Fallback names the cheaper strategy taken after budget exhaustion
	// ("" when the primary strategy completed): "hittingset" or
	// "fullreplication".
	Fallback string
	// Cached reports that at least one duplication call of the phase was
	// served from the allocation cache instead of being recomputed (the
	// synthetic "cache" phase of a whole-assignment hit sets it too).
	Cached bool
}

// Program is the input to assignment: the instruction stream plus the
// region metadata STOR2 needs.
type Program struct {
	// Instrs is the scheduled long-instruction stream, each entry the set
	// of data values the instruction fetches.
	Instrs []conflict.Instruction
	// RegionOf maps an instruction index to its region id. Only STOR2
	// reads it; nil means one region.
	RegionOf []int
	// Global marks values live across regions. Only STOR2 reads it.
	Global map[int]bool
}

// Allocation is a complete storage assignment.
type Allocation struct {
	// Copies maps every data value to the set of modules storing it.
	Copies duplication.Copies
	// Unassigned lists the values the coloring removed (candidates for
	// replication), over all phases.
	Unassigned []int
	// Forced lists values replicated by conflict repair: values pinned by
	// an earlier phase that later turned out to clash.
	Forced []int
	// SingleCopy and MultiCopy are the Table 1 columns: values stored
	// once vs. replicated.
	SingleCopy, MultiCopy int
	// TotalCopies is the total number of stored copies.
	TotalCopies int
	// Atoms is the number of atoms the conflict graph decomposed into
	// (0 when decomposition is disabled), summed over phases.
	Atoms int
	// Degraded reports that at least one phase exhausted its budget and
	// fell back to a cheaper strategy. The allocation is still correct
	// (Verify-clean) — it just holds more copies than the primary strategy
	// would have produced.
	Degraded bool
	// Phases reports per-phase budget consumption and fallbacks.
	Phases []PhaseReport
}

// Assign computes a conflict-free storage allocation for p.
//
// Assign never panics: internal invariant violations are recovered and
// returned as a *budget.InternalError carrying the failing phase name. A
// canceled Options.Ctx aborts within one phase boundary with an error
// wrapping budget.ErrCanceled; an exhausted Options.Budget degrades the
// affected phases and marks the Allocation (see Allocation.Degraded).
func Assign(p Program, opt Options) (al Allocation, err error) {
	st := newPhaseState()
	st.phase = "validate"
	defer func() {
		if r := recover(); r != nil {
			al = Allocation{}
			err = &budget.InternalError{Phase: "assign/" + st.phase, Value: r, Stack: debug.Stack()}
		}
	}()
	if err := opt.validate(); err != nil {
		return Allocation{}, err
	}
	if err := conflict.Validate(p.Instrs, opt.K); err != nil {
		return Allocation{}, err
	}
	if opt.Meter != nil {
		st.meter = opt.Meter
	} else {
		st.meter = budget.NewMeter(opt.Ctx, opt.Budget.BacktrackNodes(), opt.Budget.MaxDuplicationTime)
	}
	if err := st.meter.Canceled(); err != nil {
		return Allocation{}, fmt.Errorf("assign: %w", err)
	}
	st.rec = opt.Telemetry
	if opt.Parent != nil {
		st.root = st.rec.StartSpan("assign", opt.Parent)
	} else {
		// A root with no in-process parent may still continue a distributed
		// trace carried on the request context.
		st.root = st.rec.StartSpanContext(opt.Ctx, "assign", nil)
	}
	if st.root != nil {
		st.root.SetAttrStr("strategy", opt.Strategy.String())
		st.root.SetAttrStr("method", opt.Method.String())
		st.root.SetAttr("k", int64(opt.K))
		st.root.SetAttr("instructions", int64(len(p.Instrs)))
	}
	nodes0 := st.meter.Spent()
	defer func() {
		st.root.SetAttr("budget_nodes", st.meter.Spent()-nodes0)
		st.rec.Counter(telemetry.MBudgetNodes).Add(st.meter.Spent() - nodes0)
		st.root.End()
	}()
	var key string
	if opt.Cache != nil {
		key = assignKey(p, opt)
		lookup := time.Now()
		if e, ok := opt.Cache.Get(key); ok {
			al := e.(*allocEntry).al // Get already deep-cloned the entry
			al.Phases = []PhaseReport{{
				Phase: "cache", Method: opt.Method.String(), Cached: true,
				Elapsed: time.Since(lookup),
			}}
			if st.root != nil {
				st.root.SetAttrStr("cache", "hit")
			}
			return al, nil
		}
	}
	switch opt.Strategy {
	case STOR1:
		al, err = assignSTOR1(st, p, opt)
	case STOR2:
		al, err = assignSTOR2(st, p, opt)
	case STOR3:
		al, err = assignSTOR3(st, p, opt)
	default:
		al, err = assignPerRegion(st, p, opt)
	}
	if err == nil && opt.Cache != nil && !al.Degraded && !st.meter.Exhausted() {
		opt.Cache.Put(key, &allocEntry{al: al})
	}
	return al, err
}

// phaseState carries allocation state across phases of STOR2/STOR3.
type phaseState struct {
	copies     duplication.Copies // accumulated storage
	replicable map[int]bool       // values allowed to gain copies
	unassigned []int
	forced     []int
	atoms      int

	meter    *budget.Meter // shared search budget across all phases
	phase    string        // current phase name, for reports and errors
	reports  []PhaseReport
	degraded bool

	rec  *telemetry.Recorder // nil disables all instrumentation
	root *telemetry.Span     // the whole-assignment span
	span *telemetry.Span     // the current phase's span (parent for sub-spans)
}

func newPhaseState() *phaseState {
	return &phaseState{copies: duplication.Copies{}, replicable: map[int]bool{}}
}

// colorPhase colors g with opt, seeding from the already-allocated values
// that hold exactly one copy (multi-copy values stay flexible and are
// handled by the SDR checks during duplication).
func (st *phaseState) colorPhase(g *graph.Graph, opt Options) (map[int]int, []int) {
	// Arena scope for the phase-local views (precoloring, skip set, node
	// buffers); the returned assignment escapes and stays fresh.
	sc := arena.Get()
	defer sc.Release()
	nodes := g.NodesAppend(sc.Ints(g.NumNodes())[:0])
	pre := sc.IntMap(len(nodes))
	skip := sc.IntBoolMap(8)
	for _, v := range nodes {
		s := st.copies[v]
		switch {
		case s.Count() == 1:
			pre[v] = bits.TrailingZeros64(uint64(s))
		case s.Count() > 1:
			skip[v] = true // replicated already; flexible, not colorable
		}
	}
	work := g
	if len(skip) > 0 {
		keep := sc.Ints(len(nodes))[:0]
		for _, v := range nodes {
			if !skip[v] {
				keep = append(keep, v)
			}
		}
		work = g.Induced(keep)
	}

	if opt.DisableAtoms {
		csp := st.rec.StartSpan("color", st.span)
		res := coloring.GuptaSoffa(work, coloring.Options{K: opt.K, Precolored: pre, Pick: opt.Pick, Reference: opt.Reference})
		if csp != nil {
			csp.SetAttr("nodes", int64(work.NumNodes()))
			csp.SetAttr("unassigned", int64(len(res.Unassigned)))
			csp.End()
		}
		return res.Assign, res.Unassigned
	}
	// Atoms are carved off one at a time, each sharing a clique separator
	// with the remaining graph. Color them in REVERSE carve order: then the
	// already-colored part of each atom is exactly its separator — a clique
	// whose vertices necessarily received pairwise-distinct modules — so
	// sequential extension can never start from a clash. (Processing in
	// carve order can color the two endpoints of an edge in two different
	// atoms before the atom containing the edge is reached.) colorAtoms
	// runs that order sequentially or fans independent atoms across the
	// worker pool; both produce identical results.
	// The decomposition itself fans out per connected component (merged in
	// component order, so it too is deterministic).
	decompose := atoms.DecomposeParallel
	if opt.Reference {
		decompose = atoms.DecomposeParallelRef
	}
	dsp := st.rec.StartSpan("decompose", st.span)
	dec := decompose(work, opt.workerCount())
	st.atoms += len(dec.Atoms)
	if dsp != nil {
		dsp.SetAttr("nodes", int64(work.NumNodes()))
		dsp.SetAttr("atoms", int64(len(dec.Atoms)))
		dsp.SetAttr("max_atom", int64(dec.MaxAtomSize()))
		dsp.End()
		st.rec.Counter(telemetry.MAtoms).Add(int64(len(dec.Atoms)))
		st.rec.Gauge(telemetry.MAtomSizeMax).Max(int64(dec.MaxAtomSize()))
		sizes := st.rec.Histogram(telemetry.MAtomSize)
		for _, a := range dec.Atoms {
			sizes.Observe(int64(len(a.Nodes)))
		}
	}
	return colorAtoms(st, dec, pre, opt)
}

// runPhase colors the values of instrs not yet allocated and then runs the
// duplication method, repairing residual conflicts by force-replicating
// clashing pinned values. The phase is named for budget reports and error
// messages; its duplication work is charged against the shared meter.
func (st *phaseState) runPhase(name string, instrs []conflict.Instruction, g *graph.Graph, opt Options) error {
	st.phase = name
	faultinject.Check("assign.phase")
	rep := PhaseReport{Phase: name, Method: opt.Method.String()}
	phaseStart := time.Now()
	nodes0 := st.meter.Spent()
	st.span = st.rec.StartSpan("phase", st.root)
	if st.span != nil {
		st.span.SetAttrStr("phase", name)
		st.span.SetAttrStr("method", opt.Method.String())
	}
	defer func() {
		rep.Nodes = st.meter.Spent() - nodes0
		rep.Elapsed = time.Since(phaseStart)
		st.reports = append(st.reports, rep)
		if st.span != nil {
			st.span.SetAttr("nodes", rep.Nodes)
			if rep.Fallback != "" {
				st.span.SetAttrStr("fallback", rep.Fallback)
			}
			st.span.End()
			st.rec.Histogram(telemetry.MPhaseMicros, "phase", name).Observe(rep.Elapsed.Microseconds())
		}
		st.span = nil
	}()
	if err := st.meter.Canceled(); err != nil {
		return fmt.Errorf("assign: %s: %w", name, err)
	}

	assignMap, unassigned := st.colorPhase(g, opt)

	sc := arena.Get()
	defer sc.Release()
	// Values already in st.copies are pinned; only newly colored values go
	// into Assigned (so that Backtrack reserves their modules, the pinned
	// single-copies came in through Initial). The map only feeds the
	// duplication input (cloned into results there), so it can live in the
	// arena.
	newAssigned := sc.IntMap(len(assignMap))
	for v, m := range assignMap {
		if st.copies[v] == 0 {
			newAssigned[v] = m
		}
	}
	for _, v := range unassigned {
		if st.copies[v] == 0 {
			st.replicable[v] = true
			st.unassigned = append(st.unassigned, v)
		}
	}
	st.rec.Histogram(telemetry.MUnassigned).Observe(int64(len(unassigned)))

	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			st.rec.Counter(telemetry.MRepairRounds).Inc()
		}
		in := duplication.Input{
			Instrs:     instrs,
			Assigned:   newAssigned,
			Unassigned: sortedKeys(st.replicable),
			Initial:    st.copies,
			K:          opt.K,
			Meter:      st.meter,
		}
		var res duplication.Result
		var err error
		var key string
		if opt.Cache != nil {
			key = dupKey(in, opt)
		}
		dupSpan := st.rec.StartSpan("duplicate", st.span)
		if hit := st.cachedDup(key, opt); hit != nil {
			res = *hit
			rep.Cached = true
			dupSpan.SetAttrStr("cache", "hit")
		} else {
			w := opt.workerCount()
			switch {
			case opt.Method == Backtrack && w > 1:
				res, err = duplication.BacktrackParallel(in, w)
			case opt.Method == Backtrack:
				res, err = duplication.Backtrack(in)
			case w > 1:
				res, err = duplication.HittingSetParallel(in, w)
			default:
				res, err = duplication.HittingSetApproach(in)
			}
			if err == nil {
				st.storeDup(key, opt, res)
			}
		}
		if dupSpan != nil {
			dupSpan.SetAttrStr("method", opt.Method.String())
			dupSpan.SetAttr("unassigned", int64(len(in.Unassigned)))
			if err == nil {
				dupSpan.SetAttr("new_copies", int64(res.NewCopies))
				dupSpan.SetAttr("residual", int64(len(res.Residual)))
				if res.Fallback != "" {
					dupSpan.SetAttrStr("fallback", res.Fallback)
				}
			}
			dupSpan.End()
		}
		if err != nil {
			return fmt.Errorf("assign: %s: %w", name, err)
		}
		st.rec.Counter(telemetry.MCopiesPlaced, "method", opt.Method.String()).Add(int64(res.NewCopies))
		if res.Fallback != "" {
			rep.Fallback = res.Fallback
			st.degraded = true
			st.rec.Counter(telemetry.MDegradations, "fallback", res.Fallback).Inc()
		}
		if len(res.Residual) == 0 {
			st.copies = res.Copies
			return nil
		}
		// Repair: make every operand of a residual instruction replicable.
		// Each repair round strictly grows the replicable set, and once all
		// operands of an instruction may live in all K modules an SDR
		// exists, so this terminates.
		grew := false
		for _, idx := range res.Residual {
			for _, v := range instrs[idx].Normalize() {
				if !st.replicable[v] {
					st.replicable[v] = true
					st.forced = append(st.forced, v)
					grew = true
				}
			}
		}
		if !grew {
			return fmt.Errorf("assign: unresolvable conflicts in instructions %v", res.Residual)
		}
	}
}

func (st *phaseState) finish(p Program) Allocation {
	al := Allocation{
		Copies:     st.copies,
		Unassigned: st.unassigned,
		Forced:     st.forced,
		Atoms:      st.atoms,
		Degraded:   st.degraded,
		Phases:     st.reports,
	}
	sort.Ints(al.Unassigned)
	sort.Ints(al.Forced)
	for _, s := range st.copies {
		al.TotalCopies += s.Count()
		if s.Count() > 1 {
			al.MultiCopy++
		} else if s.Count() == 1 {
			al.SingleCopy++
		}
	}
	return al
}

// buildConflict wraps conflict.Build with a span and the conflict-graph
// volume counters, attributing the build to the named phase.
func (st *phaseState) buildConflict(name string, instrs []conflict.Instruction) *graph.Graph {
	sp := st.rec.StartSpan("conflict", st.root)
	g := conflict.Build(instrs)
	if sp != nil {
		sp.SetAttrStr("phase", name)
		sp.SetAttr("nodes", int64(g.NumNodes()))
		sp.SetAttr("edges", int64(g.NumEdges()))
		sp.End()
		st.rec.Counter(telemetry.MConflictNodes).Add(int64(g.NumNodes()))
		st.rec.Counter(telemetry.MConflictEdges).Add(int64(g.NumEdges()))
	}
	return g
}

func assignSTOR1(st *phaseState, p Program, opt Options) (Allocation, error) {
	g := st.buildConflict("stor1", p.Instrs)
	if err := st.runPhase("stor1", p.Instrs, g, opt); err != nil {
		return Allocation{}, err
	}
	return st.finish(p), nil
}

func assignSTOR2(st *phaseState, p Program, opt Options) (Allocation, error) {
	// Stage 1: conflicts among globals only, across the whole program.
	st.phase = "stor2/global"
	globalStart := time.Now()
	st.span = st.rec.StartSpan("phase", st.root)
	if st.span != nil {
		st.span.SetAttrStr("phase", "stor2/global")
		st.span.SetAttrStr("method", "coloring")
	}
	globalGraph := graph.New()
	func() {
		sc := arena.Get()
		defer sc.Release()
		tbl := conflict.NormalizeTable(p.Instrs, sc)
		gl := sc.Ints(opt.K + 1)[:0]
		for i := 0; i < tbl.Len(); i++ {
			gl = gl[:0]
			for _, v := range tbl.Row(i) {
				if p.Global[v] {
					gl = append(gl, v)
					globalGraph.AddNode(v)
				}
			}
			for i := 0; i < len(gl); i++ {
				for j := i + 1; j < len(gl); j++ {
					globalGraph.AddEdgeWeight(gl[i], gl[j], 1)
				}
			}
		}
	}()
	// The global stage only *colors*; duplication decisions are taken when
	// the full per-region conflicts are visible. Globals the coloring
	// rejected become replicable for all regions.
	assignMap, unassigned := st.colorPhase(globalGraph, opt)
	for v, m := range assignMap {
		st.copies[v] = duplication.ModSet(0).Add(m)
	}
	for _, v := range unassigned {
		st.replicable[v] = true
		st.unassigned = append(st.unassigned, v)
	}
	globalElapsed := time.Since(globalStart)
	st.reports = append(st.reports, PhaseReport{
		Phase: "stor2/global", Method: "coloring", Elapsed: globalElapsed,
	})
	if st.span != nil {
		st.span.SetAttr("nodes_colored", int64(len(assignMap)))
		st.span.SetAttr("unassigned", int64(len(unassigned)))
		st.span.End()
		st.rec.Counter(telemetry.MConflictNodes).Add(int64(globalGraph.NumNodes()))
		st.rec.Counter(telemetry.MConflictEdges).Add(int64(globalGraph.NumEdges()))
		st.rec.Histogram(telemetry.MPhaseMicros, "phase", "stor2/global").Observe(globalElapsed.Microseconds())
	}
	st.span = nil
	if err := st.meter.Canceled(); err != nil {
		return Allocation{}, fmt.Errorf("assign: stor2/global: %w", err)
	}

	// Stage 2: one region at a time.
	for ri, idxs := range regionOrder(p) {
		var instrs []conflict.Instruction
		for _, i := range idxs {
			instrs = append(instrs, p.Instrs[i])
		}
		name := fmt.Sprintf("stor2/region%d", ri)
		g := st.buildConflict(name, instrs)
		if err := st.runPhase(name, instrs, g, opt); err != nil {
			return Allocation{}, err
		}
	}
	return st.finish(p), nil
}

// regionOrder groups instruction indices by region id, regions in ascending
// id order. A nil RegionOf is a single region 0.
func regionOrder(p Program) [][]int {
	byRegion := map[int][]int{}
	for i := range p.Instrs {
		r := 0
		if p.RegionOf != nil {
			r = p.RegionOf[i]
		}
		byRegion[r] = append(byRegion[r], i)
	}
	var ids []int
	for r := range byRegion {
		ids = append(ids, r)
	}
	sort.Ints(ids)
	out := make([][]int, 0, len(ids))
	for _, r := range ids {
		out = append(out, byRegion[r])
	}
	return out
}

// assignPerRegion allocates region by region, no global stage: like STOR2's
// second phase alone. Values spanning regions are pinned by the first
// region processed; later regions repair clashes by replication.
func assignPerRegion(st *phaseState, p Program, opt Options) (Allocation, error) {
	for ri, idxs := range regionOrder(p) {
		var instrs []conflict.Instruction
		for _, i := range idxs {
			instrs = append(instrs, p.Instrs[i])
		}
		name := fmt.Sprintf("region%d", ri)
		g := st.buildConflict(name, instrs)
		if err := st.runPhase(name, instrs, g, opt); err != nil {
			return Allocation{}, err
		}
	}
	return st.finish(p), nil
}

func assignSTOR3(st *phaseState, p Program, opt Options) (Allocation, error) {
	groups := opt.Groups
	if groups <= 0 {
		groups = 2
	}
	n := len(p.Instrs)
	for gi := 0; gi < groups; gi++ {
		lo, hi := gi*n/groups, (gi+1)*n/groups
		if lo == hi {
			continue
		}
		instrs := p.Instrs[lo:hi]
		name := fmt.Sprintf("stor3/group%d", gi)
		g := st.buildConflict(name, instrs)
		if err := st.runPhase(name, instrs, g, opt); err != nil {
			return Allocation{}, err
		}
	}
	return st.finish(p), nil
}

// Verify checks that every instruction of p is conflict-free under al.
// It returns the indices of conflicting instructions (nil when clean).
func Verify(p Program, al Allocation) []int {
	sc := arena.Get()
	defer sc.Release()
	tbl := conflict.NormalizeTable(p.Instrs, sc)
	var bad []int
	for i := 0; i < tbl.Len(); i++ {
		if !duplication.ConflictFree(tbl.Row(i), al.Copies) {
			bad = append(bad, i)
		}
	}
	return bad
}

// VerifyState is Verify over an incremental state's instruction stream,
// sparing the caller a defensive copy of the instructions.
func VerifyState(s *IncrState, al Allocation) []int {
	return Verify(Program{Instrs: s.instrs}, al)
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func dedupSorted(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[i-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}
