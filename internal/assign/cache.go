package assign

import (
	"slices"

	"parmem/internal/alloccache"
	"parmem/internal/arena"
	"parmem/internal/duplication"
)

// Cache hooks of the assignment engine. All keys are pure-memo
// signatures: they embed the exact subproblem bytes (original value ids
// included), so a hit returns precisely what the computation would have
// produced. Results that depended on budget state — a phase that degraded
// or ran under an exhausted meter — are never stored, so a hit can never
// resurrect a degraded answer into an unbudgeted run or vice versa.

// dupResultEntry memoizes one duplication call (one phase attempt).
type dupResultEntry struct {
	copies    duplication.Copies
	residual  []int
	newCopies int
}

func (e *dupResultEntry) CloneEntry() alloccache.Entry {
	return &dupResultEntry{
		copies:    e.copies.Clone(),
		residual:  append([]int(nil), e.residual...),
		newCopies: e.newCopies,
	}
}

// dupKey signs a duplication.Input plus the method that will consume it.
func dupKey(in duplication.Input, opt Options) string {
	sc := arena.Get()
	defer sc.Release()
	k := alloccache.NewKey(sc.Bytes(1024))
	k.Str("dup")
	k.Int(opt.K)
	k.Int(int(opt.Method))
	k.Int(len(in.Instrs))
	for _, instr := range in.Instrs {
		k.Ints(instr)
	}
	writeIntMap(&k, in.Assigned, sc)
	k.Ints(in.Unassigned)
	writeCopies(&k, in.Initial, sc)
	return k.String()
}

// writeIntMap is Key.IntMap with the sort scratch drawn from the arena; the
// emitted bytes are identical (length, then sorted key/value pairs).
func writeIntMap(k *alloccache.Key, m map[int]int, sc *arena.Scratch) {
	keys := sc.Ints(len(m))[:0]
	for v := range m {
		keys = append(keys, v)
	}
	slices.Sort(keys)
	k.Int(len(keys))
	for _, v := range keys {
		k.Int(v)
		k.Int(m[v])
	}
}

// writeCopies signs a copy table with the same bytes IntMap would emit for
// the value -> ModSet-as-int view of it, without materializing that map.
func writeCopies(k *alloccache.Key, c duplication.Copies, sc *arena.Scratch) {
	keys := sc.Ints(len(c))[:0]
	for v := range c {
		keys = append(keys, v)
	}
	slices.Sort(keys)
	k.Int(len(keys))
	for _, v := range keys {
		k.Int(v)
		k.Int(int(c[v]))
	}
}

// cachedDup consults the cache for a duplication call; nil means miss (or
// no cache configured).
func (st *phaseState) cachedDup(key string, opt Options) *duplication.Result {
	if opt.Cache == nil {
		return nil
	}
	e, ok := opt.Cache.Get(key)
	if !ok {
		return nil
	}
	d := e.(*dupResultEntry)
	return &duplication.Result{Copies: d.copies, Residual: d.residual, NewCopies: d.newCopies}
}

// storeDup memoizes a completed duplication call. Degraded results and
// results computed under an exhausted meter are budget-dependent, not
// functions of the input alone, so they are never stored.
func (st *phaseState) storeDup(key string, opt Options, res duplication.Result) {
	if opt.Cache == nil || res.Fallback != "" || st.meter.Exhausted() {
		return
	}
	opt.Cache.Put(key, &dupResultEntry{copies: res.Copies, residual: res.Residual, newCopies: res.NewCopies})
}

// allocEntry memoizes a whole assignment.
type allocEntry struct {
	al Allocation
}

func (e *allocEntry) CloneEntry() alloccache.Entry {
	al := e.al
	al.Copies = e.al.Copies.Clone()
	al.Unassigned = append([]int(nil), e.al.Unassigned...)
	al.Forced = append([]int(nil), e.al.Forced...)
	al.Phases = append([]PhaseReport(nil), e.al.Phases...)
	return &allocEntry{al: al}
}

// assignKey signs a whole Assign call: the program and every option that
// influences the result. Workers is deliberately absent — the parallel
// engine is bit-identical to the sequential one — and so is the budget,
// because only budget-independent (non-degraded) results are stored.
func assignKey(p Program, opt Options) string {
	sc := arena.Get()
	defer sc.Release()
	k := alloccache.NewKey(sc.Bytes(1024))
	k.Str("assign")
	k.Int(opt.K)
	k.Int(int(opt.Strategy))
	k.Int(int(opt.Method))
	k.Int(opt.Groups)
	k.Int(int(opt.Pick))
	if opt.DisableAtoms {
		k.Int(1)
	} else {
		k.Int(0)
	}
	k.Int(len(p.Instrs))
	for _, instr := range p.Instrs {
		k.Ints(instr)
	}
	k.Ints(p.RegionOf)
	globals := sc.Ints(len(p.Global))[:0]
	for v, ok := range p.Global {
		if ok {
			globals = append(globals, v)
		}
	}
	slices.Sort(globals)
	k.Ints(globals)
	return k.String()
}
