package assign

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"parmem/internal/alloccache"
	"parmem/internal/arena"
	"parmem/internal/atoms"
	"parmem/internal/coloring"
	"parmem/internal/graph"
	"parmem/internal/telemetry"
)

// This file is the parallel side of the assignment engine: per-atom
// coloring fanned across a bounded worker pool, and the alloccache hooks
// that memoize atom colorings.
//
// Determinism contract. The sequential colorPhase colors atoms in reverse
// carve order with three pieces of shared state: the precoloring (read
// only), the accumulated assignment (an atom reads it only for its own
// vertices, which can have been written only by a *later-carved* atom
// sharing those vertices — separator vertices) and the removed set (same
// property). So atom i depends exactly on the atoms j > i that share at
// least one vertex with it. Scheduling atoms level by level over that
// dependency DAG — every dependency strictly earlier — gives each atom a
// view of the shared state identical to the sequential run's, and the
// merged result is bit-identical no matter how many workers run.

// workerCount resolves Options.Workers: 0 means one worker per available
// CPU, anything below 2 disables the parallel paths.
func (opt Options) workerCount() int {
	if opt.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if opt.Workers < 1 {
		return 1
	}
	return opt.Workers
}

// atomColorResult is one atom's coloring outcome; it implements
// alloccache.Entry so atom colorings can be memoized across compiles.
type atomColorResult struct {
	assign     map[int]int
	unassigned []int
}

func (r *atomColorResult) CloneEntry() alloccache.Entry {
	c := &atomColorResult{
		assign:     make(map[int]int, len(r.assign)),
		unassigned: append([]int(nil), r.unassigned...),
	}
	for v, m := range r.assign {
		c.assign[v] = m
	}
	return c
}

// atomColorKey builds the pure-memo signature of one atom coloring
// subproblem: the exact subgraph (original ids included), the
// precoloring visible to the atom, and the knobs the colorer reads.
func atomColorKey(sub *graph.Graph, preA map[int]int, opt Options, sc *arena.Scratch) string {
	k := alloccache.NewKey(sc.Bytes(1024))
	k.Str("atomcolor")
	k.Graph(sub)
	writeIntMap(&k, preA, sc)
	k.Int(opt.K)
	k.Int(int(opt.Pick))
	return k.String()
}

// colorOneAtom colors one atom against the given views of the shared
// state, consulting the cache when one is configured. The views must
// already reflect every atom this one depends on. The span (parented under
// the current phase) carries the atom's size, outcome and worker lane.
//
// sc supplies every borrowed buffer, including the colorer's own scratch
// (via coloring.Options.Scratch); the caller owns it and Resets it between
// atoms. A nil sc is the fresh-allocation path.
func colorOneAtom(st *phaseState, a atoms.Atom, removed map[int]bool, assigned, pre map[int]int, opt Options, lane int64, sc *arena.Scratch) *atomColorResult {
	sp := st.rec.StartSpan("atom", st.span)
	if sp != nil {
		sp.SetLane(lane)
		sp.SetAttr("size", int64(len(a.Nodes)))
		defer sp.End()
	}
	st.rec.Counter(telemetry.MColorings).Inc()
	sub := a.Graph
	// Vertices a previously processed atom failed to color are no longer
	// coloring candidates anywhere: they will be replicated, and the SDR
	// checks of the duplication stage cover their conflicts.
	if len(removed) > 0 {
		keep := sc.Ints(len(a.Nodes))[:0]
		for _, v := range a.Nodes {
			if !removed[v] {
				keep = append(keep, v)
			}
		}
		if len(keep) < len(a.Nodes) {
			sub = a.Graph.Induced(keep)
		}
	}
	// The colorer only reads Precolored and the key builder copies it, so
	// the map can live in the arena.
	preA := sc.IntMap(len(a.Nodes))
	for _, v := range sub.NodesAppend(sc.Ints(sub.NumNodes())[:0]) {
		if m, ok := pre[v]; ok {
			preA[v] = m
		}
		if m, ok := assigned[v]; ok {
			preA[v] = m // separator vertex colored by a later atom
		}
	}
	var key string
	if opt.Cache != nil {
		key = atomColorKey(sub, preA, opt, sc)
		if e, ok := opt.Cache.Get(key); ok {
			sp.SetAttrStr("cache", "hit")
			return e.(*atomColorResult)
		}
	}
	res := coloring.GuptaSoffa(sub, coloring.Options{K: opt.K, Precolored: preA, Pick: opt.Pick, Reference: opt.Reference, Scratch: sc})
	out := &atomColorResult{assign: res.Assign, unassigned: res.Unassigned}
	sp.SetAttr("unassigned", int64(len(res.Unassigned)))
	if opt.Cache != nil {
		opt.Cache.Put(key, out)
	}
	return out
}

// colorAtoms colors every atom of dec in reverse carve order, sequentially
// or across a worker pool depending on opt. It returns the merged
// assignment and the sorted, deduplicated unassigned set.
func colorAtoms(st *phaseState, dec atoms.Decomposition, pre map[int]int, opt Options) (map[int]int, []int) {
	workers := opt.workerCount()
	if workers < 2 || len(dec.Atoms) < 2 {
		return colorAtomsSeq(st, dec, pre, opt)
	}
	return colorAtomsParallel(st, dec, pre, opt, workers)
}

func colorAtomsSeq(st *phaseState, dec atoms.Decomposition, pre map[int]int, opt Options) (map[int]int, []int) {
	assigned := map[int]int{}
	removed := map[int]bool{}
	var unassigned []int
	sc := arena.Get()
	defer sc.Release()
	for i := len(dec.Atoms) - 1; i >= 0; i-- {
		res := colorOneAtom(st, dec.Atoms[i], removed, assigned, pre, opt, 0, sc)
		sc.Reset()
		for v, m := range res.assign {
			assigned[v] = m
		}
		for _, v := range res.unassigned {
			removed[v] = true
			unassigned = append(unassigned, v)
		}
	}
	sort.Ints(unassigned)
	return assigned, dedupSorted(unassigned)
}

// atomLevels computes a topological leveling of the atom dependency DAG:
// atom i depends on every atom j > i sharing a vertex with it, and
// level(i) > level(j) for each dependency. Atoms within one level are
// pairwise vertex-disjoint from each other's dependencies and can be
// colored concurrently against a frozen view of the shared state.
func atomLevels(as []atoms.Atom) [][]int {
	holders := map[int][]int{} // vertex -> atoms containing it, ascending
	for i, a := range as {
		for _, v := range a.Nodes {
			holders[v] = append(holders[v], i)
		}
	}
	level := make([]int, len(as))
	// Process in reverse carve order (the sequential execution order); each
	// atom's dependencies all have larger indices, so their levels are
	// already final.
	for i := len(as) - 1; i >= 0; i-- {
		lv := 0
		for _, v := range as[i].Nodes {
			for _, j := range holders[v] {
				if j > i && level[j]+1 > lv {
					lv = level[j] + 1
				}
			}
		}
		level[i] = lv
	}
	max := 0
	for _, lv := range level {
		if lv > max {
			max = lv
		}
	}
	out := make([][]int, max+1)
	for i := range as {
		out[level[i]] = append(out[level[i]], i)
	}
	// Within a level, keep reverse carve order so the merge below applies
	// results in the sequential order.
	for _, idxs := range out {
		sort.Sort(sort.Reverse(sort.IntSlice(idxs)))
	}
	return out
}

func colorAtomsParallel(st *phaseState, dec atoms.Decomposition, pre map[int]int, opt Options, workers int) (map[int]int, []int) {
	assigned := map[int]int{}
	removed := map[int]bool{}
	var unassigned []int

	// Pool-utilization instruments, resolved once per call; nil when
	// telemetry is off, making every update below a no-op.
	busyWorkers := st.rec.Gauge(telemetry.MPoolBusyWorkers)
	busyNanos := st.rec.Counter(telemetry.MPoolBusyNanos)

	// One arena shard per worker for the whole phase: a fixed pool of
	// `workers` goroutines pulls atom slots off a channel, each coloring
	// against its private Scratch (Reset between atoms), so the global
	// sync.Pool is touched exactly once per phase instead of once per atom
	// — the cross-core contention point the scaling curve exposed.
	shards := arena.GetShards(workers)
	defer shards.Release()

	for _, idxs := range atomLevels(dec.Atoms) {
		results := make([]*atomColorResult, len(idxs))
		panics := make([]any, len(idxs))
		slots := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sc := shards.Worker(w)
				for slot := range slots {
					func(slot int) {
						defer func() {
							if r := recover(); r != nil {
								panics[slot] = r
							}
						}()
						if st.rec != nil {
							busyWorkers.Add(1)
							t0 := time.Now()
							defer func() {
								busyNanos.Add(time.Since(t0).Nanoseconds())
								busyWorkers.Add(-1)
							}()
						}
						// The shared views are read-only for the whole
						// level; every dependency of idxs[slot] finished in
						// an earlier level. Lanes are 1-based worker
						// numbers, stable for the whole phase, so the
						// Chrome exporter renders one track per worker.
						results[slot] = colorOneAtom(st, dec.Atoms[idxs[slot]], removed, assigned, pre, opt, int64(w)+1, sc)
					}(slot)
					sc.Reset()
				}
			}(w)
		}
		for slot := range idxs {
			slots <- slot
		}
		close(slots)
		wg.Wait()
		for _, r := range panics {
			if r != nil {
				// Re-raise on the caller's goroutine; the Assign boundary
				// converts it into a *budget.InternalError as usual.
				panic(r)
			}
		}
		// Merge in reverse carve order — the sequential order — so the
		// resulting maps and lists are built exactly as colorAtomsSeq
		// builds them.
		for _, r := range results {
			for v, m := range r.assign {
				assigned[v] = m
			}
			for _, v := range r.unassigned {
				removed[v] = true
				unassigned = append(unassigned, v)
			}
		}
	}
	sort.Ints(unassigned)
	return assigned, dedupSorted(unassigned)
}
