package assign

import (
	"encoding/binary"
	"fmt"
	"slices"
	"time"

	"parmem/internal/alloccache"
	"parmem/internal/duplication"
)

// Binary codecs for the three memo levels, registered with alloccache so
// a byte backing (the disk tier) can hold engine entries. The encoding is
// hand-rolled varints rather than JSON because ModSet is a full uint64
// bitmask — module 63 sets bit 63, which a JSON number cannot carry — and
// because decode must be able to reject any malformed input outright.
//
// Every payload leads with a per-type format byte; bumping an encoding
// bumps its byte, and old payloads then decode to an error (a cache miss)
// instead of a misread. Decoders reproduce CloneEntry's shape exactly:
// slices are nil when empty, maps are always non-nil. That keeps a
// disk-tier hit bit-identical to recomputation under reflect.DeepEqual.

const (
	codecDup       = 0x01
	codecAlloc     = 0x02
	codecAtomColor = 0x03
)

func init() {
	alloccache.RegisterCodec("dup", alloccache.Codec{
		Encode: encodeDupEntry, Decode: decodeDupEntry,
	})
	alloccache.RegisterCodec("assign", alloccache.Codec{
		Encode: encodeAllocEntry, Decode: decodeAllocEntry,
	})
	alloccache.RegisterCodec("atomcolor", alloccache.Codec{
		Encode: encodeAtomColorEntry, Decode: decodeAtomColorEntry,
	})
}

// --- primitive writers ---

func putUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func putVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func putString(b []byte, s string) []byte {
	b = putUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func putInts(b []byte, xs []int) []byte {
	b = putUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = putVarint(b, int64(x))
	}
	return b
}

// putCopies emits a copy table in sorted-key order so equal tables encode
// to equal bytes.
func putCopies(b []byte, c duplication.Copies) []byte {
	keys := make([]int, 0, len(c))
	for v := range c {
		keys = append(keys, v)
	}
	slices.Sort(keys)
	b = putUvarint(b, uint64(len(keys)))
	for _, v := range keys {
		b = putVarint(b, int64(v))
		b = putUvarint(b, uint64(c[v]))
	}
	return b
}

func putIntMap(b []byte, m map[int]int) []byte {
	keys := make([]int, 0, len(m))
	for v := range m {
		keys = append(keys, v)
	}
	slices.Sort(keys)
	b = putUvarint(b, uint64(len(keys)))
	for _, v := range keys {
		b = putVarint(b, int64(v))
		b = putVarint(b, int64(m[v]))
	}
	return b
}

// --- primitive reader ---

// byteReader walks an encoded payload, latching the first error. Every
// read after a failure returns zero values, so decoders can read the full
// shape and check err once at the end.
type byteReader struct {
	b   []byte
	err error
}

func (r *byteReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("entrycodec: malformed %s", what)
	}
}

func (r *byteReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *byteReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *byteReader) intval(what string) int { return int(r.varint(what)) }

func (r *byteReader) boolval(what string) bool {
	if r.err != nil {
		return false
	}
	if len(r.b) == 0 || r.b[0] > 1 {
		r.fail(what)
		return false
	}
	v := r.b[0] == 1
	r.b = r.b[1:]
	return v
}

func (r *byteReader) stringval(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail(what)
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// count validates an element count against the bytes remaining (each
// element costs at least one byte), so a corrupted length cannot force a
// giant allocation before the decode fails.
func (r *byteReader) count(what string) int {
	n := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)) {
		r.fail(what)
		return 0
	}
	return int(n)
}

// ints mirrors CloneEntry's append([]int(nil), ...): nil when empty.
func (r *byteReader) ints(what string) []int {
	n := r.count(what)
	if r.err != nil || n == 0 {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = r.intval(what)
	}
	if r.err != nil {
		return nil
	}
	return xs
}

// copies mirrors Copies.Clone: always a non-nil map.
func (r *byteReader) copies(what string) duplication.Copies {
	n := r.count(what)
	c := make(duplication.Copies, n)
	for i := 0; i < n && r.err == nil; i++ {
		v := r.intval(what)
		c[v] = duplication.ModSet(r.uvarint(what))
	}
	return c
}

func (r *byteReader) intMap(what string) map[int]int {
	n := r.count(what)
	m := make(map[int]int, n)
	for i := 0; i < n && r.err == nil; i++ {
		v := r.intval(what)
		m[v] = r.intval(what)
	}
	return m
}

// done rejects both latched errors and trailing garbage.
func (r *byteReader) done(what string) error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("entrycodec: %d trailing bytes in %s", len(r.b), what)
	}
	return nil
}

func newReader(data []byte, format byte, what string) (*byteReader, error) {
	if len(data) == 0 || data[0] != format {
		return nil, fmt.Errorf("entrycodec: bad %s format byte", what)
	}
	return &byteReader{b: data[1:]}, nil
}

// --- dup level ---

func encodeDupEntry(e alloccache.Entry) ([]byte, error) {
	d, ok := e.(*dupResultEntry)
	if !ok {
		return nil, fmt.Errorf("entrycodec: dup level got %T", e)
	}
	b := []byte{codecDup}
	b = putCopies(b, d.copies)
	b = putInts(b, d.residual)
	b = putVarint(b, int64(d.newCopies))
	return b, nil
}

func decodeDupEntry(data []byte) (alloccache.Entry, error) {
	r, err := newReader(data, codecDup, "dup")
	if err != nil {
		return nil, err
	}
	d := &dupResultEntry{
		copies:    r.copies("dup copies"),
		residual:  r.ints("dup residual"),
		newCopies: r.intval("dup newCopies"),
	}
	if err := r.done("dup"); err != nil {
		return nil, err
	}
	return d, nil
}

// --- assign level ---

func encodeAllocEntry(e alloccache.Entry) ([]byte, error) {
	a, ok := e.(*allocEntry)
	if !ok {
		return nil, fmt.Errorf("entrycodec: assign level got %T", e)
	}
	al := a.al
	b := []byte{codecAlloc}
	b = putCopies(b, al.Copies)
	b = putInts(b, al.Unassigned)
	b = putInts(b, al.Forced)
	b = putVarint(b, int64(al.SingleCopy))
	b = putVarint(b, int64(al.MultiCopy))
	b = putVarint(b, int64(al.TotalCopies))
	b = putVarint(b, int64(al.Atoms))
	b = putBool(b, al.Degraded)
	b = putUvarint(b, uint64(len(al.Phases)))
	for _, p := range al.Phases {
		b = putString(b, p.Phase)
		b = putString(b, p.Method)
		b = putVarint(b, p.Nodes)
		b = putVarint(b, int64(p.Elapsed))
		b = putString(b, p.Fallback)
		b = putBool(b, p.Cached)
	}
	return b, nil
}

func decodeAllocEntry(data []byte) (alloccache.Entry, error) {
	r, err := newReader(data, codecAlloc, "assign")
	if err != nil {
		return nil, err
	}
	var al Allocation
	al.Copies = r.copies("assign copies")
	al.Unassigned = r.ints("assign unassigned")
	al.Forced = r.ints("assign forced")
	al.SingleCopy = r.intval("assign singleCopy")
	al.MultiCopy = r.intval("assign multiCopy")
	al.TotalCopies = r.intval("assign totalCopies")
	al.Atoms = r.intval("assign atoms")
	al.Degraded = r.boolval("assign degraded")
	n := r.count("assign phases")
	if r.err == nil && n > 0 {
		al.Phases = make([]PhaseReport, n)
		for i := range al.Phases {
			al.Phases[i] = PhaseReport{
				Phase:    r.stringval("phase name"),
				Method:   r.stringval("phase method"),
				Nodes:    r.varint("phase nodes"),
				Elapsed:  time.Duration(r.varint("phase elapsed")),
				Fallback: r.stringval("phase fallback"),
				Cached:   r.boolval("phase cached"),
			}
		}
	}
	if err := r.done("assign"); err != nil {
		return nil, err
	}
	return &allocEntry{al: al}, nil
}

// --- atomcolor level ---

func encodeAtomColorEntry(e alloccache.Entry) ([]byte, error) {
	a, ok := e.(*atomColorResult)
	if !ok {
		return nil, fmt.Errorf("entrycodec: atomcolor level got %T", e)
	}
	b := []byte{codecAtomColor}
	b = putIntMap(b, a.assign)
	b = putInts(b, a.unassigned)
	return b, nil
}

func decodeAtomColorEntry(data []byte) (alloccache.Entry, error) {
	r, err := newReader(data, codecAtomColor, "atomcolor")
	if err != nil {
		return nil, err
	}
	a := &atomColorResult{
		assign:     r.intMap("atomcolor assign"),
		unassigned: r.ints("atomcolor unassigned"),
	}
	if err := r.done("atomcolor"); err != nil {
		return nil, err
	}
	return a, nil
}
