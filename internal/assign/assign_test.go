package assign

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parmem/internal/conflict"
)

func fig1Program() Program {
	return Program{Instrs: []conflict.Instruction{{1, 2, 4}, {2, 3, 5}, {2, 3, 4}}}
}

func TestAssignFig1NoDuplication(t *testing.T) {
	al, err := Assign(fig1Program(), Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if bad := Verify(fig1Program(), al); bad != nil {
		t.Fatalf("conflicting instructions: %v", bad)
	}
	if al.MultiCopy != 0 || al.SingleCopy != 5 {
		t.Fatalf("single=%d multi=%d, want 5/0", al.SingleCopy, al.MultiCopy)
	}
}

func TestAssignSection2NeedsOneDuplicate(t *testing.T) {
	p := Program{Instrs: []conflict.Instruction{
		{1, 2, 4}, {2, 3, 5}, {2, 3, 4}, {2, 4, 5},
	}}
	for _, m := range []Method{HittingSet, Backtrack} {
		al, err := Assign(p, Options{K: 3, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if bad := Verify(p, al); bad != nil {
			t.Fatalf("%v: conflicts %v", m, bad)
		}
		if al.MultiCopy > 1 {
			t.Fatalf("%v: multi-copy values = %d, paper needs 1", m, al.MultiCopy)
		}
	}
}

func TestAssignErrors(t *testing.T) {
	if _, err := Assign(fig1Program(), Options{K: 0}); err == nil {
		t.Fatal("K=0 must fail")
	}
	// Instruction with more operands than modules is unschedulable.
	p := Program{Instrs: []conflict.Instruction{{1, 2, 3, 4}}}
	if _, err := Assign(p, Options{K: 3}); err == nil {
		t.Fatal("4 operands / 3 modules must fail validation")
	}
	if _, err := Assign(fig1Program(), Options{K: 3, Strategy: Strategy(99)}); err == nil {
		t.Fatal("unknown strategy must fail")
	}
}

func TestStrategyAndMethodStrings(t *testing.T) {
	if STOR1.String() != "STOR1" || STOR2.String() != "STOR2" || STOR3.String() != "STOR3" {
		t.Fatal("strategy names")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy must still print")
	}
	if HittingSet.String() != "hittingset" || Backtrack.String() != "backtrack" {
		t.Fatal("method names")
	}
}

// buildWorkload makes a deterministic pseudo-program with regions and
// globals for strategy tests.
func buildWorkload(seed int64, nvals, ninstr, k, nregions int) Program {
	r := rand.New(rand.NewSource(seed))
	p := Program{Global: map[int]bool{}}
	nglobals := nvals / 4
	for i := 0; i < ninstr; i++ {
		region := i * nregions / ninstr
		// Realistic three-address shape: instructions fetch 2-3 scalar
		// operands (the paper's machine has k=8 modules against 3-operand
		// instructions). Cap at k for tiny module counts.
		nops := 2 + r.Intn(2)
		if nops > k {
			nops = k
		}
		set := map[int]bool{}
		for len(set) < nops {
			if r.Intn(3) == 0 && nglobals > 0 {
				set[1+r.Intn(nglobals)] = true // global ids 1..nglobals
			} else {
				// Region-local ids partitioned per region.
				base := nglobals + 1 + region*nvals
				set[base+r.Intn(nvals-nglobals)] = true
			}
		}
		var in conflict.Instruction
		for v := range set {
			in = append(in, v)
		}
		p.Instrs = append(p.Instrs, in)
		p.RegionOf = append(p.RegionOf, region)
	}
	for g := 1; g <= nglobals; g++ {
		p.Global[g] = true
	}
	return p
}

func TestAllStrategiesConflictFree(t *testing.T) {
	p := buildWorkload(42, 24, 60, 4, 3)
	for _, s := range []Strategy{STOR1, STOR2, STOR3} {
		for _, m := range []Method{HittingSet, Backtrack} {
			al, err := Assign(p, Options{K: 4, Strategy: s, Method: m})
			if err != nil {
				t.Fatalf("%v/%v: %v", s, m, err)
			}
			if bad := Verify(p, al); bad != nil {
				t.Fatalf("%v/%v: conflicting instructions %v", s, m, bad)
			}
		}
	}
}

func TestSTOR1UsuallyNoWorseThanSTOR3(t *testing.T) {
	// The paper's central empirical claim: restricting the conflict graph
	// (STOR2/STOR3) increases duplication; STOR1 duplicates the least.
	// Check on several seeds in aggregate.
	var s1, s3 int
	for seed := int64(0); seed < 8; seed++ {
		p := buildWorkload(seed, 20, 50, 4, 3)
		a1, err := Assign(p, Options{K: 4, Strategy: STOR1})
		if err != nil {
			t.Fatal(err)
		}
		a3, err := Assign(p, Options{K: 4, Strategy: STOR3})
		if err != nil {
			t.Fatal(err)
		}
		s1 += a1.MultiCopy
		s3 += a3.MultiCopy
	}
	if s1 > s3 {
		t.Fatalf("aggregate multi-copy: STOR1=%d > STOR3=%d; expected STOR1 <= STOR3", s1, s3)
	}
}

func TestSTOR3GroupsOption(t *testing.T) {
	p := buildWorkload(7, 16, 40, 3, 2)
	for _, groups := range []int{1, 2, 4, 40, 100} {
		al, err := Assign(p, Options{K: 3, Strategy: STOR3, Groups: groups})
		if err != nil {
			t.Fatalf("groups=%d: %v", groups, err)
		}
		if bad := Verify(p, al); bad != nil {
			t.Fatalf("groups=%d: conflicts %v", groups, bad)
		}
	}
}

func TestSTOR3ForcedRepair(t *testing.T) {
	// Group 1 binds values 1 and 2 with no edge between them (they may land
	// on the same module); group 2 then uses both in one instruction.
	p := Program{Instrs: []conflict.Instruction{
		{1, 3}, {2, 3}, // group 1: 1 and 2 never co-occur
		{1, 2}, // group 2
	}}
	al, err := Assign(p, Options{K: 2, Strategy: STOR3, Groups: 2, Method: Backtrack})
	if err != nil {
		t.Fatal(err)
	}
	if bad := Verify(p, al); bad != nil {
		t.Fatalf("conflicts remain: %v", bad)
	}
}

func TestDisableAtomsStillCorrect(t *testing.T) {
	p := buildWorkload(11, 18, 45, 4, 2)
	al, err := Assign(p, Options{K: 4, DisableAtoms: true})
	if err != nil {
		t.Fatal(err)
	}
	if bad := Verify(p, al); bad != nil {
		t.Fatalf("conflicts: %v", bad)
	}
	if al.Atoms != 0 {
		t.Fatalf("atoms = %d with decomposition disabled", al.Atoms)
	}
	al2, err := Assign(p, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if al2.Atoms == 0 {
		t.Fatal("expected at least one atom with decomposition enabled")
	}
}

func TestAllocationCounts(t *testing.T) {
	p := fig1Program()
	al, err := Assign(p, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if al.SingleCopy+al.MultiCopy != 5 {
		t.Fatalf("value count = %d, want 5", al.SingleCopy+al.MultiCopy)
	}
	if al.TotalCopies < 5 {
		t.Fatalf("total copies = %d < 5", al.TotalCopies)
	}
}

// Property: every strategy/method combination yields a verified allocation
// on random programs, and every operand value has storage.
func TestAssignProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		p := buildWorkload(seed, 6+r.Intn(16), 10+r.Intn(40), k, 1+r.Intn(3))
		for _, s := range []Strategy{STOR1, STOR2, STOR3} {
			al, err := Assign(p, Options{K: k, Strategy: s})
			if err != nil {
				t.Logf("seed %d %v: %v", seed, s, err)
				return false
			}
			if bad := Verify(p, al); bad != nil {
				t.Logf("seed %d %v: conflicts %v", seed, s, bad)
				return false
			}
			for _, in := range p.Instrs {
				for _, v := range in {
					if al.Copies[v].Count() < 1 {
						t.Logf("seed %d %v: value %d without storage", seed, s, v)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPerRegionStrategy(t *testing.T) {
	p := buildWorkload(42, 24, 60, 4, 3)
	al, err := Assign(p, Options{K: 4, Strategy: PerRegion})
	if err != nil {
		t.Fatal(err)
	}
	if bad := Verify(p, al); bad != nil {
		t.Fatalf("conflicts: %v", bad)
	}
	if PerRegion.String() != "PerRegion" {
		t.Fatal("name")
	}
}

func TestPerRegionCrossRegionRepair(t *testing.T) {
	// Values 1 and 2 never co-occur within a region but do across regions:
	// the per-region strategy binds them independently and must repair.
	p := Program{
		Instrs:   []conflict.Instruction{{1, 3}, {2, 3}, {1, 2}},
		RegionOf: []int{0, 0, 1},
	}
	al, err := Assign(p, Options{K: 2, Strategy: PerRegion})
	if err != nil {
		t.Fatal(err)
	}
	if bad := Verify(p, al); bad != nil {
		t.Fatalf("conflicts remain: %v", bad)
	}
}
