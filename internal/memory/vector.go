package memory

// Vector access analysis — the prior work the paper positions itself
// against (Budnik & Kuck 1971; Harper & Jump 1987; Mace & Wagner). Those
// techniques pick an array storage scheme so that *regular* vector accesses
// (constant stride) hit distinct modules; the paper's point is that scalar
// accesses have no such regularity and need the compile-time assignment of
// §2 instead. This file quantifies the vector side so the contrast is
// measurable: how many conflicts a k-element stride burst costs under each
// layout.

// VectorAccess describes one burst of a regular vector access pattern:
// k consecutive requests i, i+stride, i+2·stride, ... issued in one cycle,
// as a vector unit or unrolled loop would.
type VectorAccess struct {
	ArrID  int
	Start  int
	Stride int
}

// BurstCost returns the number of cycles (max per-module load) needed to
// serve k simultaneous requests of the access pattern under the layout.
// A conflict-free burst costs 1.
func BurstCost(l Layout, a VectorAccess, k int) int {
	load := map[int]int{}
	max := 0
	for j := 0; j < k; j++ {
		m := l.ModuleOf(a.ArrID, a.Start+j*a.Stride)
		load[m]++
		if load[m] > max {
			max = load[m]
		}
	}
	return max
}

// StrideProfile reports the burst cost of every stride in [1, k] for the
// layout, normalized by the ideal cost 1. Classic results this reproduces:
//
//   - interleaving is conflict-free for stride 1 but serializes completely
//     for stride k (all requests hit one module);
//   - skewing spreads both rows (stride 1) and columns (stride k) of a
//     k-wide matrix, the case it was designed for.
func StrideProfile(l Layout, arrID, k int) []int {
	costs := make([]int, k+1)
	for stride := 1; stride <= k; stride++ {
		worst := 0
		// The cost can depend on the start offset; report the worst.
		for start := 0; start < k; start++ {
			c := BurstCost(l, VectorAccess{ArrID: arrID, Start: start, Stride: stride}, k)
			if c > worst {
				worst = c
			}
		}
		costs[stride] = worst
	}
	return costs
}
