package memory

import (
	"testing"
	"testing/quick"
)

func TestInterleaved(t *testing.T) {
	l := Interleaved{K: 4}
	for i := 0; i < 16; i++ {
		if got := l.ModuleOf(0, i); got != i%4 {
			t.Fatalf("ModuleOf(0,%d) = %d, want %d", i, got, i%4)
		}
	}
	if l.ModuleOf(3, 5) != 1 {
		t.Fatal("interleaving must ignore the array id")
	}
}

func TestSingleModule(t *testing.T) {
	l := SingleModule{M: 3}
	for i := 0; i < 10; i++ {
		if l.ModuleOf(i, i*7) != 3 {
			t.Fatal("single module must always answer M")
		}
	}
}

func TestSkewedRange(t *testing.T) {
	l := Skewed{K: 4}
	for a := 0; a < 3; a++ {
		for i := 0; i < 64; i++ {
			m := l.ModuleOf(a, i)
			if m < 0 || m >= 4 {
				t.Fatalf("module %d out of range", m)
			}
		}
	}
}

func TestSkewedShiftsRows(t *testing.T) {
	// With row length K, the same column of consecutive rows maps to
	// different modules — the property skewing exists for.
	l := Skewed{K: 4}
	col := 2
	m0 := l.ModuleOf(0, 0*4+col)
	m1 := l.ModuleOf(0, 1*4+col)
	if m0 == m1 {
		t.Fatalf("column elements of adjacent rows collide on module %d", m0)
	}
}

func TestBlocked(t *testing.T) {
	l := Blocked{K: 4, SizeOf: func(int) int { return 16 }}
	// 16 elements over 4 modules: chunks of 4.
	for i := 0; i < 16; i++ {
		if got, want := l.ModuleOf(0, i), i/4; got != want {
			t.Fatalf("ModuleOf(0,%d) = %d, want %d", i, got, want)
		}
	}
	// Non-divisible size still stays in range.
	l7 := Blocked{K: 4, SizeOf: func(int) int { return 7 }}
	for i := 0; i < 7; i++ {
		if m := l7.ModuleOf(0, i); m < 0 || m >= 4 {
			t.Fatalf("module %d out of range", m)
		}
	}
	// Degenerate size.
	l0 := Blocked{K: 4, SizeOf: func(int) int { return 0 }}
	if l0.ModuleOf(0, 0) != 0 {
		t.Fatal("zero-size arrays map to module 0")
	}
}

func TestNames(t *testing.T) {
	for _, l := range []Layout{Interleaved{K: 8}, SingleModule{M: 0}, Skewed{K: 8},
		Blocked{K: 8, SizeOf: func(int) int { return 1 }}} {
		if l.Name() == "" {
			t.Fatalf("%T has empty name", l)
		}
	}
}

// Property: every layout answers a module within [0, K) for any inputs.
func TestLayoutRangeProperty(t *testing.T) {
	f := func(arrID, index uint8, kRaw uint8) bool {
		k := int(kRaw%8) + 2
		layouts := []Layout{
			Interleaved{K: k},
			SingleModule{M: int(arrID) % k},
			Skewed{K: k},
			Blocked{K: k, SizeOf: func(int) int { return int(index) + 1 }},
		}
		for _, l := range layouts {
			m := l.ModuleOf(int(arrID), int(index))
			if m < 0 || m >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving spreads a contiguous scan evenly — over any window
// of length K, every module is hit exactly once.
func TestInterleavedUniformProperty(t *testing.T) {
	f := func(start uint16, kRaw uint8) bool {
		k := int(kRaw%8) + 2
		l := Interleaved{K: k}
		seen := map[int]int{}
		for i := 0; i < k; i++ {
			seen[l.ModuleOf(0, int(start)+i)]++
		}
		for m := 0; m < k; m++ {
			if seen[m] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
