package memory

import "testing"

func TestBurstCostUnitStride(t *testing.T) {
	l := Interleaved{K: 8}
	if c := BurstCost(l, VectorAccess{Stride: 1}, 8); c != 1 {
		t.Fatalf("unit stride on interleaved costs %d, want 1", c)
	}
}

func TestBurstCostFullStrideSerializes(t *testing.T) {
	// Stride k on low-order interleaving: every request hits one module.
	l := Interleaved{K: 8}
	if c := BurstCost(l, VectorAccess{Stride: 8}, 8); c != 8 {
		t.Fatalf("stride-k burst costs %d, want 8 (fully serialized)", c)
	}
}

func TestSkewedHandlesColumnAccess(t *testing.T) {
	// Column access of a k-wide row-major matrix is a stride-k burst.
	// Skewing (i + i/k) mod k makes it conflict-free — the Budnik-Kuck
	// result.
	l := Skewed{K: 8}
	if c := BurstCost(l, VectorAccess{Stride: 8}, 8); c != 1 {
		t.Fatalf("skewed column burst costs %d, want 1", c)
	}
	// And rows stay conflict-free too.
	if c := BurstCost(l, VectorAccess{Stride: 1}, 8); c != 1 {
		t.Fatalf("skewed row burst costs %d, want 1", c)
	}
}

func TestSingleModuleAlwaysSerial(t *testing.T) {
	l := SingleModule{M: 0}
	for stride := 1; stride <= 4; stride++ {
		if c := BurstCost(l, VectorAccess{Stride: stride}, 4); c != 4 {
			t.Fatalf("stride %d costs %d, want 4", stride, c)
		}
	}
}

func TestStrideProfileShapes(t *testing.T) {
	k := 8
	inter := StrideProfile(Interleaved{K: k}, 0, k)
	skew := StrideProfile(Skewed{K: k}, 0, k)

	if inter[1] != 1 || inter[k] != k {
		t.Fatalf("interleaved profile: stride1=%d stridek=%d", inter[1], inter[k])
	}
	// Skewing makes column bursts (stride k) conflict-free; unaligned row
	// bursts can straddle a row boundary and collide once, never worse.
	if skew[k] != 1 || skew[1] > 2 {
		t.Fatalf("skewed profile: stride1=%d stridek=%d", skew[1], skew[k])
	}
	// Power-of-two strides hurt interleaving progressively.
	if inter[2] < 2 || inter[4] < 4 {
		t.Fatalf("interleaved even strides too cheap: %v", inter)
	}
	// Profiles include the worst start offset, so entries are >= 1.
	for s := 1; s <= k; s++ {
		if inter[s] < 1 || skew[s] < 1 {
			t.Fatalf("cost below 1 at stride %d", s)
		}
	}
}

func TestStrideProfileBlocked(t *testing.T) {
	// Blocked layout: stride-1 bursts stay inside one chunk — fully
	// serial; large strides jump across chunks.
	k := 4
	l := Blocked{K: k, SizeOf: func(int) int { return 64 }}
	prof := StrideProfile(l, 0, k)
	if prof[1] != k {
		t.Fatalf("blocked stride-1 costs %d, want %d", prof[1], k)
	}
	if prof[k*k/k] == 1 {
		// stride 4 within 16-element chunks still lands in one chunk
		t.Fatalf("blocked stride-%d unexpectedly conflict-free", k)
	}
}
