// Package memory models how array elements are distributed over the
// parallel memory modules.
//
// Scalar placement is decided at compile time by internal/assign; array
// element placement is a hardware/runtime property because indices are
// computed at run time. The paper's Table 2 quantifies the conflicts caused
// by array accesses under three assumptions: best case (no array conflicts),
// worst case (every array in one module) and the uniform-distribution
// average. The layouts here realize those assumptions plus the classic
// skewed scheme of Budnik & Kuck / Harper & Jump that the paper cites as
// prior work for vector access.
package memory

import "fmt"

// Layout maps an array element to the memory module that stores it.
type Layout interface {
	// ModuleOf returns the module of element index of array arrID.
	ModuleOf(arrID, index int) int
	// Name identifies the layout in reports.
	Name() string
}

// Interleaved distributes consecutive elements round-robin across all K
// modules (low-order interleaving). This is the "realistic" layout behind
// the paper's t_ave estimate: element residence is uniform across modules.
type Interleaved struct {
	K int
}

// ModuleOf implements Layout.
func (l Interleaved) ModuleOf(arrID, index int) int {
	m := index % l.K
	if m < 0 {
		m += l.K
	}
	return m
}

// Name implements Layout.
func (l Interleaved) Name() string { return fmt.Sprintf("interleaved(k=%d)", l.K) }

// SingleModule stores every array entirely in one module — the paper's
// worst-case t_max assumption ("storage required for all of the arrays ...
// allocated from the same memory module").
type SingleModule struct {
	M int
}

// ModuleOf implements Layout.
func (l SingleModule) ModuleOf(arrID, index int) int { return l.M }

// Name implements Layout.
func (l SingleModule) Name() string { return fmt.Sprintf("single(m=%d)", l.M) }

// Skewed applies the classic skewing transform: element i of array a lives
// in module (i + i/K + a) mod K. For row-major matrices with row length K
// this makes both rows and columns conflict-free; for the scalar-heavy
// programs here it mainly decorrelates arrays from one another.
type Skewed struct {
	K int
}

// ModuleOf implements Layout.
func (l Skewed) ModuleOf(arrID, index int) int {
	m := (index + index/l.K + arrID) % l.K
	if m < 0 {
		m += l.K
	}
	return m
}

// Name implements Layout.
func (l Skewed) Name() string { return fmt.Sprintf("skewed(k=%d)", l.K) }

// Blocked splits each array into K contiguous chunks, one per module
// (high-order interleaving). Sequential scans of one array then hammer a
// single module at a time — a useful contrast to Interleaved in ablations.
type Blocked struct {
	K int
	// SizeOf reports each array's element count; required to compute the
	// chunk boundaries.
	SizeOf func(arrID int) int
}

// ModuleOf implements Layout.
func (l Blocked) ModuleOf(arrID, index int) int {
	size := l.SizeOf(arrID)
	if size <= 0 {
		return 0
	}
	chunk := (size + l.K - 1) / l.K
	m := index / chunk
	if m < 0 {
		m = 0
	}
	if m >= l.K {
		m = l.K - 1
	}
	return m
}

// Name implements Layout.
func (l Blocked) Name() string { return fmt.Sprintf("blocked(k=%d)", l.K) }
