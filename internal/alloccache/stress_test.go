package alloccache

import (
	"fmt"
	"sync"
	"testing"
)

// stressEntry is a minimal deep-clonable payload for the eviction tests.
type stressEntry struct{ v []int }

func (e *stressEntry) CloneEntry() Entry {
	return &stressEntry{v: append([]int(nil), e.v...)}
}

// levelKey builds a well-formed signature of the given memo level, the way
// the assignment engine does (leading length-prefixed kind string).
func levelKey(level string, n int) string {
	var k Key
	k.Str(level)
	k.Int(n)
	return k.String()
}

func TestKeyLevel(t *testing.T) {
	for _, lv := range []string{"assign", "dup", "atomcolor"} {
		if got := KeyLevel(levelKey(lv, 7)); got != lv {
			t.Errorf("KeyLevel(%q key) = %q", lv, got)
		}
	}
	if got := KeyLevel("short"); got != "" {
		t.Errorf("KeyLevel(malformed) = %q, want empty", got)
	}
	if got := KeyLevel(""); got != "" {
		t.Errorf("KeyLevel(empty) = %q, want empty", got)
	}
}

// TestConcurrentEvictionStress hammers a tiny cache from many goroutines
// across all three memo levels so every Put evicts, exercising the FIFO
// ring under -race. It then checks the structural invariants and that the
// per-level stats account for every Get.
func TestConcurrentEvictionStress(t *testing.T) {
	const (
		capEntries = 8
		workers    = 8
		iters      = 500
	)
	c := New(capEntries)
	levels := []string{"assign", "dup", "atomcolor"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lv := levels[(w+i)%len(levels)]
				key := levelKey(lv, (w*iters+i)%(capEntries*4))
				if e, ok := c.Get(key); ok {
					if len(e.(*stressEntry).v) != 3 {
						panic(fmt.Sprintf("corrupt entry under %q", key))
					}
				} else {
					c.Put(key, &stressEntry{v: []int{1, 2, 3}})
				}
			}
		}(w)
	}
	wg.Wait()

	if n := c.Len(); n > capEntries {
		t.Fatalf("cache holds %d entries, capacity %d", n, capEntries)
	}
	st := c.Stats()
	if st.Entries > capEntries {
		t.Fatalf("Stats.Entries = %d, capacity %d", st.Entries, capEntries)
	}
	total := st.Hits + st.Misses
	if total != int64(workers*iters) {
		t.Fatalf("hits+misses = %d, want %d", total, workers*iters)
	}
	var levelTotal int64
	for lv, ls := range st.Levels {
		if lv != "assign" && lv != "dup" && lv != "atomcolor" {
			t.Errorf("unexpected level %q", lv)
		}
		levelTotal += ls.Hits + ls.Misses
	}
	if levelTotal != total {
		t.Fatalf("level hits+misses = %d, aggregate %d", levelTotal, total)
	}
	// The FIFO queue must not retain evicted keys: the live window is
	// order[head:] and the consumed prefix is zeroed/compacted.
	c.mu.Lock()
	live := len(c.order) - c.head
	for i := 0; i < c.head; i++ {
		if c.order[i] != "" {
			t.Errorf("evicted key retained at order[%d]", i)
		}
	}
	c.mu.Unlock()
	if live < c.Len() {
		t.Fatalf("order window %d smaller than entry count %d", live, c.Len())
	}
}

// TestEvictionOrderFIFO checks the ring-buffer rewrite preserves FIFO
// eviction: the oldest key leaves first, and compaction keeps the queue
// aligned with the entry map.
func TestEvictionOrderFIFO(t *testing.T) {
	c := New(2)
	for i := 0; i < 200; i++ {
		c.Put(levelKey("dup", i), &stressEntry{v: []int{i}})
		if i >= 1 {
			if _, ok := c.Get(levelKey("dup", i-1)); !ok {
				t.Fatalf("second-newest entry %d evicted early", i-1)
			}
		}
		if i >= 2 {
			if _, ok := c.Get(levelKey("dup", i-2)); ok {
				t.Fatalf("entry %d should have been evicted", i-2)
			}
		}
		if c.Len() > 2 {
			t.Fatalf("Len = %d, want <= 2", c.Len())
		}
	}
}
