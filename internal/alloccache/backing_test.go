package alloccache

import (
	"errors"
	"sync"
	"testing"
)

// strEntry is a trivial Entry for tier tests.
type strEntry struct{ s string }

func (e *strEntry) CloneEntry() Entry { return &strEntry{s: e.s} }

// mapBacking is an in-memory Backing with injectable payload corruption.
type mapBacking struct {
	mu      sync.Mutex
	m       map[string][]byte
	corrupt bool
}

func (b *mapBacking) Get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	if !ok {
		return nil, false
	}
	if b.corrupt {
		return []byte{0xFF}, true
	}
	return append([]byte(nil), v...), true
}

func (b *mapBacking) Put(key string, val []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.m == nil {
		b.m = map[string][]byte{}
	}
	b.m[key] = append([]byte(nil), val...)
}

// testKey builds a key of the given level.
func testKey(level, rest string) string {
	k := NewKey(nil)
	k.Str(level)
	k.Str(rest)
	return k.String()
}

func withTestCodec(t *testing.T, level string) {
	t.Helper()
	RegisterCodec(level, Codec{
		Encode: func(e Entry) ([]byte, error) { return []byte(e.(*strEntry).s), nil },
		Decode: func(b []byte) (Entry, error) {
			if len(b) == 1 && b[0] == 0xFF {
				return nil, errors.New("corrupt")
			}
			return &strEntry{s: string(b)}, nil
		},
	})
	t.Cleanup(func() {
		codecMu.Lock()
		delete(codecs, level)
		codecMu.Unlock()
	})
}

func TestBackingReadThroughWriteBehind(t *testing.T) {
	withTestCodec(t, "tlevel")
	b := &mapBacking{}
	c := New(8)
	c.SetBacking(b)

	key := testKey("tlevel", "k1")
	c.Put(key, &strEntry{s: "v1"})
	if got := string(b.m[key]); got != "v1" {
		t.Fatalf("backing after Put = %q", got)
	}

	// A fresh cache over the same backing: memory miss, backing hit.
	c2 := New(8)
	c2.SetBacking(b)
	e, ok := c2.Get(key)
	if !ok || e.(*strEntry).s != "v1" {
		t.Fatalf("read-through Get = %+v, %v", e, ok)
	}
	st := c2.Stats()
	if st.Hits != 1 || st.BackingHits != 1 || st.Misses != 0 {
		t.Fatalf("stats after read-through: %+v", st)
	}
	// The entry was promoted: a second Get must not consult the backing.
	if _, ok := c2.Get(key); !ok {
		t.Fatal("promoted entry gone")
	}
	if st := c2.Stats(); st.BackingHits != 1 {
		t.Fatalf("second Get hit the backing again: %+v", st)
	}
}

func TestBackingMissAndDecodeErrorDegradeToMiss(t *testing.T) {
	withTestCodec(t, "tlevel")
	b := &mapBacking{}
	c := New(8)
	c.SetBacking(b)

	missKey := testKey("tlevel", "absent")
	if _, ok := c.Get(missKey); ok {
		t.Fatal("hit on an absent key")
	}
	if st := c.Stats(); st.BackingMisses != 1 || st.Misses != 1 {
		t.Fatalf("stats after backing miss: %+v", st)
	}

	key := testKey("tlevel", "k")
	c.Put(key, &strEntry{s: "v"})
	b.corrupt = true
	c2 := New(8)
	c2.SetBacking(b)
	if _, ok := c2.Get(key); ok {
		t.Fatal("corrupt backing payload produced an entry")
	}
	if st := c2.Stats(); st.CodecErrors != 1 || st.Misses != 1 {
		t.Fatalf("stats after decode error: %+v", st)
	}
}

func TestBackingIgnoredWithoutCodec(t *testing.T) {
	b := &mapBacking{}
	c := New(8)
	c.SetBacking(b)
	key := testKey("nocodec", "k")
	c.Put(key, &strEntry{s: "v"})
	if len(b.m) != 0 {
		t.Fatal("entry of a codec-less level reached the backing")
	}
	// The memory tier still works.
	if e, ok := c.Get(key); !ok || e.(*strEntry).s != "v" {
		t.Fatalf("memory Get = %+v, %v", e, ok)
	}
	if st := c.Stats(); st.BackingHits != 0 || st.BackingMisses != 0 {
		t.Fatalf("backing consulted without a codec: %+v", st)
	}
}

func TestBackingConcurrentAccess(t *testing.T) {
	withTestCodec(t, "tlevel")
	b := &mapBacking{}
	c := New(32)
	c.SetBacking(b)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := testKey("tlevel", string(rune('a'+i%7)))
				c.Put(key, &strEntry{s: "x"})
				if e, ok := c.Get(key); ok && e.(*strEntry).s != "x" {
					t.Errorf("Get = %+v", e)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
