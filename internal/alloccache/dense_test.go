package alloccache

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"testing"

	"parmem/internal/graph"
)

// historicalCanonicalHash is the pre-dense-core CanonicalHash, reproduced
// verbatim: the migration contract is that cache keys are byte-identical
// across it, so entries persisted under old keys stay reachable.
func historicalCanonicalHash(g *graph.Graph) uint64 {
	nodes := g.Nodes()
	order := make([]int, len(nodes))
	copy(order, nodes)
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	label := make(map[int]int, len(order))
	for i, v := range order {
		label[v] = i
	}
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(x int) {
		v := uint64(int64(x))
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeInt(len(nodes))
	type edge struct{ u, v, w int }
	var edges []edge
	for _, e := range g.Edges() {
		u, v := label[e.U], label[e.V]
		if u > v {
			u, v = v, u
		}
		edges = append(edges, edge{u, v, e.W})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for _, e := range edges {
		writeInt(e.u)
		writeInt(e.v)
		writeInt(e.w)
	}
	return h.Sum64()
}

// historicalKeyGraph is the pre-dense-core Key.Graph byte layout.
func historicalKeyGraph(g *graph.Graph) string {
	var k Key
	k.int64(int64(historicalCanonicalHash(g)))
	k.Ints(g.Nodes())
	edges := g.Edges()
	k.int64(int64(len(edges)))
	for _, e := range edges {
		k.int64(int64(e.U))
		k.int64(int64(e.V))
		k.int64(int64(e.W))
	}
	return k.String()
}

func randomWeightedGraph(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(i*5 + 2)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdgeWeight(i*5+2, j*5+2, 1+r.Intn(7))
			}
		}
	}
	return g
}

// TestCanonicalHashKeyStability proves the dense-core hash and signature
// bytes identical to the historical map-graph computation for every random
// input — cache keys survive the migration unchanged.
func TestCanonicalHashKeyStability(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for iter := 0; iter < 150; iter++ {
		g := randomWeightedGraph(r, r.Intn(30), r.Float64()*0.6)
		if got, want := CanonicalHash(g), historicalCanonicalHash(g); got != want {
			t.Fatalf("iter %d: CanonicalHash = %#x, historical %#x\n%s", iter, got, want, g)
		}
		var k Key
		k.Graph(g)
		if got, want := k.String(), historicalKeyGraph(g); got != want {
			t.Fatalf("iter %d: Key.Graph bytes diverged from historical layout\n%s", iter, g)
		}
	}
}
