package alloccache

import "sync"

// This file composes a second-level byte store (the disk tier) under the
// in-memory memo table. The memory tier stays the only thing the engine
// talks to; on a memory miss the cache reads through to the backing and
// promotes what it finds, and on Put it writes the encoded entry behind
// the memory store. The backing deals in bytes, so live Entry values
// cross the boundary through per-level codecs registered by the packages
// that own the entry types (internal/assign registers all three engine
// levels in its init).
//
// Correctness contract: the pure-memo guarantee extends to the second
// level. Keys embed the exact subproblem, the disk tier embeds engine
// and format versions in its records, and a codec that fails to decode
// (or has no registration for a key's level) degrades to a miss — a
// stale, foreign or corrupt backing can cost recomputation, never
// correctness.

// Backing is a second-level byte store consulted on memory misses and
// written behind on Put. Implementations must be safe for concurrent
// use; *diskcache.Store is the canonical one.
type Backing interface {
	// Get returns the payload stored under key, if any.
	Get(key string) ([]byte, bool)
	// Put stores the payload under key (best effort; a cache may drop).
	Put(key string, val []byte)
}

// Codec converts one memo level's entries to and from backing bytes.
type Codec struct {
	// Encode serializes an entry. Returning an error skips the backing
	// write (the memory tier is unaffected).
	Encode func(Entry) ([]byte, error)
	// Decode rebuilds an entry from backing bytes. It must return an
	// error — never a half-built entry — on any malformed input.
	Decode func([]byte) (Entry, error)
}

var (
	codecMu sync.RWMutex
	codecs  = map[string]Codec{}
)

// RegisterCodec installs the codec of one memo level (the leading kind
// string of its keys, e.g. "assign"). Levels without a codec simply
// never touch the backing. Later registrations replace earlier ones.
func RegisterCodec(level string, c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	codecs[level] = c
}

// codecFor returns the codec of a key's level.
func codecFor(key string) (Codec, bool) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecs[KeyLevel(key)]
	return c, ok
}

// SetBacking attaches (or, with nil, detaches) the second-level store.
// Safe on a nil cache. Attach before sharing the cache; the field is
// read under the cache lock but swapping it mid-traffic changes which
// tier serves which request.
func (c *Cache) SetBacking(b Backing) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.backing = b
	c.mu.Unlock()
}

// fromBacking consults the second level after a memory miss: decode,
// promote into memory (without echoing back to the backing), and return
// the entry. Any failure — no codec, backing miss, decode error — is a
// miss.
func (c *Cache) fromBacking(b Backing, key string) (Entry, bool) {
	codec, ok := codecFor(key)
	if !ok {
		return nil, false
	}
	data, ok := b.Get(key)
	if !ok {
		c.backingMisses.Add(1)
		return nil, false
	}
	e, err := codec.Decode(data)
	if err != nil || e == nil {
		c.codecErrors.Add(1)
		c.backingMisses.Add(1)
		return nil, false
	}
	c.backingHits.Add(1)
	c.install(key, e)
	return e, true
}

// toBacking writes a freshly stored entry behind the memory tier.
func (c *Cache) toBacking(b Backing, key string, e Entry) {
	codec, ok := codecFor(key)
	if !ok {
		return
	}
	data, err := codec.Encode(e)
	if err != nil {
		c.codecErrors.Add(1)
		return
	}
	b.Put(key, data)
}

// install stores a clone of e in the memory tier only — the promotion
// path of a backing hit, which must not write the entry back out.
func (c *Cache) install(key string, e Entry) {
	clone := e.CloneEntry()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeLocked(key, clone)
}
