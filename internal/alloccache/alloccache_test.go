package alloccache

import (
	"fmt"
	"sync"
	"testing"

	"parmem/internal/graph"
)

// testEntry is a mutable payload used to prove the cache deep-clones.
type testEntry struct {
	vals map[int]int
}

func (e *testEntry) CloneEntry() Entry {
	c := &testEntry{vals: make(map[int]int, len(e.vals))}
	for k, v := range e.vals {
		c.vals[k] = v
	}
	return c
}

func TestGetPutAndStats(t *testing.T) {
	c := New(8)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", &testEntry{vals: map[int]int{1: 2}})
	e, ok := c.Get("a")
	if !ok {
		t.Fatal("miss after Put")
	}
	if e.(*testEntry).vals[1] != 2 {
		t.Fatalf("wrong payload: %v", e)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1/1/1", st)
	}
}

func TestClonesIsolateCallers(t *testing.T) {
	c := New(8)
	orig := &testEntry{vals: map[int]int{1: 2}}
	c.Put("k", orig)
	orig.vals[1] = 99 // mutating after Put must not affect the cache

	got1, _ := c.Get("k")
	got1.(*testEntry).vals[1] = 77 // mutating a Get result must not either

	got2, _ := c.Get("k")
	if v := got2.(*testEntry).vals[1]; v != 2 {
		t.Fatalf("cache entry mutated through a caller: got %d, want 2", v)
	}
}

func TestFIFOEviction(t *testing.T) {
	c := New(2)
	c.Put("a", &testEntry{vals: map[int]int{}})
	c.Put("b", &testEntry{vals: map[int]int{}})
	c.Put("c", &testEntry{vals: map[int]int{}}) // evicts "a"
	if _, ok := c.Get("a"); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("second entry evicted too early")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("newest entry missing")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	c.Put("k", &testEntry{vals: map[int]int{}})
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 || st.Levels != nil {
		t.Fatalf("nil cache stats = %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache non-empty")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Put(key, &testEntry{vals: map[int]int{i: w}})
				if e, ok := c.Get(key); ok {
					e.(*testEntry).vals[0] = -1 // must be a private clone
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

func TestCanonicalHashInvariantUnderRelabeling(t *testing.T) {
	// A path 1-2-3 and the degree-preserving relabeling 10-20-30 must
	// collide; changing the structure (a triangle) must not.
	path := graph.New()
	path.AddEdge(1, 2, 1)
	path.AddEdge(2, 3, 1)

	relabeled := graph.New()
	relabeled.AddEdge(10, 20, 1)
	relabeled.AddEdge(20, 30, 1)

	tri := graph.New()
	tri.AddEdge(1, 2, 1)
	tri.AddEdge(2, 3, 1)
	tri.AddEdge(1, 3, 1)

	if CanonicalHash(path) != CanonicalHash(relabeled) {
		t.Fatal("isomorphic relabeled path hashed differently")
	}
	if CanonicalHash(path) == CanonicalHash(tri) {
		t.Fatal("path and triangle collided")
	}
}

func TestKeyEncodingUnambiguous(t *testing.T) {
	// Same flattened integers, different field boundaries — distinct keys.
	var a, b Key
	a.Ints([]int{1, 2})
	a.Ints(nil)
	b.Ints([]int{1})
	b.Ints([]int{2})
	if a.String() == b.String() {
		t.Fatal("length-prefixed encodings collided")
	}

	var k1, k2 Key
	k1.Str("ab")
	k2.Str("a")
	k2.Str("b")
	if k1.String() == k2.String() {
		t.Fatal("string encodings collided")
	}

	g := graph.New()
	g.AddEdge(1, 2, 3)
	var kg1, kg2 Key
	kg1.Graph(g)
	g2 := graph.New()
	g2.AddEdge(1, 2, 4) // same shape, different weight
	kg2.Graph(g2)
	if kg1.String() == kg2.String() {
		t.Fatal("graphs with different weights collided")
	}
}
