// Package alloccache memoizes storage-assignment results.
//
// The experiment drivers recompile the same benchmark programs dozens of
// times (Table 1 sweeps every strategy, Table 2 every module count, the
// speed-up harness both), and within one program the clique-separator
// decomposition carves out many small atoms whose conflict subgraphs
// repeat. The cache lets the assignment engine skip those repeated
// searches: a subproblem is canonicalized — its conflict graph relabeled
// in degree-sorted order and hashed — and the full problem signature is
// memoized together with its result.
//
// Correctness contract: the cache is a *pure memo*. A key embeds the exact
// subproblem — original value ids, edges, precolorings, budgets' absence —
// so a hit can only ever return the bytes the sequential engine would have
// recomputed. The canonical hash is a fast discriminator prefix (it groups
// isomorphic graphs into one bucket namespace), not a license to reuse a
// result across isomorphic-but-distinct subproblems; bit-identical output
// is part of the engine's determinism guarantee and the cache must be
// invisible to it.
//
// A Cache is safe for concurrent use: the parallel assignment engine's
// workers share one instance, and separate compilations may too. Values
// are deep-cloned on both Put and Get so no caller can mutate another's
// result.
package alloccache

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"parmem/internal/arena"
	"parmem/internal/graph"
)

// DefaultCapacity bounds a Cache built with New(0). It comfortably holds
// every distinct atom subproblem of the paper's benchmark suite across a
// full table sweep while keeping worst-case memory use small (entries are
// a few hundred bytes each).
const DefaultCapacity = 4096

// Entry is a cached payload. Implementations must deep-copy all mutable
// state in CloneEntry; the cache clones on Put and on every Get so that
// concurrent consumers never share maps or slices.
type Entry interface {
	CloneEntry() Entry
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits    int64 // Get calls that found a usable entry (either tier)
	Misses  int64 // Get calls that found nothing
	Entries int   // entries currently resident in memory
	// Levels breaks hits and misses down by memo level — the leading kind
	// string of each key ("assign", "dup", "atomcolor"). Keys without a
	// decodable kind are counted under "".
	Levels map[string]LevelStats
	// BackingHits counts memory misses served by the second-level store
	// (these are included in Hits: the caller got an entry either way).
	BackingHits int64
	// BackingMisses counts second-level lookups that found nothing.
	BackingMisses int64
	// CodecErrors counts entries dropped because their level codec failed
	// to encode or decode; each such Get degrades to a miss.
	CodecErrors int64
}

// LevelStats is the hit/miss pair of one memo level.
type LevelStats struct {
	Hits   int64
	Misses int64
}

// levelCounters is the live per-level counter pair; aggregated counters
// stay atomic so Get never serializes on the stats path.
type levelCounters struct {
	hits   atomic.Int64
	misses atomic.Int64
}

// Cache is a capacity-bounded memo table keyed by signature strings built
// with Key. Eviction is FIFO: the paper's workloads are sweep-shaped (each
// subproblem recurs throughout a run rather than clustering), so insertion
// order is as good a victim choice as recency and needs no bookkeeping on
// the Get fast path.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]Entry
	// order plus head form the FIFO eviction queue: order[head:] are the
	// live keys, oldest first. Evicting advances head instead of reslicing
	// so the backing array cannot pin evicted key strings; the consumed
	// prefix is compacted away once it dominates the array.
	order []string
	head  int

	// backing is the optional second-level byte store (the disk tier);
	// see backing.go for the read-through/write-behind composition.
	backing Backing

	hits   atomic.Int64
	misses atomic.Int64
	levels sync.Map // level string -> *levelCounters

	backingHits   atomic.Int64
	backingMisses atomic.Int64
	codecErrors   atomic.Int64
}

// New returns an empty cache holding at most capacity entries; capacity
// <= 0 means DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{cap: capacity, entries: make(map[string]Entry)}
}

// Get returns a deep copy of the entry stored under key, if any, and
// updates the hit/miss counters. On a memory miss a configured backing
// store is consulted (read-through): a decodable backing payload is
// promoted into memory and counts as a hit. A nil cache never hits.
func (c *Cache) Get(key string) (Entry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	b := c.backing
	c.mu.Unlock()
	lc := c.level(key)
	if !ok && b != nil {
		e, ok = c.fromBacking(b, key)
		if ok {
			c.hits.Add(1)
			lc.hits.Add(1)
			return e.CloneEntry(), true
		}
	}
	if !ok {
		c.misses.Add(1)
		lc.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	lc.hits.Add(1)
	return e.CloneEntry(), true
}

// level returns the counter pair of key's memo level, creating it on first
// use.
func (c *Cache) level(key string) *levelCounters {
	lv := KeyLevel(key)
	if lc, ok := c.levels.Load(lv); ok {
		return lc.(*levelCounters)
	}
	lc, _ := c.levels.LoadOrStore(lv, &levelCounters{})
	return lc.(*levelCounters)
}

// KeyLevel decodes the memo level of a signature built with Key: the
// leading length-prefixed kind string ("assign", "dup", "atomcolor").
// Malformed keys decode to "".
func KeyLevel(key string) string {
	if len(key) < 8 {
		return ""
	}
	n := uint64(0)
	for i := 7; i >= 0; i-- {
		n = n<<8 | uint64(key[i])
	}
	if n > uint64(len(key)-8) || n > 64 {
		return ""
	}
	return key[8 : 8+n]
}

// Put stores a deep copy of e under key, evicting the oldest entry when
// the cache is full, and writes the encoded entry behind a configured
// backing store. Overwriting an existing key refreshes its value but not
// its eviction position. A nil cache drops the entry.
func (c *Cache) Put(key string, e Entry) {
	if c == nil || e == nil {
		return
	}
	clone := e.CloneEntry()
	c.mu.Lock()
	c.storeLocked(key, clone)
	b := c.backing
	c.mu.Unlock()
	if b != nil {
		c.toBacking(b, key, e)
	}
}

// storeLocked is the memory-tier store shared by Put and the backing
// promotion path; the caller holds c.mu and passes a clone it gives up.
func (c *Cache) storeLocked(key string, clone Entry) {
	if _, exists := c.entries[key]; !exists {
		for len(c.entries) >= c.cap && c.head < len(c.order) {
			victim := c.order[c.head]
			c.order[c.head] = "" // release the key string
			c.head++
			delete(c.entries, victim)
		}
		if c.head > 32 && c.head > len(c.order)/2 {
			c.order = append(c.order[:0], c.order[c.head:]...)
			c.head = 0
		}
		c.order = append(c.order, key)
	}
	c.entries[key] = clone
}

// Stats returns a snapshot of the effectiveness counters. The aggregate
// hit/miss pair and each level's pair are individually consistent; under
// concurrent traffic the aggregate can run slightly ahead of the level
// breakdown (each Get bumps both counters without a lock).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	s := Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n,
		BackingHits:   c.backingHits.Load(),
		BackingMisses: c.backingMisses.Load(),
		CodecErrors:   c.codecErrors.Load(),
	}
	c.levels.Range(func(k, v any) bool {
		lc := v.(*levelCounters)
		if s.Levels == nil {
			s.Levels = make(map[string]LevelStats)
		}
		s.Levels[k.(string)] = LevelStats{Hits: lc.hits.Load(), Misses: lc.misses.Load()}
		return true
	})
	return s
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CanonicalHash returns an FNV-64a hash of g's canonical form: vertices
// relabeled 0..n-1 in (degree, original id) order, then the relabeled
// weighted edge list hashed in sorted order. Graphs that differ only by a
// degree-preserving renumbering of their vertices frequently collide into
// the same hash (identical graphs always do), which makes the hash a cheap
// leading discriminator for cache keys.
func CanonicalHash(g *graph.Graph) uint64 {
	sc := arena.Get()
	defer sc.Release()
	return CanonicalHashDense(graph.FromGraphScratch(g, sc))
}

// CanonicalHashDense is CanonicalHash computed from a dense snapshot. The
// hashed byte stream is identical to the historical map-graph computation —
// dense indices ascend with original ids, so the (degree, id) canonical
// rank equals the (degree, index) rank used here — which keeps every cache
// key stable across the dense-core migration.
func CanonicalHashDense(d *graph.Dense) uint64 {
	sc := arena.Get()
	defer sc.Release()
	n := d.N()
	// Rank vertices by (degree, index): a cheap canonical order that is
	// exact for identical graphs and groups many isomorphic ones.
	order := sc.Int32s(n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := d.Deg(order[i]), d.Deg(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	label := sc.Ints(n)
	for i, v := range order {
		label[v] = i
	}
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(x int) {
		v := uint64(int64(x))
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeInt(n)
	type edge struct{ u, v, w int }
	edges := make([]edge, 0, d.NumEdges())
	for i := 0; i < n; i++ {
		row, wts := d.Row(int32(i)), d.WeightRow(int32(i))
		for j, nb := range row {
			if int32(i) >= nb {
				continue
			}
			u, v := label[i], label[nb]
			if u > v {
				u, v = v, u
			}
			edges = append(edges, edge{u, v, int(wts[j])})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for _, e := range edges {
		writeInt(e.u)
		writeInt(e.v)
		writeInt(e.w)
	}
	return h.Sum64()
}

// Key builds a cache signature incrementally. Every write is
// length-delimited or fixed-width, so distinct field sequences can never
// produce the same signature bytes.
type Key struct {
	buf []byte
}

// NewKey returns a Key writing into buf (reset to length zero) — callers
// on hot paths pass an arena buffer so signature building does not grow a
// fresh allocation per call. String() copies, so the buffer may be reused
// afterwards.
func NewKey(buf []byte) Key { return Key{buf: buf[:0]} }

func (k *Key) int64(v int64) {
	u := uint64(v)
	k.buf = append(k.buf,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// Int appends one integer.
func (k *Key) Int(v int) { k.int64(int64(v)) }

// Ints appends a length-prefixed integer slice.
func (k *Key) Ints(vs []int) {
	k.int64(int64(len(vs)))
	for _, v := range vs {
		k.int64(int64(v))
	}
}

// Str appends a length-prefixed string.
func (k *Key) Str(s string) {
	k.int64(int64(len(s)))
	k.buf = append(k.buf, s...)
}

// IntMap appends a map in sorted-key order.
func (k *Key) IntMap(m map[int]int) {
	keys := make([]int, 0, len(m))
	for v := range m {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	k.int64(int64(len(keys)))
	for _, v := range keys {
		k.int64(int64(v))
		k.int64(int64(m[v]))
	}
}

// Graph appends g exactly — canonical hash first (the fast discriminator),
// then the precise node and weighted edge lists with their original ids,
// which is what makes the overall signature a pure memo key.
func (k *Key) Graph(g *graph.Graph) {
	sc := arena.Get()
	defer sc.Release()
	k.GraphDense(graph.FromGraphScratch(g, sc))
}

// GraphDense is Graph from a dense snapshot, emitting byte-identical
// signature bytes: IDs() is Nodes() and the ascending CSR walk below visits
// edges in exactly Edges() order, so keys written before and after the
// dense-core migration compare equal.
func (k *Key) GraphDense(d *graph.Dense) {
	k.int64(int64(CanonicalHashDense(d)))
	k.Ints(d.IDs())
	k.int64(int64(d.NumEdges()))
	n := d.N()
	for i := 0; i < n; i++ {
		row, wts := d.Row(int32(i)), d.WeightRow(int32(i))
		for j, nb := range row {
			if int32(i) < nb {
				k.int64(int64(d.ID(int32(i))))
				k.int64(int64(d.ID(nb)))
				k.int64(int64(wts[j]))
			}
		}
	}
}

// String finalizes the signature.
func (k *Key) String() string { return string(k.buf) }
