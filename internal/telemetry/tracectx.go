package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// This file is the cross-process half of tracing: a W3C-traceparent-style
// trace context (128-bit trace id, 64-bit span id, 64-bit process id) that
// rides the framed protocol's JSON payloads as one string field and travels
// in-process on a context.Context. The process id disambiguates span ids
// across processes — every tracer numbers its spans 1, 2, 3, ... for
// deterministic golden files, so a remote parent reference is only unique as
// the (process, span) pair.

// TraceContext identifies one request across processes: the 128-bit trace id
// shared by every span of the request, plus the (process, span) pair of the
// propagating span — the remote parent of whatever span the receiver starts.
type TraceContext struct {
	TraceHi uint64 // high 64 bits of the trace id
	TraceLo uint64 // low 64 bits of the trace id
	Span    uint64 // span id of the sender's active span (0 = none)
	Proc    uint64 // process id of the sender's tracer (0 = unknown)
}

// Valid reports whether the context carries a trace id.
func (tc TraceContext) Valid() bool { return tc.TraceHi != 0 || tc.TraceLo != 0 }

// TraceID renders the 128-bit trace id as 32 lowercase hex digits ("" when
// unset) — the form echoed in responses and attached to exemplars.
func (tc TraceContext) TraceID() string {
	if !tc.Valid() {
		return ""
	}
	var b [32]byte
	putHex64(b[:16], tc.TraceHi)
	putHex64(b[16:], tc.TraceLo)
	return string(b[:])
}

// String renders the wire form: "traceid-spanid-procid" (32, 16 and 16 hex
// digits). An invalid context renders as "".
func (tc TraceContext) String() string {
	if !tc.Valid() {
		return ""
	}
	var b [66]byte
	putHex64(b[:16], tc.TraceHi)
	putHex64(b[16:32], tc.TraceLo)
	b[32] = '-'
	putHex64(b[33:49], tc.Span)
	b[49] = '-'
	putHex64(b[50:66], tc.Proc)
	return string(b[:])
}

// ParseTraceContext parses the wire form produced by String. The span and
// proc segments are optional (absent ≡ 0), so a bare 32-hex trace id is
// accepted. Returns ok=false for anything else — propagation is best-effort,
// a malformed trace field never fails the request.
func ParseTraceContext(s string) (TraceContext, bool) {
	var tc TraceContext
	if len(s) < 32 {
		return tc, false
	}
	hi, ok1 := parseHex64(s[:16])
	lo, ok2 := parseHex64(s[16:32])
	if !ok1 || !ok2 || (hi == 0 && lo == 0) {
		return tc, false
	}
	tc.TraceHi, tc.TraceLo = hi, lo
	rest := s[32:]
	if rest == "" {
		return tc, true
	}
	if rest[0] != '-' || len(rest) < 17 {
		return TraceContext{}, false
	}
	sp, ok := parseHex64(rest[1:17])
	if !ok {
		return TraceContext{}, false
	}
	tc.Span = sp
	rest = rest[17:]
	if rest == "" {
		return tc, true
	}
	if rest[0] != '-' || len(rest) != 17 {
		return TraceContext{}, false
	}
	pr, ok := parseHex64(rest[1:])
	if !ok {
		return TraceContext{}, false
	}
	tc.Proc = pr
	return tc, true
}

// NewTrace returns a fresh trace context with a random 128-bit trace id and
// no originating span. Ids come from a splitmix64 sequence seeded once from
// crypto/rand, so generation is lock-free and never draws entropy per call.
func NewTrace() TraceContext {
	return TraceContext{TraceHi: randUint64(), TraceLo: randUint64()}
}

const hexDigits = "0123456789abcdef"

func putHex64(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

func parseHex64(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

var (
	randState atomic.Uint64
	randOnce  sync.Once
)

// randUint64 steps a splitmix64 generator over an atomic counter seeded once
// from crypto/rand. splitmix64 is a bijection of the counter, so distinct
// draws never collide within a process; the random seed separates processes.
func randUint64() uint64 {
	randOnce.Do(func() {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			randState.Store(binary.LittleEndian.Uint64(b[:]))
		} else {
			randState.Store(0x9e3779b97f4a7c15) // entropy failure: still unique in-process
		}
	})
	z := randState.Add(0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// traceCtxKey is the context key TraceContext travels under.
type traceCtxKey struct{}

// ContextWithTrace returns a context carrying tc. An invalid tc returns ctx
// unchanged.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the trace context placed by ContextWithTrace.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
