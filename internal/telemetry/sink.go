package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Sink receives spans as they end. Implementations must be safe for
// concurrent SpanEnd calls: worker-pool goroutines end spans in parallel.
// Spans passed to SpanEnd are immutable; sinks may retain them.
//
// Ownership rule: the code that constructs a sink owns its lifecycle — the
// Recorder never closes or flushes sinks, so a CLI that writes a trace file
// flushes its own ChromeSink/JSONLSink on every exit path (the same
// discipline as pprof profiles).
type Sink interface {
	SpanEnd(s *Span)
}

// RingSink retains the most recent spans in a fixed-size ring buffer — the
// always-on, allocation-bounded sink for live introspection and tests.
type RingSink struct {
	mu    sync.Mutex
	buf   []*Span
	next  int
	total int64
}

// NewRingSink returns a ring retaining the last n spans (n <= 0 picks 1024).
func NewRingSink(n int) *RingSink {
	if n <= 0 {
		n = 1024
	}
	return &RingSink{buf: make([]*Span, 0, n)}
}

// SpanEnd implements Sink.
func (r *RingSink) SpanEnd(s *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
		return
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
}

// Spans returns the retained spans, oldest first.
func (r *RingSink) Spans() []*Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many spans the ring has seen (including evicted ones).
func (r *RingSink) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// SpanRecord fixes the field order of one exported span record — the shape
// of a JSONL line, and of the span trees embedded in flight captures. Trace
// ids render as 32 hex digits, remote parent references as 16 (span) + 16
// (proc) so the merger can resolve them across files.
type SpanRecord struct {
	Name         string         `json:"name"`
	ID           uint64         `json:"id"`
	Parent       uint64         `json:"parent,omitempty"`
	Trace        string         `json:"trace,omitempty"`
	RemoteParent string         `json:"remote_parent,omitempty"`
	RemoteProc   string         `json:"remote_proc,omitempty"`
	Lane         int64          `json:"lane"`
	StartUs      int64          `json:"start_us"`
	DurUs        int64          `json:"dur_us"`
	Attrs        map[string]any `json:"attrs,omitempty"`
}

// MakeSpanRecord renders an ended span to its export shape.
func MakeSpanRecord(s *Span) SpanRecord {
	rec := SpanRecord{
		Name:    s.Name,
		ID:      s.ID,
		Parent:  s.ParentID,
		Trace:   s.TraceID(),
		Lane:    s.Lane,
		StartUs: s.Start.Microseconds(),
		DurUs:   s.Dur.Microseconds(),
		Attrs:   attrMap(s.Attrs),
	}
	if s.RemoteParent != 0 {
		var b [16]byte
		putHex64(b[:], s.RemoteParent)
		rec.RemoteParent = string(b[:])
		putHex64(b[:], s.RemoteProc)
		rec.RemoteProc = string(b[:])
	}
	return rec
}

// ProcessHeader is the first line of a JSONL trace file: the process name,
// the tracer's process id, and the wall-clock instant of monotonic offset 0
// in unix microseconds. The merger uses the name to label the lane, the id
// to resolve remote parent references, and the epoch as the coarse clock
// alignment before parent/child refinement.
type ProcessHeader struct {
	Process string `json:"process"`
	Proc    string `json:"proc"`
	EpochUs int64  `json:"epoch_us"`
}

// attrMap converts span attributes to a JSON object; encoding/json sorts
// map keys, so the rendering is deterministic.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		if a.IsStr {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Int
		}
	}
	return m
}

// JSONLSink streams one JSON object per ended span to a writer. Errors are
// sticky and reported by Flush.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// WriteProcess emits the process header line. Call it once, right after
// constructing the sink, before any span ends; name defaults the merger's
// lane label, tracer supplies the process id and epoch (both may be zero for
// deterministic tracers).
func (j *JSONLSink) WriteProcess(name string, tracer *Tracer) {
	hdr := ProcessHeader{Process: name}
	if id := tracer.ProcID(); id != 0 {
		var b [16]byte
		putHex64(b[:], id)
		hdr.Proc = string(b[:])
	}
	if ep := tracer.Epoch(); !ep.IsZero() {
		hdr.EpochUs = ep.UnixMicro()
	}
	b, err := json.Marshal(hdr)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
	}
}

// SpanEnd implements Sink.
func (j *JSONLSink) SpanEnd(s *Span) {
	b, err := json.Marshal(MakeSpanRecord(s))
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
	}
}

// Flush drains the buffer and returns the first error encountered.
func (j *JSONLSink) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}
