package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Sink receives spans as they end. Implementations must be safe for
// concurrent SpanEnd calls: worker-pool goroutines end spans in parallel.
// Spans passed to SpanEnd are immutable; sinks may retain them.
//
// Ownership rule: the code that constructs a sink owns its lifecycle — the
// Recorder never closes or flushes sinks, so a CLI that writes a trace file
// flushes its own ChromeSink/JSONLSink on every exit path (the same
// discipline as pprof profiles).
type Sink interface {
	SpanEnd(s *Span)
}

// RingSink retains the most recent spans in a fixed-size ring buffer — the
// always-on, allocation-bounded sink for live introspection and tests.
type RingSink struct {
	mu    sync.Mutex
	buf   []*Span
	next  int
	total int64
}

// NewRingSink returns a ring retaining the last n spans (n <= 0 picks 1024).
func NewRingSink(n int) *RingSink {
	if n <= 0 {
		n = 1024
	}
	return &RingSink{buf: make([]*Span, 0, n)}
}

// SpanEnd implements Sink.
func (r *RingSink) SpanEnd(s *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
		return
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
}

// Spans returns the retained spans, oldest first.
func (r *RingSink) Spans() []*Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many spans the ring has seen (including evicted ones).
func (r *RingSink) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// jsonlSpan fixes the field order of one JSON-lines record.
type jsonlSpan struct {
	Name    string         `json:"name"`
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Lane    int64          `json:"lane"`
	StartUs int64          `json:"start_us"`
	DurUs   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// attrMap converts span attributes to a JSON object; encoding/json sorts
// map keys, so the rendering is deterministic.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		if a.IsStr {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Int
		}
	}
	return m
}

// JSONLSink streams one JSON object per ended span to a writer. Errors are
// sticky and reported by Flush.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// SpanEnd implements Sink.
func (j *JSONLSink) SpanEnd(s *Span) {
	rec := jsonlSpan{
		Name:    s.Name,
		ID:      s.ID,
		Parent:  s.ParentID,
		Lane:    s.Lane,
		StartUs: s.Start.Microseconds(),
		DurUs:   s.Dur.Microseconds(),
		Attrs:   attrMap(s.Attrs),
	}
	b, err := json.Marshal(rec)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
	}
}

// Flush drains the buffer and returns the first error encountered.
func (j *JSONLSink) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.w.Flush()
}
