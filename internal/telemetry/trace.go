package telemetry

import (
	"sync/atomic"
	"time"
)

// This file is the tracing half of the telemetry core: hierarchical spans
// with monotonic timestamps, emitted to pluggable sinks when they end.
// Everything is nil-safe — StartSpan on a nil Tracer returns a nil Span, and
// every Span method is a no-op on a nil receiver — so instrumented code
// never branches on "is telemetry on".

// Attr is one span attribute: a key with either an integer or a string
// value (IsStr selects which).
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// Span is one timed operation. Spans form a tree through ParentID; Lane is
// the logical execution track (0 = the calling goroutine, workers claim
// their own), which the Chrome exporter maps to a tid.
//
// A Span is owned by the goroutine that started it: SetAttr/SetLane/End must
// not race with each other. After End the span is immutable and may be read
// by any goroutine (sinks retain pointers).
type Span struct {
	tracer   *Tracer
	Name     string
	ID       uint64
	ParentID uint64
	Lane     int64
	Start    time.Duration // monotonic offset from the tracer epoch
	Dur      time.Duration // set by End
	Attrs    []Attr
	ended    bool
}

// SetAttr attaches an integer attribute. Safe on a nil receiver.
func (s *Span) SetAttr(key string, v int64) {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, Int: v})
	}
}

// SetAttrStr attaches a string attribute. Safe on a nil receiver.
func (s *Span) SetAttrStr(key, v string) {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, Str: v, IsStr: true})
	}
}

// SetLane moves the span to a worker lane. Safe on a nil receiver.
func (s *Span) SetLane(lane int64) {
	if s != nil {
		s.Lane = lane
	}
}

// End stamps the duration and emits the span to every sink. Ending twice is
// a no-op, as is ending a nil span.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Dur = s.tracer.now() - s.Start
	s.tracer.open.Add(-1)
	for _, sk := range s.tracer.sinks {
		sk.SpanEnd(s)
	}
}

// Tracer creates spans and routes ended spans to its sinks. Safe for
// concurrent use; a nil Tracer is valid and produces nil spans.
type Tracer struct {
	epoch  time.Time
	clock  func() time.Duration // test override; nil means time.Since(epoch)
	sinks  []Sink
	nextID atomic.Uint64
	open   atomic.Int64
}

// NewTracer returns a tracer whose epoch is now, emitting to sinks.
func NewTracer(sinks ...Sink) *Tracer {
	return &Tracer{epoch: time.Now(), sinks: sinks}
}

// NewTracerClock is NewTracer with an injected monotonic clock, for
// deterministic tests (golden trace files).
func NewTracerClock(clock func() time.Duration, sinks ...Sink) *Tracer {
	return &Tracer{clock: clock, sinks: sinks}
}

func (t *Tracer) now() time.Duration {
	if t.clock != nil {
		return t.clock()
	}
	return time.Since(t.epoch)
}

// StartSpan begins a span under parent (nil parent = root). The span
// inherits the parent's lane. Safe on a nil Tracer, which returns a nil
// span.
func (t *Tracer) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, Name: name, ID: t.nextID.Add(1), Start: t.now()}
	if parent != nil {
		s.ParentID = parent.ID
		s.Lane = parent.Lane
	}
	t.open.Add(1)
	return s
}

// OpenSpans returns the number of started-but-unended spans; a quiesced
// pipeline must report 0 (the well-formedness tests assert it).
func (t *Tracer) OpenSpans() int64 {
	if t == nil {
		return 0
	}
	return t.open.Load()
}
