package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the tracing half of the telemetry core: hierarchical spans
// with monotonic timestamps, emitted to pluggable sinks when they end.
// Everything is nil-safe — StartSpan on a nil Tracer returns a nil Span, and
// every Span method is a no-op on a nil receiver — so instrumented code
// never branches on "is telemetry on".

// Attr is one span attribute: a key with either an integer or a string
// value (IsStr selects which).
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// Span is one timed operation. Spans form a tree through ParentID; Lane is
// the logical execution track (0 = the calling goroutine, workers claim
// their own), which the Chrome exporter maps to a tid.
//
// TraceHi/TraceLo carry the 128-bit distributed trace id (0 when the span is
// not part of a cross-process trace); children inherit it from their parent.
// A root span continuing a trace started in another process records that
// process's (span, proc) pair as RemoteParent/RemoteProc — span ids are only
// unique per process, so the pair is what the trace merger resolves.
//
// A Span is owned by the goroutine that started it: SetAttr/SetLane/End must
// not race with each other. After End the span is immutable and may be read
// by any goroutine (sinks retain pointers).
type Span struct {
	tracer       *Tracer
	Name         string
	ID           uint64
	ParentID     uint64
	TraceHi      uint64
	TraceLo      uint64
	RemoteParent uint64 // span id of the remote parent (0 = none)
	RemoteProc   uint64 // process id of the remote parent's tracer
	Lane         int64
	Start        time.Duration // monotonic offset from the tracer epoch
	Dur          time.Duration // set by End
	Attrs        []Attr
	ended        bool
}

// SetAttr attaches an integer attribute. Safe on a nil receiver.
func (s *Span) SetAttr(key string, v int64) {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, Int: v})
	}
}

// SetAttrStr attaches a string attribute. Safe on a nil receiver.
func (s *Span) SetAttrStr(key, v string) {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, Str: v, IsStr: true})
	}
}

// SetLane moves the span to a worker lane. Safe on a nil receiver.
func (s *Span) SetLane(lane int64) {
	if s != nil {
		s.Lane = lane
	}
}

// TraceID renders the span's 128-bit trace id as 32 hex digits ("" when the
// span is untraced or nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return TraceContext{TraceHi: s.TraceHi, TraceLo: s.TraceLo}.TraceID()
}

// Context returns the trace context to propagate from this span: the span's
// trace id with this span as the (span, proc) origin. Safe on a nil
// receiver, which returns the zero (invalid) context.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceHi: s.TraceHi, TraceLo: s.TraceLo, Span: s.ID, Proc: s.tracer.ProcID()}
}

// End stamps the duration and emits the span to every sink. Ending twice is
// a no-op, as is ending a nil span.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Dur = s.tracer.now() - s.Start
	s.tracer.open.Add(-1)
	if p := s.tracer.sinks.Load(); p != nil {
		for _, sk := range *p {
			sk.SpanEnd(s)
		}
	}
}

// Tracer creates spans and routes ended spans to its sinks. Safe for
// concurrent use; a nil Tracer is valid and produces nil spans.
type Tracer struct {
	epoch  time.Time
	clock  func() time.Duration // test override; nil means time.Since(epoch)
	procID uint64               // process identity for cross-process parent refs

	sinkMu sync.Mutex             // serializes AddSink
	sinks  atomic.Pointer[[]Sink] // copy-on-write so End never locks

	nextID atomic.Uint64
	open   atomic.Int64
}

// NewTracer returns a tracer whose epoch is now, emitting to sinks. The
// tracer gets a random process id (cross-process trace merging keys remote
// parent references on it).
func NewTracer(sinks ...Sink) *Tracer {
	t := &Tracer{epoch: time.Now(), procID: randUint64()}
	t.sinks.Store(&sinks)
	return t
}

// NewTracerClock is NewTracer with an injected monotonic clock, for
// deterministic tests (golden trace files). The process id is 0 so golden
// output stays stable; tests exercising cross-process links set one with
// SetProcID.
func NewTracerClock(clock func() time.Duration, sinks ...Sink) *Tracer {
	t := &Tracer{clock: clock}
	t.sinks.Store(&sinks)
	return t
}

// ProcID returns the tracer's process id (0 on a nil tracer or a
// deterministic-clock tracer that never set one).
func (t *Tracer) ProcID() uint64 {
	if t == nil {
		return 0
	}
	return t.procID
}

// SetProcID overrides the process id — for tests that need several tracers
// with known, distinct identities. Call before spans start.
func (t *Tracer) SetProcID(id uint64) {
	if t != nil {
		t.procID = id
	}
}

// Epoch returns the wall-clock instant of monotonic offset 0 (zero for
// injected-clock tracers). Trace mergers use it as the coarse first guess
// when aligning processes.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// AddSink attaches an additional sink at runtime — the hook the daemon uses
// to feed its flight recorder from an already-constructed Recorder. Safe for
// concurrent use with End (copy-on-write); safe on a nil tracer.
func (t *Tracer) AddSink(s Sink) {
	if t == nil || s == nil {
		return
	}
	t.sinkMu.Lock()
	defer t.sinkMu.Unlock()
	old := t.sinks.Load()
	var next []Sink
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, s)
	t.sinks.Store(&next)
}

func (t *Tracer) now() time.Duration {
	if t.clock != nil {
		return t.clock()
	}
	return time.Since(t.epoch)
}

// StartSpan begins a span under parent (nil parent = root). The span
// inherits the parent's lane and trace id. Safe on a nil Tracer, which
// returns a nil span.
func (t *Tracer) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, Name: name, ID: t.nextID.Add(1), Start: t.now()}
	if parent != nil {
		s.ParentID = parent.ID
		s.Lane = parent.Lane
		s.TraceHi, s.TraceLo = parent.TraceHi, parent.TraceLo
	}
	t.open.Add(1)
	return s
}

// StartSpanContext is StartSpan for roots that may continue a distributed
// trace: when parent is nil and ctx carries a TraceContext, the new span
// joins that trace — as a local child when the context originated in this
// process (the daemon's per-request rpc span parenting the engine's root),
// or with a remote parent reference when it came over the wire. With a
// non-nil parent it behaves exactly like StartSpan. Safe on a nil Tracer,
// before any ctx inspection, so the disabled path stays allocation-free.
func (t *Tracer) StartSpanContext(ctx context.Context, name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	if parent != nil {
		return t.StartSpan(name, parent)
	}
	s := t.StartSpan(name, nil)
	if tc, ok := TraceFromContext(ctx); ok {
		s.TraceHi, s.TraceLo = tc.TraceHi, tc.TraceLo
		if tc.Span != 0 {
			if tc.Proc == t.procID {
				s.ParentID = tc.Span
			} else {
				s.RemoteParent, s.RemoteProc = tc.Span, tc.Proc
			}
		}
	}
	return s
}

// StartSpanTrace begins a root span that joins tc's trace, recording tc's
// (span, proc) origin as the parent — local when it is this process, remote
// otherwise. It is StartSpanContext without the ctx plumbing, for ingress
// points that parsed the wire field themselves. Safe on a nil Tracer.
func (t *Tracer) StartSpanTrace(name string, tc TraceContext) *Span {
	if t == nil {
		return nil
	}
	s := t.StartSpan(name, nil)
	if tc.Valid() {
		s.TraceHi, s.TraceLo = tc.TraceHi, tc.TraceLo
		if tc.Span != 0 {
			if tc.Proc == t.procID {
				s.ParentID = tc.Span
			} else {
				s.RemoteParent, s.RemoteProc = tc.Span, tc.Proc
			}
		}
	}
	return s
}

// OpenSpans returns the number of started-but-unended spans; a quiesced
// pipeline must report 0 (the well-formedness tests assert it).
func (t *Tracer) OpenSpans() int64 {
	if t == nil {
		return 0
	}
	return t.open.Load()
}
