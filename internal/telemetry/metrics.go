package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the telemetry core: an atomic registry of
// counters, gauges and fixed-log-bucket histograms, exportable as Prometheus
// text exposition, a human-readable dump, or an expvar snapshot. All
// instruments are nil-safe — methods on a nil *Counter/*Gauge/*Histogram are
// no-ops — so engine code can resolve instruments once through a possibly-nil
// Recorder and call them unconditionally on the hot path.

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Sync stores an absolute value. It exists for scrape collectors that mirror
// an externally maintained monotonic count (arena and cache counters) into
// the registry; regular producers use Add/Inc. Safe on a nil receiver.
func (c *Counter) Sync(v int64) {
	if c != nil {
		c.v.Store(v)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (may be negative). Safe on a nil receiver.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Max raises the gauge to v if v exceeds the current value. Safe on a nil
// receiver.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of every Histogram: upper bounds
// 2^0 .. 2^20 plus +Inf. Log-scale buckets cover everything the engine
// observes (atom sizes, V_unassigned sizes, phase nanoseconds after
// dividing down) without per-histogram configuration.
const histBuckets = 22

// histBound returns the inclusive upper bound of bucket i (the last bucket
// is +Inf).
func histBound(i int) int64 { return int64(1) << i }

// Exemplar is a recent sample annotated with the trace id that produced it
// — the OpenMetrics bridge from a histogram bucket to a distributed trace
// (and from there to a flight capture).
type Exemplar struct {
	Value   int64
	TraceID string
}

// Histogram counts observations into fixed log-scale buckets. Each bucket
// retains the most recent traced sample as its exemplar (last-writer-wins,
// one atomic pointer per bucket).
type Histogram struct {
	buckets   [histBuckets]atomic.Int64
	exemplars [histBuckets]atomic.Pointer[Exemplar]
	sum       atomic.Int64
	count     atomic.Int64
}

// bucketIdx maps a sample to its bucket: values <= 1 land in the first
// bucket, values above 2^20 in +Inf.
func bucketIdx(v int64) int {
	if v <= 1 {
		return 0
	}
	idx := bits.Len64(uint64(v - 1)) // v in (2^(idx-1), 2^idx]
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Observe records one sample. Safe on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIdx(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveExemplar records one sample and, when traceID is non-empty, stamps
// it as the bucket's exemplar. The exemplar allocates; callers use this on
// request-grained paths (one per RPC), not inner loops. Safe on a nil
// receiver.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	idx := bucketIdx(v)
	h.buckets[idx].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[idx].Store(&Exemplar{Value: v, TraceID: traceID})
	}
}

// BucketExemplar returns bucket i's exemplar, if any. Exported for tests and
// the flight recorder's introspection; i out of range or a nil receiver
// returns ok=false.
func (h *Histogram) BucketExemplar(i int) (Exemplar, bool) {
	if h == nil || i < 0 || i >= histBuckets {
		return Exemplar{}, false
	}
	e := h.exemplars[i].Load()
	if e == nil {
		return Exemplar{}, false
	}
	return *e, true
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// series is one labeled instance of a metric family. Exactly one of c, g, h
// is non-nil, matching the family kind.
type series struct {
	labels string // rendered `key="value",...` (no braces), "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every labeled series of one metric name.
type family struct {
	name   string
	help   string
	kind   string // "counter", "gauge", "histogram"
	series map[string]*series
	order  []string // label strings in first-registration order
}

// Registry is a concurrent registry of named metrics. Instrument lookup
// takes a mutex (callers are expected to resolve instruments once per phase,
// not per loop iteration); the instruments themselves are lock-free.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	names []string // family names in first-registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels turns a key/value pair list into a canonical label string.
// Pairs keep their given order; values are quoted with minimal escaping.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: labels must be key/value pairs, got %d items", len(labels)))
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		v := labels[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	return b.String()
}

// lookup returns (creating if needed) the series of the given family name,
// kind and labels. A kind clash with an existing family panics: metric names
// are a compile-time catalogue, not user input.
func (r *Registry) lookup(name, kind string, labels []string) *series {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.fams[name] = f
		r.names = append(r.names, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		switch kind {
		case "counter":
			s.c = &Counter{}
		case "gauge":
			s.g = &Gauge{}
		default:
			s.h = &Histogram{}
		}
		f.series[ls] = s
		f.order = append(f.order, ls)
	}
	return s
}

// Counter returns the counter named name with the given label key/value
// pairs, registering it on first use. A nil registry returns a nil (no-op)
// counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, "counter", labels).c
}

// Gauge returns the gauge named name, registering it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, "gauge", labels).g
}

// Histogram returns the histogram named name, registering it on first use.
// A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, "histogram", labels).h
}

// SetHelp attaches Prometheus HELP text to a family (creating an empty
// counter family if the name is unknown is not useful, so unknown names are
// remembered only once the family exists).
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.fams[name]; f != nil {
		f.help = help
	}
}

// snapshotFamilies copies the family list under the lock so exporters can
// iterate without holding it (instrument reads are atomic).
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, r.fams[n])
	}
	return out
}

// seriesSnapshot returns the series of f in registration order (taken under
// the registry lock by the caller's snapshot; order/series only grow, and
// exporters tolerate concurrent growth by re-reading under the lock).
func (r *Registry) seriesOf(f *family) []*series {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*series, 0, len(f.order))
	for _, ls := range f.order {
		out = append(out, f.series[ls])
	}
	return out
}

// braced joins pre-rendered label strings into one {...} block; both parts
// may be empty.
func braced(parts ...string) string {
	var keep []string
	for _, p := range parts {
		if p != "" {
			keep = append(keep, p)
		}
	}
	if len(keep) == 0 {
		return ""
	}
	return "{" + strings.Join(keep, ",") + "}"
}

// WritePrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers per family, cumulative le buckets plus
// _sum/_count for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	fams := r.snapshotFamilies()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range r.seriesOf(f) {
			var err error
			switch f.kind {
			case "counter":
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.labels), s.c.Value())
			case "gauge":
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.labels), s.g.Value())
			default:
				cum := int64(0)
				for i := 0; i < histBuckets; i++ {
					cum += s.h.buckets[i].Load()
					le := fmt.Sprintf(`le="%d"`, histBound(i))
					if i == histBuckets-1 {
						le = `le="+Inf"`
					}
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, braced(s.labels, le), cum); err != nil {
						return err
					}
				}
				if _, err = fmt.Fprintf(w, "%s_sum%s %d\n", f.name, braced(s.labels), s.h.Sum()); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(s.labels), s.h.Count())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// OpenMetricsContentType is the content type negotiated for the OpenMetrics
// exposition on /metrics.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics writes the registry in OpenMetrics 1.0 text format: like
// the Prometheus exposition, but counter family names drop the `_total`
// suffix (the sample keeps it), histogram bucket lines carry exemplars in
// `# {trace_id="..."} value` syntax, and the stream ends with `# EOF`.
// Exemplar timestamps are omitted so the exposition of a fixed registry is
// byte-stable (the golden test pins it).
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	fams := r.snapshotFamilies()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		famName := f.name
		if f.kind == "counter" {
			famName = strings.TrimSuffix(famName, "_total")
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", famName, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", famName, f.kind); err != nil {
			return err
		}
		for _, s := range r.seriesOf(f) {
			var err error
			switch f.kind {
			case "counter":
				_, err = fmt.Fprintf(w, "%s_total%s %d\n", famName, braced(s.labels), s.c.Value())
			case "gauge":
				_, err = fmt.Fprintf(w, "%s%s %d\n", famName, braced(s.labels), s.g.Value())
			default:
				cum := int64(0)
				for i := 0; i < histBuckets; i++ {
					cum += s.h.buckets[i].Load()
					le := fmt.Sprintf(`le="%d"`, histBound(i))
					if i == histBuckets-1 {
						le = `le="+Inf"`
					}
					ex := ""
					if e, ok := s.h.BucketExemplar(i); ok {
						ex = fmt.Sprintf(` # {trace_id="%s"} %d`, e.TraceID, e.Value)
					}
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d%s\n", famName, braced(s.labels, le), cum, ex); err != nil {
						return err
					}
				}
				if _, err = fmt.Fprintf(w, "%s_sum%s %d\n", famName, braced(s.labels), s.h.Sum()); err != nil {
					return err
				}
				_, err = fmt.Fprintf(w, "%s_count%s %d\n", famName, braced(s.labels), s.h.Count())
			}
			if err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// WriteText writes a compact human-readable dump: one `name{labels} value`
// line per series (histograms report count/sum/mean), sorted by name.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	fams := r.snapshotFamilies()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		for _, s := range r.seriesOf(f) {
			var err error
			switch f.kind {
			case "counter":
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.labels), s.c.Value())
			case "gauge":
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.labels), s.g.Value())
			default:
				n, sum := s.h.Count(), s.h.Sum()
				mean := 0.0
				if n > 0 {
					mean = float64(sum) / float64(n)
				}
				_, err = fmt.Fprintf(w, "%s%s count=%d sum=%d mean=%.1f\n", f.name, braced(s.labels), n, sum, mean)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot returns every series as a flat map (series name including labels
// -> value), the shape published through /debug/vars. Histograms expand to
// _count and _sum entries.
func (r *Registry) Snapshot() map[string]int64 {
	out := map[string]int64{}
	if r == nil {
		return out
	}
	for _, f := range r.snapshotFamilies() {
		for _, s := range r.seriesOf(f) {
			key := f.name + braced(s.labels)
			switch f.kind {
			case "counter":
				out[key] = s.c.Value()
			case "gauge":
				out[key] = s.g.Value()
			default:
				out[key+"_count"] = s.h.Count()
				out[key+"_sum"] = s.h.Sum()
			}
		}
	}
	return out
}
